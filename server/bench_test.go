package server

import (
	"io"
	"math/rand"
	"net"
	"strconv"
	"testing"

	"repro/client"
	"repro/gen"
	"repro/kcore"
	"repro/resp"
)

// BenchmarkServeRESP measures the networked serving stack end to end —
// RESP codec, per-connection dispatch, snapshot reads, and the
// async-write fan-in — over real loopback TCP, pipelined and not. The
// pipelined/unpipelined gap is the protocol's whole argument: one write
// burst coalesces into ~one engine round and one syscall per flight.
// `make bench-json` records the rows in BENCH_serve.json next to the
// publication benchmarks.
func BenchmarkServeRESP(b *testing.B) {
	const (
		n     = 50_000
		m     = 200_000
		depth = 64
	)
	newStack := func(b *testing.B) (*client.Conn, func()) {
		b.Helper()
		maint := kcore.New(gen.ErdosRenyi(n, m, 1), kcore.WithWorkers(4))
		srv := New(maint)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		return c, func() {
			c.Close()
			srv.Close()
			maint.Close()
		}
	}
	reportOps := func(b *testing.B) {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}

	b.Run("read/unpipelined", func(b *testing.B) {
		c, stop := newStack(b)
		defer stop()
		rng := rand.New(rand.NewSource(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Int(c.Do("CORE.GET", rng.Int31n(n))); err != nil {
				b.Fatal(err)
			}
		}
		reportOps(b)
	})

	b.Run("read/pipelined", func(b *testing.B) {
		c, stop := newStack(b)
		defer stop()
		rng := rand.New(rand.NewSource(3))
		b.ResetTimer()
		for done := 0; done < b.N; {
			flight := min(depth, b.N-done)
			for p := 0; p < flight; p++ {
				c.Send("CORE.GET", rng.Int31n(n))
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			for p := 0; p < flight; p++ {
				if _, err := client.Int(c.Receive()); err != nil {
					b.Fatal(err)
				}
			}
			done += flight
		}
		reportOps(b)
	})

	b.Run("write/unpipelined", func(b *testing.B) {
		c, stop := newStack(b)
		defer stop()
		// Churn one private fresh-vertex chain: every op does real
		// maintenance work, the graph stays bounded.
		lo := int32(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := lo + int32(i%1024)
			cmd := "CORE.INSERT"
			if (i/1024)%2 == 1 {
				cmd = "CORE.REMOVE"
			}
			if _, err := client.Int(c.Do(cmd, u, u+1)); err != nil {
				b.Fatal(err)
			}
		}
		reportOps(b)
	})

	b.Run("write/pipelined", func(b *testing.B) {
		c, stop := newStack(b)
		defer stop()
		lo := int32(n)
		b.ResetTimer()
		for done := 0; done < b.N; {
			flight := min(depth, b.N-done)
			cmd := "CORE.INSERT"
			if (done/depth)%2 == 1 {
				cmd = "CORE.REMOVE"
			}
			for p := 0; p < flight; p++ {
				u := lo + int32(p)
				c.Send(cmd, u, u+1)
			}
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			for p := 0; p < flight; p++ {
				if _, err := client.Int(c.Receive()); err != nil {
					b.Fatal(err)
				}
			}
			done += flight
		}
		reportOps(b)
	})
}

// appendRESPCommand serializes one multibulk command the way a client
// sends it.
func appendRESPCommand(buf []byte, args ...string) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(len(args)), 10)
	buf = append(buf, '\r', '\n')
	for _, a := range args {
		buf = append(buf, '$')
		buf = strconv.AppendInt(buf, int64(len(a)), 10)
		buf = append(buf, '\r', '\n')
		buf = append(buf, a...)
		buf = append(buf, '\r', '\n')
	}
	return buf
}

// BenchmarkHotPathAllocs asserts the zero-allocation contract of the
// server-side command path: a pipelined burst of read commands —
// parse, dispatch, snapshot read, reply — allocates NOTHING once the
// connection's scratch is warm. It drives the same parse→handle→flush
// core the conn shards run, against a pre-serialized burst, so the
// measurement covers exactly the per-command server work (no sockets,
// no client). CI runs it with -benchtime=1x as a regression tripwire.
func BenchmarkHotPathAllocs(b *testing.B) {
	const n = 10_000
	maint := kcore.New(gen.ErdosRenyi(n, 40_000, 1), kcore.WithWorkers(1))
	defer maint.Close()
	srv := New(maint)
	c := &conn{srv: srv, wr: resp.NewWriterSize(io.Discard, 16<<10)}

	const depth = 64
	rng := rand.New(rand.NewSource(5))
	var getBurst, pingBurst []byte
	for i := 0; i < depth; i++ {
		v := strconv.Itoa(int(rng.Int31n(n)))
		getBurst = appendRESPCommand(getBurst, "CORE.GET", v)
		pingBurst = appendRESPCommand(pingBurst, "PING")
	}

	runBurst := func(burst []byte) {
		off := 0
		for {
			m, err := c.par.Parse(burst[off:], &c.cmd)
			off += m
			if err == resp.ErrIncomplete {
				break
			}
			if err != nil {
				b.Fatalf("parse: %v", err)
			}
			c.handle(c.cmd.Args)
		}
		c.endCycle()
		if err := c.wr.Flush(); err != nil {
			b.Fatalf("flush: %v", err)
		}
	}

	for _, tc := range []struct {
		name  string
		burst []byte
	}{
		{"pipelinedGet", getBurst},
		{"ping", pingBurst},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runBurst(tc.burst) // warm scratch: arena, stats ring, writer buffer
			allocs := testing.AllocsPerRun(100, func() { runBurst(tc.burst) })
			perOp := allocs / depth
			b.ReportMetric(perOp, "allocs/op")
			if perOp != 0 {
				b.Fatalf("hot path allocates: %.2f allocs/op (%.0f per %d-deep burst), want 0",
					perOp, allocs, depth)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBurst(tc.burst)
			}
		})
	}
}

// BenchmarkMetricsOverhead prices the observability layer on the
// pipelined read path: the same parse→handle→flush core as
// BenchmarkHotPathAllocs, once with the command metrics live
// (instrumented — one clock read plus a per-family tally per burst,
// flushed into atomics at burst end) and once with them stripped
// (bare, srv.metrics = nil). The instrumented arm keeps the
// zero-allocation contract; CI records both rows in BENCH_serve.json
// so the ns/op delta — the acceptance budget is ≤2% — stays visible.
func BenchmarkMetricsOverhead(b *testing.B) {
	const n = 10_000
	const depth = 64
	rng := rand.New(rand.NewSource(7))
	var getBurst []byte
	for i := 0; i < depth; i++ {
		getBurst = appendRESPCommand(getBurst, "CORE.GET", strconv.Itoa(int(rng.Int31n(n))))
	}

	for _, arm := range []struct {
		name         string
		instrumented bool
	}{
		{"instrumented", true},
		{"bare", false},
	} {
		b.Run(arm.name, func(b *testing.B) {
			maint := kcore.New(gen.ErdosRenyi(n, 40_000, 1), kcore.WithWorkers(1))
			defer maint.Close()
			srv := New(maint)
			if !arm.instrumented {
				srv.metrics = nil
			}
			c := &conn{srv: srv, wr: resp.NewWriterSize(io.Discard, 16<<10)}

			runBurst := func() {
				off := 0
				for {
					m, err := c.par.Parse(getBurst[off:], &c.cmd)
					off += m
					if err == resp.ErrIncomplete {
						break
					}
					if err != nil {
						b.Fatalf("parse: %v", err)
					}
					c.handle(c.cmd.Args)
				}
				c.endCycle()
				if err := c.wr.Flush(); err != nil {
					b.Fatalf("flush: %v", err)
				}
			}

			runBurst() // warm scratch
			if arm.instrumented {
				allocs := testing.AllocsPerRun(100, runBurst)
				if perOp := allocs / depth; perOp != 0 {
					b.Fatalf("instrumented hot path allocates: %.2f allocs/op, want 0", perOp)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runBurst()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/depth, "ns/cmd")
		})
	}
}
