//go:build !linux

package server

// Conn shards need epoll; on other platforms the server always runs the
// goroutine-per-conn mode and WithConnShards is a no-op.

func defaultConnShards() int { return 0 }

type shardGroup struct{}

func newShardGroup(*Server, int) *shardGroup { return nil }

func (*shardGroup) adopt(*conn) bool { return false }

func (*shardGroup) wakeAll() {}

// connShard exists so conn's event-mode fields compile; it is never
// instantiated off Linux.
type connShard struct{}
