package server

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/kcore"
	"repro/obs"
)

// TestMetricsScrapeDuringChurn scrapes the full Prometheus registry in
// a tight loop while pipelined clients churn mixed reads and writes —
// on every registered engine. Each rendered exposition must parse
// (obs.ParseText) and carry the core metric families; under -race this
// is the data-race proof for the whole instrumentation stack: burst
// flushes, scrape-time gauge funcs, pipeline-stage histograms, and the
// registry walk all running concurrently.
func TestMetricsScrapeDuringChurn(t *testing.T) {
	const (
		n      = 800
		m      = 3000
		depth  = 32
		rounds = 40
	)
	for _, alg := range kcore.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			base := gen.ErdosRenyi(n, m, 11)
			pool := gen.SampleNonEdges(base, 256, 12)
			mnt := kcore.New(base, kcore.WithAlgorithm(alg), kcore.WithWorkers(2))
			defer mnt.Close()
			srv, addr := startServer(t, mnt, WithSlowlog(0, 32))

			reg := obs.NewRegistry()
			srv.RegisterMetrics(reg)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			errc := make(chan error, 2)
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
				if err != nil {
					errc <- err
					return
				}
				defer c.Close()
				for r := 0; ; r++ {
					select {
					case <-stop:
						return
					default:
					}
					e := pool[r%len(pool)]
					c.Send("CORE.INSERT", e.U, e.V)
					c.Send("CORE.REMOVE", e.U, e.V)
					for i := 0; i < depth; i++ {
						c.Send("CORE.GET", int32(i*7%n))
					}
					if err := c.Flush(); err != nil {
						errc <- err
						return
					}
					for i := 0; i < depth+2; i++ {
						if _, err := c.Receive(); err != nil {
							errc <- err
							return
						}
					}
					if r%8 == 0 {
						if _, err := c.Do("CORE.HIST"); err != nil {
							errc <- err
							return
						}
					}
				}
			}()

			var buf bytes.Buffer
			var last map[string]float64
			for i := 0; i < rounds; i++ {
				buf.Reset()
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Fatalf("scrape %d: %v", i, err)
				}
				series, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("scrape %d did not parse: %v\n%s", i, err, buf.String())
				}
				last = series
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}

			for _, fam := range []string{
				`kcored_commands_total{family="read"}`,
				`kcored_connections_active`,
				`kcored_epoch`,
				`kcored_slowlog_entries`,
			} {
				if _, ok := last[fam]; !ok {
					t.Fatalf("series %s missing from scrape", fam)
				}
			}
			found := false
			for k := range last {
				if strings.HasPrefix(k, "kcore_pipeline_stage_seconds_count{") &&
					strings.Contains(k, `engine="`+alg.String()+`"`) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no kcore_pipeline_stage_seconds series for engine %q", alg)
			}
		})
	}
}

// TestSlowlogCommand drives CORE.SLOWLOG end to end at threshold 0:
// every individually-timed command (aggregates, admin) lands in the
// ring, GET returns newest-first 5-field entries, RESET clears the ring
// but not the running total, and the subcommand grammar is enforced.
func TestSlowlogCommand(t *testing.T) {
	mnt := kcore.New(gen.ErdosRenyi(300, 1000, 3), kcore.WithWorkers(1))
	defer mnt.Close()
	_, addr := startServer(t, mnt, WithSlowlog(0, 8))
	c := dial(t, addr)

	for i := 0; i < 12; i++ { // overfill the size-8 ring
		if _, err := c.Do("CORE.HIST"); err != nil {
			t.Fatalf("CORE.HIST: %v", err)
		}
	}
	ln, err := client.Int(c.Do("CORE.SLOWLOG", "LEN"))
	if err != nil {
		t.Fatalf("SLOWLOG LEN: %v", err)
	}
	if ln != 8 {
		t.Fatalf("SLOWLOG LEN = %d after 12 slow commands into a size-8 ring, want 8", ln)
	}

	v, err := c.Do("CORE.SLOWLOG", "GET", 3)
	if err != nil {
		t.Fatalf("SLOWLOG GET 3: %v", err)
	}
	if len(v.Array) != 3 {
		t.Fatalf("SLOWLOG GET 3 returned %d entries", len(v.Array))
	}
	var prevID int64 = 1 << 62
	for _, e := range v.Array {
		if len(e.Array) != 5 {
			t.Fatalf("slowlog entry has %d fields, want 5", len(e.Array))
		}
		id := e.Array[0].Int
		if id >= prevID {
			t.Fatalf("slowlog not newest-first: id %d after %d", id, prevID)
		}
		prevID = id
		// CORE.SLOWLOG itself is exempt, so only the HISTs are in here.
		if cmd := string(e.Array[3].Str); cmd != "CORE.HIST" {
			t.Fatalf("slowlog entry cmd = %q, want CORE.HIST", cmd)
		}
	}

	// Default GET limit is 10, capped by ring occupancy.
	if v, err = c.Do("CORE.SLOWLOG", "GET"); err != nil || len(v.Array) != 8 {
		t.Fatalf("SLOWLOG GET = %d entries, %v; want 8", len(v.Array), err)
	}

	if s, err := client.String(c.Do("CORE.SLOWLOG", "RESET")); err != nil || s != "OK" {
		t.Fatalf("SLOWLOG RESET = %q, %v", s, err)
	}
	if ln, err = client.Int(c.Do("CORE.SLOWLOG", "LEN")); err != nil || ln != 0 {
		t.Fatalf("SLOWLOG LEN after RESET = %d, %v", ln, err)
	}

	if _, err := c.Do("CORE.SLOWLOG", "BOGUS"); err == nil ||
		!strings.Contains(err.Error(), "unknown CORE.SLOWLOG subcommand") {
		t.Fatalf("SLOWLOG BOGUS error = %v, want unknown-subcommand", err)
	}
}

// TestStatsObservabilityFields pins the CORE.STATS additions: identity
// (version/engine/uptime) plus the per-family command counters and
// latency percentiles that mirror the Prometheus families.
func TestStatsObservabilityFields(t *testing.T) {
	mnt := kcore.New(gen.ErdosRenyi(300, 1000, 5), kcore.WithWorkers(1))
	defer mnt.Close()
	_, addr := startServer(t, mnt)
	c := dial(t, addr)

	if _, err := c.Do("CORE.GET", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("CORE.HIST"); err != nil {
		t.Fatal(err)
	}
	st, err := client.StringMap(c.Do("CORE.STATS"))
	if err != nil {
		t.Fatalf("CORE.STATS: %v", err)
	}
	if st["version"] != Version {
		t.Fatalf("stats version = %q, want %q", st["version"], Version)
	}
	if st["engine"] != kcore.ParallelOrder.String() {
		t.Fatalf("stats engine = %q, want %q", st["engine"], kcore.ParallelOrder)
	}
	for _, key := range []string{
		"uptime_sec", "inflight_writes", "slowlog_len", "slow_total",
		"cmds_read", "cmds_write", "cmds_aggregate", "cmds_admin",
		"read_p50_ms", "read_p99_ms", "aggregate_p50_ms", "aggregate_p99_ms",
	} {
		if _, ok := st[key]; !ok {
			t.Fatalf("CORE.STATS missing %q (got %d keys)", key, len(st))
		}
	}
	if st["cmds_aggregate"] == "0" {
		t.Fatalf("cmds_aggregate = 0 after CORE.HIST")
	}
}
