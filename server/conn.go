package server

import (
	"errors"
	"io"
	"net"

	"repro/kcore"
	"repro/resp"
)

// conn is one client connection: its own RESP reader/writer and the
// queue of write futures whose replies are still owed.
//
// The dispatch loop preserves RESP's per-connection semantics — replies
// in command order, reads observe earlier writes — while letting a
// pipelined write burst coalesce: CORE.INSERT/CORE.REMOVE are submitted
// asynchronously (kcore.Pending) and their replies deferred; the queue
// is drained (waiting each future, writing each reply, in order) the
// moment a non-write command needs to run, the pipelined burst ends, or
// the queue hits the server's maxPipeline bound. Because one goroutine
// submits in command order and the maintainer's coalescer folds with
// last-op-per-edge-wins in enqueue order, the drain-later scheme is
// observationally identical to executing the commands one at a time —
// just in ~one engine round instead of one per command.
type conn struct {
	srv     *Server
	nc      net.Conn
	rd      *resp.Reader
	wr      *resp.Writer
	pending []*kcore.Pending
	cycle   int64 // commands since the last reply flush (pipelining depth)
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv: s,
		nc:  nc,
		rd:  resp.NewReaderSize(nc, 16<<10),
		wr:  resp.NewWriterSize(nc, 16<<10),
	}
}

// serve is the connection goroutine body.
func (c *conn) serve() {
	defer c.nc.Close()
	for {
		args, err := c.rd.ReadCommand()
		if err != nil {
			c.readFailed(err)
			return
		}
		c.srv.stats.commands.Add(1)
		c.cycle++
		if quit := c.dispatch(args); quit {
			c.drainPending()
			c.wr.Flush()
			return
		}
		if len(c.pending) >= c.srv.maxPipeline {
			c.drainPending()
		}
		if !c.rd.Buffered() {
			// The pipelined burst is over (nothing left undecoded):
			// settle the write futures and flush all replies in one write.
			c.drainPending()
			c.srv.stats.pipeDepth.RecordValue(float64(c.cycle))
			c.cycle = 0
			if err := c.wr.Flush(); err != nil {
				return
			}
		}
	}
}

// readFailed finishes the connection after a failed read: owed replies
// are still settled and flushed, a protocol error gets an error reply,
// and a clean shutdown (EOF, or the Shutdown nudge) stays quiet.
func (c *conn) readFailed(err error) {
	c.drainPending()
	var pe *resp.ProtocolError
	switch {
	case errors.As(err, &pe):
		c.srv.stats.protoErrors.Add(1)
		c.writeError("ERR protocol error: " + pe.Error())
	case errors.Is(err, io.EOF):
		// Clean close between frames.
	case isTimeout(err) && c.srv.closing.Load():
		// The Shutdown nudge: in-flight futures drained above, buffered
		// replies about to flush — the graceful path.
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
		// Peer vanished mid-frame or Close won the race; nothing to say.
	default:
		c.srv.logf("server: read from %v: %v", c.nc.RemoteAddr(), err)
	}
	c.wr.Flush()
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch routes one command. It reports whether the connection should
// close (QUIT).
func (c *conn) dispatch(args [][]byte) (quit bool) {
	name := asciiUpper(args[0])
	cmd, ok := commands[string(name)] // no-alloc map lookup on []byte key
	if !ok {
		c.writeError("ERR unknown command '" + clip(args[0]) + "'")
		return false
	}
	if len(args) < cmd.minArgs || (cmd.maxArgs >= 0 && len(args) > cmd.maxArgs) {
		c.writeError("ERR wrong number of arguments for '" + cmd.name + "'")
		return false
	}
	if !cmd.write {
		// Per-connection read-your-writes: a non-write command must
		// observe every write this connection pipelined before it.
		c.drainPending()
	} else {
		c.srv.stats.writeCmds.Add(1)
	}
	return cmd.fn(c, args)
}

// drainPending waits each owed write future in submission order and
// writes its reply: the applied-edge count of the coalesced engine batch
// that covered the command (shared across coalesced ops, exactly like
// the in-process BatchResult contract).
func (c *conn) drainPending() {
	for i, pd := range c.pending {
		res := pd.Wait()
		c.wr.WriteInt(int64(res.Applied))
		c.pending[i] = nil
	}
	c.pending = c.pending[:0]
}

// writeError emits an error reply. Every owed write future settles
// first: replies must leave in command order, and an immediate error
// path (unknown command, bad arity, malformed argument) would otherwise
// jump ahead of the deferred integer replies of a pipelined write burst
// and misattribute every reply after it.
func (c *conn) writeError(msg string) {
	c.drainPending()
	c.srv.stats.errorsSent.Add(1)
	c.wr.WriteError(msg)
}

// asciiUpper upper-cases b in place (command names are ASCII) and
// returns it; the reader hands us freshly owned slices.
func asciiUpper(b []byte) []byte {
	for i, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			b[i] = ch - 'a' + 'A'
		}
	}
	return b
}
