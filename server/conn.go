package server

import (
	"errors"
	"io"
	"net"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/resp"
)

// conn is one client connection: its own RESP codec state, the queue of
// write futures whose replies are still owed, and the per-connection
// scratch that keeps the steady-state command path allocation-free —
// the command arena (resp.Command), the CORE.MGET id buffer, the
// CORE.INSERT/REMOVE edge buffers, and the error-message buffer. The
// same struct backs both connection-handling modes: the classic
// goroutine-per-conn loop (serve) and the event-driven conn shards
// (shard_linux.go), which reuse the dispatch core and add their own
// read/write plumbing.
//
// The dispatch loop preserves RESP's per-connection semantics — replies
// in command order, reads observe earlier writes — while letting a
// pipelined write burst coalesce: CORE.INSERT/CORE.REMOVE are submitted
// asynchronously (kcore.Pending) and their replies deferred; the queue
// is drained (waiting each future, writing each reply, in order) the
// moment a non-write command needs to run, the pipelined burst ends, or
// the queue hits the server's maxPipeline bound. Because one goroutine
// submits in command order and the maintainer's coalescer folds with
// last-op-per-edge-wins in enqueue order, the drain-later scheme is
// observationally identical to executing the commands one at a time —
// just in ~one engine round instead of one per command.
type conn struct {
	srv *Server
	nc  net.Conn
	rd  *resp.Reader // goroutine mode; nil under a conn shard
	wr  *resp.Writer

	cmd     resp.Command
	pending []owed
	cycle   int64 // commands since the last reply flush (pipelining depth)

	// Burst-grained instrumentation scratch (see serverMetrics): one
	// clock read when a burst starts, per-family command counts flushed
	// to the shared counters when it ends, and the nanoseconds already
	// attributed to individually timed commands and write drains within
	// the burst — subtracted so the read-family burst mean covers only
	// untimed dispatch work.
	burstStart time.Time
	famN       [numFamilies]uint32
	timedNs    int64

	// Recycled scratch. edgeFree holds edge buffers whose futures have
	// settled — a buffer lent to the maintainer's pipeline is retained by
	// the coalescer until its batch applies, so it is only safe to reuse
	// after the owed future's Wait returns (drainPending recycles there).
	ids      []int32
	hist     []int64 // range-histogram bins (CORE.HIST lo hi)
	edgeFree [][]graph.Edge
	errBuf   []byte

	// Event-mode state (conn shards); unused in goroutine mode.
	shard *connShard
	fd    int
	in    []byte      // unconsumed query bytes
	out   []byte      // reply bytes the socket wouldn't take yet
	par   resp.Parser // incremental parser over in
	flags connFlags

	// A blocking command (CORE.SYNC, CORE.WAIT) reached dispatch on a
	// conn shard: the shard must detach the connection to a dedicated
	// goroutine before running it (shard_linux.go). blockedArgs are
	// deep copies — the originals alias c.in, which compaction reuses.
	blocked     *command
	blockedArgs [][]byte
}

type connFlags uint8

const (
	connWantWrite connFlags = 1 << iota // EPOLLOUT armed (out non-empty)
	connPaused                          // input paused until out drains
	connDead                            // fd failed; close on next touch
)

// owed pairs a deferred write reply with the edge buffer lent to the
// pipeline for it.
type owed struct {
	pd    *kcore.Pending
	edges []graph.Edge
}

func newConn(s *Server, nc net.Conn) *conn {
	// The reader is created lazily in serve: a connection adopted by a
	// conn shard parses from its query buffer instead and would waste the
	// stream buffer.
	return &conn{
		srv: s,
		nc:  nc,
		wr:  resp.NewWriterSize(nc, 16<<10),
	}
}

// serve is the goroutine-per-connection loop (the fallback mode; conn
// shards replace it on Linux).
func (c *conn) serve() {
	defer c.nc.Close()
	if c.rd == nil {
		c.rd = resp.NewReaderSize(c.nc, 16<<10)
	}
	for {
		err := c.rd.ReadCommand(&c.cmd)
		if err != nil {
			c.readFailed(err)
			return
		}
		if quit := c.handle(c.cmd.Args); quit {
			c.endCycle()
			c.wr.Flush()
			return
		}
		if !c.rd.Buffered() {
			// The pipelined burst is over (nothing left undecoded):
			// settle the write futures and flush all replies in one write.
			c.endCycle()
			if err := c.wr.Flush(); err != nil {
				return
			}
		}
	}
}

// handle runs one decoded command: the shared core of both modes.
func (c *conn) handle(args [][]byte) (quit bool) {
	c.srv.stats.commands.Add(1)
	if c.cycle++; c.cycle == 1 && c.srv.metrics != nil {
		// One clock read per pipelined burst — the whole cost the
		// zero-allocation read path pays for latency observation.
		c.burstStart = time.Now()
		c.timedNs = 0
	}
	if quit := c.dispatch(args); quit {
		return true
	}
	if len(c.pending) >= c.srv.maxPipeline {
		c.drainPending()
	}
	return false
}

// endCycle settles deferred write replies and records the observed
// pipelining depth; called when a pipelined burst ends. Family counts
// and the read-latency burst mean flush first, so the final write drain
// is not charged to the reads.
func (c *conn) endCycle() {
	c.flushObs()
	c.drainPending()
	c.srv.stats.pipeDepth.RecordValue(float64(c.cycle))
	c.cycle = 0
}

// flushObs flushes the burst's per-family command counts to the shared
// counters and records the read-family latency as the burst mean: the
// burst's untimed wall time (individually timed commands and write
// drains already subtracted via timedNs) divided by its command count,
// observed once per read command (ObserveN). Everything here is atomic
// adds — no allocation, no locks.
func (c *conn) flushObs() {
	m := c.srv.metrics
	if m == nil {
		c.famN = [numFamilies]uint32{}
		return
	}
	nRead := int64(c.famN[famRead])
	var total int64
	for f := range c.famN {
		if n := int64(c.famN[f]); n != 0 {
			m.famCount[f].Add(n)
			total += n
		}
	}
	c.famN = [numFamilies]uint32{}
	if nRead > 0 && !c.burstStart.IsZero() {
		per := (time.Since(c.burstStart).Nanoseconds() - c.timedNs) / total
		if per < 0 {
			per = 0 // clock skew vs timed sections; clamp
		}
		m.famLat[famRead].ObserveN(per, nRead)
	}
	c.burstStart = time.Time{}
}

// readFailed finishes the connection after a failed read: owed replies
// are still settled and flushed, a protocol error gets an error reply,
// and a clean shutdown (EOF, or the Shutdown nudge) stays quiet.
func (c *conn) readFailed(err error) {
	c.flushObs()
	c.drainPending()
	var pe *resp.ProtocolError
	switch {
	case errors.As(err, &pe):
		c.srv.stats.protoErrors.Add(1)
		c.writeError("ERR protocol error: " + pe.Error())
	case errors.Is(err, io.EOF):
		// Clean close between frames.
	case isTimeout(err) && c.srv.closing.Load():
		// The Shutdown nudge: in-flight futures drained above, buffered
		// replies about to flush — the graceful path.
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
		// Peer vanished mid-frame or Close won the race; nothing to say.
	default:
		c.srv.logf("server: read from %v: %v", c.nc.RemoteAddr(), err)
	}
	c.wr.Flush()
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch routes one command. It reports whether the connection should
// close (QUIT).
func (c *conn) dispatch(args [][]byte) (quit bool) {
	name := asciiUpper(args[0])
	cmd, ok := commands[string(name)] // no-alloc map lookup on []byte key
	if !ok {
		c.writeErrArg("unknown command", args[0])
		return false
	}
	c.famN[cmd.family]++ // flushed to the shared counters at burst end
	if len(args) < cmd.minArgs || (cmd.maxArgs >= 0 && len(args) > cmd.maxArgs) {
		c.writeErrParts("wrong number of arguments for '", []byte(cmd.name), "'")
		return false
	}
	if cmd.denyOnReplica && c.srv.replica != nil {
		c.writeError("READONLY replica: write commands must go to the leader")
		return false
	}
	if !cmd.write {
		// Per-connection read-your-writes: a non-write command must
		// observe every write this connection pipelined before it.
		c.drainPending()
	} else {
		c.srv.stats.writeCmds.Add(1)
	}
	if cmd.blocking && c.shard != nil {
		// Running a blocking command on the shard's event loop would
		// stall every connection it multiplexes. Park the command; the
		// shard detaches the connection to its own goroutine and runs it
		// there. Blocking commands are non-write, so pending replies
		// drained above and reply order is preserved. Args must be
		// copied: they point into c.in, which the shard compacts.
		c.blocked = cmd
		c.blockedArgs = c.blockedArgs[:0]
		for _, a := range args {
			c.blockedArgs = append(c.blockedArgs, append([]byte(nil), a...))
		}
		return false
	}
	if cmd.timed {
		// Aggregate and admin commands are rare and heavy enough to time
		// individually (and are the slowlog's primary inhabitants); their
		// wall time is subtracted from the burst mean via timedNs.
		if m := c.srv.metrics; m != nil {
			t0 := time.Now()
			quit = cmd.fn(c, args)
			el := time.Since(t0)
			c.timedNs += el.Nanoseconds()
			m.famLat[cmd.family].Observe(el.Nanoseconds())
			if !cmd.noSlowlog && m.slow.Eligible(el) {
				m.slow.Add(cmd.name, "", el)
			}
			return quit
		}
	}
	return cmd.fn(c, args)
}

// drainPending waits each owed write future in submission order and
// writes its reply: the applied-edge count of the coalesced engine batch
// that covered the command (shared across coalesced ops, exactly like
// the in-process BatchResult contract). The edge buffer lent to the
// pipeline is recycled here — only after Wait proves the batch applied.
func (c *conn) drainPending() {
	k := len(c.pending)
	if k == 0 {
		return
	}
	m := c.srv.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	for i := range c.pending {
		res := c.pending[i].pd.Wait()
		c.wr.WriteInt(int64(res.Applied))
		if eb := c.pending[i].edges; cap(eb) <= maxEdgeScratch && len(c.edgeFree) < maxEdgeFree {
			c.edgeFree = append(c.edgeFree, eb[:0])
		}
		c.pending[i] = owed{}
	}
	c.pending = c.pending[:0]
	if m != nil {
		// Every write in the drain waited ≈ the whole drain (futures of
		// one burst settle on the same coalesced batches), so the drain's
		// wall time is each write's observed latency: one weighted
		// observation instead of k clock reads.
		el := time.Since(t0)
		ns := el.Nanoseconds()
		m.famLat[famWrite].ObserveN(ns, int64(k))
		m.inflightWrites.Add(-int64(k))
		c.timedNs += ns
		if m.slow.Eligible(el) {
			m.slow.Add("CORE.INSERT|REMOVE", "pipelined write drain", el)
		}
	}
}

const (
	// maxEdgeScratch bounds how large a recycled edge buffer may stay; a
	// monster CORE.INSERT should not pin its buffer on an idle conn.
	maxEdgeScratch = 4096
	// maxEdgeFree bounds the free list (deep write pipelines lend several
	// buffers out at once before the first drain returns any).
	maxEdgeFree = 8
)

// writeError emits an error reply. Every owed write future settles
// first: replies must leave in command order, and an immediate error
// path (unknown command, bad arity, malformed argument) would otherwise
// jump ahead of the deferred integer replies of a pipelined write burst
// and misattribute every reply after it.
func (c *conn) writeError(msg string) {
	c.drainPending()
	c.srv.stats.errorsSent.Add(1)
	c.wr.WriteError(msg)
}

// writeErrArg emits "ERR <what> '<arg>'" with the untrusted argument
// clipped and sanitized, building the message in the connection's error
// scratch — no string concatenation, no per-error allocations.
func (c *conn) writeErrArg(what string, arg []byte) {
	b := append(c.errBuf[:0], "ERR "...)
	b = append(b, what...)
	b = append(b, " '"...)
	b = appendClipped(b, arg)
	b = append(b, '\'')
	c.errBuf = b
	c.writeErrBytes(b)
}

// writeErrParts emits "ERR <s1><b><s2>" the same way, for error shapes
// whose dynamic part needs no clipping (command names from the table).
func (c *conn) writeErrParts(s1 string, mid []byte, s2 string) {
	b := append(c.errBuf[:0], "ERR "...)
	b = append(b, s1...)
	b = append(b, mid...)
	b = append(b, s2...)
	c.errBuf = b
	c.writeErrBytes(b)
}

func (c *conn) writeErrBytes(msg []byte) {
	c.drainPending()
	c.srv.stats.errorsSent.Add(1)
	c.wr.WriteErrorBytes(msg)
}

// asciiUpper upper-cases b in place (command names are ASCII) and
// returns it. The bytes live in the connection's own scratch (arena or
// query buffer), already consumed past by the parser, so mutating them
// is safe.
func asciiUpper(b []byte) []byte {
	for i, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			b[i] = ch - 'a' + 'A'
		}
	}
	return b
}
