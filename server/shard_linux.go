//go:build linux

package server

import (
	"bytes"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/resp"
)

// Conn shards: the event-driven connection-handling mode (Linux only).
//
// Instead of one goroutine per connection, connections are distributed
// round-robin across a fixed set of shard workers (GOMAXPROCS by
// default, kcored's -conn-shards flag). Each worker runs its own epoll
// loop over the connections it owns: it reads a ready socket until
// EAGAIN, parses the bytes incrementally (resp.Parser — zero-copy out
// of the query buffer), dispatches through the same per-conn command
// core as the goroutine mode, and flushes replies once per readiness
// burst. The fixed worker count removes per-conn goroutine stacks and
// scheduler churn, and keeps a pipelined burst's parse→dispatch→reply
// cycle on one core, cache-hot — the kiwi event-multiplexing design,
// adapted to the maintainer's async write futures.
//
// Raw epoll coexists with the Go runtime's netpoller: the listener and
// accept path stay on the runtime, and an adopted connection's fd is
// only ever read/written by its shard worker (the runtime still owns
// closing it via net.Conn.Close). Each worker blocks in EpollWait; a
// self-pipe wakes it for shutdown, where every connection gets the same
// graceful drain as the goroutine mode: remaining complete commands
// processed, write futures settled, replies flushed, then close.

// defaultConnShards is the shard count when WithConnShards is not given.
func defaultConnShards() int { return runtime.GOMAXPROCS(0) }

type shardGroup struct {
	srv    *Server
	shards []*connShard
	next   atomic.Uint64
}

// newShardGroup builds n shard workers and starts them. Any setup
// failure tears the group down and returns nil — the server then falls
// back to goroutine-per-conn mode.
func newShardGroup(s *Server, n int) *shardGroup {
	sg := &shardGroup{srv: s}
	for i := 0; i < n; i++ {
		sh, err := newConnShard(s)
		if err != nil {
			for _, prev := range sg.shards {
				prev.closeFDs()
			}
			s.logf("server: conn shards unavailable (%v); using goroutine per conn", err)
			return nil
		}
		sg.shards = append(sg.shards, sh)
	}
	for _, sh := range sg.shards {
		s.inFlight.Add(1)
		go func(sh *connShard) {
			defer s.inFlight.Done()
			sh.run()
		}(sh)
	}
	return sg
}

// adopt moves an accepted connection onto a shard. It reports false if
// the connection cannot be event-managed (no syscall access); the
// caller then serves it with a goroutine.
func (sg *shardGroup) adopt(c *conn) bool {
	sc, ok := c.nc.(syscall.Conn)
	if !ok {
		return false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	fd := -1
	// The runtime keeps the socket non-blocking; Control only extracts
	// the fd (unlike File(), which would switch the socket to blocking).
	// The fd stays valid because the shard closes the conn through
	// net.Conn.Close, never behind the runtime's back.
	if err := raw.Control(func(f uintptr) { fd = int(f) }); err != nil || fd < 0 {
		return false
	}
	sh := sg.shards[int(sg.next.Add(1))%len(sg.shards)]
	return sh.adopt(c, fd)
}

func (sg *shardGroup) wakeAll() {
	for _, sh := range sg.shards {
		sh.wake()
	}
}

type connShard struct {
	srv   *Server
	epfd  int
	wakeR int
	wakeW int

	// epFile wraps epfd so the worker can park on the Go runtime's
	// netpoller while the shard is idle. A raw blocking EpollWait would
	// pin its P in syscall state until sysmon retakes it — with few
	// cores that adds sysmon-interval latency (tens to hundreds of µs)
	// to every quiet-connection wakeup. An epoll fd is itself pollable
	// (readable when events are pending), so the worker waits for epfd
	// readiness like any socket, then drains events with a zero-timeout
	// EpollWait.
	epFile *os.File
	epRaw  syscall.RawConn

	// Pre-bound state for the netpoller wait: the drain closure and the
	// variables it writes live on the shard so no closure (or escaping
	// capture) is allocated per wakeup.
	events   []syscall.EpollEvent
	waitN    int
	waitErr  error
	drainEvs func(fd uintptr) bool

	// conns maps fd → conn. The worker owns the conns themselves; the
	// map is locked only because the acceptor inserts into it.
	mu    sync.Mutex
	conns map[int]*conn
}

func newConnShard(s *Server) (*connShard, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	// Self-pipe wakeup (the syscall package has no eventfd): a byte on
	// wakeW pops the worker out of its wait for shutdown.
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, err
	}
	sh := &connShard{srv: s, epfd: epfd, wakeR: p[0], wakeW: p[1], conns: make(map[int]*conn)}
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(sh.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, sh.wakeR, &ev); err != nil {
		sh.closeFDs()
		return nil, err
	}
	// Non-blocking first: os.NewFile only hands a non-blocking fd to the
	// runtime poller (epoll_wait with a zero timeout is unaffected).
	if err := syscall.SetNonblock(epfd, true); err == nil {
		sh.epFile = os.NewFile(uintptr(epfd), "epoll")
		if raw, err := sh.epFile.SyscallConn(); err == nil {
			sh.epRaw = raw
		}
	}
	sh.events = make([]syscall.EpollEvent, 128)
	sh.drainEvs = func(fd uintptr) bool {
		for {
			m, e := syscall.EpollWait(int(fd), sh.events, 0)
			if e == syscall.EINTR {
				continue
			}
			sh.waitN, sh.waitErr = m, e
			return m > 0 || e != nil
		}
	}
	return sh, nil
}

func (sh *connShard) closeFDs() {
	if sh.epFile != nil {
		sh.epFile.Close() // owns epfd
	} else {
		syscall.Close(sh.epfd)
	}
	syscall.Close(sh.wakeR)
	syscall.Close(sh.wakeW)
}

// waitEvents blocks until epoll events are pending and drains up to
// len(sh.events) of them, parking on the runtime netpoller while idle.
func (sh *connShard) waitEvents() (int, error) {
	if sh.epRaw != nil {
		sh.waitN, sh.waitErr = 0, nil
		err := sh.epRaw.Read(sh.drainEvs)
		if sh.waitN > 0 || sh.waitErr != nil {
			return sh.waitN, sh.waitErr
		}
		if err != nil {
			// The runtime refused to poll this fd (pollability probe lost a
			// race, unusual kernel); degrade to raw blocking waits for good.
			sh.epRaw = nil
		} else {
			return 0, nil
		}
	}
	// Fallback (epfd not pollable through the runtime): block raw.
	for {
		n, err := syscall.EpollWait(sh.epfd, sh.events, -1)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

func (sh *connShard) wake() {
	var b [1]byte
	syscall.Write(sh.wakeW, b[:]) // EAGAIN when full is fine: a wake is pending
}

func (sh *connShard) adopt(c *conn, fd int) bool {
	c.shard, c.fd = sh, fd
	c.rd = nil // event mode parses from the query buffer, not a stream
	c.wr.Reset(shardSink{c})
	sh.mu.Lock()
	sh.conns[fd] = c
	sh.mu.Unlock()
	ev := syscall.EpollEvent{Events: connInterest, Fd: int32(fd)}
	if err := syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		sh.mu.Lock()
		delete(sh.conns, fd)
		sh.mu.Unlock()
		c.shard, c.fd = nil, 0
		c.wr.Reset(c.nc)
		return false
	}
	return true
}

const (
	connInterest = uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	// readChunk is how much socket data one read syscall may pull in.
	readChunk = 16 << 10
	// inShrinkCap bounds the query buffer kept on an idle connection.
	inShrinkCap = 64 << 10
	// maxOutBuf bounds bufferable reply bytes; beyond it the shard stops
	// reading the connection until the peer drains its replies — the
	// event-mode equivalent of the goroutine mode blocking on write.
	maxOutBuf = 1 << 20
)

func (sh *connShard) lookup(fd int) *conn {
	sh.mu.Lock()
	c := sh.conns[fd]
	sh.mu.Unlock()
	return c
}

// run is the shard worker loop.
func (sh *connShard) run() {
	for {
		n, err := sh.waitEvents()
		if err != nil {
			sh.srv.logf("server: epoll_wait: %v", err)
			break
		}
		events := sh.events
		for i := 0; i < n; i++ {
			ev := &events[i]
			fd := int(ev.Fd)
			if fd == sh.wakeR {
				sh.drainWake()
				continue
			}
			c := sh.lookup(fd)
			if c == nil {
				continue
			}
			if ev.Events&uint32(syscall.EPOLLOUT) != 0 {
				sh.writable(c)
			}
			if ev.Events&uint32(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
				sh.pump(c)
			}
		}
		if sh.srv.closing.Load() {
			sh.finish()
			sh.closeFDs()
			return
		}
	}
}

func (sh *connShard) drainWake() {
	var buf [64]byte
	for {
		if _, err := syscall.Read(sh.wakeR, buf[:]); err != nil {
			return
		}
	}
}

// pump reads the connection until EAGAIN, parsing and dispatching the
// complete commands after every chunk, then settles the burst: deferred
// write futures drained, replies flushed — the event-mode mirror of the
// goroutine loop's "!rd.Buffered()" boundary.
func (sh *connShard) pump(c *conn) {
	if c.flags&connDead != 0 {
		sh.closeConn(c)
		return
	}
	if c.flags&connPaused != 0 {
		return
	}
	peerClosed := false
	var readErr syscall.Errno
	for {
		c.ensureInSpace()
		n, err := syscall.Read(c.fd, c.in[len(c.in):cap(c.in)])
		if n > 0 {
			c.in = c.in[:len(c.in)+n]
			if closed := sh.parseAndDispatch(c); closed {
				return
			}
			if c.flags&connPaused != 0 {
				break // output back-pressure: stop reading for now
			}
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		if err == nil {
			peerClosed = true // read returned 0: EOF
		} else if e, ok := err.(syscall.Errno); ok {
			readErr = e
		} else {
			peerClosed = true
		}
		break
	}
	if c.cycle > 0 {
		c.endCycle()
	} else {
		c.drainPending()
	}
	if err := c.wr.Flush(); err != nil || c.flags&connDead != 0 {
		sh.closeConn(c)
		return
	}
	if peerClosed || readErr != 0 {
		if readErr != 0 && readErr != syscall.ECONNRESET && readErr != syscall.EBADF {
			sh.srv.logf("server: read from %v: %v", c.nc.RemoteAddr(), readErr)
		}
		sh.closeConn(c)
	}
}

// parseAndDispatch consumes every complete command in the query buffer.
// It reports whether the connection was closed (QUIT or protocol
// error).
func (sh *connShard) parseAndDispatch(c *conn) (closed bool) {
	off := 0
	for {
		n, err := c.par.Parse(c.in[off:], &c.cmd)
		off += n
		if err == resp.ErrIncomplete {
			break
		}
		if err != nil {
			c.in = c.in[:0]
			c.readFailed(err) // drains futures, writes the error reply, flushes
			sh.closeConn(c)
			return true
		}
		if quit := c.handle(c.cmd.Args); quit {
			c.endCycle()
			c.wr.Flush()
			sh.closeConn(c)
			return true
		}
		if c.blocked != nil {
			// A blocking command (CORE.SYNC, CORE.WAIT) must not run on
			// the event loop. Hand the connection — including any not-yet-
			// parsed pipelined bytes — to a dedicated goroutine.
			c.in = append(c.in[:0], c.in[off:]...)
			if c.flags&connDead != 0 {
				sh.closeConn(c)
				return true
			}
			sh.detach(c)
			return true
		}
	}
	if off > 0 {
		c.in = append(c.in[:0], c.in[off:]...)
	}
	if len(c.in) == 0 && cap(c.in) > inShrinkCap {
		c.in = nil
	}
	return false
}

func (c *conn) ensureInSpace() {
	if cap(c.in)-len(c.in) >= 4<<10 {
		return
	}
	newCap := 2 * cap(c.in)
	if newCap < len(c.in)+readChunk {
		newCap = len(c.in) + readChunk
	}
	nb := make([]byte, len(c.in), newCap)
	copy(nb, c.in)
	c.in = nb
}

// shardSink is the resp.Writer's destination for a sharded connection:
// it writes straight to the socket and buffers only what the socket
// refuses (EAGAIN), arming EPOLLOUT for the remainder.
type shardSink struct{ c *conn }

func (s shardSink) Write(p []byte) (int, error) {
	c := s.c
	if c.flags&connDead != 0 {
		return 0, net.ErrClosed
	}
	if len(c.out) > 0 {
		c.out = append(c.out, p...)
		c.checkOutCap()
		return len(p), nil
	}
	n := 0
	for n < len(p) {
		m, err := syscall.Write(c.fd, p[n:])
		if m > 0 {
			n += m
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		c.flags |= connDead
		if err == nil {
			err = syscall.EIO
		}
		return n, err
	}
	if n < len(p) {
		c.out = append(c.out, p[n:]...)
		c.armWrite()
		c.checkOutCap()
	}
	return len(p), nil
}

func (c *conn) armWrite() {
	if c.flags&connWantWrite != 0 {
		return
	}
	c.flags |= connWantWrite
	c.updateInterest()
}

// checkOutCap pauses input when the reply backlog passes maxOutBuf.
func (c *conn) checkOutCap() {
	if len(c.out) > maxOutBuf && c.flags&connPaused == 0 {
		c.flags |= connPaused
		c.updateInterest()
	}
}

// updateInterest reprograms epoll from the flag state: EPOLLOUT while
// output is backed up, EPOLLIN unless input is paused.
func (c *conn) updateInterest() {
	var events uint32
	if c.flags&connPaused == 0 {
		events |= connInterest
	} else {
		events |= uint32(syscall.EPOLLRDHUP)
	}
	if c.flags&connWantWrite != 0 {
		events |= uint32(syscall.EPOLLOUT)
	}
	ev := syscall.EpollEvent{Events: events, Fd: int32(c.fd)}
	if err := syscall.EpollCtl(c.shard.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev); err != nil {
		c.flags |= connDead
	}
}

// writable drains the buffered output after an EPOLLOUT event.
func (sh *connShard) writable(c *conn) {
	written := 0
	for written < len(c.out) {
		n, err := syscall.Write(c.fd, c.out[written:])
		if n > 0 {
			written += n
			continue
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		c.flags |= connDead
		break
	}
	c.out = append(c.out[:0], c.out[written:]...)
	if c.flags&connDead != 0 {
		sh.closeConn(c)
		return
	}
	if len(c.out) == 0 {
		resume := c.flags&connPaused != 0
		c.flags &^= connWantWrite | connPaused
		c.updateInterest()
		if resume {
			sh.pump(c) // input was paused; level-triggered state was dropped
		}
	}
}

// detach migrates a sharded connection to its own goroutine so a parked
// blocking command cannot stall the event loop. The fd leaves epoll (the
// runtime netpoller's own registration was never removed, so net.Conn
// reads and writes still work), buffered reply bytes are handed to the
// goroutine to write first, and unparsed query bytes are replayed ahead
// of the socket through the goroutine-mode reader. After the blocking
// command finishes, the connection simply continues in goroutine mode —
// it never returns to the shard.
func (sh *connShard) detach(c *conn) {
	syscall.EpollCtl(sh.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
	sh.mu.Lock()
	delete(sh.conns, c.fd)
	sh.mu.Unlock()

	// Flush replies already owed (earlier commands of this burst) into the
	// shard sink — direct to the socket, spilling to c.out on EAGAIN. Must
	// happen before Reset: a bufio Reset discards unflushed bytes.
	c.wr.Flush()
	leftoverOut := c.out
	leftoverIn := c.in
	c.out, c.in = nil, nil
	c.shard, c.fd = nil, 0
	c.flags = 0
	c.wr.Reset(c.nc)
	c.rd = resp.NewReaderSize(io.MultiReader(bytes.NewReader(leftoverIn), c.nc), 16<<10)
	cmd, args := c.blocked, c.blockedArgs
	c.blocked, c.blockedArgs = nil, nil

	srv := sh.srv
	srv.inFlight.Add(1)
	go func() {
		defer func() {
			srv.mu.Lock()
			delete(srv.conns, c)
			srv.mu.Unlock()
			srv.stats.connsActive.Add(-1)
			srv.inFlight.Done()
			c.nc.Close()
		}()
		if len(leftoverOut) > 0 {
			if _, err := c.nc.Write(leftoverOut); err != nil {
				return
			}
		}
		if quit := cmd.fn(c, args); quit {
			c.endCycle()
			c.wr.Flush()
			return
		}
		if err := c.wr.Flush(); err != nil {
			return
		}
		c.serve()
	}()
}

// closeConn releases a sharded connection: epoll drops the fd when the
// socket closes; bookkeeping mirrors the goroutine mode's defer chain.
func (sh *connShard) closeConn(c *conn) {
	if c.fd == 0 && c.shard == nil {
		return
	}
	sh.mu.Lock()
	delete(sh.conns, c.fd)
	sh.mu.Unlock()
	c.nc.Close()
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.stats.connsActive.Add(-1)
	c.shard, c.fd = nil, 0
	c.flags |= connDead
}

// finish is the graceful-shutdown sweep: every connection gets a final
// non-blocking read (commands already queued in the kernel still get
// served, like the goroutine mode draining its buffered reader), its
// write futures settle, replies flush — blocking now, the fd's last act
// — and the socket closes.
func (sh *connShard) finish() {
	sh.mu.Lock()
	conns := make([]*conn, 0, len(sh.conns))
	for _, c := range sh.conns {
		conns = append(conns, c)
	}
	sh.mu.Unlock()
	for _, c := range conns {
		if c.flags&connDead != 0 {
			sh.closeConn(c)
			continue
		}
		for {
			c.ensureInSpace()
			n, err := syscall.Read(c.fd, c.in[len(c.in):cap(c.in)])
			if n > 0 {
				c.in = c.in[:len(c.in)+n]
				continue
			}
			if err == syscall.EINTR {
				continue
			}
			break
		}
		if closed := sh.parseAndDispatch(c); closed {
			continue
		}
		if c.cycle > 0 {
			c.endCycle()
		} else {
			c.drainPending()
		}
		c.wr.Flush()
		// Final flush of any back-pressured bytes, blocking: the worker is
		// exiting, there will be no EPOLLOUT to finish the job later.
		if len(c.out) > 0 && c.flags&connDead == 0 {
			if err := syscall.SetNonblock(c.fd, false); err == nil {
				written := 0
				for written < len(c.out) {
					n, err := syscall.Write(c.fd, c.out[written:])
					if n > 0 {
						written += n
						continue
					}
					if err != syscall.EINTR {
						break
					}
				}
			}
		}
		sh.closeConn(c)
	}
}
