package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/client"
	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
	"repro/kcore"
)

// TestServeAllEnginesConcurrent is the end-to-end differential test of
// the networked stack: N concurrent pipelined clients fire mixed
// reads/writes at an in-process server — on every registered engine —
// and when the dust settles, a full CORE.GET sweep over the wire must be
// byte-equal to a fresh BZ decomposition of the graph the surviving
// writes describe. Run under -race it also exercises the
// connection-goroutine/applier/snapshot interplay.
//
// Determinism of the final state: every client owns a disjoint slice of
// a shared non-edge pool plus a disjoint range of fresh (beyond-N)
// vertex ids. The churn phase inserts and removes freely inside that
// ownership; the final phase re-inserts the client's full slice and
// removes all its fresh-range edges, so the quiescent graph is exactly
// base + every pool slice, with the grown vertices isolated — computable
// without observing the race.
func TestServeAllEnginesConcurrent(t *testing.T) {
	const (
		nBase    = 1500
		mBase    = 5000
		nClients = 6
		perCli   = 120 // pool edges per client
		rounds   = 8
		depth    = 32 // pipeline depth during churn
	)
	for _, alg := range kcore.Algorithms() {
		t.Run(alg.String(), func(t *testing.T) {
			base := gen.ErdosRenyi(nBase, mBase, 42)
			baseEdges := base.Edges()
			pool := gen.SampleNonEdges(base, nClients*perCli, 43)
			m := kcore.New(base, kcore.WithAlgorithm(alg), kcore.WithWorkers(4))
			defer m.Close()
			srv, addr := startServer(t, m)

			var wg sync.WaitGroup
			errc := make(chan error, nClients)
			for cli := 0; cli < nClients; cli++ {
				wg.Add(1)
				go func(cli int) {
					defer wg.Done()
					errc <- runMixedClient(addr, cli, pool[cli*perCli:(cli+1)*perCli], rounds, depth)
				}(cli)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Quiescent expected graph: base + the whole pool; fresh-range
			// vertices isolated (every client removed its growth edges).
			c := dial(t, addr)
			if _, err := client.Int(c.Do("CORE.FLUSH")); err != nil {
				t.Fatalf("CORE.FLUSH: %v", err)
			}
			n, err := client.Int(c.Do("CORE.N"))
			if err != nil {
				t.Fatalf("CORE.N: %v", err)
			}
			if n < nBase {
				t.Fatalf("universe shrank? N = %d", n)
			}
			expectG := graph.MustFromEdges(int(n), append(append([]graph.Edge(nil), baseEdges...), pool...))
			want, _ := bz.Decompose(expectG)

			got := sweepCores(t, c, int(n))
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("core[%d] over the wire = %d, fresh BZ = %d", v, got[v], want[v])
				}
			}
			if s, err := client.String(c.Do("CORE.CHECK")); err != nil || s != "OK" {
				t.Fatalf("CORE.CHECK = %q, %v", s, err)
			}
			st := srv.Stats()
			if st.Commands == 0 || st.WriteCmds == 0 {
				t.Fatalf("suspicious server stats after load: %+v", st)
			}
			t.Logf("%s: %d commands (%d writes), pipeline depth p99 %.0f",
				alg, st.Commands, st.WriteCmds, st.PipelineDepth.P99)
		})
	}
}

// runMixedClient drives one pipelined connection: rounds of interleaved
// reads and writes over its owned edges, then the deterministic final
// phase (own pool fully inserted, own growth range fully removed).
func runMixedClient(addr string, cli int, own []graph.Edge, rounds, depth int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("client %d: dial: %w", cli, err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(int64(1000 + cli)))

	// A private range of fresh vertex ids, far above the base universe,
	// for growth traffic.
	freshLo := int32(100_000 + cli*100)
	var growth []graph.Edge
	for i := int32(0); i < 40; i++ {
		growth = append(growth, graph.Edge{U: freshLo + i, V: freshLo + (i+1)%40})
	}

	inflight := 0
	settle := func() error {
		if err := c.Flush(); err != nil {
			return err
		}
		for ; inflight > 0; inflight-- {
			if _, err := c.Receive(); err != nil {
				return err
			}
		}
		return nil
	}

	for r := 0; r < rounds; r++ {
		for i := 0; i < len(own); i++ {
			e := own[rng.Intn(len(own))]
			switch rng.Intn(4) {
			case 0:
				err = c.Send("CORE.INSERT", e.U, e.V)
			case 1:
				err = c.Send("CORE.REMOVE", e.U, e.V)
			case 2:
				err = c.Send("CORE.GET", rng.Int31n(1500))
			default:
				g := growth[rng.Intn(len(growth))]
				if rng.Intn(2) == 0 {
					err = c.Send("CORE.INSERT", g.U, g.V)
				} else {
					err = c.Send("CORE.REMOVE", g.U, g.V)
				}
			}
			if err != nil {
				return fmt.Errorf("client %d: send: %w", cli, err)
			}
			if inflight++; inflight >= depth {
				if err := settle(); err != nil {
					return fmt.Errorf("client %d: settle: %w", cli, err)
				}
			}
		}
	}

	// Final phase: converge to the deterministic state.
	for _, e := range own {
		if err := c.Send("CORE.INSERT", e.U, e.V); err != nil {
			return fmt.Errorf("client %d: final insert: %w", cli, err)
		}
		inflight++
	}
	for _, g := range growth {
		if err := c.Send("CORE.REMOVE", g.U, g.V); err != nil {
			return fmt.Errorf("client %d: final remove: %w", cli, err)
		}
		inflight++
	}
	if err := settle(); err != nil {
		return fmt.Errorf("client %d: final settle: %w", cli, err)
	}
	return nil
}

// sweepCores reads every core number over the wire, CORE.MGET page by
// page, plus a CORE.GET spot sweep of the first page to exercise both
// read commands.
func sweepCores(t *testing.T, c *client.Conn, n int) []int32 {
	t.Helper()
	out := make([]int32, n)
	const page = 512
	for lo := 0; lo < n; lo += page {
		hi := min(lo+page, n)
		args := make([]any, 0, hi-lo)
		for v := lo; v < hi; v++ {
			args = append(args, v)
		}
		ks, err := client.Ints(c.Do("CORE.MGET", args...))
		if err != nil {
			t.Fatalf("CORE.MGET sweep at %d: %v", lo, err)
		}
		for i, k := range ks {
			out[lo+i] = int32(k)
		}
	}
	for v := 0; v < min(n, page); v++ {
		k, err := client.Int(c.Do("CORE.GET", v))
		if err != nil {
			t.Fatalf("CORE.GET sweep at %d: %v", v, err)
		}
		if int32(k) != out[v] {
			t.Fatalf("CORE.GET[%d] = %d disagrees with CORE.MGET %d", v, k, out[v])
		}
	}
	return out
}

// TestConcurrentReadersDuringWrites races pure readers against a write
// storm — the networked sibling of the in-process serve race tests;
// mainly interesting under -race.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(2000, 8000, 9), kcore.WithWorkers(2))
	defer m.Close()
	_, addr := startServer(t, m)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	stop := make(chan struct{})
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				switch i % 3 {
				case 0:
					_, err = client.Int(c.Do("CORE.GET", rng.Int31n(2000)))
				case 1:
					_, err = client.Int(c.Do("CORE.MAXCORE"))
				default:
					_, err = client.Ints(c.Do("CORE.HIST"))
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}

	wc, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial writer: %v", err)
	}
	defer wc.Close()
	pool := gen.SampleNonEdges(m.Graph(), 512, 77)
	for round := 0; round < 20; round++ {
		for _, e := range pool[:64] {
			wc.Send("CORE.INSERT", e.U, e.V)
		}
		wc.Flush()
		for range pool[:64] {
			if _, err := wc.Receive(); err != nil {
				t.Fatalf("writer receive: %v", err)
			}
		}
		for _, e := range pool[:64] {
			wc.Send("CORE.REMOVE", e.U, e.V)
		}
		wc.Flush()
		for range pool[:64] {
			if _, err := wc.Receive(); err != nil {
				t.Fatalf("writer receive: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s, err := client.String(wc.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("CORE.CHECK = %q, %v", s, err)
	}
}
