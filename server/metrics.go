package server

import (
	"sync/atomic"
	"time"

	"repro/obs"
)

// Version is the server's reported version (CORE.STATS "version",
// kcored_info{version=...}).
const Version = "0.10.0"

// cmdFamily buckets the command table for instrumentation: per-family
// counters and latency histograms, so the hot read path pays one
// array-indexed increment instead of a per-command-name series lookup.
type cmdFamily uint8

const (
	famRead      cmdFamily = iota // snapshot reads: PING, CORE.GET/MGET/EPOCH/N/MAXCORE
	famWrite                      // pipeline writes: CORE.INSERT/REMOVE
	famAggregate                  // O(range)/barrier reads: CORE.HIST/KVERT/DEGENERACY
	famAdmin                      // everything else (stats, persistence, sync, slowlog)
	numFamilies
)

var familyNames = [numFamilies]string{"read", "write", "aggregate", "admin"}

// serverMetrics is the server's instrumentation: per-family command
// counters and latency histograms, the slow-command ring, and the
// in-flight write gauge. It is built unconditionally in New — handlers
// nil-check it only so benchmarks can measure the uninstrumented path by
// clearing the field.
//
// Latency semantics per family (documented in the histogram help):
// reads are recorded as the pipelined-burst mean (one clock read per
// burst, weighted ObserveN at flush — the zero-allocation contract
// forbids per-command timing on the read path); writes are recorded as
// the drain wait their pipelined burst observed (every write in a drain
// waited approximately the whole drain: replies settle together);
// aggregate and admin commands are individually timed in dispatch.
type serverMetrics struct {
	start          time.Time
	famCount       [numFamilies]*obs.Counter
	famLat         [numFamilies]*obs.Histogram
	inflightWrites atomic.Int64 // write futures submitted, not yet drained
	slow           *obs.SlowLog
}

func newServerMetrics(slowThreshold time.Duration, slowSize int) *serverMetrics {
	m := &serverMetrics{
		start: time.Now(),
		slow:  obs.NewSlowLog(slowSize, slowThreshold),
	}
	const latHelp = "Command latency: reads as pipelined-burst mean, writes as pipeline drain wait, aggregate/admin individually timed."
	for f := famRead; f < numFamilies; f++ {
		m.famCount[f] = obs.NewCounter("kcored_commands_total",
			"Commands dispatched, by family.", obs.L("family", familyNames[f]))
		m.famLat[f] = obs.NewDurationHistogram("kcored_command_latency_seconds",
			latHelp, obs.L("family", familyNames[f]))
	}
	return m
}

// WithSlowlog configures the slow-command log: commands (and pipelined
// write drains) taking at least threshold land in a fixed ring of size
// entries, served by CORE.SLOWLOG. threshold 0 records everything;
// negative disables recording (the ring still answers CORE.SLOWLOG).
// Default: 10ms threshold, 128 entries.
func WithSlowlog(threshold time.Duration, size int) Option {
	return func(s *Server) {
		s.slowThreshold = threshold
		if size > 0 {
			s.slowSize = size
		}
	}
}

// RegisterMetrics adds the server's whole metric surface to reg: the
// command-family instruments, scrape-time views of the network counters,
// the maintainer's serving counters and pipeline stage histograms, and —
// when configured — the persistence and replication subsystems. Call
// once, after New (and after NewReplica on a follower), before serving
// the registry.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	m := s.metrics
	for f := famRead; f < numFamilies; f++ {
		reg.MustRegister(m.famCount[f], m.famLat[f])
	}

	role := "leader"
	if s.replica != nil {
		role = "replica"
	}
	info := obs.NewGauge("kcored_info", "Build and topology info; the value is always 1.",
		obs.L("version", Version),
		obs.L("engine", s.mnt().Algorithm().String()),
		obs.L("role", role))
	info.Set(1)

	reg.MustRegister(
		info,
		obs.NewGaugeFunc("kcored_uptime_seconds", "Seconds since the server was created.",
			func() float64 { return time.Since(m.start).Seconds() }),
		obs.NewCounterFunc("kcored_connections_total", "Connections ever accepted.",
			func() float64 { return float64(s.stats.connsTotal.Load()) }),
		obs.NewGaugeFunc("kcored_connections_active", "Connections currently open.",
			func() float64 { return float64(s.stats.connsActive.Load()) }),
		obs.NewCounterSeriesFunc("kcored_errors_total", "Error replies written and connections dropped on malformed frames.",
			func() []obs.Sample {
				return []obs.Sample{
					{Labels: []obs.Label{obs.L("kind", "reply")}, Value: float64(s.stats.errorsSent.Load())},
					{Labels: []obs.Label{obs.L("kind", "protocol")}, Value: float64(s.stats.protoErrors.Load())},
				}
			}),
		obs.NewGaugeFunc("kcored_inflight_writes", "Write futures submitted to the pipeline, reply not yet settled.",
			func() float64 { return float64(m.inflightWrites.Load()) }),
		obs.NewCounterFunc("kcored_slow_commands_total", "Commands at or over the slowlog threshold (survives CORE.SLOWLOG RESET).",
			func() float64 { return float64(m.slow.Total()) }),
		obs.NewGaugeFunc("kcored_slowlog_entries", "Entries currently held in the slowlog ring.",
			func() float64 { return float64(m.slow.Len()) }),
	)

	// Maintainer-side views load s.mnt() at scrape time: a replica swaps
	// its maintainer on every re-bootstrap, and the scrape should follow.
	reg.MustRegister(
		obs.NewGaugeFunc("kcored_epoch", "Latest published snapshot epoch.",
			func() float64 { return float64(s.mnt().Epoch()) }),
		obs.NewGaugeFunc("kcored_vertices", "Vertex universe size N.",
			func() float64 { return float64(s.mnt().N()) }),
		obs.NewGaugeFunc("kcored_queue_depth", "Update-pipeline ops enqueued and not yet applied.",
			func() float64 { return float64(s.mnt().ServingStats().QueueDepth) }),
		obs.NewCounterSeriesFunc("kcored_pipeline_ops_total", "Update-pipeline ops by outcome: enqueued, batched into an engine round, canceled by coalescing.",
			func() []obs.Sample {
				ms := s.mnt().ServingStats()
				return []obs.Sample{
					{Labels: []obs.Label{obs.L("kind", "enqueued")}, Value: float64(ms.Enqueued)},
					{Labels: []obs.Label{obs.L("kind", "batched")}, Value: float64(ms.BatchedOps)},
					{Labels: []obs.Label{obs.L("kind", "canceled")}, Value: float64(ms.CanceledOps)},
				}
			}),
		obs.NewCounterFunc("kcored_batches_total", "Coalesced engine batches applied.",
			func() float64 { return float64(s.mnt().ServingStats().Batches) }),
		obs.NewCounterFunc("kcored_flushes_total", "Pipeline barriers (CORE.FLUSH and internal quiescent points).",
			func() float64 { return float64(s.mnt().ServingStats().Flushes) }),
		obs.NewCounterSeriesFunc("kcored_publishes_total", "Snapshot publications by kind.",
			func() []obs.Sample {
				ms := s.mnt().ServingStats()
				return []obs.Sample{
					{Labels: []obs.Label{obs.L("kind", "full")}, Value: float64(ms.FullPublishes)},
					{Labels: []obs.Label{obs.L("kind", "delta")}, Value: float64(ms.DeltaPublishes)},
					{Labels: []obs.Label{obs.L("kind", "unchanged")}, Value: float64(ms.UnchangedPublishes)},
					{Labels: []obs.Label{obs.L("kind", "grow")}, Value: float64(ms.GrowPublishes)},
				}
			}),
		obs.NewCounterFunc("kcored_dirty_pages_total", "Snapshot pages rewritten by delta publication.",
			func() float64 { return float64(s.mnt().ServingStats().DirtyPages) }),
	)

	// Pipeline stage histograms: on a leader the maintainer is fixed, so
	// its (possibly private) instance is the cumulative one; on a replica
	// the Replica owns the instance and threads it through every
	// re-bootstrapped maintainer.
	if r := s.replica; r != nil {
		r.pm.Register(reg)
		r.registerMetrics(reg)
	} else {
		s.mnt().PipelineMetrics().Register(reg)
	}
	if p := s.persist; p != nil {
		p.RegisterMetrics(reg)
	}
}
