package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
	"repro/kcore"
	"repro/persist"
)

// startLeaderServer brings up a persistent leader over g.
func startLeaderServer(t *testing.T, g *graph.Graph, popts persist.Options) (*kcore.Maintainer, string) {
	t.Helper()
	mgr, err := persist.NewManager(t.TempDir(), popts)
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(g, kcore.WithOpLog(mgr), kcore.WithWorkers(2))
	t.Cleanup(func() { mgr.Close(); m.Close() })
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, m, WithPersistence(mgr))
	return m, addr
}

// startReplicaServer brings up a follower of the leader at leaderAddr.
func startReplicaServer(t *testing.T, leaderAddr string) (*Server, string) {
	t.Helper()
	srv := New(kcore.New(graph.New(0), kcore.WithWorkers(2)))
	rep := NewReplica(srv, leaderAddr, ReplicaOptions{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Maintainer().Close() })
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	t.Cleanup(rep.Close)
	rep.Start()
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// TestReplicationConverges is the e2e contract: two followers of one
// leader under mixed wire-driven churn (inserts, removes, implicit and
// explicit growth) converge — after CORE.WAIT on the leader's final
// epoch, a full MGET sweep on each follower is byte-equal to a fresh
// decomposition of the leader's final graph.
func TestReplicationConverges(t *testing.T) {
	m, leaderAddr := startLeaderServer(t, gen.ErdosRenyi(300, 900, 23),
		persist.Options{Fsync: persist.FsyncNo})
	_, addrA := startReplicaServer(t, leaderAddr)
	_, addrB := startReplicaServer(t, leaderAddr)

	lc := dial(t, leaderAddr)
	// Mixed churn, pipelined: dense inserts, some removes, an implicit
	// grow (edge beyond N), an explicit CORE.GROW, then edges into the
	// grown range.
	sent := 0
	for i := 0; i < 200; i++ {
		if err := lc.Send("CORE.INSERT", i%300, (i*7+1)%300); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	for i := 0; i < 50; i++ {
		if err := lc.Send("CORE.REMOVE", i%300, (i*7+1)%300); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	lc.Send("CORE.INSERT", 320, 5) // implicit growth
	sent++
	if err := lc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sent; i++ {
		if _, err := lc.Receive(); err != nil {
			t.Fatalf("churn reply %d: %v", i, err)
		}
	}
	if _, err := client.Int(lc.Do("CORE.GROW", 400)); err != nil {
		t.Fatal(err)
	}
	for i := 350; i < 399; i++ {
		if err := lc.Send("CORE.INSERT", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 350; i < 399; i++ {
		if _, err := lc.Receive(); err != nil {
			t.Fatalf("grown-range insert: %v", err)
		}
	}
	epoch, err := client.Int(lc.Do("CORE.FLUSH"))
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: a fresh decomposition of the leader's final graph
	// (stable: all writes flushed, no further churn).
	want, _ := bz.Decompose(m.Graph().Clone())

	for _, addr := range []string{addrA, addrB} {
		rc := dial(t, addr)
		kv := statsMap(t, rc)
		if kv["role"] != "replica" {
			t.Fatalf("role = %q, want replica", kv["role"])
		}
		applied, err := client.Int(rc.Do("CORE.WAIT", epoch, 15000))
		if err != nil {
			t.Fatalf("CORE.WAIT %d on %s: %v", epoch, addr, err)
		}
		if applied < epoch {
			t.Fatalf("CORE.WAIT returned %d < target %d", applied, epoch)
		}
		n, err := client.Int(rc.Do("CORE.N"))
		if err != nil {
			t.Fatal(err)
		}
		if int(n) != len(want) {
			t.Fatalf("follower %s: N = %d, want %d", addr, n, len(want))
		}
		got := sweepCores(t, rc, len(want))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("follower %s: core[%d] = %d, want %d", addr, v, got[v], want[v])
			}
		}
		// The follower's own invariants hold against a fresh decompose.
		if s, err := client.String(rc.Do("CORE.CHECK")); err != nil || s != "OK" {
			t.Fatalf("CORE.CHECK on follower: %q, %v", s, err)
		}
	}
}

// TestWaitReadYourWrites: a client acks a write on the leader, captures
// the epoch in the same pipeline, WAITs on the follower, reads — the
// read must observe the write, every round.
func TestWaitReadYourWrites(t *testing.T) {
	_, leaderAddr := startLeaderServer(t, gen.ErdosRenyi(100, 300, 29),
		persist.Options{Fsync: persist.FsyncNo})
	_, repAddr := startReplicaServer(t, leaderAddr)

	lc := dial(t, leaderAddr)
	rc := dial(t, repAddr)
	for i := 0; i < 30; i++ {
		// A fresh vertex pair each round, so the insert always changes the
		// read's answer (0 → 1).
		u, v := 1000+2*i, 1001+2*i
		if err := lc.Send("CORE.INSERT", u, v); err != nil {
			t.Fatal(err)
		}
		if err := lc.Send("CORE.EPOCH"); err != nil {
			t.Fatal(err)
		}
		if err := lc.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Int(lc.Receive()); err != nil {
			t.Fatalf("round %d insert: %v", i, err)
		}
		epoch, err := client.Int(lc.Receive())
		if err != nil {
			t.Fatalf("round %d epoch: %v", i, err)
		}
		if _, err := client.Int(rc.Do("CORE.WAIT", epoch, 15000)); err != nil {
			t.Fatalf("round %d CORE.WAIT %d: %v", i, epoch, err)
		}
		k, err := client.Int(rc.Do("CORE.GET", u))
		if err != nil {
			t.Fatalf("round %d CORE.GET: %v", i, err)
		}
		if k < 1 {
			t.Fatalf("round %d: follower read core[%d] = %d after WAIT %d — stale read", i, u, k, epoch)
		}
	}
}

// TestReplicaRejectsWrites: the write surface is leader-only.
func TestReplicaRejectsWrites(t *testing.T) {
	_, leaderAddr := startLeaderServer(t, gen.ErdosRenyi(50, 100, 31),
		persist.Options{Fsync: persist.FsyncNo})
	_, repAddr := startReplicaServer(t, leaderAddr)
	rc := dial(t, repAddr)

	for _, cmd := range [][]any{
		{"CORE.INSERT", 1, 2},
		{"CORE.REMOVE", 1, 2},
		{"CORE.GROW", 100},
	} {
		_, err := rc.Do(cmd[0].(string), cmd[1:]...)
		var se *client.ServerError
		if !errors.As(err, &se) || !strings.HasPrefix(se.Msg, "READONLY") {
			t.Fatalf("%v on replica = %v, want READONLY error", cmd[0], err)
		}
	}
	// Reads still work.
	if _, err := client.Int(rc.Do("CORE.MAXCORE")); err != nil {
		t.Fatalf("read on replica: %v", err)
	}
}

// TestSlowFollowerDroppedOverWire: a follower that stops draining its
// stream is dropped at the tap (bounded buffer) without stalling the
// leader's write path.
func TestSlowFollowerDroppedOverWire(t *testing.T) {
	m, leaderAddr := startLeaderServer(t, gen.ErdosRenyi(100, 200, 37),
		persist.Options{Fsync: persist.FsyncNo, SyncBufferBytes: 256})

	// A raw "follower" that sends CORE.SYNC and then never reads.
	nc, err := net.Dial("tcp", leaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("*1\r\n$9\r\nCORE.SYNC\r\n")); err != nil {
		t.Fatal(err)
	}
	lc := dial(t, leaderAddr)
	waitFor := func(cond func(kv map[string]string) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if cond(statsMap(t, lc)) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats: %v", what, statsMap(t, lc))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor(func(kv map[string]string) bool { return kv["sync_followers"] == "1" }, "follower registration")

	// One batch bigger than the whole tap buffer: instant overflow.
	edges := make([]graph.Edge, 64)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
	}
	m.InsertEdges(edges)
	m.Flush()

	waitFor(func(kv map[string]string) bool {
		return kv["sync_followers"] == "0" && kv["sync_dropped"] != "0"
	}, "slow-follower drop")

	// The leader's serving and write paths are unharmed.
	if _, err := client.Int(lc.Do("CORE.INSERT", 0, 99)); err != nil {
		t.Fatalf("leader write after drop: %v", err)
	}
	if s, err := client.String(lc.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("leader CORE.CHECK after drop: %q, %v", s, err)
	}
}

// TestReplicaResyncAfterLeaderRestart: a follower whose leader vanishes
// reconnects with backoff and re-bootstraps from the successor at the
// same address, ending byte-equal with the new leader's state.
func TestReplicaResyncAfterLeaderRestart(t *testing.T) {
	// First leader on a fixed port we can rebind after it dies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	leaderAddr := ln.Addr().String()

	mgr1, err := persist.NewManager(t.TempDir(), persist.Options{Fsync: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	m1 := kcore.New(gen.ErdosRenyi(80, 240, 41), kcore.WithOpLog(mgr1), kcore.WithWorkers(2))
	if err := mgr1.Start(m1); err != nil {
		t.Fatal(err)
	}
	srv1 := New(m1, WithPersistence(mgr1))
	go srv1.Serve(ln)

	srvR, repAddr := startReplicaServer(t, leaderAddr)
	rc := dial(t, repAddr)
	m1.InsertEdge(0, 50)
	epoch1 := m1.Flush()
	if _, err := client.Int(rc.Do("CORE.WAIT", int64(epoch1), 15000)); err != nil {
		t.Fatalf("WAIT on first leader: %v", err)
	}
	syncs1 := statsMap(t, rc)["replica_syncs"]

	// Kill the first leader hard.
	srv1.Close()
	mgr1.Close()
	m1.Close()

	// A successor — different graph — takes over the same address.
	var ln2 net.Listener
	for i := 0; i < 100; i++ {
		ln2, err = net.Listen("tcp", leaderAddr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", leaderAddr, err)
	}
	mgr2, err := persist.NewManager(t.TempDir(), persist.Options{Fsync: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	m2 := kcore.New(gen.ErdosRenyi(120, 360, 43), kcore.WithOpLog(mgr2), kcore.WithWorkers(2))
	t.Cleanup(func() { mgr2.Close(); m2.Close() })
	if err := mgr2.Start(m2); err != nil {
		t.Fatal(err)
	}
	srv2 := New(m2, WithPersistence(mgr2))
	go srv2.Serve(ln2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	})

	m2.InsertEdge(1, 2)
	epoch2 := m2.Flush()

	// The follower re-bootstraps on its own; wait for the second sync,
	// then converge on the successor's state. The watermark was Reset to
	// the successor's (lower) epoch space, so WAIT epoch2 is meaningful.
	deadline := time.Now().Add(15 * time.Second)
	for {
		kv := statsMap(t, rc)
		if kv["replica_connected"] == "1" && kv["replica_syncs"] != syncs1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-synced; stats: %v", kv)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, err := client.Int(rc.Do("CORE.WAIT", int64(epoch2), 15000)); err != nil {
		t.Fatalf("WAIT on successor: %v", err)
	}
	want, _ := bz.Decompose(m2.Graph().Clone())
	if n := srvR.Maintainer().N(); n != len(want) {
		t.Fatalf("follower N = %d, want %d", n, len(want))
	}
	got := sweepCores(t, rc, len(want))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("after re-sync: core[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
