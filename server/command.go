package server

import (
	"strconv"
	"time"

	"repro/graph"
)

// command is one row of the dispatch table.
type command struct {
	name    string
	minArgs int  // including the command name
	maxArgs int  // -1 = unbounded
	write   bool // fans into the update pipeline (reply deferred)
	// blocking commands (CORE.SYNC, CORE.WAIT) may park their connection
	// indefinitely; a conn shard detaches such a connection to its own
	// goroutine instead of stalling the whole event loop.
	blocking bool
	// denyOnReplica commands mutate the graph; a replica rejects them
	// with READONLY — its only writer is the leader's op stream.
	denyOnReplica bool
	// family buckets the command for metrics (per-family counters and
	// latency histograms; see metrics.go).
	family cmdFamily
	// timed commands are individually clocked in dispatch (aggregate and
	// admin families — heavy and rare); reads and writes are observed at
	// burst granularity instead, keeping the hot path to one clock read
	// per pipelined burst. Computed by register.
	timed bool
	// noSlowlog exempts a command from slowlog recording; CORE.SLOWLOG
	// sets it so inspecting the ring never mutates it (LEN after RESET
	// must read 0, even at threshold 0).
	noSlowlog bool
	fn        func(c *conn, args [][]byte) (quit bool)
}

// commands maps the upper-cased wire name to its handler. The table is
// the single source of truth for the protocol surface; README's command
// table and the client helpers mirror it.
var commands = map[string]*command{}

func register(cmd *command) {
	// Individual timing covers the heavy, rare families; the read and
	// write families are observed at burst granularity (conn.flushObs,
	// conn.drainPending) to keep the hot path free of per-command clock
	// reads. Blocking commands park indefinitely — their wall time is
	// wait, not work, so they are never timed.
	cmd.timed = (cmd.family == famAggregate || cmd.family == famAdmin) && !cmd.blocking
	commands[cmd.name] = cmd
}

func init() {
	register(&command{name: "PING", minArgs: 1, maxArgs: 2, family: famRead, fn: cmdPing})
	register(&command{name: "QUIT", minArgs: 1, maxArgs: 1, family: famRead, fn: cmdQuit})
	register(&command{name: "CORE.GET", minArgs: 2, maxArgs: 2, family: famRead, fn: cmdGet})
	register(&command{name: "CORE.MGET", minArgs: 2, maxArgs: -1, family: famRead, fn: cmdMGet})
	register(&command{name: "CORE.INSERT", minArgs: 3, maxArgs: -1, family: famWrite, write: true, denyOnReplica: true, fn: cmdInsert})
	register(&command{name: "CORE.REMOVE", minArgs: 3, maxArgs: -1, family: famWrite, write: true, denyOnReplica: true, fn: cmdRemove})
	register(&command{name: "CORE.MAXCORE", minArgs: 1, maxArgs: 1, family: famRead, fn: cmdMaxCore})
	register(&command{name: "CORE.HIST", minArgs: 1, maxArgs: 3, family: famAggregate, fn: cmdHist})
	register(&command{name: "CORE.KVERT", minArgs: 2, maxArgs: 4, family: famAggregate, fn: cmdKVert})
	register(&command{name: "CORE.DEGENERACY", minArgs: 1, maxArgs: 1, family: famAggregate, fn: cmdDegeneracy})
	register(&command{name: "CORE.GROW", minArgs: 2, maxArgs: 2, family: famAdmin, denyOnReplica: true, fn: cmdGrow})
	register(&command{name: "CORE.FLUSH", minArgs: 1, maxArgs: 1, family: famAdmin, fn: cmdFlush})
	register(&command{name: "CORE.EPOCH", minArgs: 1, maxArgs: 1, family: famRead, fn: cmdEpoch})
	register(&command{name: "CORE.N", minArgs: 1, maxArgs: 1, family: famRead, fn: cmdN})
	register(&command{name: "CORE.CHECK", minArgs: 1, maxArgs: 1, family: famAdmin, fn: cmdCheck})
	register(&command{name: "CORE.STATS", minArgs: 1, maxArgs: 1, family: famAdmin, fn: cmdStats})
	register(&command{name: "CORE.BGSAVE", minArgs: 1, maxArgs: 1, family: famAdmin, fn: cmdBGSave})
	register(&command{name: "CORE.LASTSAVE", minArgs: 1, maxArgs: 1, family: famAdmin, fn: cmdLastSave})
	register(&command{name: "CORE.SLOWLOG", minArgs: 2, maxArgs: 3, family: famAdmin, noSlowlog: true, fn: cmdSlowlog})
	register(&command{name: "CORE.SYNC", minArgs: 1, maxArgs: 1, family: famAdmin, blocking: true, fn: cmdSync})
	register(&command{name: "CORE.WAIT", minArgs: 2, maxArgs: 3, family: famAdmin, blocking: true, fn: cmdWait})
}

func cmdPing(c *conn, args [][]byte) bool {
	if len(args) == 2 {
		c.wr.WriteBulk(args[1])
	} else {
		c.wr.WritePong()
	}
	return false
}

func cmdQuit(c *conn, args [][]byte) bool {
	c.wr.WriteOK()
	return true
}

// cmdGet serves CORE.GET v — the core number of v in the latest
// published snapshot. Ids at or beyond the snapshot's N are unseen
// vertices: isolated by definition, core 0.
func cmdGet(c *conn, args [][]byte) bool {
	v, ok := c.argVertex(args[1])
	if !ok {
		return false
	}
	s := c.srv.mnt().Snapshot()
	var core int32
	if int(v) < s.N() {
		core = s.CoreOf(v)
	}
	c.wr.WriteInt(int64(core))
	return false
}

// cmdMGet serves CORE.MGET v…: one integer per id, all read off one
// snapshot, so the reply is mutually consistent.
func cmdMGet(c *conn, args [][]byte) bool {
	s := c.srv.mnt().Snapshot()
	n := int32(s.N())
	// Validate (and parse once) before writing: an array reply cannot
	// carry a trailing error without desynchronizing the stream. The id
	// buffer is per-conn scratch, recycled across commands.
	ids := c.ids[:0]
	for _, a := range args[1:] {
		v, ok := parseVertex(a)
		if !ok {
			c.writeErrArg("invalid vertex id", a)
			return false
		}
		ids = append(ids, v)
	}
	c.ids = ids
	c.wr.WriteArrayHeader(len(ids))
	for _, v := range ids {
		var core int32
		if v < n {
			core = s.CoreOf(v)
		}
		c.wr.WriteInt(int64(core))
	}
	return false
}

// cmdInsert serves CORE.INSERT u v [u v …]: the edge list fans into the
// maintainer's coalescing pipeline asynchronously; the deferred reply is
// the applied-edge count of the coalesced batch that covered it.
func cmdInsert(c *conn, args [][]byte) bool {
	edges, ok := c.argEdges(args)
	if !ok {
		return false
	}
	c.pending = append(c.pending, owed{pd: c.srv.mnt().InsertEdgesAsync(edges), edges: edges})
	if m := c.srv.metrics; m != nil {
		m.inflightWrites.Add(1)
	}
	return false
}

// cmdRemove serves CORE.REMOVE u v [u v …], the removal twin of
// CORE.INSERT.
func cmdRemove(c *conn, args [][]byte) bool {
	edges, ok := c.argEdges(args)
	if !ok {
		return false
	}
	c.pending = append(c.pending, owed{pd: c.srv.mnt().RemoveEdgesAsync(edges), edges: edges})
	if m := c.srv.metrics; m != nil {
		m.inflightWrites.Add(1)
	}
	return false
}

func cmdMaxCore(c *conn, args [][]byte) bool {
	c.wr.WriteInt(int64(c.srv.mnt().MaxCore()))
	return false
}

// cmdHist serves CORE.HIST [lo hi]: Hist[k] vertices with core number k,
// one integer per core value 0..MaxCore. Without arguments it is the
// whole-graph histogram, an O(MaxCore) snapshot read; with an id range
// [lo, hi) (clamped to the universe) it is an O(hi-lo) scan restricted
// to that range — the form a cluster router uses to aggregate a shard's
// owned id band without counting its mirror band.
func cmdHist(c *conn, args [][]byte) bool {
	var hist []int64
	switch len(args) {
	case 1:
		hist = c.srv.mnt().Snapshot().Histogram()
	case 3:
		lo, ok := c.argVertex(args[1])
		if !ok {
			return false
		}
		hi, ok := c.argVertex(args[2])
		if !ok {
			return false
		}
		c.hist = c.srv.mnt().Snapshot().HistogramRangeInto(c.hist, lo, hi)
		hist = c.hist
	default:
		c.writeError("ERR CORE.HIST takes no arguments or an id range: CORE.HIST [lo hi]")
		return false
	}
	c.wr.WriteArrayHeader(len(hist))
	for _, n := range hist {
		c.wr.WriteInt(n)
	}
	return false
}

// cmdKVert serves CORE.KVERT k [lo hi]: how many vertices are in the
// k-core (core number >= k). Without a range it is summed off the
// snapshot histogram in O(MaxCore); with an id range [lo, hi) it is an
// O(hi-lo) scan counting only that range — the cluster's owned-band
// form, summed across shards.
func cmdKVert(c *conn, args [][]byte) bool {
	k, ok := parseInt(args[1])
	if !ok {
		c.writeErrArg("invalid core value", args[1])
		return false
	}
	switch len(args) {
	case 2:
		hist := c.srv.mnt().Snapshot().Histogram()
		var count int64
		for cv := max(k, 0); cv < int64(len(hist)); cv++ {
			count += hist[cv]
		}
		c.wr.WriteInt(count)
	case 4:
		lo, ok := c.argVertex(args[2])
		if !ok {
			return false
		}
		hi, ok := c.argVertex(args[3])
		if !ok {
			return false
		}
		kk := int32(min(max(k, 0), int64(1<<31-1)))
		c.wr.WriteInt(c.srv.mnt().Snapshot().CountCoresAtLeast(kk, lo, hi))
	default:
		c.writeError("ERR CORE.KVERT takes k or k plus an id range: CORE.KVERT k [lo hi]")
		return false
	}
	return false
}

// cmdDegeneracy serves CORE.DEGENERACY: the graph's degeneracy,
// recomputed authoritatively at a quiescent point (an O(n+m) barrier
// command — heavier than CORE.MAXCORE, which reads the snapshot).
func cmdDegeneracy(c *conn, args [][]byte) bool {
	deg, _ := c.srv.mnt().Degeneracy()
	c.wr.WriteInt(int64(deg))
	return false
}

// cmdGrow serves CORE.GROW k: pre-allocate k fresh isolated vertices
// (clamped to the maintainer's ceiling); replies with the new N.
func cmdGrow(c *conn, args [][]byte) bool {
	k, ok := parseInt(args[1])
	if !ok || k < 0 || k > int64(graph.MaxVertexID) {
		c.writeErrArg("invalid vertex count", args[1])
		return false
	}
	c.wr.WriteInt(int64(c.srv.mnt().AddVertices(int(k))))
	return false
}

func cmdFlush(c *conn, args [][]byte) bool {
	c.wr.WriteInt(int64(c.srv.mnt().Flush()))
	return false
}

func cmdEpoch(c *conn, args [][]byte) bool {
	c.wr.WriteInt(int64(c.srv.mnt().Epoch()))
	return false
}

func cmdN(c *conn, args [][]byte) bool {
	c.wr.WriteInt(int64(c.srv.mnt().N()))
	return false
}

// cmdCheck serves CORE.CHECK: verify every maintainer invariant against
// a fresh decomposition (O(n+m), for tests and operators — the network
// face of Maintainer.Check).
func cmdCheck(c *conn, args [][]byte) bool {
	if err := c.srv.mnt().Check(); err != nil {
		c.writeError("ERR check failed: " + err.Error())
		return false
	}
	c.wr.WriteOK()
	return false
}

// cmdSlowlog serves CORE.SLOWLOG GET [n] | RESET | LEN over the server's
// slow-command ring (Redis's SLOWLOG shape): GET replies newest-first
// with [id, unix, duration_us, cmd, detail] per entry (default 10, n<=0
// for all), RESET clears the ring, LEN reports its current size.
func cmdSlowlog(c *conn, args [][]byte) bool {
	m := c.srv.metrics
	if m == nil {
		c.writeError("ERR slowlog not available")
		return false
	}
	switch string(asciiUpper(args[1])) {
	case "GET":
		limit := int64(10)
		if len(args) == 3 {
			n, ok := parseInt(args[2])
			if !ok {
				c.writeErrArg("invalid entry count", args[2])
				return false
			}
			limit = n
		}
		entries := m.slow.Snapshot(int(limit))
		c.wr.WriteArrayHeader(len(entries))
		for _, e := range entries {
			c.wr.WriteArrayHeader(5)
			c.wr.WriteInt(e.ID)
			c.wr.WriteInt(e.Unix)
			c.wr.WriteInt(e.Dur.Microseconds())
			c.wr.WriteBulkString(e.Cmd)
			c.wr.WriteBulkString(e.Detail)
		}
	case "RESET":
		m.slow.Reset()
		c.wr.WriteOK()
	case "LEN":
		c.wr.WriteInt(int64(m.slow.Len()))
	default:
		c.writeErrArg("unknown CORE.SLOWLOG subcommand", args[1])
	}
	return false
}

// cmdStats serves CORE.STATS: a flat key/value array (CONFIG GET style)
// of the server's network counters followed by the maintainer's serving
// counters, so one round trip captures the whole stack's health.
func cmdStats(c *conn, args [][]byte) bool {
	ss := c.srv.Stats()
	ms := c.srv.mnt().ServingStats()
	role := "leader"
	if c.srv.replica != nil {
		role = "replica"
	}
	alg := c.srv.mnt().Algorithm().String()
	kv := [][2]string{
		{"role", role},
		{"version", Version},
		{"alg", alg},
		{"engine", alg}, // alias of alg, matching the metric label name
		{"workers", itoa(int64(c.srv.mnt().Workers()))},
		{"n", itoa(int64(c.srv.mnt().N()))},
		{"epoch", itoa(int64(ms.Epoch))},
		// Network side.
		{"conns_total", itoa(ss.ConnsTotal)},
		{"conns_active", itoa(ss.ConnsActive)},
		{"commands", itoa(ss.Commands)},
		{"write_cmds", itoa(ss.WriteCmds)},
		{"errors_sent", itoa(ss.ErrorsSent)},
		{"proto_errors", itoa(ss.ProtoErrors)},
		{"pipeline_p50", ftoa(ss.PipelineDepth.P50)},
		{"pipeline_p99", ftoa(ss.PipelineDepth.P99)},
		// Pipeline / publication side (kcore.ServingStats).
		{"queue_depth", itoa(ms.QueueDepth)},
		{"enqueued", itoa(ms.Enqueued)},
		{"batches", itoa(ms.Batches)},
		{"batched_ops", itoa(ms.BatchedOps)},
		{"canceled_ops", itoa(ms.CanceledOps)},
		{"flushes", itoa(ms.Flushes)},
		{"update_p50_ms", ftoa(ms.UpdateLatency.P50)},
		{"update_p99_ms", ftoa(ms.UpdateLatency.P99)},
		{"full_publishes", itoa(ms.FullPublishes)},
		{"delta_publishes", itoa(ms.DeltaPublishes)},
		{"unchanged_publishes", itoa(ms.UnchangedPublishes)},
		{"grow_publishes", itoa(ms.GrowPublishes)},
		{"dirty_pages", itoa(ms.DirtyPages)},
	}
	if m := c.srv.metrics; m != nil {
		kv = append(kv,
			[2]string{"uptime_sec", itoa(int64(time.Since(m.start).Seconds()))},
			[2]string{"inflight_writes", itoa(m.inflightWrites.Load())},
			[2]string{"slowlog_len", itoa(int64(m.slow.Len()))},
			[2]string{"slow_total", itoa(m.slow.Total())},
		)
		for f := famRead; f < numFamilies; f++ {
			name := familyNames[f]
			kv = append(kv,
				[2]string{"cmds_" + name, itoa(m.famCount[f].Value())},
				[2]string{name + "_p50_ms", ftoa(m.famLat[f].Quantile(0.5) * 1000)},
				[2]string{name + "_p99_ms", ftoa(m.famLat[f].Quantile(0.99) * 1000)},
			)
		}
	}
	if p := c.srv.persist; p != nil {
		ps := p.Stats()
		var lastSave int64
		if !ps.LastSave.IsZero() {
			lastSave = ps.LastSave.Unix()
		}
		kv = append(kv,
			[2]string{"persist_gen", itoa(int64(ps.Gen))},
			[2]string{"persist_fsync", ps.Fsync.String()},
			[2]string{"persist_records", itoa(ps.Records)},
			[2]string{"persist_bytes", itoa(ps.AppendedBytes)},
			[2]string{"persist_ops_since_checkpoint", itoa(ps.OpsSinceCheckpoint)},
			[2]string{"persist_checkpoints", itoa(ps.Checkpoints)},
			[2]string{"persist_last_save", itoa(lastSave)},
			[2]string{"persist_last_save_ms", itoa(ps.LastSaveDuration.Milliseconds())},
			[2]string{"persist_err", ps.Err},
			[2]string{"fsync_p50_ms", ftoa(p.FsyncQuantile(0.5) * 1000)},
			[2]string{"fsync_p99_ms", ftoa(p.FsyncQuantile(0.99) * 1000)},
			[2]string{"sync_followers", itoa(int64(ps.SyncFollowers))},
			[2]string{"sync_dropped", itoa(ps.SyncDropped)},
		)
	}
	if rep := c.srv.replica; rep != nil {
		connected := "0"
		if rep.connected.Load() {
			connected = "1"
		}
		lastErr := ""
		if p := rep.lastErr.Load(); p != nil {
			lastErr = *p
		}
		kv = append(kv,
			[2]string{"replica_of", rep.leader},
			[2]string{"replica_connected", connected},
			[2]string{"replica_syncs", itoa(rep.syncs.Load())},
			[2]string{"replica_records", itoa(rep.records.Load())},
			[2]string{"replica_edges", itoa(rep.edges.Load())},
			[2]string{"applied_epoch", itoa(int64(rep.wm.Epoch()))},
			[2]string{"leader_epoch", itoa(int64(rep.leaderEpoch.Load()))},
			[2]string{"epoch_lag", itoa(rep.epochLag())},
			[2]string{"replica_last_err", lastErr},
		)
	}
	c.wr.WriteArrayHeader(len(kv) * 2)
	for _, pair := range kv {
		c.wr.WriteBulkString(pair[0])
		c.wr.WriteBulkString(pair[1])
	}
	return false
}

// cmdBGSave serves CORE.BGSAVE: request an asynchronous checkpoint from
// the attached durability manager (Redis's BGSAVE, minus the fork). A
// checkpoint already in flight absorbs the request.
func cmdBGSave(c *conn, args [][]byte) bool {
	p := c.srv.persist
	if p == nil {
		c.writeError("ERR persistence not configured (start kcored with -dir)")
		return false
	}
	if err := p.BGSave(); err != nil {
		c.writeError("ERR " + err.Error())
		return false
	}
	c.wr.WriteSimple("Background saving started")
	return false
}

// cmdLastSave serves CORE.LASTSAVE: the unix time of the last completed
// checkpoint (0 before the first), Redis's LASTSAVE.
func cmdLastSave(c *conn, args [][]byte) bool {
	p := c.srv.persist
	if p == nil {
		c.writeError("ERR persistence not configured (start kcored with -dir)")
		return false
	}
	ls := p.LastSave()
	if ls.IsZero() {
		c.wr.WriteInt(0)
		return false
	}
	c.wr.WriteInt(ls.Unix())
	return false
}

// --- argument parsing -------------------------------------------------------

// argVertex parses one vertex-id argument, replying on failure.
func (c *conn) argVertex(a []byte) (int32, bool) {
	v, ok := parseVertex(a)
	if !ok {
		c.writeErrArg("invalid vertex id", a)
	}
	return v, ok
}

// argEdges parses the "u v [u v …]" tail of a write command, replying on
// failure. The ids only need to be non-negative int32s here — the
// maintainer's universe scan handles growth and its ceiling. The
// returned buffer comes from the connection's free list; it is lent to
// the pipeline with the command's future and recycled by drainPending
// once that future settles (the coalescer retains the slice until its
// batch applies, so recycling any earlier would corrupt in-flight ops).
func (c *conn) argEdges(args [][]byte) ([]graph.Edge, bool) {
	tail := args[1:]
	if len(tail)%2 != 0 {
		c.writeErrParts("", args[0], " takes vertex pairs (odd id count)")
		return nil, false
	}
	var edges []graph.Edge
	if n := len(c.edgeFree); n > 0 {
		edges, c.edgeFree[n-1] = c.edgeFree[n-1], nil
		c.edgeFree = c.edgeFree[:n-1]
	} else {
		edges = make([]graph.Edge, 0, max(len(tail)/2, 64))
	}
	for i := 0; i < len(tail); i += 2 {
		u, ok := parseVertex(tail[i])
		if !ok {
			c.edgeFree = append(c.edgeFree, edges[:0])
			c.writeErrArg("invalid vertex id", tail[i])
			return nil, false
		}
		v, ok := parseVertex(tail[i+1])
		if !ok {
			c.edgeFree = append(c.edgeFree, edges[:0])
			c.writeErrArg("invalid vertex id", tail[i+1])
			return nil, false
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return edges, true
}

// parseVertex parses a non-negative int32 vertex id.
func parseVertex(a []byte) (int32, bool) {
	n, ok := parseInt(a)
	if !ok || n < 0 || n > int64(1<<31-1) {
		return 0, false
	}
	return int32(n), true
}

// parseInt parses a decimal int64 from a command argument without
// allocating.
func parseInt(a []byte) (int64, bool) {
	if len(a) == 0 {
		return 0, false
	}
	i, neg := 0, false
	if a[0] == '-' {
		neg = true
		i++
		if i == len(a) {
			return 0, false
		}
	}
	var n int64
	for ; i < len(a); i++ {
		d := a[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		if n > (1<<62)/10 {
			return 0, false
		}
		n = n*10 + int64(d-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// appendClipped appends an untrusted argument echoed into an error
// message, bounded and with non-printable bytes neutralized —
// resp.WriteErrorBytes additionally strips CR/LF, but the message should
// stay readable in logs and redis-cli whatever bytes arrived. Appending
// into the connection's error scratch keeps the error path free of
// per-error allocations.
func appendClipped(dst []byte, a []byte) []byte {
	const maxEcho = 32
	b := a
	trunc := false
	if len(b) > maxEcho {
		b, trunc = b[:maxEcho], true
	}
	for _, c := range b {
		if c < 0x20 || c == 0x7f {
			c = '?'
		}
		dst = append(dst, c)
	}
	if trunc {
		dst = append(dst, "…"...)
	}
	return dst
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', 4, 64) }
