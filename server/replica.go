package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/obs"
	"repro/persist"
	"repro/resp"
)

// ReplicaOptions configures how a follower rebuilds its maintainer from
// each leader snapshot.
type ReplicaOptions struct {
	Workers     int             // maintainer workers (0 = kcore default)
	Alg         kcore.Algorithm // maintenance algorithm (zero value = kcore default)
	MaxVertices int             // vertex ceiling (0 = kcore default)
	Logger      *log.Logger     // nil = silent
}

// Replica keeps a Server in follower mode: it bootstraps from a leader's
// CORE.SYNC snapshot, swaps the rebuilt maintainer into the server, and
// applies the streamed op tail through the ordinary maintainer API —
// the same coalescing pipeline the leader ran the ops through. Reads
// stay lock-free off the local snapshot; write commands are rejected
// (denyOnReplica); CORE.WAIT blocks on the applied-epoch watermark for
// read-your-writes.
//
// The loop reconnects forever with backoff. Every (re)connect is a full
// re-bootstrap: the leader's stream has no resume cursor — by design,
// since a follower that fell behind was dropped precisely because
// buffering its backlog was unbounded, and a snapshot is cheap next to
// that backlog.
type Replica struct {
	srv    *Server
	leader string
	opts   ReplicaOptions
	wm     *kcore.EpochWatermark

	quit chan struct{}
	wg   sync.WaitGroup

	connected atomic.Bool
	syncs     atomic.Int64 // completed bootstraps
	records   atomic.Int64 // stream records applied (incl. epochs/pings)
	edges     atomic.Int64 // edges applied through insert/remove records
	lastErr   atomic.Pointer[string]

	// leaderEpoch is the newest leader epoch seen on the wire (FULLSYNC
	// handshake, then every epoch/ping marker), stored before the record
	// applies — so leaderEpoch−wm.Epoch() exposes the apply backlog,
	// most visibly during a bootstrap's snapshot rebuild.
	leaderEpoch atomic.Uint64

	// pm holds the pipeline stage histograms across maintainer
	// re-bootstraps: every syncOnce builds a fresh maintainer, but the
	// operator wants one cumulative latency history per replica.
	pm *kcore.PipelineMetrics
}

// NewReplica puts srv into follower mode, replicating from the leader at
// leaderAddr ("host:port"). Call Start to begin syncing and Close to
// stop. Must be called before the server serves traffic.
func NewReplica(srv *Server, leaderAddr string, opts ReplicaOptions) *Replica {
	r := &Replica{
		srv:    srv,
		leader: leaderAddr,
		opts:   opts,
		wm:     kcore.NewEpochWatermark(),
		quit:   make(chan struct{}),
		pm:     kcore.NewPipelineMetrics(opts.Alg.String()),
	}
	srv.replica = r
	return r
}

// Watermark exposes the applied-epoch watermark (what CORE.WAIT blocks
// on).
func (r *Replica) Watermark() *kcore.EpochWatermark { return r.wm }

// Start launches the replication loop.
func (r *Replica) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Close stops the replication loop and waits for it to exit. The
// server keeps serving reads off the last applied state.
func (r *Replica) Close() {
	close(r.quit)
	r.wg.Wait()
}

func (r *Replica) loop() {
	defer r.wg.Done()
	backoff := 250 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		select {
		case <-r.quit:
			return
		default:
		}
		start := time.Now()
		err := r.syncOnce()
		select {
		case <-r.quit:
			return
		default:
		}
		if err != nil {
			msg := err.Error()
			r.lastErr.Store(&msg)
			r.logf("replica: sync from %s: %v (retry in %v)", r.leader, err, backoff)
		}
		// A session that streamed for a while earned a fresh backoff.
		if time.Since(start) > 10*time.Second {
			backoff = 250 * time.Millisecond
		}
		select {
		case <-r.quit:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// syncOnce runs one full replication session: dial, FULLSYNC handshake,
// snapshot bootstrap, then the endless tail until the connection breaks
// or the replica closes. A nil return means the session ended because
// the replica is shutting down.
func (r *Replica) syncOnce() error {
	nc, err := (&net.Dialer{Timeout: 5 * time.Second}).Dial("tcp", r.leader)
	if err != nil {
		return err
	}
	defer nc.Close()
	// The tail read blocks in a buffered reader; closing the socket from
	// a watcher is the only reliable cancel.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.quit:
			nc.Close()
		case <-done:
		}
	}()

	wr := resp.NewWriterSize(nc, 256)
	wr.WriteCommand("CORE.SYNC")
	if err := wr.Flush(); err != nil {
		return err
	}

	br := bufio.NewReaderSize(nc, 64<<10)
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("handshake read: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	if strings.HasPrefix(line, "-") {
		return errors.New("leader refused: " + strings.TrimPrefix(line, "-"))
	}
	var gen uint64
	var epoch uint64
	var snaplen int
	var crc uint32
	if _, err := fmt.Sscanf(line, "+FULLSYNC %d %d %d %d", &gen, &epoch, &snaplen, &crc); err != nil {
		return fmt.Errorf("bad handshake %q: %w", line, err)
	}
	if snaplen < 0 || snaplen > 1<<34 {
		return fmt.Errorf("implausible snapshot length %d", snaplen)
	}

	snap := make([]byte, snaplen)
	nc.SetReadDeadline(time.Now().Add(2 * time.Minute))
	if _, err := io.ReadFull(br, snap); err != nil {
		return fmt.Errorf("snapshot read: %w", err)
	}
	if got := persist.SnapshotCRC(snap); got != crc {
		return fmt.Errorf("snapshot CRC mismatch: got %08x, want %08x", got, crc)
	}
	g, err := graph.ReadBinary(bytes.NewReader(snap))
	if err != nil {
		return fmt.Errorf("snapshot decode: %w", err)
	}
	snap = nil

	r.leaderEpoch.Store(epoch)

	var kopts []kcore.Option
	kopts = append(kopts, kcore.WithPipelineMetrics(r.pm))
	if r.opts.Alg != 0 {
		kopts = append(kopts, kcore.WithAlgorithm(r.opts.Alg))
	}
	if r.opts.Workers > 0 {
		kopts = append(kopts, kcore.WithWorkers(r.opts.Workers))
	}
	if r.opts.MaxVertices > 0 {
		kopts = append(kopts, kcore.WithMaxVertices(r.opts.MaxVertices))
	}
	nm := kcore.New(g, kopts...)
	if old := r.srv.swapMaintainer(nm); old != nil {
		old.Close() // stays queryable for readers that already loaded it
	}
	// Swap-then-Reset: a reader could WAIT between the swap and the Reset
	// and observe the previous sync's higher epoch for an instant; the
	// next stream marker restores monotonicity, and bootstraps are rare.
	r.wm.Reset(epoch)
	r.syncs.Add(1)
	r.connected.Store(true)
	defer r.connected.Store(false)
	r.lastErr.Store(nil)
	r.logf("replica: synced gen %d epoch %d from %s (n=%d m=%d)", gen, epoch, r.leader, g.N(), g.M())

	// The tail: apply records through the maintainer synchronously — the
	// decoded edge slice aliases the stream reader's scratch, and the
	// synchronous API returns only after the batch applied.
	sr := persist.NewStreamReader(br)
	for {
		// The leader pings ~1s idle; a 5s silence means a dead peer.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		rec, err := sr.Next()
		if err != nil {
			select {
			case <-r.quit:
				return nil
			default:
			}
			return fmt.Errorf("stream: %w", err)
		}
		m := r.srv.mnt()
		switch rec.Op {
		case persist.OpInsert:
			m.InsertEdges(rec.Edges)
			r.edges.Add(int64(len(rec.Edges)))
		case persist.OpRemove:
			m.RemoveEdges(rec.Edges)
			r.edges.Add(int64(len(rec.Edges)))
		case persist.OpGrow:
			if rec.N > m.N() {
				m.AddVertices(rec.N - m.N())
			}
		case persist.OpEpoch, persist.OpPing:
			r.leaderEpoch.Store(rec.Epoch)
			r.wm.Advance(rec.Epoch)
		}
		r.records.Add(1)
	}
}

// epochLag is the leader-vs-applied epoch delta (clamped at 0: a
// bootstrap Reset can briefly put the watermark ahead of the last
// stored leader marker).
func (r *Replica) epochLag() int64 {
	lag := int64(r.leaderEpoch.Load()) - int64(r.wm.Epoch())
	if lag < 0 {
		return 0
	}
	return lag
}

// registerMetrics adds the replication-side metrics to reg (called from
// Server.RegisterMetrics on a follower).
func (r *Replica) registerMetrics(reg *obs.Registry) {
	reg.MustRegister(
		obs.NewGaugeFunc("kcored_replica_connected", "1 while a replication session is streaming, else 0.",
			func() float64 {
				if r.connected.Load() {
					return 1
				}
				return 0
			}),
		obs.NewCounterFunc("kcored_replica_syncs_total", "Completed FULLSYNC bootstraps.",
			func() float64 { return float64(r.syncs.Load()) }),
		obs.NewCounterFunc("kcored_replica_records_total", "Op-stream records applied (epochs and pings included).",
			func() float64 { return float64(r.records.Load()) }),
		obs.NewCounterFunc("kcored_replica_edges_total", "Edges applied through streamed insert/remove records.",
			func() float64 { return float64(r.edges.Load()) }),
		obs.NewGaugeFunc("kcored_replica_applied_epoch", "Epoch watermark of locally applied state (what CORE.WAIT blocks on).",
			func() float64 { return float64(r.wm.Epoch()) }),
		obs.NewGaugeFunc("kcored_replica_leader_epoch", "Newest leader epoch seen on the replication stream.",
			func() float64 { return float64(r.leaderEpoch.Load()) }),
		obs.NewGaugeFunc("kcored_replica_epoch_lag", "Leader-vs-applied epoch delta (apply backlog).",
			func() float64 { return float64(r.epochLag()) }),
	)
}

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logger != nil {
		r.opts.Logger.Printf(format, args...)
	}
}
