package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/client"
	"repro/gen"
	"repro/internal/bz"
	"repro/kcore"
)

// TestShardScratchIsolation hammers a two-shard server with concurrent
// pipelining clients and verifies every reply against an independently
// computed decomposition. Each connection's command arena, id scratch,
// and reply buffers are owned by whichever shard worker adopted it; this
// test (run under -race in CI) proves that scratch never leaks across
// connections or shard workers — a wrong core number or a torn reply
// would surface here immediately.
func TestShardScratchIsolation(t *testing.T) {
	const n = 2000
	g := gen.ErdosRenyi(n, 8000, 7)
	fresh, _ := bz.Decompose(g.Clone())
	m := kcore.New(g, kcore.WithWorkers(2))
	defer m.Close()
	_, addr := startServer(t, m, WithConnShards(2))

	const (
		clients = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(ci)))
			for r := 0; r < rounds; r++ {
				// One pipelined burst mixing the scratch users: PING
				// (shared reply), CORE.GET (arena arg), CORE.MGET (id
				// scratch), and a probe unique to this client.
				vs := []int32{rng.Int31n(n), rng.Int31n(n), rng.Int31n(n), int32(ci)}
				c.Send("PING")
				c.Send("CORE.GET", vs[0])
				c.Send("CORE.MGET", vs[0], vs[1], vs[2], vs[3])
				if err := c.Flush(); err != nil {
					errc <- err
					return
				}
				if s, err := client.String(c.Receive()); err != nil || s != "PONG" {
					errc <- fmt.Errorf("client %d round %d: PING = %q, %v", ci, r, s, err)
					return
				}
				k, err := client.Int(c.Receive())
				if err != nil || int32(k) != fresh[vs[0]] {
					errc <- fmt.Errorf("client %d round %d: CORE.GET %d = %d, %v; want %d",
						ci, r, vs[0], k, err, fresh[vs[0]])
					return
				}
				ks, err := client.Ints(c.Receive())
				if err != nil {
					errc <- fmt.Errorf("client %d round %d: CORE.MGET: %v", ci, r, err)
					return
				}
				for i, v := range vs {
					if int32(ks[i]) != fresh[v] {
						errc <- fmt.Errorf("client %d round %d: CORE.MGET[%d] (v=%d) = %d, want %d",
							ci, r, i, v, ks[i], fresh[v])
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestGoroutineModeServes pins the WithConnShards(0) fallback — the only
// mode off Linux — to the same basic command surface the shard mode
// serves, so the fallback cannot rot while the default path evolves.
func TestGoroutineModeServes(t *testing.T) {
	const n = 500
	g := gen.ErdosRenyi(n, 2000, 11)
	fresh, _ := bz.Decompose(g.Clone())
	m := kcore.New(g, kcore.WithWorkers(2))
	defer m.Close()
	srv, addr := startServer(t, m, WithConnShards(0))
	if srv.connShards != 0 {
		t.Fatalf("connShards = %d, want 0", srv.connShards)
	}
	c := dial(t, addr)

	if s, err := client.String(c.Do("PING")); err != nil || s != "PONG" {
		t.Fatalf("PING = %q, %v", s, err)
	}
	for _, v := range []int32{0, 17, int32(n - 1)} {
		k, err := client.Int(c.Do("CORE.GET", v))
		if err != nil || int32(k) != fresh[v] {
			t.Fatalf("CORE.GET %d = %d, %v; want %d", v, k, err, fresh[v])
		}
	}
	if applied, err := client.Int(c.Do("CORE.INSERT", int32(n), int32(n+1))); err != nil || applied != 1 {
		t.Fatalf("CORE.INSERT = %d, %v; want 1", applied, err)
	}
	if k, err := client.Int(c.Do("CORE.GET", int32(n))); err != nil || k != 1 {
		t.Fatalf("CORE.GET after insert = %d, %v; want 1", k, err)
	}
}
