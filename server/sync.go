package server

import (
	"fmt"
	"time"

	"repro/persist"
)

// syncWriteTimeout bounds any single write to a follower. A follower
// that stops reading stalls the write until its socket buffer fills;
// past this deadline the leader abandons the session (the follower
// re-syncs from scratch when it comes back).
const syncWriteTimeout = 10 * time.Second

// cmdSync serves CORE.SYNC, the replication bootstrap + stream:
//
//	+FULLSYNC <gen> <epoch> <snaplen> <crc>\r\n
//	<snaplen raw bytes of graph.WriteBinary snapshot>
//	<endless CRC-framed op records: insert/remove/grow/epoch/ping>
//
// The snapshot and the tap are captured at one quiescent point of the
// maintainer, so the record stream starts exactly where the snapshot
// ends — no segment replay, no gap, no overlap. After the handshake the
// connection belongs to the stream until the follower disconnects, the
// follower falls too far behind (bounded tap overflows), or the server
// shuts down; it never returns to command dispatch.
func cmdSync(c *conn, args [][]byte) bool {
	p := c.srv.persist
	if p == nil {
		c.writeError("ERR replication requires persistence (start kcored with -dir)")
		return false
	}
	sess, err := p.StartSync()
	if err != nil {
		c.writeError("ERR " + err.Error())
		return false
	}
	defer sess.Close()

	c.wr.WriteSimple(fmt.Sprintf("FULLSYNC %d %d %d %d", sess.Gen, sess.Epoch, len(sess.Snapshot), sess.Crc))
	if err := c.wr.Flush(); err != nil {
		return true
	}
	// The snapshot bypasses the RESP writer: it is raw bytes, not a
	// frame, and may be large.
	c.nc.SetWriteDeadline(time.Now().Add(syncWriteTimeout))
	if _, err := c.nc.Write(sess.Snapshot); err != nil {
		return true
	}

	var pingBuf []byte
	for {
		data, epoch, err := sess.Wait(time.Second, c.srv.closeCh)
		if err != nil {
			// Slow-follower overflow or shutdown: drop the connection;
			// the follower notices and re-bootstraps.
			return true
		}
		if data == nil {
			// Idle: keep the pipe warm and the follower's epoch fresh.
			pingBuf = persist.AppendPing(pingBuf[:0], epoch)
			data = pingBuf
		}
		c.nc.SetWriteDeadline(time.Now().Add(syncWriteTimeout))
		if _, err := c.nc.Write(data); err != nil {
			return true
		}
	}
}

// cmdWait serves CORE.WAIT epoch [timeout-ms]: block until the served
// epoch reaches the target, then reply with the epoch actually reached.
// On a replica the served epoch is the applied-stream watermark — the
// read-your-writes primitive: a client that captured the leader's epoch
// after an acked write WAITs on the replica before reading. On a leader
// it waits on the maintainer's published epoch (useful after async
// writes on another connection). timeout-ms 0 or absent waits until
// server shutdown.
func cmdWait(c *conn, args [][]byte) bool {
	target, ok := parseInt(args[1])
	if !ok || target < 0 {
		c.writeErrArg("invalid epoch", args[1])
		return false
	}
	var timeout time.Duration
	if len(args) == 3 {
		ms, ok := parseInt(args[2])
		if !ok || ms < 0 {
			c.writeErrArg("invalid timeout", args[2])
			return false
		}
		timeout = time.Duration(ms) * time.Millisecond
	}

	if rep := c.srv.replica; rep != nil {
		applied, ok := rep.wm.Wait(uint64(target), timeout, c.srv.closeCh)
		if !ok {
			c.writeError("ERR WAIT timed out")
			return false
		}
		c.wr.WriteInt(int64(applied))
		return false
	}

	// Leader: the maintainer's epoch has no waiter hook; poll it. WAIT on
	// a leader is an operator/test convenience, not a hot path.
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if e := c.srv.mnt().Epoch(); e >= uint64(target) {
			c.wr.WriteInt(int64(e))
			return false
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			c.writeError("ERR WAIT timed out")
			return false
		}
		select {
		case <-c.srv.closeCh:
			c.writeError("ERR WAIT canceled: server shutting down")
			return false
		case <-time.After(time.Millisecond):
		}
	}
}
