package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/internal/bz"
	"repro/kcore"
	"repro/resp"
)

// startServer boots a server over a fresh maintainer on a loopback
// listener and returns it with its address; everything is torn down with
// the test.
func startServer(t *testing.T, m *kcore.Maintainer, opts ...Option) (*Server, string) {
	t.Helper()
	srv := New(m, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCommandSurface(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 7)
	fresh, _ := bz.Decompose(g.Clone())
	m := kcore.New(g, kcore.WithWorkers(2))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)

	if s, err := client.String(c.Do("PING")); err != nil || s != "PONG" {
		t.Fatalf("PING = %q, %v", s, err)
	}
	if s, err := client.String(c.Do("ping", "hello")); err != nil || s != "hello" {
		t.Fatalf("ping hello = %q, %v (names are case-insensitive)", s, err)
	}

	for _, v := range []int32{0, 1, 250, 499} {
		k, err := client.Int(c.Do("CORE.GET", v))
		if err != nil {
			t.Fatalf("CORE.GET %d: %v", v, err)
		}
		if int32(k) != fresh[v] {
			t.Fatalf("CORE.GET %d = %d, want %d", v, k, fresh[v])
		}
	}
	// Unseen ids are isolated vertices: core 0, not an error.
	if k, err := client.Int(c.Do("CORE.GET", 100000)); err != nil || k != 0 {
		t.Fatalf("CORE.GET beyond N = %d, %v; want 0", k, err)
	}

	ks, err := client.Ints(c.Do("CORE.MGET", 0, 1, 2, 499))
	if err != nil {
		t.Fatalf("CORE.MGET: %v", err)
	}
	for i, v := range []int32{0, 1, 2, 499} {
		if int32(ks[i]) != fresh[v] {
			t.Fatalf("CORE.MGET[%d] = %d, want %d", i, ks[i], fresh[v])
		}
	}

	maxCore, err := client.Int(c.Do("CORE.MAXCORE"))
	if err != nil || int32(maxCore) != bz.MaxCore(fresh) {
		t.Fatalf("CORE.MAXCORE = %d, %v, want %d", maxCore, err, bz.MaxCore(fresh))
	}
	if deg, err := client.Int(c.Do("CORE.DEGENERACY")); err != nil || deg != maxCore {
		t.Fatalf("CORE.DEGENERACY = %d, %v, want %d", deg, err, maxCore)
	}

	hist, err := client.Ints(c.Do("CORE.HIST"))
	if err != nil {
		t.Fatalf("CORE.HIST: %v", err)
	}
	var histTotal, want0 int64
	for _, n := range hist {
		histTotal += n
	}
	if histTotal != 500 {
		t.Fatalf("CORE.HIST sums to %d, want 500", histTotal)
	}
	for _, k := range fresh {
		if k == 0 {
			want0++
		}
	}
	if hist[0] != want0 {
		t.Fatalf("CORE.HIST[0] = %d, want %d", hist[0], want0)
	}

	// KVERT 0 counts everything; KVERT beyond the max core counts nothing.
	if n, err := client.Int(c.Do("CORE.KVERT", 0)); err != nil || n != 500 {
		t.Fatalf("CORE.KVERT 0 = %d, %v", n, err)
	}
	if n, err := client.Int(c.Do("CORE.KVERT", maxCore+1)); err != nil || n != 0 {
		t.Fatalf("CORE.KVERT max+1 = %d, %v", n, err)
	}

	if n, err := client.Int(c.Do("CORE.N")); err != nil || n != 500 {
		t.Fatalf("CORE.N = %d, %v", n, err)
	}
	if _, err := client.Int(c.Do("CORE.EPOCH")); err != nil {
		t.Fatalf("CORE.EPOCH: %v", err)
	}

	// A write round trip: insert a triangle among fresh vertices (grows
	// the universe), check, remove it again.
	if applied, err := client.Int(c.Do("CORE.INSERT", 600, 601, 601, 602, 602, 600)); err != nil || applied != 3 {
		t.Fatalf("CORE.INSERT = %d, %v; want 3 applied", applied, err)
	}
	if k, err := client.Int(c.Do("CORE.GET", 600)); err != nil || k != 2 {
		t.Fatalf("core of triangle vertex = %d, %v, want 2", k, err)
	}
	if n, err := client.Int(c.Do("CORE.N")); err != nil || n != 603 {
		t.Fatalf("CORE.N after growth = %d, %v, want 603", n, err)
	}
	if s, err := client.String(c.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("CORE.CHECK = %q, %v", s, err)
	}
	if applied, err := client.Int(c.Do("CORE.REMOVE", 600, 601, 601, 602, 602, 600)); err != nil || applied != 3 {
		t.Fatalf("CORE.REMOVE = %d, %v; want 3 applied", applied, err)
	}

	// CORE.GROW pre-allocates isolated vertices.
	if n, err := client.Int(c.Do("CORE.GROW", 100)); err != nil || n != 703 {
		t.Fatalf("CORE.GROW 100 = %d, %v, want 703", n, err)
	}

	if _, err := client.Int(c.Do("CORE.FLUSH")); err != nil {
		t.Fatalf("CORE.FLUSH: %v", err)
	}

	stats, err := client.StringMap(c.Do("CORE.STATS"))
	if err != nil {
		t.Fatalf("CORE.STATS: %v", err)
	}
	for _, key := range []string{"alg", "n", "epoch", "conns_active", "commands", "pipeline_p50", "delta_publishes"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("CORE.STATS missing %q (got %v)", key, stats)
		}
	}
	if stats["alg"] != "ParallelOrder" || stats["n"] != "703" {
		t.Fatalf("CORE.STATS alg/n = %q/%q", stats["alg"], stats["n"])
	}

	if s, err := client.String(c.Do("QUIT")); err != nil || s != "OK" {
		t.Fatalf("QUIT = %q, %v", s, err)
	}
}

func TestErrorReplies(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(100, 300, 1))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)

	cases := []struct {
		cmd  string
		args []any
		want string
	}{
		{"NOSUCH", nil, "unknown command"},
		{"CORE.GET", nil, "wrong number of arguments"},
		{"CORE.GET", []any{1, 2}, "wrong number of arguments"},
		{"CORE.GET", []any{"abc"}, "invalid vertex id"},
		{"CORE.GET", []any{-4}, "invalid vertex id"},
		{"CORE.MGET", []any{1, "x"}, "invalid vertex id"},
		{"CORE.INSERT", []any{1, 2, 3}, "vertex pairs"},
		{"CORE.INSERT", []any{1, "y"}, "invalid vertex id"},
		{"CORE.GROW", []any{-1}, "invalid vertex count"},
		{"CORE.KVERT", []any{"z"}, "invalid core value"},
	}
	for _, tc := range cases {
		_, err := c.Do(tc.cmd, tc.args...)
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("%s %v: err = %v, want server error", tc.cmd, tc.args, err)
		}
		if !strings.Contains(se.Msg, tc.want) {
			t.Fatalf("%s %v: error %q does not mention %q", tc.cmd, tc.args, se.Msg, tc.want)
		}
		if c.Err() != nil {
			t.Fatalf("server error poisoned the connection: %v", c.Err())
		}
	}
	// The connection still works after a parade of errors.
	if _, err := client.Int(c.Do("CORE.GET", 5)); err != nil {
		t.Fatalf("CORE.GET after errors: %v", err)
	}
	// Error replies never submitted anything: the graph is untouched.
	if s, err := client.String(c.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("CORE.CHECK = %q, %v", s, err)
	}
}

// TestPipelinedWritesCoalesce pins the tentpole property: a pipelined
// write burst on one connection shares engine rounds via the
// maintainer's coalescing pipeline instead of paying one round per
// command, while replies stay in command order and reads observe every
// earlier write.
func TestPipelinedWritesCoalesce(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(1000, 3000, 3), kcore.WithWorkers(2))
	defer m.Close()
	srv, addr := startServer(t, m)
	c := dial(t, addr)

	before := m.ServingStats()
	const burst = 200
	// Insert a long path among fresh vertices, one edge per command, then
	// read one of its vertices — all in a single pipelined flight.
	base := int32(5000)
	for i := int32(0); i < burst; i++ {
		if err := c.Send("CORE.INSERT", base+i, base+i+1); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := c.Send("CORE.GET", base); err != nil {
		t.Fatalf("Send read: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < burst; i++ {
		if _, err := client.Int(c.Receive()); err != nil {
			t.Fatalf("Receive %d: %v", i, err)
		}
	}
	k, err := client.Int(c.Receive())
	if err != nil || k != 1 {
		t.Fatalf("pipelined read-your-writes: core = %d, %v, want 1", k, err)
	}

	after := m.ServingStats()
	rounds := after.Batches - before.Batches
	if rounds >= burst/2 {
		t.Fatalf("pipelined burst of %d writes cost %d engine batches; expected coalescing", burst, rounds)
	}
	t.Logf("%d pipelined writes -> %d engine batches", burst, rounds)

	st := srv.Stats()
	if st.PipelineDepth.Max < 2 {
		t.Fatalf("pipeline depth never exceeded 1: %+v", st.PipelineDepth)
	}
	if s, err := client.String(c.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("CORE.CHECK = %q, %v", s, err)
	}
}

// TestInterleavedPipelineOrdering pins last-op-wins ordering through the
// wire: INSERT,REMOVE,INSERT,REMOVE of one edge in a single pipelined
// flight must end with the edge absent, every time.
func TestInterleavedPipelineOrdering(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(100, 0, 1))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)

	for round := 0; round < 30; round++ {
		c.Send("CORE.INSERT", 1, 2)
		c.Send("CORE.REMOVE", 1, 2)
		c.Send("CORE.INSERT", 1, 2)
		c.Send("CORE.REMOVE", 1, 2)
		c.Send("CORE.GET", 1)
		if err := c.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		for i := 0; i < 4; i++ {
			if _, err := c.Receive(); err != nil {
				t.Fatalf("Receive: %v", err)
			}
		}
		k, err := client.Int(c.Receive())
		if err != nil || k != 0 {
			t.Fatalf("round %d: core after insert/remove churn = %d, %v, want 0", round, k, err)
		}
	}
	if s, err := client.String(c.Do("CORE.CHECK")); err != nil || s != "OK" {
		t.Fatalf("CORE.CHECK = %q, %v", s, err)
	}
}

// TestErrorReplyOrderInPipeline pins reply ordering when an immediate
// error path fires mid-burst: the owed write replies must come out
// before the error frame, or every later reply is misattributed.
func TestErrorReplyOrderInPipeline(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(100, 0, 1))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)

	c.Send("CORE.INSERT", 1, 2)
	c.Send("NOSUCH")
	c.Send("CORE.INSERT", 3, "bad-id") // write-path parse error
	c.Send("CORE.GET", 1)
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if v, err := client.Int(c.Receive()); err != nil || v != 1 {
		t.Fatalf("reply 1 (insert) = %d, %v; want :1", v, err)
	}
	if _, err := c.Receive(); !strings.Contains(errText(err), "unknown command") {
		t.Fatalf("reply 2 = %v, want unknown-command error", err)
	}
	if _, err := c.Receive(); !strings.Contains(errText(err), "invalid vertex id") {
		t.Fatalf("reply 3 = %v, want invalid-id error", err)
	}
	if v, err := client.Int(c.Receive()); err != nil || v != 1 {
		t.Fatalf("reply 4 (get) = %d, %v; want :1", v, err)
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestProtocolErrorClosesConn(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(50, 100, 1))
	defer m.Close()
	srv, addr := startServer(t, m)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("*-5\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	rd := resp.NewReader(nc)
	v, err := rd.ReadValue()
	if err != nil || v.Kind != resp.Error {
		t.Fatalf("reply = %v, %v; want error reply", v, err)
	}
	// The server must then close; the next read sees EOF.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := rd.ReadValue(); err == nil {
		t.Fatalf("connection still open after protocol error")
	}
	if srv.Stats().ProtoErrors == 0 {
		t.Fatalf("proto_errors not counted")
	}
}

func TestInlineCommands(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(50, 100, 1))
	defer m.Close()
	_, addr := startServer(t, m)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("PING\r\ncore.get 3\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	rd := resp.NewReader(nc)
	if v, err := rd.ReadValue(); err != nil || string(v.Str) != "PONG" {
		t.Fatalf("inline PING = %v, %v", v, err)
	}
	if v, err := rd.ReadValue(); err != nil || v.Kind != resp.Integer {
		t.Fatalf("inline core.get = %v, %v", v, err)
	}
}

// TestGracefulShutdown verifies Shutdown settles a connection that has
// writes in flight: the futures drain, replies flush, and the listener
// refuses new work. The connection is deliberately left blocked
// mid-frame (two complete CORE.INSERTs followed by a truncated third),
// so the shutdown nudge lands with write futures pending — the exact
// path the drain exists for.
func TestGracefulShutdown(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(500, 1500, 5))
	defer m.Close()
	srv := New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	wire := "*3\r\n$11\r\nCORE.INSERT\r\n$3\r\n600\r\n$3\r\n700\r\n" +
		"*3\r\n$11\r\nCORE.INSERT\r\n$3\r\n601\r\n$3\r\n701\r\n" +
		"*3\r\n$11\r\nCORE.INSERT\r\n$3\r\n602" // truncated: never completed
	if _, err := nc.Write([]byte(wire)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Wait until both complete commands are dispatched (their futures are
	// pending; the reply flush is withheld while the burst looks open).
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().WriteCmds < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server never dispatched the write burst: %+v", srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// Both in-flight replies must have been applied, flushed and
	// delivered before the close.
	rd := resp.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 2; i++ {
		// The shared applied count is 2 when the pair coalesced into one
		// engine batch, 1 per reply when they ran separately.
		v, err := rd.ReadValue()
		if err != nil || v.Kind != resp.Integer || v.Int < 1 {
			t.Fatalf("reply %d after shutdown = %v, %v; want a positive integer", i, v, err)
		}
	}
	// And the writes are in the graph.
	if err := m.Check(); err != nil {
		t.Fatalf("post-shutdown check: %v", err)
	}
	if got := m.Graph().M(); got != 1500+2 {
		t.Fatalf("edges after shutdown = %d, want 1502", got)
	}

	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestRangeAggregates pins the id-range forms of CORE.HIST and
// CORE.KVERT — the per-shard owned-band scans the cluster router's
// scatter-gather merges are built on.
func TestRangeAggregates(t *testing.T) {
	g := gen.ErdosRenyi(500, 2000, 11)
	fresh, _ := bz.Decompose(g.Clone())
	m := kcore.New(g, kcore.WithWorkers(2))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)

	for _, w := range [][2]int{{0, 500}, {0, 0}, {100, 350}, {499, 500}, {450, 900}} {
		lo, hi := w[0], w[1]
		chi := min(hi, 500)
		want := []int64{0}
		for v := lo; v < chi; v++ {
			k := fresh[v]
			for int(k) >= len(want) {
				want = append(want, 0)
			}
			want[k]++
		}
		hist, err := client.Ints(c.Do("CORE.HIST", lo, hi))
		if err != nil {
			t.Fatalf("CORE.HIST %d %d: %v", lo, hi, err)
		}
		if len(hist) != len(want) {
			t.Fatalf("CORE.HIST %d %d: %d bins, want %d", lo, hi, len(hist), len(want))
		}
		for k := range want {
			if hist[k] != want[k] {
				t.Fatalf("CORE.HIST %d %d bin %d = %d, want %d", lo, hi, k, hist[k], want[k])
			}
		}
		for _, k := range []int{0, 1, 2, 50} {
			var wantN int64
			if k == 0 {
				wantN = int64(chi - min(lo, chi))
			} else {
				for v := lo; v < chi; v++ {
					if int(fresh[v]) >= k {
						wantN++
					}
				}
			}
			n, err := client.Int(c.Do("CORE.KVERT", k, lo, hi))
			if err != nil {
				t.Fatalf("CORE.KVERT %d %d %d: %v", k, lo, hi, err)
			}
			if n != wantN {
				t.Fatalf("CORE.KVERT %d %d %d = %d, want %d", k, lo, hi, n, wantN)
			}
		}
	}

	// Arity and argument errors on the range forms.
	for _, tc := range []struct {
		args []any
		want string
	}{
		{[]any{"CORE.HIST", 1}, "id range"},
		{[]any{"CORE.HIST", 1, 2, 3}, "wrong number of arguments"},
		{[]any{"CORE.HIST", "x", 2}, "invalid vertex id"},
		{[]any{"CORE.KVERT", 1, 2}, "id range"},
		{[]any{"CORE.KVERT", 1, 2, 3, 4}, "wrong number of arguments"},
		{[]any{"CORE.KVERT", 1, "x", 2}, "invalid vertex id"},
	} {
		_, err := c.Do(tc.args[0].(string), tc.args[1:]...)
		var se *client.ServerError
		if !errors.As(err, &se) || !strings.Contains(se.Msg, tc.want) {
			t.Fatalf("%v: err = %v, want server error mentioning %q", tc.args, err, tc.want)
		}
	}
}
