// Package server exposes a kcore.Maintainer over TCP speaking the RESP2
// wire protocol (package resp) — the network surface of the serving
// layer. One goroutine per connection reads pipelined CORE.* commands,
// serves queries lock-free off the maintainer's latest published
// snapshot, and fans write commands asynchronously into the maintainer's
// coalescing pipeline, so a pipelined write burst — from one connection
// or from many — shares engine rounds instead of paying one round per
// command. Replies are buffered and flushed once per pipelined burst.
//
// The protocol is plain RESP2, so redis-cli works for exploration:
//
//	$ redis-cli -p 6380 core.get 42
//	(integer) 3
//
// See the package-level command table in command.go and the README's
// "Network serving" section.
package server

import (
	"context"
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/stats"
	"repro/kcore"
	"repro/persist"
)

// Option configures a Server.
type Option func(*Server)

// WithLogger sets the connection-error logger; the default logs through
// the standard library's default logger. Pass nil to silence.
func WithLogger(l *log.Logger) Option { return func(s *Server) { s.logger = l; s.logSet = true } }

// WithMaxPipeline bounds how many commands one connection may have
// in flight before the server forces a drain of its pending write
// futures (default defaultMaxPipeline). It bounds per-connection memory,
// not protocol depth — clients may pipeline arbitrarily deep.
func WithMaxPipeline(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxPipeline = n
		}
	}
}

// WithConnShards sets how many event-loop conn-shard workers handle
// connections (Linux only; see shard_linux.go). The default is
// GOMAXPROCS. Pass 0 to disable sharding and serve every connection
// with its own goroutine — the only mode on other platforms, and the
// automatic fallback when shard setup fails. Negative values leave the
// default.
func WithConnShards(n int) Option {
	return func(s *Server) {
		if n >= 0 {
			s.connShards = n
		}
	}
}

// WithPersistence attaches the durability manager whose OpLog already
// feeds off this server's maintainer. The server does not own it (the
// caller wires Start/Close around the maintainer's lifecycle); attaching
// it here exposes the operator surface: CORE.BGSAVE, CORE.LASTSAVE, and
// the persist_* keys in CORE.STATS.
func WithPersistence(p *persist.Manager) Option { return func(s *Server) { s.persist = p } }

const defaultMaxPipeline = 512

// Server serves one Maintainer over RESP. Create with New, start with
// Serve or ListenAndServe, stop with Shutdown (graceful) or Close.
type Server struct {
	// m is swappable: a replica re-bootstrapping from a fresh leader
	// snapshot builds a new maintainer and swaps it in atomically;
	// readers holding the old one keep serving their snapshot.
	m           atomic.Pointer[kcore.Maintainer]
	maxPipeline int
	connShards  int
	persist     *persist.Manager
	replica     *Replica // set by NewReplica before Serve; nil on a leader
	logger      *log.Logger
	logSet      bool

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	inFlight sync.WaitGroup // one per connection goroutine / shard worker
	closing  atomic.Bool
	closeCh  chan struct{} // closed once by beginClose; cancels blocking commands
	sg       *shardGroup

	stats serveCounters

	// metrics is built unconditionally by New (slowThreshold/slowSize are
	// its WithSlowlog inputs); handlers nil-check it only so benchmarks
	// can clear it to measure the uninstrumented hot path.
	metrics       *serverMetrics
	slowThreshold time.Duration
	slowSize      int
}

// serveCounters is the server-side half of ServeStats, updated by the
// connection goroutines.
type serveCounters struct {
	connsTotal  atomic.Int64
	connsActive atomic.Int64
	commands    atomic.Int64
	writeCmds   atomic.Int64
	errorsSent  atomic.Int64
	protoErrors atomic.Int64
	// pipeDepth samples the number of commands handled per flush cycle —
	// the observed pipelining depth.
	pipeDepth stats.LatencyRecorder
}

// ServeStats is a point-in-time view of the server's network-side
// counters, the wire-facing sibling of kcore.ServingStats (which it is
// reported next to in CORE.STATS).
type ServeStats struct {
	ConnsTotal  int64 // connections ever accepted
	ConnsActive int64 // connections currently open
	Commands    int64 // commands dispatched
	WriteCmds   int64 // CORE.INSERT/CORE.REMOVE among them
	ErrorsSent  int64 // error replies written
	ProtoErrors int64 // connections dropped on malformed frames
	// PipelineDepth summarizes commands-per-flush-cycle — how deep
	// clients actually pipeline (1 means unpipelined request/response).
	PipelineDepth stats.Percentiles
}

// New returns a Server over m. The caller keeps ownership of m: closing
// the server does not close the maintainer.
func New(m *kcore.Maintainer, opts ...Option) *Server {
	s := &Server{
		maxPipeline:   defaultMaxPipeline,
		connShards:    defaultConnShards(),
		conns:         make(map[*conn]struct{}),
		closeCh:       make(chan struct{}),
		slowThreshold: 10 * time.Millisecond,
		slowSize:      128,
	}
	s.m.Store(m)
	for _, o := range opts {
		o(s)
	}
	s.metrics = newServerMetrics(s.slowThreshold, s.slowSize)
	return s
}

// Stats returns the server's network-side counters.
func (s *Server) Stats() ServeStats {
	return ServeStats{
		ConnsTotal:    s.stats.connsTotal.Load(),
		ConnsActive:   s.stats.connsActive.Load(),
		Commands:      s.stats.commands.Load(),
		WriteCmds:     s.stats.writeCmds.Load(),
		ErrorsSent:    s.stats.errorsSent.Load(),
		ProtoErrors:   s.stats.protoErrors.Load(),
		PipelineDepth: s.stats.pipeDepth.Percentiles(),
	}
}

// Maintainer returns the maintainer this server currently fronts (a
// replica swaps it on re-bootstrap).
func (s *Server) Maintainer() *kcore.Maintainer { return s.m.Load() }

// mnt is the handler-side accessor; each handler loads it once so one
// command is served entirely by one maintainer.
func (s *Server) mnt() *kcore.Maintainer { return s.m.Load() }

// swapMaintainer atomically replaces the served maintainer and returns
// the previous one (the replica re-sync path). The old maintainer stays
// fully queryable for handlers that already loaded it.
func (s *Server) swapMaintainer(nm *kcore.Maintainer) *kcore.Maintainer { return s.m.Swap(nm) }

// Addr returns the listening address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr ("host:port") and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown or Close, spawning one
// goroutine per connection. It takes ownership of ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()

	if s.connShards > 0 {
		sg := newShardGroup(s, s.connShards) // nil = unsupported; fall back
		s.mu.Lock()
		s.sg = sg
		s.mu.Unlock()
		if sg != nil && s.closing.Load() {
			sg.wakeAll() // Shutdown raced shard startup; let the workers exit
		}
	}

	// Transient accept failures (fd exhaustion under connection fan-in,
	// ECONNABORTED) must not kill the listener: back off and retry, the
	// way net/http does; only hard errors end Serve.
	backoff := 5 * time.Millisecond
	const maxBackoff = time.Second
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return ErrServerClosed
			}
			if isTransientAccept(err) {
				s.logf("server: accept: %v; retrying in %v", err, backoff)
				time.Sleep(backoff)
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
				continue
			}
			return err
		}
		backoff = 5 * time.Millisecond
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.stats.connsTotal.Add(1)
		s.stats.connsActive.Add(1)
		if s.sg != nil && s.sg.adopt(c) {
			continue // a shard worker owns the connection now
		}
		s.inFlight.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				s.stats.connsActive.Add(-1)
				s.inFlight.Done()
			}()
			c.serve()
		}()
	}
}

// Shutdown stops the server gracefully: the listener closes, every
// connection is nudged out of its blocking read, drains the write
// futures already fanned into the maintainer's pipeline, flushes its
// buffered replies, and closes. Shutdown returns when every connection
// goroutine has exited or ctx is done (then remaining connections are
// closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginClose()
	// Nudge blocked readers: a read deadline in the past wakes the read
	// loop, which sees closing and performs the graceful drain.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Unix(0, 0))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		return ctx.Err()
	}
}

// Close stops the server immediately: listener and all connections are
// closed; in-flight commands may go unanswered.
func (s *Server) Close() error {
	s.beginClose()
	s.closeConns()
	s.inFlight.Wait()
	return nil
}

func (s *Server) beginClose() {
	if s.closing.CompareAndSwap(false, true) {
		close(s.closeCh) // wakes blocking commands (CORE.SYNC, CORE.WAIT)
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	sg := s.sg
	s.mu.Unlock()
	if sg != nil {
		sg.wakeAll() // pop shard workers out of EpollWait
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
}

// isTransientAccept reports whether an Accept error is worth backing off
// and retrying rather than killing the listener: fd exhaustion under a
// connection fan-in storm (EMFILE/ENFILE — the fds come back as soon as
// some connections drain) and a peer resetting mid-handshake
// (ECONNABORTED/ECONNRESET). The deprecated net.Error.Temporary() covers
// an overlapping set, but which of these it reports depends on how the
// platform wrapped the errno (net's own isConnError misses a
// *os.SyscallError-wrapped ECONNRESET, for instance) — errors.Is
// classification is explicit and survives any wrapping. Temporary() is
// kept as a fallback for non-errno transient errors.
func isTransientAccept(err error) bool {
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Temporary()
}

func (s *Server) logf(format string, args ...any) {
	if s.logSet {
		if s.logger != nil {
			s.logger.Printf(format, args...)
		}
		return
	}
	log.Printf(format, args...)
}
