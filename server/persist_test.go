package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/kcore"
	"repro/persist"
)

// startPersistentServer wires the full durability stack the way kcored
// does: Manager → maintainer (WithOpLog) → Start → server
// (WithPersistence).
func startPersistentServer(t *testing.T, dir string) (*kcore.Maintainer, *persist.Manager, string) {
	t.Helper()
	mgr, err := persist.NewManager(dir, persist.Options{Fsync: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(gen.ErdosRenyi(200, 600, 19), kcore.WithOpLog(mgr), kcore.WithWorkers(2))
	t.Cleanup(func() { mgr.Close(); m.Close() })
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, m, WithPersistence(mgr))
	return m, mgr, addr
}

func statsMap(t *testing.T, c *client.Conn) map[string]string {
	t.Helper()
	kv, err := client.StringMap(c.Do("CORE.STATS"))
	if err != nil {
		t.Fatalf("CORE.STATS: %v", err)
	}
	return kv
}

// TestBGSaveAndLastSave drives CORE.BGSAVE over the wire and watches the
// checkpoint land via persist_checkpoints in CORE.STATS.
func TestBGSaveAndLastSave(t *testing.T) {
	_, _, addr := startPersistentServer(t, t.TempDir())
	c := dial(t, addr)

	kv := statsMap(t, c)
	if kv["persist_checkpoints"] != "1" {
		t.Fatalf("persist_checkpoints = %q, want 1 after Start", kv["persist_checkpoints"])
	}
	if kv["persist_fsync"] != "always" {
		t.Fatalf("persist_fsync = %q", kv["persist_fsync"])
	}
	if kv["persist_err"] != "" {
		t.Fatalf("persist_err = %q", kv["persist_err"])
	}

	if _, err := client.Int(c.Do("CORE.INSERT", "1", "150")); err != nil {
		t.Fatal(err)
	}
	if s, err := client.String(c.Do("CORE.BGSAVE")); err != nil || s != "Background saving started" {
		t.Fatalf("CORE.BGSAVE = %q, %v", s, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, _ := strconv.Atoi(statsMap(t, c)["persist_checkpoints"])
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("BGSAVE never completed: %v", statsMap(t, c))
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts, err := client.Int(c.Do("CORE.LASTSAVE"))
	if err != nil {
		t.Fatal(err)
	}
	if now := time.Now().Unix(); ts <= 0 || now-ts > 60 {
		t.Fatalf("CORE.LASTSAVE = %d, now %d", ts, now)
	}
}

// TestPersistenceNotConfigured: without WithPersistence the commands
// fail cleanly instead of panicking.
func TestPersistenceNotConfigured(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(50, 100, 3))
	defer m.Close()
	_, addr := startServer(t, m)
	c := dial(t, addr)
	for _, cmd := range []string{"CORE.BGSAVE", "CORE.LASTSAVE"} {
		if _, err := c.Do(cmd); err == nil {
			t.Fatalf("%s succeeded without persistence", cmd)
		}
	}
	if kv := statsMap(t, c); kv["persist_gen"] != "" {
		t.Fatalf("persist keys present without persistence: %v", kv)
	}
}

// flakyListener fails the first accepts with a scripted error, then
// delegates. It reproduces what Temporary() does NOT cover: EMFILE from
// fd exhaustion.
type flakyListener struct {
	net.Listener
	mu    sync.Mutex
	fails int
	err   error
	seen  int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	inject := l.seen < l.fails
	l.seen++
	l.mu.Unlock()
	if inject {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: os.NewSyscallError("accept", l.err)}
	}
	return l.Listener.Accept()
}

// TestAcceptRetriesTransient: the accept loop must survive EMFILE,
// ENFILE and ECONNABORTED bursts and still serve the connection that
// eventually gets through.
func TestAcceptRetriesTransient(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.EMFILE, syscall.ENFILE, syscall.ECONNABORTED} {
		t.Run(errno.Error(), func(t *testing.T) {
			m := kcore.New(gen.ErdosRenyi(50, 100, 9))
			defer m.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := &flakyListener{Listener: ln, fails: 3, err: errno}
			srv := New(m, WithConnShards(0), WithLogger(nil))
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(fl) }()
			t.Cleanup(func() { srv.Close(); <-serveDone })

			c := dial(t, ln.Addr().String())
			if s, err := client.String(c.Do("PING")); err != nil || s != "PONG" {
				t.Fatalf("PING after %v burst = %q, %v", errno, s, err)
			}
			fl.mu.Lock()
			seen := fl.seen
			fl.mu.Unlock()
			if seen < 4 {
				t.Fatalf("accept called %d times, want the error burst consumed", seen)
			}
		})
	}
}

// TestAcceptFatalError: a non-transient accept error still ends Serve —
// the retry loop must not spin on permanent failures.
func TestAcceptFatalError(t *testing.T) {
	m := kcore.New(gen.ErdosRenyi(10, 20, 1))
	defer m.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, fails: 1 << 30, err: syscall.EBADF}
	srv := New(m, WithConnShards(0), WithLogger(nil))
	done := make(chan error, 1)
	go func() { done <- srv.Serve(fl) }()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, ErrServerClosed) {
			t.Fatalf("Serve returned %v, want the fatal accept error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve kept retrying a non-transient accept error")
	}
	srv.Close()
	ln.Close()
}

// TestIsTransientAccept pins the classification table.
func TestIsTransientAccept(t *testing.T) {
	wrap := func(errno syscall.Errno) error {
		return &net.OpError{Op: "accept", Net: "tcp", Err: os.NewSyscallError("accept", errno)}
	}
	for _, errno := range []syscall.Errno{syscall.EMFILE, syscall.ENFILE, syscall.ECONNABORTED, syscall.ECONNRESET} {
		if !isTransientAccept(wrap(errno)) {
			t.Errorf("%v not classified transient", errno)
		}
	}
	for _, err := range []error{wrap(syscall.EBADF), wrap(syscall.EINVAL), fmt.Errorf("use of closed network connection")} {
		if isTransientAccept(err) {
			t.Errorf("%v classified transient", err)
		}
	}
}
