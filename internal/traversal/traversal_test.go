package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
)

func mustCheck(t *testing.T, st *State, context string) {
	t.Helper()
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

func TestNewStateMCD(t *testing.T) {
	g := gen.ErdosRenyi(200, 600, 1)
	st := NewState(g)
	mustCheck(t, st, "init")
}

func TestInsertTriangle(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st := NewState(g)
	res := st.InsertEdge(0, 2)
	if !res.Applied || res.VStar == 0 {
		t.Fatalf("insert: %+v", res)
	}
	for v := int32(0); v < 3; v++ {
		if st.CoreOf(v) != 2 {
			t.Fatalf("core[%d] = %d, want 2", v, st.CoreOf(v))
		}
	}
	mustCheck(t, st, "triangle")
}

func TestInsertNoChangeBridge(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	st := NewState(g)
	res := st.InsertEdge(0, 3)
	if !res.Applied || res.VStar != 0 {
		t.Fatalf("bridge: %+v", res)
	}
	mustCheck(t, st, "bridge")
}

func TestRemoveTriangle(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := NewState(g)
	res := st.RemoveEdge(0, 2)
	if !res.Applied || res.VStar != 3 {
		t.Fatalf("remove: %+v", res)
	}
	mustCheck(t, st, "triangle removal")
}

func TestRejectsDegenerate(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	st := NewState(g)
	if st.InsertEdge(0, 0).Applied || st.InsertEdge(0, 1).Applied {
		t.Fatal("self-loop/duplicate must not apply")
	}
	if st.RemoveEdge(1, 2).Applied {
		t.Fatal("absent removal must not apply")
	}
	mustCheck(t, st, "degenerate")
}

func TestGrowMintsIsolatedVertices(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := NewState(g)
	preEpoch := st.Snapshot().Epoch

	st.Grow(10)
	st.Grow(5) // never shrinks
	if len(st.core) != 10 || st.G.N() != 10 {
		t.Fatalf("N=%d G.N=%d, want 10", len(st.core), st.G.N())
	}
	for v := int32(3); v < 10; v++ {
		if st.CoreOf(v) != 0 || st.MCDOf(v) != 0 {
			t.Fatalf("new vertex %d: core %d mcd %d, want 0/0", v, st.CoreOf(v), st.MCDOf(v))
		}
	}
	snap := st.Snapshot()
	if snap.Epoch <= preEpoch || snap.N != 10 || snap.CoreOf(9) != 0 {
		t.Fatalf("grown snapshot not published: %+v", snap)
	}
	if ps := st.PubStats(); ps.Grow != 1 {
		t.Fatalf("pub stats %+v, want 1 grow", ps)
	}
	mustCheck(t, st, "after growth")

	// The grown range must be maintainable: promote new vertices into the
	// triangle's level, then collapse them again.
	for _, e := range []graph.Edge{{U: 4, V: 5}, {U: 5, V: 6}, {U: 6, V: 4}, {U: 9, V: 0}} {
		if !st.InsertEdge(e.U, e.V).Applied {
			t.Fatalf("insert %v into grown range did not apply", e)
		}
	}
	mustCheck(t, st, "edges into grown range")
	st.RemoveEdge(4, 5)
	mustCheck(t, st, "removal in grown range")
}

func TestMixedWorkload(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 4)
	st := NewState(g)
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 400; step++ {
		u, v := int32(rng.Intn(120)), int32(rng.Intn(120))
		if rng.Intn(2) == 0 {
			st.InsertEdge(u, v)
		} else {
			st.RemoveEdge(u, v)
		}
		if step%50 == 0 {
			mustCheck(t, st, "mixed step")
		}
	}
	mustCheck(t, st, "mixed final")
}

func TestCliqueCycle(t *testing.T) {
	const n = 14
	st := NewState(graph.New(n))
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			st.InsertEdge(u, v)
		}
	}
	mustCheck(t, st, "clique")
	for v := int32(0); v < n; v++ {
		if st.CoreOf(v) != n-1 {
			t.Fatalf("core[%d] = %d, want %d", v, st.CoreOf(v), n-1)
		}
	}
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			st.RemoveEdge(u, v)
		}
	}
	mustCheck(t, st, "dismantled")
}

// Property: Traversal agrees with BZ under random maintenance on multiple
// families; also V* <= V+ always.
func TestQuickTraversalMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		var g *graph.Graph
		if rng.Intn(2) == 0 {
			g = gen.ErdosRenyi(n, int64(2*n), seed)
		} else {
			g = gen.RMAT(6, int64(n), seed)
			n = g.N()
		}
		st := NewState(g)
		for step := 0; step < 150; step++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			var s Stats
			if rng.Intn(2) == 0 {
				s = st.InsertEdge(u, v)
			} else {
				s = st.RemoveEdge(u, v)
			}
			if s.VStar > s.VPlus {
				return false
			}
		}
		return st.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The defining behavioral contrast with the Order algorithm: Traversal's
// searching set V+ is a subcore-scale region. On a graph that is one big
// subcore, inserted edges that change nothing still traverse many vertices.
func TestVPlusSubcoreScale(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 21)
	st := NewState(g)
	batch := gen.SampleNonEdges(g, 50, 22)
	maxVPlus := 0
	for _, e := range batch {
		s := st.InsertEdge(e.U, e.V)
		if s.VPlus > maxVPlus {
			maxVPlus = s.VPlus
		}
	}
	mustCheck(t, st, "subcore scale")
	if maxVPlus < 10 {
		t.Fatalf("expected subcore-scale traversal on BA graph, max |V+| = %d", maxVPlus)
	}
}
