// Package traversal implements the Traversal core maintenance algorithm of
// Sarıyüce et al. [20] — the sequential algorithm every competing parallel
// system builds on (paper §1, §2.2) and the basis of the JEI/JER baseline in
// internal/jes. Insertion performs a depth-first search inside the k-subcore
// pruned by the max-core degree (mcd) and pure-core degree (pcd); removal
// propagates mcd deficits exactly like the Order-based removal but without
// any k-order bookkeeping.
//
// Unlike the Order algorithm, the searching set V+ here is the pruned
// subcore, whose size (and the ratio |V+|/|V*|) is what the paper's
// stability experiment (Fig. 6) shows fluctuating.
//
// Core numbers and mcd are stored atomically so that the join-edge-set
// scheduler in internal/jes may run operations at core levels ≥ 2 apart
// concurrently; within one level all operations are sequential.
package traversal

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/grow"
	"repro/internal/snapshot"
)

// State carries the Traversal algorithm's maintenance state: current core
// numbers and eagerly maintained max-core degrees.
type State struct {
	G    *graph.Graph
	core []atomic.Int32
	mcd  []atomic.Int32
	// mu guards the adjacency structure of G: operations mutate it under
	// the write lock and traverse it under read locks, so that the jes
	// scheduler may run level-isolated operations concurrently. (Level
	// isolation keeps the SEMANTICS stable; the lock keeps the slice
	// memory safe.)
	mu sync.RWMutex

	pub snapshot.Publisher // epoch-versioned read snapshots
}

// NewState computes the initial core numbers (BZ) and all max-core degrees.
func NewState(g *graph.Graph) *State {
	n := g.N()
	st := &State{
		G:    g,
		core: make([]atomic.Int32, n),
		mcd:  make([]atomic.Int32, n),
	}
	cores, _ := bz.Decompose(g)
	for v := 0; v < n; v++ {
		st.core[v].Store(cores[v])
	}
	for v := int32(0); v < int32(n); v++ {
		st.mcd[v].Store(st.computeMCD(v))
	}
	st.PublishSnapshot()
	return st
}

// Grow extends the vertex universe to at least n vertices. New vertices
// are isolated (core 0, mcd 0 — the zero values). The grown snapshot is
// published copy-on-write; held views keep their pre-growth N. Must run
// at quiescence (between batches / jes levels), so reallocating the
// atomic arrays races with nothing.
func (st *State) Grow(n int) {
	old := len(st.core)
	if n <= old {
		return
	}
	st.G.Grow(n)
	st.core = grow.Slice(st.core, n)
	st.mcd = grow.Slice(st.mcd, n)
	st.pub.PublishGrow(n, st.G.M())
}

// PublishSnapshot builds an epoch-versioned immutable view of the current
// core numbers and installs it as the state's read snapshot. It must run at
// quiescence (between batches / jes levels).
func (st *State) PublishSnapshot() *snapshot.View {
	return st.pub.Publish(st.CoreNumbers(), st.G.M())
}

// PublishSnapshotUnchanged advances the snapshot epoch in O(1), reusing
// the previous view's core data; only valid when no core number changed
// since the last publication (the graph's edge count may have).
func (st *State) PublishSnapshotUnchanged() *snapshot.View {
	return st.pub.PublishUnchanged(st.G.M())
}

// PublishSnapshotDelta publishes a copy-on-write view patched from the
// previous one; changed must cover every vertex whose core number moved
// since the last publication (a batch's ⋃V*; duplicates are fine). Huge
// distinct sets fall back to the full rebuild (see snapshot.BuildDelta).
// Must run at quiescence.
func (st *State) PublishSnapshotDelta(changed []int32) *snapshot.View {
	delta, ok := snapshot.BuildDelta(changed, st.G.N(), func(v int32) int32 { return st.core[v].Load() })
	if !ok {
		return st.PublishSnapshot()
	}
	return st.pub.PublishDelta(delta, st.G.M())
}

// PubStats reports the snapshot publication counters.
func (st *State) PubStats() snapshot.PubStats { return st.pub.Stats() }

// Snapshot returns the most recently published view. Never nil: NewState
// publishes the initial decomposition.
func (st *State) Snapshot() *snapshot.View { return st.pub.Current() }

// CoreOf returns the current core number of v.
func (st *State) CoreOf(v int32) int32 { return st.core[v].Load() }

// CoreNumbers returns a snapshot of all core numbers.
func (st *State) CoreNumbers() []int32 {
	out := make([]int32, len(st.core))
	for v := range st.core {
		out[v] = st.core[v].Load()
	}
	return out
}

// MCDOf returns the maintained max-core degree of v (for tests).
func (st *State) MCDOf(v int32) int32 { return st.mcd[v].Load() }

func (st *State) computeMCD(v int32) int32 {
	cv := st.core[v].Load()
	m := int32(0)
	for _, w := range st.G.Adj(v) {
		if st.core[w].Load() >= cv {
			m++
		}
	}
	return m
}

// pcd is the pure-core degree: neighbors that can contribute to promoting v
// past k — strictly higher core, or same core with mcd above k.
func (st *State) pcd(v, k int32) int32 {
	p := int32(0)
	for _, w := range st.G.Adj(v) {
		cw := st.core[w].Load()
		if cw > k || (cw == k && st.mcd[w].Load() > k) {
			p++
		}
	}
	return p
}

// Stats reports the effect of one operation; VPlus is the number of visited
// vertices (the searching set), VStar the number of core-number changes and
// Changed the changed vertices themselves (V*, for delta snapshot
// publication).
type Stats struct {
	Applied bool
	VPlus   int
	VStar   int
	Changed []int32
}

// InsertEdge inserts (u, v) and updates core numbers with the Traversal
// insertion: a pcd-pruned DFS through the k-subcore followed by an eviction
// cascade.
func (st *State) InsertEdge(u, v int32) Stats {
	if u == v {
		return Stats{}
	}
	st.mu.Lock()
	ok := st.G.AddEdge(u, v)
	st.mu.Unlock()
	if !ok {
		return Stats{}
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	cu, cv := st.core[u].Load(), st.core[v].Load()
	if cv >= cu {
		st.mcd[u].Add(1)
	}
	if cu >= cv {
		st.mcd[v].Add(1)
	}
	r := u
	k := cu
	if cv < cu {
		r = v
		k = cv
	}
	// Phase 1 — prune-bounded DFS through the k-subcore: visit vertices
	// with mcd > k reachable from the root, expanding only past vertices
	// whose candidate degree exceeds k (they are interior; cd ≤ k marks a
	// boundary). No cd is mutated during the walk, so every visited
	// vertex's cd is its pure-core degree against the pre-insertion
	// state — the eviction cascade below then sees consistent counts.
	visitOrder := []int32{r}
	visited := map[int32]bool{r: true}
	cd := map[int32]int32{r: st.pcd(r, k)}
	stack := []int32{r}
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cd[w] <= k {
			continue // boundary vertex: cannot be promoted, do not expand
		}
		for _, x := range st.G.Adj(w) {
			if !visited[x] && st.core[x].Load() == k && st.mcd[x].Load() > k {
				visited[x] = true
				cd[x] = st.pcd(x, k)
				visitOrder = append(visitOrder, x)
				stack = append(stack, x)
			}
		}
	}
	// Phase 2 — eviction cascade: every visited vertex that cannot keep
	// cd > k is evicted, decrementing the cd of visited neighbors that
	// counted it in their pure-core degree.
	evicted := map[int32]bool{}
	var queue []int32
	for _, w := range visitOrder {
		if cd[w] <= k {
			evicted[w] = true
			queue = append(queue, w)
		}
	}
	for len(queue) > 0 {
		y := queue[0]
		queue = queue[1:]
		if st.mcd[y].Load() <= k {
			// y was never counted in any neighbor's pcd; nothing to
			// propagate (only the root can get here).
			continue
		}
		for _, x := range st.G.Adj(y) {
			if visited[x] && !evicted[x] {
				cd[x]--
				if cd[x] <= k {
					evicted[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
	var promoted []int32
	for _, w := range visitOrder {
		if !evicted[w] {
			promoted = append(promoted, w)
		}
	}
	st.applyPromotions(promoted, k)
	return Stats{Applied: true, VPlus: len(visitOrder), VStar: len(promoted), Changed: promoted}
}

// applyPromotions bumps the promoted vertices' cores to k+1 and repairs mcd
// incrementally: each promoted vertex is recomputed, and every unpromoted
// neighbor at level k+1 gains one qualifying neighbor.
func (st *State) applyPromotions(promoted []int32, k int32) {
	isPromoted := map[int32]bool{}
	for _, w := range promoted {
		isPromoted[w] = true
		st.core[w].Store(k + 1)
	}
	for _, w := range promoted {
		st.mcd[w].Store(st.computeMCD(w))
		for _, x := range st.G.Adj(w) {
			if !isPromoted[x] && st.core[x].Load() == k+1 {
				st.mcd[x].Add(1)
			}
		}
	}
}

// RemoveEdge removes (u, v) and updates core numbers with the Traversal
// removal: mcd deficits cascade through the level-k neighborhood (V+ = V*).
func (st *State) RemoveEdge(u, v int32) Stats {
	if u == v {
		return Stats{}
	}
	st.mu.Lock()
	ok := st.G.RemoveEdge(u, v)
	st.mu.Unlock()
	if !ok {
		return Stats{}
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	cu, cv := st.core[u].Load(), st.core[v].Load()
	k := cu
	if cv < k {
		k = cv
	}
	if cv >= cu {
		st.mcd[u].Add(-1)
	}
	if cu >= cv {
		st.mcd[v].Add(-1)
	}
	var dropped []int32
	var queue []int32
	drop := func(x int32) {
		st.core[x].Store(k - 1)
		dropped = append(dropped, x)
		queue = append(queue, x)
	}
	if st.core[u].Load() == k && st.mcd[u].Load() < k {
		drop(u)
	}
	if st.core[v].Load() == k && st.mcd[v].Load() < k {
		drop(v)
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		for _, x := range st.G.Adj(w) {
			if st.core[x].Load() != k {
				continue
			}
			// w left level k: x loses one qualifying neighbor.
			if st.mcd[x].Add(-1) < k {
				drop(x)
			}
		}
	}
	for _, w := range dropped {
		st.mcd[w].Store(st.computeMCD(w))
	}
	return Stats{Applied: true, VPlus: len(dropped), VStar: len(dropped), Changed: dropped}
}

// CheckInvariants verifies that cores match a fresh decomposition and that
// every maintained mcd matches Definition 3.8. For tests.
func (st *State) CheckInvariants() error {
	truth, _ := bz.Decompose(st.G)
	for v := range truth {
		if got := st.core[v].Load(); got != truth[v] {
			return fmt.Errorf("traversal: core[%d] = %d, want %d", v, got, truth[v])
		}
	}
	for v := int32(0); v < int32(st.G.N()); v++ {
		if got, want := st.mcd[v].Load(), st.computeMCD(v); got != want {
			return fmt.Errorf("traversal: mcd[%d] = %d, want %d", v, got, want)
		}
	}
	return nil
}
