// Package spin provides the CAS-based busy-wait locks used by the
// Parallel-Order core maintenance algorithms (paper §3.5).
//
// The paper synchronizes workers with per-vertex locks implemented by the
// compare-and-swap primitive. Three flavors are needed:
//
//   - Lock / TryLock / Unlock: a plain test-and-set spin lock.
//   - LockIf: the conditional lock of Algorithm 4 — acquire only while a
//     caller-supplied condition holds, and abort (instead of blocking
//     forever) once the condition turns false.
//   - LockPair: acquire two locks "together at the same time" without
//     hold-and-wait, used for the endpoints of an inserted or removed edge.
//
// Locks are word-sized and live in flat arrays (one per vertex), so a Mutex
// per vertex would waste memory and the paper's conditional-acquire protocol
// could not be expressed with sync.Mutex anyway.
package spin

import (
	"runtime"
	"sync/atomic"
)

// Lock is a word-sized CAS spin lock. The zero value is unlocked.
type Lock struct {
	v atomic.Uint32
}

// Lock acquires l, busy-waiting until it is free. Between failed attempts it
// yields the processor so single-core test environments make progress.
func (l *Lock) Lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock attempts to acquire l without waiting and reports success.
func (l *Lock) TryLock() bool {
	return l.v.CompareAndSwap(0, 1)
}

// Unlock releases l. Calling Unlock on an unlocked Lock is a programming
// error and panics, matching sync.Mutex behavior.
func (l *Lock) Unlock() {
	if !l.v.CompareAndSwap(1, 0) {
		panic("spin: unlock of unlocked lock")
	}
}

// Locked reports whether l is currently held. It is inherently racy and is
// intended for assertions and tests only.
func (l *Lock) Locked() bool {
	return l.v.Load() == 1
}

// LockIf implements the conditional lock of Algorithm 4: it acquires l only
// while cond() holds. It returns true when the lock was acquired with cond()
// still true afterwards; it returns false — without holding the lock — as
// soon as cond() is observed false. Unlike Lock, LockIf never busy-waits on
// a lock whose condition has been invalidated, which is the mechanism that
// breaks blocking cycles in parallel edge removal (paper §4.2.2).
func (l *Lock) LockIf(cond func() bool) bool {
	for cond() {
		if l.v.CompareAndSwap(0, 1) {
			if cond() {
				return true
			}
			l.v.Store(0)
			return false
		}
		runtime.Gosched()
	}
	return false
}

// LockPair acquires a and b together: either both are held on return or the
// acquisition round is retried from scratch. a and b must be distinct.
// Acquiring the pair atomically (rather than one after the other) removes the
// classic two-worker deadlock on a shared edge (paper §4.1.2, §4.2.2).
func LockPair(a, b *Lock) {
	if a == b {
		panic("spin: LockPair with identical locks")
	}
	for {
		a.Lock()
		if b.TryLock() {
			return
		}
		a.Unlock()
		runtime.Gosched()
	}
}
