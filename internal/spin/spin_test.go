package spin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockUnlock(t *testing.T) {
	var l Lock
	l.Lock()
	if !l.Locked() {
		t.Fatal("lock should be held")
	}
	l.Unlock()
	if l.Locked() {
		t.Fatal("lock should be free")
	}
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var l Lock
	l.Unlock()
}

func TestTryLock(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock must succeed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock must fail")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock must succeed")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	var l Lock
	var counter int
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}

func TestLockIfAcquiresWhileCondHolds(t *testing.T) {
	var l Lock
	cond := func() bool { return true }
	if !l.LockIf(cond) {
		t.Fatal("LockIf with true cond must acquire")
	}
	l.Unlock()
}

func TestLockIfRejectsFalseCond(t *testing.T) {
	var l Lock
	if l.LockIf(func() bool { return false }) {
		t.Fatal("LockIf with false cond must not acquire")
	}
	if l.Locked() {
		t.Fatal("lock must not be held after failed LockIf")
	}
}

// The condition flips to false after the CAS succeeds: LockIf must release
// and report failure (Algorithm 4 lines 3-4).
func TestLockIfRechecksAfterAcquire(t *testing.T) {
	var l Lock
	calls := 0
	cond := func() bool {
		calls++
		return calls == 1 // true before CAS, false after
	}
	if l.LockIf(cond) {
		t.Fatal("LockIf must fail when cond flips after acquisition")
	}
	if l.Locked() {
		t.Fatal("lock must be released when post-acquire cond check fails")
	}
}

// A worker blocked in LockIf on a held lock must return (not spin forever)
// once another worker invalidates the condition — the deadlock-avoidance
// property of parallel edge removal.
func TestLockIfUnblocksOnConditionChange(t *testing.T) {
	var l Lock
	var cond atomic.Bool
	cond.Store(true)
	l.Lock() // hold so the waiter spins

	done := make(chan bool, 1)
	go func() {
		done <- l.LockIf(cond.Load)
	}()

	time.Sleep(10 * time.Millisecond) // let the waiter spin
	cond.Store(false)
	select {
	case got := <-done:
		if got {
			t.Fatal("LockIf must fail once the condition is invalidated")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LockIf did not unblock after condition change")
	}
	l.Unlock()
}

func TestLockPairHoldsBoth(t *testing.T) {
	var a, b Lock
	LockPair(&a, &b)
	if !a.Locked() || !b.Locked() {
		t.Fatal("both locks must be held")
	}
	a.Unlock()
	b.Unlock()
}

func TestLockPairIdenticalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var a Lock
	LockPair(&a, &a)
}

// Two workers repeatedly locking the same pair in opposite argument order
// must never deadlock (the hold-and-wait cycle LockPair exists to prevent).
func TestLockPairNoDeadlockOppositeOrder(t *testing.T) {
	var a, b Lock
	const rounds = 500
	var wg sync.WaitGroup
	run := func(x, y *Lock) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			LockPair(x, y)
			x.Unlock()
			y.Unlock()
		}
	}
	wg.Add(2)
	go run(&a, &b)
	go run(&b, &a)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("LockPair deadlocked")
	}
}

func TestLockPairMutualExclusionCriticalSection(t *testing.T) {
	var a, b Lock
	var shared int
	const workers, rounds = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w%2 == 0 {
					LockPair(&a, &b)
				} else {
					LockPair(&b, &a)
				}
				shared++
				a.Unlock()
				b.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if shared != workers*rounds {
		t.Fatalf("shared = %d, want %d", shared, workers*rounds)
	}
}
