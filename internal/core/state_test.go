package core

import (
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/om"
)

func TestNewStateInitialDout(t *testing.T) {
	// Path 0-1-2-3: BZ peels endpoints first; every vertex's dout must
	// equal its count of later neighbors and be <= its core (1).
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	st := NewState(g)
	for v := int32(0); v < 4; v++ {
		if d := st.Dout[v].Load(); d > st.CoreOf(v) {
			t.Fatalf("dout[%d] = %d > core %d", v, d, st.CoreOf(v))
		}
	}
	mustCheck(t, st, "path init")
}

func TestGrowMintsIsolatedVertices(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st := NewState(g)
	items := append([]*om.Item(nil), st.Items...) // pre-growth node addresses
	preEpoch := st.Snapshot().Epoch

	st.Grow(8)
	if st.N() != 8 || st.G.N() != 8 {
		t.Fatalf("N=%d G.N=%d, want 8", st.N(), st.G.N())
	}
	st.Grow(4) // never shrinks
	if st.N() != 8 {
		t.Fatalf("Grow(4) shrank to %d", st.N())
	}
	for v := int32(3); v < 8; v++ {
		if c := st.CoreOf(v); c != 0 {
			t.Fatalf("new vertex %d has core %d, want 0", v, c)
		}
		if m := st.Mcd[v].Load(); m != McdEmpty {
			t.Fatalf("new vertex %d has mcd %d, want empty", v, m)
		}
		if !st.Items[v].InList() {
			t.Fatalf("new vertex %d not linked into O_0", v)
		}
	}
	// Growth must not relocate existing OM nodes: the lists link them by
	// address.
	for v, it := range items {
		if st.Items[v] != it {
			t.Fatalf("Grow moved the om.Item of vertex %d", v)
		}
	}
	snap := st.Snapshot()
	if snap.Epoch <= preEpoch || snap.N != 8 || snap.CoreOf(7) != 0 {
		t.Fatalf("grown snapshot not published: %+v", snap)
	}
	if ps := st.PubStats(); ps.Grow != 1 {
		t.Fatalf("pub stats %+v, want 1 grow", ps)
	}
	mustCheck(t, st, "after growth")

	// The grown universe must be fully maintainable: wire new vertices in,
	// spanning old and new ranges, then drop some again.
	for _, e := range []graph.Edge{{U: 2, V: 5}, {U: 5, V: 6}, {U: 6, V: 2}, {U: 7, V: 0}} {
		st.InsertEdgeSeq(e.U, e.V)
	}
	mustCheck(t, st, "edges into grown range")
	st.RemoveEdgeSeq(5, 6)
	mustCheck(t, st, "removal in grown range")
}

func TestGrowAmortizedReallocation(t *testing.T) {
	st := NewState(graph.MustFromEdges(1, nil))
	// Many small grows: the geometric over-allocation must keep total
	// reallocation work bounded, and every intermediate state valid.
	for n := 2; n <= 4096; n *= 2 {
		st.Grow(n + 3)
		st.InsertEdgeSeq(int32(n), int32(n+1))
	}
	mustCheck(t, st, "after repeated growth")
}

func TestBeforeSeqConsistentWithCores(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle: core 2
		{U: 3, V: 4}, // edge: core 1
	})
	st := NewState(g)
	// Lower core always precedes higher core.
	for _, lo := range []int32{3, 4} {
		for _, hi := range []int32{0, 1, 2} {
			if !st.BeforeSeq(lo, hi) || st.BeforeSeq(hi, lo) {
				t.Fatalf("core-1 vertex %d must precede core-2 vertex %d", lo, hi)
			}
		}
	}
	// Irreflexive and antisymmetric within one level.
	if st.BeforeSeq(0, 0) {
		t.Fatal("BeforeSeq must be irreflexive")
	}
	if st.BeforeSeq(0, 1) == st.BeforeSeq(1, 0) {
		t.Fatal("BeforeSeq must be antisymmetric")
	}
}

func TestBeforeMatchesBeforeSeqAtQuiescence(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 9)
	st := NewState(g)
	for u := int32(0); u < 100; u += 7 {
		for v := int32(1); v < 100; v += 11 {
			if u == v {
				continue
			}
			if st.Before(u, v) != st.BeforeSeq(u, v) {
				t.Fatalf("Before and BeforeSeq disagree on (%d,%d)", u, v)
			}
		}
	}
}

// Before must wait out an odd order-change status rather than return a
// half-updated comparison.
func TestBeforeWaitsForOrderChange(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st := NewState(g)
	st.BeginOrderChange(0)
	done := make(chan bool, 1)
	go func() {
		done <- st.Before(0, 2) // must block until the change ends
	}()
	select {
	case <-done:
		t.Fatal("Before returned while the order change was in flight")
	default:
	}
	st.EndOrderChange(0)
	<-done // must complete now
}

func TestListGrowth(t *testing.T) {
	st := NewState(graph.New(2))
	if st.MaxCoreValue() != 0 {
		t.Fatalf("initial max core value %d", st.MaxCoreValue())
	}
	l5 := st.List(5)
	if l5 == nil || st.MaxCoreValue() != 5 {
		t.Fatalf("growth failed: max=%d", st.MaxCoreValue())
	}
	if st.List(3) == nil || st.List(5) != l5 {
		t.Fatal("grown lists must be stable")
	}
}

func TestListGrowthConcurrent(t *testing.T) {
	st := NewState(graph.New(2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := int32(0); k < 64; k++ {
				if st.List(k) == nil {
					panic("nil list")
				}
			}
		}(w)
	}
	wg.Wait()
	if st.MaxCoreValue() < 63 {
		t.Fatalf("max core value %d", st.MaxCoreValue())
	}
}

func TestComputeMCDDefinition(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle: cores 2
		{U: 0, V: 3}, {U: 3, V: 4}, // tail: cores 1
	})
	st := NewState(g)
	// Vertex 0 (core 2): neighbors 1,2 (core 2 >= 2) and 3 (core 1): mcd 2.
	if got := st.ComputeMCD(0); got != 2 {
		t.Fatalf("mcd(0) = %d, want 2", got)
	}
	// Vertex 3 (core 1): neighbors 0 (core 2) and 4 (core 1): mcd 2.
	if got := st.ComputeMCD(3); got != 2 {
		t.Fatalf("mcd(3) = %d, want 2", got)
	}
	// In-flight rule: a neighbor mid-drop (core = cu-1, t > 0) counts.
	st.T[1].Store(2)
	st.Core[1].Store(1)
	if got := st.ComputeMCD(0); got != 2 {
		t.Fatalf("mcd(0) with in-flight neighbor = %d, want 2", got)
	}
	st.T[1].Store(0)
	if got := st.ComputeMCD(0); got != 1 {
		t.Fatalf("mcd(0) after neighbor settled = %d, want 1", got)
	}
}

func TestRecomputeDout(t *testing.T) {
	g := gen.ErdosRenyi(80, 240, 5)
	st := NewState(g)
	for v := int32(0); v < 80; v++ {
		want := st.Dout[v].Load()
		st.Dout[v].Store(-99)
		st.RecomputeDout(v)
		if got := st.Dout[v].Load(); got != want {
			t.Fatalf("RecomputeDout(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestInvalidateMcd(t *testing.T) {
	st := NewState(graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}}))
	st.Mcd[0].Store(1)
	st.InvalidateMcd(0)
	if st.Mcd[0].Load() != McdEmpty {
		t.Fatal("InvalidateMcd must store the empty sentinel")
	}
}

func TestCoreNumbersSnapshot(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := NewState(g)
	snap := st.CoreNumbers()
	st.Core[0].Store(99)
	if snap[0] == 99 {
		t.Fatal("CoreNumbers must be a snapshot, not a view")
	}
}
