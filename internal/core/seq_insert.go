package core

import (
	"container/heap"

	"repro/internal/om"
)

// orderHeap is a min-heap of vertices keyed by k-order labels, the
// sequential stand-in for the versioned priority queue Q (§5). Labels are
// snapshotted at push; sequential operation never relabels concurrently, but
// a relabel triggered by this very operation's own OM inserts can invalidate
// them, so the heap re-reads labels when the list version changed.
type orderHeap struct {
	st   *State
	list *om.List
	ver  uint64
	vs   []int32
	lt   []uint64
	lb   []uint64
}

func newOrderHeap(st *State, list *om.List) *orderHeap {
	return &orderHeap{st: st, list: list, ver: list.Version()}
}

func (h *orderHeap) Len() int { return len(h.vs) }
func (h *orderHeap) Less(i, j int) bool {
	if h.lt[i] != h.lt[j] {
		return h.lt[i] < h.lt[j]
	}
	return h.lb[i] < h.lb[j]
}
func (h *orderHeap) Swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.lt[i], h.lt[j] = h.lt[j], h.lt[i]
	h.lb[i], h.lb[j] = h.lb[j], h.lb[i]
}
func (h *orderHeap) Push(x any) {
	v := x.(int32)
	lt, lb, _, _ := h.list.Labels(h.st.Items[v])
	h.vs = append(h.vs, v)
	h.lt = append(h.lt, lt)
	h.lb = append(h.lb, lb)
}
func (h *orderHeap) Pop() any {
	n := len(h.vs) - 1
	v := h.vs[n]
	h.vs, h.lt, h.lb = h.vs[:n], h.lt[:n], h.lb[:n]
	return v
}

func (h *orderHeap) push(v int32) {
	h.refreshIfStale()
	heap.Push(h, v)
}

func (h *orderHeap) pop() int32 {
	h.refreshIfStale()
	return heap.Pop(h).(int32)
}

// refreshIfStale re-snapshots every cached label and re-heapifies when the
// underlying list relabeled since the last snapshot — the sequential version
// of Algorithm 9's update_version.
func (h *orderHeap) refreshIfStale() {
	v := h.list.Version()
	if v == h.ver {
		return
	}
	h.ver = v
	for i, vtx := range h.vs {
		lt, lb, _, _ := h.list.Labels(h.st.Items[vtx])
		h.lt[i], h.lb[i] = lt, lb
	}
	heap.Init(h)
}

// TraceFn, when non-nil, receives event lines from the sequential insertion
// (test instrumentation only).
var TraceFn func(format string, args ...any)

// insertRun carries the per-operation scratch state of one sequential edge
// insertion: V*, V+, the priority queue Q and the Backward queue R.
type insertRun struct {
	st     *State
	k      int32
	q      *orderHeap
	inQ    map[int32]bool
	vstar  []int32 // candidate set in discovery (= k-) order
	inStar map[int32]bool
	done   map[int32]bool // V+ \ V*: confirmed non-candidates, final
	vplus  []int32
}

// InsertEdgeSeq inserts the undirected edge (u, v) and restores all
// maintenance invariants with the sequential Simplified-Order algorithm
// (Algorithm 2 phrased as the lock-free specialization of Algorithm 7).
// It reports whether the edge was applied and the V+/V* sizes.
func (st *State) InsertEdgeSeq(u, v int32) InsertStats {
	if u == v || st.G.HasEdge(u, v) {
		return InsertStats{}
	}
	// Direct the edge u ↦ v in k-order.
	if st.BeforeSeq(v, u) {
		u, v = v, u
	}
	k := st.Core[u].Load()
	st.G.AddEdge(u, v)
	st.Dout[u].Add(1)
	// The new edge changes the neighborhood of both endpoints; their
	// stored mcd values are stale either way.
	st.Mcd[u].Store(McdEmpty)
	st.Mcd[v].Store(McdEmpty)
	if st.Dout[u].Load() <= k {
		return InsertStats{Applied: true}
	}
	run := &insertRun{
		st:     st,
		k:      k,
		q:      newOrderHeap(st, st.List(k)),
		inQ:    map[int32]bool{},
		inStar: map[int32]bool{},
		done:   map[int32]bool{},
	}
	w := u
	for {
		// d*in(w): predecessors of w currently in V* (Algorithm 7
		// line 9). The position check matters: an evicted vertex is
		// repositioned after the Backward trigger, so a V* member is
		// not automatically a predecessor of every later dequeue.
		din := int32(0)
		for _, x := range st.G.Adj(w) {
			if run.inStar[x] && st.BeforeSeq(x, w) {
				din++
			}
		}
		st.Din[w] = din
		if TraceFn != nil {
			TraceFn("dequeue w=%d din=%d dout=%d deg=%d k=%d", w, din, st.Dout[w].Load(), st.G.Degree(w), k)
		}
		switch {
		case din+st.Dout[w].Load() > k:
			run.forward(w)
		case din > 0:
			if TraceFn != nil {
				TraceFn("BACKWARD trigger w=%d din=%d dout=%d", w, din, st.Dout[w].Load())
			}
			run.backward(w)
		default:
			// w cannot be in V+; skip.
		}
		next, ok := run.dequeue()
		if !ok {
			break
		}
		w = next
	}
	run.commit()
	stats := InsertStats{Applied: true, VPlus: len(run.vplus)}
	for _, x := range run.vstar {
		if run.inStar[x] {
			stats.Changed = append(stats.Changed, x)
		}
	}
	stats.VStar = len(stats.Changed)
	return stats
}

// dequeue pops the smallest-k-order vertex with core number k, discarding
// entries whose core changed (cannot happen sequentially, kept for symmetry
// with Algorithm 11).
func (r *insertRun) dequeue() (int32, bool) {
	for r.q.Len() > 0 {
		v := r.q.pop()
		delete(r.inQ, v)
		if r.st.Core[v].Load() != r.k || r.done[v] || r.inStar[v] {
			continue
		}
		return v, true
	}
	return 0, false
}

// forward adds w to V* and schedules its same-core successors (Algorithm 7,
// Forward).
func (r *insertRun) forward(w int32) {
	st := r.st
	r.vstar = append(r.vstar, w)
	r.inStar[w] = true
	r.vplus = append(r.vplus, w)
	for _, x := range st.G.Adj(w) {
		if st.Core[x].Load() == r.k && !r.inQ[x] && !r.inStar[x] && !r.done[x] && st.BeforeSeq(w, x) {
			r.inQ[x] = true
			r.q.push(x)
		}
	}
}

// backward confirms w ∉ V* and evicts every member of V* whose potential
// degree no longer exceeds k, repositioning evicted vertices after w in O_k
// (Algorithm 7, Backward with DoPre/DoPost).
func (r *insertRun) backward(w int32) {
	st := r.st
	list := st.List(r.k)
	r.vplus = append(r.vplus, w)
	r.done[w] = true
	pre := w
	var rq []int32
	inR := map[int32]bool{}
	r.doPre(w, &rq, inR)
	st.Dout[w].Add(st.Din[w])
	st.Din[w] = 0
	for len(rq) > 0 {
		u := rq[0]
		rq = rq[1:]
		delete(r.inStar, u)
		r.done[u] = true
		r.doPre(u, &rq, inR)
		r.doPost(u, &rq, inR)
		st.BeginOrderChange(u)
		list.Delete(st.Items[u])
		list.InsertAfter(st.Items[pre], st.Items[u])
		st.EndOrderChange(u)
		pre = u
		st.Dout[u].Add(st.Din[u])
		st.Din[u] = 0
	}
}

// doPre: u leaves (or never joins) V*, so each predecessor x ∈ V* loses the
// out-edge x ↦ u from its remaining out-degree; evict x when its potential
// drops to k or below.
func (r *insertRun) doPre(u int32, rq *[]int32, inR map[int32]bool) {
	st := r.st
	for _, x := range st.G.Adj(u) {
		if r.inStar[x] && st.BeforeSeq(x, u) {
			st.Dout[x].Add(-1)
			if st.Din[x]+st.Dout[x].Load() <= r.k && !inR[x] {
				inR[x] = true
				*rq = append(*rq, x)
			}
		}
	}
}

// doPost: u leaves V*, so each successor x ∈ V* with a candidate in-degree
// loses the in-edge u ↦ x; evict x when its potential drops.
func (r *insertRun) doPost(u int32, rq *[]int32, inR map[int32]bool) {
	st := r.st
	for _, x := range st.G.Adj(u) {
		if r.inStar[x] && st.Din[x] > 0 && st.BeforeSeq(u, x) {
			st.Din[x]--
			if st.Din[x]+st.Dout[x].Load() <= r.k && !inR[x] {
				inR[x] = true
				*rq = append(*rq, x)
			}
		}
	}
}

// commit promotes the surviving candidates: core k → k+1, d*in reset, and
// each vertex moves from O_k to the head of O_{k+1} preserving the relative
// k-order of V* (Algorithm 7 lines 14-16).
func (r *insertRun) commit() {
	st := r.st
	from := st.List(r.k)
	to := st.List(r.k + 1)
	var anchor *om.Item
	for _, w := range r.vstar {
		if !r.inStar[w] {
			continue // evicted by backward
		}
		// Stale mcd values of w and its neighbors refer to the old
		// core number; drop them for lazy recomputation.
		st.Mcd[w].Store(McdEmpty)
		for _, x := range st.G.Adj(w) {
			st.Mcd[x].Store(McdEmpty)
		}
		st.BeginOrderChange(w)
		st.Core[w].Store(r.k + 1)
		st.Din[w] = 0
		from.Delete(st.Items[w])
		if anchor == nil {
			to.InsertAtHead(st.Items[w])
		} else {
			to.InsertAfter(anchor, st.Items[w])
		}
		anchor = st.Items[w]
		st.EndOrderChange(w)
	}
}
