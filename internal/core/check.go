package core

import (
	"fmt"

	"repro/internal/bz"
)

// CheckInvariants verifies every quiescent invariant of the maintenance
// state (DESIGN.md I1-I4):
//
//	I1 core numbers equal a fresh BZ decomposition of the current graph;
//	I2 the k-order is valid: walking the lists O_0, O_1, ... in order,
//	   every vertex's recomputed d⁺out (neighbors that follow it) is at
//	   most its core number, and the stored Dout matches;
//	I3 every stored (non-empty) mcd matches Definition 3.8;
//	I4 each OM list is structurally sound and holds exactly the vertices
//	   of its core value; Din, S and T are quiescent (0 / even).
//
// It must only be called with no maintenance operation in flight.
func (st *State) CheckInvariants() error {
	n := st.N()
	truth, _ := bz.Decompose(st.G)
	for v := 0; v < n; v++ {
		if got := st.Core[v].Load(); got != truth[v] {
			return fmt.Errorf("I1: core[%d] = %d, want %d", v, got, truth[v])
		}
	}

	// Walk the lists to recover the global k-order.
	pos := make([]int64, n)
	for i := range pos {
		pos[i] = -1
	}
	idx := int64(0)
	maxK := st.MaxCoreValue()
	for k := int32(0); k <= maxK; k++ {
		items, err := st.List(k).Check()
		if err != nil {
			return fmt.Errorf("I4: list O_%d: %w", k, err)
		}
		for _, it := range items {
			v := it.ID
			if st.Core[v].Load() != k {
				return fmt.Errorf("I4: vertex %d with core %d sits in O_%d", v, st.Core[v].Load(), k)
			}
			if pos[v] != -1 {
				return fmt.Errorf("I4: vertex %d in two lists", v)
			}
			pos[v] = idx
			idx++
		}
	}
	if idx != int64(n) {
		return fmt.Errorf("I4: lists hold %d vertices, want %d", idx, n)
	}

	for v := int32(0); v < int32(n); v++ {
		dout := int32(0)
		for _, w := range st.G.Adj(v) {
			if pos[v] < pos[w] {
				dout++
			}
		}
		if got := st.Dout[v].Load(); got != dout {
			return fmt.Errorf("I2: dout[%d] = %d, recomputed %d", v, got, dout)
		}
		if c := st.Core[v].Load(); dout > c {
			return fmt.Errorf("I2: dout[%d] = %d exceeds core %d (invalid k-order)", v, dout, c)
		}
		if st.Din[v] != 0 {
			return fmt.Errorf("I4: din[%d] = %d at quiescence", v, st.Din[v])
		}
		if s := st.S[v].Load(); s&1 != 0 {
			return fmt.Errorf("I4: s[%d] = %d odd at quiescence", v, s)
		}
		if t := st.T[v].Load(); t != 0 {
			return fmt.Errorf("I4: t[%d] = %d at quiescence", v, t)
		}
		if m := st.Mcd[v].Load(); m != McdEmpty {
			want := int32(0)
			cv := st.Core[v].Load()
			for _, w := range st.G.Adj(v) {
				if st.Core[w].Load() >= cv {
					want++
				}
			}
			if m != want {
				return fmt.Errorf("I3: mcd[%d] = %d, want %d", v, m, want)
			}
		}
		if l := &st.Locks[v]; l.Locked() {
			return fmt.Errorf("I4: vertex %d still locked", v)
		}
	}
	return nil
}
