package core

// RemoveEdgeSeq removes the undirected edge (u, v) and restores all
// maintenance invariants with the sequential Order-based removal algorithm.
// The structure mirrors Algorithm 8 with a single worker — core numbers drop
// immediately and the t status marks in-flight vertices so that lazily
// recomputed mcd values stay consistent (the same code path the parallel
// version exercises). It reports whether the edge was applied and |V*|.
func (st *State) RemoveEdgeSeq(u, v int32) RemoveStats {
	if u == v || !st.G.HasEdge(u, v) {
		return RemoveStats{}
	}
	cu, cv := st.Core[u].Load(), st.Core[v].Load()
	k := cu
	if cv < k {
		k = cv
	}
	// Ensure both endpoints have a known mcd that still counts the edge
	// (Algorithm 8 line 3 runs CheckMCD before the removal).
	if st.Mcd[u].Load() == McdEmpty {
		st.Mcd[u].Store(st.ComputeMCD(u))
	}
	if st.Mcd[v].Load() == McdEmpty {
		st.Mcd[v].Store(st.ComputeMCD(v))
	}
	// The earlier endpoint loses the out-edge u ↦ v.
	if st.BeforeSeq(u, v) {
		st.Dout[u].Add(-1)
	} else {
		st.Dout[v].Add(-1)
	}
	st.G.RemoveEdge(u, v)

	run := &removeRun{st: st, k: k, starIdx: map[int32]int{}}
	// The removed edge was counted in an endpoint's mcd iff the other
	// endpoint's core is at least as large (Definition 3.8).
	if cv >= cu {
		run.doMCD(u)
	}
	if cu >= cv {
		run.doMCD(v)
	}
	run.propagate()
	run.commit()
	// Dropped vertices changed list and position; their d⁺out is
	// recomputed from the settled order (their neighbors' flips were
	// applied incrementally in commit).
	for _, w := range run.vstar {
		st.RecomputeDout(w)
	}
	// run.vstar is freshly allocated per call, so it can be handed out.
	return RemoveStats{Applied: true, VStar: len(run.vstar), Changed: run.vstar}
}

// removeRun carries the per-operation scratch state of one sequential edge
// removal: the propagation queue R and the candidate set V*.
type removeRun struct {
	st      *State
	k       int32
	rq      []int32
	vstar   []int32
	starIdx map[int32]int // discovery index within vstar
}

func (r *removeRun) inStar(x int32) bool {
	_, ok := r.starIdx[x]
	return ok
}

// doMCD decrements x's mcd for one lost qualifying neighbor; when the mcd
// falls below the core number, x's core drops to k-1 and x joins V* and the
// propagation queue (Algorithm 8, DoMCD).
func (r *removeRun) doMCD(x int32) {
	st := r.st
	mcd := st.Mcd[x].Add(-1)
	cx := st.Core[x].Load()
	if mcd >= cx {
		return
	}
	if cx != r.k {
		// Only vertices at the removal level can drop (their mcd
		// stays >= core otherwise, checked by invariant tests).
		panic("core: mcd fell below core away from removal level")
	}
	// Publish t before the core drop: concurrent CheckMCD readers (in
	// the parallel version) must never observe core = k-1 with t = 0 for
	// an in-flight vertex.
	st.T[x].Store(2)
	st.Core[x].Store(r.k - 1)
	st.Mcd[x].Store(McdEmpty)
	r.starIdx[x] = len(r.vstar)
	r.vstar = append(r.vstar, x)
	r.rq = append(r.rq, x)
}

// propagate drains the queue: every dequeued vertex walks its neighbors at
// the removal level, refreshing and decrementing their mcd (Algorithm 8
// lines 8-16 with a single worker, so the redo branch t > 0 never fires).
func (r *removeRun) propagate() {
	st := r.st
	for len(r.rq) > 0 {
		w := r.rq[0]
		r.rq = r.rq[1:]
		st.T[w].Add(-1) // 2 -> 1: propagating
		for _, x := range st.G.Adj(w) {
			if st.Core[x].Load() != r.k {
				continue
			}
			if st.Mcd[x].Load() == McdEmpty {
				// ComputeMCD counts w via the in-flight rule
				// (core = k-1, t > 0), so the decrement below
				// is always backed by a counted neighbor.
				st.Mcd[x].Store(st.ComputeMCD(x))
			}
			r.doMCD(x)
		}
		st.T[w].Add(-1) // 1 -> 0: done
	}
}

// commit repositions V*: every dropped vertex moves from O_k to the tail of
// O_{k-1} in discovery order — the order the drops cascaded, which is a
// valid peeling order at level k-1 (a vertex drops only after the neighbors
// whose drops caused it; appending in the old O_k order can place a late
// finisher after an early one and break d⁺out ≤ core). Each move flips the
// out-edge of every surviving level-k neighbor that used to precede w; the
// dropped vertices' own Dout is recomputed wholesale by the caller once the
// order has settled. OM deletion is deferred to this point so the old order
// is still observable for the flips.
func (r *removeRun) commit() {
	st := r.st
	if len(r.vstar) == 0 {
		return
	}
	from := st.List(r.k)
	to := st.List(r.k - 1)
	for _, w := range r.vstar {
		for _, x := range st.G.Adj(w) {
			if st.Core[x].Load() == r.k && !r.inStar(x) &&
				from.Order(st.Items[x], st.Items[w]) {
				st.Dout[x].Add(-1)
			}
		}
		st.BeginOrderChange(w)
		from.Delete(st.Items[w])
		to.InsertAtTail(st.Items[w])
		st.EndOrderChange(w)
	}
}
