// Package core holds the shared core-maintenance state — core numbers, the
// k-order (one OM list per core value, Definition 3.5), remaining
// out-degrees d⁺out, candidate in-degrees d*in, max-core degrees mcd, the
// per-vertex status counters s and t, and the per-vertex locks — plus the
// sequential Simplified-Order insertion (Algorithm 2) and removal
// (Algorithm 3) algorithms. The parallel algorithms in internal/pcore
// operate on the same State.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/grow"
	"repro/internal/om"
	"repro/internal/snapshot"
	"repro/internal/spin"
)

// McdEmpty is the sentinel for an unknown ("∅") max-core degree; mcd values
// are recomputed lazily by CheckMCD when needed (paper §4.2).
const McdEmpty int32 = -1

// State is the complete maintenance state for one dynamic graph.
//
// Field access contract (enforced by the race detector in parallel tests):
// Core, S and T are read by workers that do not hold the vertex lock and are
// atomic. Dout and Mcd are atomic too: commit phases adjust the Dout of
// unlocked survivor neighbors and invalidate the Mcd of unlocked neighbors
// (safe because insertion and removal batches never overlap and neither
// phase reads the other structure). Din and the adjacency of G are only
// touched while holding the vertex's entry in Locks.
//
// The vertex universe is growable: Grow appends fresh vertices at
// quiescence. The per-vertex slices are re-sliced or reallocated then —
// safe, because no pointer into them outlives a batch — except Items,
// whose om.Item nodes are linked into the k-order lists permanently;
// Items therefore holds pointers into separately allocated blocks that
// never move.
type State struct {
	G *graph.Graph

	// Core[v] is the current core number of v.
	Core []atomic.Int32
	// Dout[v] is the remaining out-degree d⁺out (Definition 3.7): at
	// quiescence, the number of neighbors that follow v in k-order.
	Dout []atomic.Int32
	// Din[v] is the candidate in-degree d*in (Definition 3.6); nonzero
	// only while v is being traversed by an insertion.
	Din []int32
	// Mcd[v] is the max-core degree (Definition 3.8) or McdEmpty.
	Mcd []atomic.Int32
	// S[v] is the order-change status: odd while v's k-order position is
	// being updated (Algorithm 6).
	S []atomic.Uint32
	// T[v] is the removal propagation status: 0 idle, 2 queued, 1
	// propagating, 3 propagation must be redone (Algorithm 8).
	T []atomic.Int32
	// Locks[v] is the per-vertex CAS spin lock.
	Locks []spin.Lock
	// Items[v] is v's node in whichever k-order list currently holds it.
	// The pointed-to Items live in block allocations that are never
	// moved: the OM lists link them by address, so growth must not
	// relocate existing nodes.
	Items []*om.Item

	// CommitMu serializes cross-worker core-level moves: every transfer
	// of a vertex between k-order lists that changes its core number
	// (insertion commit's promotion to the head of O_{k+1}, removal's
	// drop to the tail of O_{k-1}) must store the new core number AND
	// relocate the OM item inside one CommitMu critical section.
	//
	// Why: other workers linearize their operations against a promotion
	// by observing Core[w] (the forward filter, the queue discard check,
	// the LockIf predicate) — a worker that sees the new core number
	// treats the move as complete. The head-of-O_{k+1} placement rule is
	// only valid under that linearization: whoever promotes later must
	// end up earlier in the list. If the core store and the list insert
	// can interleave with another commit into the same list (observed in
	// the wild under GOMAXPROCS=2: worker A preempted between publishing
	// core(w)=k+1 and inserting w, worker B promoting an adjacent vertex
	// in between), the list order inverts relative to the observed
	// linearization and the final k-order is invalid — dout exceeds the
	// core number — which later in-batch decisions then build on,
	// over-promoting vertices (the TestLargerScaleInsert I1/I2 failures).
	// The section is a handful of pointer updates; commits into the same
	// level at the same instant are rare, so contention is negligible.
	CommitMu sync.Mutex

	mu    sync.Mutex   // guards list growth
	lists atomic.Value // []*om.List, one per core number

	pub snapshot.Publisher // epoch-versioned read snapshots
}

// newItemBlock allocates Items for the vertex range [first, first+count):
// one block of om.Item nodes (which must never move once linked into a
// list) plus the pointer slice addressing them.
func newItemBlock(first, count int) []*om.Item {
	block := make([]om.Item, count)
	ptrs := make([]*om.Item, count)
	for i := range block {
		block[i].ID = int32(first + i)
		ptrs[i] = &block[i]
	}
	return ptrs
}

// Grow extends the vertex universe to at least n vertices. New vertices
// are isolated: core number 0, empty mcd, appended to the tail of the
// k=0 order list (any position among core-0 vertices is a valid k-order
// for a vertex with no neighbors). The grown snapshot is published
// copy-on-write (Hist[0] bumped, fresh zero pages); views held by readers
// keep their pre-growth N and pages. Must run at quiescence, like every
// structural operation on the state.
func (st *State) Grow(n int) {
	old := st.N()
	if n <= old {
		return
	}
	st.G.Grow(n)
	st.Core = grow.Slice(st.Core, n)
	st.Dout = grow.Slice(st.Dout, n)
	st.Din = grow.Slice(st.Din, n)
	st.Mcd = grow.Slice(st.Mcd, n)
	st.S = grow.Slice(st.S, n)
	st.T = grow.Slice(st.T, n)
	st.Locks = grow.Slice(st.Locks, n)
	st.Items = append(st.Items, newItemBlock(old, n-old)...)
	list0 := st.List(0)
	for v := old; v < n; v++ {
		st.Mcd[v].Store(McdEmpty)
		list0.InsertAtTail(st.Items[v])
	}
	st.pub.PublishGrow(n, st.G.M())
}

// NewState initializes the state from g: core numbers and the initial
// k-order come from the BZ algorithm (its peeling sequence is a valid
// k-order by construction), d⁺out is derived from the order, and every mcd
// starts empty.
func NewState(g *graph.Graph) *State {
	n := g.N()
	st := &State{
		G:     g,
		Core:  make([]atomic.Int32, n),
		Dout:  make([]atomic.Int32, n),
		Din:   make([]int32, n),
		Mcd:   make([]atomic.Int32, n),
		S:     make([]atomic.Uint32, n),
		T:     make([]atomic.Int32, n),
		Locks: make([]spin.Lock, n),
		Items: newItemBlock(0, n),
	}
	cores, order := bz.Decompose(g)
	maxCore := bz.MaxCore(cores)
	lists := make([]*om.List, maxCore+1)
	for k := range lists {
		lists[k] = om.NewList(0)
	}
	st.lists.Store(lists)
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	for v := 0; v < n; v++ {
		st.Core[v].Store(cores[v])
		st.Mcd[v].Store(McdEmpty)
		dout := int32(0)
		for _, w := range g.Adj(int32(v)) {
			if pos[v] < pos[w] {
				dout++
			}
		}
		st.Dout[v].Store(dout)
	}
	// Append vertices to their core's list in peeling order; within one
	// core value the peeling order is the k-order O_k.
	for _, v := range order {
		lists[cores[v]].InsertAtTail(st.Items[v])
	}
	st.PublishSnapshot()
	return st
}

// PublishSnapshot builds an epoch-versioned immutable view of the current
// core numbers and installs it as the state's read snapshot. It must run at
// quiescence (between batches); queries served from the snapshot then never
// observe in-flight batch mutation.
func (st *State) PublishSnapshot() *snapshot.View {
	return st.pub.Publish(st.CoreNumbers(), st.G.M())
}

// PublishSnapshotUnchanged advances the snapshot epoch in O(1), reusing
// the previous view's core data; only valid when no core number changed
// since the last publication (the graph's edge count may have).
func (st *State) PublishSnapshotUnchanged() *snapshot.View {
	return st.pub.PublishUnchanged(st.G.M())
}

// PublishSnapshotDelta publishes a copy-on-write view patched from the
// previous one: changed must cover every vertex whose core number moved
// since the last publication (a batch's ⋃V*; duplicates are fine), and
// their quiescent core numbers are read here. Cost is proportional to the
// changed set and the pages it dirties, not to n; huge distinct sets fall
// back to the full rebuild (see snapshot.BuildDelta). Must run at
// quiescence.
func (st *State) PublishSnapshotDelta(changed []int32) *snapshot.View {
	delta, ok := snapshot.BuildDelta(changed, st.N(), func(v int32) int32 { return st.Core[v].Load() })
	if !ok {
		return st.PublishSnapshot()
	}
	return st.pub.PublishDelta(delta, st.G.M())
}

// PubStats reports the snapshot publication counters.
func (st *State) PubStats() snapshot.PubStats { return st.pub.Stats() }

// Snapshot returns the most recently published view. Never nil: NewState
// publishes the initial decomposition.
func (st *State) Snapshot() *snapshot.View { return st.pub.Current() }

// N returns the number of vertices.
func (st *State) N() int { return len(st.Core) }

// CoreOf returns the current core number of v.
func (st *State) CoreOf(v int32) int32 { return st.Core[v].Load() }

// CoreNumbers returns a snapshot of all core numbers.
func (st *State) CoreNumbers() []int32 {
	out := make([]int32, len(st.Core))
	for v := range st.Core {
		out[v] = st.Core[v].Load()
	}
	return out
}

// List returns the k-order list O_k, growing the list table if k is beyond
// the current maximum. Safe for concurrent use.
func (st *State) List(k int32) *om.List {
	ls := st.lists.Load().([]*om.List)
	if int(k) < len(ls) {
		return ls[k]
	}
	return st.growLists(k)
}

func (st *State) growLists(k int32) *om.List {
	st.mu.Lock()
	defer st.mu.Unlock()
	ls := st.lists.Load().([]*om.List)
	if int(k) < len(ls) {
		return ls[k]
	}
	grown := make([]*om.List, k+1)
	copy(grown, ls)
	for i := len(ls); i < len(grown); i++ {
		grown[i] = om.NewList(0)
	}
	st.lists.Store(grown)
	return grown[k]
}

// MaxCoreValue returns the largest core value with an allocated list.
func (st *State) MaxCoreValue() int32 {
	return int32(len(st.lists.Load().([]*om.List)) - 1)
}

// BeforeSeq reports u ≺ v for single-threaded callers: first by core number,
// then by position in the shared core's OM list.
func (st *State) BeforeSeq(u, v int32) bool {
	cu, cv := st.Core[u].Load(), st.Core[v].Load()
	if cu != cv {
		return cu < cv
	}
	return st.List(cu).Order(st.Items[u], st.Items[v])
}

// Before is the Parallel-Order comparison of Algorithm 6: it retries until
// both vertices have even (stable) order-change status before and after the
// comparison, so the (core, position) pair it reads is consistent even while
// other workers move vertices between k-order lists.
func (st *State) Before(u, v int32) bool {
	for {
		su := st.S[u].Load()
		sv := st.S[v].Load()
		if su&1 == 1 || sv&1 == 1 {
			runtime.Gosched()
			continue
		}
		cu, cv := st.Core[u].Load(), st.Core[v].Load()
		var r bool
		if cu != cv {
			r = cu < cv
		} else {
			r = st.List(cu).Order(st.Items[u], st.Items[v])
		}
		if st.S[u].Load() == su && st.S[v].Load() == sv {
			return r
		}
		runtime.Gosched()
	}
}

// BeginOrderChange marks v's k-order as in flux (odd s); EndOrderChange
// publishes the new position. Every Delete/Insert pair that moves a vertex
// must be bracketed by these, together with any core-number change, so that
// Before never observes a half-updated (core, position) pair.
func (st *State) BeginOrderChange(v int32) { st.S[v].Add(1) }

// EndOrderChange completes a BeginOrderChange.
func (st *State) EndOrderChange(v int32) { st.S[v].Add(1) }

// ComputeMCD returns the max-core degree of u per Definition 3.8 evaluated
// against current core numbers plus the in-flight rule of Algorithm 8
// (CheckMCD): a neighbor with core = core(u)−1 that is still propagating
// (t > 0) is counted because it has not yet delivered its decrement to u.
// Pure computation; the caller decides where to store it.
func (st *State) ComputeMCD(u int32) int32 {
	cu := st.Core[u].Load()
	mcd := int32(0)
	for _, v := range st.G.Adj(u) {
		cv := st.Core[v].Load()
		if cv >= cu || (cv == cu-1 && st.T[v].Load() > 0) {
			mcd++
		}
	}
	return mcd
}

// InvalidateMcd clears the stored mcd of v. Callers need not hold v's lock:
// the store is atomic and writing the empty sentinel is always safe.
func (st *State) InvalidateMcd(v int32) { st.Mcd[v].Store(McdEmpty) }

// RecomputeDout recomputes and stores d⁺out(v) from the current k-order.
// Must run at quiescence (batch end) or while every neighbor position that
// can move is stable; used to repair the Dout of vertices whose list
// position changed with cross-worker interleaving.
func (st *State) RecomputeDout(v int32) {
	dout := int32(0)
	for _, x := range st.G.Adj(v) {
		if st.BeforeSeq(v, x) {
			dout++
		}
	}
	st.Dout[v].Store(dout)
}

// InsertStats reports what one edge insertion did; VPlus/VStar sizes feed
// the Fig. 1 histogram.
type InsertStats struct {
	Applied bool // false: self-loop or duplicate edge, nothing changed
	VPlus   int  // |V+|: vertices traversed
	VStar   int  // |V*|: vertices whose core number increased
	// Changed is V* itself — the vertices whose core number this
	// insertion raised — the input to delta snapshot publication.
	Changed []int32
}

// RemoveStats reports what one edge removal did. For removal V+ = V*
// (paper §6.5).
type RemoveStats struct {
	Applied bool // false: edge was absent, nothing changed
	VStar   int  // |V*|: vertices whose core number decreased
	// Changed is V* itself — the vertices whose core number this removal
	// lowered — the input to delta snapshot publication.
	Changed []int32
}
