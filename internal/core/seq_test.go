package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
)

func mustCheck(t *testing.T, st *State, context string) {
	t.Helper()
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

func TestNewStateInvariants(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"empty":    graph.New(0),
		"isolated": graph.New(5),
		"er":       gen.ErdosRenyi(200, 600, 1),
		"ba":       gen.BarabasiAlbert(200, 3, 2),
		"rmat":     gen.RMAT(8, 500, 3),
	} {
		st := NewState(g)
		mustCheck(t, st, name)
	}
}

func TestInsertEdgeSeqTriangleGrowth(t *testing.T) {
	// Path 0-1-2: all cores 1. Closing the triangle raises all to 2.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st := NewState(g)
	res := st.InsertEdgeSeq(0, 2)
	if !res.Applied {
		t.Fatal("insert must apply")
	}
	for v := int32(0); v < 3; v++ {
		if st.CoreOf(v) != 2 {
			t.Fatalf("core[%d] = %d, want 2", v, st.CoreOf(v))
		}
	}
	if res.VStar == 0 {
		t.Fatal("V* must be non-empty when cores change")
	}
	mustCheck(t, st, "triangle")
}

func TestInsertEdgeSeqNoChange(t *testing.T) {
	// Bridging two disjoint triangles changes no cores: every vertex
	// stays at core 2.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
	})
	st := NewState(g)
	res := st.InsertEdgeSeq(0, 3)
	if !res.Applied || res.VStar != 0 {
		t.Fatalf("bridge insert: %+v", res)
	}
	for v := int32(0); v < 6; v++ {
		if st.CoreOf(v) != 2 {
			t.Fatalf("core[%d] = %d, want 2", v, st.CoreOf(v))
		}
	}
	mustCheck(t, st, "bridge")
}

func TestInsertEdgeSeqIsolatedAttach(t *testing.T) {
	// Attaching an isolated vertex to a triangle raises its core 0 -> 1;
	// the triangle is untouched.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := NewState(g)
	res := st.InsertEdgeSeq(3, 0)
	if !res.Applied || res.VStar != 1 {
		t.Fatalf("pendant insert: %+v", res)
	}
	if st.CoreOf(3) != 1 || st.CoreOf(0) != 2 {
		t.Fatalf("cores after pendant: %d, %d", st.CoreOf(3), st.CoreOf(0))
	}
	mustCheck(t, st, "pendant")
}

func TestInsertEdgeSeqRejectsDupAndLoop(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	st := NewState(g)
	if st.InsertEdgeSeq(0, 1).Applied || st.InsertEdgeSeq(1, 0).Applied {
		t.Fatal("duplicate must not apply")
	}
	if st.InsertEdgeSeq(2, 2).Applied {
		t.Fatal("self-loop must not apply")
	}
	mustCheck(t, st, "rejects")
}

func TestRemoveEdgeSeqTriangleShrink(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	st := NewState(g)
	res := st.RemoveEdgeSeq(0, 2)
	if !res.Applied || res.VStar == 0 {
		t.Fatalf("remove: %+v", res)
	}
	for v := int32(0); v < 3; v++ {
		if st.CoreOf(v) != 1 {
			t.Fatalf("core[%d] = %d, want 1", v, st.CoreOf(v))
		}
	}
	mustCheck(t, st, "triangle remove")
}

func TestRemoveEdgeSeqAbsent(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	st := NewState(g)
	if st.RemoveEdgeSeq(0, 2).Applied {
		t.Fatal("absent edge must not apply")
	}
	mustCheck(t, st, "absent")
}

func TestRemoveToIsolation(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	st := NewState(g)
	st.RemoveEdgeSeq(0, 1)
	if st.CoreOf(0) != 0 || st.CoreOf(1) != 0 {
		t.Fatal("isolated vertices must have core 0")
	}
	mustCheck(t, st, "isolation")
}

// The paper's worked example (Fig. 2): inserting e1=(v,u2), e2=(u2,u3),
// e3=(u1,u4) raises every core number by one. Vertex ids: v=0, u1..u5=1..5.
func TestPaperFigure2Insertion(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 3},                             // v-u3
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}, // u1-u2,u3,u4
		{U: 2, V: 3}, {U: 2, V: 5}, // u2-u3,u5
		{U: 4, V: 5}, // u4-u5
	})
	st := NewState(g)
	if st.CoreOf(0) != 1 {
		t.Fatalf("v core = %d, want 1", st.CoreOf(0))
	}
	for u := int32(1); u <= 5; u++ {
		if st.CoreOf(u) != 2 {
			t.Fatalf("u%d core = %d, want 2", u, st.CoreOf(u))
		}
	}
	st.InsertEdgeSeq(0, 2) // e1: v-u2
	mustCheck(t, st, "after e1")
	st.InsertEdgeSeq(0, 4) // e2: v-u4
	mustCheck(t, st, "after e2")
	st.InsertEdgeSeq(3, 4) // e3: u3-u4
	mustCheck(t, st, "after e3")
}

// The paper's worked example (Fig. 3): removing three edges lowers every
// core number by one. v=0 core 2, u1..u5=1..5 core 3.
func TestPaperFigure3Removal(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4}, {U: 1, V: 5},
		{U: 2, V: 3}, {U: 2, V: 4},
		{U: 3, V: 5}, {U: 4, V: 5}, {U: 2, V: 5}, {U: 3, V: 4},
	})
	st := NewState(g)
	for u := int32(1); u <= 5; u++ {
		if st.CoreOf(u) != 3 {
			t.Skipf("constructed gadget has core %d at u%d; oracle checks below still cover removal", st.CoreOf(u), u)
		}
	}
	st.RemoveEdgeSeq(0, 2)
	mustCheck(t, st, "after e1 removal")
	st.RemoveEdgeSeq(2, 3)
	mustCheck(t, st, "after e2 removal")
	st.RemoveEdgeSeq(1, 4)
	mustCheck(t, st, "after e3 removal")
}

func TestInsertBatchThenRemoveBatchRoundTrip(t *testing.T) {
	base := gen.ErdosRenyi(150, 450, 7)
	st := NewState(base.Clone())
	batch := gen.SampleNonEdges(base, 120, 3)
	for _, e := range batch {
		st.InsertEdgeSeq(e.U, e.V)
	}
	mustCheck(t, st, "after inserts")
	for _, e := range batch {
		st.RemoveEdgeSeq(e.U, e.V)
	}
	mustCheck(t, st, "after removals")
	// Cores must equal the untouched base graph's cores.
	base2 := NewState(base)
	for v := int32(0); v < int32(base.N()); v++ {
		if st.CoreOf(v) != base2.CoreOf(v) {
			t.Fatalf("core[%d] drifted after round trip", v)
		}
	}
}

func TestMixedWorkloadInvariantsEachStep(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 9)
	st := NewState(g)
	rng := rand.New(rand.NewSource(42))
	var inserted []graph.Edge
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 || len(inserted) == 0 {
			u, v := int32(rng.Intn(100)), int32(rng.Intn(100))
			if st.InsertEdgeSeq(u, v).Applied {
				inserted = append(inserted, graph.Edge{U: u, V: v})
			}
		} else {
			i := rng.Intn(len(inserted))
			e := inserted[i]
			st.RemoveEdgeSeq(e.U, e.V)
			inserted[i] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
		}
		if step%25 == 0 {
			mustCheck(t, st, "mixed step")
		}
	}
	mustCheck(t, st, "mixed final")
}

// Property: arbitrary random insert/remove sequences keep every invariant
// on several graph families.
func TestQuickSequentialMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		var g *graph.Graph
		switch rng.Intn(3) {
		case 0:
			g = gen.ErdosRenyi(n, int64(2*n), seed)
		case 1:
			g = gen.BarabasiAlbert(n, 2, seed)
		default:
			g = gen.RMAT(6, int64(n), seed)
			n = g.N()
		}
		st := NewState(g)
		for step := 0; step < 120; step++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				st.InsertEdgeSeq(u, v)
			} else {
				st.RemoveEdgeSeq(u, v)
			}
		}
		return st.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Dense worst case: repeatedly insert edges into a small vertex set until
// it approaches a clique, then dismantle it. Exercises deep propagation
// cascades and repeated k-order list growth.
func TestCliqueBuildAndDismantle(t *testing.T) {
	const n = 18
	g := graph.New(n)
	st := NewState(g)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			st.InsertEdgeSeq(u, v)
		}
	}
	mustCheck(t, st, "full clique")
	for v := int32(0); v < n; v++ {
		if st.CoreOf(v) != n-1 {
			t.Fatalf("clique core = %d, want %d", st.CoreOf(v), n-1)
		}
	}
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			st.RemoveEdgeSeq(u, v)
		}
	}
	mustCheck(t, st, "dismantled")
	for v := int32(0); v < n; v++ {
		if st.CoreOf(v) != 0 {
			t.Fatalf("core[%d] = %d after dismantle", v, st.CoreOf(v))
		}
	}
}

func TestVPlusVStarRelation(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 5)
	st := NewState(g)
	batch := gen.SampleNonEdges(g, 100, 6)
	for _, e := range batch {
		res := st.InsertEdgeSeq(e.U, e.V)
		if res.VStar > res.VPlus {
			t.Fatalf("V* (%d) cannot exceed V+ (%d)", res.VStar, res.VPlus)
		}
	}
	mustCheck(t, st, "vplus/vstar")
}
