// Package expr is the experiment harness: it rebuilds every table and
// figure of the paper's evaluation (§6) — the graph suite of Table 2, the
// V+/V* size histogram of Fig. 1, the running-time-vs-workers curves of
// Fig. 4, the speedup table Table 3, the scalability ratios of Fig. 5 and
// the stability series of Fig. 6 — over seeded synthetic stand-ins for the
// paper's graphs (DESIGN.md, substitution 1).
package expr

import (
	"fmt"

	"repro/gen"
	"repro/graph"
)

// Scale selects experiment sizing. The paper runs 1M-vertex graphs with
// 100k-edge batches on a 64-core machine; the default "ci" scale shrinks
// everything so the full suite completes on a laptop CPU in seconds while
// preserving every shape the experiments measure.
type Scale string

const (
	// ScaleCI: ~2k vertices per graph, 1k-edge batches. Seconds.
	ScaleCI Scale = "ci"
	// ScaleMedium: ~20k vertices, 10k-edge batches. Minutes.
	ScaleMedium Scale = "medium"
	// ScaleFull: paper-scale 1M vertices, 100k-edge batches. Hours on a
	// laptop; intended for real multicore machines.
	ScaleFull Scale = "full"
)

// params returns (n, batch) for a scale.
func (s Scale) params() (int, int) {
	switch s {
	case ScaleMedium:
		return 20000, 10000
	case ScaleFull:
		return 1000000, 100000
	default:
		return 2000, 1000
	}
}

// SuiteGraph is one row of Table 2: a named graph with its generator.
type SuiteGraph struct {
	// Name matches the graph name in the paper's Table 2.
	Name string
	// StandIn documents what synthetic model replaces the original data
	// (the real SNAP/KONECT files are unavailable offline).
	StandIn string
	// Temporal marks the four KONECT temporal graphs; their batches are
	// taken from a contiguous time range of a synthetic timestamped
	// stream instead of uniform sampling (§6.2).
	Temporal bool
	// Build generates the graph.
	Build func() *graph.Graph
}

// Suite returns the 16-graph stand-in suite of Table 2 at the given scale.
// The same (scale, seed) pair always produces identical graphs.
func Suite(scale Scale, seed int64) []SuiteGraph {
	n, _ := scale.params()
	plc := func(avg, exp float64, s int64) func() *graph.Graph {
		return func() *graph.Graph { return gen.PowerLawCluster(n, avg, exp, seed+s) }
	}
	return []SuiteGraph{
		// Real-world SNAP/KONECT graphs -> degree-matched stand-ins.
		{Name: "livej", StandIn: "power-law, avg deg 14.2, heavy tail", Build: plc(14.2, 2.4, 1)},
		{Name: "patent", StandIn: "power-law, avg deg 2.75, mild tail", Build: plc(2.75, 3.0, 2)},
		{Name: "wikitalk", StandIn: "power-law, avg deg 2.1, extreme tail", Build: plc(2.1, 2.1, 3)},
		{Name: "roadNet-CA", StandIn: "small-world lattice, avg deg 2.8, max k 3", Build: func() *graph.Graph {
			return gen.WattsStrogatz(n, 1, 0.05, seed+4)
		}},
		{Name: "dbpedia", StandIn: "power-law, avg deg 3.5", Build: plc(3.5, 2.4, 5)},
		{Name: "baidu", StandIn: "power-law, avg deg 8.3", Build: plc(8.3, 2.3, 6)},
		{Name: "pokec", StandIn: "power-law, avg deg 18.8", Build: plc(18.8, 2.6, 7)},
		{Name: "wiki-talk-en", StandIn: "power-law, avg deg 8.4, heavy tail", Build: plc(8.4, 2.2, 8)},
		{Name: "wiki-links-en", StandIn: "power-law, avg deg 22.8", Build: plc(22.8, 2.3, 9)},
		// Synthetic graphs: the same models as the paper.
		{Name: "ER", StandIn: "Erdős–Rényi, avg deg 8 (few core values)", Build: func() *graph.Graph {
			return gen.ErdosRenyi(n, int64(4*n), seed+10)
		}},
		{Name: "BA", StandIn: "Barabási–Albert, avg deg 8 (single core value)", Build: func() *graph.Graph {
			return gen.BarabasiAlbert(n, 4, seed+11)
		}},
		{Name: "RMAT", StandIn: "R-MAT, avg deg 8 (wide core spectrum)", Build: func() *graph.Graph {
			return gen.RMAT(log2ceil(n), int64(4*n), seed+12)
		}},
		// Temporal KONECT graphs -> stand-ins with timestamped streams.
		{Name: "DBLP", StandIn: "power-law, avg deg 16.2 + timestamps", Temporal: true, Build: plc(16.2, 2.5, 13)},
		{Name: "Flickr", StandIn: "power-law, avg deg 14.4 + timestamps", Temporal: true, Build: plc(14.4, 2.2, 14)},
		{Name: "StackOverflow", StandIn: "power-law, avg deg 24.4 + timestamps", Temporal: true, Build: plc(24.4, 2.4, 15)},
		{Name: "wiki-edits-sh", StandIn: "power-law, avg deg 8.8 + timestamps", Temporal: true, Build: plc(8.8, 2.3, 16)},
	}
}

// SuiteByName returns the named suite entries, in the given order.
func SuiteByName(scale Scale, seed int64, names ...string) ([]SuiteGraph, error) {
	all := Suite(scale, seed)
	var out []SuiteGraph
	for _, name := range names {
		found := false
		for _, sg := range all {
			if sg.Name == name {
				out = append(out, sg)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("expr: unknown suite graph %q", name)
		}
	}
	return out, nil
}

func log2ceil(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// Workload is a pair of edge batches for one graph: Insert is applied to a
// graph missing those edges; Remove is applied to the full graph. For
// temporal graphs the batch is the latest contiguous slice of the stream.
type Workload struct {
	// Base is the graph the removal batch applies to; the insertion run
	// starts from Base minus the batch.
	Base  *graph.Graph
	Batch []graph.Edge
}

// BuildWorkload samples a batch of `size` edges of sg's graph (time-sliced
// for temporal graphs, uniform otherwise).
func BuildWorkload(sg SuiteGraph, size int, seed int64) Workload {
	g := sg.Build()
	var batch []graph.Edge
	if sg.Temporal {
		stream := gen.TemporalStream(g, seed)
		if size > len(stream) {
			size = len(stream)
		}
		for _, te := range stream[len(stream)-size:] {
			batch = append(batch, te.E)
		}
	} else {
		batch = gen.SampleEdges(g, size, seed)
	}
	return Workload{Base: g, Batch: batch}
}

// WithoutBatch returns a copy of the base graph with the batch removed —
// the starting point of an insertion measurement.
func (w Workload) WithoutBatch() *graph.Graph {
	g := w.Base.Clone()
	for _, e := range w.Batch {
		g.RemoveEdge(e.U, e.V)
	}
	return g
}
