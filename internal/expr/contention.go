package expr

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/pcore"
)

// RunContention quantifies the paper's §4 blocking analysis: for every suite
// graph it runs a 16-worker Parallel-Order insert batch and remove batch and
// reports the synchronization counters — conditional-lock aborts, priority
// queue rebuilds and removal redo rounds — normalized per edge. The paper
// argues these stay rare because V+ and V* are almost always tiny (Fig. 1);
// the table makes that claim measurable.
func RunContention(cfg Config) {
	_, batchSize := cfg.Scale.params()
	workers := cfg.Workers[len(cfg.Workers)-1]
	cfg.printf("Contention — Parallel-Order synchronization counters, %d workers, batch = %d edges\n",
		workers, batchSize)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Graph\tins aborts/edge\tins Q-rebuilds/edge\tins evictions/edge\trem aborts/edge\trem redos/edge")
	for _, sg := range Suite(cfg.Scale, cfg.Seed) {
		w := BuildWorkload(sg, batchSize, cfg.Seed)
		per := func(x int64) float64 { return float64(x) / float64(len(w.Batch)) }

		stIns := core.NewState(w.WithoutBatch())
		_, ins := pcore.InsertEdgesMetered(stIns, w.Batch, workers, nil)

		stRem := core.NewState(w.Base.Clone())
		_, rem := pcore.RemoveEdgesMetered(stRem, w.Batch, workers, nil)

		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n", sg.Name,
			per(ins.LockAborts), per(ins.QueueRebuilds), per(ins.Evictions),
			per(rem.LockAborts), per(rem.RemovalRedos))
	}
	tw.Flush()
	cfg.printf("(counters near zero mean workers almost never block each other — the §4 argument)\n")
}
