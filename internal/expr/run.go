package expr

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/bz"
	"repro/internal/stats"
	"repro/kcore"
)

// Config drives the experiment runners.
type Config struct {
	Scale   Scale
	Workers []int // worker counts for Fig. 4 / Table 3
	Repeats int   // measurement repetitions per point
	Seed    int64
	Out     io.Writer
}

// DefaultConfig returns CI-scale settings: worker counts 1..16, 3 repeats.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Scale:   ScaleCI,
		Workers: []int{1, 2, 4, 8, 16},
		Repeats: 3,
		Seed:    42,
		Out:     out,
	}
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// measure times fn() `repeats` times, re-preparing state via setup, and
// returns the summary in milliseconds.
func measure(repeats int, setup func() func()) stats.Summary {
	var ds []time.Duration
	for i := 0; i < repeats; i++ {
		run := setup()
		t0 := time.Now()
		run()
		ds = append(ds, time.Since(t0))
	}
	return stats.SummarizeDurations(ds)
}

// ---------------------------------------------------------------- Table 2

// RunTable2 regenerates the graph-suite table: n, m, average degree and
// maximum core number of every stand-in.
func RunTable2(cfg Config) {
	cfg.printf("Table 2 — tested graphs (scale=%s; synthetic stand-ins, see DESIGN.md)\n", cfg.Scale)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Graph\tn=|V|\tm=|E|\tAvgDeg\tMax k\tStand-in")
	for _, sg := range Suite(cfg.Scale, cfg.Seed) {
		g := sg.Build()
		cores, _ := bz.Decompose(g)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%d\t%s\n",
			sg.Name, g.N(), g.M(), g.AvgDegree(), bz.MaxCore(cores), sg.StandIn)
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Fig. 1

// RunFig1 regenerates the |V+| / |V*| size distribution: it inserts and
// removes a batch with Parallel-Order on every suite graph and histograms
// the per-edge traversal sizes. The paper's headline observation — more
// than 97% of operations touch at most 10 vertices — is checked and
// reported.
func RunFig1(cfg Config) {
	_, batchSize := cfg.Scale.params()
	insHist := stats.NewHistogram([]int{10, 100, 1000})
	remHist := stats.NewHistogram([]int{10, 100, 1000})
	for _, sg := range Suite(cfg.Scale, cfg.Seed) {
		w := BuildWorkload(sg, batchSize, cfg.Seed)
		mi := kcore.New(w.WithoutBatch(), kcore.WithWorkers(16))
		res := mi.InsertEdges(w.Batch)
		insHist.AddAll(res.VPlusSizes)
		mr := kcore.New(w.Base.Clone(), kcore.WithWorkers(16))
		res = mr.RemoveEdges(w.Batch)
		remHist.AddAll(res.VPlusSizes)
	}
	cfg.printf("Fig. 1 — sizes of V+ (insert) and V* (remove), Parallel-Order, all %d suite graphs\n", len(Suite(cfg.Scale, cfg.Seed)))
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size bucket\tinsert |V+|\tremove |V*|\tinsert %\tremove %")
	for i := range insHist.Counts {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f%%\t%.2f%%\n",
			insHist.BucketLabel(i), insHist.Counts[i], remHist.Counts[i],
			100*insHist.Fraction(i), 100*remHist.Fraction(i))
	}
	tw.Flush()
	cfg.printf("paper claim (>97%% of operations have size <= 10): insert %.2f%%, remove %.2f%%\n",
		100*insHist.Fraction(0), 100*remHist.Fraction(0))
}

// ---------------------------------------------------------------- Fig. 4

// Fig4Point is one measured point of the running-time curves.
type Fig4Point struct {
	Graph     string
	Algorithm string // OurI, OurR, JEI, JER
	Workers   int
	Time      stats.Summary // milliseconds
}

// RunFig4 measures the running time of OurI/OurR (Parallel-Order) and
// JEI/JER (join-edge-set Traversal) for every suite graph and worker count,
// printing one block per graph like the paper's 16 subplots. It returns the
// raw points so Table 3 can be derived from the same data.
func RunFig4(cfg Config) []Fig4Point {
	_, batchSize := cfg.Scale.params()
	var points []Fig4Point
	cfg.printf("Fig. 4 — running time (ms) vs workers, batch = %d edges, %d repeats\n", batchSize, cfg.Repeats)
	for _, sg := range Suite(cfg.Scale, cfg.Seed) {
		w := BuildWorkload(sg, batchSize, cfg.Seed)
		cfg.printf("\n%s:\n", sg.Name)
		tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "workers\tOurI\tOurR\tJEI\tJER")
		for _, workers := range cfg.Workers {
			row := map[string]stats.Summary{}
			for _, meas := range []struct {
				name   string
				alg    kcore.Algorithm
				insert bool
			}{
				{"OurI", kcore.ParallelOrder, true},
				{"OurR", kcore.ParallelOrder, false},
				{"JEI", kcore.JoinEdgeSet, true},
				{"JER", kcore.JoinEdgeSet, false},
			} {
				meas := meas
				sum := measure(cfg.Repeats, func() func() {
					var m *kcore.Maintainer
					if meas.insert {
						m = kcore.New(w.WithoutBatch(), kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
					} else {
						m = kcore.New(w.Base.Clone(), kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
					}
					batch := w.Batch
					if meas.insert {
						return func() { m.InsertEdges(batch) }
					}
					return func() { m.RemoveEdges(batch) }
				})
				row[meas.name] = sum
				points = append(points, Fig4Point{Graph: sg.Name, Algorithm: meas.name, Workers: workers, Time: sum})
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n", workers,
				row["OurI"], row["OurR"], row["JEI"], row["JER"])
		}
		tw.Flush()
	}
	return points
}

// ---------------------------------------------------------------- Table 3

// RunTable3 derives the speedup table from Fig. 4 data (re-measuring if
// points is nil): per-algorithm 1-worker vs max-worker speedups, and
// Our-vs-JE speedups at 1 and max workers.
func RunTable3(cfg Config, points []Fig4Point) {
	if points == nil {
		quiet := cfg
		quiet.Out = io.Discard
		points = RunFig4(quiet)
	}
	maxW := cfg.Workers[len(cfg.Workers)-1]
	get := func(g, alg string, w int) float64 {
		for _, p := range points {
			if p.Graph == g && p.Algorithm == alg && p.Workers == w {
				return p.Time.Mean
			}
		}
		return 0
	}
	cfg.printf("Table 3 — speedups (1 worker vs %d workers; Our vs JE)\n", maxW)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Graph\tOurI 1w/%dw\tOurR 1w/%dw\tJEI 1w/%dw\tJER 1w/%dw\tOurI/JEI 1w\tOurR/JER 1w\tOurI/JEI %dw\tOurR/JER %dw\n",
		maxW, maxW, maxW, maxW, maxW, maxW)
	for _, sg := range Suite(cfg.Scale, cfg.Seed) {
		g := sg.Name
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", g,
			stats.Speedup(get(g, "OurI", 1), get(g, "OurI", maxW)),
			stats.Speedup(get(g, "OurR", 1), get(g, "OurR", maxW)),
			stats.Speedup(get(g, "JEI", 1), get(g, "JEI", maxW)),
			stats.Speedup(get(g, "JER", 1), get(g, "JER", maxW)),
			stats.Speedup(get(g, "JEI", 1), get(g, "OurI", 1)),
			stats.Speedup(get(g, "JER", 1), get(g, "OurR", 1)),
			stats.Speedup(get(g, "JEI", maxW), get(g, "OurI", maxW)),
			stats.Speedup(get(g, "JER", maxW), get(g, "OurR", maxW)))
	}
	tw.Flush()
}

// ---------------------------------------------------------------- Fig. 5

// fig5Graphs are the four graphs the paper selects for the scalability and
// stability experiments.
var fig5Graphs = []string{"livej", "baidu", "dbpedia", "roadNet-CA"}

// RunFig5 regenerates the scalability experiment: runtime ratio relative to
// the base batch size as the batch grows from 1x to 10x, at the maximum
// worker count.
func RunFig5(cfg Config) {
	_, base := cfg.Scale.params()
	workers := cfg.Workers[len(cfg.Workers)-1]
	sizes := []int{1, 2, 4, 6, 8, 10}
	suite, err := SuiteByName(cfg.Scale, cfg.Seed, fig5Graphs...)
	if err != nil {
		panic(err)
	}
	cfg.printf("Fig. 5 — running-time ratio vs batch size (base = %d edges, %d workers)\n", base, workers)
	for _, sg := range suite {
		cfg.printf("\n%s:\n", sg.Name)
		tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "batch\tOurI ratio\tOurR ratio\tJEI ratio\tJER ratio")
		baselines := map[string]float64{}
		for _, mult := range sizes {
			size := base * mult
			w := BuildWorkload(sg, size, cfg.Seed)
			ratios := map[string]float64{}
			for _, meas := range []struct {
				name   string
				alg    kcore.Algorithm
				insert bool
			}{
				{"OurI", kcore.ParallelOrder, true},
				{"OurR", kcore.ParallelOrder, false},
				{"JEI", kcore.JoinEdgeSet, true},
				{"JER", kcore.JoinEdgeSet, false},
			} {
				meas := meas
				sum := measure(cfg.Repeats, func() func() {
					var m *kcore.Maintainer
					if meas.insert {
						m = kcore.New(w.WithoutBatch(), kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
					} else {
						m = kcore.New(w.Base.Clone(), kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
					}
					batch := w.Batch
					if meas.insert {
						return func() { m.InsertEdges(batch) }
					}
					return func() { m.RemoveEdges(batch) }
				})
				if mult == sizes[0] {
					baselines[meas.name] = sum.Mean
				}
				if b := baselines[meas.name]; b > 0 {
					ratios[meas.name] = sum.Mean / b
				}
			}
			fmt.Fprintf(tw, "%dx\t%.2f\t%.2f\t%.2f\t%.2f\n", mult,
				ratios["OurI"], ratios["OurR"], ratios["JEI"], ratios["JER"])
		}
		tw.Flush()
	}
}

// ---------------------------------------------------------------- Fig. 6

// RunFig6 regenerates the stability experiment: disjoint batch groups are
// applied one after the other and the per-group runtime is reported; the
// paper's observation is that OurI/OurR/JER stay flat while JEI fluctuates.
func RunFig6(cfg Config) {
	_, batchSize := cfg.Scale.params()
	groups := 10
	if cfg.Scale == ScaleFull {
		groups = 50
	}
	workers := cfg.Workers[len(cfg.Workers)-1]
	suite, err := SuiteByName(cfg.Scale, cfg.Seed, fig5Graphs...)
	if err != nil {
		panic(err)
	}
	cfg.printf("Fig. 6 — per-group running time (ms), %d disjoint groups of %d edges, %d workers\n",
		groups, batchSize, workers)
	for _, sg := range suite {
		g := sg.Build()
		all := BuildWorkload(sg, batchSize*groups, cfg.Seed).Batch
		if len(all) < batchSize*groups {
			groups = len(all) / batchSize
		}
		cfg.printf("\n%s:\n", sg.Name)
		tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "group\tOurI\tOurR\tJEI\tJER")
		rows := make([][4]float64, groups)
		for _, meas := range []struct {
			idx    int
			alg    kcore.Algorithm
			insert bool
		}{
			{0, kcore.ParallelOrder, true},
			{1, kcore.ParallelOrder, false},
			{2, kcore.JoinEdgeSet, true},
			{3, kcore.JoinEdgeSet, false},
		} {
			var m *kcore.Maintainer
			if meas.insert {
				base := g.Clone()
				for _, e := range all {
					base.RemoveEdge(e.U, e.V)
				}
				m = kcore.New(base, kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
			} else {
				m = kcore.New(g.Clone(), kcore.WithAlgorithm(meas.alg), kcore.WithWorkers(workers))
			}
			for gi := 0; gi < groups; gi++ {
				batch := all[gi*batchSize : (gi+1)*batchSize]
				t0 := time.Now()
				if meas.insert {
					m.InsertEdges(batch)
				} else {
					m.RemoveEdges(batch)
				}
				rows[gi][meas.idx] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}
		for gi := 0; gi < groups; gi++ {
			fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%.2f\n", gi+1,
				rows[gi][0], rows[gi][1], rows[gi][2], rows[gi][3])
		}
		tw.Flush()
		for i, name := range []string{"OurI", "OurR", "JEI", "JER"} {
			var xs []float64
			for gi := 0; gi < groups; gi++ {
				xs = append(xs, rows[gi][i])
			}
			s := stats.Summarize(xs)
			cfg.printf("%s spread: mean %.2f ms, stddev %.2f, max/min %.2f\n",
				name, s.Mean, s.StdDev, spreadRatio(s))
		}
	}
}

func spreadRatio(s stats.Summary) float64 {
	if s.Min <= 0 {
		return 0
	}
	return s.Max / s.Min
}

// RunAll runs every experiment in paper order, plus the contention report.
func RunAll(cfg Config) {
	RunTable2(cfg)
	cfg.printf("\n")
	RunFig1(cfg)
	cfg.printf("\n")
	RunContention(cfg)
	cfg.printf("\n")
	points := RunFig4(cfg)
	cfg.printf("\n")
	RunTable3(cfg, points)
	cfg.printf("\n")
	RunFig5(cfg)
	cfg.printf("\n")
	RunFig6(cfg)
}
