package expr

import (
	"bytes"
	"strings"
	"testing"
)

func tinyConfig(buf *bytes.Buffer) Config {
	cfg := DefaultConfig(buf)
	cfg.Workers = []int{1, 2}
	cfg.Repeats = 1
	return cfg
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(ScaleCI, 1)
	if len(suite) != 16 {
		t.Fatalf("suite has %d graphs, want 16 (Table 2)", len(suite))
	}
	names := map[string]bool{}
	temporal := 0
	for _, sg := range suite {
		if names[sg.Name] {
			t.Fatalf("duplicate suite name %s", sg.Name)
		}
		names[sg.Name] = true
		if sg.Temporal {
			temporal++
		}
		g := sg.Build()
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", sg.Name)
		}
		if err := g.CheckConsistent(); err != nil {
			t.Fatalf("%s: %v", sg.Name, err)
		}
	}
	if temporal != 4 {
		t.Fatalf("%d temporal graphs, want 4", temporal)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite(ScaleCI, 7)[0].Build()
	b := Suite(ScaleCI, 7)[0].Build()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed must produce the same graph")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must produce identical edges")
		}
	}
}

func TestSuiteByName(t *testing.T) {
	got, err := SuiteByName(ScaleCI, 1, "BA", "ER")
	if err != nil || len(got) != 2 || got[0].Name != "BA" || got[1].Name != "ER" {
		t.Fatalf("SuiteByName: %v %v", got, err)
	}
	if _, err := SuiteByName(ScaleCI, 1, "nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestBuildWorkload(t *testing.T) {
	suite := Suite(ScaleCI, 1)
	for _, sg := range []SuiteGraph{suite[0], suite[12]} { // one static, one temporal
		w := BuildWorkload(sg, 200, 5)
		if len(w.Batch) != 200 {
			t.Fatalf("%s: batch %d", sg.Name, len(w.Batch))
		}
		for _, e := range w.Batch {
			if !w.Base.HasEdge(e.U, e.V) {
				t.Fatalf("%s: batch edge %v not in base", sg.Name, e)
			}
		}
		without := w.WithoutBatch()
		if without.M() != w.Base.M()-int64(len(w.Batch)) {
			t.Fatalf("%s: WithoutBatch m=%d", sg.Name, without.M())
		}
	}
}

func TestRunTable2Output(t *testing.T) {
	var buf bytes.Buffer
	RunTable2(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"livej", "BA", "RMAT", "Max k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig1Output(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	RunFig1(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "0-10") || !strings.Contains(out, "paper claim") {
		t.Fatalf("Fig. 1 output malformed:\n%s", out)
	}
}

func TestRunFig4AndTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	points := RunFig4(cfg)
	want := 16 * len(cfg.Workers) * 4
	if len(points) != want {
		t.Fatalf("fig4 points = %d, want %d", len(points), want)
	}
	buf.Reset()
	RunTable3(cfg, points)
	if !strings.Contains(buf.String(), "OurI/JEI") {
		t.Fatalf("Table 3 output malformed:\n%s", buf.String())
	}
}

func TestRunFig5Output(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	RunFig5(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"livej", "roadNet-CA", "10x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig. 5 output missing %q", want)
		}
	}
}

func TestRunFig6Output(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	RunFig6(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "spread") {
		t.Fatalf("Fig. 6 output missing spread summary:\n%s", out)
	}
}

func TestRunContentionOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	var buf bytes.Buffer
	RunContention(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "aborts/edge") || !strings.Contains(out, "BA") {
		t.Fatalf("contention output malformed:\n%s", out)
	}
}
