package snapshot

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkSnapshotPublish contrasts the two publication paths the serving
// layer can take after a batch that changed |V*| core numbers on an
// n-vertex graph:
//
//   - full:  what every publication used to cost — materialize the core
//     array (the O(n) copy a quiescent engine scan pays) and rebuild the
//     aggregates from scratch;
//   - delta: the copy-on-write path — clone only the pages the changed
//     set dirties and patch the histogram by ± deltas;
//   - jes:   the join-edge-set engine's publish path — a raw multi-level
//     changed report (vertices repeat across rounds) goes through
//     BuildDelta's dedup and then the same COW patch, i.e. delta plus the
//     per-report dedup cost;
//   - grow:  the streaming-graph growth path — PublishGrow mints 8192
//     fresh vertices (8 new zero pages plus the page-table copy) and a
//     post-growth PublishDelta patches |V*| vertices inside the grown
//     tail. The row must stay O(|V*| + newPages·PageSize + n/PageSize):
//     growth never triggers the O(n) rebuild.
//
// The delta, jes and grow rows should be independent of n's linear term
// and proportional to the dirty/new page count; `make bench-json` records
// the numbers in BENCH_serve.json.
func BenchmarkSnapshotPublish(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		rng := rand.New(rand.NewSource(int64(n)))
		cores := make([]int32, n)
		for i := range cores {
			cores[i] = rng.Int31n(64)
		}
		for _, vstar := range []int{1, 100, 10_000} {
			if vstar > n {
				continue
			}
			// Two alternating changed sets over the same vertices, so
			// every iteration really patches pages instead of hitting
			// the no-op skip.
			verts := rng.Perm(n)[:vstar]
			flip := make([][]VertexCore, 2)
			for side := range flip {
				flip[side] = make([]VertexCore, vstar)
				for i, v := range verts {
					flip[side][i] = VertexCore{V: int32(v), Core: cores[v] + int32(side)}
				}
			}
			name := fmt.Sprintf("n=%d/vstar=%d", n, vstar)
			b.Run(name+"/full", func(b *testing.B) {
				var p Publisher
				p.Publish(append([]int32(nil), cores...), int64(n))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Publish(append([]int32(nil), cores...), int64(n))
				}
			})
			b.Run(name+"/delta", func(b *testing.B) {
				var p Publisher
				p.Publish(append([]int32(nil), cores...), int64(n))
				p.PublishDelta(flip[1], int64(n))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.PublishDelta(flip[i%2], int64(n))
				}
			})
			b.Run(name+"/grow", func(b *testing.B) {
				const growBy = 8 * PageSize
				var p Publisher
				base := p.Publish(append([]int32(nil), cores...), int64(n))
				// The grown tail's changed set: vstar fresh vertices
				// promoted to core 1 right after arrival.
				tailChanged := make([]VertexCore, vstar)
				for i := range tailChanged {
					tailChanged[i] = VertexCore{V: int32(n + (i*growBy)/vstar), Core: 1}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Rewind to the pre-growth view (same package: the
					// atomic store is all a publish-instant costs), so
					// every iteration pays one real grow + tail delta
					// without the universe compounding across iterations.
					p.cur.Store(base)
					p.PublishGrow(n+growBy, int64(n))
					p.PublishDelta(tailChanged, int64(n))
				}
				b.StopTimer()
				if st := p.Stats(); st.Full != 1 {
					b.Fatalf("post-growth publish fell back to %d full rebuilds", st.Full-1)
				}
			})
			b.Run(name+"/jes", func(b *testing.B) {
				// Raw changed report as the JES engine emits it before
				// dedup landed in jes.runBatch: every vertex repeated (a
				// touch at two levels). BuildDelta + PublishDelta is the
				// publication work one JES batch costs the applier.
				raw := make([]int32, 0, 2*vstar)
				for _, v := range verts {
					raw = append(raw, int32(v))
				}
				for _, v := range verts {
					raw = append(raw, int32(v))
				}
				var p Publisher
				p.Publish(append([]int32(nil), cores...), int64(n))
				// Pre-warm onto side 1 so iteration 0 (side 0) patches
				// real pages instead of hitting the no-op skip, exactly
				// like the delta case above.
				warm, _ := BuildDelta(raw, n, func(v int32) int32 { return cores[v] + 1 })
				p.PublishDelta(warm, int64(n))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					side := int32(i % 2)
					delta, ok := BuildDelta(raw, n, func(v int32) int32 { return cores[v] + side })
					if !ok {
						b.Fatal("unexpected rebuild fallback")
					}
					p.PublishDelta(delta, int64(n))
				}
			})
		}
	}
}
