package snapshot

import (
	"math/rand"
	"sync"
	"testing"
)

func TestPublishDerivesAggregates(t *testing.T) {
	var p Publisher
	if p.Current() != nil {
		t.Fatal("zero publisher must have no view")
	}
	v := p.Publish([]int32{2, 2, 2, 1, 0}, 4)
	if v.Epoch != 1 || v.N != 5 || v.M != 4 || v.MaxCore != 2 {
		t.Fatalf("view %+v", v)
	}
	if v.Hist[2] != 3 || v.Hist[1] != 1 || v.Hist[0] != 1 {
		t.Fatalf("hist %v", v.Hist)
	}
	if p.Current() != v {
		t.Fatal("Current must return the published view")
	}
	for i, want := range []int32{2, 2, 2, 1, 0} {
		if got := v.CoreOf(int32(i)); got != want {
			t.Fatalf("CoreOf(%d) = %d, want %d", i, got, want)
		}
	}
	if got := v.CoresInto(nil); len(got) != 5 || got[0] != 2 || got[4] != 0 {
		t.Fatalf("CoresInto %v", got)
	}
	v2 := p.Publish([]int32{1, 1}, 1)
	if v2.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", v2.Epoch)
	}
	st := p.Stats()
	if st.Full != 2 || st.Delta != 0 || st.Unchanged != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEpochsNeverRepeat(t *testing.T) {
	var p Publisher
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := p.Publish([]int32{0}, 0)
				mu.Lock()
				if seen[v.Epoch] {
					mu.Unlock()
					panic("epoch repeated")
				}
				seen[v.Epoch] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 400 {
		t.Fatalf("%d distinct epochs, want 400", len(seen))
	}
}

// viewEqual asserts that v carries exactly the decomposition in cores.
func viewEqual(t *testing.T, v *View, cores []int32, m int64) {
	t.Helper()
	if v.N != len(cores) || v.M != m {
		t.Fatalf("N=%d M=%d, want N=%d M=%d", v.N, v.M, len(cores), m)
	}
	var ref Publisher
	want := ref.Publish(append([]int32(nil), cores...), m)
	got := v.CoresInto(nil)
	for i := range cores {
		if got[i] != cores[i] {
			t.Fatalf("cores[%d] = %d, want %d", i, got[i], cores[i])
		}
	}
	if v.MaxCore != want.MaxCore {
		t.Fatalf("MaxCore = %d, want %d", v.MaxCore, want.MaxCore)
	}
	if len(v.Hist) != len(want.Hist) {
		t.Fatalf("hist len = %d (%v), want %d (%v)", len(v.Hist), v.Hist, len(want.Hist), want.Hist)
	}
	for k := range v.Hist {
		if v.Hist[k] != want.Hist[k] {
			t.Fatalf("hist[%d] = %d, want %d", k, v.Hist[k], want.Hist[k])
		}
	}
}

// TestPublishDeltaMatchesFull randomly mutates core numbers across several
// pages and checks that the chain of delta publications always equals a
// from-scratch publish of the mutated array.
func TestPublishDeltaMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 3*PageSize + 123 // four pages, short last page
	cores := make([]int32, n)
	for i := range cores {
		cores[i] = rng.Int31n(8)
	}
	var p Publisher
	p.Publish(append([]int32(nil), cores...), 10)
	for round := 0; round < 50; round++ {
		k := rng.Intn(40)
		changed := make([]VertexCore, 0, k+2)
		for i := 0; i < k; i++ {
			v := rng.Int31n(n)
			cores[v] = rng.Int31n(12)
			changed = append(changed, VertexCore{V: v, Core: cores[v]})
		}
		// Duplicate and no-op entries must be harmless.
		if k > 0 {
			changed = append(changed, changed[k-1])
		}
		changed = append(changed, VertexCore{V: 0, Core: cores[0]})
		v := p.PublishDelta(changed, int64(100+round))
		viewEqual(t, v, cores, int64(100+round))
	}
	if st := p.Stats(); st.Delta != 50 {
		t.Fatalf("delta publishes = %d, want 50", st.Delta)
	}
}

// TestPublishDeltaCopyOnWrite: clean pages must be shared with the
// previous view, dirty pages must be fresh arrays, and the old view must
// keep its values after the new one is published.
func TestPublishDeltaCopyOnWrite(t *testing.T) {
	const n = 2*PageSize + 10
	cores := make([]int32, n)
	var p Publisher
	old := p.Publish(append([]int32(nil), cores...), 0)
	target := int32(PageSize + 5) // page 1
	nv := p.PublishDelta([]VertexCore{{V: target, Core: 3}}, 1)
	if &nv.pages[0][0] != &old.pages[0][0] || &nv.pages[2][0] != &old.pages[2][0] {
		t.Fatal("clean pages must be shared between views")
	}
	if &nv.pages[1][0] == &old.pages[1][0] {
		t.Fatal("dirty page must be cloned, not patched in place")
	}
	if old.CoreOf(target) != 0 || nv.CoreOf(target) != 3 {
		t.Fatalf("old=%d new=%d, want 0/3", old.CoreOf(target), nv.CoreOf(target))
	}
	if st := p.Stats(); st.DirtyPages != 1 {
		t.Fatalf("dirty pages = %d, want 1", st.DirtyPages)
	}
}

// TestPublishDeltaMaxCoreShrinks: removing the only max-core vertex must
// trim the histogram and lower MaxCore.
func TestPublishDeltaMaxCoreShrinks(t *testing.T) {
	var p Publisher
	p.Publish([]int32{1, 1, 5}, 3)
	v := p.PublishDelta([]VertexCore{{V: 2, Core: 1}}, 2)
	if v.MaxCore != 1 || len(v.Hist) != 2 || v.Hist[1] != 3 {
		t.Fatalf("view %+v hist %v", v, v.Hist)
	}
	// And growth: a new top level extends the histogram.
	v = p.PublishDelta([]VertexCore{{V: 0, Core: 9}}, 2)
	if v.MaxCore != 9 || len(v.Hist) != 10 || v.Hist[9] != 1 {
		t.Fatalf("view %+v hist %v", v, v.Hist)
	}
}

// TestPublishUnchangedSharesPages: the O(1) path must share the page table
// itself.
func TestPublishUnchangedSharesPages(t *testing.T) {
	var p Publisher
	old := p.Publish([]int32{2, 1, 0}, 3)
	v := p.PublishUnchanged(4)
	if v.Epoch != old.Epoch+1 || v.M != 4 || v.MaxCore != old.MaxCore {
		t.Fatalf("view %+v", v)
	}
	if &v.pages[0][0] != &old.pages[0][0] {
		t.Fatal("unchanged publish must share pages")
	}
	if st := p.Stats(); st.Unchanged != 1 || st.Full != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestPublishGrowMatchesFull: growing across page boundaries must equal a
// from-scratch publish of the zero-extended core array, and a post-growth
// delta must patch the grown tail correctly.
func TestPublishGrowMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cores := make([]int32, PageSize+57) // short last page
	for i := range cores {
		cores[i] = 1 + rng.Int31n(6)
	}
	var p Publisher
	p.Publish(append([]int32(nil), cores...), 10)
	for _, newN := range []int{
		len(cores) + 1,  // stays inside the short page
		PageSize * 2,    // fills page 1 exactly
		PageSize*4 + 13, // fresh full + short pages
		PageSize*4 + 13, // no-op: newN == N republishes unchanged
		PageSize * 4,    // below N: never shrinks
	} {
		v := p.PublishGrow(newN, 10)
		if newN > len(cores) {
			cores = append(cores, make([]int32, newN-len(cores))...)
		}
		viewEqual(t, v, cores, 10)
	}
	if st := p.Stats(); st.Grow != 3 || st.Unchanged != 2 {
		t.Fatalf("stats %+v, want 3 grows + 2 unchanged", st)
	}
	// Post-growth delta: patch vertices in the grown tail.
	tail := int32(len(cores) - 3)
	cores[tail] = 9
	v := p.PublishDelta([]VertexCore{{V: tail, Core: 9}}, 11)
	viewEqual(t, v, cores, 11)
}

// TestPublishGrowCopyOnWrite: full old pages must be shared, the short old
// last page must be cloned before extension, and a held pre-growth view
// must keep its N, aggregates, and values.
func TestPublishGrowCopyOnWrite(t *testing.T) {
	const n = PageSize + 100
	cores := make([]int32, n)
	for i := range cores {
		cores[i] = 2
	}
	var p Publisher
	old := p.Publish(append([]int32(nil), cores...), 5)
	v := p.PublishGrow(3*PageSize, 5)
	if &v.pages[0][0] != &old.pages[0][0] {
		t.Fatal("full old pages must be shared")
	}
	if &v.pages[1][0] == &old.pages[1][0] {
		t.Fatal("short last page must be cloned before zero-extension")
	}
	if old.N != n || len(old.pages[1]) != 100 || old.Hist[0] != 0 {
		t.Fatalf("held view mutated: N=%d lastPage=%d hist=%v", old.N, len(old.pages[1]), old.Hist)
	}
	if v.N != 3*PageSize || v.Hist[0] != int64(3*PageSize-n) || v.Hist[2] != int64(n) || v.MaxCore != 2 {
		t.Fatalf("grown view %+v hist %v", v, v.Hist)
	}
	for _, u := range []int32{0, n - 1, n, 3*PageSize - 1} {
		want := int32(0)
		if u < n {
			want = 2
		}
		if got := v.CoreOf(u); got != want {
			t.Fatalf("CoreOf(%d) = %d, want %d", u, got, want)
		}
	}
}

func TestCoresIntoReusesBuffer(t *testing.T) {
	var p Publisher
	v := p.Publish([]int32{3, 2, 1, 0}, 2)
	buf := make([]int32, 0, 16)
	out := v.CoresInto(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("CoresInto must reuse a large-enough buffer")
	}
	if len(out) != 4 || out[0] != 3 || out[3] != 0 {
		t.Fatalf("CoresInto %v", out)
	}
}
