package snapshot

import (
	"sync"
	"testing"
)

func TestPublishDerivesAggregates(t *testing.T) {
	var p Publisher
	if p.Current() != nil {
		t.Fatal("zero publisher must have no view")
	}
	v := p.Publish([]int32{2, 2, 2, 1, 0}, 4)
	if v.Epoch != 1 || v.N != 5 || v.M != 4 || v.MaxCore != 2 {
		t.Fatalf("view %+v", v)
	}
	if v.Hist[2] != 3 || v.Hist[1] != 1 || v.Hist[0] != 1 {
		t.Fatalf("hist %v", v.Hist)
	}
	if p.Current() != v {
		t.Fatal("Current must return the published view")
	}
	v2 := p.Publish([]int32{1, 1}, 1)
	if v2.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", v2.Epoch)
	}
}

func TestEpochsNeverRepeat(t *testing.T) {
	var p Publisher
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v := p.Publish([]int32{0}, 0)
				mu.Lock()
				if seen[v.Epoch] {
					mu.Unlock()
					panic("epoch repeated")
				}
				seen[v.Epoch] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 400 {
		t.Fatalf("%d distinct epochs, want 400", len(seen))
	}
}
