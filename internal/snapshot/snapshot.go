// Package snapshot provides epoch-versioned immutable views of a core
// decomposition. The serving layer publishes a View at batch quiescence;
// queries load the current View through an atomic pointer and never touch
// live engine state, so reads are lock-free and never block behind an
// in-flight batch.
//
// Core numbers are stored in fixed-size pages behind a page table, so a
// View can be re-published copy-on-write: PublishDelta clones only the
// pages a batch dirtied and patches the histogram by the per-vertex
// (oldCore, newCore) deltas, making publication cost O(|V*| + dirtyPages ·
// PageSize + n/PageSize) instead of O(n). Readers holding an older View
// keep seeing its pages unchanged — published pages are never written.
package snapshot

import (
	"sync/atomic"

	"repro/internal/bz"
)

const (
	// PageBits is the log2 of the page size: pages hold 1024 core numbers
	// (4 KiB). Small pages bound the write amplification of scattered
	// changed sets — a delta touching p distinct pages clones p·4 KiB —
	// while the page table stays negligible (n/1024 pointers).
	PageBits = 10
	// PageSize is the number of vertices per page.
	PageSize = 1 << PageBits

	pageMask = PageSize - 1
)

// View is one immutable snapshot of a core decomposition. All fields are
// written once, before the View is published; readers must treat the
// slices as read-only.
type View struct {
	// Epoch increases by one with every published View; it never repeats
	// or decreases for a given Publisher.
	Epoch uint64
	// pages is the page table: pages[p][i] is the core number of vertex
	// p·PageSize + i. The last page is short when N is not a multiple of
	// PageSize. Pages are shared freely between Views and never mutated
	// after publication.
	pages [][]int32
	// MaxCore is the largest core number (len(Hist)-1).
	MaxCore int32
	// Hist[k] counts the vertices with core number k; its last bin is
	// nonzero (Hist = [0] for the empty graph).
	Hist []int64
	// N and M are the vertex and edge counts at publication time.
	N int
	M int64
}

// CoreOf returns the core number of v: one shift+mask page lookup, O(1).
func (v *View) CoreOf(u int32) int32 {
	return v.pages[u>>PageBits][u&pageMask]
}

// CoresInto materializes the paged core array into dst, which is grown if
// its capacity is short, and returns it. Pass a slice retained across
// calls to avoid a fresh O(n) allocation per materialization.
func (v *View) CoresInto(dst []int32) []int32 {
	if cap(dst) < v.N {
		dst = make([]int32, v.N)
	} else {
		dst = dst[:v.N]
	}
	for p, pg := range v.pages {
		copy(dst[p<<PageBits:], pg)
	}
	return dst
}

// NumPages returns the page-table length (for instrumentation and tests).
func (v *View) NumPages() int { return len(v.pages) }

// ForEachPage calls fn once per page in vertex order: start is the id of
// the page's first vertex and page its core numbers (page[i] belongs to
// vertex start+i). The allocation-free way to scan all cores sequentially;
// fn must treat page as read-only.
func (v *View) ForEachPage(fn func(start int32, page []int32)) {
	for p, pg := range v.pages {
		fn(int32(p)<<PageBits, pg)
	}
}

// HistRangeInto computes the core histogram of the id range [lo, hi) —
// hist[k] = vertices in the range with core number k — appending into
// dst[:0] so repeat callers pay no allocation once the bin slice is warm.
// The range is clamped to [0, N); the result always has at least one bin
// and its last bin is nonzero unless only bin 0 is populated, matching
// Hist's shape. This is the owned-band primitive of the cluster's
// scatter-gather aggregates: a shard restricted to its owned id range
// reports a histogram that excludes its mirror band, so the router's
// bin-wise sum counts every vertex exactly once. O(hi-lo) page scans.
func (v *View) HistRangeInto(dst []int64, lo, hi int32) []int64 {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > v.N {
		hi = int32(v.N)
	}
	dst = append(dst[:0], 0)
	for u := lo; u < hi; {
		pg := v.pages[u>>PageBits]
		end := (u &^ pageMask) + int32(len(pg))
		if end > hi {
			end = hi
		}
		for ; u < end; u++ {
			c := pg[u&pageMask]
			for int(c) >= len(dst) {
				dst = append(dst, 0)
			}
			dst[c]++
		}
	}
	return dst
}

// CountCoresAtLeast counts the vertices in the id range [lo, hi) with
// core number >= k (k <= 0 counts every existing vertex of the range).
// The range is clamped to [0, N). O(hi-lo), allocation-free — the
// range-restricted CORE.KVERT the cluster router sums across shards.
func (v *View) CountCoresAtLeast(k, lo, hi int32) int64 {
	if lo < 0 {
		lo = 0
	}
	if int(hi) > v.N {
		hi = int32(v.N)
	}
	if hi <= lo {
		return 0
	}
	if k <= 0 {
		return int64(hi - lo)
	}
	var count int64
	for u := lo; u < hi; {
		pg := v.pages[u>>PageBits]
		end := (u &^ pageMask) + int32(len(pg))
		if end > hi {
			end = hi
		}
		for ; u < end; u++ {
			if pg[u&pageMask] >= k {
				count++
			}
		}
	}
	return count
}

// VertexCore names one vertex of a batch's changed set V* together with
// its post-batch core number. The pre-batch value is not needed: the
// publisher reads it from the page being patched.
type VertexCore struct {
	V    int32 // vertex id
	Core int32 // core number at batch quiescence
}

// BuildDelta turns a batch's raw changed-vertex report (a ⋃V* that may
// repeat vertices) into PublishDelta input: duplicates are dropped and
// each distinct vertex is paired with its quiescent core number via
// coreOf. ok is false when the distinct set is a sizable fraction of the
// n-vertex graph (≥ n/4) — there a full rebuild is at least as cheap and
// the caller should Publish instead; the loop bails out the moment the
// threshold is crossed, so the fallback case never pays the full dedup.
// Centralizing this keeps the dedup and fallback policy identical across
// the engine families.
func BuildDelta(changed []int32, n int, coreOf func(int32) int32) (delta []VertexCore, ok bool) {
	hint := len(changed)
	if limit := n/4 + 1; hint > limit {
		hint = limit
	}
	seen := make(map[int32]struct{}, hint)
	delta = make([]VertexCore, 0, hint)
	for _, v := range changed {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		delta = append(delta, VertexCore{V: v, Core: coreOf(v)})
		if len(delta)*4 >= n {
			return nil, false
		}
	}
	return delta, true
}

// Dedup drops repeated vertex ids in place, keeping first-seen order.
// BuildDelta skips duplicates on its own (and its n/4 rebuild-fallback
// threshold already counts distinct vertices only), so engines are not
// required to call this for correctness; it exists so batch engines that
// touch a vertex at several levels can report a distinct Changed set —
// a stable contract for Stats consumers — and shrink the report before
// it crosses the publisher boundary.
func Dedup(changed []int32) []int32 {
	if len(changed) < 2 {
		return changed
	}
	seen := make(map[int32]struct{}, len(changed))
	out := changed[:0]
	for _, v := range changed {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// PubStats counts publications by kind. DirtyPages accumulates the pages
// cloned by delta publications; DirtyPages/Delta is the mean write
// amplification of the copy-on-write path.
type PubStats struct {
	Full       int64
	Delta      int64
	Unchanged  int64
	Grow       int64
	DirtyPages int64
}

// Publisher owns the current View of one maintained graph. The zero value
// is ready to use; Current returns nil until the first Publish.
type Publisher struct {
	cur   atomic.Pointer[View]
	epoch atomic.Uint64

	full       atomic.Int64
	delta      atomic.Int64
	unchanged  atomic.Int64
	grow       atomic.Int64
	dirtyPages atomic.Int64
}

// Publish derives the aggregate fields from cores, stamps the next epoch,
// and installs the View as current — the O(n) full rebuild. Publish must
// only run at quiescence (no concurrent engine mutation); it takes
// ownership of cores, which becomes the backing store of the pages.
func (p *Publisher) Publish(cores []int32, m int64) *View {
	numPages := (len(cores) + PageSize - 1) / PageSize
	pages := make([][]int32, numPages)
	for i := range pages {
		lo := i << PageBits
		hi := lo + PageSize
		if hi > len(cores) {
			hi = len(cores)
		}
		pages[i] = cores[lo:hi:hi]
	}
	hist := bz.CoreHistogram(cores) // one fused pass; len = MaxCore+1
	v := &View{
		Epoch:   p.epoch.Add(1),
		pages:   pages,
		MaxCore: int32(len(hist)) - 1,
		Hist:    hist,
		N:       len(cores),
		M:       m,
	}
	p.cur.Store(v)
	p.full.Add(1)
	return v
}

// PublishUnchanged installs a fresh View that reuses the current View's
// page table and aggregates, updating only the epoch and edge count — an
// O(1) publication for batches that changed no core number. The caller
// must guarantee no core number changed since the last Publish; must only
// run at quiescence, after at least one Publish.
func (p *Publisher) PublishUnchanged(m int64) *View {
	old := p.cur.Load()
	v := &View{
		Epoch:   p.epoch.Add(1),
		pages:   old.pages,
		MaxCore: old.MaxCore,
		Hist:    old.Hist,
		N:       old.N,
		M:       m,
	}
	p.cur.Store(v)
	p.unchanged.Add(1)
	return v
}

// PublishGrow installs a fresh View whose vertex universe is extended to
// newN vertices, all new ones entering at core 0. Like PublishDelta it is
// copy-on-write: the page table is re-sliced, a short last page is cloned
// and zero-extended, fresh zero pages cover the new tail, and Hist[0] is
// bumped by the number of minted vertices — O(newPages + n/PageSize),
// never an O(n) rebuild. Views published earlier keep their shorter page
// table and N untouched. Must only run at quiescence, after at least one
// Publish; newN at or below the current N republishes unchanged.
func (p *Publisher) PublishGrow(newN int, m int64) *View {
	old := p.cur.Load()
	if newN <= old.N {
		return p.PublishUnchanged(m)
	}
	numPages := (newN + PageSize - 1) / PageSize
	pages := make([][]int32, numPages)
	copy(pages, old.pages)
	// fullLen returns the capacity page i must have to cover the new N.
	fullLen := func(i int) int {
		if hi := (i + 1) << PageBits; hi > newN {
			return newN - i<<PageBits
		}
		return PageSize
	}
	if last := len(old.pages) - 1; last >= 0 && len(old.pages[last]) < fullLen(last) {
		// The old last page was short (old.N not page-aligned): clone and
		// zero-extend it, leaving the shared original untouched.
		np := make([]int32, fullLen(last))
		copy(np, old.pages[last])
		pages[last] = np
	}
	for i := len(old.pages); i < numPages; i++ {
		pages[i] = make([]int32, fullLen(i))
	}
	hist := append(make([]int64, 0, len(old.Hist)), old.Hist...)
	hist[0] += int64(newN - old.N)
	v := &View{
		Epoch:   p.epoch.Add(1),
		pages:   pages,
		MaxCore: old.MaxCore,
		Hist:    hist,
		N:       newN,
		M:       m,
	}
	p.cur.Store(v)
	p.grow.Add(1)
	return v
}

// PublishDelta installs a fresh View derived copy-on-write from the
// current one: only the pages containing a changed vertex are cloned and
// patched, Hist is adjusted by ±1 per (oldCore, newCore) pair, and
// MaxCore is re-derived from the patched histogram. Cost is
// O(len(changed) + dirtyPages·PageSize + n/PageSize), independent of n's
// linear term — the point of the paper's |V*|-proportional maintenance.
//
// changed must cover every vertex whose core number differs from the
// current View, with its quiescent core number; duplicate entries and
// entries whose core did not change (e.g. a vertex that dropped and was
// re-promoted within one batch) are skipped harmlessly. Must only run at
// quiescence, after at least one Publish.
func (p *Publisher) PublishDelta(changed []VertexCore, m int64) *View {
	old := p.cur.Load()
	pages := make([][]int32, len(old.pages))
	copy(pages, old.pages)
	hist := old.Hist
	histCopied := false
	dirtied := make([]bool, len(pages))
	dirty := 0
	for _, c := range changed {
		pi := c.V >> PageBits
		off := c.V & pageMask
		oldCore := pages[pi][off]
		if oldCore == c.Core {
			continue
		}
		if !dirtied[pi] {
			dirtied[pi] = true
			dirty++
			pages[pi] = append(make([]int32, 0, cap(pages[pi])), pages[pi]...)
		}
		if !histCopied {
			histCopied = true
			hist = append(make([]int64, 0, len(old.Hist)+1), old.Hist...)
		}
		pages[pi][off] = c.Core
		hist[oldCore]--
		for int(c.Core) >= len(hist) {
			hist = append(hist, 0)
		}
		hist[c.Core]++
	}
	// Keep the invariant len(Hist) = MaxCore+1: drop bins emptied by the
	// batch (re-slicing only; shared arrays are never written).
	for len(hist) > 1 && hist[len(hist)-1] == 0 {
		hist = hist[:len(hist)-1]
	}
	v := &View{
		Epoch:   p.epoch.Add(1),
		pages:   pages,
		MaxCore: int32(len(hist)) - 1,
		Hist:    hist,
		N:       old.N,
		M:       m,
	}
	p.cur.Store(v)
	p.delta.Add(1)
	p.dirtyPages.Add(int64(dirty))
	return v
}

// Current returns the most recently published View, or nil before the
// first Publish. Safe for concurrent use.
func (p *Publisher) Current() *View { return p.cur.Load() }

// Stats returns the publication counters. Safe for concurrent use.
func (p *Publisher) Stats() PubStats {
	return PubStats{
		Full:       p.full.Load(),
		Delta:      p.delta.Load(),
		Unchanged:  p.unchanged.Load(),
		Grow:       p.grow.Load(),
		DirtyPages: p.dirtyPages.Load(),
	}
}
