// Package snapshot provides epoch-versioned immutable views of a core
// decomposition. The serving layer publishes a View at batch quiescence;
// queries load the current View through an atomic pointer and never touch
// live engine state, so reads are lock-free and never block behind an
// in-flight batch.
package snapshot

import (
	"sync/atomic"

	"repro/internal/bz"
)

// View is one immutable snapshot of a core decomposition. All fields are
// written once, before the View is published; readers must treat the
// slices as read-only.
type View struct {
	// Epoch increases by one with every published View; it never repeats
	// or decreases for a given Publisher.
	Epoch uint64
	// Cores[v] is the core number of v at publication time.
	Cores []int32
	// MaxCore is the largest value in Cores.
	MaxCore int32
	// Hist[k] counts the vertices with core number k.
	Hist []int64
	// N and M are the vertex and edge counts at publication time.
	N int
	M int64
}

// Publisher owns the current View of one maintained graph. The zero value
// is ready to use; Current returns nil until the first Publish.
type Publisher struct {
	cur   atomic.Pointer[View]
	epoch atomic.Uint64
}

// Publish derives the aggregate fields from cores, stamps the next epoch,
// and installs the View as current. Publish must only run at quiescence
// (no concurrent engine mutation); it takes ownership of cores.
func (p *Publisher) Publish(cores []int32, m int64) *View {
	v := &View{
		Epoch:   p.epoch.Add(1),
		Cores:   cores,
		MaxCore: bz.MaxCore(cores),
		Hist:    bz.CoreHistogram(cores),
		N:       len(cores),
		M:       m,
	}
	p.cur.Store(v)
	return v
}

// PublishUnchanged installs a fresh View that reuses the current View's
// core arrays and aggregates, updating only the epoch and edge count — an
// O(1) publication for batches that changed no core number. The caller
// must guarantee no core number changed since the last Publish; must only
// run at quiescence, after at least one Publish.
func (p *Publisher) PublishUnchanged(m int64) *View {
	old := p.cur.Load()
	v := &View{
		Epoch:   p.epoch.Add(1),
		Cores:   old.Cores,
		MaxCore: old.MaxCore,
		Hist:    old.Hist,
		N:       old.N,
		M:       m,
	}
	p.cur.Store(v)
	return v
}

// Current returns the most recently published View, or nil before the
// first Publish. Safe for concurrent use.
func (p *Publisher) Current() *View { return p.cur.Load() }
