package om

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newItem(id int32) *Item { return &Item{ID: id} }

func TestEmptyList(t *testing.T) {
	l := NewList(0)
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAfterSentinelOrders(t *testing.T) {
	l := NewList(0)
	a, b, c := newItem(0), newItem(1), newItem(2)
	l.InsertAtHead(a)   // a
	l.InsertAfter(a, c) // a c
	l.InsertAfter(a, b) // a b c
	for _, tc := range []struct {
		x, y *Item
		want bool
	}{
		{a, b, true}, {b, c, true}, {a, c, true},
		{b, a, false}, {c, b, false}, {c, a, false},
		{a, a, false},
	} {
		if got := l.Order(tc.x, tc.y); got != tc.want {
			t.Fatalf("Order(%d,%d) = %v, want %v", tc.x.ID, tc.y.ID, got, tc.want)
		}
	}
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAtHeadPrependsBeforeAll(t *testing.T) {
	l := NewList(0)
	var prev *Item
	for i := int32(0); i < 20; i++ {
		it := newItem(i)
		l.InsertAtHead(it)
		if prev != nil && !l.Order(it, prev) {
			t.Fatalf("item %d must precede previously inserted head %d", it.ID, prev.ID)
		}
		prev = it
	}
}

func TestInsertAtTailAppendsAfterAll(t *testing.T) {
	l := NewList(0)
	var prev *Item
	for i := int32(0); i < 20; i++ {
		it := newItem(i)
		l.InsertAtTail(it)
		if prev != nil && !l.Order(prev, it) {
			t.Fatalf("tail item %d must follow %d", it.ID, prev.ID)
		}
		prev = it
	}
	items, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.ID != int32(i) {
			t.Fatalf("position %d holds %d", i, it.ID)
		}
	}
}

func TestDeleteUnlinksAndFrees(t *testing.T) {
	l := NewList(0)
	a, b, c := newItem(0), newItem(1), newItem(2)
	l.InsertAtTail(a)
	l.InsertAtTail(b)
	l.InsertAtTail(c)
	l.Delete(b)
	if b.InList() {
		t.Fatal("deleted item still reports InList")
	}
	if !l.Order(a, c) {
		t.Fatal("a must still precede c")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	// b is free and can be reinserted, even into another list.
	l2 := NewList(0)
	l2.InsertAtHead(b)
	if !b.InList() {
		t.Fatal("reinserted item must report InList")
	}
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSentinelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewList(0)
	l.Delete(l.Sentinel())
}

func TestDoubleInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewList(0)
	a := newItem(0)
	l.InsertAtHead(a)
	l.InsertAtHead(a)
}

func TestDeleteFreeItemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewList(0)
	l.Delete(newItem(0))
}

// Dense head insertion forces repeated splits and bottom renumbering with a
// tiny group cap; the order must match LIFO insertion order.
func TestManyHeadInsertsForcesSplits(t *testing.T) {
	l := NewList(4)
	const n = 1000
	items := make([]*Item, n)
	for i := int32(0); i < n; i++ {
		items[i] = newItem(i)
		l.InsertAtHead(items[i])
	}
	got, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, it := range got {
		if it.ID != int32(n-1-i) {
			t.Fatalf("position %d holds %d, want %d", i, it.ID, n-1-i)
		}
	}
	if l.Relabels() == 0 {
		t.Fatal("expected relabels with group cap 4 and 1000 head inserts")
	}
}

// Always inserting after the same anchor exhausts the local bottom-label gap
// quickly and stresses renumber/split interplay.
func TestHotspotInsertAfterSameAnchor(t *testing.T) {
	l := NewList(8)
	anchor := newItem(0)
	l.InsertAtHead(anchor)
	const n = 2000
	var prev *Item
	for i := int32(1); i <= n; i++ {
		it := newItem(i)
		l.InsertAfter(anchor, it)
		if !l.Order(anchor, it) {
			t.Fatalf("anchor must precede %d", i)
		}
		if prev != nil && !l.Order(it, prev) {
			t.Fatalf("later hotspot insert %d must precede earlier %d", it.ID, prev.ID)
		}
		prev = it
	}
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// reference model: a plain slice.
type refList struct{ ids []int32 }

func (r *refList) insertAfter(x, y int32) {
	if x == -1 {
		r.ids = append([]int32{y}, r.ids...)
		return
	}
	for i, id := range r.ids {
		if id == x {
			r.ids = append(r.ids[:i+1], append([]int32{y}, r.ids[i+1:]...)...)
			return
		}
	}
	panic("anchor not found")
}

func (r *refList) delete(x int32) {
	for i, id := range r.ids {
		if id == x {
			r.ids = append(r.ids[:i], r.ids[i+1:]...)
			return
		}
	}
	panic("not found")
}

// Property: under a random sequence of InsertAfter/InsertAtTail/Delete, the
// OM list agrees with a reference slice, and Order agrees for random pairs.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewList(4 + rng.Intn(12))
		ref := &refList{}
		live := map[int32]*Item{}
		next := int32(0)
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(ref.ids) == 0: // insert after random live item or head
				y := newItem(next)
				next++
				if len(ref.ids) == 0 || rng.Intn(4) == 0 {
					l.InsertAtHead(y)
					ref.insertAfter(-1, y.ID)
				} else {
					x := ref.ids[rng.Intn(len(ref.ids))]
					l.InsertAfter(live[x], y)
					ref.insertAfter(x, y.ID)
				}
				live[y.ID] = y
			case op < 7: // tail append
				y := newItem(next)
				next++
				l.InsertAtTail(y)
				ref.ids = append(ref.ids, y.ID)
				live[y.ID] = y
			default: // delete
				x := ref.ids[rng.Intn(len(ref.ids))]
				l.Delete(live[x])
				ref.delete(x)
				delete(live, x)
			}
		}
		got, err := l.Check()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(got) != len(ref.ids) {
			return false
		}
		for i, it := range got {
			if it.ID != ref.ids[i] {
				t.Logf("seed %d: position %d = %d, want %d", seed, i, it.ID, ref.ids[i])
				return false
			}
		}
		// Order agrees with reference positions for sampled pairs.
		pos := map[int32]int{}
		for i, id := range ref.ids {
			pos[id] = i
		}
		for k := 0; k < 100 && len(ref.ids) >= 2; k++ {
			a := ref.ids[rng.Intn(len(ref.ids))]
			b := ref.ids[rng.Intn(len(ref.ids))]
			if a == b {
				continue
			}
			if l.Order(live[a], live[b]) != (pos[a] < pos[b]) {
				t.Logf("seed %d: Order(%d,%d) disagrees", seed, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: labels exposed via Labels are lexicographically consistent with
// Order for every adjacent pair after arbitrary churn.
func TestQuickLabelMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewList(4)
		var items []*Item
		for i := int32(0); i < 300; i++ {
			it := newItem(i)
			if len(items) == 0 || rng.Intn(2) == 0 {
				l.InsertAtHead(it)
			} else {
				l.InsertAfter(items[rng.Intn(len(items))], it)
			}
			items = append(items, it)
		}
		ordered, err := l.Check()
		if err != nil {
			return false
		}
		var plt, plb uint64
		for i, it := range ordered {
			lt, lb, _, ok := l.Labels(it)
			if !ok {
				return false
			}
			if i > 0 && !(plt < lt || (plt == lt && plb < lb)) {
				t.Logf("seed %d: labels not increasing at %d", seed, i)
				return false
			}
			plt, plb = lt, lb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers calling Order while one writer churns inserts/deletes:
// the lock-free Order must never return results that contradict a pair whose
// relative position is pinned for the whole test.
func TestConcurrentOrderDuringChurn(t *testing.T) {
	l := NewList(4)
	lo, hi := newItem(-10), newItem(-20)
	l.InsertAtHead(hi)
	l.InsertAtHead(lo) // lo before hi, forever
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !l.Order(lo, hi) || l.Order(hi, lo) {
					panic("order of pinned pair violated")
				}
			}
		}()
	}
	// Writer: churn items between lo and hi, forcing relabels.
	rng := rand.New(rand.NewSource(1))
	var churn []*Item
	deadline := time.Now().Add(500 * time.Millisecond)
	next := int32(0)
	for time.Now().Before(deadline) {
		if len(churn) < 200 || rng.Intn(2) == 0 {
			it := newItem(next)
			next++
			l.InsertAfter(lo, it)
			churn = append(churn, it)
		} else {
			i := rng.Intn(len(churn))
			l.Delete(churn[i])
			churn[i] = churn[len(churn)-1]
			churn = churn[:len(churn)-1]
		}
	}
	close(stop)
	wg.Wait()
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent writers on the same list must serialize correctly.
func TestConcurrentInsertDelete(t *testing.T) {
	l := NewList(8)
	const workers, perWorker = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []*Item
			for i := 0; i < perWorker; i++ {
				if len(mine) == 0 || rng.Intn(3) > 0 {
					it := newItem(int32(w*perWorker + i))
					if rng.Intn(2) == 0 {
						l.InsertAtHead(it)
					} else {
						l.InsertAtTail(it)
					}
					mine = append(mine, it)
				} else {
					j := rng.Intn(len(mine))
					l.Delete(mine[j])
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionIsEvenAtQuiescence(t *testing.T) {
	l := NewList(4)
	for i := int32(0); i < 500; i++ {
		l.InsertAtHead(newItem(i))
	}
	if v := l.Version(); v&1 != 0 {
		t.Fatalf("version %d is odd at quiescence", v)
	}
}

func TestLabelsReportsNotOKForFreeItem(t *testing.T) {
	l := NewList(0)
	if _, _, _, ok := l.Labels(newItem(0)); ok {
		t.Fatal("Labels of a free item must not be ok")
	}
}

func BenchmarkOrder(b *testing.B) {
	l := NewList(0)
	items := make([]*Item, 1024)
	for i := range items {
		items[i] = newItem(int32(i))
		l.InsertAtTail(items[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Order(items[i%1024], items[(i*7+13)%1024])
	}
}

func BenchmarkInsertDeleteHead(b *testing.B) {
	l := NewList(0)
	it := newItem(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsertAtHead(it)
		l.Delete(it)
	}
}

func BenchmarkInsertTailChurn(b *testing.B) {
	l := NewList(0)
	items := make([]*Item, b.N)
	for i := range items {
		items[i] = newItem(int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InsertAtTail(items[i])
	}
}

// Regression: repeated tail appends with a tiny group cap drive group labels
// toward the top of the label space; splits there must renumber rather than
// mint duplicate group labels (which silently corrupt Order).
func TestTailSplitLabelExhaustion(t *testing.T) {
	l := NewList(4)
	var items []*Item
	for i := int32(0); i < 2000; i++ {
		it := newItem(i)
		l.InsertAtTail(it)
		items = append(items, it)
	}
	walk, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(walk); i++ {
		if !l.Order(walk[i-1], walk[i]) {
			t.Fatalf("Order disagrees with walk at position %d (%d vs %d)", i, walk[i-1].ID, walk[i].ID)
		}
		if l.Order(walk[i], walk[i-1]) {
			t.Fatalf("Order not antisymmetric at position %d", i)
		}
	}
	// Labels strictly increase lexicographically across the whole list.
	var plt, plb uint64
	for i, it := range walk {
		lt, lb, _, ok := l.Labels(it)
		if !ok {
			t.Fatalf("labels not ok at %d", i)
		}
		if i > 0 && !(plt < lt || (plt == lt && plb < lb)) {
			t.Fatalf("labels not increasing at position %d: (%d,%d) after (%d,%d)", i, lt, lb, plt, plb)
		}
		plt, plb = lt, lb
	}
}

// Regression: interleaved head and tail churn with deletions must keep
// Order consistent with the walk (exercises rebalance fallbacks).
func TestHeadTailChurnOrderConsistency(t *testing.T) {
	l := NewList(4)
	rng := rand.New(rand.NewSource(5))
	var live []*Item
	next := int32(0)
	for step := 0; step < 5000; step++ {
		switch {
		case len(live) < 10 || rng.Intn(3) > 0:
			it := newItem(next)
			next++
			if rng.Intn(2) == 0 {
				l.InsertAtTail(it)
			} else {
				l.InsertAtHead(it)
			}
			live = append(live, it)
		default:
			i := rng.Intn(len(live))
			l.Delete(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	walk, err := l.Check()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(walk); i++ {
		if !l.Order(walk[i-1], walk[i]) {
			t.Fatalf("Order disagrees with walk at position %d", i)
		}
	}
}
