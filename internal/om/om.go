// Package om implements the two-level Order-Maintenance (OM) data structure
// of Dietz–Sleator / Bender et al. used by the Simplified-Order and
// Parallel-Order core maintenance algorithms (paper §3.4, [26], [37-39]).
//
// A List maintains a total order of items under three operations:
//
//   - Order(x, y): does x precede y? O(1), lock-free.
//   - InsertAfter(x, y): insert y right after x. Amortized O(1), locked.
//   - Delete(x): remove x. O(1), locked.
//
// Items are stored in bottom-level groups; groups form the top-level list.
// Every item carries a bottom label (its position inside its group) and every
// group carries a top label. x precedes y iff (Lt(x), Lb(x)) < (Lt(y), Lb(y))
// lexicographically. When an insertion finds no label space, a relabel is
// triggered: a full group splits in two, and when there is no top-label gap
// for the new group, successor group labels are rebalanced with the j²
// threshold walk described in the paper.
//
// Concurrency contract (matching the parallel OM of [26] at the granularity
// discussed in DESIGN.md): structural operations (InsertAfter, Delete, and
// the relabels they trigger) serialize on a per-list mutex; Order is
// lock-free and validates its label reads against a seqlock-style version
// counter that relabels bump (odd while a relabel is in flight). Callers that
// move an item between lists must prevent concurrent Order calls on that item
// via their own protocol — the core maintenance algorithms do this with the
// per-vertex status counter s (Algorithm 6).
package om

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// labelSpan bounds both top (group) and bottom (item) labels. Labels
	// live in [0, labelSpan); midpoint insertion never overflows uint64.
	labelSpan uint64 = 1 << 62

	// DefaultGroupCap is the default maximum number of items per group.
	// The paper sizes groups at Θ(log N); 48 covers N well beyond 10^9
	// while keeping splits cheap.
	DefaultGroupCap = 48
)

// Item is an element of a List. A zero-value Item is free (in no list).
// The same Item is intended to be reused as its payload moves between
// k-order lists: Delete from one list, InsertAfter into another.
type Item struct {
	// ID is an opaque payload identifier (the vertex id in core
	// maintenance). Sentinels use -1.
	ID int32

	prev, next *Item
	group      atomic.Pointer[group]
	label      atomic.Uint64
}

// InList reports whether the item is currently linked into a list.
func (it *Item) InList() bool { return it.group.Load() != nil }

type group struct {
	label      atomic.Uint64
	prev, next *group
	first      *Item // first item of the group in list order
	count      int
}

// List is an order-maintenance list. Use NewList to create one.
type List struct {
	mu       sync.Mutex
	ver      atomic.Uint64 // seqlock: odd while a relabel is in progress
	sentinel Item          // immortal first item, anchors the head group
	last     *Item         // last item in list order (the sentinel if empty)
	groupCap int
	size     int // number of user items (sentinel excluded)
	relabels uint64
}

// NewList returns an empty list whose groups hold at most groupCap items;
// groupCap <= 0 selects DefaultGroupCap.
func NewList(groupCap int) *List {
	if groupCap <= 0 {
		groupCap = DefaultGroupCap
	}
	if groupCap < 4 {
		groupCap = 4
	}
	l := &List{groupCap: groupCap}
	g := &group{count: 1}
	g.first = &l.sentinel
	l.sentinel.ID = -1
	l.sentinel.group.Store(g)
	l.last = &l.sentinel
	return l
}

// Len returns the number of items in the list (sentinel excluded).
func (l *List) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Sentinel returns the immortal anchor item that precedes every user item.
// Use it with InsertAfter to insert at the head of the list.
func (l *List) Sentinel() *Item { return &l.sentinel }

// Version returns the current relabel version. Odd values mean a relabel is
// in progress. The versioned priority queue of Algorithm 9 uses this to keep
// cached labels coherent.
func (l *List) Version() uint64 { return l.ver.Load() }

// Relabels returns the number of relabel events (splits and rebalances) the
// list has performed; exposed for tests and ablation benchmarks.
func (l *List) Relabels() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.relabels
}

// Order reports whether x precedes y in the list. x and y must both be
// linked into this list for the duration of the call (enforced by the
// caller's status protocol). Order is lock-free: it validates label reads
// against the relabel version and retries on interference.
func (l *List) Order(x, y *Item) bool {
	if x == y {
		return false
	}
	for {
		v := l.ver.Load()
		if v&1 == 1 {
			runtime.Gosched()
			continue
		}
		gx := x.group.Load()
		gy := y.group.Load()
		if gx == nil || gy == nil {
			// The item is mid-move between lists; wait for the
			// caller protocol to finish reinserting it.
			runtime.Gosched()
			continue
		}
		var r bool
		if gx == gy {
			r = x.label.Load() < y.label.Load()
		} else {
			r = gx.label.Load() < gy.label.Load()
		}
		if l.ver.Load() == v {
			return r
		}
	}
}

// Labels returns a snapshot (top label, bottom label) of x plus the list
// version the snapshot was taken at. ok is false when the snapshot raced
// with a relabel or the item is not in a list; callers should retry or mark
// their cache dirty (Algorithm 10).
func (l *List) Labels(x *Item) (lt, lb, ver uint64, ok bool) {
	v := l.ver.Load()
	if v&1 == 1 {
		return 0, 0, v, false
	}
	g := x.group.Load()
	if g == nil {
		return 0, 0, v, false
	}
	lt = g.label.Load()
	lb = x.label.Load()
	if l.ver.Load() != v {
		return 0, 0, v, false
	}
	return lt, lb, v, true
}

// InsertAfter inserts the free item y immediately after x, which must be in
// this list (the sentinel is allowed). Amortized O(1); may trigger a split
// and a top-label rebalance.
func (l *List) InsertAfter(x, y *Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.insertAfterLocked(x, y)
}

func (l *List) insertAfterLocked(x, y *Item) {
	if y.group.Load() != nil {
		panic("om: InsertAfter of item already in a list")
	}
	g := x.group.Load()
	if g == nil {
		panic("om: InsertAfter anchor not in a list")
	}
	if g.count >= l.groupCap {
		l.split(g)
		g = x.group.Load()
	}
	// Bottom-label space between x and its successor within the group.
	bound := labelSpan
	if x.next != nil && x.next.group.Load() == g {
		bound = x.next.label.Load()
	}
	if bound-x.label.Load() < 2 {
		l.renumberGroup(g)
		if x.next != nil && x.next.group.Load() == g {
			bound = x.next.label.Load()
		} else {
			bound = labelSpan
		}
	}
	xl := x.label.Load()
	y.label.Store(xl + (bound-xl)/2)
	y.group.Store(g)
	y.prev = x
	y.next = x.next
	if x.next != nil {
		x.next.prev = y
	}
	x.next = y
	if l.last == x {
		l.last = y
	}
	g.count++
	l.size++
}

// InsertAtHead inserts y as the first user item of the list.
func (l *List) InsertAtHead(y *Item) { l.InsertAfter(&l.sentinel, y) }

// InsertAtTail appends y as the last item of the list.
func (l *List) InsertAtTail(y *Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.insertAfterLocked(l.last, y)
}

// Delete unlinks x from the list. x becomes free and may be reinserted into
// any list. O(1). Deleting the sentinel panics.
func (l *List) Delete(x *Item) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if x == &l.sentinel {
		panic("om: Delete of sentinel")
	}
	g := x.group.Load()
	if g == nil {
		panic("om: Delete of item not in a list")
	}
	if g.first == x {
		if x.next != nil && x.next.group.Load() == g {
			g.first = x.next
		} else {
			g.first = nil
		}
	}
	x.prev.next = x.next
	if x.next != nil {
		x.next.prev = x.prev
	}
	if l.last == x {
		l.last = x.prev
	}
	g.count--
	if g.count == 0 {
		// Unlink the now-empty group (the head group always retains
		// the sentinel, so g has a predecessor).
		g.prev.next = g.next
		if g.next != nil {
			g.next.prev = g.prev
		}
	}
	x.prev, x.next = nil, nil
	x.group.Store(nil)
	l.size--
}

// split divides the full group g in two, moving its upper half into a fresh
// group inserted right after g, then renumbers bottom labels of both halves.
// Caller holds l.mu.
func (l *List) split(g *group) {
	l.ver.Add(1) // seqlock: enter relabel
	defer l.ver.Add(1)
	l.relabels++

	// Ensure top-label space after g. The local j²-walk rebalance makes
	// room in the common case; when g sits at the very top of the label
	// space (repeated tail splits halve the headroom until it is gone,
	// and the walk finds no successors to spread) fall back to an even
	// renumbering of every group.
	bound := labelSpan
	if g.next != nil {
		bound = g.next.label.Load()
	}
	if bound-g.label.Load() < 2 {
		l.rebalance(g)
		if g.next != nil {
			bound = g.next.label.Load()
		} else {
			bound = labelSpan
		}
		if bound-g.label.Load() < 2 {
			l.renumberAllGroups()
			if g.next != nil {
				bound = g.next.label.Load()
			} else {
				bound = labelSpan
			}
		}
	}
	gl := g.label.Load()
	ng := &group{}
	ng.label.Store(gl + (bound-gl)/2)
	ng.prev = g
	ng.next = g.next
	if g.next != nil {
		g.next.prev = ng
	}
	g.next = ng

	// Move the upper half of g's items into ng.
	keep := g.count / 2
	if keep < 1 {
		keep = 1
	}
	it := g.first
	for i := 1; i < keep; i++ {
		it = it.next
	}
	moved := g.count - keep
	first := it.next
	ng.first = first
	ng.count = moved
	g.count = keep
	for m, i := first, 0; i < moved; m, i = m.next, i+1 {
		m.group.Store(ng)
	}
	l.renumberGroupLocked(g)
	l.renumberGroupLocked(ng)
}

// renumberGroup evenly redistributes the bottom labels of g's items. Caller
// holds l.mu; wraps the seqlock for callers outside a relabel.
func (l *List) renumberGroup(g *group) {
	l.ver.Add(1)
	defer l.ver.Add(1)
	l.relabels++
	l.renumberGroupLocked(g)
}

func (l *List) renumberGroupLocked(g *group) {
	if g.count == 0 {
		return
	}
	gap := labelSpan / uint64(g.count+1)
	lb := gap
	// The sentinel must keep the smallest label in its group; even
	// distribution starting at `gap` preserves relative order, and the
	// sentinel, being first, receives the smallest label anyway.
	for it, i := g.first, 0; i < g.count; it, i = it.next, i+1 {
		it.label.Store(lb)
		lb += gap
	}
}

// rebalance makes top-label room after g using the paper's walk: traverse
// successors g' until L(g') − L(g) > j² (j groups walked), then spread the
// walked groups' labels evenly in the opened range. Caller holds l.mu and
// the seqlock is already odd.
func (l *List) rebalance(g *group) {
	base := g.label.Load()
	var walked []*group
	cur := g.next
	bound := labelSpan
	for cur != nil {
		j := uint64(len(walked) + 1)
		if cur.label.Load()-base > j*j {
			bound = cur.label.Load()
			break
		}
		walked = append(walked, cur)
		cur = cur.next
	}
	if len(walked) == 0 {
		// Immediate successor already has a j²-sized gap; nothing to
		// move (the caller re-reads labels).
		return
	}
	gap := (bound - base) / uint64(len(walked)+1)
	if gap < 2 {
		// Label space after g is exhausted locally; renumber every
		// group evenly across the whole span. Rare fallback.
		l.renumberAllGroups()
		return
	}
	lb := base + gap
	for _, w := range walked {
		w.label.Store(lb)
		lb += gap
	}
}

// renumberAllGroups redistributes all group labels evenly across the label
// span. O(#groups); only reached when local rebalancing has no room.
func (l *List) renumberAllGroups() {
	n := 0
	head := l.sentinel.group.Load()
	for g := head; g != nil; g = g.next {
		n++
	}
	gap := labelSpan / uint64(n+1)
	lb := uint64(0)
	for g := head; g != nil; g = g.next {
		g.label.Store(lb)
		lb += gap
	}
}

// Check validates every structural invariant of the list and returns the
// items in order (sentinel excluded). For tests.
func (l *List) Check() ([]*Item, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	head := l.sentinel.group.Load()
	if head == nil || head.first != &l.sentinel {
		return nil, fmt.Errorf("om: head group does not anchor sentinel")
	}
	var items []*Item
	seenItems := 0
	var prevGroupLabel uint64
	firstGroup := true
	var lastItem *Item
	for g := head; g != nil; g = g.next {
		if !firstGroup && g.label.Load() <= prevGroupLabel {
			return nil, fmt.Errorf("om: group labels not increasing (%d after %d)", g.label.Load(), prevGroupLabel)
		}
		firstGroup = false
		prevGroupLabel = g.label.Load()
		if g.count <= 0 {
			return nil, fmt.Errorf("om: empty group linked in list")
		}
		if g.next != nil && g.next.prev != g {
			return nil, fmt.Errorf("om: broken group back-link")
		}
		it := g.first
		var prevLabel uint64
		for i := 0; i < g.count; i++ {
			if it == nil {
				return nil, fmt.Errorf("om: group count exceeds items")
			}
			if it.group.Load() != g {
				return nil, fmt.Errorf("om: item %d has wrong group pointer", it.ID)
			}
			if i > 0 && it.label.Load() <= prevLabel {
				return nil, fmt.Errorf("om: bottom labels not increasing at item %d", it.ID)
			}
			prevLabel = it.label.Load()
			if it != &l.sentinel {
				items = append(items, it)
			}
			seenItems++
			lastItem = it
			if it.next != nil && it.next.prev != it {
				return nil, fmt.Errorf("om: broken item back-link at %d", it.ID)
			}
			it = it.next
		}
		if it != nil && it.group.Load() == g {
			return nil, fmt.Errorf("om: group count smaller than items")
		}
	}
	if seenItems != l.size+1 {
		return nil, fmt.Errorf("om: size %d does not match walked %d", l.size, seenItems-1)
	}
	if l.last != lastItem {
		return nil, fmt.Errorf("om: stale last pointer")
	}
	return items, nil
}
