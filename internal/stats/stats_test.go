package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.String() != "n/a" {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.StdDev != 0 || s.CI95 != 0 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean, 5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if !almostEqual(s.Mean, 2) {
		t.Fatalf("mean = %v ms", s.Mean)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("speedup by zero must be 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int{10, 100, 1000})
	h.AddAll([]int{0, 5, 10, 11, 100, 101, 1000, 1001, 5000})
	want := []int64{3, 2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total != 9 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.BucketLabel(0) != "0-10" || h.BucketLabel(1) != "11-100" || h.BucketLabel(3) != ">1000" {
		t.Fatalf("labels: %q %q %q", h.BucketLabel(0), h.BucketLabel(1), h.BucketLabel(3))
	}
	if !almostEqual(h.Fraction(0), 3.0/9.0) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram([]int{10, 5})
}

// Property: mean is within [min, max] and CI95 is non-negative.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.CI95 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals the number of added observations and
// bucket counts sum to total.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(xs []uint16) bool {
		h := NewHistogram([]int{1, 10, 100, 1000})
		for _, x := range xs {
			h.Add(int(x))
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total && h.Total == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %g", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g", q)
	}
}

// TestQuantileEdgeCases pins the empty and single-sample behavior all
// the way down to quantileSorted: an empty recorder reports 0, a
// single-sample recorder reports the sample for every quantile.
func TestQuantileEdgeCases(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := Quantile(nil, q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
		if got := quantileSorted(nil, q); got != 0 {
			t.Fatalf("empty quantileSorted(%g) = %g, want 0", q, got)
		}
		if got := Quantile([]float64{42}, q); got != 42 {
			t.Fatalf("single-sample Quantile(%g) = %g, want 42", q, got)
		}
		if got := quantileSorted([]float64{42}, q); got != 42 {
			t.Fatalf("single-sample quantileSorted(%g) = %g, want 42", q, got)
		}
	}
	p := ComputePercentiles([]float64{7})
	if p.N != 1 || p.P50 != 7 || p.P90 != 7 || p.P99 != 7 || p.Max != 7 {
		t.Fatalf("single-sample percentiles: %+v", p)
	}
	var r LatencyRecorder
	if got := r.Percentiles(); got.N != 0 || got.P50 != 0 || got.P99 != 0 {
		t.Fatalf("empty recorder percentiles: %+v", got)
	}
	r.RecordValue(3.5)
	if got := r.Percentiles(); got.N != 1 || got.P50 != 3.5 || got.P99 != 3.5 {
		t.Fatalf("single-sample recorder percentiles: %+v", got)
	}
}

func TestComputePercentiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	p := ComputePercentiles(xs)
	if p.N != 100 || p.Max != 100 {
		t.Fatalf("%+v", p)
	}
	if p.P50 < 50 || p.P50 > 51 || p.P99 < 99 || p.P99 > 100 {
		t.Fatalf("%+v", p)
	}
	if ComputePercentiles(nil).N != 0 {
		t.Fatal("empty percentiles must be zero")
	}
}

func TestLatencyRecorderRing(t *testing.T) {
	r := NewLatencyRecorder(4)
	for i := 1; i <= 10; i++ {
		r.RecordValue(float64(i))
	}
	if r.Count() != 10 {
		t.Fatalf("count = %d", r.Count())
	}
	p := r.Percentiles()
	// Only the last 4 samples (7..10) survive the ring.
	if p.N != 4 || p.Max != 10 || p.P50 < 7 {
		t.Fatalf("%+v", p)
	}

	// Zero value must be usable and concurrency-safe.
	var z LatencyRecorder
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				z.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if z.Count() != 200 || z.Percentiles().N != 200 {
		t.Fatalf("zero-value recorder: count=%d %+v", z.Count(), z.Percentiles())
	}
}
