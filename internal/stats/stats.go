// Package stats provides the small statistical toolkit the experiment
// harness needs: means with 95% confidence intervals (the paper reports
// "means with 95% confidence intervals", §6.1), histograms with geometric
// buckets for the Fig. 1 size distributions, and speedup ratios.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the aggregate of a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (normal approximation; the paper repeats runs >= 50 times).
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s
}

// SummarizeDurations converts durations to milliseconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(xs)
}

// String renders "mean ± ci" with adaptive precision.
func (s Summary) String() string {
	if s.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3g ± %.2g", s.Mean, s.CI95)
}

// Speedup returns base/x — how many times faster x is than base.
// Returns 0 when x is 0.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Histogram counts values into buckets; Bounds[i] is the inclusive upper
// bound of bucket i (the last bucket is open-ended).
type Histogram struct {
	Bounds []int
	Counts []int64
	Total  int64
}

// NewHistogram builds a histogram over the given ascending inclusive upper
// bounds; one extra open-ended bucket is appended.
func NewHistogram(bounds []int) *Histogram {
	if !sort.IntsAreSorted(bounds) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{
		Bounds: append([]int(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Add counts one observation.
func (h *Histogram) Add(x int) {
	h.Total++
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// AddAll counts a slice of observations.
func (h *Histogram) AddAll(xs []int) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BucketLabel names bucket i ("0-10", "11-100", ">1000").
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("0-%d", h.Bounds[0])
	case i < len(h.Bounds):
		return fmt.Sprintf("%d-%d", h.Bounds[i-1]+1, h.Bounds[i])
	default:
		return fmt.Sprintf(">%d", h.Bounds[len(h.Bounds)-1])
	}
}

// Fraction returns the share of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
