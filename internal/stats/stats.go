// Package stats provides the small statistical toolkit the experiment
// harness needs: means with 95% confidence intervals (the paper reports
// "means with 95% confidence intervals", §6.1), histograms with geometric
// buckets for the Fig. 1 size distributions, and speedup ratios.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Summary holds the aggregate of a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (normal approximation; the paper repeats runs >= 50 times).
	CI95 float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	return s
}

// SummarizeDurations converts durations to milliseconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(xs)
}

// String renders "mean ± ci" with adaptive precision.
func (s Summary) String() string {
	if s.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3g ± %.2g", s.Mean, s.CI95)
}

// Speedup returns base/x — how many times faster x is than base.
// Returns 0 when x is 0.
func Speedup(base, x float64) float64 {
	if x == 0 {
		return 0
	}
	return base / x
}

// Histogram counts values into buckets; Bounds[i] is the inclusive upper
// bound of bucket i (the last bucket is open-ended).
type Histogram struct {
	Bounds []int
	Counts []int64
	Total  int64
}

// NewHistogram builds a histogram over the given ascending inclusive upper
// bounds; one extra open-ended bucket is appended.
func NewHistogram(bounds []int) *Histogram {
	if !sort.IntsAreSorted(bounds) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{
		Bounds: append([]int(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Add counts one observation.
func (h *Histogram) Add(x int) {
	h.Total++
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// AddAll counts a slice of observations.
func (h *Histogram) AddAll(xs []int) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BucketLabel names bucket i ("0-10", "11-100", ">1000").
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("0-%d", h.Bounds[0])
	case i < len(h.Bounds):
		return fmt.Sprintf("%d-%d", h.Bounds[i-1]+1, h.Bounds[i])
	default:
		return fmt.Sprintf(">%d", h.Bounds[len(h.Bounds)-1])
	}
}

// Fraction returns the share of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs with linear
// interpolation between order statistics. xs need not be sorted; an empty
// sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	// Edge cases first, so the function is safe even when called with a
	// sample the public wrappers did not pre-screen: an empty sample has
	// no order statistics (0), a single sample IS every quantile.
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Percentiles summarizes the tail of a latency sample. Values carry the
// unit of the sample (the serving layer records milliseconds).
type Percentiles struct {
	N             int
	P50, P90, P99 float64
	Max           float64
}

// ComputePercentiles extracts p50/p90/p99/max from xs.
func ComputePercentiles(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Percentiles{
		N:   len(sorted),
		P50: quantileSorted(sorted, 0.50),
		P90: quantileSorted(sorted, 0.90),
		P99: quantileSorted(sorted, 0.99),
		Max: sorted[len(sorted)-1],
	}
}

// String renders "p50=… p90=… p99=… max=… (n=…)".
func (p Percentiles) String() string {
	if p.N == 0 {
		return "n/a"
	}
	return fmt.Sprintf("p50=%.3g p90=%.3g p99=%.3g max=%.3g (n=%d)", p.P50, p.P90, p.P99, p.Max, p.N)
}

// defaultRecorderCap bounds a LatencyRecorder that was not sized explicitly.
const defaultRecorderCap = 4096

// LatencyRecorder collects latency samples into a bounded ring (the most
// recent capacity samples survive) and reports tail percentiles. The zero
// value is ready to use with a default capacity; all methods are safe for
// concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []float64
	next    int
	count   int64
}

// NewLatencyRecorder returns a recorder keeping the last capacity samples.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	if capacity < 1 {
		capacity = defaultRecorderCap
	}
	return &LatencyRecorder{samples: make([]float64, 0, capacity)}
}

// Record adds one duration sample, stored in milliseconds.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.RecordValue(float64(d) / float64(time.Millisecond))
}

// RecordValue adds one sample in the recorder's unit.
func (r *LatencyRecorder) RecordValue(x float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	capacity := cap(r.samples)
	if capacity == 0 {
		r.samples = make([]float64, 0, defaultRecorderCap)
		capacity = defaultRecorderCap
	}
	if len(r.samples) < capacity {
		r.samples = append(r.samples, x)
		return
	}
	r.samples[r.next] = x
	r.next = (r.next + 1) % capacity
}

// Count returns how many samples were ever recorded (including evicted).
func (r *LatencyRecorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Percentiles summarizes the retained samples.
func (r *LatencyRecorder) Percentiles() Percentiles {
	r.mu.Lock()
	xs := append([]float64(nil), r.samples...)
	r.mu.Unlock()
	return ComputePercentiles(xs)
}
