// Package park implements the ParK/PKC-style parallel static k-core
// decomposition (Dasari et al. [28], Kabir & Madduri [29]; paper §2.1):
// level-synchronous peeling where, at each level k, all vertices whose
// residual degree fell to k or below are processed by a pool of workers
// with atomic degree decrements. It is the parallel counterpart of the
// sequential BZ algorithm and an alternative initializer for maintenance
// state at large n.
package park

import (
	"sync"
	"sync/atomic"

	"repro/graph"
)

// Decompose computes all core numbers of g with `workers` goroutines.
// The result is identical to the sequential BZ decomposition.
func Decompose(g *graph.Graph, workers int) []int32 {
	core, _ := DecomposeOrdered(g, workers)
	return core
}

// DecomposeOrdered additionally returns a peeling order that is a valid
// k-order (Definition 3.5): vertices appear grouped by core value, and
// every vertex is emitted while its residual degree is at most its core
// number, so d⁺out(v) ≤ core(v) holds along the order. Workers collect
// per-level frontiers concurrently; concatenation order within one level is
// scheduling-dependent but always valid.
func DecomposeOrdered(g *graph.Graph, workers int) (core []int32, order []int32) {
	n := g.N()
	core = make([]int32, n)
	order = make([]int32, 0, n)
	if n == 0 {
		return core, order
	}
	if workers < 1 {
		workers = 1
	}
	deg := make([]atomic.Int32, n)
	for v := 0; v < n; v++ {
		deg[v].Store(int32(g.Degree(int32(v))))
	}
	processed := 0
	for k := int32(0); processed < n; k++ {
		// Scan phase: collect this level's initial frontier in
		// parallel. A vertex belongs to level k iff its residual
		// degree is <= k and it was not processed at a lower level
		// (its residual degree then sits in (k-1, k], i.e. == k, or
		// below k only at k == its scan level — handled by marking).
		frontier := parallelCollect(n, workers, func(v int32) bool {
			d := deg[v].Load()
			return d >= 0 && d <= k // negative marks processed
		})
		for len(frontier) > 0 {
			for _, v := range frontier {
				// Mark processed by driving the degree negative;
				// racing collectors skip it afterwards.
				deg[v].Store(-1 << 24)
				core[v] = k
			}
			order = append(order, frontier...)
			processed += len(frontier)
			frontier = processFrontier(g, deg, frontier, k, workers)
		}
	}
	return core, order
}

// processFrontier decrements the residual degree of every neighbor of the
// frontier in parallel and returns the vertices that just crossed the level
// threshold. A CAS loop guarantees each neighbor is appended exactly once —
// by the worker whose decrement moved it from k+1 to k.
func processFrontier(g *graph.Graph, deg []atomic.Int32, frontier []int32, k int32, workers int) []int32 {
	next := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []int32
			for i := w; i < len(frontier); i += workers {
				v := frontier[i]
				for _, u := range g.Adj(v) {
					for {
						du := deg[u].Load()
						if du <= k {
							break // processed or already at the level
						}
						if deg[u].CompareAndSwap(du, du-1) {
							if du-1 == k {
								local = append(local, u)
							}
							break
						}
					}
				}
			}
			next[w] = local
		}(w)
	}
	wg.Wait()
	var out []int32
	for _, l := range next {
		out = append(out, l...)
	}
	return out
}

// parallelCollect gathers the vertices satisfying pred, scanned in ranges by
// the worker pool, preserving ascending order within each worker's stripe.
func parallelCollect(n, workers int, pred func(int32) bool) []int32 {
	parts := make([][]int32, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []int32
			for v := int32(lo); v < int32(hi); v++ {
				if pred(v) {
					local = append(local, v)
				}
			}
			parts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var out []int32
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
