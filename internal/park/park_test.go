package park

import (
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

func TestMatchesBZOnSuite(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"er":   gen.ErdosRenyi(500, 2000, 1),
		"ba":   gen.BarabasiAlbert(500, 4, 2),
		"rmat": gen.RMAT(9, 1500, 3),
		"plc":  gen.PowerLawCluster(500, 8, 2.4, 4),
	} {
		want, _ := bz.Decompose(g)
		for _, workers := range []int{1, 4, 8} {
			got := Decompose(g, workers)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s %dw: core[%d] = %d, want %d", name, workers, v, got[v], want[v])
				}
			}
		}
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	if got := Decompose(graph.New(0), 4); len(got) != 0 {
		t.Fatal("empty graph")
	}
	got, order := DecomposeOrdered(graph.New(7), 4)
	if len(order) != 7 {
		t.Fatalf("order len %d", len(order))
	}
	for _, c := range got {
		if c != 0 {
			t.Fatal("isolated vertices must be core 0")
		}
	}
}

func TestOrderedEmitsValidKOrder(t *testing.T) {
	g := gen.RMAT(9, 1500, 7)
	cores, order := DecomposeOrdered(g, 8)
	if len(order) != g.N() {
		t.Fatalf("order has %d entries, want %d", len(order), g.N())
	}
	pos := make([]int, g.N())
	seen := make([]bool, g.N())
	for i, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d twice in order", v)
		}
		seen[v] = true
		pos[v] = i
		if i > 0 && cores[order[i-1]] > cores[v] {
			t.Fatal("core values decrease along the order")
		}
	}
	for v := int32(0); v < int32(g.N()); v++ {
		dout := int32(0)
		for _, w := range g.Adj(v) {
			if pos[v] < pos[w] {
				dout++
			}
		}
		if dout > cores[v] {
			t.Fatalf("d+out(%d) = %d > core %d: invalid k-order", v, dout, cores[v])
		}
	}
}

// Property: ParK agrees with BZ for random graphs and worker counts.
func TestQuickAgainstBZ(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		workers := 1 + int(w%8)
		g := gen.ErdosRenyi(100, 400, seed)
		want, _ := bz.Decompose(g)
		got := Decompose(g, workers)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParKVsBZ(b *testing.B) {
	g := gen.ErdosRenyi(50000, 200000, 1)
	b.Run("BZ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bz.Decompose(g)
		}
	})
	for _, w := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "ParK1", 4: "ParK4", 16: "ParK16"}[w], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Decompose(g, w)
			}
		})
	}
}
