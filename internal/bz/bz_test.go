package bz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
)

// naiveCore computes core numbers by repeated peeling — an independent
// O(n·m) oracle.
func naiveCore(g *graph.Graph) []int32 {
	n := g.N()
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	for k := int32(0); ; k++ {
		for v := 0; v < n; v++ {
			alive[v] = true
			deg[v] = g.Degree(int32(v))
		}
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < int(k) {
					alive[v] = false
					changed = true
					for _, u := range g.Adj(int32(v)) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestDecomposeTriangle(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	core, order := Decompose(g)
	want := []int32{2, 2, 2, 1}
	for v, c := range core {
		if c != want[v] {
			t.Fatalf("core[%d] = %d, want %d", v, c, want[v])
		}
	}
	if len(order) != 4 || order[0] != 3 {
		t.Fatalf("peeling order %v must start with the degree-1 vertex", order)
	}
}

func TestDecomposeClique(t *testing.T) {
	var edges []graph.Edge
	const k = 6
	for u := int32(0); u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g := graph.MustFromEdges(k, edges)
	core, _ := Decompose(g)
	for v, c := range core {
		if c != k-1 {
			t.Fatalf("core[%d] = %d, want %d", v, c, k-1)
		}
	}
}

func TestDecomposeEmptyAndIsolated(t *testing.T) {
	core, order := Decompose(graph.New(0))
	if len(core) != 0 || len(order) != 0 {
		t.Fatal("empty graph must give empty results")
	}
	core, order = Decompose(graph.New(3))
	if len(order) != 3 {
		t.Fatalf("order len = %d", len(order))
	}
	for _, c := range core {
		if c != 0 {
			t.Fatal("isolated vertices have core 0")
		}
	}
}

func TestDecomposePath(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	core, _ := Decompose(g)
	for v, c := range core {
		if c != 1 {
			t.Fatalf("core[%d] = %d, want 1", v, c)
		}
	}
}

func TestDecomposeMatchesNaiveOnSuite(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":   gen.ErdosRenyi(300, 900, 1),
		"ba":   gen.BarabasiAlbert(300, 3, 2),
		"rmat": gen.RMAT(8, 700, 3),
		"ws":   gen.WattsStrogatz(300, 2, 0.2, 4),
		"plc":  gen.PowerLawCluster(300, 6, 2.5, 5),
	}
	for name, g := range graphs {
		want := naiveCore(g)
		got, order := Decompose(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: core[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
		validatePeelingOrder(t, g, got, order, name)
	}
}

// validatePeelingOrder checks that order is a valid k-order: cores are
// non-decreasing along the order, every vertex appears exactly once, and
// d+out(v) := |{w in adj(v): v before w}| <= core(v) for all v (the
// invariant Order-based maintenance relies on, paper §3.3.1).
func validatePeelingOrder(t *testing.T, g *graph.Graph, core []int32, order []int32, name string) {
	t.Helper()
	n := g.N()
	if len(order) != n {
		t.Fatalf("%s: order has %d entries, want %d", name, len(order), n)
	}
	pos := make([]int32, n)
	seen := make([]bool, n)
	for i, v := range order {
		if seen[v] {
			t.Fatalf("%s: vertex %d twice in order", name, v)
		}
		seen[v] = true
		pos[v] = int32(i)
		if i > 0 && core[order[i-1]] > core[v] {
			t.Fatalf("%s: core numbers decrease along order at %d", name, i)
		}
	}
	for v := 0; v < n; v++ {
		dout := int32(0)
		for _, w := range g.Adj(int32(v)) {
			if pos[v] < pos[w] {
				dout++
			}
		}
		if dout > core[v] {
			t.Fatalf("%s: d+out(%d) = %d > core %d: invalid k-order", name, v, dout, core[v])
		}
	}
}

func TestDecomposeWithStrategyMatchesDecompose(t *testing.T) {
	for _, strat := range []TieStrategy{SmallDegreeFirst, LargeDegreeFirst, RandomTie} {
		for seed := int64(0); seed < 3; seed++ {
			g := gen.ErdosRenyi(200, 600, seed+10)
			want, _ := Decompose(g)
			got, order := DecomposeWithStrategy(g, strat, seed)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("strategy %d seed %d: core[%d] = %d, want %d", strat, seed, v, got[v], want[v])
				}
			}
			validatePeelingOrder(t, g, got, order, "strategy")
		}
	}
}

func TestStrategiesProduceValidButDifferentOrders(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	_, o1 := DecomposeWithStrategy(g, SmallDegreeFirst, 0)
	_, o2 := DecomposeWithStrategy(g, LargeDegreeFirst, 0)
	diff := false
	for i := range o1 {
		if o1[i] != o2[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("small- and large-degree-first gave identical orders on a hub graph")
	}
}

func TestMaxCoreAndHistogram(t *testing.T) {
	core := []int32{0, 1, 1, 2, 2, 2}
	if MaxCore(core) != 2 {
		t.Fatalf("MaxCore = %d", MaxCore(core))
	}
	h := CoreHistogram(core)
	if h[0] != 1 || h[1] != 2 || h[2] != 3 {
		t.Fatalf("histogram %v", h)
	}
	if DistinctCores(core) != 3 {
		t.Fatalf("DistinctCores = %d", DistinctCores(core))
	}
}

func TestVerify(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 6)
	core, _ := Decompose(g)
	if !Verify(g, core) {
		t.Fatal("Verify rejected correct cores")
	}
	core[0]++
	if Verify(g, core) {
		t.Fatal("Verify accepted corrupted cores")
	}
}

// Property: decomposition agrees with the naive oracle on random graphs.
func TestQuickDecomposeAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := int64(rng.Intn(3 * n))
		g := gen.ErdosRenyi(n, m, seed)
		want := naiveCore(g)
		got, _ := Decompose(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecomposeER(b *testing.B) {
	g := gen.ErdosRenyi(50000, 200000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g)
	}
}
