// Package bz implements the Batagelj–Zaversnik (BZ) linear-time core
// decomposition (paper §3.1, Algorithm 1). Besides the core numbers it emits
// the peeling sequence, which is exactly the initial k-order ≺ that the
// Order-based maintenance algorithms maintain (Definition 3.5).
//
// Two implementations are provided: Decompose, the classic O(m+n) bin-sort
// version whose processing order is ascending by degree (the "small degree
// first" tie strategy that the paper selects for all experiments), and
// DecomposeWithStrategy, a bucket-queue version with pluggable tie strategy
// used by the tie-strategy ablation benchmark.
package bz

import (
	"math/rand"

	"repro/graph"
)

// TieStrategy selects which vertex to peel when several share the minimal
// current degree (paper §3.3.1).
type TieStrategy int

const (
	// SmallDegreeFirst prefers vertices with smaller initial degree; the
	// paper's experiments use this strategy as it "consistently has the
	// best performance".
	SmallDegreeFirst TieStrategy = iota
	// LargeDegreeFirst prefers vertices with larger initial degree.
	LargeDegreeFirst
	// RandomTie picks uniformly among the candidates.
	RandomTie
)

// Decompose computes the core number of every vertex of g and the peeling
// order (a valid k-order) in O(m + n) time with the bin-sort construction.
func Decompose(g *graph.Graph) (core []int32, order []int32) {
	n := g.N()
	core = make([]int32, n)
	order = make([]int32, 0, n)
	if n == 0 {
		return core, order
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = index in vert of the first vertex with degree d.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of each vertex in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		order = append(order, v)
		for _, u := range g.Adj(v) {
			if deg[u] > deg[v] {
				du := deg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core, order
}

// DecomposeWithStrategy computes core numbers and a peeling order using
// bucket queues with an explicit tie strategy. Core numbers are identical to
// Decompose for every strategy; only the emitted k-order instance differs.
// seed is used by RandomTie only.
func DecomposeWithStrategy(g *graph.Graph, strat TieStrategy, seed int64) (core []int32, order []int32) {
	n := g.N()
	core = make([]int32, n)
	order = make([]int32, 0, n)
	if n == 0 {
		return core, order
	}
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int32, n)
	orig := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		orig[v] = deg[v]
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	processed := 0
	d := int32(0)
	for processed < n {
		if d > maxDeg {
			break
		}
		b := buckets[d]
		if len(b) == 0 {
			d++
			continue
		}
		// Pick the candidate per strategy. Entries may be stale
		// (vertex degree has changed); skip those lazily.
		idx := -1
		switch strat {
		case SmallDegreeFirst, LargeDegreeFirst:
			var best int32
			for i, v := range b {
				if removed[v] || deg[v] != d {
					continue
				}
				if idx == -1 ||
					(strat == SmallDegreeFirst && orig[v] < best) ||
					(strat == LargeDegreeFirst && orig[v] > best) {
					idx, best = i, orig[v]
				}
			}
		case RandomTie:
			liveCount := 0
			for _, v := range b {
				if !removed[v] && deg[v] == d {
					liveCount++
				}
			}
			if liveCount > 0 {
				target := rng.Intn(liveCount)
				for i, v := range b {
					if removed[v] || deg[v] != d {
						continue
					}
					if target == 0 {
						idx = i
						break
					}
					target--
				}
			}
		}
		if idx == -1 {
			buckets[d] = b[:0]
			d++
			continue
		}
		v := b[idx]
		b[idx] = b[len(b)-1]
		buckets[d] = b[:len(b)-1]
		removed[v] = true
		core[v] = d
		order = append(order, v)
		processed++
		for _, u := range g.Adj(v) {
			if !removed[u] && deg[u] > d {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < d {
					panic("bz: degree fell below current level")
				}
			}
		}
	}
	return core, order
}

// MaxCore returns the maximum core number ("Max k" in Table 2).
func MaxCore(core []int32) int32 {
	var m int32
	for _, c := range core {
		if c > m {
			m = c
		}
	}
	return m
}

// CoreHistogram returns how many vertices have each core number; index k
// holds |{v : core(v) = k}|, and the result has length MaxCore+1 (so [0]
// for an empty input). One pass over core: the bins grow on demand instead
// of a separate MaxCore scan sizing them up front. JEI/JER parallelism is
// bounded by the number of distinct non-empty bins (paper §6.2).
func CoreHistogram(core []int32) []int64 {
	h := make([]int64, 1, 64)
	for _, c := range core {
		for int(c) >= len(h) {
			h = append(h, 0)
		}
		h[c]++
	}
	return h
}

// DistinctCores counts non-empty histogram bins.
func DistinctCores(core []int32) int {
	n := 0
	for _, c := range CoreHistogram(core) {
		if c > 0 {
			n++
		}
	}
	return n
}

// Verify checks that claimed core numbers are the true core numbers of g:
// (a) every vertex has at least core(v) neighbors with core >= core(v)
// inside the subgraph induced by {u : core(u) >= core(v)} — established by
// iterative peeling — and (b) the claimed values match a fresh
// decomposition. Returns true on agreement. Intended for tests; O(m + n).
func Verify(g *graph.Graph, claimed []int32) bool {
	truth, _ := Decompose(g)
	if len(truth) != len(claimed) {
		return false
	}
	for v := range truth {
		if truth[v] != claimed[v] {
			return false
		}
	}
	return true
}
