package pcore

import (
	"math/rand"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/core"
)

// TestStressAlternatingFamilies runs many rounds of alternating 8-worker
// batches over three graph families, checking every invariant between
// batches. Heavier than the quick property test; skipped with -short.
func TestStressAlternatingFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		switch seed % 3 {
		case 0:
			g = gen.PowerLawCluster(400, 7, 2.4, seed)
		case 1:
			g = gen.BarabasiAlbert(400, 4, seed)
		default:
			g = gen.RMAT(9, 2000, seed)
		}
		st := core.NewState(g)
		for round := 0; round < 4; round++ {
			ins := gen.SampleNonEdges(st.G, 120, rng.Int63())
			InsertEdges(st, ins, 8)
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("seed %d round %d insert: %v", seed, round, err)
			}
			rem := gen.SampleEdges(st.G, 120, rng.Int63())
			RemoveEdges(st, rem, 8)
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("seed %d round %d remove: %v", seed, round, err)
			}
		}
	}
}
