package pcore

import (
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/core"
)

// TestCommitRaceRegression replays the shrunk instance that exposed the
// commit linearization race fixed by core.State.CommitMu (most readily
// under GOMAXPROCS=2 with -race): worker A, preempted between publishing
// core(w)=k+1 and inserting w at the head of O_{k+1}, let worker B
// promote an adjacent vertex into the same list in between — the list
// order then inverted relative to the linearization other workers
// derived from Core loads and lock aborts, leaving a final k-order with
// dout > core (I2) and, when later edges of the batch built on it,
// over-promoted core numbers (I1). Before the fix this instance failed
// within a few thousand trials; the loop is sized to stay cheap in the
// suite while still giving the interleaving thousands of chances under
// `make race`.
func TestCommitRaceRegression(t *testing.T) {
	baseEdges := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 17}, {U: 1, V: 4}, {U: 1, V: 5}, {U: 1, V: 8}, {U: 1, V: 15}, {U: 1, V: 17}, {U: 2, V: 3}, {U: 2, V: 6}, {U: 2, V: 10}, {U: 3, V: 14}, {U: 3, V: 15}, {U: 3, V: 16}, {U: 3, V: 17}, {U: 4, V: 6}, {U: 4, V: 9}, {U: 4, V: 10}, {U: 4, V: 12}, {U: 5, V: 10}, {U: 5, V: 12}, {U: 6, V: 15}, {U: 7, V: 8}, {U: 7, V: 12}, {U: 7, V: 13}, {U: 7, V: 18}, {U: 8, V: 17}, {U: 9, V: 15}, {U: 9, V: 16}, {U: 10, V: 13}, {U: 10, V: 15}, {U: 11, V: 12}, {U: 11, V: 13}, {U: 11, V: 14}, {U: 11, V: 18}, {U: 12, V: 18}, {U: 13, V: 17}, {U: 13, V: 18}, {U: 14, V: 19}, {U: 15, V: 17}, {U: 16, V: 19}}
	batch := []graph.Edge{{U: 5, V: 7}, {U: 9, V: 12}, {U: 4, V: 13}, {U: 8, V: 9}, {U: 4, V: 15}, {U: 7, V: 16}, {U: 18, V: 19}, {U: 0, V: 7}, {U: 3, V: 11}, {U: 2, V: 11}}
	base := graph.MustFromEdges(20, baseEdges)
	trials := 4000
	if testing.Short() {
		trials = 1000
	}
	for trial := 0; trial < trials; trial++ {
		st := core.NewState(base.Clone())
		InsertEdges(st, batch, 4)
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCommitRaceMixedChurn drives the removal twin of the same race: the
// drop's core store and its tail-of-O_{k-1} relocation must publish as
// one unit too. Repeated insert/remove churn of one overlapping edge set
// with many workers gives the interleaving room under -race.
func TestCommitRaceMixedChurn(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 20
	}
	base := gen.ErdosRenyi(300, 1200, 5)
	batch := gen.SampleNonEdges(base, 150, 6)
	st := core.NewState(base)
	for r := 0; r < rounds; r++ {
		InsertEdges(st, batch, 8)
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("round %d after insert: %v", r, err)
		}
		RemoveEdges(st, batch, 8)
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("round %d after remove: %v", r, err)
		}
	}
}
