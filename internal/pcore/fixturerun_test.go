package pcore

import (
	"testing"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/core"
)

// TestFixtureSeqInsert replays the shrunk failing instance edge by edge,
// reporting the first insertion that breaks an invariant and the mismatch
// between the promoted set and the true core-number delta.
func TestFixtureSeqInsert(t *testing.T) {
	g := graph.MustFromEdges(fixtureN, fixtureBase)
	st := core.NewState(g)
	for i, e := range fixtureBatch {
		before, _ := bz.Decompose(st.G)
		gAfter := st.G.Clone()
		gAfter.AddEdge(e.U, e.V)
		after, _ := bz.Decompose(gAfter)
		var wantStar []int32
		for v := range after {
			if after[v] != before[v] {
				wantStar = append(wantStar, int32(v))
			}
		}
		res := st.InsertEdgeSeq(e.U, e.V)
		if err := st.CheckInvariants(); err != nil {
			t.Logf("edge %d (%d,%d): %v", i, e.U, e.V, err)
			t.Logf("true V* (cores that must change): %v", wantStar)
			t.Logf("reported |V*|=%d |V+|=%d", res.VStar, res.VPlus)
			for _, v := range wantStar {
				t.Logf("  v=%d: before=%d after(want)=%d got=%d dout=%d",
					v, before[v], after[v], st.CoreOf(v), st.Dout[v].Load())
			}
			t.FailNow()
		}
	}
	t.Log("fixture passed (bug fixed)")
}
