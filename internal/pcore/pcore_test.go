package pcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
	"repro/internal/core"
)

func mustCheck(t *testing.T, st *core.State, context string) {
	t.Helper()
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

func TestParallelInsertSingleWorkerMatchesSeq(t *testing.T) {
	base := gen.ErdosRenyi(120, 360, 1)
	batch := gen.SampleNonEdges(base, 80, 2)

	stPar := core.NewState(base.Clone())
	InsertEdges(stPar, batch, 1)
	mustCheck(t, stPar, "parallel 1w")

	stSeq := core.NewState(base.Clone())
	for _, e := range batch {
		stSeq.InsertEdgeSeq(e.U, e.V)
	}
	for v := int32(0); v < int32(base.N()); v++ {
		if stPar.CoreOf(v) != stSeq.CoreOf(v) {
			t.Fatalf("core[%d]: parallel %d, sequential %d", v, stPar.CoreOf(v), stSeq.CoreOf(v))
		}
	}
}

func TestParallelRemoveSingleWorkerMatchesSeq(t *testing.T) {
	base := gen.ErdosRenyi(120, 480, 3)
	batch := gen.SampleEdges(base, 100, 4)

	stPar := core.NewState(base.Clone())
	RemoveEdges(stPar, batch, 1)
	mustCheck(t, stPar, "parallel 1w remove")

	stSeq := core.NewState(base.Clone())
	for _, e := range batch {
		stSeq.RemoveEdgeSeq(e.U, e.V)
	}
	for v := int32(0); v < int32(base.N()); v++ {
		if stPar.CoreOf(v) != stSeq.CoreOf(v) {
			t.Fatalf("core[%d]: parallel %d, sequential %d", v, stPar.CoreOf(v), stSeq.CoreOf(v))
		}
	}
}

func TestParallelInsertManyWorkers(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		base := gen.ErdosRenyi(200, 600, int64(workers))
		batch := gen.SampleNonEdges(base, 150, int64(workers)+10)
		st := core.NewState(base.Clone())
		stats := InsertEdges(st, batch, workers)
		mustCheck(t, st, "insert")
		applied := 0
		for _, s := range stats {
			if s.Applied {
				applied++
			}
		}
		if applied != len(batch) {
			t.Fatalf("%d workers: applied %d of %d", workers, applied, len(batch))
		}
	}
}

func TestParallelRemoveManyWorkers(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		base := gen.ErdosRenyi(200, 800, int64(workers)+20)
		batch := gen.SampleEdges(base, 200, int64(workers)+30)
		st := core.NewState(base.Clone())
		stats := RemoveEdges(st, batch, workers)
		mustCheck(t, st, "remove")
		applied := 0
		for _, s := range stats {
			if s.Applied {
				applied++
			}
		}
		if applied != len(batch) {
			t.Fatalf("%d workers: applied %d of %d", workers, applied, len(batch))
		}
	}
}

// The adversarial case for level-parallel baselines: every vertex has the
// same core number (BA graphs), so all insertions contend on one k-order
// list. Parallel-Order must still be correct.
func TestParallelInsertSameCoreGraph(t *testing.T) {
	base := gen.BarabasiAlbert(300, 4, 5)
	batch := gen.SampleNonEdges(base, 200, 6)
	st := core.NewState(base.Clone())
	InsertEdges(st, batch, 8)
	mustCheck(t, st, "BA insert 8w")
}

func TestParallelRemoveSameCoreGraph(t *testing.T) {
	base := gen.BarabasiAlbert(300, 4, 7)
	batch := gen.SampleEdges(base, 250, 8)
	st := core.NewState(base.Clone())
	RemoveEdges(st, batch, 8)
	mustCheck(t, st, "BA remove 8w")
}

// Duplicate edges inside one batch: exactly one insertion applies.
func TestParallelInsertDuplicatesInBatch(t *testing.T) {
	base := gen.ErdosRenyi(60, 120, 9)
	fresh := gen.SampleNonEdges(base, 20, 10)
	batch := append(append([]graph.Edge{}, fresh...), fresh...) // each edge twice
	st := core.NewState(base.Clone())
	stats := InsertEdges(st, batch, 4)
	mustCheck(t, st, "dup insert")
	applied := 0
	for _, s := range stats {
		if s.Applied {
			applied++
		}
	}
	if applied != len(fresh) {
		t.Fatalf("applied %d, want %d", applied, len(fresh))
	}
}

func TestParallelRemoveDuplicatesInBatch(t *testing.T) {
	base := gen.ErdosRenyi(60, 240, 11)
	chosen := gen.SampleEdges(base, 30, 12)
	batch := append(append([]graph.Edge{}, chosen...), chosen...)
	st := core.NewState(base.Clone())
	stats := RemoveEdges(st, batch, 4)
	mustCheck(t, st, "dup remove")
	applied := 0
	for _, s := range stats {
		if s.Applied {
			applied++
		}
	}
	if applied != len(chosen) {
		t.Fatalf("applied %d, want %d", applied, len(chosen))
	}
}

func TestInsertThenRemoveRoundTripParallel(t *testing.T) {
	base := gen.PowerLawCluster(250, 6, 2.5, 13)
	batch := gen.SampleNonEdges(base, 180, 14)
	st := core.NewState(base.Clone())
	InsertEdges(st, batch, 6)
	mustCheck(t, st, "round trip inserts")
	RemoveEdges(st, batch, 6)
	mustCheck(t, st, "round trip removals")
	want := core.NewState(base)
	for v := int32(0); v < int32(base.N()); v++ {
		if st.CoreOf(v) != want.CoreOf(v) {
			t.Fatalf("core[%d] drifted: %d vs %d", v, st.CoreOf(v), want.CoreOf(v))
		}
	}
}

func TestAlternatingBatches(t *testing.T) {
	base := gen.RMAT(9, 1500, 15)
	st := core.NewState(base.Clone())
	g := base // track edges for sampling; st.G is the live graph
	rng := rand.New(rand.NewSource(16))
	for round := 0; round < 6; round++ {
		ins := gen.SampleNonEdges(st.G, 60, rng.Int63())
		InsertEdges(st, ins, 4)
		mustCheck(t, st, "alternating insert round")
		rem := gen.SampleEdges(st.G, 60, rng.Int63())
		RemoveEdges(st, rem, 4)
		mustCheck(t, st, "alternating remove round")
	}
	_ = g
}

// Property: for random graphs and batches, 8-worker parallel maintenance
// ends in exactly the BZ ground truth with all invariants intact.
func TestQuickParallelMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(80)
		var base *graph.Graph
		switch rng.Intn(3) {
		case 0:
			base = gen.ErdosRenyi(n, int64(3*n), seed)
		case 1:
			base = gen.BarabasiAlbert(n, 3, seed)
		default:
			base = gen.WattsStrogatz(n, 3, 0.2, seed)
		}
		st := core.NewState(base.Clone())
		ins := gen.SampleNonEdges(base, 40, seed+1)
		InsertEdges(st, ins, 8)
		if err := st.CheckInvariants(); err != nil {
			t.Logf("seed %d insert: %v", seed, err)
			return false
		}
		rem := gen.SampleEdges(st.G, 40, seed+2)
		RemoveEdges(st, rem, 8)
		if err := st.CheckInvariants(); err != nil {
			t.Logf("seed %d remove: %v", seed, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Stress: a dense cluster where every insertion collides with every other.
// All workers fight over the same ~20 vertices.
func TestHighContentionClique(t *testing.T) {
	const n = 20
	base := graph.New(n)
	var all []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			all = append(all, graph.Edge{U: u, V: v})
		}
	}
	st := core.NewState(base.Clone())
	InsertEdges(st, all, 8)
	mustCheck(t, st, "clique built in parallel")
	for v := int32(0); v < n; v++ {
		if st.CoreOf(v) != n-1 {
			t.Fatalf("clique core[%d] = %d, want %d", v, st.CoreOf(v), n-1)
		}
	}
	RemoveEdges(st, all, 8)
	mustCheck(t, st, "clique dismantled in parallel")
	for v := int32(0); v < n; v++ {
		if st.CoreOf(v) != 0 {
			t.Fatalf("core[%d] = %d after dismantle", v, st.CoreOf(v))
		}
	}
}

func TestEmptyBatches(t *testing.T) {
	st := core.NewState(gen.ErdosRenyi(30, 60, 1))
	if got := InsertEdges(st, nil, 4); len(got) != 0 {
		t.Fatal("empty insert batch must return empty stats")
	}
	if got := RemoveEdges(st, nil, 4); len(got) != 0 {
		t.Fatal("empty remove batch must return empty stats")
	}
	mustCheck(t, st, "empty batches")
}

func TestSelfLoopsAndAbsentEdgesInBatch(t *testing.T) {
	base := gen.ErdosRenyi(50, 100, 2)
	st := core.NewState(base.Clone())
	ins := []graph.Edge{{U: 3, V: 3}, {U: 1, V: 2}}
	InsertEdges(st, ins, 2)
	rem := []graph.Edge{{U: 4, V: 4}, {U: 48, V: 49}}
	if st.G.HasEdge(48, 49) {
		t.Skip("unexpected edge in fixture")
	}
	RemoveEdges(st, rem, 2)
	mustCheck(t, st, "degenerate batches")
}

func TestMetricsReported(t *testing.T) {
	base := gen.BarabasiAlbert(300, 4, 31)
	ins := gen.SampleNonEdges(base, 200, 32)
	st := core.NewState(base.Clone())
	var m Metrics
	_, snap := InsertEdgesMetered(st, ins, 8, &m)
	mustCheck(t, st, "metered insert")
	if snap.Promotions == 0 {
		t.Fatal("a 200-edge BA batch must promote someone")
	}
	rem := gen.SampleEdges(st.G, 200, 33)
	_, snap2 := RemoveEdgesMetered(st, rem, 8, &m)
	mustCheck(t, st, "metered remove")
	if snap2.Drops == 0 {
		t.Fatal("a 200-edge BA removal must drop someone")
	}
	// Counters accumulate in the shared Metrics across both batches.
	if snap2.Promotions != snap.Promotions {
		t.Fatalf("promotions changed during removal: %d -> %d", snap.Promotions, snap2.Promotions)
	}
}

// The paper's §4 argument in numbers: even under heavy contention (8 workers
// on one small clique), the system terminates and the contention counters
// stay finite and plausible.
func TestMetricsHighContention(t *testing.T) {
	const n = 16
	var all []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			all = append(all, graph.Edge{U: u, V: v})
		}
	}
	st := core.NewState(graph.New(n))
	var m Metrics
	_, snap := InsertEdgesMetered(st, all, 8, &m)
	mustCheck(t, st, "contended insert")
	if snap.Promotions == 0 {
		t.Fatal("clique build must promote")
	}
	_, snap = RemoveEdgesMetered(st, all, 8, &m)
	mustCheck(t, st, "contended remove")
	if snap.Drops == 0 {
		t.Fatal("clique dismantle must drop")
	}
}
