package pcore

import "sync/atomic"

// Metrics aggregates contention and work counters across one batch. The
// paper's work-depth analysis (§4.1.3, §4.2.3) argues that blocking is rare
// because V+ and V* are almost always tiny (Fig. 1); these counters expose
// the mechanism directly: how often a conditional lock aborted because
// another worker changed a core number, how often a priority queue had to
// rebuild its label snapshot, and how often a removal propagation was forced
// to redo by a concurrent CheckMCD.
type Metrics struct {
	// LockAborts counts conditional-lock acquisitions abandoned because
	// the target's core number left the operation's level (insertion
	// dequeues and removal neighbor visits).
	LockAborts atomic.Int64
	// QueueRebuilds counts full label re-snapshots of insertion priority
	// queues (Algorithm 9 update_version executions).
	QueueRebuilds atomic.Int64
	// RemovalRedos counts propagation rounds re-run because a neighbor's
	// CheckMCD CASed the t status from 1 to 3 (Algorithm 8 line 16).
	RemovalRedos atomic.Int64
	// Evictions counts Backward repositionings (insertion candidates
	// confirmed out after having joined V*).
	Evictions atomic.Int64
	// Promotions and Drops count core-number changes applied.
	Promotions atomic.Int64
	Drops      atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		LockAborts:    m.LockAborts.Load(),
		QueueRebuilds: m.QueueRebuilds.Load(),
		RemovalRedos:  m.RemovalRedos.Load(),
		Evictions:     m.Evictions.Load(),
		Promotions:    m.Promotions.Load(),
		Drops:         m.Drops.Load(),
	}
}

// MetricsSnapshot is the plain-value form of Metrics.
type MetricsSnapshot struct {
	LockAborts    int64
	QueueRebuilds int64
	RemovalRedos  int64
	Evictions     int64
	Promotions    int64
	Drops         int64
}
