package pcore

import "sync/atomic"

// Metrics aggregates contention and work counters across one batch. The
// paper's work-depth analysis (§4.1.3, §4.2.3) argues that blocking is rare
// because V+ and V* are almost always tiny (Fig. 1); these counters expose
// the mechanism directly: how often a conditional lock aborted because
// another worker changed a core number, how often a priority queue had to
// rebuild its label snapshot, and how often a removal propagation was forced
// to redo by a concurrent CheckMCD.
type Metrics struct {
	// LockAborts counts conditional-lock acquisitions abandoned because
	// the target's core number left the operation's level (insertion
	// dequeues and removal neighbor visits).
	LockAborts atomic.Int64
	// QueueRebuilds counts full label re-snapshots of insertion priority
	// queues (Algorithm 9 update_version executions).
	QueueRebuilds atomic.Int64
	// RemovalRedos counts propagation rounds re-run because a neighbor's
	// CheckMCD CASed the t status from 1 to 3 (Algorithm 8 line 16).
	RemovalRedos atomic.Int64
	// Evictions counts Backward repositionings (insertion candidates
	// confirmed out after having joined V*).
	Evictions atomic.Int64
	// Promotions and Drops count core-number changes applied.
	Promotions atomic.Int64
	Drops      atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		LockAborts:    m.LockAborts.Load(),
		QueueRebuilds: m.QueueRebuilds.Load(),
		RemovalRedos:  m.RemovalRedos.Load(),
		Evictions:     m.Evictions.Load(),
		Promotions:    m.Promotions.Load(),
		Drops:         m.Drops.Load(),
	}
}

// MetricsSnapshot is the plain-value form of Metrics.
type MetricsSnapshot struct {
	LockAborts    int64
	QueueRebuilds int64
	RemovalRedos  int64
	Evictions     int64
	Promotions    int64
	Drops         int64
}

// ServeMetrics instruments the serving-layer update pipeline that feeds
// batches to the engines: how deep the op queue runs, how many caller ops
// each coalesced drain covered, and how many ops were superseded by a later
// op on the same edge (canceling insert/remove pairs). All counters are
// safe for concurrent use.
type ServeMetrics struct {
	// QueueDepth is a gauge: ops enqueued or being applied right now.
	QueueDepth atomic.Int64
	// Enqueued counts every update op accepted by the pipeline.
	Enqueued atomic.Int64
	// Batches counts coalesced engine batches applied by the applier.
	Batches atomic.Int64
	// BatchedOps counts the caller ops those batches covered; BatchedOps /
	// Batches is the mean coalesced-batch size.
	BatchedOps atomic.Int64
	// CanceledOps counts edge ops dropped because a later op on the same
	// canonical edge superseded them within one drain.
	CanceledOps atomic.Int64
	// Flushes counts barrier ops (Flush, Check, analysis snapshots).
	Flushes atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (m *ServeMetrics) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		QueueDepth:  m.QueueDepth.Load(),
		Enqueued:    m.Enqueued.Load(),
		Batches:     m.Batches.Load(),
		BatchedOps:  m.BatchedOps.Load(),
		CanceledOps: m.CanceledOps.Load(),
		Flushes:     m.Flushes.Load(),
	}
}

// ServeSnapshot is the plain-value form of ServeMetrics.
type ServeSnapshot struct {
	QueueDepth  int64
	Enqueued    int64
	Batches     int64
	BatchedOps  int64
	CanceledOps int64
	Flushes     int64
}
