package pcore

import (
	"sync"

	"repro/graph"
	"repro/internal/core"
)

// InsertEdges inserts a batch of edges with the Parallel-Order insertion
// algorithm using `workers` goroutines (Algorithm 5: the batch is
// partitioned statically and each worker processes its share one edge at a
// time, no preprocessing). It returns per-edge statistics aligned with
// edges; stats[i].VPlus feeds the Fig. 1 histogram.
//
// Callers must not run InsertEdges and RemoveEdges concurrently on one
// State — the paper's algorithms assume insertion and removal phases never
// overlap (§4), and the kcore façade enforces it.
func InsertEdges(st *core.State, edges []graph.Edge, workers int) []core.InsertStats {
	stats, _ := InsertEdgesMetered(st, edges, workers, nil)
	return stats
}

// InsertEdgesMetered is InsertEdges with contention counters: when m is
// non-nil, the workers record lock aborts, queue rebuilds, evictions and
// promotions into it.
func InsertEdgesMetered(st *core.State, edges []graph.Edge, workers int, m *Metrics) ([]core.InsertStats, MetricsSnapshot) {
	if workers < 1 {
		workers = 1
	}
	if m == nil {
		m = &Metrics{}
	}
	stats := make([]core.InsertStats, len(edges))
	ws := make([]*insertWorker, workers)
	var wg sync.WaitGroup
	for pi := 0; pi < workers; pi++ {
		ws[pi] = &insertWorker{st: st, m: m}
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			w := ws[pi]
			for i := pi; i < len(edges); i += workers {
				stats[i] = w.insertEdge(edges[i].U, edges[i].V)
			}
		}(pi)
	}
	wg.Wait()
	repairDout(st, ws, nil, workers)
	return stats, m.Snapshot()
}

// RemoveEdges removes a batch of edges with the Parallel-Order removal
// algorithm using `workers` goroutines. It returns per-edge statistics
// aligned with edges.
func RemoveEdges(st *core.State, edges []graph.Edge, workers int) []core.RemoveStats {
	stats, _ := RemoveEdgesMetered(st, edges, workers, nil)
	return stats
}

// RemoveEdgesMetered is RemoveEdges with contention counters.
func RemoveEdgesMetered(st *core.State, edges []graph.Edge, workers int, m *Metrics) ([]core.RemoveStats, MetricsSnapshot) {
	if workers < 1 {
		workers = 1
	}
	if m == nil {
		m = &Metrics{}
	}
	stats := make([]core.RemoveStats, len(edges))
	ws := make([]*removeWorker, workers)
	var wg sync.WaitGroup
	for pi := 0; pi < workers; pi++ {
		ws[pi] = &removeWorker{st: st, m: m}
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			w := ws[pi]
			for i := pi; i < len(edges); i += workers {
				stats[i] = w.removeEdge(edges[i].U, edges[i].V)
			}
		}(pi)
	}
	wg.Wait()
	repairDout(st, nil, ws, workers)
	return stats, m.Snapshot()
}

// repairDout recomputes d⁺out for every vertex whose k-order position
// changed during the batch and for the neighbors it had at move time, in
// parallel, once every worker has quiesced. An edge's orientation changes
// only if one of its endpoints moved, so this set covers every stale Dout.
// Within a batch each worker maintains Dout incrementally exactly as
// Algorithm 7 prescribes; what this pass settles is the orientation of edges
// whose BOTH endpoints were repositioned by different workers — their
// relative order at the head of O_{k+1} (or tail of O_{k-1}) is decided by
// lock interleaving and is only observable now. Cost: O(Σ_{v moved} deg(v)),
// the same order as the traversal work itself.
func repairDout(st *core.State, iws []*insertWorker, rws []*removeWorker, workers int) {
	mark := make([]bool, st.N())
	var targets []int32
	add := func(v int32) {
		if !mark[v] {
			mark[v] = true
			targets = append(targets, v)
		}
	}
	collect := func(repair []int32) {
		for _, v := range repair {
			add(v)
		}
	}
	for _, w := range iws {
		collect(w.repair)
	}
	for _, w := range rws {
		collect(w.repair)
	}
	if len(targets) == 0 {
		return
	}
	var wg sync.WaitGroup
	for pi := 0; pi < workers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			for i := pi; i < len(targets); i += workers {
				st.RecomputeDout(targets[i])
			}
		}(pi)
	}
	wg.Wait()
}
