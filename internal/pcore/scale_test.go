package pcore

import (
	"testing"

	"repro/gen"
	"repro/internal/core"
)

// TestLargerScaleInsert reproduces the coremaint CLI scenario: a denser ER
// graph with a batch that overlaps existing edges, repeated across worker
// counts. It flaked for several PRs under -race with multiple workers
// (I1/I2 invariant failures, easiest to hit at GOMAXPROCS=2): the commit
// linearization race now pinned by TestCommitRaceRegression and fixed by
// core.State.CommitMu.
func TestLargerScaleInsert(t *testing.T) {
	base := gen.ErdosRenyi(2000, 8000, 3)
	batch := gen.ErdosRenyi(2000, 500, 9).Edges() // overlaps base edges
	for trial := 0; trial < 20; trial++ {
		for _, workers := range []int{1, 4, 8} {
			st := core.NewState(base.Clone())
			InsertEdges(st, batch, workers)
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
		}
	}
}
