package pcore

import (
	"repro/internal/core"
	"repro/internal/spin"
)

// removeWorker executes RemoveEdge_p (Algorithm 8) for one worker p. Only
// vertices entering V* are kept locked; every other examined neighbor is
// locked conditionally and released immediately, and blocking cycles are
// impossible because a conditional lock aborts as soon as the target's core
// number leaves the removal level (§4.2.2).
type removeWorker struct {
	st *core.State
	m  *Metrics
	// repair holds every dropped vertex plus its move-time neighborhood,
	// for the batch-end Dout recomputation (see insertWorker.repair).
	repair []int32

	// per-edge scratch
	k     int32
	rq    []int32
	vstar []int32
}

// removeEdge removes one edge and restores the maintenance invariants.
func (p *removeWorker) removeEdge(u, v int32) core.RemoveStats {
	st := p.st
	if u == v {
		return core.RemoveStats{}
	}
	spin.LockPair(&st.Locks[u], &st.Locks[v]) // line 1
	if !st.G.HasEdge(u, v) {
		// Already removed (duplicate within the batch).
		st.Locks[u].Unlock()
		st.Locks[v].Unlock()
		return core.RemoveStats{}
	}
	cu, cv := st.Core[u].Load(), st.Core[v].Load()
	k := cu
	if cv < k {
		k = cv
	}
	p.k = k
	p.rq = p.rq[:0]
	p.vstar = p.vstar[:0]

	// Line 3: make sure both endpoints have a concrete mcd while the edge
	// still exists, then account the removal.
	p.checkMCD(u, -1)
	p.checkMCD(v, -1)
	if st.Before(u, v) {
		st.Dout[u].Add(-1)
	} else {
		st.Dout[v].Add(-1)
	}
	st.G.RemoveEdge(u, v) // line 4

	droppedU, droppedV := false, false
	if cv >= cu { // the edge was counted in u's mcd (lines 5-6)
		droppedU = p.doMCD(u)
	}
	if cu >= cv {
		droppedV = p.doMCD(v)
	}
	if !droppedU {
		st.Locks[u].Unlock() // line 7
	}
	if !droppedV {
		st.Locks[v].Unlock()
	}

	// Lines 8-16: propagate. Dequeued vertices are locked, core k-1,
	// t = 2.
	for len(p.rq) > 0 {
		w := p.rq[0]
		p.rq = p.rq[1:]
		ap := map[int32]bool{} // A_p: persists across redo rounds (line 16)
		for {
			st.T[w].Add(-1) // line 10: 2 -> 1 (or 3 -> 2 -> ... on redo)
			for _, x := range st.G.Adj(w) {
				if ap[x] || st.Core[x].Load() != k {
					continue
				}
				// Conditional lock (line 12): give up as soon
				// as x stops being a level-k vertex — that is
				// the deadlock-avoidance rule.
				if st.Locks[x].LockIf(func() bool { return st.Core[x].Load() == k }) {
					p.checkMCD(x, w) // line 13
					if !p.doMCD(x) {
						st.Locks[x].Unlock() // line 25
					}
					ap[x] = true // line 14
				} else if p.m != nil {
					p.m.LockAborts.Add(1)
				}
			}
			st.T[w].Add(-1) // line 15
			if st.T[w].Load() <= 0 {
				break
			}
			// line 16: a neighbor's CheckMCD CASed t from 1 to 3
			// while recounting us — redo with A_p intact.
			if p.m != nil {
				p.m.RemovalRedos.Add(1)
			}
		}
	}
	p.commit()
	// p.vstar is reused scratch; copy the dropped set out for the caller.
	return core.RemoveStats{
		Applied: true,
		VStar:   len(p.vstar),
		Changed: append([]int32(nil), p.vstar...),
	}
}

// checkMCD materializes x's mcd if empty (Algorithm 8, CheckMCD). x is
// locked by this worker; neighbors are examined without locks. caller is the
// vertex whose propagation loop invoked us (or -1 at the endpoints): the
// redo CAS is skipped for it because it is about to deliver its own
// decrement (line 32).
func (p *removeWorker) checkMCD(x, caller int32) {
	st := p.st
	if st.Mcd[x].Load() != core.McdEmpty {
		return
	}
	cx := st.Core[x].Load()
	mcd := int32(0)
	for _, v := range st.G.Adj(x) {
		cvv := st.Core[v].Load()
		switch {
		case cvv >= cx:
			mcd++
		case cvv == cx-1 && st.T[v].Load() > 0:
			// v is mid-drop from x's level and has not delivered
			// its decrement to us yet: count it, and force its
			// propagation to run again so the decrement arrives
			// even if v's visit raced past us (lines 29-33).
			mcd++
			if v != caller && st.T[v].Load() == 1 {
				st.T[v].CompareAndSwap(1, 3)
			}
			if st.T[v].Load() == 0 {
				mcd-- // v finished while we counted
			}
		}
	}
	st.Mcd[x].Store(mcd)
}

// doMCD accounts one lost qualifying neighbor of the locked vertex x and
// drops x when its mcd sinks below its core number (Algorithm 8, DoMCD).
// On a drop x joins V* and the propagation queue and stays locked. Reports
// whether x dropped; the caller releases the lock otherwise.
func (p *removeWorker) doMCD(x int32) bool {
	st := p.st
	mcd := st.Mcd[x].Add(-1)
	cx := st.Core[x].Load()
	if mcd >= cx {
		return false
	}
	if cx != p.k {
		panic("pcore: mcd fell below core away from removal level")
	}
	// Line 22: ⟨core ← k-1; t ← 2⟩ published t-first so no observer sees
	// a dropped-but-untracked vertex. The core store and the OM
	// relocation to the tail of O_{k-1} publish as one unit (see
	// core.State.CommitMu): a worker that observes the lowered core
	// number — another removal's mcd count or conditional lock —
	// linearizes its own drops after this one, and the tail placement is
	// only a valid peeling position if x is already at the tail when
	// that happens. (The drop cascade order is the peeling order; the
	// old deferred-to-commit move let a later observer reach the tail
	// first, inverting it.)
	st.T[x].Store(2)
	st.CommitMu.Lock()
	st.BeginOrderChange(x)
	st.Core[x].Store(p.k - 1)
	st.List(p.k).Delete(st.Items[x])
	st.List(p.k - 1).InsertAtTail(st.Items[x])
	st.EndOrderChange(x)
	st.CommitMu.Unlock()
	st.Mcd[x].Store(core.McdEmpty) // line 23
	p.vstar = append(p.vstar, x)   // line 24
	p.rq = append(p.rq, x)
	// x is locked by us, so its adjacency is stable: snapshot it for the
	// batch-end Dout repair now that the move is done.
	p.repair = append(p.repair, x)
	p.repair = append(p.repair, st.G.Adj(x)...)
	if p.m != nil {
		p.m.Drops.Add(1)
	}
	return true
}

// commit releases the locks of the dropped set once propagation has
// quiesced. The OM relocations happened at drop time (doMCD), atomically
// with each core store; Dout repair is deferred to the batch-end pass,
// which recomputes the dropped vertices and all their neighbors once
// every worker has quiesced.
func (p *removeWorker) commit() {
	st := p.st
	for _, w := range p.vstar {
		st.Locks[w].Unlock() // line 18
	}
}
