package pcore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/core"
)

// TestShrinkInsertFailure hunts for a minimal failing insertion batch: a
// debugging aid kept as a regression canary (it fails loudly with the batch
// that broke, and passes silently when the implementation is correct).
func TestShrinkInsertFailure(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(12)
		base := gen.ErdosRenyi(n, int64(2*n), seed)
		batch := gen.SampleNonEdges(base, 10, seed+100)
		for trial := 0; trial < 30; trial++ {
			st := core.NewState(base.Clone())
			InsertEdges(st, batch, 4)
			if err := st.CheckInvariants(); err != nil {
				// Try to shrink the batch while still failing.
				min := shrink(t, base, batch, 4)
				t.Fatalf("seed %d trial %d: %v\nminimal batch (n=%d): %v\nbase edges: %v",
					seed, trial, err, n, min, base.Edges())
			}
		}
	}
}

func failsOnce(base *graph.Graph, batch []graph.Edge, workers, attempts int) error {
	for i := 0; i < attempts; i++ {
		st := core.NewState(base.Clone())
		InsertEdges(st, batch, workers)
		if err := st.CheckInvariants(); err != nil {
			return err
		}
	}
	return nil
}

func shrink(t *testing.T, base *graph.Graph, batch []graph.Edge, workers int) []graph.Edge {
	t.Helper()
	cur := append([]graph.Edge{}, batch...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			cand := append(append([]graph.Edge{}, cur[:i]...), cur[i+1:]...)
			if err := failsOnce(base, cand, workers, 60); err != nil {
				cur = cand
				changed = true
				break
			}
		}
	}
	fmt.Printf("shrunk to %d edges: %v\n", len(cur), cur)
	return cur
}
