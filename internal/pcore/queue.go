// Package pcore implements the paper's contribution: the Parallel-Order
// core maintenance algorithms — batch edge insertion (Algorithm 7) and batch
// edge removal (Algorithm 8) driven by per-worker goroutines (Algorithm 5),
// synchronized with per-vertex CAS spin locks, the order-change status
// protocol (Algorithm 6) and the versioned priority queue (Algorithms 9-11).
package pcore

import (
	"container/heap"
	"runtime"

	"repro/internal/core"
	"repro/internal/om"
)

// pqEntry caches a vertex with the [Lt, Lb, s] snapshot taken at enqueue
// time (§5): the labels order the heap, the status s detects stale
// positions at dequeue.
type pqEntry struct {
	v      int32
	lt, lb uint64
	s      uint32
}

// pqueue is the private min-priority queue Q_p of one insertion worker. It
// is single-owner: only its worker touches it, so the queue itself needs no
// locks; all synchronization happens through the OM list version and the
// per-vertex status counters.
type pqueue struct {
	st    *core.State
	m     *Metrics
	k     int32
	list  *om.List
	es    []pqEntry
	in    map[int32]bool // current queue membership
	ver   uint64
	dirty bool // Q.ver = ∅ in the paper: labels must be re-snapshotted
}

func newPQueue(st *core.State, k int32) *pqueue {
	list := st.List(k)
	ver := list.Version()
	return &pqueue{st: st, k: k, list: list, in: map[int32]bool{}, ver: ver, dirty: ver&1 == 1}
}

// contains reports whether v currently sits in the queue.
func (q *pqueue) contains(v int32) bool { return q.in[v] }

// heap.Interface over label pairs.
func (q *pqueue) Len() int { return len(q.es) }
func (q *pqueue) Less(i, j int) bool {
	if q.es[i].lt != q.es[j].lt {
		return q.es[i].lt < q.es[j].lt
	}
	return q.es[i].lb < q.es[j].lb
}
func (q *pqueue) Swap(i, j int) { q.es[i], q.es[j] = q.es[j], q.es[i] }
func (q *pqueue) Push(x any)    { q.es = append(q.es, x.(pqEntry)) }
func (q *pqueue) Pop() any {
	n := len(q.es) - 1
	e := q.es[n]
	q.es = q.es[:n]
	return e
}

// enqueue adds v with a label/status snapshot (Algorithm 10). If the
// snapshot raced with a relabel or an order change, the queue is marked
// dirty and lazily rebuilt at the next dequeue.
func (q *pqueue) enqueue(v int32) {
	if q.in[v] {
		return
	}
	q.in[v] = true
	s := q.st.S[v].Load()
	lt, lb, ver, ok := q.list.Labels(q.st.Items[v])
	heap.Push(q, pqEntry{v: v, lt: lt, lb: lb, s: s})
	if !ok || ver != q.ver || s&1 == 1 || q.st.S[v].Load() != s {
		q.dirty = true
	}
}

// refresh re-snapshots every entry at one consistent list version
// (Algorithm 9, update_version). Entries whose vertex left core level k are
// dropped — they would be discarded at dequeue anyway.
func (q *pqueue) refresh() {
	if q.m != nil {
		q.m.QueueRebuilds.Add(1)
	}
	for {
		ver := q.list.Version()
		if ver&1 == 1 {
			runtime.Gosched()
			continue
		}
		stable := true
		w := 0
		for _, e := range q.es {
			if q.st.Core[e.v].Load() != q.k {
				delete(q.in, e.v) // promoted by another worker; drop
				continue
			}
			s := q.st.S[e.v].Load()
			if s&1 == 1 {
				stable = false
				break
			}
			lt, lb, lver, ok := q.list.Labels(q.st.Items[e.v])
			if !ok || lver != ver || q.st.S[e.v].Load() != s {
				stable = false
				break
			}
			q.es[w] = pqEntry{v: e.v, lt: lt, lb: lb, s: s}
			w++
		}
		if !stable || q.list.Version() != ver {
			runtime.Gosched()
			continue
		}
		q.es = q.es[:w]
		heap.Init(q)
		q.ver = ver
		q.dirty = false
		return
	}
}

// dequeue pops the vertex with minimal k-order whose core number is still k,
// returning it LOCKED (Algorithm 11). own reports vertices this worker
// already holds (members of V+); they are discarded defensively rather than
// self-deadlocked on. ok is false when no qualifying vertex remains.
func (q *pqueue) dequeue(own func(int32) bool) (int32, bool) {
	for len(q.es) > 0 {
		if q.dirty {
			q.refresh()
			continue
		}
		e := q.es[0]
		if own(e.v) || q.st.Core[e.v].Load() != q.k {
			if traceFn != nil {
				traceFn("q=%p discard %d (own=%v core=%d k=%d)", q.st, e.v, own(e.v), q.st.Core[e.v].Load(), q.k)
			}
			heap.Pop(q)
			delete(q.in, e.v)
			continue
		}
		// Conditional lock: busy-wait only while v can still be a
		// candidate at level k; abort if another worker promotes it.
		if !q.st.Locks[e.v].LockIf(func() bool { return q.st.Core[e.v].Load() == q.k }) {
			if q.m != nil {
				q.m.LockAborts.Add(1)
			}
			if traceFn != nil {
				traceFn("q=%p lockif-abort %d (core=%d k=%d)", q.st, e.v, q.st.Core[e.v].Load(), q.k)
			}
			heap.Pop(q)
			delete(q.in, e.v)
			continue
		}
		// Locked. If v's order changed since the snapshot, the heap
		// may have served the wrong minimum: release and rebuild.
		if q.st.S[e.v].Load() != e.s {
			q.st.Locks[e.v].Unlock()
			q.dirty = true
			continue
		}
		heap.Pop(q)
		delete(q.in, e.v)
		return e.v, true
	}
	return 0, false
}

// ---- tracing (test support) ----

// traceFn, when non-nil, receives a formatted event line from the worker
// code paths. Installed only by tests; nil in production use.
var traceFn func(format string, args ...any)
