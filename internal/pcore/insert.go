package pcore

import (
	"repro/internal/core"
	"repro/internal/om"
	"repro/internal/spin"
)

// insertWorker executes InsertEdge_p (Algorithm 7) for one worker p. All
// scratch state (V*, V+, Q_p, R_p) is private; shared state is reached
// through st under the locking protocol.
type insertWorker struct {
	st *core.State
	m  *Metrics
	// repair records every vertex this worker repositioned (promoted into
	// O_{k+1} or evicted within O_k) plus the neighbors it had at move
	// time; the batch runner recomputes their Dout once the batch is
	// quiescent. Neighborhoods are snapshotted at the move because edges
	// can be added or removed later in the batch, hiding the affected
	// neighbor from a batch-end adjacency scan.
	repair []int32

	// per-edge scratch, reset by insertEdge
	k      int32
	q      *pqueue
	vstar  []int32
	inStar map[int32]bool
	done   map[int32]bool
	vplus  int
}

func (p *insertWorker) own(v int32) bool { return p.inStar[v] || p.done[v] }

// recordMove snapshots w and its current neighborhood into the batch-end
// Dout repair set. w is locked by this worker, so its adjacency is stable.
func (p *insertWorker) recordMove(w int32) {
	p.repair = append(p.repair, w)
	p.repair = append(p.repair, p.st.G.Adj(w)...)
}

// insertEdge inserts one edge and restores the maintenance invariants,
// locking only the traversed vertices in V+ (Algorithm 7).
func (p *insertWorker) insertEdge(u, v int32) core.InsertStats {
	st := p.st
	if u == v {
		return core.InsertStats{}
	}
	// Lock both endpoints together (line 1); with both held their k-order
	// is frozen, so orienting the edge by one comparison replaces the
	// paper's unlock-and-retry loop (line 2).
	spin.LockPair(&st.Locks[u], &st.Locks[v])
	if st.Before(v, u) {
		u, v = v, u
	}
	if traceFn != nil {
		traceFn("p=%p origin (%d->%d) locked", p, u, v)
	}
	if !st.G.AddEdge(u, v) {
		// Duplicate (possibly inserted concurrently by another worker
		// earlier in the batch): nothing to do.
		st.Locks[u].Unlock()
		st.Locks[v].Unlock()
		return core.InsertStats{}
	}
	k := st.Core[u].Load()
	st.Dout[u].Add(1)
	st.Mcd[u].Store(core.McdEmpty)
	st.Mcd[v].Store(core.McdEmpty)
	st.Locks[v].Unlock() // line 5
	if st.Dout[u].Load() <= k {
		st.Locks[u].Unlock() // line 6
		return core.InsertStats{Applied: true}
	}

	p.k = k
	p.q = newPQueue(st, k)
	p.q.m = p.m
	p.vstar = p.vstar[:0]
	p.inStar = map[int32]bool{}
	p.done = map[int32]bool{}
	p.vplus = 0

	w := u
	for {
		// d*in(w) = |{x ∈ pre(w) : x ∈ V*}| (line 9). V* members are
		// locked by us, w is locked by us: the comparison is stable.
		din := int32(0)
		for _, x := range st.G.Adj(w) {
			if p.inStar[x] && st.Before(x, w) {
				din++
			}
		}
		st.Din[w] = din
		if traceFn != nil {
			traceFn("p=%p process %d din=%d dout=%d k=%d", p, w, din, st.Dout[w].Load(), k)
		}
		switch {
		case din+st.Dout[w].Load() > k:
			p.forward(w) // line 10; w stays locked
		case din > 0:
			p.backward(w) // line 11; w stays locked (member of V+)
		default:
			st.Locks[w].Unlock() // line 11: w ∉ V+
		}
		next, ok := p.q.dequeue(p.own) // line 12: returns w locked
		if !ok {
			break
		}
		w = next
	}
	p.commit()
	// p.vstar is reused scratch; the surviving candidates are copied out
	// so the changed set stays valid after the next edge resets it.
	stats := core.InsertStats{Applied: true, VPlus: p.vplus}
	for _, w := range p.vstar {
		if p.inStar[w] {
			stats.Changed = append(stats.Changed, w)
		}
	}
	stats.VStar = len(stats.Changed)
	return stats
}

// forward adds the locked vertex w to V* and schedules its same-core
// successors (Algorithm 7 lines 18-21). Successors are examined without
// locking them — only V+ is locked.
func (p *insertWorker) forward(w int32) {
	st := p.st
	p.vstar = append(p.vstar, w)
	p.inStar[w] = true
	p.vplus++
	if traceFn != nil {
		traceFn("p=%p forward %d (k=%d)", p, w, p.k)
	}
	for _, x := range st.G.Adj(w) {
		if st.Core[x].Load() == p.k && !p.q.contains(x) && !p.inStar[x] && !p.done[x] && st.Before(w, x) {
			if traceFn != nil {
				traceFn("p=%p   enqueue %d", p, x)
			}
			p.q.enqueue(x)
		}
	}
}

// backward confirms the locked w as a non-candidate and evicts every V*
// member whose potential degree fell to k, moving evicted vertices after the
// advancing anchor `pre` inside O_k (Algorithm 7 lines 22-31). All touched
// vertices are members of V+ and therefore already locked by this worker.
func (p *insertWorker) backward(w int32) {
	st := p.st
	list := st.List(p.k)
	p.vplus++
	p.done[w] = true
	if traceFn != nil {
		traceFn("p=%p backward %d (k=%d)", p, w, p.k)
	}
	pre := w
	var rq []int32
	inR := map[int32]bool{}
	p.doPre(w, &rq, inR)
	st.Dout[w].Add(st.Din[w])
	st.Din[w] = 0
	for len(rq) > 0 {
		u := rq[0]
		rq = rq[1:]
		delete(p.inStar, u)
		p.done[u] = true
		p.doPre(u, &rq, inR)
		p.doPost(u, &rq, inR)
		if traceFn != nil {
			traceFn("p=%p   evict %d after %d", p, u, pre)
		}
		st.BeginOrderChange(u)
		list.Delete(st.Items[u])
		list.InsertAfter(st.Items[pre], st.Items[u])
		st.EndOrderChange(u)
		p.recordMove(u)
		if p.m != nil {
			p.m.Evictions.Add(1)
		}
		pre = u
		st.Dout[u].Add(st.Din[u])
		st.Din[u] = 0
	}
}

// doPre: u is confirmed outside V*; its V* predecessors lose one remaining
// out-degree (Algorithm 7 lines 32-35).
func (p *insertWorker) doPre(u int32, rq *[]int32, inR map[int32]bool) {
	st := p.st
	for _, x := range st.G.Adj(u) {
		if p.inStar[x] && st.Before(x, u) {
			st.Dout[x].Add(-1)
			if st.Din[x]+st.Dout[x].Load() <= p.k && !inR[x] {
				inR[x] = true
				*rq = append(*rq, x)
			}
		}
	}
}

// doPost: u left V*; its V* successors lose one candidate in-degree
// (Algorithm 7 lines 36-40).
func (p *insertWorker) doPost(u int32, rq *[]int32, inR map[int32]bool) {
	st := p.st
	for _, x := range st.G.Adj(u) {
		if p.inStar[x] && st.Din[x] > 0 && st.Before(u, x) {
			st.Din[x]--
			if st.Din[x]+st.Dout[x].Load() <= p.k && !inR[x] {
				inR[x] = true
				*rq = append(*rq, x)
			}
		}
	}
}

// commit promotes the surviving candidates (Algorithm 7 lines 14-17): each
// moves to the head of O_{k+1} preserving V*'s relative order (anchor
// chaining), with core number and position published atomically under the
// order-change status. Every lock this worker still holds is released.
func (p *insertWorker) commit() {
	st := p.st
	from := st.List(p.k)
	to := st.List(p.k + 1)
	var anchor *om.Item
	for _, w := range p.vstar {
		if !p.inStar[w] {
			continue
		}
		st.Mcd[w].Store(core.McdEmpty)
		for _, x := range st.G.Adj(w) {
			st.Mcd[x].Store(core.McdEmpty)
		}
		if traceFn != nil {
			traceFn("p=%p commit %d -> core %d (head of O_%d)", p, w, p.k+1, p.k+1)
		}
		// The core store and the list move publish as one unit (see
		// core.State.CommitMu): a worker that observes the new core
		// number linearizes after this promotion, and the head placement
		// is only valid if w is already in the list when that happens.
		st.CommitMu.Lock()
		st.BeginOrderChange(w)
		st.Core[w].Store(p.k + 1)
		st.Din[w] = 0
		from.Delete(st.Items[w])
		if anchor == nil {
			to.InsertAtHead(st.Items[w])
		} else {
			to.InsertAfter(anchor, st.Items[w])
		}
		anchor = st.Items[w]
		st.EndOrderChange(w)
		st.CommitMu.Unlock()
		p.recordMove(w)
		if p.m != nil {
			p.m.Promotions.Add(1)
		}
	}
	// Unlock all of V+ (line 17): V* members and confirmed
	// non-candidates alike.
	for _, w := range p.vstar {
		if p.inStar[w] {
			st.Locks[w].Unlock()
		}
	}
	for w := range p.done {
		st.Locks[w].Unlock()
	}
}
