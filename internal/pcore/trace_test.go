package pcore

import (
	"fmt"
	"sync"
	"testing"

	"repro/graph"
	"repro/internal/core"
)

// TestReplayShrunkBatch replays the shrunk failing batch from
// TestShrinkInsertFailure many times and, on the first invariant failure,
// dumps the complete final state for analysis.
func TestReplayShrunkBatch(t *testing.T) {
	baseEdges := []graph.Edge{{U: 0, V: 4}, {U: 0, V: 5}, {U: 0, V: 6}, {U: 0, V: 10}, {U: 0, V: 11}, {U: 0, V: 12}, {U: 1, V: 8}, {U: 1, V: 12}, {U: 1, V: 13}, {U: 2, V: 3}, {U: 2, V: 4}, {U: 2, V: 7}, {U: 2, V: 11}, {U: 2, V: 16}, {U: 3, V: 8}, {U: 3, V: 9}, {U: 3, V: 12}, {U: 4, V: 13}, {U: 4, V: 17}, {U: 5, V: 12}, {U: 5, V: 16}, {U: 6, V: 8}, {U: 6, V: 10}, {U: 6, V: 11}, {U: 7, V: 16}, {U: 7, V: 17}, {U: 8, V: 9}, {U: 10, V: 11}, {U: 10, V: 13}, {U: 11, V: 12}, {U: 12, V: 13}, {U: 12, V: 14}, {U: 12, V: 15}, {U: 13, V: 17}, {U: 14, V: 15}, {U: 16, V: 17}}
	batch := []graph.Edge{{U: 2, V: 13}, {U: 0, V: 16}, {U: 0, V: 3}, {U: 4, V: 7}, {U: 7, V: 12}, {U: 4, V: 5}}
	base := graph.MustFromEdges(18, baseEdges)
	for trial := 0; trial < 4000; trial++ {
		var mu sync.Mutex
		var events []string
		traceFn = func(format string, args ...any) {
			mu.Lock()
			events = append(events, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
		st := core.NewState(base.Clone())
		InsertEdges(st, batch, 4)
		traceFn = nil
		if err := st.CheckInvariants(); err != nil {
			t.Logf("trial %d: %v", trial, err)
			for _, e := range events {
				t.Log(e)
			}
			dumpState(t, st)
			t.FailNow()
		}
	}
}

func dumpState(t *testing.T, st *core.State) {
	t.Helper()
	maxK := st.MaxCoreValue()
	for k := int32(0); k <= maxK; k++ {
		items, err := st.List(k).Check()
		if err != nil {
			t.Logf("O_%d: %v", k, err)
			continue
		}
		line := fmt.Sprintf("O_%d:", k)
		for _, it := range items {
			line += fmt.Sprintf(" %d", it.ID)
		}
		t.Log(line)
	}
	for v := 0; v < st.N(); v++ {
		t.Logf("v=%d core=%d dout=%d mcd=%d adj=%v",
			v, st.CoreOf(int32(v)), st.Dout[v].Load(), st.Mcd[v].Load(), st.G.Adj(int32(v)))
	}
}
