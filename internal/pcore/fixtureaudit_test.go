package pcore

import (
	"fmt"
	"testing"

	"repro/graph"
	"repro/internal/core"
)

// TestFixtureOrderAudit: after replaying all but the last fixture edge,
// verify that for every adjacent pair in the O_5 walk, Order agrees, and
// that Labels are strictly increasing lexicographically.
func TestFixtureOrderAudit(t *testing.T) {
	g := graph.MustFromEdges(fixtureN, fixtureBase)
	st := core.NewState(g)
	for _, e := range fixtureBatch[:len(fixtureBatch)-1] {
		st.InsertEdgeSeq(e.U, e.V)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for k := int32(0); k <= st.MaxCoreValue(); k++ {
		list := st.List(k)
		items, err := list.Check()
		if err != nil {
			t.Fatalf("O_%d: %v", k, err)
		}
		var plt, plb uint64
		bad := 0
		for i, it := range items {
			lt, lb, _, ok := list.Labels(it)
			if !ok {
				t.Fatalf("O_%d: labels not ok for %d", k, it.ID)
			}
			if i > 0 {
				if !(plt < lt || (plt == lt && plb < lb)) {
					bad++
					if bad < 10 {
						fmt.Printf("O_%d pos %d: item %d labels (%d,%d) not above prev (%d,%d)\n",
							k, i, it.ID, lt, lb, plt, plb)
					}
				}
				if !list.Order(items[i-1], it) {
					bad++
					if bad < 20 {
						fmt.Printf("O_%d pos %d: Order(%d,%d) = false but walk says before\n",
							k, i, items[i-1].ID, it.ID)
					}
				}
			}
			plt, plb = lt, lb
		}
		if bad > 0 {
			t.Fatalf("O_%d: %d order/label inconsistencies", k, bad)
		}
	}
	t.Log("walk order and label order agree everywhere")
}
