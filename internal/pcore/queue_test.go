package pcore

import (
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/core"
)

// queueState builds a state whose O_1 list holds the path vertices in a
// known order so queue behavior can be asserted precisely.
func queueState(t *testing.T, n int) *core.State {
	t.Helper()
	// A cycle: every vertex has core 1... a cycle has core 2. Use a path:
	// all cores 1, BZ peels from the endpoints inward.
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return core.NewState(graph.MustFromEdges(n, edges))
}

func drain(t *testing.T, st *core.State, q *pqueue) []int32 {
	t.Helper()
	var out []int32
	for {
		v, ok := q.dequeue(func(int32) bool { return false })
		if !ok {
			return out
		}
		st.Locks[v].Unlock() // dequeue returns locked vertices
		out = append(out, v)
	}
}

func TestPQueueDequeuesInKOrder(t *testing.T) {
	st := queueState(t, 8)
	q := newPQueue(st, 1)
	// Enqueue in arbitrary order; dequeue must follow the k-order.
	for _, v := range []int32{3, 1, 5, 2} {
		q.enqueue(v)
	}
	got := drain(t, st, q)
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !st.BeforeSeq(got[i-1], got[i]) {
			t.Fatalf("dequeue order violates k-order: %v", got)
		}
	}
}

func TestPQueueDuplicateEnqueueIgnored(t *testing.T) {
	st := queueState(t, 5)
	q := newPQueue(st, 1)
	q.enqueue(2)
	q.enqueue(2)
	q.enqueue(2)
	if got := drain(t, st, q); len(got) != 1 || got[0] != 2 {
		t.Fatalf("drained %v, want [2]", got)
	}
}

func TestPQueueContains(t *testing.T) {
	st := queueState(t, 5)
	q := newPQueue(st, 1)
	q.enqueue(3)
	if !q.contains(3) || q.contains(1) {
		t.Fatal("contains wrong")
	}
	drain(t, st, q)
	if q.contains(3) {
		t.Fatal("contains must clear after dequeue")
	}
}

func TestPQueueDiscardsPromotedVertices(t *testing.T) {
	st := queueState(t, 6)
	q := newPQueue(st, 1)
	q.enqueue(1)
	q.enqueue(2)
	// Simulate a promotion by another worker: vertex 1 leaves level 1.
	st.BeginOrderChange(1)
	st.Core[1].Store(2)
	st.List(1).Delete(st.Items[1])
	st.List(2).InsertAtHead(st.Items[1])
	st.EndOrderChange(1)
	got := drain(t, st, q)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("drained %v, want [2] (1 was promoted)", got)
	}
}

func TestPQueueRefreshAfterRelabel(t *testing.T) {
	st := queueState(t, 6)
	q := newPQueue(st, 1)
	q.enqueue(4)
	q.enqueue(2)
	// Force relabels of O_1 by churning items at the head: position
	// changes of OTHER vertices plus version bumps.
	list := st.List(1)
	// Move vertex 0 back and forth within the list to churn versions.
	for i := 0; i < 500; i++ {
		st.BeginOrderChange(0)
		list.Delete(st.Items[0])
		list.InsertAtHead(st.Items[0])
		st.EndOrderChange(0)
	}
	q.dirty = true // as Algorithm 10 would have marked it
	got := drain(t, st, q)
	if len(got) != 2 {
		t.Fatalf("drained %v", got)
	}
	if !st.BeforeSeq(got[0], got[1]) {
		t.Fatalf("post-relabel order wrong: %v", got)
	}
}

func TestPQueueOwnVerticesSkipped(t *testing.T) {
	st := queueState(t, 5)
	q := newPQueue(st, 1)
	q.enqueue(1)
	q.enqueue(2)
	own := func(v int32) bool { return v == 1 }
	v, ok := q.dequeue(own)
	if !ok || v != 2 {
		t.Fatalf("got %d, want 2 (1 is own)", v)
	}
	st.Locks[2].Unlock()
}

func TestPQueueEmpty(t *testing.T) {
	st := queueState(t, 3)
	q := newPQueue(st, 1)
	if _, ok := q.dequeue(func(int32) bool { return false }); ok {
		t.Fatal("empty queue must report !ok")
	}
}

func TestPQueueStressAgainstOrder(t *testing.T) {
	base := gen.ErdosRenyi(300, 900, 4)
	st := core.NewState(base)
	// All vertices at the modal core level.
	hist := map[int32]int{}
	for v := int32(0); v < int32(st.N()); v++ {
		hist[st.CoreOf(v)]++
	}
	var k int32
	best := 0
	for c, n := range hist {
		if n > best {
			k, best = c, n
		}
	}
	q := newPQueue(st, k)
	for v := int32(0); v < int32(st.N()); v++ {
		if st.CoreOf(v) == k {
			q.enqueue(v)
		}
	}
	var prev int32 = -1
	for {
		v, ok := q.dequeue(func(int32) bool { return false })
		if !ok {
			break
		}
		st.Locks[v].Unlock()
		if prev >= 0 && !st.BeforeSeq(prev, v) {
			t.Fatalf("order violated: %d before %d", prev, v)
		}
		prev = v
	}
}
