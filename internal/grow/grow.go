// Package grow holds the quiescent-time slice-growth helper shared by
// the maintenance states (core.State, traversal.State): per-vertex
// arrays are extended with zero-valued tails when the vertex universe
// grows.
package grow

// Slice returns s extended to n elements (zero-valued tail),
// reallocating with geometric over-allocation so repeated growth is
// amortized O(1) per element; it never shrinks. Callers grow only at
// quiescence, so the copy of the old elements — atomics and locks
// included — races with nothing.
func Slice[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]T, n, c)
	copy(ns, s)
	return ns
}
