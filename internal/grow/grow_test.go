package grow

import (
	"sync/atomic"
	"testing"
)

func TestSliceGrowsAndPreserves(t *testing.T) {
	s := make([]int32, 3)
	s[0], s[1], s[2] = 7, 8, 9
	s = Slice(s, 10)
	if len(s) != 10 || s[0] != 7 || s[2] != 9 || s[9] != 0 {
		t.Fatalf("grown slice %v", s)
	}
	if got := Slice(s, 4); len(got) != 10 {
		t.Fatal("Slice must never shrink")
	}
}

func TestSliceAtomicsCarryValues(t *testing.T) {
	s := make([]atomic.Int32, 2)
	s[0].Store(5)
	s = Slice(s, 1000)
	if s[0].Load() != 5 || s[999].Load() != 0 {
		t.Fatal("atomic values lost across growth")
	}
}

func TestSliceAmortizedCapacity(t *testing.T) {
	var s []int32
	reallocs := 0
	for n := 1; n <= 1<<16; n++ {
		c := cap(s)
		s = Slice(s, n)
		if cap(s) != c {
			reallocs++
		}
	}
	if reallocs > 20 {
		t.Fatalf("%d reallocations for 1<<16 single-step grows: not geometric", reallocs)
	}
}
