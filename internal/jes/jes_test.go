package jes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/gen"
	"repro/graph"
	"repro/internal/traversal"
)

func TestInsertBatchCorrect(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		base := gen.ErdosRenyi(200, 600, int64(workers))
		batch := gen.SampleNonEdges(base, 120, int64(workers)+5)
		st := traversal.NewState(base.Clone())
		s := InsertEdges(st, batch, workers)
		if s.Applied != len(batch) {
			t.Fatalf("%d workers: applied %d of %d", workers, s.Applied, len(batch))
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
	}
}

func TestRemoveBatchCorrect(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		base := gen.ErdosRenyi(200, 800, int64(workers)+50)
		batch := gen.SampleEdges(base, 150, int64(workers)+60)
		st := traversal.NewState(base.Clone())
		s := RemoveEdges(st, batch, workers)
		if s.Applied != len(batch) {
			t.Fatalf("%d workers: applied %d of %d", workers, s.Applied, len(batch))
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
	}
}

// The headline property the paper exploits: on a single-core-value graph
// (BA), the join-edge-set baseline has exactly one group per round — no
// parallelism — regardless of the worker count.
func TestParallelismCollapsesOnSingleCoreValue(t *testing.T) {
	base := gen.BarabasiAlbert(400, 4, 7)
	st := traversal.NewState(base.Clone())
	// Verify the premise: one dominant core value among sampled edges.
	batch := gen.SampleEdges(base, 200, 8)
	s := RemoveEdges(st, batch, 16)
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.MaxGroups > 2 {
		t.Fatalf("BA removal scheduled %d concurrent groups; expected parallelism collapse", s.MaxGroups)
	}
}

func TestMultiLevelGraphGetsParallelGroups(t *testing.T) {
	// RMAT has a wide core spectrum: expect >= 2 concurrent groups.
	base := gen.RMAT(10, 6000, 9)
	st := traversal.NewState(base.Clone())
	batch := gen.SampleEdges(base, 400, 10)
	s := RemoveEdges(st, batch, 16)
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.MaxGroups < 2 {
		t.Fatalf("RMAT removal scheduled only %d group(s)", s.MaxGroups)
	}
}

func TestInsertRemoveRoundTrip(t *testing.T) {
	base := gen.PowerLawCluster(250, 6, 2.5, 11)
	batch := gen.SampleNonEdges(base, 150, 12)
	st := traversal.NewState(base.Clone())
	InsertEdges(st, batch, 8)
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	RemoveEdges(st, batch, 8)
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("after remove: %v", err)
	}
	want := traversal.NewState(base)
	for v := int32(0); v < int32(base.N()); v++ {
		if st.CoreOf(v) != want.CoreOf(v) {
			t.Fatalf("core[%d] drifted after round trip", v)
		}
	}
}

func TestDuplicatesInBatch(t *testing.T) {
	base := gen.ErdosRenyi(80, 160, 13)
	fresh := gen.SampleNonEdges(base, 25, 14)
	batch := append(append([]graph.Edge{}, fresh...), fresh...)
	st := traversal.NewState(base.Clone())
	s := InsertEdges(st, batch, 4)
	if s.Applied != len(fresh) {
		t.Fatalf("applied %d, want %d", s.Applied, len(fresh))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBatch(t *testing.T) {
	st := traversal.NewState(gen.ErdosRenyi(30, 60, 1))
	if s := InsertEdges(st, nil, 4); s.Applied != 0 || s.Rounds != 0 {
		t.Fatalf("empty insert: %+v", s)
	}
	if s := RemoveEdges(st, nil, 4); s.Applied != 0 {
		t.Fatalf("empty remove: %+v", s)
	}
}

// Property: JES batches end in BZ ground truth across random graphs,
// batch sizes and worker counts.
func TestQuickJESMaintenance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(80)
		base := gen.ErdosRenyi(n, int64(3*n), seed)
		st := traversal.NewState(base.Clone())
		ins := gen.SampleNonEdges(base, 30, seed+1)
		InsertEdges(st, ins, 1+rng.Intn(8))
		if st.CheckInvariants() != nil {
			return false
		}
		rem := gen.SampleEdges(st.G, 30, seed+2)
		RemoveEdges(st, rem, 1+rng.Intn(8))
		return st.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 15}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
