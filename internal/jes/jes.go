// Package jes reimplements the join-edge-set parallel core maintenance
// baseline (JEI/JER, Hua et al. [22]) that the paper compares against. The
// original system is closed source; this reconstruction follows the paper's
// description of its two defining properties (§1, §6):
//
//  1. the batch is preprocessed — edges are grouped ("joined") by the core
//     level they affect, K(e) = min(core(u), core(v)) — and
//  2. parallelism exists only across distinct core levels: each selected
//     group runs the sequential Traversal algorithm, and groups whose
//     levels could interact are never scheduled together.
//
// Two maintenance operations at levels K and K' interact only when
// |K − K'| ≤ 1: an insertion at K writes cores at level K and mcd values at
// levels {K, K+1}; a removal at K writes cores at {K-1, K} and mcd at
// {K-1, K}; classification reads (core ≥ K?) of farther levels are unaffected
// by ±1 moves. The scheduler therefore picks a maximal set of pending levels
// pairwise ≥ 2 apart per round. An edge whose effective level drifted (its
// endpoints were touched by an earlier operation in the same round) is
// deferred to the next round, which keeps the window sound.
//
// The consequence the paper measures falls out directly: on graphs whose
// vertices concentrate on few core values (BA has a single one), every round
// selects one group and the "parallel" baseline degenerates to sequential
// execution, while Parallel-Order keeps all workers busy.
package jes

import (
	"sort"
	"sync"

	"repro/graph"
	"repro/internal/snapshot"
	"repro/internal/traversal"
)

// Stats summarizes one batch run.
type Stats struct {
	Applied int // edges actually inserted/removed
	Rounds  int // scheduling rounds executed
	// MaxGroups is the largest number of level groups run concurrently in
	// any round — the baseline's effective parallelism ceiling.
	MaxGroups int
	// VStar is Σ|V*| over the batch's applied operations: how many
	// core-number updates the batch caused, counting a vertex once per
	// operation that moved it.
	VStar int
	// Changed is the batch's ⋃V* — every vertex whose core number some
	// operation moved — deduplicated across rounds and levels, so a
	// vertex touched at multiple levels is reported once (a distinct-set
	// reporting contract; the snapshot publisher dedups again on its
	// own). It is the input to copy-on-write delta snapshot publication.
	Changed []int32
}

// InsertEdges applies the batch with the JEI scheme on the Traversal state.
func InsertEdges(st *traversal.State, edges []graph.Edge, workers int) Stats {
	return runBatch(st, edges, workers, true)
}

// RemoveEdges applies the batch with the JER scheme on the Traversal state.
func RemoveEdges(st *traversal.State, edges []graph.Edge, workers int) Stats {
	return runBatch(st, edges, workers, false)
}

func runBatch(st *traversal.State, edges []graph.Edge, workers int, insert bool) Stats {
	if workers < 1 {
		workers = 1
	}
	pending := append([]graph.Edge(nil), edges...)
	stats := Stats{}
	var appliedMu sync.Mutex

	for len(pending) > 0 {
		stats.Rounds++
		// Preprocessing: join edges into per-level sets.
		groups := map[int32][]graph.Edge{}
		for _, e := range pending {
			groups[level(st, e)] = append(groups[level(st, e)], e)
		}
		levels := make([]int32, 0, len(groups))
		for k := range groups {
			levels = append(levels, k)
		}
		sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
		// Select a maximal set of levels pairwise >= 2 apart.
		var selected []int32
		last := int32(-10)
		for _, k := range levels {
			if k-last >= 2 {
				selected = append(selected, k)
				last = k
			}
		}
		if len(selected) > stats.MaxGroups {
			stats.MaxGroups = len(selected)
		}
		var nextPending []graph.Edge
		for _, k := range levels {
			if !contains(selected, k) {
				nextPending = append(nextPending, groups[k]...)
			}
		}

		// Run the selected groups; at most `workers` at a time.
		var deferredMu sync.Mutex
		var deferred []graph.Edge
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, k := range selected {
			wg.Add(1)
			sem <- struct{}{}
			go func(k int32, es []graph.Edge) {
				defer func() { <-sem; wg.Done() }()
				applied, vstar := 0, 0
				var changed []int32
				for _, e := range es {
					// The level may have drifted under earlier
					// operations of this very round; re-check so
					// the isolation window stays sound.
					if level(st, e) != k {
						deferredMu.Lock()
						deferred = append(deferred, e)
						deferredMu.Unlock()
						continue
					}
					var s traversal.Stats
					if insert {
						s = st.InsertEdge(e.U, e.V)
					} else {
						s = st.RemoveEdge(e.U, e.V)
					}
					if s.Applied {
						applied++
						vstar += s.VStar
						changed = append(changed, s.Changed...)
					}
				}
				appliedMu.Lock()
				stats.Applied += applied
				stats.VStar += vstar
				stats.Changed = append(stats.Changed, changed...)
				appliedMu.Unlock()
			}(k, groups[k])
		}
		wg.Wait()
		pending = append(nextPending, deferred...)

		// Safety valve: if nothing was scheduled and nothing can make
		// progress (cannot happen with a non-empty selection, but keep
		// the loop total), fall back to sequential draining.
		if len(selected) == 0 {
			for _, e := range pending {
				var s traversal.Stats
				if insert {
					s = st.InsertEdge(e.U, e.V)
				} else {
					s = st.RemoveEdge(e.U, e.V)
				}
				if s.Applied {
					stats.Applied++
					stats.VStar += s.VStar
					stats.Changed = append(stats.Changed, s.Changed...)
				}
			}
			pending = nil
		}
	}
	// A vertex moved by operations at several levels (or in several
	// rounds) reaches Changed once.
	stats.Changed = snapshot.Dedup(stats.Changed)
	return stats
}

func level(st *traversal.State, e graph.Edge) int32 {
	cu, cv := st.CoreOf(e.U), st.CoreOf(e.V)
	if cu < cv {
		return cu
	}
	return cv
}

func contains(ks []int32, k int32) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}
