GO ?= go

.PHONY: all build vet test race bench bench-json fuzz-smoke loadserve crash cluster-check metrics-check examples

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Serving perf trajectory, recorded as go test -json output: the
# snapshot-publication families (full rebuild vs copy-on-write delta vs
# JES dedup+delta vs grow, across n and |V*|), the networked RESP stack
# (pipelined vs unpipelined reads and writes over loopback TCP), and the
# AOF hot path (per fsync policy). -benchmem records allocs/op and B/op
# so the zero-allocation command and append paths are tracked alongside
# throughput. BenchmarkMetricsOverhead prices the observability layer
# (instrumented vs bare hot path) in the same file.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSnapshotPublish|BenchmarkServeRESP|BenchmarkAOFAppend|BenchmarkClusterScaling|BenchmarkMetricsOverhead' -benchmem -json ./internal/snapshot ./server ./persist ./cluster > BENCH_serve.json

# Crash-recovery drills: the in-repo kill -9 harness (cmd/kcored's crash
# test spawns real server processes, so it skips itself under -short),
# the CLI drill (loadserve -recover-check), and the replication drill
# (loadserve -replica-check: durable leader + follower, kill -9 the
# leader mid-run, promote-by-restart, verify the follower re-syncs to
# the acked-mirror oracle) back to back.
crash:
	$(GO) test -run 'TestCrashRecovery|TestGracefulRestart|TestLoadImport' -count=1 -v ./cmd/kcored
	$(GO) build -o /tmp/kcored ./cmd/kcored
	$(GO) run ./cmd/loadserve -recover-check -kcored /tmp/kcored -d 3s
	$(GO) run ./cmd/loadserve -replica-check -kcored /tmp/kcored -d 3s

# Sharded-cluster drill: loadserve spawns real kcored shard processes
# running each engine in turn, churns mixed cross-shard traffic through
# the routing client, and verifies every routed read (full sweep +
# scatter-gather aggregates) against the cluster oracle.
cluster-check:
	$(GO) build -o /tmp/kcored ./cmd/kcored
	$(GO) run ./cmd/loadserve -cluster-check -kcored /tmp/kcored -shards 3 -alg parallel -d 2s
	$(GO) run ./cmd/loadserve -cluster-check -kcored /tmp/kcored -shards 3 -alg seq -d 2s
	$(GO) run ./cmd/loadserve -cluster-check -kcored /tmp/kcored -shards 3 -alg traversal -d 2s
	$(GO) run ./cmd/loadserve -cluster-check -kcored /tmp/kcored -shards 3 -alg jes -d 2s

# Observability drill: loadserve spawns a durable kcored with
# -metrics-addr and -slowlog-ms 0, churns mixed traffic, scrapes
# /metrics twice, asserts every expected metric family is present and
# parseable, that the counters moved, that each histogram's +Inf bucket
# equals its _count, and exercises CORE.SLOWLOG GET/LEN/RESET plus the
# pprof index.
metrics-check:
	$(GO) build -o /tmp/kcored ./cmd/kcored
	$(GO) run ./cmd/loadserve -metrics-check -kcored /tmp/kcored -d 2s

# Example smoke runs: each example builds itself and runs at a small
# scale, asserting its own verification line (skipped under -short).
examples:
	$(GO) test -count=1 ./examples/...

# Fuzzing smoke pass: the engine differential fuzzer (every registered
# engine against the BZ oracle on random mixed batches) and the RESP
# codec round-trip fuzzer. CI runs both on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMixedBatch -fuzztime 10s ./kcore
	$(GO) test -run '^$$' -fuzz FuzzRESP -fuzztime 10s ./resp

loadserve:
	$(GO) run ./cmd/loadserve -n 50000 -m 200000 -readers 8 -writers 2 -batch 64 -d 5s -check

# The networked stack end to end: kcored on an ER graph, driven by
# loadserve over TCP, invariant-checked server-side at the end. The PID
# is captured explicitly — job-control specs like %1 are not available
# in make's non-interactive /bin/sh.
loadserve-net:
	$(GO) run ./cmd/graphgen -model er -n 50000 -m 200000 > /tmp/kcored-er.txt
	$(GO) build -o /tmp/kcored ./cmd/kcored
	/tmp/kcored -addr 127.0.0.1:16380 -load /tmp/kcored-er.txt -quiet & pid=$$!; \
	sleep 2 && $(GO) run ./cmd/loadserve -net 127.0.0.1:16380 -readers 8 -writers 2 -d 5s -check; \
	status=$$?; kill -INT $$pid 2>/dev/null; wait $$pid 2>/dev/null; exit $$status
