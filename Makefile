GO ?= go

.PHONY: all build vet test race bench loadserve

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

loadserve:
	$(GO) run ./cmd/loadserve -n 50000 -m 200000 -readers 8 -writers 2 -batch 64 -d 5s -check
