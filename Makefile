GO ?= go

.PHONY: all build vet test race bench bench-json fuzz-smoke loadserve

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Snapshot-publication perf trajectory: full rebuild vs copy-on-write
# delta vs the JES dedup+delta path across n and |V*|, recorded as
# go test -json output.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkSnapshotPublish' -json ./internal/snapshot > BENCH_serve.json

# Differential fuzzing smoke pass: every registered engine against the
# BZ oracle on random mixed batches. CI runs this on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzMixedBatch -fuzztime 10s ./kcore

loadserve:
	$(GO) run ./cmd/loadserve -n 50000 -m 200000 -readers 8 -writers 2 -batch 64 -d 5s -check
