package obs

import (
	"io"
	"sync"
)

// Registry holds registered metrics and renders them in Prometheus text
// exposition format v0.0.4. Families render in first-registration
// order; series of one family (same name, different labels) are grouped
// under a single HELP/TYPE header regardless of registration
// interleaving, as the format requires.
type Registry struct {
	mu     sync.Mutex
	order  []*famGroup
	byName map[string]*famGroup
}

type famGroup struct {
	fam     family
	metrics []Metric
	keys    map[string]bool
}

func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*famGroup)}
}

// MustRegister adds metrics to the registry. It panics if a family name
// is reused with a different type or help text, or if two series of one
// family carry the same label set — both are exposition-format
// violations better caught at startup than by the scraper.
func (r *Registry) MustRegister(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		fam := m.familyOf()
		g := r.byName[fam.name]
		if g == nil {
			g = &famGroup{fam: fam, keys: make(map[string]bool)}
			r.byName[fam.name] = g
			r.order = append(r.order, g)
		} else if g.fam.typ != fam.typ || g.fam.help != fam.help {
			panic("obs: family " + fam.name + " re-registered with a different type or help")
		}
		for _, k := range m.seriesKeys() {
			if g.keys[k] {
				panic("obs: duplicate series " + fam.name + k)
			}
			g.keys[k] = true
		}
		g.metrics = append(g.metrics, m)
	}
}

// WritePrometheus renders every registered family to w. Callback
// metrics (FuncMetric, SeriesFunc) are sampled during the call.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := make([]byte, 0, 16<<10)
	for _, g := range r.order {
		b = append(b, "# HELP "...)
		b = append(b, g.fam.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, g.fam.help)
		b = append(b, '\n')
		b = append(b, "# TYPE "...)
		b = append(b, g.fam.name...)
		b = append(b, ' ')
		b = append(b, g.fam.typ...)
		b = append(b, '\n')
		for _, m := range g.metrics {
			b = m.appendSamples(b)
		}
	}
	_, err := w.Write(b)
	return err
}

// appendEscapedHelp escapes help text per the text format: backslash
// and newline (quotes stay literal in help).
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}
