package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition renderer byte for byte:
// HELP/TYPE headers, family grouping across interleaved registration,
// label escaping, histogram _bucket/_sum/_count, and callback metrics.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("test_requests_total", "Total requests.", L("family", "read"))
	c.Add(5)
	g := NewGauge("test_temp", "Current temp.\nSecond line \\ backslash.")
	g.Set(-3)
	// Registered out of family order: must still group under one header.
	c2 := NewCounter("test_requests_total", "Total requests.", L("family", "we\"ird\\va\nlue"))
	c2.Inc()
	h := NewHistogram("test_lat_seconds", "Latency.", 1e-3, []int64{1, 10, 100})
	h.Observe(1)
	h.Observe(5)
	h.Observe(1000)
	gf := NewGaugeFunc("test_func", "Func gauge.", func() float64 { return 1.5 })
	sf := NewGaugeSeriesFunc("test_series", "Dynamic series.", func() []Sample {
		return []Sample{
			{Labels: []Label{L("id", "0")}, Value: 10},
			{Labels: []Label{L("id", "1")}, Value: 20},
		}
	})
	reg.MustRegister(c, g, c2, h, gf, sf)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{family="read"} 5
test_requests_total{family="we\"ird\\va\nlue"} 1
# HELP test_temp Current temp.\nSecond line \\ backslash.
# TYPE test_temp gauge
test_temp -3
# HELP test_lat_seconds Latency.
# TYPE test_lat_seconds histogram
test_lat_seconds_bucket{le="0.001"} 1
test_lat_seconds_bucket{le="0.01"} 2
test_lat_seconds_bucket{le="0.1"} 2
test_lat_seconds_bucket{le="+Inf"} 3
test_lat_seconds_sum 1.006
test_lat_seconds_count 3
# HELP test_func Func gauge.
# TYPE test_func gauge
test_func 1.5
# HELP test_series Dynamic series.
# TYPE test_series gauge
test_series{id="0"} 10
test_series{id="1"} 20
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestParseRoundTrip feeds the renderer's output back through ParseText
// and checks series keys and values survive, including escaped labels.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("rt_total", "RT.", L("name", "a b{c}\"d\\e"))
	c.Add(7)
	h := NewDurationHistogram("rt_lat_seconds", "RT latency.")
	h.ObserveDuration(3 * time.Millisecond)
	reg.MustRegister(c, h)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if v := m[`rt_total{name="a b{c}\"d\\e"}`]; v != 7 {
		t.Fatalf("escaped-label series lost: got %v, map %v", v, m)
	}
	if v := m["rt_lat_seconds_count"]; v != 1 {
		t.Fatalf("histogram count: got %v", v)
	}
	if v := m[`rt_lat_seconds_bucket{le="+Inf"}`]; v != 1 {
		t.Fatalf("+Inf bucket: got %v", v)
	}
	if v := m["rt_lat_seconds_sum"]; v < 0.002 || v > 0.004 {
		t.Fatalf("sum: got %v, want ~0.003", v)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		`unterminated{label="x 3` + "\n",
		"bad value x\n",
		"0leading_digit 3\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q): want error, got nil", bad)
		}
	}
	// Timestamps and comments are fine.
	m, err := ParseText(strings.NewReader("# TYPE a counter\na 3 1700000000000\n"))
	if err != nil || m["a"] != 3 {
		t.Fatalf("timestamped sample: %v %v", m, err)
	}
}

// TestHotPathZeroAlloc pins the instrumentation contract: counter adds
// and histogram observations allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	c := NewCounter("alloc_total", "x")
	g := NewGauge("alloc_gauge", "x")
	h := NewDurationHistogram("alloc_lat_seconds", "x", L("family", "read"))
	if a := testing.AllocsPerRun(200, func() {
		c.Add(3)
		g.Set(9)
		h.Observe(412)
		h.ObserveN(1_500_000, 64)
	}); a != 0 {
		t.Fatalf("hot path allocates: %.1f allocs/run, want 0", a)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("q", "x", 1, []int64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile: got %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(15) // all in (10,20]
	}
	p50 := h.Quantile(0.5)
	if p50 <= 10 || p50 > 20 {
		t.Fatalf("p50 outside owning bucket: %v", p50)
	}
	h2 := NewHistogram("q2", "x", 1, []int64{10})
	h2.Observe(99) // +Inf bucket clamps to last bound
	if got := h2.Quantile(0.99); got != 10 {
		t.Fatalf("+Inf clamp: got %v, want 10", got)
	}
}

// TestConcurrentScrape hammers every primitive from writer goroutines
// while scraping in a loop — the registry must stay internally
// consistent (bucket cumulative counts monotone, _count == +Inf) and
// race-clean under -race.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("cc_total", "x")
	h := NewDurationHistogram("cc_lat_seconds", "x")
	g := NewGauge("cc_gauge", "x")
	reg.MustRegister(c, h, g)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(w*1000 + i%5000))
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("scrape not parseable: %v\n%s", err, buf.String())
		}
		if m[`cc_lat_seconds_bucket{le="+Inf"}`] != m["cc_lat_seconds_count"] {
			t.Fatalf("+Inf bucket != _count: %v", m)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	if l.Eligible(5 * time.Millisecond) {
		t.Fatal("below threshold should not be eligible")
	}
	if !l.Eligible(10 * time.Millisecond) {
		t.Fatal("at threshold should be eligible")
	}
	for i := 0; i < 6; i++ {
		l.Add("CMD", fmt.Sprintf("i=%d", i), time.Duration(i)*time.Millisecond)
	}
	if l.Len() != 4 || l.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4/6", l.Len(), l.Total())
	}
	snap := l.Snapshot(0)
	if len(snap) != 4 || snap[0].ID != 5 || snap[3].ID != 2 {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[0].Detail != "i=5" {
		t.Fatalf("detail: %+v", snap[0])
	}
	if got := l.Snapshot(2); len(got) != 2 || got[0].ID != 5 {
		t.Fatalf("bounded snapshot: %+v", got)
	}
	l.Reset()
	if l.Len() != 0 || l.Total() != 6 {
		t.Fatalf("after reset: len=%d total=%d", l.Len(), l.Total())
	}
	l.Add("X", "", time.Second)
	if snap := l.Snapshot(0); len(snap) != 1 || snap[0].ID != 6 {
		t.Fatalf("ids must survive reset: %+v", snap)
	}

	disabled := NewSlowLog(4, -1)
	if disabled.Eligible(time.Hour) {
		t.Fatal("negative threshold must disable the log")
	}
}

// TestServeEndpoint spins the real HTTP endpoint and checks /metrics
// content type + body and that pprof answers.
func TestServeEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter("ep_total", "x")
	c.Add(2)
	reg.MustRegister(c)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type: %q", ct)
	}
	if !strings.Contains(string(body), "ep_total 2") {
		t.Fatalf("body: %s", body)
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status: %d", pp.StatusCode)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.MustRegister(NewCounter("dup_total", "x", L("a", "1")))
	expectPanic("duplicate series", func() {
		reg.MustRegister(NewCounter("dup_total", "x", L("a", "1")))
	})
	expectPanic("type clash", func() {
		reg.MustRegister(NewGauge("dup_total", "x", L("a", "2")))
	})
	expectPanic("bad bounds", func() {
		NewHistogram("h", "x", 1, []int64{5, 5})
	})
}
