package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one recorded slow command.
type SlowEntry struct {
	ID     int64         // monotonically increasing, survives Reset
	Unix   int64         // wall-clock seconds when recorded
	Dur    time.Duration // measured duration
	Cmd    string        // command name
	Detail string        // free-form context (arg counts, edge counts)
}

// SlowLog is a fixed-size ring of the slowest commands, in the style of
// redis SLOWLOG. The hot-path gate is Eligible — one atomic load and a
// compare; Add itself takes a mutex but only runs for commands already
// past the threshold.
type SlowLog struct {
	threshold atomic.Int64 // ns; negative disables the log entirely
	total     atomic.Int64 // entries ever recorded (survives Reset)

	mu   sync.Mutex
	ring []SlowEntry
	n    int   // live entries
	next int   // ring write index
	seq  int64 // next entry id
}

// NewSlowLog builds a slowlog ring. size <= 0 defaults to 128 entries;
// threshold < 0 disables recording (a threshold of 0 records every
// timed command).
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size <= 0 {
		size = 128
	}
	l := &SlowLog{ring: make([]SlowEntry, size)}
	l.threshold.Store(int64(threshold))
	return l
}

// Threshold returns the current threshold (negative = disabled).
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold changes the threshold at runtime.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.threshold.Store(int64(d))
}

// Eligible reports whether a command of duration d should be recorded.
func (l *SlowLog) Eligible(d time.Duration) bool {
	t := l.threshold.Load()
	return t >= 0 && int64(d) >= t
}

// Add records one slow command.
func (l *SlowLog) Add(cmd, detail string, d time.Duration) {
	now := time.Now().Unix()
	l.total.Add(1)
	l.mu.Lock()
	l.ring[l.next] = SlowEntry{ID: l.seq, Unix: now, Dur: d, Cmd: cmd, Detail: detail}
	l.seq++
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// Len returns the number of live entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of entries ever recorded.
func (l *SlowLog) Total() int64 { return l.total.Load() }

// Reset drops all live entries. Entry ids keep increasing.
func (l *SlowLog) Reset() {
	l.mu.Lock()
	l.n, l.next = 0, 0
	l.mu.Unlock()
}

// Snapshot returns up to max entries, newest first (max <= 0 returns
// all live entries).
func (l *SlowLog) Snapshot(max int) []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]SlowEntry, n)
	for i := 0; i < n; i++ {
		out[i] = l.ring[(l.next-1-i+len(l.ring)*2)%len(l.ring)]
	}
	return out
}
