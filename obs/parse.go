package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseText parses Prometheus text exposition format into a map from
// series (name plus label set, verbatim as written) to value. Comment
// and blank lines are skipped; malformed sample lines are errors. It is
// the consumer side of WritePrometheus — loadserve uses it to scrape
// /metrics and print deltas, and the metrics-check drill uses it to
// assert a live endpoint is parseable.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (string, float64, error) {
	sp := strings.IndexByte(line, ' ')
	br := strings.IndexByte(line, '{')
	end := -1 // last index of the series part
	if br >= 0 && (sp < 0 || br < sp) {
		// Labeled series: scan for the closing brace outside quotes
		// (label values may contain spaces, braces, escaped quotes).
		inQ, esc := false, false
	scan:
		for i := br + 1; i < len(line); i++ {
			switch c := line[i]; {
			case esc:
				esc = false
			case c == '\\' && inQ:
				esc = true
			case c == '"':
				inQ = !inQ
			case c == '}' && !inQ:
				end = i
				break scan
			}
		}
		if end < 0 {
			return "", 0, errors.New("unterminated label set")
		}
		if !validMetricName(line[:br]) {
			return "", 0, fmt.Errorf("invalid metric name %q", line[:br])
		}
	} else {
		if sp < 0 {
			return "", 0, errors.New("missing value")
		}
		end = sp - 1
		if !validMetricName(line[:sp]) {
			return "", 0, fmt.Errorf("invalid metric name %q", line[:sp])
		}
	}
	series := line[:end+1]
	rest := strings.TrimSpace(line[end+1:])
	if rest == "" {
		return "", 0, errors.New("missing value")
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i] // drop optional timestamp
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q", rest)
	}
	return series, v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
