package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves a registry's metrics in text exposition format.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// NewMux builds the observability mux: /metrics plus the standard
// net/http/pprof endpoints under /debug/pprof/. pprof is mounted on
// this private mux explicitly (not http.DefaultServeMux) so enabling
// metrics never leaks profiling onto some other listener.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP endpoint.
type Server struct {
	ln net.Listener
	hs *http.Server
}

// Serve starts the observability endpoint on addr and returns
// immediately; the HTTP server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, hs: &http.Server{Handler: NewMux(reg)}}
	go s.hs.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.hs.Close() }
