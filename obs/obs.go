// Package obs provides dependency-free instrumentation primitives for
// the serving stack: monotonic counters, gauges, fixed-bucket latency
// histograms, and a registry that renders Prometheus text exposition
// format v0.0.4.
//
// The update paths are built for the server's zero-allocation command
// path: Counter.Add, Gauge.Set, and Histogram.Observe/ObserveN are
// single atomic adds (the histogram adds three) with no locks, no
// boxing, and no allocation. Everything slow — label rendering, bucket
// header strings, exposition output — is precomputed at construction
// or paid at scrape time.
//
// Histograms store raw int64 units (the serving stack uses
// nanoseconds) and apply a float64 scale only when rendering, so the
// hot path never touches floating point or a CAS loop.
package obs

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// family identifies a metric family; every series of the family shares
// the name, help text, and type, and the registry renders the HELP and
// TYPE header once per family.
type family struct {
	name string
	help string
	typ  string
}

// Metric is anything the registry can expose. Implementations append
// their sample lines to a scrape buffer; series with static labels also
// report canonical series keys so the registry can reject duplicates.
type Metric interface {
	familyOf() family
	seriesKeys() []string
	appendSamples(b []byte) []byte
}

// renderLabels pre-renders a label set as `{k="v",...}` with exposition
// escaping, or "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	b := []byte{'{'}
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=', '"')
		b = appendEscaped(b, l.Value)
		b = append(b, '"')
	}
	return string(append(b, '}'))
}

// appendEscaped escapes a label value per the text format: backslash,
// double quote, and newline.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Counter is a monotonically increasing int64 counter.
type Counter struct {
	v      atomic.Int64
	fam    family
	labels string
}

// NewCounter builds a counter series. The name should end in _total.
func NewCounter(name, help string, labels ...Label) *Counter {
	return &Counter{fam: family{name, help, "counter"}, labels: renderLabels(labels)}
}

func (c *Counter) Inc()              { c.v.Add(1) }
func (c *Counter) Add(n int64)       { c.v.Add(n) }
func (c *Counter) Value() int64      { return c.v.Load() }
func (c *Counter) familyOf() family  { return c.fam }
func (c *Counter) seriesKeys() []string {
	return []string{c.labels}
}

func (c *Counter) appendSamples(b []byte) []byte {
	b = append(b, c.fam.name...)
	b = append(b, c.labels...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, c.v.Load(), 10)
	return append(b, '\n')
}

// Gauge is an int64 value that can go up and down.
type Gauge struct {
	v      atomic.Int64
	fam    family
	labels string
}

func NewGauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{fam: family{name, help, "gauge"}, labels: renderLabels(labels)}
}

func (g *Gauge) Set(v int64)        { g.v.Store(v) }
func (g *Gauge) Add(n int64)        { g.v.Add(n) }
func (g *Gauge) Value() int64       { return g.v.Load() }
func (g *Gauge) familyOf() family   { return g.fam }
func (g *Gauge) seriesKeys() []string {
	return []string{g.labels}
}

func (g *Gauge) appendSamples(b []byte) []byte {
	b = append(b, g.fam.name...)
	b = append(b, g.labels...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, g.v.Load(), 10)
	return append(b, '\n')
}

// FuncMetric samples a float64 from a callback at scrape time. It wraps
// counters and gauges that already live elsewhere (a struct of atomics,
// a mutex-guarded stats snapshot) without duplicating their state.
type FuncMetric struct {
	fam    family
	labels string
	fn     func() float64
}

func NewCounterFunc(name, help string, fn func() float64, labels ...Label) *FuncMetric {
	return &FuncMetric{fam: family{name, help, "counter"}, labels: renderLabels(labels), fn: fn}
}

func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *FuncMetric {
	return &FuncMetric{fam: family{name, help, "gauge"}, labels: renderLabels(labels), fn: fn}
}

func (f *FuncMetric) familyOf() family { return f.fam }
func (f *FuncMetric) seriesKeys() []string {
	return []string{f.labels}
}

func (f *FuncMetric) appendSamples(b []byte) []byte {
	b = append(b, f.fam.name...)
	b = append(b, f.labels...)
	b = append(b, ' ')
	b = appendFloat(b, f.fn())
	return append(b, '\n')
}

// Sample is one dynamically labeled sample emitted by a SeriesFunc.
type Sample struct {
	Labels []Label
	Value  float64
}

// SeriesFunc emits a variable set of labeled samples at scrape time —
// for series whose label values only exist dynamically, like one gauge
// per connected replication follower.
type SeriesFunc struct {
	fam family
	fn  func() []Sample
}

func NewGaugeSeriesFunc(name, help string, fn func() []Sample) *SeriesFunc {
	return &SeriesFunc{fam: family{name, help, "gauge"}, fn: fn}
}

func NewCounterSeriesFunc(name, help string, fn func() []Sample) *SeriesFunc {
	return &SeriesFunc{fam: family{name, help, "counter"}, fn: fn}
}

func (s *SeriesFunc) familyOf() family     { return s.fam }
func (s *SeriesFunc) seriesKeys() []string { return nil }

func (s *SeriesFunc) appendSamples(b []byte) []byte {
	for _, sm := range s.fn() {
		b = append(b, s.fam.name...)
		b = append(b, renderLabels(sm.Labels)...)
		b = append(b, ' ')
		b = appendFloat(b, sm.Value)
		b = append(b, '\n')
	}
	return b
}

// Histogram is a fixed-bucket histogram over raw int64 units. Bounds
// are inclusive upper bounds in raw units; scale converts raw units to
// the exported unit at render time (1e-9 for nanoseconds → seconds).
// Observe is three atomic adds — no locks, no floats, no allocation.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // raw units
	counts []atomic.Int64
	fam    family
	labels string
	scale  float64
	bounds []int64

	// Pre-rendered exposition prefixes: "name_bucket{...,le=\"x\"} ",
	// "name_sum{...} ", "name_count{...} ".
	bucketHdr []string
	sumHdr    string
	countHdr  string
}

// NewHistogram builds a histogram with the given raw-unit bucket upper
// bounds (strictly ascending) and render-time scale. A final +Inf
// bucket is implicit.
func NewHistogram(name, help string, scale float64, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending: " + name)
		}
	}
	h := &Histogram{
		fam:    family{name, help, "histogram"},
		labels: renderLabels(labels),
		scale:  scale,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.bucketHdr = make([]string, len(bounds)+1)
	for i := range h.bucketHdr {
		le := "+Inf"
		if i < len(bounds) {
			le = string(appendFloat(nil, float64(bounds[i])*scale))
		}
		h.bucketHdr[i] = name + "_bucket" + renderLabels(append(append([]Label(nil), labels...), L("le", le))) + " "
	}
	h.sumHdr = name + "_sum" + h.labels + " "
	h.countHdr = name + "_count" + h.labels + " "
	return h
}

// DurationBounds returns the default latency bucket upper bounds in
// nanoseconds: 100ns to 10s, roughly geometric.
func DurationBounds() []int64 {
	return []int64{
		100, 250, 500, // ns
		1_000, 2_500, 5_000, 10_000, 25_000, 50_000, // µs range
		100_000, 250_000, 500_000, // sub-ms
		1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, // ms range
		100e6, 250e6, 500e6, // sub-second
		1e9, 2.5e9, 5e9, 10e9, // seconds
	}
}

// NewDurationHistogram builds a histogram over nanoseconds, exported in
// seconds, with DurationBounds buckets.
func NewDurationHistogram(name, help string, labels ...Label) *Histogram {
	return NewHistogram(name, help, 1e-9, DurationBounds(), labels...)
}

// Observe records one observation of v raw units.
func (h *Histogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v raw units each — the weighted
// form the server uses to charge a pipelined burst's per-command mean
// to every command of the burst with one call.
func (h *Histogram) ObserveN(v, n int64) {
	if n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// ObserveDuration records one duration observation (raw unit ns).
func (h *Histogram) ObserveDuration(d time.Duration) { h.ObserveN(int64(d), 1) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0..1) in exported units by linear
// interpolation within the owning bucket. Observations beyond the last
// bound clamp to it. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	snap := make([]int64, len(h.counts))
	total := int64(0)
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	cum := int64(0)
	for i, c := range snap {
		cum += c
		if cum < target {
			continue
		}
		if i >= len(h.bounds) {
			break // +Inf bucket: clamp to the last finite bound
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(h.bounds[i-1])
		}
		hi := float64(h.bounds[i])
		frac := float64(target-(cum-c)) / float64(c)
		return (lo + (hi-lo)*frac) * h.scale
	}
	return float64(h.bounds[len(h.bounds)-1]) * h.scale
}

func (h *Histogram) familyOf() family { return h.fam }
func (h *Histogram) seriesKeys() []string {
	return []string{h.labels}
}

func (h *Histogram) appendSamples(b []byte) []byte {
	// _count is rendered from the bucket sum, not the separate total, so
	// the +Inf bucket and _count always agree even mid-update.
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		b = append(b, h.bucketHdr[i]...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, h.sumHdr...)
	b = appendFloat(b, float64(h.sum.Load())*h.scale)
	b = append(b, '\n')
	b = append(b, h.countHdr...)
	b = strconv.AppendInt(b, cum, 10)
	return append(b, '\n')
}
