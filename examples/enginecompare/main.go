// Enginecompare runs the same maintenance workload through all four engines
// — Parallel-Order, Sequential-Order, Traversal, and the join-edge-set
// baseline — and prints their timings side by side: a miniature of the
// paper's Fig. 4 on a single graph.
//
//	go run ./examples/enginecompare
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/gen"
	"repro/kcore"
)

func main() {
	const (
		vertices = 10000
		batch    = 3000
		workers  = 8
	)
	base := gen.RMAT(14, 4*vertices, 21)
	removeBatch := gen.SampleEdges(base, batch, 22)
	withoutBatch := base.Clone()
	for _, e := range removeBatch {
		withoutBatch.RemoveEdge(e.U, e.V)
	}
	fmt.Printf("graph: n=%d m=%d, batch=%d edges, %d workers for parallel engines\n\n",
		base.N(), base.M(), batch, workers)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tinsert\tremove\tverified")
	for _, alg := range []kcore.Algorithm{
		kcore.ParallelOrder, kcore.SequentialOrder, kcore.Traversal, kcore.JoinEdgeSet,
	} {
		mi := kcore.New(withoutBatch.Clone(), kcore.WithAlgorithm(alg), kcore.WithWorkers(workers))
		ins := mi.InsertEdges(removeBatch)
		mr := kcore.New(base.Clone(), kcore.WithAlgorithm(alg), kcore.WithWorkers(workers))
		rem := mr.RemoveEdges(removeBatch)
		ok := "yes"
		if mi.Check() != nil || mr.Check() != nil {
			ok = "NO"
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%s\n", alg, ins.Duration, rem.Duration, ok)
	}
	tw.Flush()
	fmt.Println("\n(On a single-CPU machine parallel engines show overhead, not speedup;")
	fmt.Println(" the algorithmic contrast Order-vs-Traversal is visible regardless.)")
}
