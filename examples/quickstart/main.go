// Quickstart: build a graph, maintain core numbers through edge insertions
// and removals, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/graph"
	"repro/kcore"
)

func main() {
	// A path 0-1-2 plus an isolated vertex 3: everything is core <= 1.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m := kcore.New(g) // ParallelOrder engine, 1 worker by default

	fmt.Println("initial cores:", m.CoreNumbers()) // [1 1 1 0]

	// Closing the triangle lifts vertices 0,1,2 to core 2.
	res := m.InsertEdge(0, 2)
	fmt.Printf("insert (0,2): %d edges applied, %d cores changed\n",
		res.Applied, res.ChangedVertices)
	fmt.Println("after insert:", m.CoreNumbers()) // [2 2 2 0]

	// Batches work the same way and are how the parallel engine shines.
	batch := []graph.Edge{{U: 3, V: 0}, {U: 3, V: 1}, {U: 3, V: 2}}
	m.InsertEdges(batch)
	fmt.Println("after batch: ", m.CoreNumbers()) // [3 3 3 3] — K4

	// Removal maintains cores too.
	m.RemoveEdge(0, 1)
	fmt.Println("after remove:", m.CoreNumbers())
	fmt.Println("max core:", m.MaxCore())

	// Check() recomputes from scratch and compares — handy in tests.
	if err := m.Check(); err != nil {
		panic(err)
	}
	fmt.Println("maintained cores verified against a fresh decomposition")
}
