// Temporalwindow maintains the k-core structure of a sliding time window
// over a timestamped edge stream — the temporal-graph setting of the paper's
// evaluation (DBLP, Flickr, StackOverflow, wiki-edits-sh in §6.2): as the
// window advances, the newest batch of edges is inserted and the expired
// batch removed, and the densest community is tracked over time.
//
//	go run ./examples/temporalwindow
package main

import (
	"flag"
	"fmt"

	"repro/gen"
	"repro/graph"
	"repro/kcore"
)

func main() {
	var (
		vertices   = flag.Int("vertices", 8000, "vertices in the contact network")
		windowLen  = flag.Int("window", 12, "window size in batches")
		batchEdges = flag.Int("batch-edges", 1500, "edges per stream batch")
		steps      = flag.Int("steps", 8, "window slides to run")
		workers    = flag.Int("workers", 8, "engine worker goroutines")
	)
	flag.Parse()
	// Synthesize a timestamped interaction stream over a power-law
	// contact network (the stand-in for a KONECT temporal graph).
	full := gen.PowerLawCluster(*vertices, 14, 2.3, 3)
	stream := gen.TemporalStream(full, 11)
	batches := len(stream) / *batchEdges
	fmt.Printf("stream: %d timestamped edges in %d batches\n", len(stream), batches)

	batch := func(i int) []graph.Edge {
		var out []graph.Edge
		for _, te := range stream[i**batchEdges : (i+1)**batchEdges] {
			out = append(out, te.E)
		}
		return out
	}

	// Start with the first windowLen batches inside the window.
	m := kcore.New(graph.New(*vertices), kcore.WithWorkers(*workers))
	for i := 0; i < *windowLen && i < batches; i++ {
		m.InsertEdges(batch(i))
	}
	fmt.Printf("window [0,%d): max core %d\n", *windowLen, m.MaxCore())

	// Slide: each step admits one new batch and expires the oldest.
	for s := 0; s < *steps && *windowLen+s < batches; s++ {
		newest := *windowLen + s
		oldest := s
		ins := m.InsertEdges(batch(newest))
		rem := m.RemoveEdges(batch(oldest))
		hist := m.CoreHistogram()
		top := int64(0)
		if len(hist) > 0 {
			top = hist[len(hist)-1]
		}
		fmt.Printf("window [%d,%d): +%d/-%d edges in %v, max core %d (%d vertices at the top)\n",
			oldest+1, newest+1, ins.Applied, rem.Applied,
			ins.Duration+rem.Duration, m.MaxCore(), top)
	}

	if err := m.Check(); err != nil {
		panic(err)
	}
	fmt.Println("verified: maintained cores equal a fresh decomposition")
}
