package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmoke builds and runs the example at a small scale and checks the
// self-verification line — the example must stay a working, correct
// demo, not just compile.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke run skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "temporalwindow")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := exec.Command(bin, "-vertices", "1000", "-window", "4", "-batch-edges", "300", "-steps", "3", "-workers", "2")
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "verified: maintained cores equal a fresh decomposition") {
		t.Fatalf("output missing the verification line:\n%s", out)
	}
	if !strings.Contains(string(out), "window [") {
		t.Fatalf("output missing the sliding-window report:\n%s", out)
	}
}
