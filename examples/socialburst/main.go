// Socialburst simulates the paper's motivating scenario (§1): a burst of new
// interactions arrives in a social network and the application must identify
// newly dense regions — potential super-spreaders of misinformation — fast
// enough to keep up with the stream.
//
// A Barabási–Albert network is the adversarial case for older parallel
// maintainers (every vertex shares one core number, so level-parallel
// approaches degenerate to sequential execution); Parallel-Order handles the
// burst with all workers busy.
//
//	go run ./examples/socialburst
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/gen"
	"repro/kcore"
)

func main() {
	var (
		users     = flag.Int("users", 20000, "users in the simulated network")
		burstSize = flag.Int("burst", 4000, "new interactions per burst")
		workers   = flag.Int("workers", 8, "engine worker goroutines")
		alarmCore = flag.Int("alarm-core", 5, "\"densely embedded\" core threshold")
	)
	flag.Parse()
	network := gen.BarabasiAlbert(*users, 4, 7)
	m := kcore.New(network, kcore.WithWorkers(*workers))
	fmt.Printf("network: %d users, %d follows, max core %d\n",
		network.N(), network.M(), m.MaxCore())
	before := m.CoreNumbers()

	// A burst: a hot topic makes thousands of new interactions appear at
	// once, concentrated around existing hubs (preferential attachment).
	burst := gen.SampleNonEdges(m.Graph(), *burstSize, 99)

	t0 := time.Now()
	res := m.InsertEdges(burst)
	elapsed := time.Since(t0)
	fmt.Printf("burst: %d new interactions maintained in %v with %d workers\n",
		res.Applied, elapsed, *workers)
	fmt.Printf("core numbers updated for %d users\n", res.ChangedVertices)

	// Surface the users whose density jumped past the alarm threshold —
	// the response team looks at these first.
	after := m.CoreNumbers()
	alarms := 0
	for v := range after {
		if before[v] < int32(*alarmCore) && after[v] >= int32(*alarmCore) {
			alarms++
			if alarms <= 5 {
				fmt.Printf("  alarm: user %d entered the %d-core (was %d)\n",
					v, after[v], before[v])
			}
		}
	}
	if alarms == 0 {
		fmt.Println("  no user crossed the alarm threshold this burst")
	} else if alarms > 5 {
		fmt.Printf("  ... and %d more\n", alarms-5)
	}

	if err := m.Check(); err != nil {
		panic(err)
	}
	fmt.Println("verified: maintained cores equal a fresh decomposition")
}
