package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 17, 1000} {
		g := New(n)
		if n > 1 {
			for i := 0; i < 4*n; i++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u != v {
					g.AddEdge(u, v)
				}
			}
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("n=%d: WriteBinary: %v", n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: ReadBinary: %v", n, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("n=%d: got n=%d m=%d, want n=%d m=%d", n, got.N(), got.M(), g.N(), g.M())
		}
		for v := int32(0); v < int32(n); v++ {
			a, b := g.Adj(v), got.Adj(v)
			if len(a) != len(b) {
				t.Fatalf("n=%d: degree mismatch at %d: %d vs %d", n, v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d: adj[%d][%d] = %d, want %d", n, v, i, b[i], a[i])
				}
			}
		}
		if err := got.CheckConsistent(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestBinaryDecodedAppendSafe verifies the full-capacity subslice trick:
// adding an edge to a decoded graph must not clobber a neighbor vertex's
// adjacency (they share one backing array).
func TestBinaryDecodedAppendSafe(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d.AddEdge(0, 2) // appends to adj[0], which abuts adj[1] in the backing
	if !d.HasEdge(0, 1) || !d.HasEdge(2, 3) || !d.HasEdge(0, 2) {
		t.Fatalf("adjacency clobbered after append: %v", d.Edges())
	}
	if err := d.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := New(8)
	g.AddEdge(0, 1)
	g.AddEdge(5, 6)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	ok := buf.Bytes()

	mutate := func(name string, f func(b []byte)) {
		b := append([]byte(nil), ok...)
		f(b)
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decoded corrupt stream without error", name)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] ^= 0xff })
	mutate("bad version", func(b []byte) { b[4] = 99 })
	mutate("degree sum mismatch", func(b []byte) { b[24]++ })            // degree[0]++
	mutate("neighbor out of range", func(b []byte) { b[len(b)-4] = 88 }) // last target id
	if _, err := ReadBinary(bytes.NewReader(ok[:len(ok)-3])); err == nil {
		t.Error("truncated stream decoded without error")
	}
}
