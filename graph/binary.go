package graph

// Binary adjacency serialization — the checkpoint wire format of the
// durability subsystem (package persist). The layout is a degree-prefixed
// CSR, little-endian throughout:
//
//	u32 magic "KGR1"  u32 version
//	u64 n  u64 m
//	u32 degree[n]
//	i32 targets[2m]   (adjacency of vertex 0, then 1, …)
//
// Decoding reconstructs every adjacency slice over one flat backing array
// (full-capacity subslices, so a later append on one vertex reallocates
// instead of clobbering its neighbor), which makes loading a checkpointed
// graph one big read plus an O(n) slice walk — the reason recovery beats
// re-parsing a text edge list. Integrity is the caller's business: persist
// frames the stream with a CRC; ReadBinary itself validates only structure
// (counts, bounds), not adjacency symmetry.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	binaryMagic   = 0x4b475231 // "KGR1"
	binaryVersion = 1
)

// binaryChunk is the encode/decode staging-buffer size: large enough to
// amortize Write/Read calls, small enough to stay cache-friendly.
const binaryChunk = 64 << 10

// WriteBinary writes the graph in the binary CSR format. The graph must
// be quiescent for the duration of the call.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, binaryChunk)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binaryChunk]byte
	k := 0
	flushIfFull := func() error {
		if k+4 > len(buf) {
			_, err := bw.Write(buf[:k])
			k = 0
			return err
		}
		return nil
	}
	for _, a := range g.adj {
		if err := flushIfFull(); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[k:], uint32(len(a)))
		k += 4
	}
	for _, a := range g.adj {
		for _, v := range a {
			if err := flushIfFull(); err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(buf[k:], uint32(v))
			k += 4
		}
	}
	if k > 0 {
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary CSR format written by
// WriteBinary. Structural corruption (bad magic, counts that do not add
// up, out-of-range neighbor ids) returns an error; callers wanting
// bit-level integrity should frame the stream with a checksum.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, binaryChunk)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	// n is bounded by int32 (adjacency ids), not MaxVertexID: explicit
	// growth (AddVertices / WithMaxVertices) may raise a graph past the
	// data-driven construction ceiling, and a checkpoint must round-trip
	// whatever the maintainer actually held.
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: binary n=%d beyond int32", n)
	}
	if m > uint64(n)*uint64(MaxVertexID) { // loose sanity bound
		return nil, fmt.Errorf("graph: binary m=%d implausible for n=%d", m, n)
	}
	deg := make([]int32, n)
	if err := readInt32s(br, deg); err != nil {
		return nil, fmt.Errorf("graph: binary degrees: %w", err)
	}
	var total uint64
	for _, d := range deg {
		if d < 0 {
			return nil, fmt.Errorf("graph: binary negative degree %d", d)
		}
		total += uint64(d)
	}
	if total != 2*m {
		return nil, fmt.Errorf("graph: binary degree sum %d != 2m=%d", total, 2*m)
	}
	backing := make([]int32, total)
	if err := readInt32s(br, backing); err != nil {
		return nil, fmt.Errorf("graph: binary targets: %w", err)
	}
	for _, w := range backing {
		if w < 0 || uint64(w) >= n {
			return nil, fmt.Errorf("graph: binary neighbor id %d out of range", w)
		}
	}
	g := New(int(n))
	off := uint64(0)
	for v := range g.adj {
		d := uint64(deg[v])
		if d == 0 {
			continue
		}
		// Full-capacity subslice: appending to one vertex's adjacency must
		// reallocate, never write into the next vertex's entries.
		g.adj[v] = backing[off : off+d : off+d]
		off += d
	}
	g.m.Store(int64(m))
	return g, nil
}

// readInt32s fills dst from br, little-endian, via a chunked staging
// buffer.
func readInt32s(br *bufio.Reader, dst []int32) error {
	var buf [binaryChunk]byte
	for len(dst) > 0 {
		want := len(dst) * 4
		if want > len(buf) {
			want = len(buf)
		}
		if _, err := io.ReadFull(br, buf[:want]); err != nil {
			return err
		}
		for i := 0; i < want; i += 4 {
			dst[0] = int32(binary.LittleEndian.Uint32(buf[i:]))
			dst = dst[1:]
		}
	}
	return nil
}
