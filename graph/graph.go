// Package graph provides the dynamic undirected graph substrate for core
// maintenance: adjacency arrays with O(1) insertion and O(deg) removal
// (the paper stores edges in arrays, §6.3), plus edge-list I/O and batch
// construction with self-loop/duplicate stripping (§6.2).
//
// Concurrency contract: the maintenance algorithms only read or mutate the
// adjacency of a vertex while holding that vertex's lock, so Graph performs
// no internal synchronization. Race-detector runs of the parallel algorithms
// validate the discipline.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V int32
}

// Norm returns the edge with endpoints ordered U <= V, the canonical form
// used for deduplication.
func (e Edge) Norm() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is a dynamic undirected simple graph over vertices 0..n-1.
type Graph struct {
	adj [][]int32
	m   atomic.Int64
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// MaxVertexID bounds the vertex ids data-driven construction accepts
// (FromEdges growth, ReadEdgeList parsing): one corrupt id in an edge
// list must produce an error, not a universe-sized allocation. Callers
// that really want a larger pre-sized universe ask for it explicitly
// with New or Grow.
const MaxVertexID = 1<<28 - 1

// FromEdges builds a graph with at least n vertices from an edge list,
// silently dropping self-loops and duplicate edges (paper §6.2: "all of the
// self-loops and repeated edges are removed"). Endpoints beyond n grow the
// vertex universe to cover them — edge lists over an open id space Just
// Work — while a negative endpoint, or one beyond MaxVertexID, is a
// malformed input and returns an error.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in edge (%d,%d)", e.U, e.V)
		}
		if e.U > MaxVertexID || e.V > MaxVertexID {
			return nil, fmt.Errorf("graph: vertex id beyond MaxVertexID in edge (%d,%d)", e.U, e.V)
		}
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	g := New(n)
	uniq := normalizeEdges(edges)
	for _, e := range uniq {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	g.m.Store(int64(len(uniq)))
	return g, nil
}

// MustFromEdges is FromEdges for edge lists known to be well-formed
// (generators, literals in tests); it panics on a negative endpoint.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// normalizeEdges returns the canonical, deduplicated, self-loop-free edge
// set, sorted lexicographically.
func normalizeEdges(edges []Edge) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		out = append(out, e.Norm())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	w := 0
	for i, e := range out {
		if i > 0 && e == out[i-1] {
			continue
		}
		out[w] = e
		w++
	}
	return out[:w]
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int64 { return g.m.Load() }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Adj returns the adjacency slice of v. The slice is owned by the graph;
// callers must not modify it and must hold v's lock in parallel phases.
func (g *Graph) Adj(v int32) []int32 { return g.adj[v] }

// HasEdge reports whether the edge (u, v) is present. O(min(deg u, deg v)).
func (g *Graph) HasEdge(u, v int32) bool {
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u, v). It returns false without
// modifying the graph when the edge is a self-loop or already present.
func (g *Graph) AddEdge(u, v int32) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m.Add(1)
	return true
}

// addEdgeUnchecked appends the edge without the duplicate scan; used by
// callers that already know the edge is absent.
func (g *Graph) addEdgeUnchecked(u, v int32) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m.Add(1)
}

// RemoveEdge deletes the undirected edge (u, v) with swap-removal from both
// adjacency arrays. It returns false when the edge is absent. O(deg u +
// deg v), matching the array storage the paper evaluates.
func (g *Graph) RemoveEdge(u, v int32) bool {
	if !removeFrom(&g.adj[u], v) {
		return false
	}
	if !removeFrom(&g.adj[v], u) {
		panic(fmt.Sprintf("graph: asymmetric adjacency for edge (%d,%d)", u, v))
	}
	g.m.Add(-1)
	return true
}

func removeFrom(adj *[]int32, x int32) bool {
	a := *adj
	for i, w := range a {
		if w == x {
			a[i] = a[len(a)-1]
			*adj = a[:len(a)-1]
			return true
		}
	}
	return false
}

// AddVertex appends an isolated vertex and returns its id.
func (g *Graph) AddVertex() int32 {
	g.adj = append(g.adj, nil)
	return int32(len(g.adj) - 1)
}

// AddVertices appends k isolated vertices and returns the id of the first
// (the current N when k <= 0). Amortized O(1) per vertex: the adjacency
// table grows geometrically like any append.
func (g *Graph) AddVertices(k int) int32 {
	first := int32(len(g.adj))
	if k > 0 {
		g.adj = append(g.adj, make([][]int32, k)...)
	}
	return first
}

// Grow ensures the graph has at least n vertices, appending isolated ones.
// It never shrinks. Amortized O(1) per added vertex.
func (g *Graph) Grow(n int) {
	if n > len(g.adj) {
		g.adj = append(g.adj, make([][]int32, n-len(g.adj))...)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	c.m.Store(g.m.Load())
	for v, a := range g.adj {
		if len(a) > 0 {
			c.adj[v] = append([]int32(nil), a...)
		}
	}
	return c
}

// Edges returns every edge once, in canonical (U <= V) form.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := int32(0); u < int32(len(g.adj)); u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// AvgDegree returns 2m/n, the average degree reported in Table 2.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(len(g.adj))
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// CheckConsistent verifies the symmetric-adjacency and simple-graph
// invariants; for tests.
func (g *Graph) CheckConsistent() error {
	var m int64
	for u := int32(0); u < int32(len(g.adj)); u++ {
		seen := make(map[int32]bool, len(g.adj[u]))
		for _, v := range g.adj[u] {
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if v < 0 || int(v) >= len(g.adj) {
				return fmt.Errorf("graph: out-of-range neighbor %d of %d", v, u)
			}
			if seen[v] {
				return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
			}
			seen[v] = true
			found := false
			for _, w := range g.adj[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: missing reverse edge (%d,%d)", v, u)
			}
			if u < v {
				m++
			}
		}
	}
	if m != g.M() {
		return fmt.Errorf("graph: m = %d but %d edges present", g.M(), m)
	}
	return nil
}

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#' or '%' are comments. Vertex ids may be sparse; the graph is sized to
// the largest id seen. Self-loops and duplicates are dropped.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	var edges []Edge
	maxID := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		var u, v int64
		n, err := fmt.Sscan(line, &u, &v)
		if err != nil || n != 2 {
			return nil, fmt.Errorf("graph: bad edge on line %d: %q", lineNo, line)
		}
		if u < 0 || v < 0 || u > MaxVertexID || v > MaxVertexID {
			return nil, fmt.Errorf("graph: vertex id out of range on line %d", lineNo)
		}
		e := Edge{int32(u), int32(v)}
		edges = append(edges, e)
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(int(maxID)+1, edges)
}

// WriteEdgeList writes the graph as "u v" lines in canonical order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		bw.WriteString(strconv.Itoa(int(e.U)))
		bw.WriteByte(' ')
		bw.WriteString(strconv.Itoa(int(e.V)))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
