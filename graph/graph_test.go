package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d, want 5, 0", g.N(), g.M())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) must succeed")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate (reversed) edge must be rejected")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop must be rejected")
	}
	if g.M() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("unexpected state m=%d", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge must be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("absent edge reported present")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if !g.RemoveEdge(2, 0) {
		t.Fatal("RemoveEdge must succeed for present edge (reversed args)")
	}
	if g.RemoveEdge(0, 2) {
		t.Fatal("RemoveEdge must fail for absent edge")
	}
	if g.M() != 2 || g.Degree(0) != 2 || g.Degree(2) != 0 {
		t.Fatalf("unexpected state after removal m=%d", g.M())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesDedup(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {3, 1}})
	if g.M() != 3 {
		t.Fatalf("m = %d, want 3 (dups and self-loop dropped)", g.M())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := MustFromEdges(5, []Edge{{3, 1}, {0, 4}, {2, 0}})
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	for _, e := range es {
		if e.U > e.V {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

func TestClone(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}})
	c := g.Clone()
	c.AddEdge(2, 3)
	c.RemoveEdge(0, 1)
	if g.M() != 2 || !g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("mutating clone leaked into original")
	}
	if err := c.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsNegative(t *testing.T) {
	for _, edges := range [][]Edge{
		{{-1, 2}},
		{{0, 1}, {3, -7}},
		{{-4, -4}},
	} {
		if g, err := FromEdges(5, edges); err == nil {
			t.Fatalf("FromEdges(%v) = %v, want error", edges, g)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MustFromEdges(%v) must panic", edges)
				}
			}()
			MustFromEdges(5, edges)
		}()
	}
}

func TestFromEdgesGrowsPastN(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 1}, {1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 8, 2", g.N(), g.M())
	}
	if !g.HasEdge(1, 7) || g.Degree(5) != 0 {
		t.Fatal("grown universe malformed")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowAndAddVertices(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	g.Grow(2) // never shrinks
	if g.N() != 3 {
		t.Fatalf("Grow(2) shrank to N=%d", g.N())
	}
	g.Grow(6)
	if g.N() != 6 || g.M() != 2 {
		t.Fatalf("N=%d M=%d after Grow(6)", g.N(), g.M())
	}
	if first := g.AddVertices(3); first != 6 || g.N() != 9 {
		t.Fatalf("AddVertices(3) = %d, N=%d", first, g.N())
	}
	if first := g.AddVertices(0); first != 9 || g.N() != 9 {
		t.Fatalf("AddVertices(0) = %d, N=%d", first, g.N())
	}
	if !g.AddEdge(8, 0) || !g.HasEdge(0, 8) {
		t.Fatal("edge to grown vertex must work")
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	id := g.AddVertex()
	if id != 2 || g.N() != 3 {
		t.Fatalf("AddVertex returned %d, N=%d", id, g.N())
	}
	if !g.AddEdge(2, 0) {
		t.Fatal("edge to new vertex must work")
	}
}

func TestDegreeStats(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
}

func TestReadWriteEdgeListRoundTrip(t *testing.T) {
	in := "# comment\n% another\n0 1\n1 2\n2 0\n\n3 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip changed the graph")
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestReadEdgeListBadInput(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "-1 2\n", "0 99999999999\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q must fail", in)
		}
	}
}

func TestNormIdempotent(t *testing.T) {
	e := Edge{5, 2}
	if e.Norm() != (Edge{2, 5}) || e.Norm().Norm() != e.Norm() {
		t.Fatal("Norm misbehaves")
	}
}

// Property: a random sequence of adds and removes keeps the symmetric
// adjacency invariant, and membership matches a reference map.
func TestQuickAddRemoveAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 30
		g := New(n)
		ref := map[Edge]bool{}
		for step := 0; step < 500; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			e := Edge{u, v}.Norm()
			if rng.Intn(2) == 0 {
				want := u != v && !ref[e]
				if got := g.AddEdge(u, v); got != want {
					t.Logf("seed %d: AddEdge(%d,%d)=%v want %v", seed, u, v, got, want)
					return false
				}
				if want {
					ref[e] = true
				}
			} else {
				want := ref[e]
				if got := g.RemoveEdge(u, v); got != want {
					t.Logf("seed %d: RemoveEdge(%d,%d)=%v want %v", seed, u, v, got, want)
					return false
				}
				delete(ref, e)
			}
		}
		if int(g.M()) != len(ref) {
			return false
		}
		return g.CheckConsistent() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddRemoveEdge(b *testing.B) {
	g := New(1000)
	rng := rand.New(rand.NewSource(7))
	edges := make([]Edge, 2048)
	for i := range edges {
		edges[i] = Edge{int32(rng.Intn(1000)), int32(rng.Intn(1000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if g.AddEdge(e.U, e.V) {
			g.RemoveEdge(e.U, e.V)
		}
	}
}
