package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/cluster"
	"repro/gen"
	"repro/graph"
	"repro/kcore"
	"repro/persist"
	"repro/server"
)

// shardAlgs rotates the engine across shards, so every conformance run
// exercises a heterogeneous cluster: the routing and merge layers must
// be engine-agnostic.
var shardAlgs = []kcore.Algorithm{
	kcore.ParallelOrder, kcore.SequentialOrder, kcore.Traversal, kcore.JoinEdgeSet,
}

// startShard boots one empty in-process kcored shard and returns its
// address and a stop func (also registered as cleanup).
func startShard(t *testing.T, alg kcore.Algorithm) (string, func()) {
	t.Helper()
	m := kcore.New(graph.New(0), kcore.WithAlgorithm(alg), kcore.WithWorkers(2))
	srv := server.New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		m.Close()
	}
	t.Cleanup(stop)
	return ln.Addr().String(), stop
}

// startCluster boots `shards` heterogeneous shard servers and a router
// splitting [0, capacity) evenly across them.
func startCluster(t *testing.T, shards int, capacity int32) (*cluster.Cluster, *cluster.ShardMap) {
	t.Helper()
	addrs := make([][]string, shards)
	for i := range addrs {
		addr, _ := startShard(t, shardAlgs[i%len(shardAlgs)])
		addrs[i] = []string{addr}
	}
	m, err := cluster.EqualRanges(capacity, addrs)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Connect(m)
	t.Cleanup(func() { c.Close() })
	return c, m
}

func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want [][]string
	}{
		{"h1:6380", [][]string{{"h1:6380"}}},
		{"h1:6380,h2:6380", [][]string{{"h1:6380", "h2:6380"}}},
		{"a;b;c", [][]string{{"a"}, {"b"}, {"c"}}},
		{" a:1 , r1 ; b:2 ", [][]string{{"a:1", "r1"}, {"b:2"}}},
		{"a,r1,r2;b;c,r3", [][]string{{"a", "r1", "r2"}, {"b"}, {"c", "r3"}}},
	} {
		got, err := cluster.ParseTopology(tc.in)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", tc.in, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParseTopology(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if len(got[i]) != len(tc.want[i]) {
				t.Fatalf("ParseTopology(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for j := range got[i] {
				if got[i][j] != tc.want[i][j] {
					t.Fatalf("ParseTopology(%q) = %v, want %v", tc.in, got, tc.want)
				}
			}
		}
	}
	for _, bad := range []string{"", "a;;b", ",a", "a,;b", ";", "a;"} {
		if _, err := cluster.ParseTopology(bad); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestShardMapValidation(t *testing.T) {
	if _, err := cluster.NewShardMap(nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	bad := [][]cluster.Shard{
		{{Lo: 10, Hi: 20, Leader: "a"}},                               // gap at 0
		{{Lo: 0, Hi: 10, Leader: "a"}, {Lo: 11, Hi: 20, Leader: "b"}}, // gap
		{{Lo: 0, Hi: 10, Leader: "a"}, {Lo: 5, Hi: 20, Leader: "b"}},  // overlap
		{{Lo: 0, Hi: 0, Leader: "a"}},                                 // empty range
		{{Lo: 0, Hi: 10, Leader: ""}},                                 // no leader
	}
	for i, shards := range bad {
		if _, err := cluster.NewShardMap(shards); err == nil {
			t.Fatalf("case %d: invalid shard list accepted", i)
		}
	}
	if _, err := cluster.EqualRanges(2, [][]string{{"a"}, {"b"}, {"c"}}); err == nil {
		t.Fatal("capacity below shard count accepted")
	}
}

// TestShardMapMirrors pins the deterministic local-id layout: owned ids
// and the two mirror bands partition [0, Cap) injectively, and
// MirrorOrigin inverts MirrorLocal.
func TestShardMapMirrors(t *testing.T) {
	m, err := cluster.EqualRanges(100, [][]string{{"a"}, {"b"}, {"c"}}) // ranges [0,34) [34,67) [67,100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.NumShards() {
		s := m.Shard(i)
		seen := make(map[int32]int32) // local id -> global id
		for g := int32(0); g < m.Cap(); g++ {
			l := m.LocalFor(i, g)
			if l < 0 || l >= m.Cap() {
				t.Fatalf("shard %d: global %d maps to local %d outside [0, %d)", i, g, l, m.Cap())
			}
			if prev, dup := seen[l]; dup {
				t.Fatalf("shard %d: globals %d and %d collide at local %d", i, prev, g, l)
			}
			seen[l] = g
			owned := g >= s.Lo && g < s.Hi
			if owned {
				if m.Owner(g) != i {
					t.Fatalf("Owner(%d) = %d, want %d", g, m.Owner(g), i)
				}
				if l != g-s.Lo || m.IsMirror(i, l) {
					t.Fatalf("shard %d: owned %d at local %d, IsMirror=%v", i, g, l, m.IsMirror(i, l))
				}
				if m.Global(i, l) != g {
					t.Fatalf("shard %d: Global(Local(%d)) = %d", i, g, m.Global(i, l))
				}
				if _, isMirror := m.MirrorOrigin(i, l); isMirror {
					t.Fatalf("shard %d: owned local %d reported as mirror", i, l)
				}
			} else {
				if !m.IsMirror(i, l) {
					t.Fatalf("shard %d: mirror of %d at local %d not IsMirror", i, g, l)
				}
				orig, isMirror := m.MirrorOrigin(i, l)
				if !isMirror || orig != g {
					t.Fatalf("shard %d: MirrorOrigin(%d) = (%d, %v), want (%d, true)", i, l, orig, isMirror, g)
				}
			}
		}
	}
}

// churn drives a randomized mixed insert/remove/grow stream through the
// router and the Oracle in lockstep, in pipelined per-shard bursts.
func churn(t *testing.T, c *cluster.Cluster, o *cluster.Oracle, edges []graph.Edge, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var inserted []graph.Edge
	apply := func(ins bool, batch []graph.Edge) {
		var err error
		if ins {
			err = c.InsertEdges(batch, nil)
		} else {
			err = c.RemoveEdges(batch, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range batch {
			if ins {
				o.ApplyInsert(e.U, e.V)
			} else {
				o.ApplyRemove(e.U, e.V)
			}
		}
	}
	for off := 0; off < len(edges); off += 64 {
		batch := edges[off:min(off+64, len(edges))]
		apply(true, batch)
		inserted = append(inserted, batch...)
		switch rng.Intn(4) {
		case 0: // remove a random slice of what exists (duplicates ok: drops)
			rm := make([]graph.Edge, 0, 16)
			for range 16 {
				rm = append(rm, inserted[rng.Intn(len(inserted))])
			}
			apply(false, rm)
		case 1: // remove edges that may never have existed (drop semantics)
			u := int32(rng.Intn(int(c.Map().Cap())))
			v := int32(rng.Intn(int(c.Map().Cap())))
			if u != v {
				apply(false, []graph.Edge{{U: u, V: v}})
			}
		case 2: // explicit growth
			n := int32(rng.Intn(int(c.Map().Cap()))) + 1
			if _, err := c.Grow(n); err != nil {
				t.Fatal(err)
			}
			o.Grow(n)
		}
	}
}

// verify holds every routed read byte-equal to the Oracle.
func verify(t *testing.T, c *cluster.Cluster, o *cluster.Oracle) {
	t.Helper()
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.N() != o.N() {
		t.Fatalf("N = %d, oracle %d", c.N(), o.N())
	}
	want := o.Cores()
	ids := make([]int32, o.N())
	for i := range ids {
		ids[i] = int32(i)
	}
	// Sweep in shuffled order so per-shard grouping and position
	// scattering are both exercised.
	rand.New(rand.NewSource(9)).Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	got, err := c.MGet(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range ids {
		if got[i] != want[g] {
			t.Fatalf("MGET core(%d) = %d, oracle %d", g, got[i], want[g])
		}
	}
	for _, g := range []int32{0, int32(o.N()) - 1, int32(o.N()) / 2} {
		if g < 0 {
			continue
		}
		k, err := c.Get(g)
		if err != nil {
			t.Fatal(err)
		}
		if k != want[g] {
			t.Fatalf("GET core(%d) = %d, oracle %d", g, k, want[g])
		}
	}

	hist, err := c.Hist()
	if err != nil {
		t.Fatal(err)
	}
	wantHist := o.Hist()
	if len(hist) != len(wantHist) {
		t.Fatalf("Hist has %d bins, oracle %d (%v vs %v)", len(hist), len(wantHist), hist, wantHist)
	}
	for k := range wantHist {
		if hist[k] != wantHist[k] {
			t.Fatalf("Hist[%d] = %d, oracle %d", k, hist[k], wantHist[k])
		}
	}

	mx, err := c.MaxCore()
	if err != nil || mx != o.MaxCore() {
		t.Fatalf("MaxCore = %d, %v; oracle %d", mx, err, o.MaxCore())
	}
	deg, err := c.Degeneracy()
	if err != nil || deg != mx {
		t.Fatalf("Degeneracy = %d, %v; want %d", deg, err, mx)
	}
	for k := int32(0); k <= mx+1; k++ {
		n, err := c.KVert(k)
		if err != nil || n != o.KVert(k) {
			t.Fatalf("KVert(%d) = %d, %v; oracle %d", k, n, err, o.KVert(k))
		}
	}
	if err := c.Check(); err != nil {
		t.Fatalf("cluster check: %v", err)
	}
}

// TestClusterConformance is the cluster's executable contract:
// randomized mixed churn through the router on 2, 3 and 4 heterogeneous
// shards, at zero and substantial cross-shard edge fractions, then
// every read path — full MGET sweep, point gets, and all scatter-gather
// aggregates — byte-equal to the Oracle. At cross fraction 0 the Oracle
// itself must equal a fresh single-node decomposition of the global
// graph, closing the loop to ground truth.
func TestClusterConformance(t *testing.T) {
	const capacity = 600
	for _, shards := range []int{2, 3, 4} {
		for _, cross := range []float64{0, 0.35} {
			t.Run(fmt.Sprintf("shards=%d,cross=%v", shards, cross), func(t *testing.T) {
				t.Parallel()
				c, m := startCluster(t, shards, capacity)
				o := cluster.NewOracle(m)
				seed := int64(shards)*100 + int64(cross*100)
				edges := gen.CrossRangeEdges(capacity, shards, 1500, cross, seed)
				churn(t, c, o, edges, seed+1)
				verify(t, c, o)

				if cross == 0 {
					global := o.GlobalCores()
					for g, k := range o.Cores() {
						if k != global[g] {
							t.Fatalf("cross=0: oracle core(%d) = %d, global ground truth %d", g, k, global[g])
						}
					}
				}

				// Stats reaches every shard and reports sane pool counters.
				stats, err := c.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if len(stats) != shards {
					t.Fatalf("Stats has %d shards, want %d", len(stats), shards)
				}
				for _, st := range stats {
					if st.Server["n"] == "" {
						t.Fatalf("shard %d stats missing n: %v", st.Shard, st.Server)
					}
					if st.Pool.Dials == 0 {
						t.Fatalf("shard %d pool never dialed", st.Shard)
					}
				}
			})
		}
	}
}

// TestClusterRecover pins router bootstrap over existing shard state: a
// second router with no write history recovers the universe high-water
// mark from the shards' owned bands.
func TestClusterRecover(t *testing.T) {
	c, m := startCluster(t, 3, 300)
	o := cluster.NewOracle(m)
	churn(t, c, o, gen.CrossRangeEdges(300, 3, 400, 0.3, 5), 6)
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	fresh := cluster.Connect(m)
	defer fresh.Close()
	if fresh.N() != 0 {
		t.Fatalf("fresh router N = %d before Recover", fresh.N())
	}
	if err := fresh.Recover(); err != nil {
		t.Fatal(err)
	}
	// Recovery is a lower bound equal to the true N unless the top of the
	// universe is all holes (ids only ever named, never materialized on
	// their owner); churn materializes every owned band via Grow, so here
	// it is exact.
	if _, err := c.Grow(int32(c.N())); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Recover(); err != nil {
		t.Fatal(err)
	}
	if fresh.N() != c.N() {
		t.Fatalf("recovered N = %d, want %d", fresh.N(), c.N())
	}
}

// TestShardOutage pins failure isolation: with one shard down, ops
// confined to live ranges keep serving, ops touching the dead range
// fail fast with a typed ShardError naming the shard, and global
// aggregates report the outage instead of a partial answer.
func TestShardOutage(t *testing.T) {
	const capacity = 200
	addr0, _ := startShard(t, kcore.ParallelOrder)
	addr1, stop1 := startShard(t, kcore.ParallelOrder)
	m, err := cluster.EqualRanges(capacity, [][]string{{addr0}, {addr1}}) // [0,100) [100,200)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Connect(m)
	defer c.Close()

	if err := c.InsertEdges([]graph.Edge{{U: 1, V: 2}, {U: 150, V: 151}}, nil); err != nil {
		t.Fatal(err)
	}
	stop1()

	// Shard 0's range keeps serving: reads and writes.
	if k, err := c.Get(1); err != nil || k != 1 {
		t.Fatalf("Get(1) after outage = %d, %v", k, err)
	}
	if err := c.InsertEdges([]graph.Edge{{U: 3, V: 4}}, nil); err != nil {
		t.Fatalf("insert into live range: %v", err)
	}

	// The dead range fails fast and typed.
	wantShardErr := func(err error, op string) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: no error with shard 1 down", op)
		}
		se, ok := cluster.AsShardError(err)
		if !ok {
			t.Fatalf("%s: error %v is not a ShardError", op, err)
		}
		if se.Shard != 1 || se.Addr != addr1 {
			t.Fatalf("%s: ShardError names shard %d (%s), want 1 (%s)", op, se.Shard, se.Addr, addr1)
		}
	}
	_, err = c.Get(150)
	wantShardErr(err, "Get(150)")
	err = c.InsertEdges([]graph.Edge{{U: 150, V: 152}}, nil)
	wantShardErr(err, "insert into dead range")
	err = c.InsertEdges([]graph.Edge{{U: 5, V: 150}}, nil)
	wantShardErr(err, "cross insert touching dead range")
	_, err = c.Hist()
	wantShardErr(err, "Hist")
	err = c.Check()
	wantShardErr(err, "Check")

	// And still: the live range is unaffected afterwards.
	if k, err := c.Get(3); err != nil || k != 1 {
		t.Fatalf("Get(3) = %d, %v", k, err)
	}
}

// startReplicatedShard boots a persistent leader plus one follower and
// returns (leaderAddr, replicaAddr).
func startReplicatedShard(t *testing.T) (string, string) {
	t.Helper()
	mgr, err := persist.NewManager(t.TempDir(), persist.Options{Fsync: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(graph.New(0), kcore.WithOpLog(mgr), kcore.WithWorkers(2))
	t.Cleanup(func() { mgr.Close(); m.Close() })
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	lsrv := server.New(m, server.WithPersistence(mgr))
	lln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go lsrv.Serve(lln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		lsrv.Shutdown(ctx)
	})

	rsrv := server.New(kcore.New(graph.New(0), kcore.WithWorkers(2)))
	rep := server.NewReplica(rsrv, lln.Addr().String(), server.ReplicaOptions{Workers: 2})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Maintainer().Close() })
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx)
	})
	t.Cleanup(rep.Close)
	rep.Start()
	go rsrv.Serve(rln)
	return lln.Addr().String(), rln.Addr().String()
}

// TestSessionReadYourWrites runs a session over a replicated 2-shard
// cluster: every write captures a per-shard epoch vector, every read is
// gated on the shard's replica, so reads through the session are never
// stale with respect to the session's own writes — and after Wait, even
// fresh connections to the replicas observe them.
func TestSessionReadYourWrites(t *testing.T) {
	const capacity = 200
	l0, r0 := startReplicatedShard(t)
	l1, r1 := startReplicatedShard(t)
	m, err := cluster.EqualRanges(capacity, [][]string{{l0, r0}, {l1, r1}})
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.Connect(m)
	defer c.Close()
	o := cluster.NewOracle(m)

	s := c.NewSession()
	defer s.Close()
	if s.ReadAddr(0) != r0 || s.ReadAddr(1) != r1 {
		t.Fatalf("session reads pinned to %s/%s, want replicas %s/%s",
			s.ReadAddr(0), s.ReadAddr(1), r0, r1)
	}

	rng := rand.New(rand.NewSource(77))
	edges := gen.CrossRangeEdges(capacity, 2, 600, 0.4, 78)
	for off := 0; off < len(edges); off += 40 {
		batch := edges[off:min(off+40, len(edges))]
		if err := s.InsertEdges(batch); err != nil {
			t.Fatal(err)
		}
		for _, e := range batch {
			o.ApplyInsert(e.U, e.V)
		}
		// Read endpoints the batch just touched — through the session they
		// must already reflect it, replica lag notwithstanding.
		want := o.Cores()
		probe := make([]int32, 0, 8)
		for range 8 {
			probe = append(probe, batch[rng.Intn(len(batch))].U)
		}
		got, err := s.MGet(probe)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range probe {
			if got[i] != want[g] {
				t.Fatalf("session read core(%d) = %d, oracle %d (stale replica read?)", g, got[i], want[g])
			}
		}
	}

	// Cross-shard barrier: after Wait, a *fresh* plain connection to each
	// replica observes every session write.
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	want := o.Cores()
	for i, raddr := range []string{r0, r1} {
		rc, err := client.Dial(raddr, client.WithDialTimeout(5*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		sh := m.Shard(i)
		for g := sh.Lo; g < min(sh.Hi, int32(o.N())); g++ {
			k, err := client.Int(rc.Do("CORE.GET", m.Local(i, g)))
			if err != nil {
				t.Fatal(err)
			}
			if int32(k) != want[g] {
				t.Fatalf("replica %d core(%d) = %d after Wait, oracle %d", i, g, k, want[g])
			}
		}
	}
}
