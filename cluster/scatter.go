package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/client"
)

// ShardError marks a cluster operation that failed on one shard. Ops
// touching only other shards' ranges are unaffected — an outage takes
// down its id range, not the cluster — so callers can route around it
// or surface which band is dark.
type ShardError struct {
	Shard int    // shard index in the ShardMap
	Addr  string // endpoint the failing op used
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// AsShardError unwraps err to a *ShardError if one is in its chain.
func AsShardError(err error) (*ShardError, bool) {
	var se *ShardError
	ok := errors.As(err, &se)
	return se, ok
}

// scatter runs fn(i) concurrently for every shard index in shards and
// joins the failures, each wrapped as a ShardError carrying the shard's
// leader address. One slow or dead shard never blocks the others from
// making progress; the caller sees every failure, not just the first.
// Each scatter is one observation of the fan-out latency (the slowest
// shard bounds it), and each per-shard leg counts against its shard's
// request/error counters.
func (c *Cluster) scatter(shards []int, fn func(shard int) error) error {
	start := time.Now()
	err := c.doScatter(shards, fn)
	c.obs.fanout.ObserveDuration(time.Since(start))
	return err
}

func (c *Cluster) doScatter(shards []int, fn func(shard int) error) error {
	if len(shards) == 1 {
		// The common single-shard case (routed op, or a one-shard map)
		// skips the goroutine round trip entirely.
		return c.runShard(shards[0], fn)
	}
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k, i := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = c.runShard(i, fn)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runShard runs one scatter leg against shard i, counting the request
// and any failure on the shard's counters.
func (c *Cluster) runShard(i int, fn func(shard int) error) error {
	c.obs.reqs[i].Inc()
	err := c.wrapShardErr(i, fn(i))
	if err != nil {
		c.obs.errs[i].Inc()
	}
	return err
}

// allShards returns [0, 1, …, NumShards−1] (cached; read-only).
func (c *Cluster) allShards() []int { return c.every }

func (c *Cluster) wrapShardErr(shard int, err error) error {
	if err == nil {
		return nil
	}
	var se *ShardError
	if errors.As(err, &se) {
		return err
	}
	return &ShardError{Shard: shard, Addr: c.m.Shard(shard).Leader, Err: err}
}

// withLeader borrows a pooled leader connection to shard i, runs fn,
// and returns the connection to the pool.
func (c *Cluster) withLeader(i int, fn func(conn *client.Conn) error) error {
	conn, err := c.pools[i].Get()
	if err != nil {
		return err
	}
	defer c.pools[i].Put(conn)
	return fn(conn)
}
