// Package cluster scales the kcored serving stack past one process by
// id-range sharding: N independent kcored shards each own a contiguous
// band of the global vertex-id space, a client-side router sends every
// write to the shard(s) that own its endpoints, and global reads run as
// parallel scatter-gather with deterministic merges. There is no
// coordinator process — the topology is static configuration, the
// router is a library, and each shard is a stock kcored (optionally
// with its own replicas from the replication layer).
//
// # Sharding model
//
// A ShardMap splits the global id space [0, Cap) into contiguous ranges
// [Lo_i, Hi_i); shard i stores its owned vertices at local ids
// [0, Hi_i−Lo_i) (global g ↦ g−Lo_i). A cross-shard edge (u, v) is
// applied on both owning shards, with the remote endpoint mirrored into
// a reserved local band by a deterministic, stateless mapping (see
// ShardMap.MirrorLocal) — so any router instance, with no shared state,
// routes the insert and the matching remove to the same local ids.
//
// # Core-number semantics
//
// Each shard maintains core numbers over its local graph: its owned
// band plus the mirrored boundary of cross-shard edges. Mirroring a
// one-hop boundary cannot reproduce exact global core numbers — a
// triangle split across two shards degrades to a path on each, and no
// finite-hop extension closes the gap (a long cycle defeats any fixed
// horizon). Cluster reads therefore serve *per-shard-local* core
// numbers: a lower bound on the global core number, exact whenever no
// cross-shard edge touches the vertex's component (and in particular
// exact for a router configured so related vertices land on one shard).
// The Oracle type is the executable specification of these semantics;
// the conformance suite holds every served value byte-equal to it.
package cluster

import (
	"fmt"
	"strings"
)

// ParseTopology parses the textual shard topology shared by the router,
// loadserve, and operator tooling:
//
//	leader[,replica...][;leader[,replica...]]...
//
// Shards are ';'-separated; within a shard the first address is the
// leader and any further ','-separated addresses are its read replicas.
// A single "leader,replica" group (no ';') is the replication layer's
// classic single-shard form, so one grammar serves both. Whitespace
// around addresses is ignored; empty groups and empty addresses are
// errors.
func ParseTopology(s string) ([][]string, error) {
	groups := strings.Split(s, ";")
	out := make([][]string, 0, len(groups))
	for gi, group := range groups {
		parts := strings.Split(group, ",")
		addrs := make([]string, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, fmt.Errorf("cluster: empty address in shard %d of topology %q", gi, s)
			}
			addrs = append(addrs, p)
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("cluster: empty shard %d in topology %q", gi, s)
		}
		out = append(out, addrs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty topology")
	}
	return out, nil
}
