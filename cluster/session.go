package cluster

import (
	"fmt"
	"time"

	"repro/client"
	"repro/graph"
)

// Session layers cross-shard read-your-writes over a Cluster: every
// write captures the covering epoch of each shard it touched (the
// router pipelines CORE.EPOCH into the write flush, so this costs no
// extra round trip), and every read is gated by a pipelined CORE.WAIT
// on that epoch against the session's pinned read endpoint for the
// shard. With replicas in the map, reads scale out to followers without
// ever observing state older than the session's own writes — the
// replication layer's ReplicaSession contract, lifted to a shard
// vector.
//
// A Session pins one read connection per shard (the first replica if
// the shard has any, else the leader), dialed lazily. It is not safe
// for concurrent use — sessions are per-goroutine, like connections.
type Session struct {
	c *Cluster
	// WaitTimeout bounds each read-side CORE.WAIT (0 = wait until the
	// endpoint catches up or disconnects).
	WaitTimeout time.Duration

	epochs []uint64 // per shard: highest epoch covering this session's writes
	waited []uint64 // per shard: highest epoch the read endpoint proved applied
	reads  []*client.Conn
}

// NewSession starts a read-your-writes session over the cluster.
func (c *Cluster) NewSession() *Session {
	n := c.m.NumShards()
	return &Session{
		c:      c,
		epochs: make([]uint64, n),
		waited: make([]uint64, n),
		reads:  make([]*client.Conn, n),
	}
}

// Close releases the session's pinned read connections.
func (s *Session) Close() error {
	for i, conn := range s.reads {
		if conn != nil {
			conn.Close()
			s.reads[i] = nil
		}
	}
	return nil
}

// ReadAddr returns the endpoint shard i's reads are pinned to.
func (s *Session) ReadAddr(i int) string {
	sh := s.c.m.Shard(i)
	if len(sh.Replicas) > 0 {
		return sh.Replicas[0]
	}
	return sh.Leader
}

func (s *Session) readConn(i int) (*client.Conn, error) {
	if s.reads[i] != nil && s.reads[i].Err() == nil {
		return s.reads[i], nil
	}
	if s.reads[i] != nil {
		s.reads[i].Close()
		// Re-dialing resets the connection, not the session's epoch
		// bookkeeping: waited[i] tracks the *server's* applied watermark,
		// which survives our reconnect.
	}
	conn, err := client.Dial(s.ReadAddr(i), client.WithDialTimeout(5*time.Second))
	if err != nil {
		s.reads[i] = nil
		return nil, err
	}
	s.reads[i] = conn
	return conn, nil
}

func (s *Session) recordEpochs(ev []uint64) {
	for i, e := range ev {
		if e > s.epochs[i] {
			s.epochs[i] = e
		}
	}
}

// InsertEdges routes a write burst and records each touched shard's
// covering epoch.
func (s *Session) InsertEdges(edges []graph.Edge) error {
	ev := make([]uint64, len(s.epochs))
	err := s.c.InsertEdges(edges, ev)
	s.recordEpochs(ev)
	return err
}

// RemoveEdges routes a removal burst and records covering epochs.
func (s *Session) RemoveEdges(edges []graph.Edge) error {
	ev := make([]uint64, len(s.epochs))
	err := s.c.RemoveEdges(edges, ev)
	s.recordEpochs(ev)
	return err
}

// sendGate pipelines the CORE.WAIT gate for shard i if its read
// endpoint has not yet proved it applied this session's writes there.
// Returns whether a gate reply is owed.
func (s *Session) sendGate(i int, conn *client.Conn) (bool, error) {
	if s.epochs[i] <= s.waited[i] {
		return false, nil
	}
	var err error
	if s.WaitTimeout > 0 {
		ms := max(int64(s.WaitTimeout/time.Millisecond), 1)
		err = conn.Send("CORE.WAIT", s.epochs[i], ms)
	} else {
		err = conn.Send("CORE.WAIT", s.epochs[i])
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Get reads global vertex g's core number from the owning shard's
// pinned read endpoint, gated so it observes this session's writes.
func (s *Session) Get(g int32) (int32, error) {
	out, err := s.MGet([]int32{g})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// MGet reads core numbers in input order from each owning shard's
// pinned read endpoint, every per-shard pipeline led by its CORE.WAIT
// gate: gate, chunked CORE.MGETs, one flush — the gate costs no extra
// round trip. Shards run sequentially over the session's own pinned
// connections (a session is single-caller by contract; its scatter
// parallelism lives in the Cluster's pooled paths).
func (s *Session) MGet(ids []int32) ([]int32, error) {
	c := s.c
	locals := make([][]int32, c.m.NumShards())
	positions := make([][]int, c.m.NumShards())
	for pos, g := range ids {
		if !c.m.InRange(g) {
			return nil, fmt.Errorf("cluster: vertex %d outside id capacity %d", g, c.m.Cap())
		}
		i := c.m.Owner(g)
		locals[i] = append(locals[i], c.m.Local(i, g))
		positions[i] = append(positions[i], pos)
	}
	out := make([]int32, len(ids))
	for i := range locals {
		if len(locals[i]) == 0 {
			continue
		}
		if err := s.readShard(i, locals[i], func(j int, k int32) {
			out[positions[i][j]] = k
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readShard runs one shard's gated MGET pipeline: WAIT gate (if owed),
// chunked CORE.MGETs, flush, gate reply, value replies.
func (s *Session) readShard(i int, locals []int32, sink func(j int, k int32)) error {
	conn, err := s.readConn(i)
	if err != nil {
		return s.c.wrapShardErr(i, err)
	}
	gated, err := s.sendGate(i, conn)
	if err != nil {
		return s.c.wrapShardErr(i, err)
	}
	sent, err := mgetSend(conn, locals, s.c.chunkPairs)
	if err != nil {
		return s.c.wrapShardErr(i, err)
	}
	if err := conn.Flush(); err != nil {
		return s.c.wrapShardErr(i, err)
	}
	if gated {
		if _, err := client.Int(conn.Receive()); err != nil {
			// Timed-out WAIT: the MGET replies behind it may be stale, and
			// the client poisons the conn only on transport errors — drop
			// the connection so the next read starts clean.
			conn.Close()
			return s.c.wrapShardErr(i, err)
		}
		s.waited[i] = s.epochs[i]
	}
	if err := mgetRecv(conn, sent, len(locals), sink); err != nil {
		return s.c.wrapShardErr(i, err)
	}
	return nil
}

// Wait is the cross-shard read-your-writes barrier: it blocks until
// every shard's pinned read endpoint has applied this session's writes
// (CORE.WAIT on each shard where an epoch is still owed). After Wait,
// any connection to the session's read endpoints — not just this
// session's — observes the writes.
func (s *Session) Wait() error {
	for i := range s.epochs {
		if s.epochs[i] <= s.waited[i] {
			continue
		}
		conn, err := s.readConn(i)
		if err != nil {
			return s.c.wrapShardErr(i, err)
		}
		gated, err := s.sendGate(i, conn)
		if err != nil {
			return s.c.wrapShardErr(i, err)
		}
		if !gated {
			continue
		}
		if err := conn.Flush(); err != nil {
			return s.c.wrapShardErr(i, err)
		}
		if _, err := client.Int(conn.Receive()); err != nil {
			conn.Close()
			return s.c.wrapShardErr(i, err)
		}
		s.waited[i] = s.epochs[i]
	}
	return nil
}
