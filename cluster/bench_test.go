package cluster_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/cluster"
	"repro/gen"
	"repro/graph"
	"repro/kcore"
	"repro/server"
)

// BenchmarkClusterScaling measures routed throughput as shards are
// added, against the same fixed per-shard resource budget (1 engine
// worker, 1 conn shard per kcored): pipelined write commands through
// the router's per-shard batching, and read ops through the parallel
// MGET scatter-gather. On a multi-core host the shard servers run on
// distinct cores and throughput scales near-linearly with the shard
// count; on a single-core host the curve is flat (the shards time-slice
// one CPU) and the benchmark degenerates to a routing-overhead
// measurement. `make bench-json` records the rows in BENCH_serve.json.
func BenchmarkClusterScaling(b *testing.B) {
	const (
		capacity = 1 << 16
		batch    = 256
		crossFr  = 0.05
	)
	newCluster := func(b *testing.B, shards int) *cluster.Cluster {
		b.Helper()
		addrs := make([][]string, shards)
		for i := range addrs {
			m := kcore.New(graph.New(0), kcore.WithWorkers(1))
			srv := server.New(m, server.WithConnShards(1))
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatalf("listen: %v", err)
			}
			go srv.Serve(ln)
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
				m.Close()
			})
			addrs[i] = []string{ln.Addr().String()}
		}
		sm, err := cluster.EqualRanges(capacity, addrs)
		if err != nil {
			b.Fatal(err)
		}
		c := cluster.Connect(sm)
		b.Cleanup(func() { c.Close() })
		return c
	}
	reportOps := func(b *testing.B) {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
	}

	for _, shards := range []int{1, 2, 4} {
		edges := gen.CrossRangeEdges(capacity, shards, 8192, crossFr, int64(shards))

		b.Run(fmt.Sprintf("shards=%d/write", shards), func(b *testing.B) {
			c := newCluster(b, shards)
			b.ResetTimer()
			cursor, inserting := 0, true
			for done := 0; done < b.N; {
				n := min(batch, b.N-done)
				chunk := edges[cursor : cursor+n]
				var err error
				if inserting {
					err = c.InsertEdges(chunk, nil)
				} else {
					err = c.RemoveEdges(chunk, nil)
				}
				if err != nil {
					b.Fatal(err)
				}
				done += n
				cursor += n
				if cursor+batch > len(edges) {
					cursor = 0
					inserting = !inserting // drain what we filled: bounded graph
				}
			}
			reportOps(b)
		})

		b.Run(fmt.Sprintf("shards=%d/read", shards), func(b *testing.B) {
			c := newCluster(b, shards)
			if err := c.InsertEdges(edges, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards) * 7))
			ids := make([]int32, batch)
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := min(batch, b.N-done)
				for i := range n {
					ids[i] = rng.Int31n(capacity)
				}
				if _, err := c.MGet(ids[:n]); err != nil {
					b.Fatal(err)
				}
				done += n
			}
			reportOps(b)
		})
	}
}
