package cluster

import (
	"repro/graph"
	"repro/internal/bz"
)

// Oracle is the executable specification of cluster semantics: it
// replays the same operation stream the router ships — insert, remove,
// grow — against an in-memory global edge set, then derives what every
// cluster read must return by rebuilding each shard's local graph
// (owned band plus deterministic boundary mirrors, exactly as routing
// lays it out) and running the offline Batagelj–Zaversnik decomposition
// on it. The conformance suite holds every routed read byte-equal to
// the Oracle; when no cross-shard edges exist, Oracle cores also equal
// GlobalCores, the single-node ground truth.
type Oracle struct {
	m     *ShardMap
	edges map[graph.Edge]struct{} // normalized (U ≤ V), no self-loops
	n     int32                   // universe high-water mark
}

// NewOracle starts an empty oracle over the same shard map the router
// uses.
func NewOracle(m *ShardMap) *Oracle {
	return &Oracle{m: m, edges: make(map[graph.Edge]struct{})}
}

// ApplyInsert mirrors Cluster.InsertEdges for one edge: the universe
// grows to cover both endpoints (even for a dropped self-loop or
// duplicate — naming an id creates it), and a new simple edge joins the
// set.
func (o *Oracle) ApplyInsert(u, v int32) {
	o.n = max(o.n, max(u, v)+1)
	if u == v {
		return
	}
	o.edges[graph.Edge{U: u, V: v}.Norm()] = struct{}{}
}

// ApplyRemove mirrors Cluster.RemoveEdges: absent edges are dropped and
// never grow the universe.
func (o *Oracle) ApplyRemove(u, v int32) {
	delete(o.edges, graph.Edge{U: u, V: v}.Norm())
}

// Grow mirrors Cluster.Grow.
func (o *Oracle) Grow(n int32) { o.n = max(o.n, n) }

// N returns the universe size the cluster must report.
func (o *Oracle) N() int64 { return int64(o.n) }

// M returns the global simple-edge count.
func (o *Oracle) M() int { return len(o.edges) }

// Edges returns the global edge set (normalized, unordered).
func (o *Oracle) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(o.edges))
	for e := range o.edges {
		out = append(out, e)
	}
	return out
}

// shardGraph rebuilds shard i's local graph: every global edge with an
// endpoint in the shard's owned range, endpoints translated exactly as
// the router translates them (owned → owned band, remote → mirror
// band).
func (o *Oracle) shardGraph(i int) *graph.Graph {
	s := o.m.Shard(i)
	var local []graph.Edge
	for e := range o.edges {
		if (e.U >= s.Lo && e.U < s.Hi) || (e.V >= s.Lo && e.V < s.Hi) {
			local = append(local, graph.Edge{U: o.m.LocalFor(i, e.U), V: o.m.LocalFor(i, e.V)})
		}
	}
	return graph.MustFromEdges(0, local)
}

// Cores returns the cluster-semantics core number of every universe id
// in [0, N): the id's core in its owning shard's local graph — a lower
// bound on the global core number, exact in the absence of cross-shard
// edges — with holes (ids that exist on no shard) at 0.
func (o *Oracle) Cores() []int32 {
	out := make([]int32, o.n)
	for i := range o.m.NumShards() {
		s := o.m.Shard(i)
		local, _ := bz.Decompose(o.shardGraph(i))
		hi := min(s.Hi, o.n)
		for g := s.Lo; g < hi; g++ {
			if l := int(g - s.Lo); l < len(local) {
				out[g] = local[l]
			}
		}
	}
	return out
}

// GlobalCores returns the single-node ground truth: core numbers of the
// global graph, computed by the offline decomposition.
func (o *Oracle) GlobalCores() []int32 {
	core, _ := bz.Decompose(graph.MustFromEdges(int(o.n), o.Edges()))
	return core
}

// Hist returns the histogram Cluster.Hist must serve, derived from
// Cores — so hole compensation is inherent rather than replicated.
func (o *Oracle) Hist() []int64 {
	hist := []int64{0}
	for _, k := range o.Cores() {
		for int(k) >= len(hist) {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	for len(hist) > 1 && hist[len(hist)-1] == 0 {
		hist = hist[:len(hist)-1]
	}
	return hist
}

// MaxCore returns the maximum cluster-semantics core number.
func (o *Oracle) MaxCore() int32 {
	var mx int32
	for _, k := range o.Cores() {
		mx = max(mx, k)
	}
	return mx
}

// KVert counts universe ids with cluster-semantics core ≥ k.
func (o *Oracle) KVert(k int32) int64 {
	if k <= 0 {
		return o.N()
	}
	var n int64
	for _, c := range o.Cores() {
		if c >= k {
			n++
		}
	}
	return n
}
