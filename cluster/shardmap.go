package cluster

import (
	"fmt"
	"sort"
)

// Shard is one member of a ShardMap: the contiguous global-id range it
// owns and the addresses serving it (a leader, plus optional read
// replicas following it via CORE.SYNC).
type Shard struct {
	Lo, Hi   int32    // owned global-id range [Lo, Hi)
	Leader   string   // leader address (writes, and reads by default)
	Replicas []string // optional read replicas
}

// Width returns the number of ids the shard owns.
func (s Shard) Width() int32 { return s.Hi - s.Lo }

// ShardMap is the static routing table: contiguous ranges covering
// [0, Cap) in order, one per shard. It is immutable after construction
// and safe for concurrent use.
//
// Local-id layout of shard i (W = Hi−Lo):
//
//	[0, W)        owned band: global g ∈ [Lo, Hi) lives at g−Lo
//	[W, W+Lo)     low mirror band: remote g < Lo mirrors to W+g
//	[Hi, Cap)     high mirror band: remote g ≥ Hi mirrors to g (identity)
//
// The two mirror images are disjoint from each other and from the owned
// band because W+Lo = Hi, and every local id stays below Cap — so a
// shard never needs a vertex universe larger than the cluster's. The
// mapping is injective and needs no state: every router, and the
// Oracle, computes the same local id for the same remote endpoint,
// which is what lets a remove find the mirror its insert created.
type ShardMap struct {
	shards []Shard
	cap    int32
}

// NewShardMap validates and freezes a shard list: at least one shard,
// ranges contiguous from 0 (shard 0 starts at 0, each Lo equals the
// previous Hi), every range non-empty, every leader address non-empty.
func NewShardMap(shards []Shard) (*ShardMap, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: shard map needs at least one shard")
	}
	want := int32(0)
	for i, s := range shards {
		if s.Lo != want {
			return nil, fmt.Errorf("cluster: shard %d range starts at %d, want %d (ranges must be contiguous from 0)", i, s.Lo, want)
		}
		if s.Hi <= s.Lo {
			return nil, fmt.Errorf("cluster: shard %d has empty range [%d, %d)", i, s.Lo, s.Hi)
		}
		if s.Leader == "" {
			return nil, fmt.Errorf("cluster: shard %d has no leader address", i)
		}
		want = s.Hi
	}
	return &ShardMap{shards: append([]Shard(nil), shards...), cap: want}, nil
}

// EqualRanges builds a ShardMap splitting [0, capacity) into
// len(addrs) near-equal contiguous ranges (the first capacity mod n
// shards get one extra id). Each addrs[i] is a shard's address group:
// leader first, then replicas — the shape ParseTopology returns.
func EqualRanges(capacity int32, addrs [][]string) (*ShardMap, error) {
	n := int32(len(addrs))
	if n == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	if capacity < n {
		return nil, fmt.Errorf("cluster: capacity %d below shard count %d", capacity, n)
	}
	shards := make([]Shard, n)
	w, extra := capacity/n, capacity%n
	lo := int32(0)
	for i := range shards {
		hi := lo + w
		if int32(i) < extra {
			hi++
		}
		shards[i] = Shard{Lo: lo, Hi: hi, Leader: addrs[i][0], Replicas: append([]string(nil), addrs[i][1:]...)}
		lo = hi
	}
	return NewShardMap(shards)
}

// DeriveMap parses a topology string (see ParseTopology) and splits
// [0, capacity) evenly across its shards.
func DeriveMap(topology string, capacity int32) (*ShardMap, error) {
	addrs, err := ParseTopology(topology)
	if err != nil {
		return nil, err
	}
	return EqualRanges(capacity, addrs)
}

// NumShards returns the number of shards.
func (m *ShardMap) NumShards() int { return len(m.shards) }

// Cap returns the total id capacity (the Hi of the last shard).
func (m *ShardMap) Cap() int32 { return m.cap }

// Shard returns shard i.
func (m *ShardMap) Shard(i int) Shard { return m.shards[i] }

// Owner returns the shard owning global id g. g must be in [0, Cap).
func (m *ShardMap) Owner(g int32) int {
	// Binary search over range starts; ranges are contiguous so the
	// predecessor of g+1 owns g.
	return sort.Search(len(m.shards), func(i int) bool { return m.shards[i].Hi > g })
}

// InRange reports whether g is routable (within [0, Cap)).
func (m *ShardMap) InRange(g int32) bool { return g >= 0 && g < m.cap }

// Local translates global id g, owned by shard i, to its local id.
func (m *ShardMap) Local(i int, g int32) int32 { return g - m.shards[i].Lo }

// Global translates shard i's owned local id back to its global id.
func (m *ShardMap) Global(i int, local int32) int32 { return local + m.shards[i].Lo }

// MirrorLocal translates a remote global id g (not owned by shard i) to
// the local id it mirrors to on shard i.
func (m *ShardMap) MirrorLocal(i int, g int32) int32 {
	s := m.shards[i]
	if g < s.Lo {
		return (s.Hi - s.Lo) + g
	}
	return g // g ≥ Hi: identity band
}

// LocalFor translates any routable global id to shard i's local id:
// owned ids through Local, remote ids through MirrorLocal.
func (m *ShardMap) LocalFor(i int, g int32) int32 {
	s := m.shards[i]
	if g >= s.Lo && g < s.Hi {
		return g - s.Lo
	}
	return m.MirrorLocal(i, g)
}

// MirrorOrigin inverts MirrorLocal: for a local id on shard i, it
// returns the remote global id it mirrors, or (0, false) if the local
// id is in the owned band (not a mirror).
func (m *ShardMap) MirrorOrigin(i int, local int32) (int32, bool) {
	s := m.shards[i]
	w := s.Hi - s.Lo
	switch {
	case local < w:
		return 0, false
	case local < s.Hi: // [W, W+Lo): low mirror band
		return local - w, true
	default: // [Hi, Cap): identity band
		return local, true
	}
}

// IsMirror reports whether shard i's local id is a boundary mirror.
func (m *ShardMap) IsMirror(i int, local int32) bool {
	return local >= m.shards[i].Hi-m.shards[i].Lo
}
