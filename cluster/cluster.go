package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/graph"
)

// Cluster is the client-side router over a ShardMap: it owns one
// connection pool per shard leader, routes single-vertex and edge
// operations to the owning shard(s), batches each burst per shard into
// pipelined multi-pair commands, and runs the global aggregates as
// parallel scatter-gather with deterministic merges. It is safe for
// concurrent use; per-session read-your-writes lives in Session.
type Cluster struct {
	m     *ShardMap
	pools []*client.Pool // leader pool per shard
	every []int          // cached [0..NumShards)

	// hwm is the cluster vertex universe's high-water mark — the router's
	// answer to CORE.N. It advances when an insert names a new highest id
	// or Grow extends the universe; removals naming unseen vertices do
	// not grow it (matching the engine's drop semantics). It is
	// router-local state: a fresh router over an existing cluster starts
	// at the value Connect recovers from the shards' owned bands.
	hwm atomic.Int64

	chunkPairs int
	obs        *routerMetrics
}

// Option configures Connect.
type Option func(*config)

type config struct {
	maxIdle     int
	dialTimeout time.Duration
	chunkPairs  int
}

// WithMaxIdle bounds each shard pool's idle list (default 8).
func WithMaxIdle(n int) Option { return func(c *config) { c.maxIdle = n } }

// WithDialTimeout bounds each shard dial (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(c *config) { c.dialTimeout = d } }

// WithChunkPairs bounds how many edge pairs (or ids) ride in one
// multi-pair command before the router starts another in the same
// pipeline (default 4096) — large enough to amortize dispatch, small
// enough to bound per-command buffers on both ends.
func WithChunkPairs(n int) Option { return func(c *config) { c.chunkPairs = n } }

// Connect builds a router over the map. Connections are dialed lazily
// (first use per shard), so Connect itself does no network I/O; the
// first operation against an unreachable shard surfaces a ShardError.
func Connect(m *ShardMap, opts ...Option) *Cluster {
	cfg := config{maxIdle: 8, dialTimeout: 5 * time.Second, chunkPairs: 4096}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Cluster{m: m, chunkPairs: cfg.chunkPairs, obs: newRouterMetrics(m.NumShards())}
	c.pools = make([]*client.Pool, m.NumShards())
	c.every = make([]int, m.NumShards())
	for i := range c.pools {
		addr := m.Shard(i).Leader
		c.pools[i] = &client.Pool{
			Dial:    func() (*client.Conn, error) { return client.Dial(addr, client.WithDialTimeout(cfg.dialTimeout)) },
			MaxIdle: cfg.maxIdle,
		}
		c.every[i] = i
	}
	return c
}

// Map returns the routing table.
func (c *Cluster) Map() *ShardMap { return c.m }

// Close closes every shard pool.
func (c *Cluster) Close() error {
	for _, p := range c.pools {
		p.Close()
	}
	return nil
}

// Recover rebuilds the router's universe high-water mark from the
// shards themselves: the highest globally-existing owned id across all
// owned bands. A fresh router over a cluster with prior state calls
// this once (Connect does no I/O); a single long-lived router never
// needs it.
func (c *Cluster) Recover() error {
	tops := make([]int64, c.m.NumShards())
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			n, err := client.Int(conn.Do("CORE.N"))
			if err != nil {
				return err
			}
			s := c.m.Shard(i)
			owned := min(n, int64(s.Width()))
			if owned > 0 {
				tops[i] = int64(s.Lo) + owned
			}
			return nil
		})
	})
	if err != nil {
		return err
	}
	for _, t := range tops {
		c.advanceHWM(t)
	}
	return nil
}

func (c *Cluster) advanceHWM(n int64) {
	for {
		cur := c.hwm.Load()
		if n <= cur || c.hwm.CompareAndSwap(cur, n) {
			return
		}
	}
}

// N returns the cluster vertex-universe size (the high-water mark).
func (c *Cluster) N() int64 { return c.hwm.Load() }

// checkEdges validates that every endpoint is routable.
func (c *Cluster) checkEdges(edges []graph.Edge) error {
	for _, e := range edges {
		if !c.m.InRange(e.U) || !c.m.InRange(e.V) {
			return fmt.Errorf("cluster: edge (%d,%d) outside id capacity %d", e.U, e.V, c.m.Cap())
		}
	}
	return nil
}

// routeEdges groups a burst into per-shard flattened local-id pair
// buffers: an intra-shard edge lands once on its owner; a cross-shard
// edge lands on both owners, the remote endpoint translated through the
// deterministic mirror mapping so both shards see it — and so the
// matching remove routes to the same local pair with no shared state.
func (c *Cluster) routeEdges(edges []graph.Edge) [][]int32 {
	bufs := make([][]int32, c.m.NumShards())
	for _, e := range edges {
		a, b := c.m.Owner(e.U), c.m.Owner(e.V)
		bufs[a] = append(bufs[a], c.m.LocalFor(a, e.U), c.m.LocalFor(a, e.V))
		if b != a {
			bufs[b] = append(bufs[b], c.m.LocalFor(b, e.U), c.m.LocalFor(b, e.V))
		}
	}
	return bufs
}

// InsertEdges routes one write burst: each edge to its owning shard(s),
// each shard's share as chunked multi-pair CORE.INSERTs in a single
// pipelined flush with a trailing CORE.EPOCH (the covering epoch is how
// sessions get read-your-writes for free). Shards are written in
// parallel. If epochs is non-nil (len NumShards), each written shard's
// covering epoch is stored there.
func (c *Cluster) InsertEdges(edges []graph.Edge, epochs []uint64) error {
	if err := c.checkEdges(edges); err != nil {
		return err
	}
	for _, e := range edges {
		if n := int64(max(e.U, e.V)) + 1; n > c.hwm.Load() {
			c.advanceHWM(n)
		}
	}
	return c.writeRouted("CORE.INSERT", c.routeEdges(edges), epochs)
}

// RemoveEdges routes one removal burst the same way (removals of absent
// edges are dropped by the engine and never grow the universe).
func (c *Cluster) RemoveEdges(edges []graph.Edge, epochs []uint64) error {
	if err := c.checkEdges(edges); err != nil {
		return err
	}
	return c.writeRouted("CORE.REMOVE", c.routeEdges(edges), epochs)
}

// writeRouted ships per-shard pair buffers: one pooled connection per
// touched shard, the buffer as chunked multi-pair commands plus a
// CORE.EPOCH, one flush, all replies received in order.
func (c *Cluster) writeRouted(cmd string, bufs [][]int32, epochs []uint64) error {
	var touched []int
	for i, b := range bufs {
		if len(b) > 0 {
			touched = append(touched, i)
		}
	}
	if len(touched) == 0 {
		return nil
	}
	chunk := 2 * c.chunkPairs
	return c.scatter(touched, func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			buf := bufs[i]
			sent := 0
			for off := 0; off < len(buf); off += chunk {
				end := min(off+chunk, len(buf))
				if err := conn.SendInt32s(cmd, buf[off:end]); err != nil {
					return err
				}
				sent++
			}
			if err := conn.Send("CORE.EPOCH"); err != nil {
				return err
			}
			if err := conn.Flush(); err != nil {
				return err
			}
			for range sent {
				if _, err := conn.Receive(); err != nil {
					return err
				}
			}
			e, err := client.Int(conn.Receive())
			if err != nil {
				return err
			}
			if epochs != nil {
				epochs[i] = uint64(e)
			}
			return nil
		})
	})
}

// Grow extends the cluster universe to at least n vertices: each shard
// whose owned band intersects [0, n) is grown to cover its share, and
// the high-water mark advances. Returns the new cluster N.
func (c *Cluster) Grow(n int32) (int64, error) {
	if n < 0 || int64(n) > int64(c.m.Cap()) {
		return 0, fmt.Errorf("cluster: grow %d outside id capacity %d", n, c.m.Cap())
	}
	err := c.scatter(c.allShards(), func(i int) error {
		s := c.m.Shard(i)
		wantLocal := min(max(n-s.Lo, 0), s.Width())
		if wantLocal == 0 {
			return nil
		}
		return c.withLeader(i, func(conn *client.Conn) error {
			have, err := client.Int(conn.Do("CORE.N"))
			if err != nil {
				return err
			}
			if delta := int64(wantLocal) - have; delta > 0 {
				if _, err := client.Int(conn.Do("CORE.GROW", delta)); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	c.advanceHWM(int64(n))
	return c.N(), nil
}

// Get returns the core number of global vertex g — a single routed read
// on the owning shard.
func (c *Cluster) Get(g int32) (int32, error) {
	if !c.m.InRange(g) {
		return 0, fmt.Errorf("cluster: vertex %d outside id capacity %d", g, c.m.Cap())
	}
	i := c.m.Owner(g)
	var k int64
	err := c.scatter([]int{i}, func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			var err error
			k, err = client.Int(conn.Do("CORE.GET", c.m.Local(i, g)))
			return err
		})
	})
	return int32(k), err
}

// MGet returns the core numbers of the given global vertex ids, in
// input order: ids are grouped by owning shard, each shard's share runs
// as chunked CORE.MGETs in one pipelined flush, shards in parallel, and
// the replies are scattered back into input positions.
func (c *Cluster) MGet(ids []int32) ([]int32, error) {
	locals := make([][]int32, c.m.NumShards())
	positions := make([][]int, c.m.NumShards())
	for pos, g := range ids {
		if !c.m.InRange(g) {
			return nil, fmt.Errorf("cluster: vertex %d outside id capacity %d", g, c.m.Cap())
		}
		i := c.m.Owner(g)
		locals[i] = append(locals[i], c.m.Local(i, g))
		positions[i] = append(positions[i], pos)
	}
	out := make([]int32, len(ids))
	var touched []int
	for i := range locals {
		if len(locals[i]) > 0 {
			touched = append(touched, i)
		}
	}
	err := c.scatter(touched, func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			return mgetInto(conn, locals[i], c.chunkPairs, func(j int, k int32) {
				out[positions[i][j]] = k
			})
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mgetInto runs one shard's CORE.MGET share — chunked, one flush — and
// hands each core number to sink with its index in locals.
func mgetInto(conn *client.Conn, locals []int32, chunkIDs int, sink func(j int, k int32)) error {
	sent, err := mgetSend(conn, locals, chunkIDs)
	if err != nil {
		return err
	}
	if err := conn.Flush(); err != nil {
		return err
	}
	return mgetRecv(conn, sent, len(locals), sink)
}

// mgetSend buffers one shard's CORE.MGET share as chunked commands
// (no flush) and returns how many replies will be owed.
func mgetSend(conn *client.Conn, locals []int32, chunkIDs int) (int, error) {
	sent := 0
	for off := 0; off < len(locals); off += chunkIDs {
		end := min(off+chunkIDs, len(locals))
		if err := conn.SendInt32s("CORE.MGET", locals[off:end]); err != nil {
			return 0, err
		}
		sent++
	}
	return sent, nil
}

// mgetRecv receives the owed CORE.MGET replies and feeds each core
// number to sink with its running index.
func mgetRecv(conn *client.Conn, sent, want int, sink func(j int, k int32)) error {
	j := 0
	for range sent {
		ks, err := client.Ints(conn.Receive())
		if err != nil {
			return err
		}
		for _, k := range ks {
			sink(j, int32(k))
			j++
		}
	}
	if j != want {
		return fmt.Errorf("cluster: CORE.MGET returned %d values for %d ids", j, want)
	}
	return nil
}

// Hist returns the cluster core-number histogram: bin k counts vertices
// with (per-shard-local) core number k across the universe [0, N).
//
// Each shard reports its owned band only (CORE.HIST 0 W — mirrors are
// the owning shard's business) alongside its CORE.N; the bins merge by
// element-wise sum. Bin 0 is then compensated by N − Σ min(N_i, W_i):
// universe ids that exist on no shard (holes under the high-water mark)
// are isolated by construction, and owned-band vertices a shard grew
// beyond the cluster N (mirror-band growth pulling the owned band
// along) are isolated too — both differ from a single-node oracle only
// in bin 0, by exactly that count.
func (c *Cluster) Hist() ([]int64, error) {
	n := c.m.NumShards()
	hists := make([][]int64, n)
	existing := make([]int64, n)
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			w := c.m.Shard(i).Width()
			if err := conn.Send("CORE.HIST", 0, w); err != nil {
				return err
			}
			if err := conn.Send("CORE.N"); err != nil {
				return err
			}
			if err := conn.Flush(); err != nil {
				return err
			}
			h, err := client.Ints(conn.Receive())
			if err != nil {
				return err
			}
			ni, err := client.Int(conn.Receive())
			if err != nil {
				return err
			}
			hists[i] = h
			existing[i] = min(ni, int64(w))
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	merged := []int64{0}
	var sum int64
	for i := range hists {
		for k, v := range hists[i] {
			for k >= len(merged) {
				merged = append(merged, 0)
			}
			merged[k] += v
		}
		sum += existing[i]
	}
	merged[0] += c.N() - sum
	// Trim trailing zero bins a compensated merge can leave (e.g. a
	// shard's owned band shrank to isolated vertices after removals).
	for len(merged) > 1 && merged[len(merged)-1] == 0 {
		merged = merged[:len(merged)-1]
	}
	return merged, nil
}

// MaxCore returns the cluster's maximum core number: the max across
// shards. A shard's CORE.MAXCORE covers its mirrors too, but mirrors
// form an independent set in the shard-local graph, so any k-core
// containing one also contains owned vertices of core ≥ k — a shard's
// max is always attained in its owned band, and max-merge is exact.
func (c *Cluster) MaxCore() (int32, error) {
	return c.maxAgg("CORE.MAXCORE")
}

// Degeneracy is MaxCore under its graph-theory name.
func (c *Cluster) Degeneracy() (int32, error) {
	return c.maxAgg("CORE.DEGENERACY")
}

func (c *Cluster) maxAgg(cmd string) (int32, error) {
	vals := make([]int64, c.m.NumShards())
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			var err error
			vals[i], err = client.Int(conn.Do(cmd))
			return err
		})
	})
	if err != nil {
		return 0, err
	}
	var mx int64
	for _, v := range vals {
		mx = max(mx, v)
	}
	return int32(mx), nil
}

// KVert counts vertices with core number ≥ k: for k ≤ 0 every universe
// vertex qualifies (holes are core-0 vertices, so only N answers this
// exactly); for k ≥ 1 the per-shard owned-band counts sum.
func (c *Cluster) KVert(k int32) (int64, error) {
	if k <= 0 {
		return c.N(), nil
	}
	counts := make([]int64, c.m.NumShards())
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			var err error
			counts[i], err = client.Int(conn.Do("CORE.KVERT", k, 0, c.m.Shard(i).Width()))
			return err
		})
	})
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, v := range counts {
		sum += v
	}
	return sum, nil
}

// EpochVector is one epoch per shard, indexed by shard.
type EpochVector []uint64

// Flush forces every shard to publish its pending writes and returns
// the per-shard epoch vector of the published state.
func (c *Cluster) Flush() (EpochVector, error) {
	ev := make(EpochVector, c.m.NumShards())
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			e, err := client.Int(conn.Do("CORE.FLUSH"))
			if err != nil {
				return err
			}
			ev[i] = uint64(e)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return ev, nil
}

// Check runs CORE.CHECK on every shard (full recompute vs served cores)
// and fails with a ShardError if any shard disagrees with itself.
func (c *Cluster) Check() error {
	return c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			s, err := client.String(conn.Do("CORE.CHECK"))
			if err != nil {
				return err
			}
			if s != "OK" {
				return fmt.Errorf("CORE.CHECK: %s", s)
			}
			return nil
		})
	})
}

// ShardStats pairs one shard's server stats with the router's
// client-side pool counters for it.
type ShardStats struct {
	Shard  int
	Addr   string
	Server map[string]string // CORE.STATS
	Pool   client.PoolStats
}

// Stats gathers CORE.STATS from every shard leader plus the per-shard
// pool counters.
func (c *Cluster) Stats() ([]ShardStats, error) {
	out := make([]ShardStats, c.m.NumShards())
	err := c.scatter(c.allShards(), func(i int) error {
		return c.withLeader(i, func(conn *client.Conn) error {
			m, err := client.StringMap(conn.Do("CORE.STATS"))
			if err != nil {
				return err
			}
			out[i] = ShardStats{Shard: i, Addr: c.m.Shard(i).Leader, Server: m, Pool: c.pools[i].Stats()}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
