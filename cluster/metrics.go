package cluster

import (
	"strconv"

	"repro/obs"
)

// routerMetrics is the router's client-side instrumentation: one
// request/error counter pair per shard (which band is hot, which band
// is dark) and the scatter-gather operation latency. Built in Connect,
// so every routed op is counted from the router's first use; exported
// via RegisterMetrics (the cluster driver — e.g. loadserve — owns the
// registry and the scrape endpoint, since the router runs client-side).
type routerMetrics struct {
	reqs   []*obs.Counter
	errs   []*obs.Counter
	fanout *obs.Histogram
}

func newRouterMetrics(numShards int) *routerMetrics {
	m := &routerMetrics{
		reqs: make([]*obs.Counter, numShards),
		errs: make([]*obs.Counter, numShards),
		fanout: obs.NewDurationHistogram("cluster_fanout_seconds",
			"Scatter-gather operation latency (slowest shard bounds each op; single-shard routed ops included)."),
	}
	for i := range m.reqs {
		shard := obs.L("shard", strconv.Itoa(i))
		m.reqs[i] = obs.NewCounter("cluster_shard_requests_total",
			"Shard operations issued by the router.", shard)
		m.errs[i] = obs.NewCounter("cluster_shard_errors_total",
			"Shard operations that failed (ShardError).", shard)
	}
	return m
}

// RegisterMetrics adds the router's metrics to reg.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	reg.MustRegister(c.obs.fanout)
	for i := range c.obs.reqs {
		reg.MustRegister(c.obs.reqs[i], c.obs.errs[i])
	}
}
