// Package persist is the durability subsystem of the serving layer: a
// Redis-style append-only op log (AOF) plus periodic checkpoint
// snapshots, so a kcored restart recovers the maintained graph in one
// binary read and a short log replay instead of minutes of
// re-decomposition.
//
// The design taps the one quiescent point the pipeline already has: the
// Manager implements kcore.OpLog, so the applier hands it every
// coalesced batch's canonical post-scan ops (in applied order, before
// any caller future completes). With FsyncAlways the append is synced
// before it returns — every acknowledged write is crash-safe. Periodic
// checkpoints (a generation: graph binary CSR + core array + epoch)
// capture full state at a quiescent point and rotate the log, which is
// also the AOF rewrite/compaction mechanism: the old generation's log is
// deleted once the new checkpoint is durable, so the log never dwarfs
// the graph by more than one checkpoint interval.
//
// Recovery (see Recover) loads the manifest's checkpoint and replays the
// log tail at graph level, tolerating a torn or truncated final record;
// the recovered graph then seeds an ordinary kcore.New, whose one BZ
// decomposition is the only recomputation paid.
//
// Wiring order matters (chicken-and-egg between Manager and Maintainer):
//
//	res, _ := persist.Recover(dir)           // nil Graph when dir is fresh
//	mgr, _ := persist.NewManager(dir, opts)
//	m := kcore.New(g, kcore.WithOpLog(mgr))  // g = res.Graph or a fresh build
//	mgr.Start(m)                             // initial checkpoint, log opens
//	defer mgr.Close()
//
// Start takes a synchronous checkpoint of the maintainer's current state
// (this is what makes `kcored -load -dir` import-then-checkpoint work),
// so ops applied before Start need no log: the checkpoint covers them.
package persist

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/obs"
)

// Fsync is the AOF sync policy.
type Fsync int

const (
	// FsyncAlways syncs after every appended batch, before the append
	// returns — no acknowledged write is ever lost. The cost is one
	// fsync per coalesced engine batch (not per command: pipelined
	// bursts share it).
	FsyncAlways Fsync = iota
	// FsyncEverySec syncs once per second from a background goroutine —
	// a crash loses at most the last second of writes.
	FsyncEverySec
	// FsyncNo never syncs explicitly; the OS flushes on its own
	// schedule. Fastest, weakest.
	FsyncNo
)

// String returns the policy's flag spelling (always/everysec/no).
func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncEverySec:
		return "everysec"
	case FsyncNo:
		return "no"
	}
	return fmt.Sprintf("Fsync(%d)", int(f))
}

// ParseFsync parses a -aof-fsync flag value.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "everysec":
		return FsyncEverySec, nil
	case "no":
		return FsyncNo, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync policy %q (want always|everysec|no)", s)
}

// Options configures a Manager.
type Options struct {
	// Fsync is the AOF sync policy; default FsyncEverySec.
	Fsync Fsync
	// CheckpointOps triggers a background checkpoint (and log rotation)
	// once this many edge ops have been appended since the last one.
	// 0 picks the default (200k); negative disables the ops threshold.
	CheckpointOps int64
	// CheckpointBytes is the same threshold in appended log bytes.
	// 0 picks the default (256 MiB); negative disables it.
	CheckpointBytes int64
	// SyncBufferBytes bounds each replication follower tap's backlog of
	// not-yet-streamed records; a tap exceeding it is dropped and its
	// follower must re-sync (the slow-follower policy). 0 picks the
	// default (8 MiB).
	SyncBufferBytes int64
	// Logger receives recovery/checkpoint/error lines; nil uses the
	// standard logger.
	Logger *log.Logger
}

const (
	defaultCheckpointOps   = 200_000
	defaultCheckpointBytes = 256 << 20
)

// errManagerClosed declines work that raced Close; it is a refusal, not
// a persistence failure, so it never trips the sticky error.
var errManagerClosed = errors.New("persist: manager closed")

// Stats is a point-in-time view of the durability subsystem, surfaced
// over the wire in CORE.STATS.
type Stats struct {
	Gen                uint64        // current generation
	Records            int64         // AOF records appended (lifetime)
	AppendedBytes      int64         // AOF bytes appended (lifetime)
	OpsSinceCheckpoint int64         // edge ops logged since the last rotation
	Checkpoints        int64         // checkpoints completed (initial included)
	LastSave           time.Time     // completion time of the last checkpoint
	LastSaveDuration   time.Duration // wall time of the last checkpoint
	Fsync              Fsync
	SyncFollowers      int    // live replication follower taps
	SyncDropped        int64  // follower taps dropped by the slow-follower policy (lifetime)
	Err                string // sticky append/checkpoint error ("" = healthy)
}

// Manager owns one durability directory: the open AOF segment, the
// checkpoint worker, and the fsync policy. It implements kcore.OpLog;
// attach it with kcore.WithOpLog and activate it with Start. All methods
// are safe for concurrent use.
type Manager struct {
	dir  string
	opts Options

	m *kcore.Maintainer // set by Start

	// mu guards the append path: the open segment, the encode scratch,
	// the since-rotation counters, and the sticky error.
	mu         sync.Mutex
	f          *os.File
	gen        uint64
	buf        []byte
	dirty      bool // unsynced appends (FsyncEverySec)
	opsSince   int64
	bytesSince int64
	err        error
	taps       []*tap // replication follower fan-out (see stream.go)

	// ckptMu serializes checkpoints (threshold-triggered, BGSave,
	// CheckpointNow, Start's initial one).
	ckptMu  sync.Mutex
	ckptBuf []byte // graph-encode scratch reused across checkpoints

	ckptReq chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool

	records       atomic.Int64
	syncsStarted  atomic.Int64
	syncDropped   atomic.Int64
	appendedBytes atomic.Int64
	checkpoints   atomic.Int64
	lastSaveUnix  atomic.Int64
	lastSaveDur   atomic.Int64
	tapSeq        atomic.Int64
	errStr        atomic.Pointer[string]

	// fsyncLat times every AOF fsync (the FsyncAlways per-batch sync and
	// the everysec background sync alike) — the durability subsystem's
	// primary latency signal, exported via RegisterMetrics.
	fsyncLat *obs.Histogram
}

// NewManager prepares a Manager over dir (created if absent). No files
// are written until Start.
func NewManager(dir string, opts Options) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if opts.CheckpointOps == 0 {
		opts.CheckpointOps = defaultCheckpointOps
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	return &Manager{
		dir:     dir,
		opts:    opts,
		ckptReq: make(chan struct{}, 1),
		quit:    make(chan struct{}),
		fsyncLat: obs.NewDurationHistogram("kcored_aof_fsync_seconds",
			"AOF fsync latency (per-batch under -aof-fsync always, background under everysec)."),
	}, nil
}

// Start activates durability for m: it takes a synchronous checkpoint of
// m's current state (a fresh generation strictly above anything already
// in the directory), opens the new AOF segment, and starts the
// background checkpoint/fsync worker. Returns once the checkpoint and
// manifest are durable — from that point on, every acknowledged write
// survives a crash (modulo the fsync policy's window).
func (p *Manager) Start(m *kcore.Maintainer) error {
	if p.m != nil {
		return errors.New("persist: Start called twice")
	}
	p.m = m
	maxGen, err := scanMaxGen(p.dir)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.gen = maxGen // the initial checkpoint rotates to maxGen+1
	p.mu.Unlock()
	if err := p.CheckpointNow(); err != nil {
		return err
	}
	p.wg.Add(1)
	go p.loop()
	return nil
}

// Close stops the worker and syncs and closes the AOF segment. It does
// not take a final checkpoint — call CheckpointNow first for that (as
// kcored's graceful shutdown does); the synced log alone already
// guarantees complete recovery.
func (p *Manager) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	if p.started.Load() {
		close(p.quit)
		p.wg.Wait()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killTapsLocked()
	var err error
	if p.f != nil {
		err = p.f.Sync()
		if cerr := p.f.Close(); err == nil {
			err = cerr
		}
		p.f = nil
	}
	return err
}

// --- kcore.OpLog ------------------------------------------------------------

// AppendBatch logs one coalesced batch's canonical ops. Called by the
// maintainer's applier at the quiescent point, before the batch applies
// and before any caller future completes.
func (p *Manager) AppendBatch(removes, inserts []graph.Edge) {
	ops := int64(len(removes) + len(inserts))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil || p.err != nil {
		return
	}
	for len(removes) > 0 {
		n := min(len(removes), maxEdgesPerRecord)
		p.buf = appendEdgeRecord(p.buf[:0], recRemove, removes[:n])
		removes = removes[n:]
		if !p.writeLocked() {
			return
		}
	}
	for len(inserts) > 0 {
		n := min(len(inserts), maxEdgesPerRecord)
		p.buf = appendEdgeRecord(p.buf[:0], recInsert, inserts[:n])
		inserts = inserts[n:]
		if !p.writeLocked() {
			return
		}
	}
	p.finishAppendLocked(ops)
}

// AppendGrow logs an explicit AddVertices growth to n vertices.
func (p *Manager) AppendGrow(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil || p.err != nil {
		return
	}
	p.buf = appendGrowRecord(p.buf[:0], n)
	if !p.writeLocked() {
		return
	}
	p.finishAppendLocked(1)
}

// writeLocked writes the encoded record(s) in p.buf to the segment and
// fans them out to the replication taps, recording a sticky error on
// failure. Returns false once persistence is broken.
func (p *Manager) writeLocked() bool {
	if _, err := p.f.Write(p.buf); err != nil {
		p.failLocked(fmt.Errorf("persist: append: %w", err))
		return false
	}
	p.records.Add(1)
	p.appendedBytes.Add(int64(len(p.buf)))
	p.bytesSince += int64(len(p.buf))
	p.fanLocked(p.buf, 0, false)
	return true
}

// finishAppendLocked applies the fsync policy and arms the checkpoint
// thresholds after a successful append.
func (p *Manager) finishAppendLocked(ops int64) {
	p.opsSince += ops
	switch p.opts.Fsync {
	case FsyncAlways:
		start := time.Now()
		if err := p.f.Sync(); err != nil {
			p.failLocked(fmt.Errorf("persist: fsync: %w", err))
			return
		}
		p.fsyncLat.ObserveDuration(time.Since(start))
	case FsyncEverySec:
		p.dirty = true
	}
	if (p.opts.CheckpointOps > 0 && p.opsSince >= p.opts.CheckpointOps) ||
		(p.opts.CheckpointBytes > 0 && p.bytesSince >= p.opts.CheckpointBytes) {
		select {
		case p.ckptReq <- struct{}{}:
		default:
		}
	}
}

// failLocked records the first persistence error; the log is abandoned
// (further appends are dropped) but serving continues — the operator
// sees persist_err in CORE.STATS and this one loud log line.
func (p *Manager) failLocked(err error) {
	if p.err != nil {
		return
	}
	p.err = err
	s := err.Error()
	p.errStr.Store(&s)
	p.killTapsLocked() // followers re-sync from a healthy leader instead
	p.logf("persist: DISABLED after error: %v", err)
}

// --- checkpoints ------------------------------------------------------------

// CheckpointNow takes a checkpoint synchronously: captures state and
// rotates the AOF at a quiescent point, writes the checkpoint file,
// updates the manifest, and deletes the previous generation. Safe to
// call concurrently with serving traffic; concurrent checkpoints
// serialize.
func (p *Manager) CheckpointNow() error {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if p.m == nil {
		return errors.New("persist: not started")
	}
	if p.closed.Load() {
		// A request racing Close (SIGTERM final save vs a threshold
		// checkpoint) lands here instead of reopening a segment on a
		// closed manager.
		return errManagerClosed
	}
	start := time.Now()
	var (
		gen      uint64
		epoch    uint64
		m        int64
		cores    []int32
		graphBin []byte
		rotErr   error
	)
	p.m.AtQuiescence(func(q kcore.QuiescentState) {
		// Quiescent phase: capture state to memory and switch the op
		// stream to the next generation's segment, atomically with
		// respect to appends (which run on this same goroutine).
		epoch = q.Epoch()
		cores = q.Cores()
		g := q.Graph()
		m = g.M()
		w := newSliceWriter(p.ckptBuf[:0])
		if err := g.WriteBinary(w); err != nil {
			rotErr = err
			return
		}
		p.ckptBuf = w.b
		graphBin = w.b
		gen, rotErr = p.rotateSegment()
	})
	if rotErr != nil {
		if errors.Is(rotErr, errManagerClosed) {
			// Close won the race between our entry check and the
			// quiescent point; nothing is broken — just decline.
			return rotErr
		}
		p.mu.Lock()
		p.failLocked(fmt.Errorf("persist: checkpoint rotate: %w", rotErr))
		p.mu.Unlock()
		return rotErr
	}
	if err := writeCheckpointFile(p.dir, gen, epoch, m, cores, graphBin); err != nil {
		p.mu.Lock()
		p.failLocked(fmt.Errorf("persist: checkpoint write: %w", err))
		p.mu.Unlock()
		return err
	}
	if err := writeManifest(p.dir, gen); err != nil {
		p.mu.Lock()
		p.failLocked(fmt.Errorf("persist: manifest: %w", err))
		p.mu.Unlock()
		return err
	}
	removeStaleGenerations(p.dir, gen)
	p.checkpoints.Add(1)
	p.lastSaveUnix.Store(time.Now().Unix())
	p.lastSaveDur.Store(int64(time.Since(start)))
	p.logf("persist: checkpoint gen %d: n=%d m=%d epoch=%d in %v",
		gen, len(cores), m, epoch, time.Since(start).Round(time.Millisecond))
	return nil
}

// rotateSegment syncs and closes the current segment and opens the next
// generation's, at the quiescent point. From here on appends land in the
// new generation, whose checkpoint is about to be written; until the
// manifest flips, recovery replays the old checkpoint plus both
// segments, so no window loses ops.
func (p *Manager) rotateSegment() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return 0, p.err
	}
	if p.closed.Load() {
		// Close sets closed before taking mu, so once it holds the lock
		// every later rotation observes this and cannot reopen a new
		// segment (a leaked fd and post-Close files otherwise).
		return 0, errManagerClosed
	}
	if p.f != nil {
		// The old segment gets one final sync whatever the policy:
		// recovery tolerates a torn tail only in the newest segment.
		if err := p.f.Sync(); err != nil {
			return 0, err
		}
		if err := p.f.Close(); err != nil {
			return 0, err
		}
		p.f = nil
	}
	gen := p.gen + 1
	f, err := os.OpenFile(segmentPath(p.dir, gen), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	p.buf = appendSegmentHeader(p.buf[:0], gen)
	if _, err := f.Write(p.buf); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	p.f = f
	p.gen = gen
	p.opsSince = 0
	p.bytesSince = 0
	p.dirty = false
	p.started.Store(true)
	return gen, nil
}

// BGSave requests an asynchronous checkpoint (the CORE.BGSAVE handler).
// Returns immediately; a checkpoint already in flight absorbs the
// request.
func (p *Manager) BGSave() error {
	if !p.started.Load() {
		return errors.New("persist: not started")
	}
	if err := p.Err(); err != nil {
		return err
	}
	select {
	case p.ckptReq <- struct{}{}:
	default:
	}
	return nil
}

// LastSave returns the completion time of the last checkpoint (zero time
// before the first).
func (p *Manager) LastSave() time.Time {
	u := p.lastSaveUnix.Load()
	if u == 0 {
		return time.Time{}
	}
	return time.Unix(u, 0)
}

// Err returns the sticky persistence error, nil while healthy.
func (p *Manager) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats returns the durability counters.
func (p *Manager) Stats() Stats {
	p.mu.Lock()
	gen, opsSince, followers := p.gen, p.opsSince, len(p.taps)
	p.mu.Unlock()
	s := Stats{
		SyncFollowers:      followers,
		SyncDropped:        p.syncDropped.Load(),
		Gen:                gen,
		Records:            p.records.Load(),
		AppendedBytes:      p.appendedBytes.Load(),
		OpsSinceCheckpoint: opsSince,
		Checkpoints:        p.checkpoints.Load(),
		LastSave:           p.LastSave(),
		LastSaveDuration:   time.Duration(p.lastSaveDur.Load()),
		Fsync:              p.opts.Fsync,
	}
	if e := p.errStr.Load(); e != nil {
		s.Err = *e
	}
	return s
}

// loop is the background worker: checkpoint requests plus the everysec
// fsync tick.
func (p *Manager) loop() {
	defer p.wg.Done()
	var tick <-chan time.Time
	if p.opts.Fsync == FsyncEverySec {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-p.quit:
			return
		case <-p.ckptReq:
			// Coalesce: a request armed while a checkpoint was already in
			// flight (threshold re-fire, BGSAVE spam, SIGTERM final save)
			// is satisfied by that checkpoint if no op landed since —
			// skipping it avoids back-to-back rotations of an unchanged
			// state. The threshold re-arms on the next append regardless.
			p.mu.Lock()
			ops := p.opsSince
			p.mu.Unlock()
			if ops == 0 && p.checkpoints.Load() > 0 {
				continue
			}
			if err := p.CheckpointNow(); err != nil {
				p.logf("persist: background checkpoint: %v", err)
			}
		case <-tick:
			p.syncIfDirty()
		}
	}
}

func (p *Manager) syncIfDirty() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.dirty || p.f == nil || p.err != nil {
		return
	}
	start := time.Now()
	if err := p.f.Sync(); err != nil {
		p.failLocked(fmt.Errorf("persist: fsync: %w", err))
		return
	}
	p.fsyncLat.ObserveDuration(time.Since(start))
	p.dirty = false
}

func (p *Manager) logf(format string, args ...any) {
	if p.opts.Logger != nil {
		p.opts.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// sliceWriter is an io.Writer over a reusable byte slice (bytes.Buffer
// without the ownership dance: the backing array is handed back for
// reuse across checkpoints).
type sliceWriter struct{ b []byte }

func newSliceWriter(b []byte) *sliceWriter { return &sliceWriter{b} }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
