package persist

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
	"repro/kcore"
)

// TestAppendBatchZeroAlloc pins the AOF hot path's allocation budget:
// once the encode scratch is warm, logging a batch allocates nothing —
// the same discipline the serving write path already keeps.
func TestAppendBatchZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir, Options{Fsync: FsyncNo, Logger: log.New(os.Stderr, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(graph.New(64), kcore.WithOpLog(mgr))
	defer m.Close()
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	edges := make([]graph.Edge, 32)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
	}
	mgr.AppendBatch(edges[:16], edges[16:]) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		mgr.AppendBatch(edges[:16], edges[16:])
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocates %.1f objects per call, want 0", allocs)
	}
	mgr.AppendGrow(65)
	if allocs := testing.AllocsPerRun(100, func() { mgr.AppendGrow(65) }); allocs != 0 {
		t.Fatalf("AppendGrow allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkAOFAppend measures the durability tax on one coalesced batch
// of 16 edges, per fsync policy. FsyncNo/EverySec is the encoding + page
// cache write; FsyncAlways pays the device sync that buys zero-loss
// durability.
func BenchmarkAOFAppend(b *testing.B) {
	for _, pol := range []Fsync{FsyncNo, FsyncEverySec, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			dir := b.TempDir()
			mgr, err := NewManager(dir, Options{
				Fsync:           pol,
				CheckpointOps:   -1,
				CheckpointBytes: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			m := kcore.New(graph.New(64), kcore.WithOpLog(mgr))
			defer m.Close()
			if err := mgr.Start(m); err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			edges := make([]graph.Edge, 16)
			for i := range edges {
				edges[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
			}
			b.SetBytes(int64(recHeaderSize + 5 + 8*len(edges)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mgr.AppendBatch(nil, edges)
			}
		})
	}
}

// BenchmarkColdStart pits the two ways a kcored gets its graph back
// against each other at n=1e6/m=4e6 — the README's "why checkpoints"
// numbers. Both arms end at the same place (a graph ready for
// kcore.New's BZ decomposition, decomposition included), so the delta is
// purely checkpoint-binary-read + log-tail replay vs text edge-list
// parse + from-scratch graph build. Run with -benchtime=3x for stable
// wall numbers.
func BenchmarkColdStart(b *testing.B) {
	const (
		n = 1_000_000
		m = 4_000_000
	)
	g := gen.ErdosRenyi(n, m, 7)

	// Arm 1 fixture: a durability dir holding the graph as checkpoint +
	// a 1000-op log tail.
	dir := b.TempDir()
	mgr, err := NewManager(dir, Options{Fsync: FsyncNo})
	if err != nil {
		b.Fatal(err)
	}
	mt := kcore.New(g.Clone(), kcore.WithOpLog(mgr))
	if err := mgr.Start(mt); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		u, v := int32(i), int32((i*31+7)%n)
		if u != v {
			mt.InsertEdge(u, v)
		}
	}
	mt.Flush()
	mt.Close()
	if err := mgr.Close(); err != nil {
		b.Fatal(err)
	}

	// Arm 2 fixture: the same base graph as a text edge list (what
	// kcored -load reads).
	edgefile := filepath.Join(b.TempDir(), "edges.txt")
	f, err := os.Create(edgefile)
	if err != nil {
		b.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := Recover(dir)
			if err != nil {
				b.Fatal(err)
			}
			core, _ := bz.Decompose(res.Graph)
			if len(core) != res.Graph.N() {
				b.Fatal("bad decomposition")
			}
		}
	})
	b.Run("loadfile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(edgefile)
			if err != nil {
				b.Fatal(err)
			}
			lg, err := graph.ReadEdgeList(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			core, _ := bz.Decompose(lg)
			if len(core) != lg.N() {
				b.Fatal("bad decomposition")
			}
		}
	})
}

// BenchmarkRecover measures end-to-end recovery (checkpoint read + tail
// replay + one BZ decomposition) against the cost it replaces: a fresh
// decomposition after re-reading a text edge list. Run with -benchtime=1x
// for the honest single-shot numbers quoted in the README.
func BenchmarkRecover(b *testing.B) {
	for _, scale := range []struct {
		n, m int
	}{
		{100_000, 400_000},
		{1_000_000, 4_000_000},
	} {
		b.Run(fmt.Sprintf("n=%d", scale.n), func(b *testing.B) {
			dir := b.TempDir()
			g := gen.ErdosRenyi(scale.n, int64(scale.m), 77)
			mgr, err := NewManager(dir, Options{Fsync: FsyncNo})
			if err != nil {
				b.Fatal(err)
			}
			m := kcore.New(g.Clone(), kcore.WithOpLog(mgr))
			if err := mgr.Start(m); err != nil {
				b.Fatal(err)
			}
			// A modest tail so replay cost shows up.
			for i := 0; i < 1000; i++ {
				u, v := int32(i%scale.n), int32((i*7+1)%scale.n)
				if u != v {
					m.InsertEdge(u, v)
				}
			}
			m.Flush()
			m.Close()
			if err := mgr.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Recover(dir)
				if err != nil {
					b.Fatal(err)
				}
				core, _ := bz.Decompose(res.Graph)
				if len(core) != res.Graph.N() {
					b.Fatal("bad decomposition")
				}
			}
		})
	}
}
