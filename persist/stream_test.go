package persist

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

// drainSession drains sess until it reports idle with no data, returning
// the concatenated framed records and the last streamed epoch.
func drainSession(t *testing.T, sess *SyncSession) ([]byte, uint64) {
	t.Helper()
	var out []byte
	var epoch uint64
	for {
		data, e, err := sess.Wait(50*time.Millisecond, nil)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		epoch = e
		if data == nil {
			return out, epoch
		}
		out = append(out, data...)
	}
}

// applyStream replays a framed record stream onto g at graph level and
// returns the highest epoch marker seen.
func applyStream(t *testing.T, g *graph.Graph, stream []byte) uint64 {
	t.Helper()
	sr := NewStreamReader(bytes.NewReader(stream))
	var epoch uint64
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break // clean end at a record boundary
		}
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		switch rec.Op {
		case OpInsert:
			for _, e := range rec.Edges {
				if hi := max(e.U, e.V); int(hi) >= g.N() {
					g.Grow(int(hi) + 1)
				}
				g.AddEdge(e.U, e.V)
			}
		case OpRemove:
			for _, e := range rec.Edges {
				g.RemoveEdge(e.U, e.V)
			}
		case OpGrow:
			if rec.N > g.N() {
				g.Grow(rec.N)
			}
		case OpEpoch, OpPing:
			if rec.Epoch > epoch {
				epoch = rec.Epoch
			}
		}
	}
	return epoch
}

func assertSameGraph(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("graph n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	wc, _ := bz.Decompose(want)
	gc, _ := bz.Decompose(got)
	for v := range wc {
		if gc[v] != wc[v] {
			t.Fatalf("core[%d] = %d, want %d", v, gc[v], wc[v])
		}
	}
	for v := int32(0); int(v) < want.N(); v++ {
		for _, w := range want.Adj(v) {
			if !got.HasEdge(v, w) {
				t.Fatalf("missing edge (%d,%d)", v, w)
			}
		}
	}
}

// TestSyncStream is the tap's contract: snapshot + streamed tail
// reconstructs the leader's exact graph, and the last epoch marker is
// the leader's final epoch.
func TestSyncStream(t *testing.T) {
	base := gen.ErdosRenyi(100, 300, 11)
	m, mgr := startManaged(t, t.TempDir(), base.Clone(), Options{Fsync: FsyncNo})
	defer mgr.Close()
	defer m.Close()

	sess, err := mgr.StartSync()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Crc != SnapshotCRC(sess.Snapshot) {
		t.Fatal("advertised snapshot CRC does not match the snapshot")
	}
	follower, err := graph.ReadBinary(bytes.NewReader(sess.Snapshot))
	if err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if follower.N() != base.N() || follower.M() != base.M() {
		t.Fatalf("snapshot n=%d m=%d, want n=%d m=%d", follower.N(), follower.M(), base.N(), base.M())
	}

	// Mixed churn after the sync point: inserts, removes, implicit and
	// explicit growth.
	m.InsertEdges([]graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}, {U: 120, V: 5}})
	m.RemoveEdges([]graph.Edge{{U: 1, V: 2}})
	m.AddVertices(30)
	m.InsertEdges([]graph.Edge{{U: 140, V: 141}, {U: 141, V: 142}})
	wantEpoch := m.Flush()

	stream, lastEpoch := drainSession(t, sess)
	if lastEpoch != wantEpoch {
		t.Fatalf("streamed epoch = %d, want %d", lastEpoch, wantEpoch)
	}
	if applied := applyStream(t, follower, stream); applied != wantEpoch {
		t.Fatalf("applied epoch = %d, want %d", applied, wantEpoch)
	}
	assertSameGraph(t, follower, m.Graph())
}

// TestSyncIdlePingEpoch: an idle Wait reports the epoch of the sync
// point, so a follower of a quiet leader can still satisfy CORE.WAIT.
func TestSyncIdlePingEpoch(t *testing.T) {
	m, mgr := startManaged(t, t.TempDir(), gen.ErdosRenyi(20, 40, 1), Options{Fsync: FsyncNo})
	defer mgr.Close()
	defer m.Close()

	sess, err := mgr.StartSync()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	data, epoch, err := sess.Wait(20*time.Millisecond, nil)
	if err != nil || data != nil {
		t.Fatalf("idle Wait = (%v, %v), want (nil, nil)", data, err)
	}
	if epoch != sess.Epoch {
		t.Fatalf("idle epoch = %d, want sync epoch %d", epoch, sess.Epoch)
	}
}

// TestSlowFollowerDropped: a follower that stops draining overflows its
// bounded tap and is dropped without ever blocking the leader.
func TestSlowFollowerDropped(t *testing.T) {
	m, mgr := startManaged(t, t.TempDir(), gen.ErdosRenyi(50, 100, 3),
		Options{Fsync: FsyncNo, SyncBufferBytes: 256})
	defer mgr.Close()
	defer m.Close()

	sess, err := mgr.StartSync()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if st := mgr.Stats(); st.SyncFollowers != 1 {
		t.Fatalf("SyncFollowers = %d, want 1", st.SyncFollowers)
	}

	// Never drain; push well past 256 bytes of records.
	edges := make([]graph.Edge, 64)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
	}
	m.InsertEdges(edges)
	m.Flush()

	if _, _, err := sess.Wait(time.Second, nil); !errors.Is(err, ErrSlowFollower) {
		t.Fatalf("Wait after overflow = %v, want ErrSlowFollower", err)
	}
	if st := mgr.Stats(); st.SyncFollowers != 0 || st.SyncDropped != 1 {
		t.Fatalf("after drop: followers=%d dropped=%d, want 0/1", st.SyncFollowers, st.SyncDropped)
	}
	// The leader keeps appending fine.
	m.InsertEdge(0, 30)
	m.Flush()
	if err := mgr.Err(); err != nil {
		t.Fatalf("leader persistence broke after follower drop: %v", err)
	}
}

// TestSyncClosedOnManagerClose: Close kills live taps so a parked
// streamer wakes with a terminal error instead of hanging.
func TestSyncClosedOnManagerClose(t *testing.T) {
	m, mgr := startManaged(t, t.TempDir(), gen.ErdosRenyi(20, 40, 5), Options{Fsync: FsyncNo})
	defer m.Close()

	sess, err := mgr.StartSync()
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := sess.Wait(10*time.Second, nil)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSyncClosed) {
			t.Fatalf("Wait after Close = %v, want ErrSyncClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still parked after manager Close")
	}
	if _, err := mgr.StartSync(); err == nil {
		t.Fatal("StartSync succeeded on a closed manager")
	}
}

// TestCheckpointHammer shakes the checkpoint serialization paths: BGSave
// spam, direct CheckpointNow spam, and an insert burst all racing a
// Close. Pins the two bugs this combination used to reach: a checkpoint
// racing Close reopening a fresh segment on a closed manager (leaked
// fd, post-Close files), and queued requests double-rotating an
// unchanged state.
func TestCheckpointHammer(t *testing.T) {
	dir := t.TempDir()
	m, mgr := startManaged(t, dir, gen.ErdosRenyi(100, 200, 9),
		Options{Fsync: FsyncAlways, CheckpointOps: 50, Logger: testLogger(t)})
	defer m.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(3)
	go func() { // write burst arming the ops threshold continuously
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.InsertEdge(int32(i%100), int32((i+7)%100))
			m.RemoveEdge(int32(i%100), int32((i+7)%100))
		}
	}()
	go func() { // BGSAVE spam
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.BGSave()
		}
	}()
	go func() { // synchronous checkpoint spam (the SIGTERM path)
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mgr.CheckpointNow()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	// Close while everything is still running.
	if err := mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	if err := mgr.Err(); err != nil {
		t.Fatalf("sticky error after hammer: %v", err)
	}
	// A post-Close checkpoint must decline, not reopen a segment.
	if err := mgr.CheckpointNow(); !errors.Is(err, errManagerClosed) {
		t.Fatalf("CheckpointNow after Close = %v, want errManagerClosed", err)
	}
	mgr.mu.Lock()
	f := mgr.f
	mgr.mu.Unlock()
	if f != nil {
		t.Fatal("segment file still open after Close")
	}
}

// TestBackgroundCheckpointCoalesces: a queued checkpoint request with
// nothing appended since the last checkpoint is absorbed instead of
// rotating an identical generation.
func TestBackgroundCheckpointCoalesces(t *testing.T) {
	m, mgr := startManaged(t, t.TempDir(), gen.ErdosRenyi(30, 60, 2), Options{Fsync: FsyncNo})
	defer mgr.Close()
	defer m.Close()

	// No ops since Start's initial checkpoint: BGSave must coalesce away.
	if err := mgr.BGSave(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := mgr.Stats().Checkpoints; got != 1 {
		t.Fatalf("idle BGSave ran a checkpoint: count = %d, want 1", got)
	}

	// With ops pending it must still run.
	m.InsertEdge(1, 2)
	m.Flush()
	if err := mgr.BGSave(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && mgr.Stats().Checkpoints < 2; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if got := mgr.Stats().Checkpoints; got != 2 {
		t.Fatalf("BGSave with pending ops: count = %d, want 2", got)
	}
}
