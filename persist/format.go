package persist

// On-disk formats, little-endian throughout. Three file kinds live in a
// durability directory, all named by generation:
//
//	MANIFEST                 points at the current generation (atomic
//	                         tmp+rename update; 20 bytes, CRC-framed)
//	checkpoint-%06d.ckpt     full state at the instant generation G began:
//	                         header, core array, graph binary CSR
//	                         (graph.WriteBinary), trailing CRC-32C over
//	                         the whole file
//	aof-%06d.log             append-only op log of everything after that
//	                         instant: a 16-byte header, then
//	                         length-prefixed CRC-framed records
//
// AOF record: u32 payloadLen, u32 crc32c(payload), payload. The payload
// is one op: kind byte (insert batch / remove batch / grow), then a u32
// edge count and count (i32,i32) pairs, or a u64 vertex count for grow.
// Huge batches are chunked into records of at most maxEdgesPerRecord
// edges, so recovery never trusts a length prefix larger than
// maxRecordPayload before its CRC is verified.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/graph"
)

const (
	aofMagic      = 0x4b414f46 // "KAOF"
	ckptMagic     = 0x4b434b50 // "KCKP"
	maniMagic     = 0x4b4d4e46 // "KMNF"
	formatVersion = 1

	recInsert byte = 1
	recRemove byte = 2
	recGrow   byte = 3

	aofHeaderSize = 16 // magic u32, version u32, gen u64
	recHeaderSize = 8  // payload len u32, crc32c u32

	// maxEdgesPerRecord chunks one coalesced batch into bounded records;
	// maxRecordPayload is the largest length prefix recovery will
	// allocate for before the CRC has had a chance to vouch for it.
	maxEdgesPerRecord = 1 << 20
	maxRecordPayload  = 5 + 8*maxEdgesPerRecord
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

func checkpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.ckpt", gen))
}

func segmentPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("aof-%06d.log", gen))
}

// --- AOF record encoding ----------------------------------------------------

// ensureCap grows b (append-style) until it has room for n more bytes.
func ensureCap(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b
	}
	nb := make([]byte, len(b), len(b)+n)
	copy(nb, b)
	return nb
}

// appendEdgeRecord appends one framed insert/remove record to dst.
// len(edges) must be <= maxEdgesPerRecord (callers chunk).
func appendEdgeRecord(dst []byte, kind byte, edges []graph.Edge) []byte {
	payloadLen := 5 + 8*len(edges)
	dst = ensureCap(dst, recHeaderSize+payloadLen)
	hdr := len(dst)
	dst = dst[:hdr+recHeaderSize+payloadLen]
	p := dst[hdr+recHeaderSize:]
	p[0] = kind
	binary.LittleEndian.PutUint32(p[1:], uint32(len(edges)))
	o := 5
	for _, e := range edges {
		binary.LittleEndian.PutUint32(p[o:], uint32(e.U))
		binary.LittleEndian.PutUint32(p[o+4:], uint32(e.V))
		o += 8
	}
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[hdr+4:], crc32.Checksum(p, crcTable))
	return dst
}

// appendGrowRecord appends one framed grow record to dst.
func appendGrowRecord(dst []byte, n int) []byte {
	const payloadLen = 9
	dst = ensureCap(dst, recHeaderSize+payloadLen)
	hdr := len(dst)
	dst = dst[:hdr+recHeaderSize+payloadLen]
	p := dst[hdr+recHeaderSize:]
	p[0] = recGrow
	binary.LittleEndian.PutUint64(p[1:], uint64(n))
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[hdr+4:], crc32.Checksum(p, crcTable))
	return dst
}

// appendSegmentHeader appends the 16-byte AOF file header to dst.
func appendSegmentHeader(dst []byte, gen uint64) []byte {
	dst = ensureCap(dst, aofHeaderSize)
	h := len(dst)
	dst = dst[:h+aofHeaderSize]
	binary.LittleEndian.PutUint32(dst[h:], aofMagic)
	binary.LittleEndian.PutUint32(dst[h+4:], formatVersion)
	binary.LittleEndian.PutUint64(dst[h+8:], gen)
	return dst
}

// --- checkpoint files -------------------------------------------------------

const ckptHeaderSize = 40 // magic u32, version u32, gen u64, epoch u64, n u64, m u64

// writeCheckpointFile writes a checkpoint atomically: tmp file, fsync,
// rename, directory fsync. graphBin is the pre-encoded graph.WriteBinary
// blob (captured at quiescence); cores the matching core array.
func writeCheckpointFile(dir string, gen, epoch uint64, m int64, cores []int32, graphBin []byte) error {
	path := checkpointPath(dir, gen)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	crc := uint32(0)
	bw := bufio.NewWriterSize(f, 1<<20)
	emit := func(p []byte) {
		crc = crc32.Update(crc, crcTable, p)
		bw.Write(p)
	}
	var hdr [ckptHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	binary.LittleEndian.PutUint64(hdr[16:], epoch)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(cores)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(m))
	emit(hdr[:])
	var chunk [64 << 10]byte
	k := 0
	for _, c := range cores {
		if k+4 > len(chunk) {
			emit(chunk[:k])
			k = 0
		}
		binary.LittleEndian.PutUint32(chunk[k:], uint32(c))
		k += 4
	}
	if k > 0 {
		emit(chunk[:k])
	}
	emit(graphBin)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	bw.Write(tail[:])
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readCheckpointFile loads and verifies a checkpoint. The whole file is
// read into memory (a checkpoint is a few bytes per vertex/edge) so the
// trailing CRC covers exactly what is parsed.
func readCheckpointFile(path string) (g *graph.Graph, cores []int32, epoch uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) < ckptHeaderSize+4 {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: truncated (%d bytes)", path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: CRC mismatch", path)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != ckptMagic {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: bad magic %#x", path, m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != formatVersion {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: unsupported version %d", path, v)
	}
	epoch = binary.LittleEndian.Uint64(body[16:])
	n := binary.LittleEndian.Uint64(body[24:])
	if n > math.MaxInt32 {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: implausible n=%d", path, n)
	}
	if uint64(len(body)-ckptHeaderSize) < 4*n {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: short core array", path)
	}
	cores = make([]int32, n)
	for i := range cores {
		cores[i] = int32(binary.LittleEndian.Uint32(body[ckptHeaderSize+4*i:]))
	}
	g, err = graph.ReadBinary(bytes.NewReader(body[ckptHeaderSize+4*int(n):]))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: %w", path, err)
	}
	if g.N() != int(n) {
		return nil, nil, 0, fmt.Errorf("persist: checkpoint %s: graph n=%d != core array n=%d", path, g.N(), n)
	}
	return g, cores, epoch, nil
}

// --- manifest ---------------------------------------------------------------

// writeManifest atomically points the directory at generation gen.
func writeManifest(dir string, gen uint64) error {
	var b [20]byte
	binary.LittleEndian.PutUint32(b[0:], maniMagic)
	binary.LittleEndian.PutUint32(b[4:], formatVersion)
	binary.LittleEndian.PutUint64(b[8:], gen)
	binary.LittleEndian.PutUint32(b[16:], crc32.Checksum(b[:16], crcTable))
	tmp := manifestPath(dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b[:]); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readManifest returns the current generation; ok=false when no manifest
// exists (a fresh or never-checkpointed directory).
func readManifest(dir string) (gen uint64, ok bool, err error) {
	data, err := os.ReadFile(manifestPath(dir))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(data) != 20 {
		return 0, false, fmt.Errorf("persist: manifest: bad size %d", len(data))
	}
	if got, want := crc32.Checksum(data[:16], crcTable), binary.LittleEndian.Uint32(data[16:]); got != want {
		return 0, false, fmt.Errorf("persist: manifest: CRC mismatch")
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != maniMagic {
		return 0, false, fmt.Errorf("persist: manifest: bad magic %#x", m)
	}
	return binary.LittleEndian.Uint64(data[8:]), true, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanMaxGen returns the largest generation named by any file in dir
// (manifest included), or 0. A corrupt manifest does not block starting
// over — only the files count then.
func scanMaxGen(dir string) (uint64, error) {
	var maxGen uint64
	if g, ok, err := readManifest(dir); err == nil && ok {
		maxGen = g
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range ents {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "aof-%d.log", &g); n == 1 && g > maxGen {
			maxGen = g
		}
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%d.ckpt", &g); n == 1 && g > maxGen {
			maxGen = g
		}
	}
	return maxGen, nil
}

// removeStaleGenerations deletes checkpoint and segment files of
// generations strictly below keep, plus abandoned tmp files.
func removeStaleGenerations(dir string, keep uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var g uint64
		if n, _ := fmt.Sscanf(name, "aof-%d.log", &g); n == 1 && g < keep {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if n, _ := fmt.Sscanf(name, "checkpoint-%d.ckpt", &g); n == 1 && g < keep {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
