package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/graph"
)

// Result is what Recover reconstructed from a durability directory.
type Result struct {
	// Graph is the recovered graph: the checkpoint plus every valid
	// logged op, applied in order. Hand it to kcore.New, whose one BZ
	// decomposition recomputes the cores — byte-equal to a fresh
	// decomposition of the same edges by construction.
	Graph *graph.Graph
	// Cores is the checkpoint's core array (the state *before* the log
	// tail). Informational: after replay the cores must be recomputed,
	// which kcore.New does.
	Cores []int32
	// Gen is the generation recovered from; Epoch the checkpoint's
	// snapshot epoch.
	Gen   uint64
	Epoch uint64

	// TailRecords / TailEdges count the replayed log records and edge
	// ops across all segments.
	TailRecords int64
	TailEdges   int64
	// Segments is how many AOF segments were replayed (more than one
	// when a crash hit between log rotation and the manifest update).
	Segments int
	// TornBytes is how much of the newest segment was discarded as a
	// torn or corrupt tail (0 for a clean shutdown).
	TornBytes int64
	// Truncated reports that replay stopped early at corruption in a
	// non-final segment — everything after it is lost. Recovery still
	// returns the longest valid prefix rather than failing.
	Truncated bool
}

// Recover reconstructs state from a durability directory: load the
// manifest's checkpoint, then replay every consecutive AOF segment from
// that generation up (normally one; two when a crash landed between
// rotation and manifest update). A torn or CRC-corrupt tail in the
// newest segment is expected debris of a crash and is silently dropped;
// corruption anywhere else stops replay at the longest valid prefix and
// sets Truncated.
//
// A directory with no manifest (fresh, or never checkpointed) returns a
// Result with a nil Graph and no error — the caller starts empty.
// Recover only reads; it never repairs files. The Manager's Start takes
// a fresh checkpoint, which supersedes whatever debris is left behind.
func Recover(dir string) (*Result, error) {
	gen, ok, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return &Result{}, nil
	}
	g, cores, epoch, err := readCheckpointFile(checkpointPath(dir, gen))
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: g, Cores: cores, Gen: gen, Epoch: epoch}

	// Which segments exist above gen? Replay stops at the first gap:
	// generations are consecutive, so a missing segment means the later
	// files are stale debris, not continuation.
	var segs []uint64
	for sg := gen; ; sg++ {
		if _, err := os.Stat(segmentPath(dir, sg)); err != nil {
			break
		}
		segs = append(segs, sg)
	}
	for i, sg := range segs {
		final := i == len(segs)-1
		torn, err := replaySegment(segmentPath(dir, sg), sg, g, res)
		if err != nil {
			return nil, err
		}
		res.Segments++
		if torn > 0 {
			if final {
				res.TornBytes = torn
			} else {
				// Corruption mid-history: ops beyond it cannot be
				// trusted (order matters), so stop here.
				res.Truncated = true
				break
			}
		}
	}
	return res, nil
}

// replaySegment applies one AOF segment's valid records to g and returns
// how many trailing bytes were discarded as torn/corrupt (0 for a clean
// segment). File-level problems (unreadable, bad header magic) are
// errors; record-level corruption is data, not an error.
func replaySegment(path string, gen uint64, g *graph.Graph, res *Result) (torn int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	br := newCountingReader(f)
	var hdr [aofHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// A segment torn inside its own header: the rotation fsyncs the
		// header before any record, so this is only reachable for the
		// segment created moments before a crash — drop it whole.
		return size, nil
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != aofMagic {
		return 0, fmt.Errorf("persist: %s: bad AOF magic %#x", path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != formatVersion {
		return 0, fmt.Errorf("persist: %s: unsupported AOF version %d", path, v)
	}
	if hg := binary.LittleEndian.Uint64(hdr[8:]); hg != gen {
		return 0, fmt.Errorf("persist: %s: header generation %d != %d", path, hg, gen)
	}
	valid := int64(aofHeaderSize) // offset after the last fully-valid record
	var rec [recHeaderSize]byte
	payload := make([]byte, 0, 64<<10)
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			break // clean EOF at a record boundary, or torn header
		}
		payloadLen := binary.LittleEndian.Uint32(rec[0:])
		wantCRC := binary.LittleEndian.Uint32(rec[4:])
		if payloadLen == 0 || payloadLen > maxRecordPayload {
			break // garbage length prefix — treat as torn
		}
		if cap(payload) < int(payloadLen) {
			payload = make([]byte, payloadLen)
		} else {
			payload = payload[:payloadLen]
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn mid-payload
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			break // bit rot or torn write inside the payload
		}
		edges, err := applyRecord(g, payload)
		if err != nil {
			return 0, fmt.Errorf("persist: %s at offset %d: %w", path, valid, err)
		}
		valid = br.n
		res.TailRecords++
		res.TailEdges += edges
	}
	return size - valid, nil
}

// applyRecord applies one CRC-verified record payload to g at graph
// level. The payload is trusted for well-formedness only as far as the
// CRC vouches; semantic bounds are still checked so a record from a
// mismatched history cannot panic the replay.
func applyRecord(g *graph.Graph, p []byte) (edges int64, err error) {
	kind := p[0]
	switch kind {
	case recInsert, recRemove:
		if len(p) < 5 {
			return 0, fmt.Errorf("edge record too short (%d bytes)", len(p))
		}
		count := binary.LittleEndian.Uint32(p[1:])
		if uint64(len(p)) != 5+8*uint64(count) {
			return 0, fmt.Errorf("edge record length %d != header count %d", len(p), count)
		}
		o := 5
		for i := uint32(0); i < count; i++ {
			u := int32(binary.LittleEndian.Uint32(p[o:]))
			v := int32(binary.LittleEndian.Uint32(p[o+4:]))
			o += 8
			if u < 0 || v < 0 {
				return 0, fmt.Errorf("negative vertex id (%d,%d)", u, v)
			}
			// Logged ops are post-prepareBatch: insert endpoints were in
			// range when logged, so grow-to-fit reproduces the implicit
			// growth the engine performed (which is why implicit grows
			// need no records of their own).
			if kind == recInsert {
				if hi := max(u, v); int(hi) >= g.N() {
					g.Grow(int(hi) + 1)
				}
				g.AddEdge(u, v)
			} else {
				if int(u) < g.N() && int(v) < g.N() {
					g.RemoveEdge(u, v)
				}
			}
		}
		return int64(count), nil
	case recGrow:
		if len(p) != 9 {
			return 0, fmt.Errorf("grow record length %d", len(p))
		}
		n := binary.LittleEndian.Uint64(p[1:])
		if n > math.MaxInt32 {
			return 0, fmt.Errorf("grow to implausible n=%d", n)
		}
		if int(n) > g.N() {
			g.Grow(int(n))
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("unknown record kind %d", kind)
	}
}

// countingReader tracks the absolute offset consumed from the underlying
// reader, so replay knows the exact boundary of the last valid record.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
