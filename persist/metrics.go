package persist

import (
	"strconv"
	"time"

	"repro/obs"
)

// TapStat is a point-in-time view of one replication follower tap.
type TapStat struct {
	ID            int64  // stable per-tap id (monotone across the manager's lifetime)
	BufferedBytes int    // framed record bytes enqueued but not yet streamed
	LastEpoch     uint64 // newest epoch marker the tap has enqueued
}

// TapStats snapshots the live follower taps.
func (p *Manager) TapStats() []TapStat {
	p.mu.Lock()
	taps := append([]*tap(nil), p.taps...)
	p.mu.Unlock()
	out := make([]TapStat, 0, len(taps))
	for _, t := range taps {
		t.mu.Lock()
		out = append(out, TapStat{ID: t.id, BufferedBytes: len(t.buf), LastEpoch: t.lastEpoch})
		t.mu.Unlock()
	}
	return out
}

// FsyncQuantile estimates the q-quantile of AOF fsync latency in
// seconds (0 when no fsync has been timed yet) — the CORE.STATS view of
// the exported histogram.
func (p *Manager) FsyncQuantile(q float64) float64 { return p.fsyncLat.Quantile(q) }

// RegisterMetrics adds the durability subsystem's metrics to reg: the
// fsync latency histogram plus scrape-time views of the counters Stats
// already reports, and a per-follower buffered-bytes gauge series.
func (p *Manager) RegisterMetrics(reg *obs.Registry) {
	reg.MustRegister(
		p.fsyncLat,
		obs.NewCounterFunc("kcored_aof_records_total", "AOF records appended.",
			func() float64 { return float64(p.records.Load()) }),
		obs.NewCounterFunc("kcored_aof_bytes_total", "AOF bytes appended.",
			func() float64 { return float64(p.appendedBytes.Load()) }),
		obs.NewCounterFunc("kcored_checkpoints_total", "Checkpoints completed (initial included).",
			func() float64 { return float64(p.checkpoints.Load()) }),
		obs.NewGaugeFunc("kcored_checkpoint_generation", "Current durability generation.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(p.gen)
			}),
		obs.NewGaugeFunc("kcored_checkpoint_last_duration_seconds", "Wall time of the last checkpoint.",
			func() float64 { return time.Duration(p.lastSaveDur.Load()).Seconds() }),
		obs.NewGaugeFunc("kcored_checkpoint_last_unix", "Completion time of the last checkpoint (unix seconds, 0 before the first).",
			func() float64 { return float64(p.lastSaveUnix.Load()) }),
		obs.NewGaugeFunc("kcored_persist_err", "1 when the sticky persistence error has tripped, else 0.",
			func() float64 {
				if p.errStr.Load() != nil {
					return 1
				}
				return 0
			}),
		obs.NewGaugeFunc("kcored_sync_followers", "Live replication follower taps.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(len(p.taps))
			}),
		obs.NewCounterFunc("kcored_sync_dropped_total", "Follower taps dropped by the slow-follower policy.",
			func() float64 { return float64(p.syncDropped.Load()) }),
		obs.NewCounterFunc("kcored_syncs_started_total", "Follower sync sessions started.",
			func() float64 { return float64(p.syncsStarted.Load()) }),
		obs.NewGaugeSeriesFunc("kcored_sync_follower_buffered_bytes",
			"Per-follower op-stream backlog (framed record bytes not yet streamed).",
			func() []obs.Sample {
				taps := p.TapStats()
				out := make([]obs.Sample, len(taps))
				for i, t := range taps {
					out[i] = obs.Sample{
						Labels: []obs.Label{obs.L("follower", strconv.FormatInt(t.ID, 10))},
						Value:  float64(t.BufferedBytes),
					}
				}
				return out
			}),
	)
}
