package persist

import (
	"encoding/binary"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
	"repro/kcore"
)

func testLogger(t *testing.T) *log.Logger {
	return log.New(testWriter{t}, "", 0)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// startManaged builds a maintainer over g with a fresh Manager on dir.
func startManaged(t *testing.T, dir string, g *graph.Graph, opts Options) (*kcore.Maintainer, *Manager) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = testLogger(t)
	}
	mgr, err := NewManager(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(g, kcore.WithOpLog(mgr), kcore.WithWorkers(2))
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	return m, mgr
}

func assertRecoverMatches(t *testing.T, dir string, want *graph.Graph) *Result {
	t.Helper()
	res, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil {
		t.Fatal("Recover returned nil graph")
	}
	if res.Graph.N() != want.N() || res.Graph.M() != want.M() {
		t.Fatalf("recovered n=%d m=%d, want n=%d m=%d",
			res.Graph.N(), res.Graph.M(), want.N(), want.M())
	}
	wc, _ := bz.Decompose(want)
	gc, _ := bz.Decompose(res.Graph)
	for v := range wc {
		if gc[v] != wc[v] {
			t.Fatalf("recovered core[%d] = %d, want %d", v, gc[v], wc[v])
		}
	}
	for v := int32(0); int(v) < want.N(); v++ {
		for _, w := range want.Adj(v) {
			if !res.Graph.HasEdge(v, w) {
				t.Fatalf("recovered graph missing edge (%d,%d)", v, w)
			}
		}
	}
	return res
}

// TestRecoverFreshDir: an empty or absent directory recovers to nothing.
func TestRecoverFreshDir(t *testing.T) {
	res, err := Recover(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("fresh dir recovered a graph")
	}
	if _, err := Recover(filepath.Join(t.TempDir(), "missing")); err == nil {
		// A missing dir has no manifest: also fine (empty Result) — but
		// readManifest returns IsNotExist → ok=false, so no error.
	} else {
		t.Fatalf("missing dir: %v", err)
	}
}

// TestCheckpointOnlyRecovery: Start's initial checkpoint alone (no log
// records) recovers the full base graph.
func TestCheckpointOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	base := gen.ErdosRenyi(500, 2000, 9)
	m, mgr := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncAlways})
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	res := assertRecoverMatches(t, dir, base)
	if res.TailRecords != 0 || res.TornBytes != 0 || res.Segments != 1 {
		t.Fatalf("unexpected tail: %+v", res)
	}
}

// TestLogReplayRecovery drives mixed updates (inserts, removes, growth,
// implicit growth) with fsync=always and verifies checkpoint+tail
// recovery matches the live graph exactly.
func TestLogReplayRecovery(t *testing.T) {
	dir := t.TempDir()
	const n = 400
	base := gen.ErdosRenyi(n, 3*n, 21)
	m, mgr := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncAlways})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0:
			u := int32(rng.Intn(m.N()))
			if a := m.Graph().Adj(u); len(a) > 0 {
				m.RemoveEdge(u, a[rng.Intn(len(a))])
			}
		case 1:
			m.AddVertices(2)
		case 2:
			m.InsertEdge(int32(rng.Intn(m.N())), int32(m.N()+rng.Intn(3)))
		default:
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				m.InsertEdge(u, v)
			}
		}
	}
	m.Flush()
	live := m.Graph().Clone()
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	res := assertRecoverMatches(t, dir, live)
	if res.TailRecords == 0 {
		t.Fatal("expected log records to replay")
	}
	if res.TornBytes != 0 || res.Truncated {
		t.Fatalf("clean shutdown left a torn tail: %+v", res)
	}
}

// TestThresholdRotation: a low CheckpointOps threshold must rotate
// generations during a burst, delete stale files, and still recover
// exactly.
func TestThresholdRotation(t *testing.T) {
	dir := t.TempDir()
	const n = 200
	base := gen.ErdosRenyi(n, n, 31)
	m, mgr := startManaged(t, dir, base.Clone(), Options{
		Fsync:           FsyncAlways,
		CheckpointOps:   50,
		CheckpointBytes: -1,
	})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 600; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			m.InsertEdge(u, v)
		}
	}
	m.Flush()
	// Force one deterministic rotation so at least two checkpoints exist
	// even if the background worker lagged.
	if err := mgr.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("expected rotations, got %d checkpoints", st.Checkpoints)
	}
	live := m.Graph().Clone()
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	assertRecoverMatches(t, dir, live)

	// Stale generations must be gone: at most the current gen's pair
	// (plus manifest) remains.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) > 3 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("stale files not cleaned: %v", names)
	}
}

// buildDirWithTail constructs a durability dir whose final record batch
// is known, returning the dir, the expected fully-recovered graph, and
// the segment path.
func buildDirWithTail(t *testing.T) (dir string, full *graph.Graph, seg string) {
	t.Helper()
	dir = t.TempDir()
	base := gen.ErdosRenyi(60, 120, 17)
	m, mgr := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncAlways})
	for i := int32(0); i < 10; i++ {
		m.InsertEdge(i, i+40)
	}
	m.Flush()
	full = m.Graph().Clone()
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, full, segmentPath(dir, mgr.Stats().Gen)
}

// TestTornTailEveryOffset truncates the AOF at every byte offset inside
// the final record (and beyond, down to mid-header) and asserts recovery
// never fails: it returns the longest valid prefix, reporting the rest
// as TornBytes.
func TestTornTailEveryOffset(t *testing.T) {
	dir, full, seg := buildDirWithTail(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the final record's start by walking the frame chain.
	off := int64(aofHeaderSize)
	lastStart := off
	for off < int64(len(data)) {
		lastStart = off
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		off += recHeaderSize + plen
	}
	if off != int64(len(data)) {
		t.Fatalf("frame walk ended at %d, file is %d", off, len(data))
	}

	// Recovery of the intact file is the baseline.
	baseline := assertRecoverMatches(t, dir, full)
	if baseline.TornBytes != 0 {
		t.Fatalf("intact file reported torn bytes: %+v", baseline)
	}

	for cut := lastStart; cut < int64(len(data)); cut++ {
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut at %d: Recover failed: %v", cut, err)
		}
		if res.Graph == nil {
			t.Fatalf("cut at %d: nil graph", cut)
		}
		if got, want := res.TornBytes, cut-lastStart; got != want {
			t.Fatalf("cut at %d: TornBytes = %d, want %d", cut, got, want)
		}
		if res.Truncated {
			t.Fatalf("cut at %d: final-segment tear flagged Truncated", cut)
		}
		// The prefix before the final record must replay fully.
		if res.TailRecords != baseline.TailRecords-1 {
			t.Fatalf("cut at %d: TailRecords = %d, want %d", cut, res.TailRecords, baseline.TailRecords-1)
		}
	}
	// Restore and confirm full recovery still works.
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	assertRecoverMatches(t, dir, full)
}

// TestCorruptCRCTail flips bits in the final record's payload and CRC:
// recovery drops exactly that record, never errors.
func TestCorruptCRCTail(t *testing.T) {
	dir, full, seg := buildDirWithTail(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(aofHeaderSize)
	lastStart := off
	for off < int64(len(data)) {
		lastStart = off
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		off += recHeaderSize + plen
	}
	baseline := assertRecoverMatches(t, dir, full)

	for _, tc := range []struct {
		name string
		at   int64
	}{
		{"stored CRC", lastStart + 4},
		{"payload kind byte", lastStart + recHeaderSize},
		{"payload last byte", int64(len(data)) - 1},
		{"length prefix huge", lastStart},
	} {
		b := append([]byte(nil), data...)
		if tc.name == "length prefix huge" {
			binary.LittleEndian.PutUint32(b[tc.at:], 0xffffffff)
		} else {
			b[tc.at] ^= 0x5a
		}
		if err := os.WriteFile(seg, b, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Recover(dir)
		if err != nil {
			t.Fatalf("%s: Recover failed: %v", tc.name, err)
		}
		if res.TailRecords != baseline.TailRecords-1 {
			t.Fatalf("%s: TailRecords = %d, want %d", tc.name, res.TailRecords, baseline.TailRecords-1)
		}
		if res.TornBytes == 0 {
			t.Fatalf("%s: corruption not reported as torn", tc.name)
		}
	}
}

// TestCorruptMiddleRecord: corruption before the tail stops replay at
// the longest valid prefix; with a single segment that is still a
// "torn tail" from the corrupt record on.
func TestCorruptMiddleRecord(t *testing.T) {
	dir, _, seg := buildDirWithTail(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second record's payload.
	off := int64(aofHeaderSize)
	plen := int64(binary.LittleEndian.Uint32(data[off:]))
	second := off + recHeaderSize + plen
	if second >= int64(len(data)) {
		t.Skip("need at least two records")
	}
	b := append([]byte(nil), data...)
	b[second+recHeaderSize] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover failed: %v", err)
	}
	if res.TailRecords != 1 {
		t.Fatalf("TailRecords = %d, want 1 (longest valid prefix)", res.TailRecords)
	}
	if res.TornBytes != int64(len(data))-second {
		t.Fatalf("TornBytes = %d, want %d", res.TornBytes, int64(len(data))-second)
	}
}

// TestCrashBetweenRotationAndManifest simulates the checkpoint crash
// window: the new segment and checkpoint exist but the manifest still
// points at the previous generation. Recovery must replay BOTH segments.
func TestCrashBetweenRotationAndManifest(t *testing.T) {
	dir := t.TempDir()
	base := gen.ErdosRenyi(80, 160, 23)
	m, mgr := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncAlways})
	for i := int32(0); i < 8; i++ {
		m.InsertEdge(i, i+60)
	}
	m.Flush()
	if err := mgr.CheckpointNow(); err != nil { // mid-run rotation
		t.Fatal(err)
	}
	for i := int32(0); i < 8; i++ {
		m.InsertEdge(i+10, i+50)
	}
	m.Flush()
	live := m.Graph().Clone()
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	res := assertRecoverMatches(t, dir, live)
	if res.Segments != 1 {
		t.Fatalf("clean recovery crossed %d segments", res.Segments)
	}

	// Hand-built window: gen G checkpoint + full segment G + segment G+1
	// with extra ops, manifest pointing at G.
	dir2 := t.TempDir()
	g0 := gen.ErdosRenyi(50, 100, 29)
	m2, mgr2 := startManaged(t, dir2, g0.Clone(), Options{Fsync: FsyncAlways})
	m2.InsertEdge(1, 2)
	m2.Flush()
	genG := mgr2.Stats().Gen
	m2.Close()
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a synthetic next-generation segment with two more inserts.
	next := appendSegmentHeader(nil, genG+1)
	next = appendEdgeRecord(next, recInsert, []graph.Edge{{U: 3, V: 4}, {U: 5, V: 6}})
	if err := os.WriteFile(segmentPath(dir2, genG+1), next, 0o644); err != nil {
		t.Fatal(err)
	}
	want := g0.Clone()
	want.AddEdge(1, 2)
	want.AddEdge(3, 4)
	want.AddEdge(5, 6)
	res2 := assertRecoverMatches(t, dir2, want)
	if res2.Segments != 2 {
		t.Fatalf("window recovery crossed %d segments, want 2", res2.Segments)
	}
}

// TestRestartResumesGenerations: recover, restart a Manager on the same
// dir, write more, recover again — generations must keep ascending and
// state must accumulate.
func TestRestartResumesGenerations(t *testing.T) {
	dir := t.TempDir()
	base := gen.ErdosRenyi(40, 80, 3)
	m1, mgr1 := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncAlways})
	m1.InsertEdge(0, 30)
	m1.Flush()
	gen1 := mgr1.Stats().Gen
	m1.Close()
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	res1, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, mgr2 := startManaged(t, dir, res1.Graph, Options{Fsync: FsyncAlways})
	if g2 := mgr2.Stats().Gen; g2 <= gen1 {
		t.Fatalf("generation did not advance: %d -> %d", gen1, g2)
	}
	m2.InsertEdge(1, 31)
	m2.Flush()
	live := m2.Graph().Clone()
	m2.Close()
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	if !live.HasEdge(0, 30) || !live.HasEdge(1, 31) {
		t.Fatal("state lost across restart")
	}
	assertRecoverMatches(t, dir, live)
}

// TestStatsAndBGSave exercises the operator surface: Stats counters and
// BGSave-triggered checkpoints.
func TestStatsAndBGSave(t *testing.T) {
	dir := t.TempDir()
	base := gen.ErdosRenyi(30, 60, 41)
	m, mgr := startManaged(t, dir, base.Clone(), Options{Fsync: FsyncEverySec})
	before := mgr.Stats()
	if before.Checkpoints != 1 {
		t.Fatalf("initial checkpoints = %d, want 1", before.Checkpoints)
	}
	m.InsertEdge(2, 25)
	m.Flush()
	if st := mgr.Stats(); st.Records == 0 || st.AppendedBytes == 0 || st.OpsSinceCheckpoint == 0 {
		t.Fatalf("append not reflected in stats: %+v", st)
	}
	if err := mgr.BGSave(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && mgr.Stats().Checkpoints < 2; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if st := mgr.Stats(); st.Checkpoints < 2 {
		t.Fatalf("BGSave never completed: %+v", st)
	} else if st.LastSave.IsZero() {
		t.Fatal("LastSave is zero after checkpoint")
	}
	m.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFsync(t *testing.T) {
	for s, want := range map[string]Fsync{"always": FsyncAlways, "everysec": FsyncEverySec, "no": FsyncNo} {
		got, err := ParseFsync(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Fsync(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("ParseFsync accepted garbage")
	}
}
