package persist

// Replication streaming: the Manager fans the same CRC-framed records it
// appends to the AOF out to any number of follower taps, each fed at the
// append path's quiescent point — leader disk and every follower see one
// canonical op stream. A SyncSession starts with a full snapshot (the
// graph binary captured at the tap's registration instant, so the tap's
// records are exactly the ops after it) and then drains the tap; two
// stream-only record kinds ride along, never written to disk:
//
//	recEpoch  u64 — the snapshot epoch the preceding ops produced;
//	            a follower that has applied everything up to this
//	            marker serves reads at least this fresh (CORE.WAIT).
//	recPing   u64 — idle keepalive carrying the last streamed epoch,
//	            so a quiet leader still advances follower watermarks
//	            and dead connections are detected by read deadline.
//
// Slow-follower policy: each tap buffers at most SyncBufferBytes of
// not-yet-drained records; on overflow the tap is dropped (the session's
// Wait returns ErrSlowFollower) and the follower re-bootstraps with a
// fresh CORE.SYNC — the leader never blocks on a follower.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/graph"
	"repro/kcore"
)

const (
	recEpoch byte = 4 // stream-only: post-publication snapshot epoch marker
	recPing  byte = 5 // stream-only: idle keepalive, payload = last streamed epoch
)

// defaultSyncBufferBytes bounds one follower tap's backlog (8 MiB ≈ one
// million buffered edge ops) before the slow-follower policy drops it.
const defaultSyncBufferBytes = 8 << 20

var (
	// ErrSlowFollower reports that a follower tap overflowed its buffer
	// and was dropped; the follower must re-bootstrap with a new sync.
	ErrSlowFollower = errors.New("persist: follower fell behind, sync dropped")
	// ErrSyncClosed reports that the manager shut down or persistence
	// failed while a sync session was live.
	ErrSyncClosed = errors.New("persist: sync session closed")
)

// appendU64Record appends one framed single-u64 record (grow / epoch /
// ping payload shape) to dst.
func appendU64Record(dst []byte, kind byte, v uint64) []byte {
	const payloadLen = 9
	dst = ensureCap(dst, recHeaderSize+payloadLen)
	hdr := len(dst)
	dst = dst[:hdr+recHeaderSize+payloadLen]
	p := dst[hdr+recHeaderSize:]
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:], v)
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[hdr+4:], crc32.Checksum(p, crcTable))
	return dst
}

// SnapshotCRC returns the checksum a follower verifies a received sync
// snapshot against (the CRC the FULLSYNC header advertises).
func SnapshotCRC(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// --- tap --------------------------------------------------------------------

// tap is one follower's buffered view of the op stream. The append path
// (the maintainer's applier goroutine, under Manager.mu) enqueues; the
// follower's streamer goroutine drains via take-style swaps in
// SyncSession.Wait. A tap never blocks the appender: when the streamer
// cannot keep up the tap overflows and dies.
type tap struct {
	id        int64 // stable follower label for metrics
	mu        sync.Mutex
	buf       []byte
	spare     []byte        // drained buffer handed back for reuse
	notify    chan struct{} // capacity 1: "buf went non-empty / tap died"
	lastEpoch uint64        // epoch of the newest enqueued epoch marker
	max       int
	overflow  bool
	closed    bool
}

func newTap(max int, epoch uint64) *tap {
	return &tap{notify: make(chan struct{}, 1), max: max, lastEpoch: epoch}
}

// enqueue appends one framed record. alive reports whether the tap is
// still streamable afterwards; droppedNow is true exactly once, on the
// call that overflowed it.
func (t *tap) enqueue(rec []byte, epoch uint64, isEpoch bool) (alive, droppedNow bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.overflow {
		return false, false
	}
	if len(t.buf)+len(rec) > t.max {
		t.overflow = true
		t.buf = nil
		t.wakeLocked()
		return false, true
	}
	t.buf = append(t.buf, rec...)
	if isEpoch {
		t.lastEpoch = epoch
	}
	t.wakeLocked()
	return true, false
}

func (t *tap) wakeLocked() {
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// kill closes the tap (manager shutdown, persistence failure, or session
// Close); any parked Wait wakes with ErrSyncClosed.
func (t *tap) kill() {
	t.mu.Lock()
	t.closed = true
	t.buf = nil
	t.spare = nil
	t.wakeLocked()
	t.mu.Unlock()
}

// --- sync session -----------------------------------------------------------

// SyncSession is one follower's live replication feed, returned by
// Manager.StartSync: the bootstrap snapshot plus the tap carrying every
// op after it. The caller streams Snapshot first, then loops on Wait,
// and must Close the session when the connection ends.
type SyncSession struct {
	// Gen is the leader's AOF generation at the sync point.
	Gen uint64
	// Epoch is the snapshot's epoch: the follower's watermark starts
	// here, and the tap's first epoch marker is strictly above it.
	Epoch uint64
	// Snapshot is the graph binary (graph.WriteBinary) captured at the
	// sync quiescent point; Crc is SnapshotCRC over it.
	Snapshot []byte
	Crc      uint32

	t *tap
	p *Manager
}

// Wait blocks until buffered records are available and returns them (a
// concatenation of framed records, valid until the next Wait call), or
// returns nil data after timeout with the epoch it is safe to ping the
// follower at — captured while the buffer was observed empty, so every
// record up to that epoch has already been handed out. Errors are
// terminal: ErrSlowFollower (tap overflowed; re-sync) or ErrSyncClosed
// (manager gone, or cancel fired).
func (s *SyncSession) Wait(timeout time.Duration, cancel <-chan struct{}) (data []byte, epoch uint64, err error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		deadline = tm.C
	}
	t := s.t
	for {
		t.mu.Lock()
		if t.overflow {
			t.mu.Unlock()
			return nil, 0, ErrSlowFollower
		}
		if t.closed {
			t.mu.Unlock()
			return nil, 0, ErrSyncClosed
		}
		if len(t.buf) > 0 {
			data = t.buf
			t.buf = t.spare[:0]
			t.spare = data
			epoch = t.lastEpoch
			t.mu.Unlock()
			return data, epoch, nil
		}
		idleEpoch := t.lastEpoch
		t.mu.Unlock()
		select {
		case <-t.notify:
		case <-deadline:
			return nil, idleEpoch, nil
		case <-cancel:
			return nil, 0, ErrSyncClosed
		}
	}
}

// Close detaches the tap from the manager's fan-out. Idempotent.
func (s *SyncSession) Close() {
	s.t.kill()
	s.p.removeTap(s.t)
}

// StartSync registers a follower tap and captures its bootstrap snapshot
// at one quiescent point, so the tap's op stream continues exactly where
// the snapshot ends. The manager must be started and healthy.
func (p *Manager) StartSync() (*SyncSession, error) {
	if p.m == nil || !p.started.Load() {
		return nil, errors.New("persist: not started")
	}
	if p.closed.Load() {
		return nil, ErrSyncClosed
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	var (
		sess   *SyncSession
		encErr error
	)
	p.m.AtQuiescence(func(q kcore.QuiescentState) {
		w := newSliceWriter(make([]byte, 0, 1<<20))
		if err := q.Graph().WriteBinary(w); err != nil {
			encErr = err
			return
		}
		max := int(p.opts.SyncBufferBytes)
		if max <= 0 {
			max = defaultSyncBufferBytes
		}
		t := newTap(max, q.Epoch())
		t.id = p.tapSeq.Add(1)
		p.mu.Lock()
		if p.err != nil || p.closed.Load() {
			p.mu.Unlock()
			encErr = ErrSyncClosed
			return
		}
		gen := p.gen
		p.taps = append(p.taps, t)
		p.mu.Unlock()
		p.syncsStarted.Add(1)
		sess = &SyncSession{
			Gen:      gen,
			Epoch:    q.Epoch(),
			Snapshot: w.b,
			Crc:      SnapshotCRC(w.b),
			t:        t,
			p:        p,
		}
	})
	if encErr != nil {
		return nil, encErr
	}
	return sess, nil
}

// removeTap drops t from the fan-out list.
func (p *Manager) removeTap(t *tap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, x := range p.taps {
		if x == t {
			p.taps = append(p.taps[:i], p.taps[i+1:]...)
			return
		}
	}
}

// fanLocked hands the framed record(s) in rec to every live tap and
// compacts dead ones out of the list. Caller holds p.mu.
func (p *Manager) fanLocked(rec []byte, epoch uint64, isEpoch bool) {
	if len(p.taps) == 0 {
		return
	}
	live := p.taps[:0]
	for _, t := range p.taps {
		alive, droppedNow := t.enqueue(rec, epoch, isEpoch)
		if alive {
			live = append(live, t)
			continue
		}
		if droppedNow {
			p.syncDropped.Add(1)
		}
	}
	for i := len(live); i < len(p.taps); i++ {
		p.taps[i] = nil
	}
	p.taps = live
}

// killTapsLocked closes every tap (shutdown / sticky failure); followers
// notice and re-sync elsewhere. Caller holds p.mu.
func (p *Manager) killTapsLocked() {
	for i, t := range p.taps {
		t.kill()
		p.taps[i] = nil
	}
	p.taps = p.taps[:0]
}

// AppendEpoch hands a post-publication epoch marker to the follower taps
// (kcore.EpochLog). Markers never touch the disk log — recovery derives
// nothing from epochs — so this is a pure fan-out.
func (p *Manager) AppendEpoch(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.taps) == 0 || p.err != nil {
		return
	}
	p.buf = appendU64Record(p.buf[:0], recEpoch, epoch)
	p.fanLocked(p.buf, epoch, true)
}

// AppendPing frames one keepalive record carrying epoch into dst — the
// streamer emits it on an idle Wait so follower watermarks advance and
// dead links trip read deadlines.
func AppendPing(dst []byte, epoch uint64) []byte {
	return appendU64Record(dst, recPing, epoch)
}

// --- follower-side decoding -------------------------------------------------

// StreamOp is the kind of one decoded replication record.
type StreamOp byte

const (
	OpInsert StreamOp = iota
	OpRemove
	OpGrow
	OpEpoch
	OpPing
)

// StreamRecord is one decoded replication record. Edges aliases an
// internal buffer valid until the next Next call.
type StreamRecord struct {
	Op    StreamOp
	Edges []graph.Edge // OpInsert / OpRemove
	N     int          // OpGrow: absolute target vertex count
	Epoch uint64       // OpEpoch / OpPing
}

// StreamReader decodes the framed record stream a follower reads off its
// sync connection. Unlike crash recovery, which forgives a torn tail,
// any framing or CRC violation here is an error — the transport is a
// live TCP stream, so corruption means the connection is garbage and
// the follower must re-sync.
type StreamReader struct {
	r       io.Reader
	payload []byte
	edges   []graph.Edge
}

// NewStreamReader wraps r (typically a bufio.Reader over the sync
// connection).
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// Next reads, verifies, and decodes one record. Transport errors (EOF,
// read deadlines) propagate unwrapped.
func (sr *StreamReader) Next() (StreamRecord, error) {
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return StreamRecord{}, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[0:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if payloadLen == 0 || payloadLen > maxRecordPayload {
		return StreamRecord{}, fmt.Errorf("persist: stream record length %d out of range", payloadLen)
	}
	if cap(sr.payload) < int(payloadLen) {
		sr.payload = make([]byte, payloadLen)
	}
	p := sr.payload[:payloadLen]
	if _, err := io.ReadFull(sr.r, p); err != nil {
		return StreamRecord{}, err
	}
	if crc32.Checksum(p, crcTable) != wantCRC {
		return StreamRecord{}, errors.New("persist: stream record CRC mismatch")
	}
	return sr.decode(p)
}

func (sr *StreamReader) decode(p []byte) (StreamRecord, error) {
	switch kind := p[0]; kind {
	case recInsert, recRemove:
		if len(p) < 5 {
			return StreamRecord{}, fmt.Errorf("persist: edge record too short (%d bytes)", len(p))
		}
		count := binary.LittleEndian.Uint32(p[1:])
		if uint64(len(p)) != 5+8*uint64(count) {
			return StreamRecord{}, fmt.Errorf("persist: edge record length %d != header count %d", len(p), count)
		}
		sr.edges = sr.edges[:0]
		o := 5
		for i := uint32(0); i < count; i++ {
			u := int32(binary.LittleEndian.Uint32(p[o:]))
			v := int32(binary.LittleEndian.Uint32(p[o+4:]))
			o += 8
			if u < 0 || v < 0 {
				return StreamRecord{}, fmt.Errorf("persist: negative vertex id (%d,%d)", u, v)
			}
			sr.edges = append(sr.edges, graph.Edge{U: u, V: v})
		}
		op := OpInsert
		if kind == recRemove {
			op = OpRemove
		}
		return StreamRecord{Op: op, Edges: sr.edges}, nil
	case recGrow, recEpoch, recPing:
		if len(p) != 9 {
			return StreamRecord{}, fmt.Errorf("persist: u64 record length %d", len(p))
		}
		v := binary.LittleEndian.Uint64(p[1:])
		switch kind {
		case recGrow:
			if v > uint64(1)<<31 {
				return StreamRecord{}, fmt.Errorf("persist: grow to implausible n=%d", v)
			}
			return StreamRecord{Op: OpGrow, N: int(v)}, nil
		case recEpoch:
			return StreamRecord{Op: OpEpoch, Epoch: v}, nil
		default:
			return StreamRecord{Op: OpPing, Epoch: v}, nil
		}
	default:
		return StreamRecord{}, fmt.Errorf("persist: unknown stream record kind %d", p[0])
	}
}
