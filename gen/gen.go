// Package gen generates the synthetic graph suite used by the evaluation
// (paper §6.2). The paper's ER, BA and R-MAT graphs are generated with the
// same models here; the real-world and temporal graphs of Table 2 are
// unavailable offline and are replaced by seeded stand-ins with matching
// degree characteristics (see DESIGN.md, substitution 1).
package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/graph"
)

// ErdosRenyi samples a G(n, m) graph: m distinct uniformly random edges.
func ErdosRenyi(n int, m int64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	seen := make(map[graph.Edge]bool, m)
	for int64(len(edges)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Norm()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbert grows an n-vertex preferential-attachment graph where every
// arriving vertex attaches k edges to existing vertices with probability
// proportional to degree. The result concentrates core numbers at a single
// value — the adversarial case for level-parallel baselines that the paper
// highlights (BA has a single core number of 8 in Table 2).
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if n <= k {
		panic("gen: BarabasiAlbert needs n > k")
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, int64(n-k)*int64(k))
	// Repeated-endpoints trick: targets proportional to degree by sampling
	// uniformly from the endpoint multiset.
	endpoints := make([]int32, 0, 2*len(edges))
	// Seed clique over the first k+1 vertices.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := map[int32]bool{}
		for len(chosen) < k {
			t := endpoints[rng.Intn(len(endpoints))]
			if t == int32(v) || chosen[t] {
				continue
			}
			chosen[t] = true
		}
		for t := range chosen {
			edges = append(edges, graph.Edge{U: int32(v), V: t})
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RMAT samples a recursive-matrix graph with the canonical partition
// probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), producing the
// heavy-tailed degree distribution of the paper's RMAT graph. scale is
// log2 of the vertex count.
func RMAT(scale int, m int64, seed int64) *graph.Graph {
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	seen := make(map[graph.Edge]bool, m)
	for int64(len(edges)) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left quadrant
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		e := graph.Edge{U: int32(u), V: int32(v)}.Norm()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return graph.MustFromEdges(n, edges)
}

// WattsStrogatz builds a small-world ring lattice over n vertices with k
// neighbors per side and rewiring probability p. Used as the stand-in for
// near-uniform-degree road networks (roadNet-CA has four core values).
func WattsStrogatz(n, k int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k)
	seen := make(map[graph.Edge]bool, n*k)
	add := func(u, v int32) bool {
		if u == v {
			return false
		}
		e := graph.Edge{U: u, V: v}.Norm()
		if seen[e] {
			return false
		}
		seen[e] = true
		edges = append(edges, e)
		return true
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < p {
				// Rewire to a uniform random target; fall back to the
				// lattice edge if we cannot find a fresh one quickly.
				placed := false
				for try := 0; try < 8; try++ {
					if add(int32(u), int32(rng.Intn(n))) {
						placed = true
						break
					}
				}
				if placed {
					continue
				}
			}
			add(int32(u), int32(v))
		}
	}
	return graph.MustFromEdges(n, edges)
}

// PowerLawCluster builds a heavy-tailed graph with tunable exponent via a
// configuration-model draw followed by simplification; the stand-in for the
// social-network graphs (livej, pokec, flickr, ...) whose core numbers
// spread over hundreds of values.
func PowerLawCluster(n int, avgDeg float64, exponent float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	// Sample degrees from a truncated discrete power law, then rescale to
	// hit the requested average degree.
	deg := make([]float64, n)
	var sum float64
	maxDeg := float64(n - 1)
	for i := range deg {
		// Inverse-CDF sampling of p(k) ~ k^-exponent on [1, maxDeg].
		u := rng.Float64()
		k := 1.0 / math.Pow(1-u*(1-math.Pow(maxDeg, 1-exponent)), 1/(exponent-1))
		if k > maxDeg {
			k = maxDeg
		}
		deg[i] = k
		sum += k
	}
	scale := avgDeg * float64(n) / sum
	stubs := make([]int32, 0, int(avgDeg*float64(n))+n)
	for i := range deg {
		c := int(deg[i]*scale + 0.5)
		if c < 1 {
			c = 1
		}
		for j := 0; j < c; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	edges := make([]graph.Edge, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		edges = append(edges, graph.Edge{U: stubs[i], V: stubs[i+1]})
	}
	return graph.MustFromEdges(n, edges) // FromEdges strips loops and multi-edges
}

// TemporalEdge is an edge with an integer timestamp, modeling the KONECT
// temporal graphs (DBLP, Flickr, StackOverflow, wiki-edits-sh).
type TemporalEdge struct {
	E graph.Edge
	T int64
}

// TemporalStream synthesizes a timestamped edge stream over a base graph
// model: edges of g are assigned increasing timestamps with bursts, so a
// "batch of edges within a continuous time range" (paper §6.2) is a
// contiguous slice.
func TemporalStream(g *graph.Graph, seed int64) []TemporalEdge {
	rng := rand.New(rand.NewSource(seed))
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	out := make([]TemporalEdge, len(edges))
	t := int64(0)
	for i, e := range edges {
		// Bursty arrivals: occasionally jump the clock.
		if rng.Intn(100) == 0 {
			t += int64(rng.Intn(1000))
		}
		t += int64(rng.Intn(3))
		out[i] = TemporalEdge{E: e, T: t}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// VertexArrivals synthesizes a vertex-arrival stream over an n-vertex
// universe: count fresh vertices with ids n, n+1, ... arrive in order,
// each attaching up to `attach` edges to distinct uniformly random
// earlier vertices (original or previously arrived). Batch i introduces
// vertex n+i, so feeding the batches to a Maintainer in order exercises
// grow-on-insert — every batch's first endpoint is one past the universe
// the previous batches built.
func VertexArrivals(n, count, attach int, seed int64) [][]graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]graph.Edge, count)
	for i := 0; i < count; i++ {
		v := int32(n + i)
		attach := attach
		if attach > int(v) {
			attach = int(v) // the first arrivals may have few predecessors
		}
		chosen := map[int32]bool{}
		batch := make([]graph.Edge, 0, attach)
		for len(batch) < attach {
			t := rng.Int31n(v)
			if chosen[t] {
				continue
			}
			chosen[t] = true
			batch = append(batch, graph.Edge{U: v, V: t})
		}
		batches[i] = batch
	}
	return batches
}

// SampleEdges picks k distinct existing edges of g uniformly at random —
// the removal workload ("we randomly select 100,000 edges").
func SampleEdges(g *graph.Graph, k int, seed int64) []graph.Edge {
	edges := g.Edges()
	if k > len(edges) {
		k = len(edges)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges[:k]
}

// SampleNonEdges picks k distinct vertex pairs absent from g uniformly at
// random — the insertion workload.
func SampleNonEdges(g *graph.Graph, k int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	out := make([]graph.Edge, 0, k)
	seen := make(map[graph.Edge]bool, k)
	for len(out) < k {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Norm()
		if seen[e] || g.HasEdge(u, v) {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// CrossRangeEdges samples m distinct edges over a universe of capacity
// ids split into `shards` equal contiguous ranges — the workload shape
// of an id-range sharded cluster. An expected crossFrac fraction of the
// edges span two different ranges (cluster boundary edges, mirrored on
// both owners); the rest stay inside one range. crossFrac 0 yields a
// perfectly partitionable stream, 1 an all-boundary one.
func CrossRangeEdges(capacity int32, shards int, m int, crossFrac float64, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	w, extra := capacity/int32(shards), capacity%int32(shards)
	lo := func(i int32) int32 {
		base := i * w
		return base + min(i, extra)
	}
	pick := func(i int32) int32 {
		width := w
		if i < extra {
			width++
		}
		return lo(i) + rng.Int31n(width)
	}
	edges := make([]graph.Edge, 0, m)
	seen := make(map[graph.Edge]bool, m)
	for len(edges) < m {
		a := rng.Int31n(int32(shards))
		u := pick(a)
		b := a
		if shards > 1 && rng.Float64() < crossFrac {
			b = rng.Int31n(int32(shards) - 1)
			if b >= a {
				b++
			}
		}
		v := pick(b)
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Norm()
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}
	return edges
}
