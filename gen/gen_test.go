package gen

import (
	"testing"
	"testing/quick"

	"repro/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(1000, 4000, 1)
	if g.N() != 1000 || g.M() != 4000 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(200, 800, 42)
	b := ErdosRenyi(200, 800, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("different sizes for same seed")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("different edges for same seed")
		}
	}
	c := ErdosRenyi(200, 800, 43)
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(500, 4, 7)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Seed clique K5 has 10 edges, then 4 per arriving vertex.
	want := int64(10 + (500-5)*4)
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment must produce a hub noticeably above k.
	if g.MaxDegree() < 12 {
		t.Fatalf("MaxDegree = %d: no hubs, preferential attachment broken", g.MaxDegree())
	}
}

func TestBarabasiAlbertRejectsBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BarabasiAlbert(3, 4, 1)
}

func TestRMATShapeAndSkew(t *testing.T) {
	g := RMAT(10, 4000, 3)
	if g.N() != 1024 || g.M() != 4000 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("RMAT should be skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(400, 3, 0.1, 5)
	if g.N() != 400 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Ring lattice with k=3 gives ~3n edges (minus rewire collisions).
	if g.M() < 1000 || g.M() > 1200 {
		t.Fatalf("M = %d out of expected band", g.M())
	}
}

func TestPowerLawCluster(t *testing.T) {
	g := PowerLawCluster(2000, 8, 2.5, 11)
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() < 4 || g.AvgDegree() > 12 {
		t.Fatalf("AvgDegree = %.2f, want near 8", g.AvgDegree())
	}
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("power law should have hubs: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestTemporalStreamSortedAndComplete(t *testing.T) {
	g := ErdosRenyi(300, 900, 2)
	st := TemporalStream(g, 9)
	if len(st) != int(g.M()) {
		t.Fatalf("stream has %d edges, graph has %d", len(st), g.M())
	}
	seen := map[graph.Edge]bool{}
	for i, te := range st {
		if i > 0 && te.T < st[i-1].T {
			t.Fatal("timestamps not sorted")
		}
		if seen[te.E.Norm()] {
			t.Fatal("duplicate edge in stream")
		}
		seen[te.E.Norm()] = true
	}
}

func TestVertexArrivalsShape(t *testing.T) {
	const n, count, attach = 100, 40, 3
	batches := VertexArrivals(n, count, attach, 6)
	if len(batches) != count {
		t.Fatalf("%d batches, want %d", len(batches), count)
	}
	for i, batch := range batches {
		v := int32(n + i)
		if len(batch) != attach {
			t.Fatalf("batch %d has %d edges, want %d", i, len(batch), attach)
		}
		seen := map[int32]bool{}
		for _, e := range batch {
			if e.U != v {
				t.Fatalf("batch %d edge %v: first endpoint must be arriving vertex %d", i, e, v)
			}
			if e.V < 0 || e.V >= v {
				t.Fatalf("batch %d attaches to %d, want an earlier vertex", i, e.V)
			}
			if seen[e.V] {
				t.Fatalf("batch %d attaches to %d twice", i, e.V)
			}
			seen[e.V] = true
		}
	}
	// The whole stream over an empty base must still be a consistent graph.
	var all []graph.Edge
	for _, b := range batches {
		all = append(all, b...)
	}
	g := graph.MustFromEdges(n, all)
	if g.N() != n+count {
		t.Fatalf("N = %d, want %d", g.N(), n+count)
	}
	if err := g.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleEdgesAreDistinctAndPresent(t *testing.T) {
	g := ErdosRenyi(500, 2000, 4)
	s := SampleEdges(g, 300, 8)
	if len(s) != 300 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[graph.Edge]bool{}
	for _, e := range s {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("sampled edge %v not in graph", e)
		}
		if seen[e.Norm()] {
			t.Fatalf("duplicate sample %v", e)
		}
		seen[e.Norm()] = true
	}
}

func TestSampleEdgesClampsToM(t *testing.T) {
	g := ErdosRenyi(50, 100, 4)
	if got := len(SampleEdges(g, 1000, 1)); got != 100 {
		t.Fatalf("len = %d, want 100", got)
	}
}

func TestSampleNonEdgesAbsentAndDistinct(t *testing.T) {
	g := ErdosRenyi(500, 2000, 4)
	s := SampleNonEdges(g, 300, 8)
	if len(s) != 300 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[graph.Edge]bool{}
	for _, e := range s {
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("sampled non-edge %v is in graph", e)
		}
		if e.U == e.V || seen[e.Norm()] {
			t.Fatalf("bad sample %v", e)
		}
		seen[e.Norm()] = true
	}
}

// Property: every generator yields a consistent simple graph for arbitrary
// small seeds.
func TestQuickGeneratorsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		if ErdosRenyi(100, 300, seed).CheckConsistent() != nil {
			return false
		}
		if BarabasiAlbert(100, 3, seed).CheckConsistent() != nil {
			return false
		}
		if RMAT(7, 300, seed).CheckConsistent() != nil {
			return false
		}
		if WattsStrogatz(100, 2, 0.2, seed).CheckConsistent() != nil {
			return false
		}
		return PowerLawCluster(100, 6, 2.3, seed).CheckConsistent() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossRangeEdges(t *testing.T) {
	const capacity, shards, m = 1200, 3, 4000
	owner := func(g int32) int32 { return g / (capacity / shards) }
	for _, frac := range []float64{0, 0.3, 1} {
		edges := CrossRangeEdges(capacity, shards, m, frac, 42)
		if len(edges) != m {
			t.Fatalf("frac %v: %d edges, want %d", frac, len(edges), m)
		}
		seen := map[graph.Edge]bool{}
		cross := 0
		for _, e := range edges {
			if e.U == e.V || e.U < 0 || e.V >= capacity {
				t.Fatalf("bad edge %v", e)
			}
			if seen[e.Norm()] {
				t.Fatalf("duplicate edge %v", e)
			}
			seen[e.Norm()] = true
			if owner(e.U) != owner(e.V) {
				cross++
			}
		}
		got := float64(cross) / m
		if got < frac-0.05 || got > frac+0.05 {
			t.Fatalf("frac %v: observed cross fraction %v", frac, got)
		}
	}
}
