// Package repro's root benchmark suite regenerates the paper's evaluation
// as testing.B benchmarks — one benchmark family per table/figure. These run
// at CI scale; `go run ./cmd/experiments -exp all -scale medium` (or full)
// produces the complete tables with confidence intervals.
//
// Mapping (see DESIGN.md for the per-experiment index):
//
//	BenchmarkTable2Decompose    — static decomposition of the graph suite
//	BenchmarkFig1BatchSizes     — the V+/V* size distribution workload
//	BenchmarkFig4Insert/Remove  — running time vs workers, OurX vs JEX
//	BenchmarkTable3SpeedupData  — the 1-vs-max-worker pairs Table 3 derives
//	BenchmarkFig5Scalability    — runtime vs batch size
//	BenchmarkFig6Stability      — successive disjoint batches
//	BenchmarkAblation*          — design-choice ablations (DESIGN.md)
package repro

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/gen"
	"repro/internal/bz"
	"repro/internal/expr"
	"repro/internal/om"
	"repro/internal/traversal"
	"repro/kcore"
)

// benchGraphs is the representative subset used by the root benchmarks:
// one heavy-tailed stand-in, one near-uniform, and the two synthetic
// extremes (few core values vs a single core value).
var benchGraphs = []string{"livej", "roadNet-CA", "ER", "BA"}

const benchSeed = 42

func suiteWorkload(b *testing.B, name string, batch int) expr.Workload {
	b.Helper()
	sgs, err := expr.SuiteByName(expr.ScaleCI, benchSeed, name)
	if err != nil {
		b.Fatal(err)
	}
	return expr.BuildWorkload(sgs[0], batch, benchSeed)
}

// BenchmarkTable2Decompose measures the static BZ decomposition of every
// suite graph — the initialization cost every maintainer pays once.
func BenchmarkTable2Decompose(b *testing.B) {
	for _, sg := range expr.Suite(expr.ScaleCI, benchSeed) {
		g := sg.Build()
		b.Run(sg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bz.Decompose(g)
			}
		})
	}
}

// BenchmarkFig1BatchSizes runs the Fig. 1 workload (batch insert + remove
// with Parallel-Order) and reports the share of operations whose V+ stayed
// at most 10 — the paper's locality claim — as a custom metric.
func BenchmarkFig1BatchSizes(b *testing.B) {
	for _, name := range benchGraphs {
		w := suiteWorkload(b, name, 500)
		b.Run(name, func(b *testing.B) {
			small, total := 0, 0
			for i := 0; i < b.N; i++ {
				m := kcore.New(w.WithoutBatch(), kcore.WithWorkers(8))
				res := m.InsertEdges(w.Batch)
				for _, s := range res.VPlusSizes {
					if s <= 10 {
						small++
					}
					total++
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(small)/float64(total), "%ops<=10")
			}
		})
	}
}

func runBatchBench(b *testing.B, w expr.Workload, alg kcore.Algorithm, workers int, insert bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var m *kcore.Maintainer
		if insert {
			m = kcore.New(w.WithoutBatch(), kcore.WithAlgorithm(alg), kcore.WithWorkers(workers))
		} else {
			m = kcore.New(w.Base.Clone(), kcore.WithAlgorithm(alg), kcore.WithWorkers(workers))
		}
		b.StartTimer()
		if insert {
			m.InsertEdges(w.Batch)
		} else {
			m.RemoveEdges(w.Batch)
		}
	}
}

// BenchmarkFig4Insert reproduces the insertion curves of Fig. 4: OurI
// (Parallel-Order) vs JEI (join-edge-set) across worker counts.
func BenchmarkFig4Insert(b *testing.B) {
	for _, name := range benchGraphs {
		w := suiteWorkload(b, name, 500)
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/OurI/w%d", name, workers), func(b *testing.B) {
				runBatchBench(b, w, kcore.ParallelOrder, workers, true)
			})
			b.Run(fmt.Sprintf("%s/JEI/w%d", name, workers), func(b *testing.B) {
				runBatchBench(b, w, kcore.JoinEdgeSet, workers, true)
			})
		}
	}
}

// BenchmarkFig4Remove reproduces the removal curves of Fig. 4: OurR vs JER.
func BenchmarkFig4Remove(b *testing.B) {
	for _, name := range benchGraphs {
		w := suiteWorkload(b, name, 500)
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/OurR/w%d", name, workers), func(b *testing.B) {
				runBatchBench(b, w, kcore.ParallelOrder, workers, false)
			})
			b.Run(fmt.Sprintf("%s/JER/w%d", name, workers), func(b *testing.B) {
				runBatchBench(b, w, kcore.JoinEdgeSet, workers, false)
			})
		}
	}
}

// BenchmarkTable3SpeedupData measures exactly the endpoint pairs Table 3 is
// computed from: every algorithm at 1 worker and at the maximum count.
func BenchmarkTable3SpeedupData(b *testing.B) {
	w := suiteWorkload(b, "BA", 500) // the level-parallel baseline's worst case
	for _, alg := range []struct {
		name string
		a    kcore.Algorithm
	}{{"Our", kcore.ParallelOrder}, {"JE", kcore.JoinEdgeSet}} {
		for _, workers := range []int{1, 16} {
			b.Run(fmt.Sprintf("%sI/w%d", alg.name, workers), func(b *testing.B) {
				runBatchBench(b, w, alg.a, workers, true)
			})
			b.Run(fmt.Sprintf("%sR/w%d", alg.name, workers), func(b *testing.B) {
				runBatchBench(b, w, alg.a, workers, false)
			})
		}
	}
}

// BenchmarkFig5Scalability grows the batch from 1x to 4x at a fixed worker
// count — the runtime should scale near-linearly for Parallel-Order.
func BenchmarkFig5Scalability(b *testing.B) {
	for _, name := range []string{"livej", "roadNet-CA"} {
		for _, mult := range []int{1, 2, 4} {
			w := suiteWorkload(b, name, 250*mult)
			b.Run(fmt.Sprintf("%s/batch%dx", name, mult), func(b *testing.B) {
				runBatchBench(b, w, kcore.ParallelOrder, 16, true)
			})
		}
	}
}

// BenchmarkFig6Stability applies disjoint groups one after another on a
// single maintainer — per-group cost should stay flat for Parallel-Order.
func BenchmarkFig6Stability(b *testing.B) {
	const groups, groupSize = 5, 200
	w := suiteWorkload(b, "livej", groups*groupSize)
	b.Run("livej/OurI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := kcore.New(w.WithoutBatch(), kcore.WithWorkers(16))
			b.StartTimer()
			for g := 0; g < groups; g++ {
				m.InsertEdges(w.Batch[g*groupSize : (g+1)*groupSize])
			}
		}
	})
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationOrderVsTraversal contrasts the two sequential engines —
// the reason the paper parallelizes Order rather than Traversal. Expect
// Order to win insertion by a wide margin (the paper reports up to 2083x
// for the original implementations).
func BenchmarkAblationOrderVsTraversal(b *testing.B) {
	w := suiteWorkload(b, "ER", 500)
	b.Run("OrderInsert", func(b *testing.B) {
		runBatchBench(b, w, kcore.SequentialOrder, 1, true)
	})
	b.Run("TraversalInsert", func(b *testing.B) {
		runBatchBench(b, w, kcore.Traversal, 1, true)
	})
	b.Run("OrderRemove", func(b *testing.B) {
		runBatchBench(b, w, kcore.SequentialOrder, 1, false)
	})
	b.Run("TraversalRemove", func(b *testing.B) {
		runBatchBench(b, w, kcore.Traversal, 1, false)
	})
}

// BenchmarkAblationLockFreeOrder compares the lock-free OM Order operation
// against a mutex-guarded equivalent under concurrent readers — the paper's
// reason for adopting the lock-free comparison (§3.4).
func BenchmarkAblationLockFreeOrder(b *testing.B) {
	l := om.NewList(0)
	items := make([]*om.Item, 4096)
	for i := range items {
		items[i] = &om.Item{ID: int32(i)}
		l.InsertAtTail(items[i])
	}
	b.Run("LockFree", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				l.Order(items[i%4096], items[(i*7+13)%4096])
				i++
			}
		})
	})
	var mu sync.Mutex
	b.Run("Mutexed", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				mu.Lock()
				l.Order(items[i%4096], items[(i*7+13)%4096])
				mu.Unlock()
				i++
			}
		})
	})
}

// BenchmarkAblationTieStrategy compares the three BZ tie-breaking strategies
// (§3.3.1); the paper selects "small degree first".
func BenchmarkAblationTieStrategy(b *testing.B) {
	g := gen.ErdosRenyi(5000, 20000, 1)
	for _, s := range []struct {
		name  string
		strat bz.TieStrategy
	}{
		{"SmallDegreeFirst", bz.SmallDegreeFirst},
		{"LargeDegreeFirst", bz.LargeDegreeFirst},
		{"RandomTie", bz.RandomTie},
	} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bz.DecomposeWithStrategy(g, s.strat, 1)
			}
		})
	}
}

// BenchmarkAblationEagerVsLazyMCD contrasts the Traversal engine's eager
// mcd maintenance with the Order engines' lazy recomputation by measuring
// removal cost, where mcd is the driving structure.
func BenchmarkAblationEagerVsLazyMCD(b *testing.B) {
	base := gen.PowerLawCluster(5000, 10, 2.4, 3)
	batch := gen.SampleEdges(base, 500, 4)
	b.Run("LazyOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m := kcore.New(base.Clone(), kcore.WithAlgorithm(kcore.SequentialOrder))
			b.StartTimer()
			m.RemoveEdges(batch)
		}
	})
	b.Run("EagerTraversal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := traversal.NewState(base.Clone())
			b.StartTimer()
			for _, e := range batch {
				st.RemoveEdge(e.U, e.V)
			}
		}
	})
}

// ------------------------------------------------------------- serving layer

// BenchmarkServeMixed measures the serving read path while update batches
// are continuously in flight: one background writer cycles insert/remove
// batches through the update pipeline, and parallel readers issue CoreOf
// queries against the published snapshots. Before the serving refactor a
// read had to wait for the writer's mutex, serializing queries behind
// multi-millisecond batches; now every read completes while the batch is
// in flight, so per-op time stays in nanoseconds.
func BenchmarkServeMixed(b *testing.B) {
	base := gen.ErdosRenyi(20_000, 80_000, benchSeed)
	pool := gen.SampleNonEdges(base, 2_000, benchSeed+1)
	n := int32(base.N())
	m := kcore.New(base, kcore.WithWorkers(4))
	defer m.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var batches int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.InsertEdges(pool)
			m.RemoveEdges(pool)
			batches += 2
		}
	}()

	b.Run("CoreOf", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			v := uint32(1)
			for pb.Next() {
				v = v*1664525 + 1013904223 // per-goroutine LCG
				m.CoreOf(int32(v % uint32(n)))
			}
		})
	})
	b.Run("Snapshot+CoreOf", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			v := uint32(1)
			for pb.Next() {
				s := m.Snapshot()
				v = v*1664525 + 1013904223
				s.CoreOf(int32(v % uint32(n)))
			}
		})
	})
	b.Run("MaxCore", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.MaxCore()
			}
		})
	})
	close(stop)
	wg.Wait()
	if batches == 0 {
		b.Fatal("writer applied no batches while readers ran")
	}
	b.ReportMetric(float64(batches), "writer-batches")
}

// BenchmarkServeSingleEdgeWriters measures pipeline coalescing: parallel
// writers each push single-edge insert/remove pairs, the applier folds
// whatever is pending into shared engine rounds. The coalesced ops/batch
// ratio is reported as a custom metric.
func BenchmarkServeSingleEdgeWriters(b *testing.B) {
	base := gen.ErdosRenyi(20_000, 80_000, benchSeed)
	pool := gen.SampleNonEdges(base, 4_096, benchSeed+2)
	m := kcore.New(base, kcore.WithWorkers(4))
	defer m.Close()
	before := m.ServingStats()
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			e := pool[int(atomic.AddInt64(&next, 1))%len(pool)]
			m.InsertEdge(e.U, e.V)
			m.RemoveEdge(e.U, e.V)
		}
	})
	b.StopTimer()
	st := m.ServingStats()
	if db := st.Batches - before.Batches; db > 0 {
		b.ReportMetric(float64(st.BatchedOps-before.BatchedOps)/float64(db), "ops/batch")
	}
}

// BenchmarkVertexChurn measures the streaming-graph growth path: a stream
// of vertex-arrival batches (each naming a fresh vertex id, auto-growing
// the universe through the pipeline) interleaved with removals of earlier
// arrival edges. Publication must stay on the grow/delta paths — the run
// fails if any post-initial publish fell back to the O(n) rebuild.
func BenchmarkVertexChurn(b *testing.B) {
	const baseN, arrivals, attach = 20_000, 200, 4
	stream := gen.VertexArrivals(baseN, arrivals, attach, benchSeed+3)
	for _, alg := range []kcore.Algorithm{kcore.ParallelOrder, kcore.JoinEdgeSet} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := kcore.New(gen.ErdosRenyi(baseN, 80_000, benchSeed), kcore.WithAlgorithm(alg), kcore.WithWorkers(4))
				b.StartTimer()
				for j, batch := range stream {
					m.InsertEdges(batch)
					if j%4 == 3 {
						m.RemoveEdges(stream[j-2])
					}
				}
				b.StopTimer()
				st := m.ServingStats()
				if st.FullPublishes != 1 {
					b.Fatalf("churn fell back to %d O(n) rebuilds", st.FullPublishes-1)
				}
				if st.GrowPublishes == 0 || st.DeltaPublishes == 0 {
					b.Fatalf("churn missed the grow/delta paths: %+v", st)
				}
				m.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(arrivals), "arrivals/op")
		})
	}
}

// BenchmarkWorkerScaling measures the Parallel-Order batch across worker
// counts on a graph where all vertices share one core value — the case
// where only Parallel-Order can use more than one worker at all.
func BenchmarkWorkerScaling(b *testing.B) {
	base := gen.BarabasiAlbert(20000, 4, 5)
	batch := gen.SampleEdges(base, 2000, 6)
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			w := expr.Workload{Base: base, Batch: batch}
			runBatchBench(b, w, kcore.ParallelOrder, workers, false)
		})
	}
}
