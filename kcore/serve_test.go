package kcore

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/gen"
	"repro/graph"
)

// TestCoalesceLastOpWins exercises the pure coalescer: per canonical edge
// the last enqueued op must win, opposite-kind supersessions must count as
// canceled, and single-op segments must pass through verbatim.
func TestCoalesceLastOpWins(t *testing.T) {
	mk := func(kind opKind, edges ...graph.Edge) *updateOp {
		return &updateOp{kind: kind, edges: edges}
	}
	e := func(u, v int32) graph.Edge { return graph.Edge{U: u, V: v} }

	// Single op: verbatim, including non-canonical edge order.
	rem, ins, canceled := coalesce([]*updateOp{mk(opInsert, e(3, 1), e(1, 2))})
	if len(rem) != 0 || len(ins) != 2 || canceled != 0 || ins[0] != e(3, 1) {
		t.Fatalf("single op: rem=%v ins=%v canceled=%d", rem, ins, canceled)
	}

	// insert(1,2) then remove(2,1): the pair annihilates into a removal
	// of the canonical edge; the insert counts as canceled.
	rem, ins, canceled = coalesce([]*updateOp{
		mk(opInsert, e(1, 2)),
		mk(opRemove, e(2, 1)),
	})
	if len(ins) != 0 || len(rem) != 1 || rem[0] != e(1, 2) || canceled != 1 {
		t.Fatalf("cancel pair: rem=%v ins=%v canceled=%d", rem, ins, canceled)
	}

	// remove then insert: insert wins; same-kind duplicates dedup without
	// counting as canceled.
	rem, ins, canceled = coalesce([]*updateOp{
		mk(opRemove, e(5, 6)),
		mk(opInsert, e(6, 5), e(7, 8)),
		mk(opInsert, e(8, 7)),
	})
	if len(rem) != 0 || len(ins) != 2 || canceled != 1 {
		t.Fatalf("remove-then-insert: rem=%v ins=%v canceled=%d", rem, ins, canceled)
	}
	if ins[0] != e(5, 6) || ins[1] != e(7, 8) {
		t.Fatalf("first-seen order lost: %v", ins)
	}
}

// TestPipelineCoalescesCancelingPair drives a canceling insert/remove pair
// through the live pipeline deterministically: a blocking barrier parks the
// applier, both ops are enqueued behind it, and releasing the barrier must
// drain them as one coalesced batch that leaves the graph unchanged.
func TestPipelineCoalescesCancelingPair(t *testing.T) {
	base := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	m := New(base)
	defer m.Close()
	before := m.ServingStats()

	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.barrier(func() { close(entered); <-gate })
	}()
	// Once the applier is inside the barrier, its current drain is fixed:
	// everything enqueued now lands in the next drain, together.
	<-entered

	var results [2]BatchResult
	wg.Add(2)
	go func() { defer wg.Done(); results[0] = m.InsertEdge(0, 3) }()
	// Wait until the insert sits in the queue so the remove lands after it.
	for m.ServingStats().Enqueued < before.Enqueued+2 {
		time.Sleep(100 * time.Microsecond)
	}
	go func() { defer wg.Done(); results[1] = m.RemoveEdge(3, 0) }()
	for m.ServingStats().Enqueued < before.Enqueued+3 {
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	after := m.ServingStats()
	if got := after.Batches - before.Batches; got != 1 {
		t.Fatalf("expected 1 coalesced batch, got %d", got)
	}
	if got := after.CanceledOps - before.CanceledOps; got != 1 {
		t.Fatalf("expected 1 canceled op, got %d", got)
	}
	for i, r := range results {
		if r.Coalesced != 2 {
			t.Fatalf("op %d: Coalesced = %d, want 2", i, r.Coalesced)
		}
	}
	// The pair annihilated: edge (0,3) was never present and must not be.
	if m.Graph().HasEdge(0, 3) {
		t.Fatal("canceled pair left the edge in the graph")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestReadYourWrites: an update call's effects must be visible to queries
// the moment the call returns, for every engine.
func TestReadYourWrites(t *testing.T) {
	for _, alg := range allAlgorithms {
		m := New(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}), WithAlgorithm(alg))
		if m.CoreOf(0) != 1 {
			t.Fatalf("%v: initial core = %d", alg, m.CoreOf(0))
		}
		e0 := m.Epoch()
		m.InsertEdge(0, 2) // closes the triangle
		if got := m.CoreOf(0); got != 2 {
			t.Fatalf("%v: core after insert = %d, want 2 (stale snapshot?)", alg, got)
		}
		if m.Epoch() <= e0 {
			t.Fatalf("%v: epoch did not advance across a batch", alg)
		}
		if got := m.Flush(); got < m.Epoch()-1 {
			t.Fatalf("%v: Flush returned stale epoch %d", alg, got)
		}
		s := m.Snapshot()
		if s.MaxCore() != 2 || s.CoreOf(1) != 2 || s.M() != 3 || s.N() != 3 {
			t.Fatalf("%v: snapshot %+v inconsistent", alg, s)
		}
		m.Close()
	}
}

// TestEpochMonotonic: under concurrent writers the published epoch must
// never decrease, and must advance while batches are applied.
func TestEpochMonotonic(t *testing.T) {
	base := gen.ErdosRenyi(200, 600, 21)
	m := New(base.Clone(), WithWorkers(2))
	defer m.Close()
	pool := gen.SampleNonEdges(base, 120, 22)

	start := m.Epoch()
	var stop atomic.Bool
	var regressed atomic.Bool
	var writers, sampler sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			chunk := pool[w*30 : (w+1)*30]
			for i := 0; i < 20; i++ {
				m.InsertEdges(chunk)
				m.RemoveEdges(chunk)
			}
		}(w)
	}
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		last := m.Epoch()
		for !stop.Load() {
			e := m.Epoch()
			if e < last {
				regressed.Store(true)
				return
			}
			last = e
		}
	}()
	writers.Wait()
	stop.Store(true)
	sampler.Wait()
	if regressed.Load() {
		t.Fatal("epoch went backwards")
	}
	if m.Epoch() <= start {
		t.Fatal("epoch did not advance under writers")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestQueriesDuringBatchesRace is the -race regression for the seed's
// unlocked read path: 10 query goroutines hammer every read API while
// insert/remove batches run, for both engine families. Queries must be
// race-free, block-free, and the final state must match a fresh
// decomposition.
func TestQueriesDuringBatchesRace(t *testing.T) {
	for _, alg := range []Algorithm{ParallelOrder, Traversal} {
		base := gen.ErdosRenyi(300, 900, 31)
		m := New(base.Clone(), WithAlgorithm(alg), WithWorkers(4))
		pool := gen.SampleNonEdges(base, 200, 32)

		var stop atomic.Bool
		var wg sync.WaitGroup
		var reads atomic.Int64
		for q := 0; q < 10; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				v := int32(q)
				for !stop.Load() {
					switch q % 5 {
					case 0:
						m.CoreOf(v % 300)
					case 1:
						m.CoreNumbers()
					case 2:
						m.MaxCore()
					case 3:
						m.CoreHistogram()
					case 4:
						s := m.Snapshot()
						if s.CoreOf(v%300) > s.MaxCore() {
							panic("snapshot internally inconsistent")
						}
					}
					v++
					reads.Add(1)
				}
			}(q)
		}

		for i := 0; i < 6; i++ {
			m.InsertEdges(pool)
			m.RemoveEdges(pool)
		}
		stop.Store(true)
		wg.Wait()
		if reads.Load() == 0 {
			t.Fatalf("%v: no queries completed", alg)
		}

		truth := Decompose(m.Graph())
		m.Flush()
		for v, want := range truth {
			if got := m.CoreOf(int32(v)); got != want {
				t.Fatalf("%v: core[%d] = %d, want %d", alg, v, got, want)
			}
		}
		m.Close()
	}
}

// TestConcurrentWritersConverge: many writers pushing overlapping single
// edges and batches through the pipeline must leave a state identical to a
// fresh decomposition of the final graph.
func TestConcurrentWritersConverge(t *testing.T) {
	base := gen.ErdosRenyi(150, 450, 41)
	m := New(base.Clone(), WithWorkers(4))
	defer m.Close()
	pool := gen.SampleNonEdges(base, 96, 42)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := pool[w*12 : (w+1)*12]
			for round := 0; round < 10; round++ {
				if round%2 == 0 {
					for _, e := range chunk {
						m.InsertEdge(e.U, e.V)
					}
				} else {
					m.RemoveEdges(chunk)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	truth := Decompose(m.Graph())
	for v, want := range truth {
		if got := m.CoreOf(int32(v)); got != want {
			t.Fatalf("core[%d] = %d, want %d", v, got, want)
		}
	}
	st := m.ServingStats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue not drained: depth %d", st.QueueDepth)
	}
	if st.Batches == 0 || st.BatchedOps < st.Batches {
		t.Fatalf("implausible pipeline stats: %+v", st)
	}
	if st.UpdateLatency.N == 0 {
		t.Fatal("no update latencies recorded")
	}
}

// TestCloseFallback: after Close, updates must keep working synchronously
// and remain visible to queries; Close must be idempotent.
func TestCloseFallback(t *testing.T) {
	m := New(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}))
	m.Close()
	m.Close() // idempotent
	res := m.InsertEdge(0, 2)
	if res.Applied != 1 || res.Coalesced != 1 {
		t.Fatalf("post-close insert: %+v", res)
	}
	if m.CoreOf(0) != 2 {
		t.Fatalf("post-close snapshot stale: core = %d", m.CoreOf(0))
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if m.RemoveEdge(0, 2).Applied != 1 {
		t.Fatal("post-close remove failed")
	}
}

// TestServingStatsCounters sanity-checks the instrumentation satellite.
func TestServingStatsCounters(t *testing.T) {
	m := New(graph.New(4))
	defer m.Close()
	m.InsertEdge(0, 1)
	m.InsertEdge(1, 2)
	m.Flush()
	st := m.ServingStats()
	if st.Enqueued != 3 || st.Flushes != 1 {
		t.Fatalf("stats %+v: want 3 enqueued, 1 flush", st)
	}
	if st.Batches < 2 || st.Epoch == 0 {
		t.Fatalf("stats %+v: want >= 2 batches and nonzero epoch", st)
	}
}
