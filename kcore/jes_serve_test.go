package kcore

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/gen"
	"repro/internal/snapshot"
)

// TestJESHeldViewStableDuringBatches mirrors TestOldViewStableDuringPublishes
// for the JoinEdgeSet engine, which publishes through the copy-on-write
// delta path since it learned to report per-batch V*: a view held across
// JES batches — including views grabbed while a multi-round JES batch is
// mid-flight — must never mutate. Run with -race: the JES engine is the
// only one whose batch application is itself internally parallel
// (level-concurrent goroutines), so it is the sharpest probe for a publish
// that aliases live engine state.
func TestJESHeldViewStableDuringBatches(t *testing.T) {
	base := gen.ErdosRenyi(2*snapshot.PageSize+33, 12_000, 91)
	n := int32(base.N())
	pool := gen.SampleNonEdges(base, 192, 92)
	m := New(base, WithAlgorithm(JoinEdgeSet), WithWorkers(4))
	defer m.Close()

	held := m.Snapshot()
	want := held.CoreNumbers()
	wantMax, wantM := held.MaxCore(), held.M()
	wantHist := append([]int64(nil), held.Histogram()...)

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		rounds := 4
		if testing.Short() {
			rounds = 2
		}
		for i := 0; i < rounds; i++ {
			m.InsertEdges(pool)
			m.RemoveEdges(pool)
		}
	}()

	// Snapshots grabbed mid-batch must be frozen too: each probe takes
	// the current view, reads a sample of vertices twice, and demands
	// identical answers even while the JES batch keeps running.
	var probes sync.WaitGroup
	for p := 0; p < 3; p++ {
		probes.Add(1)
		go func(p int) {
			defer probes.Done()
			for !writerDone.Load() {
				s := m.Snapshot()
				first := make([]int32, 64)
				for i := range first {
					first[i] = s.CoreOf((int32(i*67) + int32(p)) % n)
				}
				h := append([]int64(nil), s.Histogram()...)
				for i := range first {
					if again := s.CoreOf((int32(i*67) + int32(p)) % n); again != first[i] {
						t.Errorf("mid-batch snapshot mutated: vertex %d read %d then %d",
							(i*67+p)%int(n), first[i], again)
						return
					}
				}
				for k, v := range s.Histogram() {
					if h[k] != v {
						t.Errorf("mid-batch snapshot histogram mutated at %d", k)
						return
					}
				}
			}
		}(p)
	}

	// And the view held from before the writer started must keep its
	// original contents to the byte.
	for r := 0; r < 12 || !writerDone.Load(); r++ {
		for v := int32(0); v < n; v++ {
			if got := held.CoreOf(v); got != want[v] {
				t.Errorf("held view drifted: core[%d] = %d, want %d", v, got, want[v])
				wg.Wait()
				probes.Wait()
				return
			}
		}
		if held.MaxCore() != wantMax || held.M() != wantM {
			t.Fatalf("held view aggregates drifted")
		}
		for k, h := range held.Histogram() {
			if h != wantHist[k] {
				t.Fatalf("held view hist drifted at %d", k)
			}
		}
	}
	wg.Wait()
	probes.Wait()

	// The point of the exercise: JES now rides the delta path.
	st := m.ServingStats()
	if st.DeltaPublishes == 0 {
		t.Fatalf("JES published no deltas: %+v", st)
	}
	if m.Epoch() == held.Epoch() {
		t.Fatal("epoch never advanced")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}
