package kcore

import "repro/obs"

// PipelineMetrics holds the update pipeline's stage histograms: how long
// coalesced ops waited in the queue before their batch started, how long
// the engine round took, and how long snapshot publication took. All
// three are one family, kcore_pipeline_stage_seconds, labeled by stage
// and engine.
//
// A PipelineMetrics is cumulative and independent of any one Maintainer:
// pass it to New via WithPipelineMetrics to keep one continuous series
// across maintainer re-bootstraps (a replica builds a fresh Maintainer
// per FULLSYNC, but its operator wants one monotone latency history).
// When the option is absent New builds a private instance, so the
// observation sites never nil-check.
type PipelineMetrics struct {
	CoalesceWait *obs.Histogram
	Apply        *obs.Histogram
	Publish      *obs.Histogram
}

// NewPipelineMetrics builds the stage histograms for one engine label.
func NewPipelineMetrics(engine string) *PipelineMetrics {
	const name = "kcore_pipeline_stage_seconds"
	const help = "Update pipeline stage latency: queue wait before the batch, engine apply, snapshot publish."
	return &PipelineMetrics{
		CoalesceWait: obs.NewDurationHistogram(name, help, obs.L("engine", engine), obs.L("stage", "coalesce_wait")),
		Apply:        obs.NewDurationHistogram(name, help, obs.L("engine", engine), obs.L("stage", "apply")),
		Publish:      obs.NewDurationHistogram(name, help, obs.L("engine", engine), obs.L("stage", "publish")),
	}
}

// Register adds the stage histograms to reg.
func (pm *PipelineMetrics) Register(reg *obs.Registry) {
	reg.MustRegister(pm.CoalesceWait, pm.Apply, pm.Publish)
}

// WithPipelineMetrics attaches an externally owned PipelineMetrics to
// the Maintainer, keeping stage histograms cumulative across maintainer
// rebuilds. The caller should construct it with the same engine label
// it builds the Maintainer with.
func WithPipelineMetrics(pm *PipelineMetrics) Option {
	return func(c *config) { c.pm = pm }
}

// PipelineMetrics returns the Maintainer's stage histograms (the
// attached instance, or the private one New built).
func (m *Maintainer) PipelineMetrics() *PipelineMetrics { return m.eng.cfg.pm }
