package kcore

import (
	"sync"
	"time"
)

// EpochWatermark tracks the highest snapshot epoch a replica has applied
// and lets readers block until it reaches a target — the follower half of
// the read-your-writes handshake (the leader returns a write's epoch, the
// follower's CORE.WAIT parks on the watermark until the replicated op
// stream has carried the replica at least that far).
//
// Advance is monotonic and is what the replication apply loop calls;
// Reset may move the watermark backwards and is reserved for
// re-bootstrap, when a fresh snapshot from a restarted leader legally
// restarts the epoch sequence. All methods are safe for concurrent use.
type EpochWatermark struct {
	mu    sync.Mutex
	epoch uint64
	ch    chan struct{} // closed and replaced on every watermark move
}

// NewEpochWatermark returns a watermark at epoch 0.
func NewEpochWatermark() *EpochWatermark {
	return &EpochWatermark{ch: make(chan struct{})}
}

// Epoch returns the current watermark.
func (w *EpochWatermark) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Advance moves the watermark up to e; calls with e at or below the
// current watermark are no-ops, so out-of-order duplicate markers cannot
// regress it.
func (w *EpochWatermark) Advance(e uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e <= w.epoch {
		return
	}
	w.epoch = e
	close(w.ch)
	w.ch = make(chan struct{})
}

// Reset forces the watermark to e, regressions included, and wakes every
// waiter so it re-evaluates against the new epoch sequence (a waiter
// whose target is now unreachable times out rather than hanging on a
// closed-over channel from the previous sequence).
func (w *EpochWatermark) Reset(e uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.epoch = e
	close(w.ch)
	w.ch = make(chan struct{})
}

// Wait blocks until the watermark reaches target, the timeout elapses,
// or cancel is closed. It returns the watermark observed last and
// whether the target was reached. A zero timeout means wait only as
// long as cancel allows; a nil cancel never fires.
func (w *EpochWatermark) Wait(target uint64, timeout time.Duration, cancel <-chan struct{}) (uint64, bool) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		w.mu.Lock()
		cur, ch := w.epoch, w.ch
		w.mu.Unlock()
		if cur >= target {
			return cur, true
		}
		select {
		case <-ch:
		case <-deadline:
			return cur, false
		case <-cancel:
			return cur, false
		}
	}
}
