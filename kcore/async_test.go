package kcore

import (
	"testing"

	"repro/gen"
	"repro/graph"
)

// TestAsyncSubmissionOrder pins the Pending contract the RESP server
// builds on: ops submitted asynchronously by one goroutine coalesce in
// submission order (last op per edge wins), so an insert followed by a
// remove of the same edge — submitted back to back, waited afterwards —
// always ends with the edge absent.
func TestAsyncSubmissionOrder(t *testing.T) {
	g := gen.ErdosRenyi(200, 400, 1)
	m := New(g)
	defer m.Close()

	e := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	for round := 0; round < 50; round++ {
		var pends []*Pending
		pends = append(pends, m.InsertEdgesAsync(e))
		pends = append(pends, m.RemoveEdgesAsync(e))
		pends = append(pends, m.InsertEdgesAsync(e))
		pends = append(pends, m.RemoveEdgesAsync(e))
		for _, pd := range pends {
			pd.Wait()
			pd.Wait() // idempotent
		}
	}
	if err := m.Check(); err != nil {
		t.Fatalf("invariants after async churn: %v", err)
	}
	st := m.ServingStats()
	if st.CanceledOps == 0 {
		t.Fatalf("expected async bursts to coalesce (canceled ops > 0), got %+v", st)
	}
}

// TestAsyncAfterClose verifies Pendings keep working once the pipeline
// is shut down: submission applies synchronously, Wait returns the
// result.
func TestAsyncAfterClose(t *testing.T) {
	g := gen.ErdosRenyi(100, 200, 2)
	m := New(g)
	m.Close()
	pd := m.InsertEdgesAsync([]graph.Edge{{U: 5, V: 7}})
	res := pd.Wait()
	if res.Coalesced != 1 {
		t.Fatalf("post-Close async result = %+v, want Coalesced 1", res)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
