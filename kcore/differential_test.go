package kcore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
	"repro/internal/snapshot"
)

// TestDifferentialDeltaPublish interleaves randomized insert/remove
// batches across all four engines and asserts after every batch that the
// published view — almost always produced by the copy-on-write delta path
// (all engines report per-batch V* now) — is byte-equal to a from-scratch BZ rebuild
// of a mirror graph: cores, Hist, MaxCore, N and M. 1000+ mixed batches
// per engine (reduced under -short).
func TestDifferentialDeltaPublish(t *testing.T) {
	batches := 1000
	if testing.Short() {
		batches = 150
	}
	for _, alg := range allAlgorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(97 + int64(alg)))
			// Several pages plus a short tail, so the engine-reported
			// changed sets exercise real multi-page COW publication
			// (page-index arithmetic, clean-page sharing), not just the
			// single-page degenerate case.
			const n = 3*snapshot.PageSize + 123
			base := gen.ErdosRenyi(n, 3*n, 55)
			mirror := base.Clone()
			m := New(base, WithAlgorithm(alg), WithWorkers(4))
			defer m.Close()

			var buf []int32
			verify := func(round int) {
				t.Helper()
				s := m.Snapshot()
				truth, _ := bz.Decompose(mirror)
				buf = s.CoresInto(buf)
				for v := range truth {
					if buf[v] != truth[v] {
						t.Fatalf("round %d: core[%d] = %d, want %d", round, v, buf[v], truth[v])
					}
				}
				wantHist := bz.CoreHistogram(truth)
				if s.MaxCore() != int32(len(wantHist))-1 {
					t.Fatalf("round %d: MaxCore = %d, want %d", round, s.MaxCore(), len(wantHist)-1)
				}
				gotHist := s.Histogram()
				if len(gotHist) != len(wantHist) {
					t.Fatalf("round %d: hist %v, want %v", round, gotHist, wantHist)
				}
				for k := range wantHist {
					if gotHist[k] != wantHist[k] {
						t.Fatalf("round %d: hist[%d] = %d, want %d", round, k, gotHist[k], wantHist[k])
					}
				}
				if s.N() != mirror.N() || s.M() != mirror.M() {
					t.Fatalf("round %d: N=%d M=%d, want N=%d M=%d", round, s.N(), s.M(), mirror.N(), mirror.M())
				}
			}

			for round := 0; round < batches; round++ {
				if rng.Intn(2) == 0 {
					// Insert a small batch of random pairs (duplicates
					// and existing edges exercised on purpose).
					k := 1 + rng.Intn(8)
					batch := make([]graph.Edge, 0, k)
					for i := 0; i < k; i++ {
						u, v := rng.Int31n(n), rng.Int31n(n)
						if u == v {
							continue
						}
						batch = append(batch, graph.Edge{U: u, V: v})
					}
					m.InsertEdges(batch)
					for _, e := range batch {
						mirror.AddEdge(e.U, e.V)
					}
				} else {
					// Remove a random sample of present edges, plus the
					// occasional absent pair.
					edges := mirror.Edges()
					k := 1 + rng.Intn(8)
					batch := make([]graph.Edge, 0, k)
					for i := 0; i < k && len(edges) > 0; i++ {
						batch = append(batch, edges[rng.Intn(len(edges))])
					}
					if rng.Intn(4) == 0 {
						batch = append(batch, graph.Edge{U: rng.Int31n(n), V: rng.Int31n(n)})
					}
					m.RemoveEdges(batch)
					for _, e := range batch {
						mirror.RemoveEdge(e.U, e.V)
					}
				}
				verify(round)
			}

			st := m.ServingStats()
			if st.DeltaPublishes == 0 {
				t.Fatalf("%v: no delta publications exercised, stats %+v", alg, st)
			}
			// Only the initial view may be a full rebuild: every engine —
			// JES included — reports its per-batch V*, and these small
			// batches must never hit the rebuild fallback.
			if st.FullPublishes > 1 {
				t.Fatalf("%v: %d full publishes for small batches, stats %+v", alg, st.FullPublishes, st)
			}
		})
	}
}

// TestOldViewStableDuringPublishes: a reader holding an old paged view
// must see exactly the values it was published with while later batches
// clone and publish new pages over the same page table. Run with -race.
func TestOldViewStableDuringPublishes(t *testing.T) {
	base := gen.ErdosRenyi(3*4096+77, 30_000, 77) // several pages, short tail
	n := int32(base.N())
	pool := gen.SampleNonEdges(base, 256, 78)
	m := New(base, WithWorkers(4))
	defer m.Close()

	held := m.Snapshot()
	want := held.CoreNumbers()
	wantMax, wantM := held.MaxCore(), held.M()
	wantHist := append([]int64(nil), held.Histogram()...)

	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < 4; i++ {
			m.InsertEdges(pool)
			m.RemoveEdges(pool)
		}
	}()

	// Keep re-reading the held view until the writer has published all its
	// batches over it (and for a minimum number of rounds either way).
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for r := 0; r < rounds || !writerDone.Load(); r++ {
		for v := int32(0); v < n; v++ {
			if got := held.CoreOf(v); got != want[v] {
				t.Errorf("held view drifted: core[%d] = %d, want %d", v, got, want[v])
				wg.Wait()
				return
			}
		}
		if held.MaxCore() != wantMax || held.M() != wantM {
			t.Fatalf("held view aggregates drifted")
		}
		for k, h := range held.Histogram() {
			if h != wantHist[k] {
				t.Fatalf("held view hist drifted at %d", k)
			}
		}
	}
	wg.Wait()

	// The writer really published new views over the held one.
	if st := m.ServingStats(); st.DeltaPublishes+st.UnchangedPublishes+st.FullPublishes < 2 {
		t.Fatalf("no publications happened while the view was held: %+v", st)
	}
	if m.Epoch() == held.Epoch() {
		t.Fatal("epoch never advanced")
	}
}
