package kcore

import (
	"testing"

	"repro/gen"
	"repro/graph"
)

// triangle + pendant: cores [2 2 2 1].
func fixtureGraph() *graph.Graph {
	return graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 0},
	})
}

func TestDegeneracy(t *testing.T) {
	m := New(fixtureGraph())
	d, order := m.Degeneracy()
	if d != 2 {
		t.Fatalf("degeneracy = %d, want 2", d)
	}
	if len(order) != 4 || order[0] != 3 {
		t.Fatalf("ordering %v must peel the pendant first", order)
	}
	// Validity: every vertex has at most d later neighbors.
	pos := map[int32]int{}
	for i, v := range order {
		pos[v] = i
	}
	g := m.Graph()
	for v := int32(0); v < int32(g.N()); v++ {
		later := int32(0)
		for _, w := range g.Adj(v) {
			if pos[v] < pos[w] {
				later++
			}
		}
		if later > d {
			t.Fatalf("vertex %d has %d later neighbors > degeneracy %d", v, later, d)
		}
	}
}

func TestKCoreVertices(t *testing.T) {
	m := New(fixtureGraph())
	if got := m.KCoreVertices(2); len(got) != 3 {
		t.Fatalf("2-core = %v", got)
	}
	if got := m.KCoreVertices(1); len(got) != 4 {
		t.Fatalf("1-core = %v", got)
	}
	if got := m.KCoreVertices(3); got != nil {
		t.Fatalf("3-core must be empty, got %v", got)
	}
}

func TestKCoreSubgraph(t *testing.T) {
	m := New(fixtureGraph())
	sub, members := m.KCoreSubgraph(2)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("2-core subgraph n=%d m=%d, want triangle", sub.N(), sub.M())
	}
	if len(members) != 3 {
		t.Fatalf("members %v", members)
	}
	for _, v := range members {
		if v == 3 {
			t.Fatal("pendant must not be in the 2-core")
		}
	}
	// The extracted subgraph must itself be a k-core: min degree >= 2.
	for v := int32(0); v < int32(sub.N()); v++ {
		if sub.Degree(v) < 2 {
			t.Fatalf("subgraph vertex %d has degree %d", v, sub.Degree(v))
		}
	}
	if err := sub.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreSubgraphTracksMaintenance(t *testing.T) {
	base := gen.ErdosRenyi(200, 800, 3)
	m := New(base.Clone(), WithWorkers(4))
	m.InsertEdges(gen.SampleNonEdges(base, 100, 4))
	k := m.MaxCore()
	sub, members := m.KCoreSubgraph(k)
	// Every member's core within the subgraph is at least k.
	subCores := Decompose(sub)
	for i := range members {
		if subCores[i] < k {
			t.Fatalf("member %d has core %d < %d inside the extracted %d-core",
				members[i], subCores[i], k, k)
		}
	}
}

func TestCoreLevelsAndTopCore(t *testing.T) {
	m := New(fixtureGraph())
	levels := m.CoreLevels()
	if len(levels) != 2 || levels[0] != 1 || levels[1] != 2 {
		t.Fatalf("levels %v", levels)
	}
	top := m.TopCoreVertices()
	if len(top) != 3 {
		t.Fatalf("top core %v", top)
	}
}

func TestRemoveVertex(t *testing.T) {
	for _, alg := range allAlgorithms {
		m := New(fixtureGraph(), WithAlgorithm(alg), WithWorkers(2))
		res := m.RemoveVertex(0) // hub of the triangle + pendant
		if res.Applied != 3 {
			t.Fatalf("%v: applied %d, want 3", alg, res.Applied)
		}
		if m.CoreOf(0) != 0 {
			t.Fatalf("%v: removed vertex core = %d", alg, m.CoreOf(0))
		}
		if m.CoreOf(3) != 0 {
			t.Fatalf("%v: pendant core = %d after hub removal", alg, m.CoreOf(3))
		}
		if m.CoreOf(1) != 1 || m.CoreOf(2) != 1 {
			t.Fatalf("%v: remaining edge must keep cores 1", alg)
		}
		if err := m.Check(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestRemoveIsolatedVertexNoop(t *testing.T) {
	m := New(fixtureGraph())
	if res := m.RemoveVertex(3); res.Applied != 1 {
		t.Fatalf("pendant removal applied %d", res.Applied)
	}
	if res := m.RemoveVertex(3); res.Applied != 0 {
		t.Fatal("second removal must be a no-op")
	}
}

// TestHistogramRange pins the range-restricted aggregate surface against
// brute force over random graphs: for random [lo, hi) windows (clamped,
// inverted, and beyond-N included), HistogramRange bins and
// CountCoresAtLeast counts must match a direct scan of the core array.
func TestHistogramRange(t *testing.T) {
	m := New(gen.ErdosRenyi(3000, 12000, 7))
	defer m.Close()
	s := m.Snapshot()
	cores := s.CoreNumbers()
	n := int32(s.N())

	windows := [][2]int32{
		{0, n}, {0, 0}, {n, n}, {100, 100}, {0, 1}, {n - 1, n},
		{500, 1500}, {1023, 1025}, {1024, 2048}, // page boundaries
		{2900, n + 500}, {-5, 40}, {2000, 1000}, // clamped / inverted
	}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		clo, chi := max(lo, 0), min(hi, n)
		want := []int64{0}
		var existing int64
		for v := clo; v < chi; v++ {
			c := cores[v]
			for int(c) >= len(want) {
				want = append(want, 0)
			}
			want[c]++
			existing++
		}
		got := s.HistogramRange(lo, hi)
		if len(got) != len(want) {
			t.Fatalf("HistogramRange(%d,%d) has %d bins, want %d", lo, hi, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("HistogramRange(%d,%d)[%d] = %d, want %d", lo, hi, k, got[k], want[k])
			}
		}
		for _, k := range []int32{-1, 0, 1, 2, 3, 100} {
			var wantCount int64
			if k <= 0 {
				wantCount = existing
			} else {
				for v := clo; v < chi; v++ {
					if cores[v] >= k {
						wantCount++
					}
				}
			}
			if got := s.CountCoresAtLeast(k, lo, hi); got != wantCount {
				t.Fatalf("CountCoresAtLeast(%d,%d,%d) = %d, want %d", k, lo, hi, got, wantCount)
			}
		}
	}

	// Whole-graph consistency: the [0, N) range histogram is the Histogram.
	whole := s.Histogram()
	ranged := s.HistogramRange(0, n)
	if len(whole) != len(ranged) {
		t.Fatalf("range [0,N) has %d bins, Histogram has %d", len(ranged), len(whole))
	}
	for k := range whole {
		if whole[k] != ranged[k] {
			t.Fatalf("bin %d: range %d, Histogram %d", k, ranged[k], whole[k])
		}
	}
}
