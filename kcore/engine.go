package kcore

import (
	"repro/graph"
	"repro/internal/core"
	"repro/internal/jes"
	"repro/internal/pcore"
	"repro/internal/snapshot"
	"repro/internal/traversal"
)

// Stats is the unified per-batch report every maintenance engine returns
// from ApplyInsert and ApplyRemove. It is the engine-side half of
// BatchResult: the pipeline merges one Stats per applied sub-batch into
// the BatchResult its callers receive.
type Stats struct {
	// Applied counts the edges that changed the graph (duplicates,
	// self-loops and absent removals are skipped).
	Applied int
	// ChangedVertices is Σ|V*| over the batch's applied operations — how
	// many core-number updates the batch caused in total, counting a
	// vertex once per operation that moved it.
	ChangedVertices int
	// VPlusSizes holds per-edge |V+| (insertions) or |V*| (removals) for
	// the Order engines; nil for Traversal/JoinEdgeSet, which do not
	// report per-edge searching-set sizes.
	VPlusSizes []int
	// Changed is the batch's ⋃V* — every vertex whose core number some
	// operation of the batch moved — deduplicated: a vertex touched at
	// multiple levels (promoted twice across an insertion chain, dropped
	// and re-dropped across JES rounds) appears once. A reporting
	// contract for Stats consumers; the publisher dedups its input again
	// on its own (snapshot.BuildDelta). The delta snapshot publication
	// input.
	Changed []int32
	// Contention carries the parallel engine's synchronization counters
	// (zero value for the other engines).
	Contention Contention
}

// Engine is the contract a maintenance engine implements to plug into the
// serving layer: batch application with a uniform Stats report, quiescent
// core materialization, invariant checking, and the snapshot-publication
// surface the pipeline drives after every batch. All methods are called
// from one goroutine at a time (the pipeline's applier, or mu-serialized
// callers after Close).
//
// The interface is sealed — the publication surface names internal types —
// so engines register in engineRegistry rather than being supplied by
// callers; every registered engine is exercised by the cross-engine
// conformance suite and the FuzzMixedBatch differential fuzzer.
type Engine interface {
	// ApplyInsert applies one insertion batch and reports what it did.
	ApplyInsert(edges []graph.Edge) Stats
	// ApplyRemove applies one removal batch and reports what it did.
	ApplyRemove(edges []graph.Edge) Stats
	// Grow extends the vertex universe to at least n vertices, all new
	// ones isolated at core 0, and publishes the grown snapshot
	// copy-on-write (held views keep their pre-growth N). Amortized O(1)
	// per minted vertex. Like batch application it must run at
	// quiescence; the pipeline's applier calls it before any engine
	// round whose insertions name unseen vertex ids.
	Grow(n int)
	// Cores materializes the quiescent core numbers — O(n), for
	// conformance checks and full snapshot rebuilds.
	Cores() []int32
	// Check verifies the engine's invariants against a fresh
	// decomposition; O(n + m), for tests and debugging.
	Check() error

	// Sealed snapshot surface (see engineState); the pipeline publishes
	// through these at batch quiescence.
	currentView() *snapshot.View
	publishUnchanged() *snapshot.View
	publishDelta(changed []int32) *snapshot.View
	publicationStats() snapshot.PubStats
}

// engineState is the snapshot/verification/growth surface shared verbatim
// by the two state implementations (core.State for the Order family,
// traversal.State for the Traversal family). Both own every per-vertex
// array an engine needs, so growing the state grows the whole engine: the
// pcore workers keep only per-edge scratch (maps, reused slices) and the
// JES scheduler keeps only per-batch level groups — neither holds
// N-sized state that could go stale across a Grow.
type engineState interface {
	Snapshot() *snapshot.View
	PublishSnapshot() *snapshot.View
	PublishSnapshotUnchanged() *snapshot.View
	PublishSnapshotDelta(changed []int32) *snapshot.View
	PubStats() snapshot.PubStats
	CoreNumbers() []int32
	CheckInvariants() error
	Grow(n int)
}

// stateEngine supplies the state-backed half of Engine by delegation;
// every engine embeds it over its maintenance state.
type stateEngine struct{ state engineState }

func (e stateEngine) Cores() []int32                         { return e.state.CoreNumbers() }
func (e stateEngine) Check() error                           { return e.state.CheckInvariants() }
func (e stateEngine) Grow(n int)                             { e.state.Grow(n) }
func (e stateEngine) currentView() *snapshot.View            { return e.state.Snapshot() }
func (e stateEngine) publishUnchanged() *snapshot.View       { return e.state.PublishSnapshotUnchanged() }
func (e stateEngine) publishDelta(ch []int32) *snapshot.View { return e.state.PublishSnapshotDelta(ch) }
func (e stateEngine) publicationStats() snapshot.PubStats    { return e.state.PubStats() }

// engineRegistry is the registration table — the single dispatch point
// between Algorithm values and engine implementations. Adding an engine
// means adding one row here; the pipeline, the conformance suite and the
// differential fuzzer all range over this table instead of switching on
// the Algorithm.
var engineRegistry = []struct {
	alg  Algorithm
	name string
	make func(g *graph.Graph, workers int) Engine
}{
	{ParallelOrder, "ParallelOrder", newParallelOrderEngine},
	{SequentialOrder, "SequentialOrder", newSequentialOrderEngine},
	{Traversal, "Traversal", newTraversalEngine},
	{JoinEdgeSet, "JoinEdgeSet", newJoinEdgeSetEngine},
}

// Algorithms lists every registered maintenance engine, in registration
// order. Conformance-style callers that want to exercise "all engines"
// should range over this instead of hard-coding the constants.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(engineRegistry))
	for i, r := range engineRegistry {
		out[i] = r.alg
	}
	return out
}

// algorithmName returns the registered name of alg, or "" if unknown.
func algorithmName(a Algorithm) string {
	for _, r := range engineRegistry {
		if r.alg == a {
			return r.name
		}
	}
	return ""
}

// newEngine builds the registered engine for alg over g. Unregistered
// values fall back to the default engine — a deliberate behavior change:
// the old switch dispatch gave out-of-range Algorithm values an order
// state whose updates then silently matched no case and were dropped.
func newEngine(alg Algorithm, g *graph.Graph, workers int) Engine {
	for _, r := range engineRegistry {
		if r.alg == alg {
			return r.make(g, workers)
		}
	}
	return newParallelOrderEngine(g, workers)
}

// dedupVertices enforces the Stats.Changed distinct-set contract; see
// snapshot.Dedup for why this is a reporting contract, not a
// publication-correctness requirement. The publisher's BuildDelta still
// dedups its own input — a coalesced mixed batch concatenates the
// removal and insertion halves' Changed sets, which may overlap — so a
// batch pays two O(|V*|) passes; accepted: |V*| is dwarfed by the engine
// work that produced it, and the distinct contract keeps every Stats
// consumer honest.
func dedupVertices(changed []int32) []int32 { return snapshot.Dedup(changed) }

// --- ParallelOrder ---------------------------------------------------------

type parallelOrderEngine struct {
	stateEngine
	st      *core.State
	workers int
}

func newParallelOrderEngine(g *graph.Graph, workers int) Engine {
	st := core.NewState(g)
	return &parallelOrderEngine{stateEngine{st}, st, workers}
}

func (e *parallelOrderEngine) ApplyInsert(edges []graph.Edge) Stats {
	per, snap := pcore.InsertEdgesMetered(e.st, edges, e.workers, nil)
	s := Stats{VPlusSizes: make([]int, 0, len(per)), Contention: contentionOf(snap)}
	for _, es := range per {
		if es.Applied {
			s.Applied++
			s.ChangedVertices += es.VStar
			s.VPlusSizes = append(s.VPlusSizes, es.VPlus)
			s.Changed = append(s.Changed, es.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

func (e *parallelOrderEngine) ApplyRemove(edges []graph.Edge) Stats {
	per, snap := pcore.RemoveEdgesMetered(e.st, edges, e.workers, nil)
	s := Stats{VPlusSizes: make([]int, 0, len(per)), Contention: contentionOf(snap)}
	for _, es := range per {
		if es.Applied {
			s.Applied++
			s.ChangedVertices += es.VStar
			s.VPlusSizes = append(s.VPlusSizes, es.VStar)
			s.Changed = append(s.Changed, es.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

func contentionOf(s pcore.MetricsSnapshot) Contention {
	return Contention{
		LockAborts:    s.LockAborts,
		QueueRebuilds: s.QueueRebuilds,
		RemovalRedos:  s.RemovalRedos,
		Evictions:     s.Evictions,
	}
}

// --- SequentialOrder -------------------------------------------------------

type sequentialOrderEngine struct {
	stateEngine
	st *core.State
}

func newSequentialOrderEngine(g *graph.Graph, _ int) Engine {
	st := core.NewState(g)
	return &sequentialOrderEngine{stateEngine{st}, st}
}

func (e *sequentialOrderEngine) ApplyInsert(edges []graph.Edge) Stats {
	s := Stats{VPlusSizes: make([]int, 0, len(edges))}
	for _, ed := range edges {
		es := e.st.InsertEdgeSeq(ed.U, ed.V)
		if es.Applied {
			s.Applied++
			s.ChangedVertices += es.VStar
			s.VPlusSizes = append(s.VPlusSizes, es.VPlus)
			s.Changed = append(s.Changed, es.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

func (e *sequentialOrderEngine) ApplyRemove(edges []graph.Edge) Stats {
	s := Stats{VPlusSizes: make([]int, 0, len(edges))}
	for _, ed := range edges {
		es := e.st.RemoveEdgeSeq(ed.U, ed.V)
		if es.Applied {
			s.Applied++
			s.ChangedVertices += es.VStar
			s.VPlusSizes = append(s.VPlusSizes, es.VStar)
			s.Changed = append(s.Changed, es.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

// --- Traversal -------------------------------------------------------------

type traversalEngine struct {
	stateEngine
	st *traversal.State
}

func newTraversalEngine(g *graph.Graph, _ int) Engine {
	st := traversal.NewState(g)
	return &traversalEngine{stateEngine{st}, st}
}

func (e *traversalEngine) ApplyInsert(edges []graph.Edge) Stats {
	var s Stats
	for _, ed := range edges {
		ts := e.st.InsertEdge(ed.U, ed.V)
		if ts.Applied {
			s.Applied++
			s.ChangedVertices += ts.VStar
			s.Changed = append(s.Changed, ts.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

func (e *traversalEngine) ApplyRemove(edges []graph.Edge) Stats {
	var s Stats
	for _, ed := range edges {
		ts := e.st.RemoveEdge(ed.U, ed.V)
		if ts.Applied {
			s.Applied++
			s.ChangedVertices += ts.VStar
			s.Changed = append(s.Changed, ts.Changed...)
		}
	}
	s.Changed = dedupVertices(s.Changed)
	return s
}

// --- JoinEdgeSet -----------------------------------------------------------

type joinEdgeSetEngine struct {
	stateEngine
	st      *traversal.State
	workers int
}

func newJoinEdgeSetEngine(g *graph.Graph, workers int) Engine {
	st := traversal.NewState(g)
	return &joinEdgeSetEngine{stateEngine{st}, st, workers}
}

func (e *joinEdgeSetEngine) ApplyInsert(edges []graph.Edge) Stats {
	js := jes.InsertEdges(e.st, edges, e.workers)
	return Stats{Applied: js.Applied, ChangedVertices: js.VStar, Changed: js.Changed}
}

func (e *joinEdgeSetEngine) ApplyRemove(edges []graph.Edge) Stats {
	js := jes.RemoveEdges(e.st, edges, e.workers)
	return Stats{Applied: js.Applied, ChangedVertices: js.VStar, Changed: js.Changed}
}
