package kcore

import (
	"sync"
	"testing"
	"time"

	"repro/gen"
	"repro/graph"
)

func TestEpochWatermarkAdvanceMonotonic(t *testing.T) {
	w := NewEpochWatermark()
	if got := w.Epoch(); got != 0 {
		t.Fatalf("fresh watermark epoch = %d, want 0", got)
	}
	w.Advance(5)
	w.Advance(3) // stale marker must not regress
	if got := w.Epoch(); got != 5 {
		t.Fatalf("after Advance(5), Advance(3): epoch = %d, want 5", got)
	}
	w.Reset(2) // re-bootstrap may regress
	if got := w.Epoch(); got != 2 {
		t.Fatalf("after Reset(2): epoch = %d, want 2", got)
	}
}

func TestEpochWatermarkWait(t *testing.T) {
	w := NewEpochWatermark()
	w.Advance(10)

	// Already satisfied: returns immediately.
	if got, ok := w.Wait(10, time.Second, nil); !ok || got != 10 {
		t.Fatalf("Wait(10) = (%d, %v), want (10, true)", got, ok)
	}

	// Not yet satisfied: a concurrent Advance releases the waiter.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, ok := w.Wait(15, 5*time.Second, nil); !ok || got < 15 {
			t.Errorf("Wait(15) = (%d, %v), want reached", got, ok)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	w.Advance(12)
	w.Advance(16)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by Advance(16)")
	}

	// Timeout: target never reached.
	if _, ok := w.Wait(100, 20*time.Millisecond, nil); ok {
		t.Fatal("Wait(100) reported reached without an Advance")
	}

	// Cancel: closed channel releases the waiter as not-reached.
	cancel := make(chan struct{})
	close(cancel)
	if _, ok := w.Wait(100, time.Minute, cancel); ok {
		t.Fatal("Wait(100) with closed cancel reported reached")
	}
}

func TestEpochWatermarkConcurrent(t *testing.T) {
	w := NewEpochWatermark()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for e := uint64(1); e <= 1000; e++ {
				w.Advance(e)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, ok := w.Wait(1000, 10*time.Second, nil); !ok {
				t.Errorf("Wait(1000) timed out at %d", got)
			}
		}()
	}
	wg.Wait()
	if got := w.Epoch(); got != 1000 {
		t.Fatalf("final epoch = %d, want 1000", got)
	}
}

// epochRecordingLog records the full op stream including epoch markers,
// in call order, mimicking what a replication tap sees.
type epochRecordingLog struct {
	mu     sync.Mutex
	events []epochLogEvent
}

type epochLogEvent struct {
	kind    string // "batch" | "grow" | "epoch"
	removes []graph.Edge
	inserts []graph.Edge
	n       int
	epoch   uint64
}

func (l *epochRecordingLog) AppendBatch(removes, inserts []graph.Edge) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, epochLogEvent{
		kind:    "batch",
		removes: append([]graph.Edge(nil), removes...),
		inserts: append([]graph.Edge(nil), inserts...),
	})
}

func (l *epochRecordingLog) AppendGrow(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, epochLogEvent{kind: "grow", n: n})
}

func (l *epochRecordingLog) AppendEpoch(epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, epochLogEvent{kind: "epoch", epoch: epoch})
}

// TestEpochMarkersFollowPublications drives a maintainer with an
// EpochLog attached and checks the marker discipline replication relies
// on: markers are non-decreasing, every batch/grow event is followed by
// a marker before any other batch starts, and the final marker equals
// the maintainer's final epoch (so a follower applying the full stream
// ends exactly at the leader's epoch).
func TestEpochMarkersFollowPublications(t *testing.T) {
	lg := &epochRecordingLog{}
	g := gen.ErdosRenyi(200, 600, 7)
	m := New(g, WithOpLog(lg))
	defer m.Close()

	m.InsertEdges([]graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}, {U: 250, V: 5}}) // implicit grow
	m.RemoveEdges([]graph.Edge{{U: 1, V: 2}})
	m.AddVertices(50)
	m.InsertEdges([]graph.Edge{{U: 260, V: 261}})
	finalEpoch := m.Flush()

	lg.mu.Lock()
	events := append([]epochLogEvent(nil), lg.events...)
	lg.mu.Unlock()

	var last uint64
	sawOp := false // an un-marked batch/grow is pending
	var lastMarker uint64
	for i, ev := range events {
		switch ev.kind {
		case "batch", "grow":
			if sawOp {
				t.Fatalf("event %d (%s) before the previous op's epoch marker", i, ev.kind)
			}
			sawOp = true
		case "epoch":
			if ev.epoch < last {
				t.Fatalf("event %d: epoch marker %d < previous %d", i, ev.epoch, last)
			}
			last = ev.epoch
			lastMarker = ev.epoch
			sawOp = false
		}
	}
	if sawOp {
		t.Fatal("trailing batch/grow without an epoch marker")
	}
	if lastMarker != finalEpoch {
		t.Fatalf("last marker %d != final epoch %d", lastMarker, finalEpoch)
	}
}

// TestEpochMarkersAfterClose pins the post-Close applyDirect path: it
// must keep emitting markers so a follower tap on a closed-but-usable
// maintainer stays consistent.
func TestEpochMarkersAfterClose(t *testing.T) {
	lg := &epochRecordingLog{}
	m := New(graph.New(10), WithOpLog(lg))
	m.Close()

	m.InsertEdges([]graph.Edge{{U: 0, V: 1}})
	epoch := m.Epoch()

	lg.mu.Lock()
	defer lg.mu.Unlock()
	if len(lg.events) == 0 {
		t.Fatal("no events recorded")
	}
	lastEv := lg.events[len(lg.events)-1]
	if lastEv.kind != "epoch" || lastEv.epoch != epoch {
		t.Fatalf("last event = %+v, want epoch marker at %d", lastEv, epoch)
	}
}
