package kcore

import (
	"math/rand"
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

// recordingLog captures the op stream like the durability subsystem
// does, but in memory: replaying it onto an empty graph must rebuild the
// maintainer's exact graph.
type recordingLog struct {
	mu  sync.Mutex
	ops []loggedOp
}

type loggedOp struct {
	grow    int // >0: grow record
	inserts []graph.Edge
	removes []graph.Edge
}

func (l *recordingLog) AppendBatch(removes, inserts []graph.Edge) {
	l.mu.Lock()
	l.ops = append(l.ops, loggedOp{
		removes: append([]graph.Edge(nil), removes...),
		inserts: append([]graph.Edge(nil), inserts...),
	})
	l.mu.Unlock()
}

func (l *recordingLog) AppendGrow(n int) {
	l.mu.Lock()
	l.ops = append(l.ops, loggedOp{grow: n})
	l.mu.Unlock()
}

// replay rebuilds a graph from the recorded stream, the same way
// persist.Recover does: grow-to-fit inserts, drop out-of-range removes.
func (l *recordingLog) replay(start *graph.Graph) *graph.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	g := start.Clone()
	for _, op := range l.ops {
		if op.grow > 0 {
			if op.grow > g.N() {
				g.Grow(op.grow)
			}
			continue
		}
		for _, e := range op.removes {
			if int(e.U) < g.N() && int(e.V) < g.N() {
				g.RemoveEdge(e.U, e.V)
			}
		}
		for _, e := range op.inserts {
			if hi := max(e.U, e.V); int(hi) >= g.N() {
				g.Grow(int(hi) + 1)
			}
			g.AddEdge(e.U, e.V)
		}
	}
	return g
}

func assertGraphEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("replayed graph n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	wc, _ := bz.Decompose(want)
	gc, _ := bz.Decompose(got)
	for v := range wc {
		if gc[v] != wc[v] {
			t.Fatalf("replayed core[%d] = %d, want %d", v, gc[v], wc[v])
		}
	}
	for v := int32(0); int(v) < want.N(); v++ {
		for _, w := range want.Adj(v) {
			if !got.HasEdge(v, w) {
				t.Fatalf("replayed graph missing edge (%d,%d)", v, w)
			}
		}
	}
}

// TestOpLogReplayRebuildsGraph drives randomized pipelined updates —
// inserts, removes, duplicate inserts, explicit growth, inserts beyond
// the current universe — and asserts after every flush that replaying
// the logged op stream onto a clone of the base graph reproduces the
// maintainer's graph exactly. This is the invariant durability rests on:
// checkpoint + logged tail = live state.
func TestOpLogReplayRebuildsGraph(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	rng := rand.New(rand.NewSource(7))
	const n = 300
	base := gen.ErdosRenyi(n, 2*n, 11)
	logd := &recordingLog{}
	m := New(base.Clone(), WithOpLog(logd), WithWorkers(2))
	defer m.Close()

	for round := 0; round < rounds; round++ {
		switch rng.Intn(5) {
		case 0: // removals of (mostly) existing edges
			var edges []graph.Edge
			for i := 0; i < 5; i++ {
				u := int32(rng.Intn(m.N()))
				if a := m.Graph().Adj(u); len(a) > 0 {
					edges = append(edges, graph.Edge{U: u, V: a[rng.Intn(len(a))]})
				}
			}
			m.RemoveEdges(edges)
		case 1: // explicit growth
			m.AddVertices(1 + rng.Intn(3))
		case 2: // inserts beyond the universe (implicit growth)
			hi := int32(m.N() + rng.Intn(5))
			m.InsertEdge(int32(rng.Intn(m.N())), hi)
		case 3: // async burst, coalesced
			var pend []*Pending
			for i := 0; i < 4; i++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u != v {
					pend = append(pend, m.InsertEdgesAsync([]graph.Edge{{U: u, V: v}}))
				}
			}
			for _, p := range pend {
				p.Wait()
			}
		default: // plain inserts, duplicates included
			var edges []graph.Edge
			for i := 0; i < 6; i++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u != v {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
			m.InsertEdges(edges)
		}
		m.Flush()
		assertGraphEqual(t, logd.replay(base), m.Graph())
	}
}

// TestOpLogAfterClose verifies the synchronous post-Close path
// (applyDirect) logs ops too.
func TestOpLogAfterClose(t *testing.T) {
	logd := &recordingLog{}
	base := gen.ErdosRenyi(50, 100, 3)
	m := New(base.Clone(), WithOpLog(logd))
	m.InsertEdge(1, 2)
	m.Close()
	m.InsertEdge(3, 4) // applyDirect path
	m.RemoveEdge(1, 2)
	assertGraphEqual(t, logd.replay(base), m.Graph())
}
