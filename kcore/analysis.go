package kcore

import (
	"sort"

	"repro/graph"
	"repro/internal/bz"
)

// This file holds the analysis helpers applications build on maintained
// core numbers (the paper's §1 application list: dense-community
// monitoring, influential-spreader detection, hierarchy queries).
// Helpers that only need core numbers read the latest published snapshot;
// helpers that walk the graph structure run inside a pipeline barrier, at
// a quiescent point ordered after every earlier update.

// Degeneracy returns the graph's degeneracy — the maximum core number —
// together with a degeneracy ordering (a peeling order; iterating it and
// removing vertices left to right leaves each vertex with at most
// `degeneracy` later neighbors). The ordering is recomputed from the
// graph at a quiescent point.
func (m *Maintainer) Degeneracy() (int32, []int32) {
	var (
		deg   int32
		order []int32
	)
	m.barrier(func() {
		var cores []int32
		cores, order = bz.Decompose(m.eng.g)
		deg = bz.MaxCore(cores)
	})
	return deg, order
}

// KCoreVertices returns the vertices of the k-core: all v with core(v) >= k,
// in ascending id order. O(n) over the latest snapshot — no recomputation.
func (m *Maintainer) KCoreVertices(k int32) []int32 {
	var out []int32
	m.view().ForEachPage(func(start int32, page []int32) {
		for i, c := range page {
			if c >= k {
				out = append(out, start+int32(i))
			}
		}
	})
	return out
}

// KCoreSubgraph extracts the k-core as a standalone graph plus the mapping
// from new ids to original vertex ids. Vertices outside the k-core are
// dropped; edges are kept iff both endpoints survive. The edges are read
// at a quiescent point.
func (m *Maintainer) KCoreSubgraph(k int32) (*graph.Graph, []int32) {
	var (
		members []int32
		edges   []graph.Edge
	)
	m.barrier(func() {
		back := make(map[int32]int32)
		m.eng.view().ForEachPage(func(start int32, page []int32) {
			for i, c := range page {
				if c >= k {
					v := start + int32(i)
					back[v] = int32(len(members))
					members = append(members, v)
				}
			}
		})
		for _, v := range members {
			nv := back[v]
			for _, w := range m.eng.g.Adj(v) {
				if nw, ok := back[w]; ok && nv < nw {
					edges = append(edges, graph.Edge{U: nv, V: nw})
				}
			}
		}
	})
	return graph.MustFromEdges(len(members), edges), members
}

// CoreLevels returns the non-empty core values in ascending order — the
// levels of the k-core hierarchy.
func (m *Maintainer) CoreLevels() []int32 {
	hist := m.view().Hist
	out := make([]int32, 0, len(hist))
	for c, n := range hist {
		if n > 0 {
			out = append(out, int32(c))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopCoreVertices returns the vertices of the innermost (maximum) core —
// the densest region, where the paper's motivating applications look for
// super-spreaders.
func (m *Maintainer) TopCoreVertices() []int32 {
	s := m.view()
	var out []int32
	s.ForEachPage(func(start int32, page []int32) {
		for i, c := range page {
			if c >= s.MaxCore {
				out = append(out, start+int32(i))
			}
		}
	})
	return out
}

// RemoveVertex removes every edge incident to v as one maintenance batch
// (the paper notes vertex deletions reduce to edge-removal sequences,
// §3.2). The vertex itself remains in the graph as an isolated, core-0
// vertex. A negative or unseen id is a no-op, like any other removal
// naming a vertex outside the universe. Returns the batch result.
func (m *Maintainer) RemoveVertex(v int32) BatchResult {
	var adj []int32
	m.barrier(func() {
		if v >= 0 && int(v) < m.eng.g.N() {
			adj = append(adj, m.eng.g.Adj(v)...)
		}
	})
	batch := make([]graph.Edge, 0, len(adj))
	for _, w := range adj {
		batch = append(batch, graph.Edge{U: v, V: w})
	}
	return m.RemoveEdges(batch)
}
