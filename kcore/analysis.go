package kcore

import (
	"sort"

	"repro/graph"
	"repro/internal/bz"
)

// This file holds the analysis helpers applications build on maintained
// core numbers (the paper's §1 application list: dense-community
// monitoring, influential-spreader detection, hierarchy queries).

// Degeneracy returns the graph's degeneracy — the maximum core number —
// together with a degeneracy ordering (a peeling order; iterating it and
// removing vertices left to right leaves each vertex with at most
// `degeneracy` later neighbors). The ordering is recomputed from the
// current graph.
func (m *Maintainer) Degeneracy() (int32, []int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cores, order := bz.Decompose(m.g)
	return bz.MaxCore(cores), order
}

// KCoreVertices returns the vertices of the k-core: all v with core(v) >= k,
// in ascending id order. O(n) over maintained values — no recomputation.
func (m *Maintainer) KCoreVertices(k int32) []int32 {
	var out []int32
	for v, c := range m.CoreNumbers() {
		if c >= k {
			out = append(out, int32(v))
		}
	}
	return out
}

// KCoreSubgraph extracts the k-core as a standalone graph plus the mapping
// from new ids to original vertex ids. Vertices outside the k-core are
// dropped; edges are kept iff both endpoints survive.
func (m *Maintainer) KCoreSubgraph(k int32) (*graph.Graph, []int32) {
	members := m.KCoreVertices(k)
	back := make(map[int32]int32, len(members))
	for i, v := range members {
		back[v] = int32(i)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var edges []graph.Edge
	for _, v := range members {
		nv := back[v]
		for _, w := range m.g.Adj(v) {
			if nw, ok := back[w]; ok && nv < nw {
				edges = append(edges, graph.Edge{U: nv, V: nw})
			}
		}
	}
	return graph.FromEdges(len(members), edges), members
}

// CoreLevels returns the non-empty core values in ascending order — the
// levels of the k-core hierarchy.
func (m *Maintainer) CoreLevels() []int32 {
	seen := map[int32]bool{}
	for _, c := range m.CoreNumbers() {
		seen[c] = true
	}
	out := make([]int32, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopCoreVertices returns the vertices of the innermost (maximum) core —
// the densest region, where the paper's motivating applications look for
// super-spreaders.
func (m *Maintainer) TopCoreVertices() []int32 {
	return m.KCoreVertices(m.MaxCore())
}

// RemoveVertex removes every edge incident to v as one maintenance batch
// (the paper notes vertex deletions reduce to edge-removal sequences,
// §3.2). The vertex itself remains in the graph as an isolated, core-0
// vertex. Returns the batch result.
func (m *Maintainer) RemoveVertex(v int32) BatchResult {
	m.mu.Lock()
	adj := append([]int32(nil), m.g.Adj(v)...)
	m.mu.Unlock()
	batch := make([]graph.Edge, 0, len(adj))
	for _, w := range adj {
		batch = append(batch, graph.Edge{U: v, V: w})
	}
	return m.RemoveEdges(batch)
}
