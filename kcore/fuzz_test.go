package kcore

import (
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

// FuzzMixedBatch is the native differential fuzzer over the engine
// registry: the input bytes decode into a script of mixed insert/remove
// batches over a small growable graph, every registered engine applies
// the same script through the Engine interface, and after every batch
// each engine's cores must be byte-equal to a fresh BZ decomposition of a
// mirror graph (and the Changed reports must cover the moved vertices —
// the contract delta snapshot publication rests on). A seed corpus lives
// in testdata/fuzz/FuzzMixedBatch; `make fuzz-smoke` runs a 10s smoke
// pass in CI.
//
// Encoding: the stream is consumed in 3-byte ops — flags, u, v. Vertices
// are taken mod n+16, so the script names ids beyond the 48-vertex base
// graph: every batch runs through the pipeline's universe scan (grow for
// unseen insert endpoints, drop unseen removals), differentially fuzzing
// auto-grow. Bit 0 of flags selects insert (0) or remove (1); bit 1 set
// flushes the pending ops as one batch after this op; bit 2 set negates u
// (a malformed id the scan must drop). Self-loops are kept in the script
// (engines must skip them).
func FuzzMixedBatch(f *testing.F) {
	f.Add([]byte("\x00\x01\x02\x00\x03\x04\x02\x05\x06"))      // two inserts, then flush
	f.Add([]byte("\x01\x01\x02\x03\x07\x08\x00\x10\x10"))      // removes + self-loop insert
	f.Add([]byte("insert-remove-insert the same edge twice!")) // printable soup
	f.Add([]byte("\x00\x38\x02\x00\x3b\x39\x02\x05\x3e" +
		"\x01\x38\x02\x04\x3b\x01\x02\x3c\x3d")) // growth: ids past n, negative u, unseen removal
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 600 {
			data = data[:600] // bound the per-input work
		}
		const n = 48
		base := gen.ErdosRenyi(n, 96, 1234)
		mirror := base.Clone()
		algs := Algorithms()
		engines := make([]Engine, len(algs))
		for i, alg := range algs {
			engines[i] = newEngine(alg, base.Clone(), 3)
		}

		prev := make([][]int32, len(engines))
		for i, eng := range engines {
			prev[i] = eng.Cores()
		}
		var removes, inserts []graph.Edge
		flush := func() {
			if len(removes) == 0 && len(inserts) == 0 {
				return
			}
			// The pipeline's pre-round universe scan, verbatim: malformed
			// inserts dropped, growth for unseen insert endpoints, then
			// removals filtered against the grown N.
			inserts = filterEdges(inserts, func(e graph.Edge) bool { return e.U >= 0 && e.V >= 0 })
			if target := growTarget(inserts, mirror.N()); target > mirror.N() {
				mirror.Grow(target)
				for i := range engines {
					engines[i].Grow(target)
					prev[i] = append(prev[i], make([]int32, target-len(prev[i]))...)
				}
			}
			nv := int32(mirror.N())
			removes = filterEdges(removes, func(e graph.Edge) bool {
				return e.U >= 0 && e.V >= 0 && e.U < nv && e.V < nv
			})
			// Same order the pipeline applies a coalesced mixed batch:
			// removals first, then insertions.
			for _, e := range removes {
				mirror.RemoveEdge(e.U, e.V)
			}
			for _, e := range inserts {
				if e.U != e.V {
					mirror.AddEdge(e.U, e.V)
				}
			}
			truth, _ := bz.Decompose(mirror)
			for i, eng := range engines {
				var moved []int32
				if len(removes) > 0 {
					moved = append(moved, eng.ApplyRemove(removes).Changed...)
				}
				if len(inserts) > 0 {
					moved = append(moved, eng.ApplyInsert(inserts).Changed...)
				}
				got := eng.Cores()
				for v := range truth {
					if got[v] != truth[v] {
						t.Fatalf("%v: core[%d] = %d, want %d (removes %v inserts %v)",
							algs[i], v, got[v], truth[v], removes, inserts)
					}
				}
				// A vertex whose core moved but is missing from Changed
				// would leave a stale page after delta publication.
				reported := make(map[int32]bool, len(moved))
				for _, v := range moved {
					reported[v] = true
				}
				for v := range got {
					if got[v] != prev[i][v] && !reported[int32(v)] {
						t.Fatalf("%v: core[%d] moved %d→%d but is not in Changed",
							algs[i], v, prev[i][v], got[v])
					}
				}
				prev[i] = got
			}
			removes, inserts = removes[:0], inserts[:0]
		}
		for i := 0; i+2 < len(data); i += 3 {
			flags := data[i]
			u, v := int32(data[i+1])%(n+16), int32(data[i+2])%(n+16)
			if flags&4 != 0 {
				u = -u - 1 // malformed id: the universe scan must drop it
			}
			e := graph.Edge{U: u, V: v}
			if flags&1 == 0 {
				inserts = append(inserts, e)
			} else {
				removes = append(removes, e)
			}
			if flags&2 != 0 || len(inserts)+len(removes) >= 8 {
				flush()
			}
		}
		flush()
		for i, eng := range engines {
			if err := eng.Check(); err != nil {
				t.Fatalf("%v: %v", algs[i], err)
			}
		}
	})
}
