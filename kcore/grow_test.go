package kcore

import (
	"fmt"
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

// TestInsertEdgesAutoGrow: the serving pipeline must grow the vertex
// universe for insert endpoints beyond N — on every engine — leaving the
// maintainer byte-equal to a fresh decomposition of the grown graph.
func TestInsertEdgesAutoGrow(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			base := gen.ErdosRenyi(60, 180, 301)
			m := New(base, WithAlgorithm(alg), WithWorkers(3))
			defer m.Close()

			if m.N() != 60 {
				t.Fatalf("N = %d, want 60", m.N())
			}
			// A batch naming fresh vertices 60..63, wired to the old range
			// and to each other (a triangle, so growth changes cores too).
			res := m.InsertEdges([]graph.Edge{
				{U: 10, V: 60}, {U: 61, V: 11},
				{U: 62, V: 63}, {U: 63, V: 60}, {U: 60, V: 62},
			})
			if res.Applied != 5 {
				t.Fatalf("applied %d of 5 grown-range edges", res.Applied)
			}
			if m.N() != 64 {
				t.Fatalf("N = %d after auto-grow, want 64", m.N())
			}
			if c := m.CoreOf(62); c != 2 {
				t.Fatalf("core of grown triangle vertex = %d, want 2", c)
			}
			st := m.ServingStats()
			if st.GrowPublishes == 0 {
				t.Fatal("growth must publish through the grow path")
			}
			// The post-growth batch publication must stay on the delta
			// path: growth must not degrade publication to O(n) rebuilds.
			if st.DeltaPublishes == 0 || st.FullPublishes != 1 {
				t.Fatalf("publish counters %+v: want delta publishes and only the initial full", st)
			}
			if err := m.Check(); err != nil {
				t.Fatal(err)
			}
			truth := Decompose(m.Graph())
			for v, want := range truth {
				if got := m.CoreOf(int32(v)); got != want {
					t.Fatalf("core[%d] = %d, want %d", v, got, want)
				}
			}
		})
	}
}

// TestAddVerticesPreallocates: explicit growth is visible immediately
// (read-your-writes) and the new range accepts edges.
func TestAddVerticesPreallocates(t *testing.T) {
	m := New(gen.ErdosRenyi(40, 120, 302))
	defer m.Close()
	if n := m.AddVertices(10); n != 50 || m.N() != 50 {
		t.Fatalf("AddVertices = %d, N = %d, want 50", n, m.N())
	}
	if n := m.AddVertices(0); n != 50 {
		t.Fatalf("AddVertices(0) = %d, want 50", n)
	}
	if c := m.CoreOf(49); c != 0 {
		t.Fatalf("pre-allocated vertex core = %d, want 0", c)
	}
	if res := m.InsertEdge(49, 0); res.Applied != 1 {
		t.Fatal("edge to pre-allocated vertex must apply")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMalformedAndUnseenOpsDropped: negative-endpoint ops are dropped
// from both halves, and removals naming unseen vertices are dropped
// without growing the universe.
func TestMalformedAndUnseenOpsDropped(t *testing.T) {
	m := New(gen.ErdosRenyi(30, 90, 303))
	defer m.Close()
	if res := m.InsertEdges([]graph.Edge{{U: -1, V: 5}, {U: 3, V: -9}}); res.Applied != 0 {
		t.Fatalf("negative-endpoint inserts applied: %+v", res)
	}
	if res := m.RemoveEdges([]graph.Edge{{U: -2, V: 1}, {U: 4, V: 1000}}); res.Applied != 0 {
		t.Fatalf("malformed/unseen removals applied: %+v", res)
	}
	if m.N() != 30 {
		t.Fatalf("N = %d: removals/malformed ops must not grow the universe", m.N())
	}
	// Mixed batch: the valid op must survive the drops.
	if res := m.InsertEdges([]graph.Edge{{U: -1, V: 5}, {U: 0, V: 35}}); res.Applied != 1 {
		t.Fatalf("valid op dropped alongside malformed one: %+v", res)
	}
	if m.N() != 36 {
		t.Fatalf("N = %d, want 36", m.N())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxVerticesCeiling: ids at or beyond the WithMaxVertices ceiling
// are dropped instead of growing the universe, and AddVertices clamps —
// one corrupted id must not wedge the applier in a huge allocation.
func TestMaxVerticesCeiling(t *testing.T) {
	m := New(gen.ErdosRenyi(30, 90, 305), WithMaxVertices(40))
	defer m.Close()
	if res := m.InsertEdges([]graph.Edge{{U: 0, V: 1 << 30}, {U: 2, V: 40}}); res.Applied != 0 {
		t.Fatalf("beyond-ceiling inserts applied: %+v", res)
	}
	if m.N() != 30 {
		t.Fatalf("N = %d: beyond-ceiling ids must not grow", m.N())
	}
	if res := m.InsertEdge(3, 39); res.Applied != 1 {
		t.Fatal("insert below the ceiling must grow and apply")
	}
	if n := m.AddVertices(100); n != 40 || m.N() != 40 {
		t.Fatalf("AddVertices must clamp to the ceiling, got %d", n)
	}
	// The ceiling never cuts below an already-bigger construction graph.
	bigBase := gen.ErdosRenyi(50, 150, 306)
	free := gen.SampleNonEdges(bigBase, 1, 308)[0]
	big := New(bigBase, WithMaxVertices(10))
	defer big.Close()
	if res := big.InsertEdge(free.U, free.V); res.Applied != 1 {
		t.Fatal("in-universe insert must apply despite a lower ceiling")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveVertexUnseen: vertex removal outside the universe is a
// no-op, consistent with unseen-edge removals.
func TestRemoveVertexUnseen(t *testing.T) {
	m := New(gen.ErdosRenyi(20, 60, 307))
	defer m.Close()
	for _, v := range []int32{-3, 20, 1000} {
		if res := m.RemoveVertex(v); res.Applied != 0 {
			t.Fatalf("RemoveVertex(%d) applied %d edges", v, res.Applied)
		}
	}
	if m.N() != 20 {
		t.Fatalf("N = %d after unseen removals, want 20", m.N())
	}
	if res := m.RemoveVertex(5); res.Applied == 0 {
		t.Fatal("in-universe RemoveVertex must strip incident edges")
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestHeldViewsStableAcrossGrowth is the growth race test: readers hold
// pre-growth snapshots and hammer queries while the applier grows the
// universe and publishes post-growth batches. Held views must stay
// byte-stable (their N and every core), which the race detector verifies
// against the COW publication path under `make race`.
func TestHeldViewsStableAcrossGrowth(t *testing.T) {
	for _, alg := range Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const baseN = 200
			base := gen.ErdosRenyi(baseN, 800, 304)
			m := New(base, WithAlgorithm(alg), WithWorkers(3))
			defer m.Close()

			held := m.Snapshot()
			wantN := held.N()
			wantCores := held.CoreNumbers()

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					v := int32(r)
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Fresh snapshots may see any N >= baseN; the held
						// one must never move.
						s := m.Snapshot()
						if s.N() < baseN {
							panic(fmt.Sprintf("snapshot N shrank to %d", s.N()))
						}
						m.CoreOf(v % int32(baseN))
						if held.N() != wantN {
							panic("held view's N changed")
						}
						held.CoreOf(v % int32(wantN))
						v++
					}
				}(r)
			}

			next := int32(baseN)
			for round := 0; round < 30; round++ {
				// Mixed traffic: edges inside the old range, plus arrivals
				// naming fresh vertices (auto-grow mid-run).
				m.InsertEdges([]graph.Edge{
					{U: next % baseN, V: (next + 7) % baseN},
					{U: next, V: next % baseN},
					{U: next + 1, V: next},
				})
				m.RemoveEdge(next%baseN, (next+7)%baseN)
				next += 2
			}
			m.Flush()
			close(stop)
			wg.Wait()

			if held.N() != wantN {
				t.Fatalf("held view N = %d, want %d", held.N(), wantN)
			}
			for v, want := range wantCores {
				if got := held.CoreOf(int32(v)); got != want {
					t.Fatalf("held view core[%d] = %d, want %d", v, got, want)
				}
			}
			if m.N() != int(next) {
				t.Fatalf("N = %d after churn, want %d", m.N(), next)
			}
			if err := m.Check(); err != nil {
				t.Fatal(err)
			}
			truth, _ := bz.Decompose(m.Graph())
			snap := m.Snapshot()
			for v, want := range truth {
				if got := snap.CoreOf(int32(v)); got != want {
					t.Fatalf("core[%d] = %d, want %d", v, got, want)
				}
			}
		})
	}
}
