package kcore

import (
	"sync"
	"time"

	"repro/graph"
	"repro/internal/pcore"
	"repro/internal/stats"
)

// The update pipeline is the serving layer's write path: concurrent
// callers enqueue ops onto a channel-backed queue and a dedicated applier
// goroutine drains it, coalescing everything pending into mixed
// insert/remove batches (last op per canonical edge wins, so canceling
// insert/remove pairs annihilate), runs them through the engine, publishes
// a fresh read snapshot at quiescence, and completes the per-caller
// futures. Batches therefore still serialize — the engines require it —
// but callers no longer serialize on a mutex: a burst of W single-edge
// writers costs one engine round, not W.

type opKind uint8

const (
	opInsert opKind = iota
	opRemove
	opBarrier
)

// updateOp is one enqueued request; done is its future (buffered, capacity
// 1, completed exactly once by the applier or the post-Close fallback).
type updateOp struct {
	kind  opKind
	edges []graph.Edge
	fn    func()    // opBarrier only: runs in the applier at quiescence
	enq   time.Time // submission time; feeds the coalesce-wait histogram
	done  chan BatchResult
}

const (
	// opQueueCap is the channel buffer: writers beyond it block until the
	// applier catches up (closed-loop backpressure).
	opQueueCap = 256
	// maxDrainOps bounds one coalesced drain so a continuous write storm
	// cannot starve snapshot publication indefinitely.
	maxDrainOps = 1024
)

type pipeline struct {
	ops    chan *updateOp
	exited chan struct{} // closed when the applier has drained and returned

	// mu guards closed and makes enqueue-vs-Close safe: senders hold the
	// read side across the channel send, Close takes the write side before
	// closing ops, so no send can hit a closed channel.
	mu     sync.RWMutex
	closed bool

	metrics pcore.ServeMetrics
	updLat  stats.LatencyRecorder
	pm      *PipelineMetrics
}

func newPipeline(pm *PipelineMetrics) *pipeline {
	return &pipeline{
		ops:    make(chan *updateOp, opQueueCap),
		exited: make(chan struct{}),
		pm:     pm,
	}
}

// enqueue submits op and blocks until the applier completes its future.
// After Close the op is applied synchronously instead, so a Maintainer
// keeps working (single-threaded) once its pipeline is shut down.
func (p *pipeline) enqueue(eng *engine, op *updateOp) BatchResult {
	return p.submit(eng, op).Wait()
}

// Pending is the future of an asynchronously submitted update: the op is
// in the pipeline (in submission order), its result not yet claimed. A
// caller that submits a run of Pendings before waiting on any lets the
// applier coalesce the whole run into shared engine batches — the
// mechanism the RESP server uses to turn one connection's pipelined
// write burst into one engine round. Wait is not safe for concurrent
// use; hand a Pending to at most one waiter.
type Pending struct {
	p      *pipeline
	op     *updateOp
	start  time.Time
	res    BatchResult
	waited bool
}

// Wait blocks until the op's coalesced batch has been applied and its
// snapshot published, then returns the shared BatchResult (idempotent
// after the first call).
func (pd *Pending) Wait() BatchResult {
	if !pd.waited {
		pd.res = <-pd.op.done
		pd.waited = true
		if pd.op.kind != opBarrier {
			pd.p.updLat.Record(time.Since(pd.start))
		}
	}
	return pd.res
}

// submit enqueues op without waiting and returns its future. After Close
// the op is applied synchronously before submit returns (Wait then just
// hands back the result), so async callers keep working once the
// pipeline is shut down.
func (p *pipeline) submit(eng *engine, op *updateOp) *Pending {
	pd := &Pending{p: p, op: op, start: time.Now()}
	op.enq = pd.start
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		<-p.exited // the applier still owns the engine until it returns
		op.done <- eng.applyDirect(op)
		return pd
	}
	p.metrics.QueueDepth.Add(1)
	p.ops <- op
	// Incremented after the send: once a reader of the counter observes
	// the op it is guaranteed to be in the channel, in enqueue order.
	p.metrics.Enqueued.Add(1)
	p.mu.RUnlock()
	return pd
}

// close shuts the pipeline down. The applier finishes every op already
// enqueued before exiting; with wait set, close blocks until it has.
func (p *pipeline) close(wait bool) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.ops)
	}
	p.mu.Unlock()
	if wait {
		<-p.exited
	}
}

// run is the applier loop. It blocks for the next op, greedily drains
// whatever else is already queued, and processes the run. Ranging over the
// channel drains every buffered op after close before exiting.
func (p *pipeline) run(eng *engine) {
	defer close(p.exited)
	pending := make([]*updateOp, 0, 64)
	for first := range p.ops {
		pending = append(pending[:0], first)
	drain:
		for len(pending) < maxDrainOps {
			select {
			case op, ok := <-p.ops:
				if !ok {
					break drain
				}
				pending = append(pending, op)
			default:
				break drain
			}
		}
		p.process(eng, pending)
	}
}

// process splits the drained ops at barriers: each maximal run of update
// ops becomes one coalesced engine batch, and each barrier executes at the
// quiescent point its enqueue order put it at, so Flush keeps exact
// read-your-writes semantics.
func (p *pipeline) process(eng *engine, pending []*updateOp) {
	i := 0
	for i < len(pending) {
		if pending[i].kind == opBarrier {
			b := pending[i]
			i++
			if b.fn != nil {
				b.fn()
			}
			p.metrics.Flushes.Add(1)
			p.finish(b, BatchResult{})
			continue
		}
		j := i
		for j < len(pending) && pending[j].kind != opBarrier {
			j++
		}
		p.applySegment(eng, pending[i:j])
		i = j
	}
}

// applySegment coalesces one run of update ops, grows the vertex universe
// to cover any unseen insert endpoints (dropping malformed and
// guaranteed-absent ops; see engine.prepareBatch), applies the mixed
// batch (removals, then insertions — the two edge sets are disjoint after
// coalescing, so the order is immaterial to the final state), publishes
// the post-batch snapshot, and completes every future with the shared
// result of the coalesced batch.
func (p *pipeline) applySegment(eng *engine, seg []*updateOp) {
	removes, inserts, canceled := coalesce(seg)
	start := time.Now()
	// The segment's oldest op has waited longest; its queue time is the
	// batch's coalesce wait (ops applied directly after Close carry no
	// enqueue stamp and are skipped).
	if enq := seg[0].enq; !enq.IsZero() {
		p.pm.CoalesceWait.ObserveDuration(start.Sub(enq))
	}
	removes, inserts = eng.prepareBatch(removes, inserts)
	eng.logBatch(removes, inserts)
	var res BatchResult
	if len(removes) > 0 {
		eng.removeBatch(removes, &res)
	}
	if len(inserts) > 0 {
		eng.insertBatch(inserts, &res)
	}
	res.Duration = time.Since(start)
	res.Coalesced = len(seg)
	p.pm.Apply.ObserveDuration(res.Duration)
	pubStart := time.Now()
	eng.publishAfter(&res)
	p.pm.Publish.ObserveDuration(time.Since(pubStart))
	eng.logEpoch()
	// The changed set is dead after publication; don't let callers that
	// retain their BatchResult pin a batch's whole ⋃V* in memory.
	res.changed = nil
	p.metrics.Batches.Add(1)
	p.metrics.BatchedOps.Add(int64(len(seg)))
	p.metrics.CanceledOps.Add(int64(canceled))
	for _, op := range seg {
		p.finish(op, res)
	}
}

func (p *pipeline) finish(op *updateOp, res BatchResult) {
	p.metrics.QueueDepth.Add(-1)
	op.done <- res
}

// coalesce flattens a segment of update ops into disjoint remove/insert
// batches. For every canonical edge the last enqueued op wins — a valid
// linearization, since callers in the same drain are concurrent and the
// engines skip duplicate insertions and absent removals, so replaying only
// the final op per edge reaches the same quiescent state. canceled counts
// ops superseded by an opposite-kind op (insert+remove pairs that
// annihilated within the drain).
func coalesce(seg []*updateOp) (removes, inserts []graph.Edge, canceled int) {
	if len(seg) == 1 {
		// Fast path: a lone op keeps its batch verbatim (exact seed
		// semantics, including caller-chosen edge order).
		if seg[0].kind == opRemove {
			return seg[0].edges, nil, 0
		}
		return nil, seg[0].edges, 0
	}
	last := make(map[graph.Edge]opKind)
	var order []graph.Edge // first-seen order keeps batches deterministic
	for _, op := range seg {
		for _, e := range op.edges {
			ne := e.Norm()
			prev, seen := last[ne]
			if !seen {
				order = append(order, ne)
			} else if prev != op.kind {
				canceled++
			}
			last[ne] = op.kind
		}
	}
	for _, e := range order {
		if last[e] == opRemove {
			removes = append(removes, e)
		} else {
			inserts = append(inserts, e)
		}
	}
	return removes, inserts, canceled
}
