// Package kcore is the public API of this repository: core-number
// maintenance for dynamic graphs, reproducing "Parallel Order-Based Core
// Maintenance in Dynamic Graphs" (Guo & Sekerinski).
//
// The core number of a vertex is the largest k such that the vertex belongs
// to a subgraph in which every vertex has degree at least k. A Maintainer
// tracks the core numbers of a dynamic graph as batches of edges are
// inserted and removed, without recomputing from scratch.
//
// Quick start:
//
//	g := gen.ErdosRenyi(100_000, 800_000, 1)
//	m := kcore.New(g, kcore.WithWorkers(8))
//	m.InsertEdges(batch)          // batch of graph.Edge
//	k := m.CoreOf(42)
//
// Four maintenance engines are available (see Algorithm):
//
//   - ParallelOrder (default) — the paper's contribution: per-vertex CAS
//     locks, a concurrent order-maintenance structure for the k-order, and
//     per-worker priority queues; parallelism is independent of the core
//     number distribution.
//   - SequentialOrder — the Simplified-Order algorithm, one edge at a time.
//   - Traversal — the classic subcore-DFS algorithm, one edge at a time.
//   - JoinEdgeSet — the JEI/JER baseline: batch preprocessing plus
//     level-parallel Traversal.
//
// A Maintainer serializes its batches internally: insertions and removals
// never overlap, matching the algorithms' requirements.
package kcore

import (
	"fmt"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/core"
	"repro/internal/jes"
	"repro/internal/pcore"
	"repro/internal/traversal"
)

// Algorithm selects the maintenance engine.
type Algorithm int

const (
	// ParallelOrder is the paper's Parallel-Order algorithm (default).
	ParallelOrder Algorithm = iota
	// SequentialOrder is the sequential Simplified-Order algorithm.
	SequentialOrder
	// Traversal is the sequential subcore-traversal algorithm.
	Traversal
	// JoinEdgeSet is the JEI/JER baseline (level-parallel Traversal).
	JoinEdgeSet
)

// String returns the algorithm's name as used in the paper's plots.
func (a Algorithm) String() string {
	switch a {
	case ParallelOrder:
		return "ParallelOrder"
	case SequentialOrder:
		return "SequentialOrder"
	case Traversal:
		return "Traversal"
	case JoinEdgeSet:
		return "JoinEdgeSet"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Option configures a Maintainer.
type Option func(*config)

type config struct {
	alg     Algorithm
	workers int
}

// WithAlgorithm selects the maintenance engine; the default is
// ParallelOrder.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.alg = a } }

// WithWorkers sets the number of worker goroutines used by the parallel
// engines (ParallelOrder, JoinEdgeSet). Sequential engines ignore it.
// The default is 1.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// BatchResult reports the outcome of one batch.
type BatchResult struct {
	// Applied counts the edges that changed the graph (duplicates,
	// self-loops and absent removals are skipped).
	Applied int
	// ChangedVertices is Σ|V*|: how many core-number updates the batch
	// caused in total.
	ChangedVertices int
	// VPlusSizes holds per-edge |V+| (insertions with the Order engines)
	// or |V*| (removals) — the data behind the paper's Fig. 1 histogram.
	// Nil for the Traversal/JoinEdgeSet engines.
	VPlusSizes []int
	// Duration is the wall-clock time of the batch.
	Duration time.Duration
	// Contention reports the parallel engine's synchronization counters
	// (zero value for the other engines): how often conditional locks
	// aborted, priority queues rebuilt their label snapshots, and removal
	// propagations re-ran — the observable footprint of the paper's
	// blocking-chain analysis (§4).
	Contention Contention
}

// Contention is the set of synchronization counters of one ParallelOrder
// batch; see BatchResult.Contention.
type Contention struct {
	LockAborts    int64 // conditional locks abandoned on a core change
	QueueRebuilds int64 // priority-queue label re-snapshots (Algorithm 9)
	RemovalRedos  int64 // removal propagation redo rounds (Algorithm 8)
	Evictions     int64 // Backward repositionings
}

// Maintainer tracks core numbers of one dynamic graph. Create it with New;
// all methods are safe for concurrent use (batches serialize internally).
type Maintainer struct {
	mu  sync.Mutex
	cfg config
	g   *graph.Graph
	ost *core.State      // order-based engines
	tst *traversal.State // traversal-based engines
}

// New builds a Maintainer over g, computing the initial core decomposition
// (and, for the order-based engines, the initial k-order) with the BZ
// algorithm. The Maintainer owns g afterwards: mutate the graph only
// through InsertEdges/RemoveEdges.
func New(g *graph.Graph, opts ...Option) *Maintainer {
	cfg := config{alg: ParallelOrder, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	m := &Maintainer{cfg: cfg, g: g}
	switch cfg.alg {
	case Traversal, JoinEdgeSet:
		m.tst = traversal.NewState(g)
	default:
		m.ost = core.NewState(g)
	}
	return m
}

// Graph returns the underlying graph. Treat it as read-only.
func (m *Maintainer) Graph() *graph.Graph { return m.g }

// Algorithm returns the engine this Maintainer runs.
func (m *Maintainer) Algorithm() Algorithm { return m.cfg.alg }

// Workers returns the configured worker count.
func (m *Maintainer) Workers() int { return m.cfg.workers }

// CoreOf returns the current core number of v.
func (m *Maintainer) CoreOf(v int32) int32 {
	if m.tst != nil {
		return m.tst.CoreOf(v)
	}
	return m.ost.CoreOf(v)
}

// CoreNumbers returns a snapshot of all core numbers.
func (m *Maintainer) CoreNumbers() []int32 {
	if m.tst != nil {
		return m.tst.CoreNumbers()
	}
	return m.ost.CoreNumbers()
}

// MaxCore returns the largest current core number.
func (m *Maintainer) MaxCore() int32 { return bz.MaxCore(m.CoreNumbers()) }

// CoreHistogram returns the number of vertices per core value.
func (m *Maintainer) CoreHistogram() []int64 { return bz.CoreHistogram(m.CoreNumbers()) }

// InsertEdge inserts a single edge; shorthand for a one-edge batch.
func (m *Maintainer) InsertEdge(u, v int32) BatchResult {
	return m.InsertEdges([]graph.Edge{{U: u, V: v}})
}

// RemoveEdge removes a single edge; shorthand for a one-edge batch.
func (m *Maintainer) RemoveEdge(u, v int32) BatchResult {
	return m.RemoveEdges([]graph.Edge{{U: u, V: v}})
}

// InsertEdges inserts a batch of edges and updates every core number.
// Self-loops and already-present edges are skipped.
func (m *Maintainer) InsertEdges(edges []graph.Edge) BatchResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	var res BatchResult
	switch m.cfg.alg {
	case ParallelOrder:
		stats, snap := pcore.InsertEdgesMetered(m.ost, edges, m.cfg.workers, nil)
		res.Contention = contentionFrom(snap)
		res.VPlusSizes = make([]int, 0, len(stats))
		for _, s := range stats {
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
				res.VPlusSizes = append(res.VPlusSizes, s.VPlus)
			}
		}
	case SequentialOrder:
		res.VPlusSizes = make([]int, 0, len(edges))
		for _, e := range edges {
			s := m.ost.InsertEdgeSeq(e.U, e.V)
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
				res.VPlusSizes = append(res.VPlusSizes, s.VPlus)
			}
		}
	case Traversal:
		for _, e := range edges {
			s := m.tst.InsertEdge(e.U, e.V)
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
			}
		}
	case JoinEdgeSet:
		s := jes.InsertEdges(m.tst, edges, m.cfg.workers)
		res.Applied = s.Applied
	}
	res.Duration = time.Since(start)
	return res
}

// RemoveEdges removes a batch of edges and updates every core number.
// Self-loops and absent edges are skipped.
func (m *Maintainer) RemoveEdges(edges []graph.Edge) BatchResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	var res BatchResult
	switch m.cfg.alg {
	case ParallelOrder:
		stats, snap := pcore.RemoveEdgesMetered(m.ost, edges, m.cfg.workers, nil)
		res.Contention = contentionFrom(snap)
		res.VPlusSizes = make([]int, 0, len(stats))
		for _, s := range stats {
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
				res.VPlusSizes = append(res.VPlusSizes, s.VStar)
			}
		}
	case SequentialOrder:
		res.VPlusSizes = make([]int, 0, len(edges))
		for _, e := range edges {
			s := m.ost.RemoveEdgeSeq(e.U, e.V)
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
				res.VPlusSizes = append(res.VPlusSizes, s.VStar)
			}
		}
	case Traversal:
		for _, e := range edges {
			s := m.tst.RemoveEdge(e.U, e.V)
			if s.Applied {
				res.Applied++
				res.ChangedVertices += s.VStar
			}
		}
	case JoinEdgeSet:
		s := jes.RemoveEdges(m.tst, edges, m.cfg.workers)
		res.Applied = s.Applied
	}
	res.Duration = time.Since(start)
	return res
}

// Check verifies every internal invariant of the maintainer against a fresh
// core decomposition. It is O(n + m) and intended for tests and debugging.
func (m *Maintainer) Check() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tst != nil {
		return m.tst.CheckInvariants()
	}
	return m.ost.CheckInvariants()
}

func contentionFrom(s pcore.MetricsSnapshot) Contention {
	return Contention{
		LockAborts:    s.LockAborts,
		QueueRebuilds: s.QueueRebuilds,
		RemovalRedos:  s.RemovalRedos,
		Evictions:     s.Evictions,
	}
}

// Decompose computes core numbers from scratch with the linear-time BZ
// algorithm — the static building block, usable without a Maintainer.
func Decompose(g *graph.Graph) []int32 {
	cores, _ := bz.Decompose(g)
	return cores
}
