// Package kcore is the public API of this repository: core-number
// maintenance for dynamic graphs, reproducing "Parallel Order-Based Core
// Maintenance in Dynamic Graphs" (Guo & Sekerinski), wrapped in a serving
// layer built for heavy concurrent query traffic.
//
// The core number of a vertex is the largest k such that the vertex belongs
// to a subgraph in which every vertex has degree at least k. A Maintainer
// tracks the core numbers of a dynamic graph as batches of edges are
// inserted and removed, without recomputing from scratch.
//
// Quick start:
//
//	g := gen.ErdosRenyi(100_000, 800_000, 1)
//	m := kcore.New(g, kcore.WithWorkers(8))
//	m.InsertEdges(batch)          // batch of graph.Edge
//	k := m.CoreOf(42)
//
// Four maintenance engines are available (see Algorithm):
//
//   - ParallelOrder (default) — the paper's contribution: per-vertex CAS
//     locks, a concurrent order-maintenance structure for the k-order, and
//     per-worker priority queues; parallelism is independent of the core
//     number distribution.
//   - SequentialOrder — the Simplified-Order algorithm, one edge at a time.
//   - Traversal — the classic subcore-DFS algorithm, one edge at a time.
//   - JoinEdgeSet — the JEI/JER baseline: batch preprocessing plus
//     level-parallel Traversal.
//
// # Serving architecture
//
// Updates flow through a coalescing pipeline: every InsertEdge/RemoveEdge/
// InsertEdges/RemoveEdges call enqueues an op and blocks on its future
// while a dedicated applier goroutine drains the queue, folds everything
// pending into one mixed batch (last op per edge wins; canceling
// insert/remove pairs annihilate), and runs it through the engine. Batches
// still serialize — the algorithms require it — but concurrent writers
// share engine rounds instead of queueing on a mutex.
//
// Queries never touch live engine state: at every batch quiescence the
// applier publishes an immutable epoch-versioned snapshot, and CoreOf,
// CoreNumbers, MaxCore, CoreHistogram, and Snapshot read the latest one
// through an atomic pointer — lock-free, race-free, and never blocked
// behind an in-flight batch. An update call's snapshot is published before
// its future completes, so every caller reads its own writes; Flush gives
// the same guarantee to third-party readers.
//
// Snapshots store core numbers in fixed-size pages behind a page table and
// are published copy-on-write: a batch that changed no core re-publishes
// in O(1), and a batch that changed the set V* clones only the pages V*
// dirtied and patches the histogram incrementally — publication cost
// O(|V*| + dirtyPages·PageSize), proportional to the change, not to the
// graph. Every engine — JoinEdgeSet included — reports its per-batch V*
// through the shared Engine interface to feed this path.
//
// The vertex universe grows on demand: the applier scans each coalesced
// batch before the engine round and grows graph, engine state, and
// snapshot to cover unseen insert endpoints, so streaming workloads that
// mint vertex ids continuously need no pre-sizing (AddVertices
// pre-allocates when the arrival rate is known). Growth is itself a
// copy-on-write publication; snapshots held across it never change.
package kcore

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Algorithm selects the maintenance engine.
type Algorithm int

const (
	// ParallelOrder is the paper's Parallel-Order algorithm (default).
	ParallelOrder Algorithm = iota
	// SequentialOrder is the sequential Simplified-Order algorithm.
	SequentialOrder
	// Traversal is the sequential subcore-traversal algorithm.
	Traversal
	// JoinEdgeSet is the JEI/JER baseline (level-parallel Traversal).
	JoinEdgeSet
)

// String returns the algorithm's name as used in the paper's plots.
func (a Algorithm) String() string {
	if name := algorithmName(a); name != "" {
		return name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Option configures a Maintainer.
type Option func(*config)

type config struct {
	alg     Algorithm
	workers int
	maxN    int
	oplog   OpLog
	pm      *PipelineMetrics
}

// OpLog receives the canonical op stream of a Maintainer — the hook the
// durability subsystem (package persist) taps. Every method is called at
// a quiescent point by the goroutine applying the batch (the pipeline's
// applier, or a mu-serialized caller after Close), so implementations
// need no internal ordering logic; calls arrive in exactly the order the
// engine applies ops.
//
// AppendBatch is called once per coalesced engine batch, after the
// universe scan (ops are post-filter canonical: malformed and
// beyond-ceiling ids already dropped, removals of unseen vertices already
// dropped) and BEFORE the batch is applied or any caller future
// completes — a durable OpLog that syncs in AppendBatch therefore makes
// every acknowledged write crash-safe. AppendGrow is called for explicit
// AddVertices growth (implicit growth is derivable from insert
// endpoints, so it is not logged separately).
type OpLog interface {
	AppendBatch(removes, inserts []graph.Edge)
	AppendGrow(n int)
}

// EpochLog is an OpLog that additionally wants post-publication epoch
// markers — the hook replication uses to tell followers which snapshot
// epoch the preceding ops produced. AppendEpoch is called at the same
// quiescent point as the other OpLog methods, once per snapshot
// publication the op stream caused (after the batch or growth it marks),
// with the epoch of the just-published snapshot. Implementations that
// only persist (no live followers) can ignore it; the disk log derives
// nothing from epochs.
type EpochLog interface {
	OpLog
	AppendEpoch(epoch uint64)
}

// DefaultMaxVertices is the default auto-growth ceiling (~16.7M
// vertices): large enough for any workload this system targets, small
// enough that one corrupted id cannot make the applier attempt a
// multi-gigabyte allocation. See WithMaxVertices.
const DefaultMaxVertices = 1 << 24

// WithAlgorithm selects the maintenance engine; the default is
// ParallelOrder.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.alg = a } }

// WithWorkers sets the number of worker goroutines used by the parallel
// engines (ParallelOrder, JoinEdgeSet). Sequential engines ignore it.
// The default is 1.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxVertices bounds the vertex universe: updates naming ids at or
// beyond n are dropped like malformed ops instead of growing the
// maintainer — per-vertex state is a few hundred bytes, so an
// uncapped adversarial id would otherwise wedge the applier in a huge
// allocation. The default is DefaultMaxVertices; the bound is raised to
// the construction graph's N when that is larger, and AddVertices
// clamps to it too.
func WithMaxVertices(n int) Option { return func(c *config) { c.maxN = n } }

// WithOpLog attaches an op-stream hook (see OpLog). Pass the durability
// subsystem's manager here to make the maintainer's write path
// persistent; nil (the default) logs nothing.
func WithOpLog(l OpLog) Option { return func(c *config) { c.oplog = l } }

// BatchResult reports the outcome of one batch. When the pipeline folds
// several concurrent caller ops into one engine batch, every caller
// receives the shared result of that coalesced batch (Coalesced tells how
// many ops it covered).
type BatchResult struct {
	// Applied counts the edges that changed the graph (duplicates,
	// self-loops and absent removals are skipped).
	Applied int
	// ChangedVertices is Σ|V*|: how many core-number updates the batch
	// caused in total.
	ChangedVertices int
	// VPlusSizes holds per-edge |V+| (insertions with the Order engines)
	// or |V*| (removals) — the data behind the paper's Fig. 1 histogram.
	// Nil for the Traversal/JoinEdgeSet engines.
	VPlusSizes []int
	// Duration is the wall-clock time of the batch.
	Duration time.Duration
	// Coalesced is the number of caller ops folded into the engine batch
	// this result describes; 1 when the op ran alone.
	Coalesced int
	// changed accumulates the engines' per-batch changed-vertex reports
	// (⋃V*; distinct within one Stats report but possibly repeating
	// across the removal/insertion halves of a coalesced batch) — the
	// input to delta snapshot publication. Every engine populates it.
	changed []int32
	// Contention reports the parallel engine's synchronization counters
	// (zero value for the other engines): how often conditional locks
	// aborted, priority queues rebuilt their label snapshots, and removal
	// propagations re-ran — the observable footprint of the paper's
	// blocking-chain analysis (§4).
	Contention Contention
}

// Contention is the set of synchronization counters of one ParallelOrder
// batch; see BatchResult.Contention.
type Contention struct {
	LockAborts    int64 // conditional locks abandoned on a core change
	QueueRebuilds int64 // priority-queue label re-snapshots (Algorithm 9)
	RemovalRedos  int64 // removal propagation redo rounds (Algorithm 8)
	Evictions     int64 // Backward repositionings
}

func (c *Contention) merge(o Contention) {
	c.LockAborts += o.LockAborts
	c.QueueRebuilds += o.QueueRebuilds
	c.RemovalRedos += o.RemovalRedos
	c.Evictions += o.Evictions
}

// merge folds one engine Stats report (one applied sub-batch) into the
// result handed back to callers.
func (r *BatchResult) merge(s Stats) {
	r.Applied += s.Applied
	r.ChangedVertices += s.ChangedVertices
	if s.VPlusSizes != nil {
		if r.VPlusSizes == nil {
			r.VPlusSizes = s.VPlusSizes
		} else {
			r.VPlusSizes = append(r.VPlusSizes, s.VPlusSizes...)
		}
	}
	r.changed = append(r.changed, s.Changed...)
	r.Contention.merge(s.Contention)
}

// engine owns the maintenance Engine implementation. Exactly one goroutine
// drives it at a time: the pipeline's applier while the pipeline is open,
// otherwise callers serialized by mu. It deliberately holds no reference
// back to the Maintainer handle, so an abandoned Maintainer can be
// collected (a runtime cleanup then stops the applier).
type engine struct {
	cfg      config
	g        *graph.Graph
	impl     Engine     // registered implementation for cfg.alg
	epochlog EpochLog   // cfg.oplog when it wants epoch markers, else nil
	mu       sync.Mutex // serializes post-Close synchronous applies
}

// Maintainer tracks core numbers of one dynamic graph. Create it with New;
// all methods are safe for concurrent use. Updates serialize through the
// internal pipeline, queries are served lock-free from the latest
// published snapshot.
type Maintainer struct {
	eng  *engine
	pipe *pipeline
}

// New builds a Maintainer over g, computing the initial core decomposition
// (and, for the order-based engines, the initial k-order) with the BZ
// algorithm, and starts the update-pipeline applier. The Maintainer owns g
// afterwards: mutate the graph only through InsertEdges/RemoveEdges.
//
// Close releases the applier goroutine early; otherwise it is stopped
// automatically when the Maintainer becomes unreachable.
func New(g *graph.Graph, opts ...Option) *Maintainer {
	cfg := config{alg: ParallelOrder, workers: 1, maxN: DefaultMaxVertices}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.maxN < g.N() {
		cfg.maxN = g.N() // never below the universe we already have
	}
	if cfg.maxN > math.MaxInt32 {
		// Vertex ids are int32; a larger ceiling would wrap the scan's
		// comparison negative and silently drop every insert.
		cfg.maxN = math.MaxInt32
	}
	if algorithmName(cfg.alg) == "" {
		// Unregistered Algorithm values run the default engine; normalize
		// so Algorithm() reports the engine actually built.
		cfg.alg = ParallelOrder
	}
	if cfg.pm == nil {
		cfg.pm = NewPipelineMetrics(cfg.alg.String())
	}
	eng := &engine{cfg: cfg, g: g, impl: newEngine(cfg.alg, g, cfg.workers)}
	if el, ok := cfg.oplog.(EpochLog); ok {
		eng.epochlog = el
	}
	pipe := newPipeline(cfg.pm)
	go pipe.run(eng)
	m := &Maintainer{eng: eng, pipe: pipe}
	runtime.AddCleanup(m, func(p *pipeline) { p.close(false) }, pipe)
	return m
}

// Close stops the update pipeline after finishing every already-enqueued
// op. Closing is idempotent. The Maintainer stays usable: later updates
// apply synchronously (serialized, uncoalesced), queries are unaffected.
func (m *Maintainer) Close() { m.pipe.close(true) }

// Graph returns the underlying graph. Treat it as read-only, and only
// inspect it at quiescence (after Flush, with no updates in flight);
// concurrent queries should use Snapshot instead.
func (m *Maintainer) Graph() *graph.Graph { return m.eng.g }

// Algorithm returns the engine this Maintainer runs.
func (m *Maintainer) Algorithm() Algorithm { return m.eng.cfg.alg }

// Workers returns the configured worker count.
func (m *Maintainer) Workers() int { return m.eng.cfg.workers }

// view returns the current published snapshot (never nil).
func (m *Maintainer) view() *snapshot.View { return m.eng.view() }

// CoreOf returns the core number of v in the latest published snapshot:
// one page-table lookup, lock-free, never blocks behind an in-flight
// batch.
func (m *Maintainer) CoreOf(v int32) int32 { return m.view().CoreOf(v) }

// CoreNumbers materializes all core numbers of the latest published
// snapshot into a fresh slice. To reuse a buffer across calls, use
// Snapshot().CoresInto.
func (m *Maintainer) CoreNumbers() []int32 {
	return m.view().CoresInto(nil)
}

// MaxCore returns the largest core number in the latest snapshot.
func (m *Maintainer) MaxCore() int32 { return m.view().MaxCore }

// CoreHistogram returns the number of vertices per core value in the
// latest snapshot.
func (m *Maintainer) CoreHistogram() []int64 {
	return append([]int64(nil), m.view().Hist...)
}

// Epoch returns the version of the latest published snapshot. It advances
// by at least one per applied batch and never decreases; equal epochs mean
// identical query results.
func (m *Maintainer) Epoch() uint64 { return m.view().Epoch }

// Snapshot returns the latest published snapshot: an immutable,
// epoch-versioned view all of whose accessors are O(1) reads. Successive
// queries against one Snapshot are mutually consistent, unlike successive
// Maintainer queries, which may straddle a batch.
func (m *Maintainer) Snapshot() Snapshot { return Snapshot{m.view()} }

// Flush blocks until every update enqueued before the call has been
// applied and published, then returns the epoch of a snapshot at least
// that fresh — the read-your-writes barrier for readers that did not issue
// the writes themselves.
func (m *Maintainer) Flush() uint64 {
	m.barrier(nil)
	return m.Epoch()
}

// QuiescentState is the consistent view of the maintainer handed to an
// AtQuiescence callback: no batch is in flight, so the graph, the
// materialized cores, and the snapshot epoch all describe the same
// moment. Valid only for the duration of the callback.
type QuiescentState struct{ eng *engine }

// Graph returns the live graph; read-only, callback-scoped.
func (q QuiescentState) Graph() *graph.Graph { return q.eng.g }

// Cores materializes the current core numbers into a fresh slice (O(n)).
func (q QuiescentState) Cores() []int32 { return q.eng.impl.Cores() }

// Epoch returns the current snapshot epoch.
func (q QuiescentState) Epoch() uint64 { return q.eng.view().Epoch }

// N returns the current vertex count.
func (q QuiescentState) N() int { return q.eng.g.N() }

// AtQuiescence runs fn at a quiescent point ordered after every update
// enqueued before the call: no batch in flight, graph and cores mutually
// consistent. It is how the durability subsystem captures checkpoint
// state and rotates its log atomically with respect to the op stream. fn
// must not call Maintainer update methods (the applier would deadlock
// waiting on itself) and must not retain the QuiescentState.
func (m *Maintainer) AtQuiescence(fn func(QuiescentState)) {
	m.barrier(func() { fn(QuiescentState{m.eng}) })
}

// barrier runs fn inside the applier at a quiescent point ordered after
// every previously enqueued op. fn must not call Maintainer update
// methods (the applier would deadlock waiting on itself).
func (m *Maintainer) barrier(fn func()) {
	op := &updateOp{kind: opBarrier, fn: fn, done: make(chan BatchResult, 1)}
	m.pipe.enqueue(m.eng, op)
}

// ServingStats is a point-in-time view of the serving layer: pipeline
// counters, snapshot-publication counters, and update-latency percentiles
// (enqueue to future completion, in milliseconds).
type ServingStats struct {
	Epoch         uint64
	QueueDepth    int64
	Enqueued      int64
	Batches       int64 // coalesced engine batches applied
	BatchedOps    int64 // caller ops covered by those batches
	CanceledOps   int64 // ops annihilated by coalescing
	Flushes       int64 // barrier ops executed
	UpdateLatency stats.Percentiles

	// Snapshot publication counters: how each epoch was produced.
	FullPublishes      int64 // O(n) rebuilds (initial view, huge deltas)
	DeltaPublishes     int64 // copy-on-write page patches
	UnchangedPublishes int64 // O(1) re-publications (no core changed)
	GrowPublishes      int64 // vertex-universe growths (COW page appends)
	// DirtyPages is the cumulative number of pages cloned by delta
	// publishes; DirtyPages/DeltaPublishes is the mean pages copied per
	// delta publication.
	DirtyPages int64
}

// ServingStats reports the pipeline's instrumentation counters.
func (m *Maintainer) ServingStats() ServingStats {
	s := m.pipe.metrics.Snapshot()
	p := m.eng.pubStats()
	return ServingStats{
		Epoch:              m.Epoch(),
		QueueDepth:         s.QueueDepth,
		Enqueued:           s.Enqueued,
		Batches:            s.Batches,
		BatchedOps:         s.BatchedOps,
		CanceledOps:        s.CanceledOps,
		Flushes:            s.Flushes,
		UpdateLatency:      m.pipe.updLat.Percentiles(),
		FullPublishes:      p.Full,
		DeltaPublishes:     p.Delta,
		UnchangedPublishes: p.Unchanged,
		GrowPublishes:      p.Grow,
		DirtyPages:         p.DirtyPages,
	}
}

// InsertEdge inserts a single edge; shorthand for a one-edge batch.
func (m *Maintainer) InsertEdge(u, v int32) BatchResult {
	return m.InsertEdges([]graph.Edge{{U: u, V: v}})
}

// RemoveEdge removes a single edge; shorthand for a one-edge batch.
func (m *Maintainer) RemoveEdge(u, v int32) BatchResult {
	return m.RemoveEdges([]graph.Edge{{U: u, V: v}})
}

// InsertEdges inserts a batch of edges and updates every core number.
// Self-loops and already-present edges are skipped. The call returns after
// the update is applied and visible to queries (read-your-writes).
func (m *Maintainer) InsertEdges(edges []graph.Edge) BatchResult {
	op := &updateOp{kind: opInsert, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.enqueue(m.eng, op)
}

// RemoveEdges removes a batch of edges and updates every core number.
// Self-loops and absent edges are skipped. The call returns after the
// update is applied and visible to queries (read-your-writes).
func (m *Maintainer) RemoveEdges(edges []graph.Edge) BatchResult {
	op := &updateOp{kind: opRemove, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.enqueue(m.eng, op)
}

// InsertEdgesAsync submits an insertion batch without waiting and
// returns its future. Submission order is preserved — ops enqueued by
// one goroutine coalesce with last-op-per-edge-wins semantics in exactly
// the order they were submitted — so a caller draining a pipelined
// network connection can fan a whole write burst into the pipeline
// first and Wait afterwards, sharing engine rounds instead of paying
// one round per op. Blocks only when the op queue is full
// (backpressure).
func (m *Maintainer) InsertEdgesAsync(edges []graph.Edge) *Pending {
	op := &updateOp{kind: opInsert, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.submit(m.eng, op)
}

// RemoveEdgesAsync is InsertEdgesAsync for a removal batch.
func (m *Maintainer) RemoveEdgesAsync(edges []graph.Edge) *Pending {
	op := &updateOp{kind: opRemove, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.submit(m.eng, op)
}

// AddVertices grows the vertex universe by k fresh isolated vertices
// (core number 0) at a quiescent point ordered after every earlier
// update, and returns the new vertex count (growth clamps to the
// WithMaxVertices ceiling). It is the pre-allocation path for streaming
// workloads that know vertices are coming; plain InsertEdges on unseen
// ids grows automatically. The grown snapshot is
// published before the call returns (read-your-writes: queries
// immediately see the new N), copy-on-write — views already held by
// readers keep their pre-growth N and core pages.
func (m *Maintainer) AddVertices(k int) int {
	var n int
	m.barrier(func() {
		if k > 0 {
			target := m.eng.g.N() + k
			if target > m.eng.cfg.maxN {
				target = m.eng.cfg.maxN // the WithMaxVertices ceiling
			}
			if target > m.eng.g.N() {
				m.eng.impl.Grow(target)
				if lg := m.eng.cfg.oplog; lg != nil {
					lg.AppendGrow(target)
				}
				m.eng.logEpoch()
			}
		}
		n = m.eng.g.N()
	})
	return n
}

// N returns the vertex count of the latest published snapshot. It grows
// when a batch names unseen vertex ids or AddVertices runs, and never
// shrinks.
func (m *Maintainer) N() int { return m.view().N }

// Check verifies every internal invariant of the maintainer against a
// fresh core decomposition, at a quiescent point ordered after every
// earlier update. It is O(n + m) and intended for tests and debugging.
func (m *Maintainer) Check() error {
	var err error
	m.barrier(func() { err = m.eng.check() })
	return err
}

// view returns the engine's current published snapshot.
func (eng *engine) view() *snapshot.View { return eng.impl.currentView() }

// pubStats returns the engine's snapshot publication counters.
func (eng *engine) pubStats() snapshot.PubStats { return eng.impl.publicationStats() }

// publishAfter publishes the post-batch snapshot for res. Two paths,
// cheapest first: a batch that changed no core number re-publishes the
// previous view in O(1); a batch that changed some routes its changed
// set through the copy-on-write delta publication, cloning only the
// dirtied pages — O(|V*| + dirtyPages·PageSize), not O(n). Every
// registered engine reports its per-batch V*, so no engine pays the
// O(n) rebuild here (huge deltas still fall back to it inside the
// publisher, where the two costs converge).
func (eng *engine) publishAfter(res *BatchResult) {
	if res.ChangedVertices == 0 {
		eng.impl.publishUnchanged()
		return
	}
	eng.impl.publishDelta(res.changed)
}

func (eng *engine) check() error { return eng.impl.Check() }

// logEpoch hands the just-published snapshot epoch to the attached
// EpochLog, if any. Called at the same quiescent point as logBatch /
// AppendGrow, strictly after the publication it marks, so a follower
// that has applied every op up to a marker is exactly at that epoch.
// One marker per batch covers any implicit mid-batch growth publication
// too: follower WAITs are monotone (epoch >= target), and the final
// post-batch epoch is >= every intermediate one.
func (eng *engine) logEpoch() {
	if eng.epochlog != nil {
		eng.epochlog.AppendEpoch(eng.view().Epoch)
	}
}

// logBatch hands one canonical post-scan batch to the attached OpLog,
// before the engine applies it (write-ahead: a durable log that syncs
// here makes acknowledged writes crash-safe — no future completes until
// after the append returns).
func (eng *engine) logBatch(removes, inserts []graph.Edge) {
	if lg := eng.cfg.oplog; lg != nil && (len(removes) > 0 || len(inserts) > 0) {
		lg.AppendBatch(removes, inserts)
	}
}

// prepareBatch is the quiescent-point universe scan run before every
// engine round; it makes updates naming unseen vertex ids Just Work.
// Insertions drive growth: any insert endpoint at or beyond the current N
// grows the universe (graph, engine state, snapshot) to cover it before
// the batch executes, up to the configured WithMaxVertices ceiling.
// Removals never grow — an edge at an unseen vertex is necessarily
// absent, so such ops are dropped like any other absent removal. Ops
// naming a negative vertex id (malformed, mirroring graph.FromEdges
// which rejects them) or one at or beyond the ceiling are dropped from
// both halves.
func (eng *engine) prepareBatch(removes, inserts []graph.Edge) ([]graph.Edge, []graph.Edge) {
	maxN := int32(eng.cfg.maxN)
	inserts = filterEdges(inserts, func(e graph.Edge) bool {
		return e.U >= 0 && e.V >= 0 && e.U < maxN && e.V < maxN
	})
	if target := growTarget(inserts, eng.g.N()); target > eng.g.N() {
		eng.impl.Grow(target)
	}
	n := int32(eng.g.N())
	removes = filterEdges(removes, func(e graph.Edge) bool {
		return e.U >= 0 && e.V >= 0 && e.U < n && e.V < n
	})
	return removes, inserts
}

// growTarget returns the universe size covering every endpoint of edges,
// starting from n.
func growTarget(edges []graph.Edge, n int) int {
	for _, e := range edges {
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	return n
}

// filterEdges returns edges without the entries failing keep, copying
// lazily: the all-kept common case returns the input as-is, and a batch
// needing drops is rebuilt fresh — the input, which on the pipeline's
// lone-op fast path is the caller's own slice, is never mutated.
func filterEdges(edges []graph.Edge, keep func(graph.Edge) bool) []graph.Edge {
	for i, e := range edges {
		if keep(e) {
			continue
		}
		out := make([]graph.Edge, i, len(edges)-1)
		copy(out, edges[:i])
		for _, e := range edges[i+1:] {
			if keep(e) {
				out = append(out, e)
			}
		}
		return out
	}
	return edges
}

// insertBatch runs one insertion batch through the configured engine,
// accumulating into res. Applier-side (or mu-serialized after Close).
func (eng *engine) insertBatch(edges []graph.Edge, res *BatchResult) {
	res.merge(eng.impl.ApplyInsert(edges))
}

// removeBatch runs one removal batch through the configured engine,
// accumulating into res. Applier-side (or mu-serialized after Close).
func (eng *engine) removeBatch(edges []graph.Edge, res *BatchResult) {
	res.merge(eng.impl.ApplyRemove(edges))
}

// applyDirect is the post-Close path: apply one op synchronously under mu.
func (eng *engine) applyDirect(op *updateOp) BatchResult {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	start := time.Now()
	var res BatchResult
	switch op.kind {
	case opInsert:
		_, inserts := eng.prepareBatch(nil, op.edges)
		eng.logBatch(nil, inserts)
		eng.insertBatch(inserts, &res)
	case opRemove:
		removes, _ := eng.prepareBatch(op.edges, nil)
		eng.logBatch(removes, nil)
		eng.removeBatch(removes, &res)
	case opBarrier:
		if op.fn != nil {
			op.fn()
		}
		return res
	}
	res.Duration = time.Since(start)
	res.Coalesced = 1
	eng.cfg.pm.Apply.ObserveDuration(res.Duration)
	pubStart := time.Now()
	eng.publishAfter(&res)
	eng.cfg.pm.Publish.ObserveDuration(time.Since(pubStart))
	eng.logEpoch()
	res.changed = nil // dead after publication; don't hand it to the caller
	return res
}

// Snapshot is an immutable, epoch-versioned view of the maintained core
// decomposition, published at batch quiescence. All accessors are plain
// reads; a Snapshot never changes after it is obtained, so any number of
// goroutines may share one.
type Snapshot struct {
	v *snapshot.View
}

// Epoch returns the snapshot's version.
func (s Snapshot) Epoch() uint64 { return s.v.Epoch }

// N returns the vertex count.
func (s Snapshot) N() int { return s.v.N }

// M returns the edge count at publication time.
func (s Snapshot) M() int64 { return s.v.M }

// CoreOf returns the core number of v: one page-table lookup, O(1).
func (s Snapshot) CoreOf(v int32) int32 { return s.v.CoreOf(v) }

// CoreNumbers materializes the paged core numbers into a fresh slice.
// Since the paged-view rewrite this is a materialization (an O(n) copy),
// not a shared internal slice; callers that materialize repeatedly should
// hold a buffer and use CoresInto instead.
func (s Snapshot) CoreNumbers() []int32 { return s.v.CoresInto(nil) }

// CoresInto materializes the paged core numbers into dst (grown if its
// capacity is short) and returns it, avoiding a fresh allocation per call.
func (s Snapshot) CoresInto(dst []int32) []int32 { return s.v.CoresInto(dst) }

// MaxCore returns the largest core number.
func (s Snapshot) MaxCore() int32 { return s.v.MaxCore }

// Histogram returns the vertices-per-core-value counts. The slice is
// shared and read-only.
func (s Snapshot) Histogram() []int64 { return s.v.Hist }

// HistogramRange computes the core histogram restricted to the id range
// [lo, hi), clamped to [0, N) — hist[k] counts the range's vertices with
// core number k. An O(hi-lo) scan of the paged view (Histogram is the
// O(1) whole-graph read). This is the owned-band aggregate a sharded
// cluster sums bin-wise: restricted to a shard's owned id range it
// excludes the mirror band, so merged bins count each vertex once.
func (s Snapshot) HistogramRange(lo, hi int32) []int64 {
	return s.v.HistRangeInto(nil, lo, hi)
}

// HistogramRangeInto is HistogramRange appending into dst[:0], for
// callers that aggregate repeatedly and hold a bin buffer.
func (s Snapshot) HistogramRangeInto(dst []int64, lo, hi int32) []int64 {
	return s.v.HistRangeInto(dst, lo, hi)
}

// CountCoresAtLeast counts vertices in the id range [lo, hi), clamped to
// [0, N), whose core number is at least k (k <= 0 counts every existing
// vertex of the range) — the range-restricted CORE.KVERT.
func (s Snapshot) CountCoresAtLeast(k, lo, hi int32) int64 {
	return s.v.CountCoresAtLeast(k, lo, hi)
}

// Decompose computes core numbers from scratch with the linear-time BZ
// algorithm — the static building block, usable without a Maintainer.
func Decompose(g *graph.Graph) []int32 {
	cores, _ := bz.Decompose(g)
	return cores
}
