// Package kcore is the public API of this repository: core-number
// maintenance for dynamic graphs, reproducing "Parallel Order-Based Core
// Maintenance in Dynamic Graphs" (Guo & Sekerinski), wrapped in a serving
// layer built for heavy concurrent query traffic.
//
// The core number of a vertex is the largest k such that the vertex belongs
// to a subgraph in which every vertex has degree at least k. A Maintainer
// tracks the core numbers of a dynamic graph as batches of edges are
// inserted and removed, without recomputing from scratch.
//
// Quick start:
//
//	g := gen.ErdosRenyi(100_000, 800_000, 1)
//	m := kcore.New(g, kcore.WithWorkers(8))
//	m.InsertEdges(batch)          // batch of graph.Edge
//	k := m.CoreOf(42)
//
// Four maintenance engines are available (see Algorithm):
//
//   - ParallelOrder (default) — the paper's contribution: per-vertex CAS
//     locks, a concurrent order-maintenance structure for the k-order, and
//     per-worker priority queues; parallelism is independent of the core
//     number distribution.
//   - SequentialOrder — the Simplified-Order algorithm, one edge at a time.
//   - Traversal — the classic subcore-DFS algorithm, one edge at a time.
//   - JoinEdgeSet — the JEI/JER baseline: batch preprocessing plus
//     level-parallel Traversal.
//
// # Serving architecture
//
// Updates flow through a coalescing pipeline: every InsertEdge/RemoveEdge/
// InsertEdges/RemoveEdges call enqueues an op and blocks on its future
// while a dedicated applier goroutine drains the queue, folds everything
// pending into one mixed batch (last op per edge wins; canceling
// insert/remove pairs annihilate), and runs it through the engine. Batches
// still serialize — the algorithms require it — but concurrent writers
// share engine rounds instead of queueing on a mutex.
//
// Queries never touch live engine state: at every batch quiescence the
// applier publishes an immutable epoch-versioned snapshot, and CoreOf,
// CoreNumbers, MaxCore, CoreHistogram, and Snapshot read the latest one
// through an atomic pointer — lock-free, race-free, and never blocked
// behind an in-flight batch. An update call's snapshot is published before
// its future completes, so every caller reads its own writes; Flush gives
// the same guarantee to third-party readers.
//
// Snapshots store core numbers in fixed-size pages behind a page table and
// are published copy-on-write: a batch that changed no core re-publishes
// in O(1), and a batch that changed the set V* clones only the pages V*
// dirtied and patches the histogram incrementally — publication cost
// O(|V*| + dirtyPages·PageSize), proportional to the change, not to the
// graph. Every engine — JoinEdgeSet included — reports its per-batch V*
// through the shared Engine interface to feed this path.
package kcore

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/graph"
	"repro/internal/bz"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Algorithm selects the maintenance engine.
type Algorithm int

const (
	// ParallelOrder is the paper's Parallel-Order algorithm (default).
	ParallelOrder Algorithm = iota
	// SequentialOrder is the sequential Simplified-Order algorithm.
	SequentialOrder
	// Traversal is the sequential subcore-traversal algorithm.
	Traversal
	// JoinEdgeSet is the JEI/JER baseline (level-parallel Traversal).
	JoinEdgeSet
)

// String returns the algorithm's name as used in the paper's plots.
func (a Algorithm) String() string {
	if name := algorithmName(a); name != "" {
		return name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Option configures a Maintainer.
type Option func(*config)

type config struct {
	alg     Algorithm
	workers int
}

// WithAlgorithm selects the maintenance engine; the default is
// ParallelOrder.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.alg = a } }

// WithWorkers sets the number of worker goroutines used by the parallel
// engines (ParallelOrder, JoinEdgeSet). Sequential engines ignore it.
// The default is 1.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// BatchResult reports the outcome of one batch. When the pipeline folds
// several concurrent caller ops into one engine batch, every caller
// receives the shared result of that coalesced batch (Coalesced tells how
// many ops it covered).
type BatchResult struct {
	// Applied counts the edges that changed the graph (duplicates,
	// self-loops and absent removals are skipped).
	Applied int
	// ChangedVertices is Σ|V*|: how many core-number updates the batch
	// caused in total.
	ChangedVertices int
	// VPlusSizes holds per-edge |V+| (insertions with the Order engines)
	// or |V*| (removals) — the data behind the paper's Fig. 1 histogram.
	// Nil for the Traversal/JoinEdgeSet engines.
	VPlusSizes []int
	// Duration is the wall-clock time of the batch.
	Duration time.Duration
	// Coalesced is the number of caller ops folded into the engine batch
	// this result describes; 1 when the op ran alone.
	Coalesced int
	// changed accumulates the engines' per-batch changed-vertex reports
	// (⋃V*; distinct within one Stats report but possibly repeating
	// across the removal/insertion halves of a coalesced batch) — the
	// input to delta snapshot publication. Every engine populates it.
	changed []int32
	// Contention reports the parallel engine's synchronization counters
	// (zero value for the other engines): how often conditional locks
	// aborted, priority queues rebuilt their label snapshots, and removal
	// propagations re-ran — the observable footprint of the paper's
	// blocking-chain analysis (§4).
	Contention Contention
}

// Contention is the set of synchronization counters of one ParallelOrder
// batch; see BatchResult.Contention.
type Contention struct {
	LockAborts    int64 // conditional locks abandoned on a core change
	QueueRebuilds int64 // priority-queue label re-snapshots (Algorithm 9)
	RemovalRedos  int64 // removal propagation redo rounds (Algorithm 8)
	Evictions     int64 // Backward repositionings
}

func (c *Contention) merge(o Contention) {
	c.LockAborts += o.LockAborts
	c.QueueRebuilds += o.QueueRebuilds
	c.RemovalRedos += o.RemovalRedos
	c.Evictions += o.Evictions
}

// merge folds one engine Stats report (one applied sub-batch) into the
// result handed back to callers.
func (r *BatchResult) merge(s Stats) {
	r.Applied += s.Applied
	r.ChangedVertices += s.ChangedVertices
	if s.VPlusSizes != nil {
		if r.VPlusSizes == nil {
			r.VPlusSizes = s.VPlusSizes
		} else {
			r.VPlusSizes = append(r.VPlusSizes, s.VPlusSizes...)
		}
	}
	r.changed = append(r.changed, s.Changed...)
	r.Contention.merge(s.Contention)
}

// engine owns the maintenance Engine implementation. Exactly one goroutine
// drives it at a time: the pipeline's applier while the pipeline is open,
// otherwise callers serialized by mu. It deliberately holds no reference
// back to the Maintainer handle, so an abandoned Maintainer can be
// collected (a runtime cleanup then stops the applier).
type engine struct {
	cfg  config
	g    *graph.Graph
	impl Engine     // registered implementation for cfg.alg
	mu   sync.Mutex // serializes post-Close synchronous applies
}

// Maintainer tracks core numbers of one dynamic graph. Create it with New;
// all methods are safe for concurrent use. Updates serialize through the
// internal pipeline, queries are served lock-free from the latest
// published snapshot.
type Maintainer struct {
	eng  *engine
	pipe *pipeline
}

// New builds a Maintainer over g, computing the initial core decomposition
// (and, for the order-based engines, the initial k-order) with the BZ
// algorithm, and starts the update-pipeline applier. The Maintainer owns g
// afterwards: mutate the graph only through InsertEdges/RemoveEdges.
//
// Close releases the applier goroutine early; otherwise it is stopped
// automatically when the Maintainer becomes unreachable.
func New(g *graph.Graph, opts ...Option) *Maintainer {
	cfg := config{alg: ParallelOrder, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if algorithmName(cfg.alg) == "" {
		// Unregistered Algorithm values run the default engine; normalize
		// so Algorithm() reports the engine actually built.
		cfg.alg = ParallelOrder
	}
	eng := &engine{cfg: cfg, g: g, impl: newEngine(cfg.alg, g, cfg.workers)}
	pipe := newPipeline()
	go pipe.run(eng)
	m := &Maintainer{eng: eng, pipe: pipe}
	runtime.AddCleanup(m, func(p *pipeline) { p.close(false) }, pipe)
	return m
}

// Close stops the update pipeline after finishing every already-enqueued
// op. Closing is idempotent. The Maintainer stays usable: later updates
// apply synchronously (serialized, uncoalesced), queries are unaffected.
func (m *Maintainer) Close() { m.pipe.close(true) }

// Graph returns the underlying graph. Treat it as read-only, and only
// inspect it at quiescence (after Flush, with no updates in flight);
// concurrent queries should use Snapshot instead.
func (m *Maintainer) Graph() *graph.Graph { return m.eng.g }

// Algorithm returns the engine this Maintainer runs.
func (m *Maintainer) Algorithm() Algorithm { return m.eng.cfg.alg }

// Workers returns the configured worker count.
func (m *Maintainer) Workers() int { return m.eng.cfg.workers }

// view returns the current published snapshot (never nil).
func (m *Maintainer) view() *snapshot.View { return m.eng.view() }

// CoreOf returns the core number of v in the latest published snapshot:
// one page-table lookup, lock-free, never blocks behind an in-flight
// batch.
func (m *Maintainer) CoreOf(v int32) int32 { return m.view().CoreOf(v) }

// CoreNumbers materializes all core numbers of the latest published
// snapshot into a fresh slice. To reuse a buffer across calls, use
// Snapshot().CoresInto.
func (m *Maintainer) CoreNumbers() []int32 {
	return m.view().CoresInto(nil)
}

// MaxCore returns the largest core number in the latest snapshot.
func (m *Maintainer) MaxCore() int32 { return m.view().MaxCore }

// CoreHistogram returns the number of vertices per core value in the
// latest snapshot.
func (m *Maintainer) CoreHistogram() []int64 {
	return append([]int64(nil), m.view().Hist...)
}

// Epoch returns the version of the latest published snapshot. It advances
// by at least one per applied batch and never decreases; equal epochs mean
// identical query results.
func (m *Maintainer) Epoch() uint64 { return m.view().Epoch }

// Snapshot returns the latest published snapshot: an immutable,
// epoch-versioned view all of whose accessors are O(1) reads. Successive
// queries against one Snapshot are mutually consistent, unlike successive
// Maintainer queries, which may straddle a batch.
func (m *Maintainer) Snapshot() Snapshot { return Snapshot{m.view()} }

// Flush blocks until every update enqueued before the call has been
// applied and published, then returns the epoch of a snapshot at least
// that fresh — the read-your-writes barrier for readers that did not issue
// the writes themselves.
func (m *Maintainer) Flush() uint64 {
	m.barrier(nil)
	return m.Epoch()
}

// barrier runs fn inside the applier at a quiescent point ordered after
// every previously enqueued op. fn must not call Maintainer update
// methods (the applier would deadlock waiting on itself).
func (m *Maintainer) barrier(fn func()) {
	op := &updateOp{kind: opBarrier, fn: fn, done: make(chan BatchResult, 1)}
	m.pipe.enqueue(m.eng, op)
}

// ServingStats is a point-in-time view of the serving layer: pipeline
// counters, snapshot-publication counters, and update-latency percentiles
// (enqueue to future completion, in milliseconds).
type ServingStats struct {
	Epoch         uint64
	QueueDepth    int64
	Enqueued      int64
	Batches       int64 // coalesced engine batches applied
	BatchedOps    int64 // caller ops covered by those batches
	CanceledOps   int64 // ops annihilated by coalescing
	Flushes       int64 // barrier ops executed
	UpdateLatency stats.Percentiles

	// Snapshot publication counters: how each epoch was produced.
	FullPublishes      int64 // O(n) rebuilds (initial view, huge deltas)
	DeltaPublishes     int64 // copy-on-write page patches
	UnchangedPublishes int64 // O(1) re-publications (no core changed)
	// DirtyPages is the cumulative number of pages cloned by delta
	// publishes; DirtyPages/DeltaPublishes is the mean pages copied per
	// delta publication.
	DirtyPages int64
}

// ServingStats reports the pipeline's instrumentation counters.
func (m *Maintainer) ServingStats() ServingStats {
	s := m.pipe.metrics.Snapshot()
	p := m.eng.pubStats()
	return ServingStats{
		Epoch:              m.Epoch(),
		QueueDepth:         s.QueueDepth,
		Enqueued:           s.Enqueued,
		Batches:            s.Batches,
		BatchedOps:         s.BatchedOps,
		CanceledOps:        s.CanceledOps,
		Flushes:            s.Flushes,
		UpdateLatency:      m.pipe.updLat.Percentiles(),
		FullPublishes:      p.Full,
		DeltaPublishes:     p.Delta,
		UnchangedPublishes: p.Unchanged,
		DirtyPages:         p.DirtyPages,
	}
}

// InsertEdge inserts a single edge; shorthand for a one-edge batch.
func (m *Maintainer) InsertEdge(u, v int32) BatchResult {
	return m.InsertEdges([]graph.Edge{{U: u, V: v}})
}

// RemoveEdge removes a single edge; shorthand for a one-edge batch.
func (m *Maintainer) RemoveEdge(u, v int32) BatchResult {
	return m.RemoveEdges([]graph.Edge{{U: u, V: v}})
}

// InsertEdges inserts a batch of edges and updates every core number.
// Self-loops and already-present edges are skipped. The call returns after
// the update is applied and visible to queries (read-your-writes).
func (m *Maintainer) InsertEdges(edges []graph.Edge) BatchResult {
	op := &updateOp{kind: opInsert, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.enqueue(m.eng, op)
}

// RemoveEdges removes a batch of edges and updates every core number.
// Self-loops and absent edges are skipped. The call returns after the
// update is applied and visible to queries (read-your-writes).
func (m *Maintainer) RemoveEdges(edges []graph.Edge) BatchResult {
	op := &updateOp{kind: opRemove, edges: edges, done: make(chan BatchResult, 1)}
	return m.pipe.enqueue(m.eng, op)
}

// Check verifies every internal invariant of the maintainer against a
// fresh core decomposition, at a quiescent point ordered after every
// earlier update. It is O(n + m) and intended for tests and debugging.
func (m *Maintainer) Check() error {
	var err error
	m.barrier(func() { err = m.eng.check() })
	return err
}

// view returns the engine's current published snapshot.
func (eng *engine) view() *snapshot.View { return eng.impl.currentView() }

// pubStats returns the engine's snapshot publication counters.
func (eng *engine) pubStats() snapshot.PubStats { return eng.impl.publicationStats() }

// publishAfter publishes the post-batch snapshot for res. Two paths,
// cheapest first: a batch that changed no core number re-publishes the
// previous view in O(1); a batch that changed some routes its changed
// set through the copy-on-write delta publication, cloning only the
// dirtied pages — O(|V*| + dirtyPages·PageSize), not O(n). Every
// registered engine reports its per-batch V*, so no engine pays the
// O(n) rebuild here (huge deltas still fall back to it inside the
// publisher, where the two costs converge).
func (eng *engine) publishAfter(res *BatchResult) {
	if res.ChangedVertices == 0 {
		eng.impl.publishUnchanged()
		return
	}
	eng.impl.publishDelta(res.changed)
}

func (eng *engine) check() error { return eng.impl.Check() }

// insertBatch runs one insertion batch through the configured engine,
// accumulating into res. Applier-side (or mu-serialized after Close).
func (eng *engine) insertBatch(edges []graph.Edge, res *BatchResult) {
	res.merge(eng.impl.ApplyInsert(edges))
}

// removeBatch runs one removal batch through the configured engine,
// accumulating into res. Applier-side (or mu-serialized after Close).
func (eng *engine) removeBatch(edges []graph.Edge, res *BatchResult) {
	res.merge(eng.impl.ApplyRemove(edges))
}

// applyDirect is the post-Close path: apply one op synchronously under mu.
func (eng *engine) applyDirect(op *updateOp) BatchResult {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	start := time.Now()
	var res BatchResult
	switch op.kind {
	case opInsert:
		eng.insertBatch(op.edges, &res)
	case opRemove:
		eng.removeBatch(op.edges, &res)
	case opBarrier:
		if op.fn != nil {
			op.fn()
		}
		return res
	}
	res.Duration = time.Since(start)
	res.Coalesced = 1
	eng.publishAfter(&res)
	res.changed = nil // dead after publication; don't hand it to the caller
	return res
}

// Snapshot is an immutable, epoch-versioned view of the maintained core
// decomposition, published at batch quiescence. All accessors are plain
// reads; a Snapshot never changes after it is obtained, so any number of
// goroutines may share one.
type Snapshot struct {
	v *snapshot.View
}

// Epoch returns the snapshot's version.
func (s Snapshot) Epoch() uint64 { return s.v.Epoch }

// N returns the vertex count.
func (s Snapshot) N() int { return s.v.N }

// M returns the edge count at publication time.
func (s Snapshot) M() int64 { return s.v.M }

// CoreOf returns the core number of v: one page-table lookup, O(1).
func (s Snapshot) CoreOf(v int32) int32 { return s.v.CoreOf(v) }

// CoreNumbers materializes the paged core numbers into a fresh slice.
// Since the paged-view rewrite this is a materialization (an O(n) copy),
// not a shared internal slice; callers that materialize repeatedly should
// hold a buffer and use CoresInto instead.
func (s Snapshot) CoreNumbers() []int32 { return s.v.CoresInto(nil) }

// CoresInto materializes the paged core numbers into dst (grown if its
// capacity is short) and returns it, avoiding a fresh allocation per call.
func (s Snapshot) CoresInto(dst []int32) []int32 { return s.v.CoresInto(dst) }

// MaxCore returns the largest core number.
func (s Snapshot) MaxCore() int32 { return s.v.MaxCore }

// Histogram returns the vertices-per-core-value counts. The slice is
// shared and read-only.
func (s Snapshot) Histogram() []int64 { return s.v.Hist }

// Decompose computes core numbers from scratch with the linear-time BZ
// algorithm — the static building block, usable without a Maintainer.
func Decompose(g *graph.Graph) []int32 {
	cores, _ := bz.Decompose(g)
	return cores
}
