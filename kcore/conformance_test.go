package kcore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/gen"
	"repro/graph"
	"repro/internal/bz"
)

// The cross-engine conformance suite: one table of scripted
// insert/remove/mixed scenarios, each run through every registered engine
// via the Engine interface. After every batch the engine's cores must be
// byte-equal to a fresh BZ decomposition of a mirror graph, the reported
// Changed set must cover exactly the vertices whose core moved (delta
// snapshot publication depends on that) and contain no duplicates, and
// the engine's own invariants must hold at the end. This replaces the
// per-engine copies of the agree-with-Decompose assertion that individual
// tests used to carry.

// confStep is one scripted batch of a conformance scenario.
type confStep struct {
	insert bool
	edges  []graph.Edge
}

// confScenario builds a base graph and a deterministic batch script.
type confScenario struct {
	name  string
	build func() (*graph.Graph, []confStep)
}

var confScenarios = []confScenario{
	{"insert-batches", func() (*graph.Graph, []confStep) {
		base := gen.ErdosRenyi(400, 1200, 101)
		pool := gen.SampleNonEdges(base, 180, 102)
		var steps []confStep
		for i := 0; i < 6; i++ {
			steps = append(steps, confStep{insert: true, edges: pool[i*30 : (i+1)*30]})
		}
		return base, steps
	}},
	{"remove-batches", func() (*graph.Graph, []confStep) {
		base := gen.ErdosRenyi(400, 1600, 103)
		pool := gen.SampleEdges(base, 240, 104)
		var steps []confStep
		for i := 0; i < 6; i++ {
			steps = append(steps, confStep{insert: false, edges: pool[i*40 : (i+1)*40]})
		}
		return base, steps
	}},
	{"mixed", func() (*graph.Graph, []confStep) {
		base := gen.BarabasiAlbert(300, 3, 105)
		ins := gen.SampleNonEdges(base, 120, 106)
		rem := gen.SampleEdges(base, 120, 107)
		var steps []confStep
		for i := 0; i < 4; i++ {
			steps = append(steps,
				confStep{insert: true, edges: ins[i*30 : (i+1)*30]},
				confStep{insert: false, edges: rem[i*30 : (i+1)*30]})
		}
		// Re-insert the removed edges: exercises promotion back through
		// levels the removals vacated.
		steps = append(steps, confStep{insert: true, edges: rem})
		return base, steps
	}},
	{"degenerate", func() (*graph.Graph, []confStep) {
		base := gen.ErdosRenyi(120, 360, 108)
		fresh := gen.SampleNonEdges(base, 30, 109)
		present := gen.SampleEdges(base, 20, 110)
		dupIns := append(append([]graph.Edge{}, fresh...), fresh...)   // duplicates
		dupIns = append(dupIns, graph.Edge{U: 5, V: 5})                // self-loop
		dupIns = append(dupIns, present...)                            // already present
		absRem := append(append([]graph.Edge{}, present...), fresh...) // fresh now present
		absRem = append(absRem, graph.Edge{U: 7, V: 7})                // self-loop
		absRem = append(absRem, absRem[0])                             // double removal
		return base, []confStep{
			{insert: true, edges: dupIns},
			{insert: false, edges: absRem},
			{insert: false, edges: absRem}, // all absent by now
		}
	}},
	{"grow-on-insert", func() (*graph.Graph, []confStep) {
		// Vertex arrivals interleaved with ordinary edge traffic: every
		// insert step names fresh ids just past the universe the earlier
		// steps built, so each step grows the engine mid-script.
		base := gen.ErdosRenyi(150, 450, 115)
		ins := gen.SampleNonEdges(base, 60, 116)
		arr := gen.VertexArrivals(150, 30, 3, 117) // ids 150..179
		var steps []confStep
		for i := 0; i < 6; i++ {
			var batch []graph.Edge
			for _, a := range arr[i*5 : (i+1)*5] {
				batch = append(batch, a...)
			}
			steps = append(steps, confStep{insert: true, edges: append(batch, ins[i*10:(i+1)*10]...)})
		}
		// Departures on the grown range (the universe itself never
		// shrinks), then re-arrival traffic over the vacated vertices.
		steps = append(steps,
			confStep{insert: false, edges: append(append([]graph.Edge{}, arr[0]...), arr[7]...)},
			confStep{insert: true, edges: arr[0]})
		return base, steps
	}},
	{"grow-jump", func() (*graph.Graph, []confStep) {
		// A single insert naming a far-away id mints the whole gap at
		// once; the fresh vertices then form structure of their own.
		base := gen.ErdosRenyi(80, 240, 118)
		return base, []confStep{
			{insert: true, edges: []graph.Edge{{U: 5, V: 200}}},
			{insert: true, edges: []graph.Edge{
				{U: 190, V: 191}, {U: 191, V: 192}, {U: 192, V: 190}, // triangle in the gap
				{U: 200, V: 190},
			}},
			{insert: false, edges: []graph.Edge{{U: 192, V: 190}, {U: 5, V: 200}}},
		}
	}},
	{"deep-collapse", func() (*graph.Graph, []confStep) {
		// Dense small graph: removals drop vertices several core levels,
		// the multi-level case the Changed dedup contract is about.
		base := gen.ErdosRenyi(64, 960, 111)
		pool := gen.SampleEdges(base, 600, 112)
		var steps []confStep
		for i := 0; i < 5; i++ {
			steps = append(steps, confStep{insert: false, edges: pool[i*120 : (i+1)*120]})
		}
		steps = append(steps, confStep{insert: true, edges: pool[:240]})
		return base, steps
	}},
}

func TestEngineConformance(t *testing.T) {
	for _, sc := range confScenarios {
		sc := sc
		for _, alg := range Algorithms() {
			alg := alg
			t.Run(fmt.Sprintf("%s/%v", sc.name, alg), func(t *testing.T) {
				t.Parallel()
				base, steps := sc.build()
				mirror := base.Clone()
				eng := newEngine(alg, base, 4)

				prev := eng.Cores()
				for i, step := range steps {
					var s Stats
					if step.insert {
						// The pipeline's pre-round universe scan: grow for
						// unseen insert endpoints before the engine round.
						if target := growTarget(step.edges, base.N()); target > base.N() {
							eng.Grow(target)
							mirror.Grow(target)
							prev = append(prev, make([]int32, target-len(prev))...)
						}
						s = eng.ApplyInsert(step.edges)
						for _, e := range step.edges {
							if e.U != e.V {
								mirror.AddEdge(e.U, e.V)
							}
						}
					} else {
						s = eng.ApplyRemove(step.edges)
						for _, e := range step.edges {
							mirror.RemoveEdge(e.U, e.V)
						}
					}

					truth, _ := bz.Decompose(mirror)
					got := eng.Cores()
					if len(got) != len(truth) {
						t.Fatalf("step %d: %d cores, want %d", i, len(got), len(truth))
					}
					for v := range truth {
						if got[v] != truth[v] {
							t.Fatalf("step %d: core[%d] = %d, want %d", i, v, got[v], truth[v])
						}
					}

					// The Changed report must cover every vertex whose core
					// moved (delta publication patches exactly these) and
					// must not repeat a vertex.
					reported := make(map[int32]bool, len(s.Changed))
					for _, v := range s.Changed {
						if reported[v] {
							t.Fatalf("step %d: Changed reports vertex %d twice", i, v)
						}
						reported[v] = true
					}
					for v := range truth {
						if truth[v] != prev[v] && !reported[int32(v)] {
							t.Fatalf("step %d: core[%d] moved %d→%d but is not in Changed",
								i, v, prev[v], truth[v])
						}
					}
					if s.ChangedVertices < len(reported) {
						t.Fatalf("step %d: ChangedVertices = %d < %d distinct changed",
							i, s.ChangedVertices, len(reported))
					}
					prev = got
				}
				if err := eng.Check(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestEngineConformanceRandomized drives every registered engine through
// the same rng-scripted mixed batches (a lighter-weight sibling of
// FuzzMixedBatch that always runs) and cross-checks the engines against
// each other as well as against BZ ground truth.
func TestEngineConformanceRandomized(t *testing.T) {
	rounds := 60
	if testing.Short() {
		rounds = 15
	}
	const n = 160
	base := gen.ErdosRenyi(n, 480, 113)
	mirror := base.Clone()
	algs := Algorithms()
	engines := make([]Engine, len(algs))
	for i, alg := range algs {
		engines[i] = newEngine(alg, base.Clone(), 3)
	}
	rng := rand.New(rand.NewSource(114))
	for round := 0; round < rounds; round++ {
		k := 1 + rng.Intn(10)
		batch := make([]graph.Edge, 0, k)
		for i := 0; i < k; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u != v {
				batch = append(batch, graph.Edge{U: u, V: v})
			}
		}
		insert := rng.Intn(2) == 0
		for _, e := range batch {
			if insert {
				mirror.AddEdge(e.U, e.V)
			} else {
				mirror.RemoveEdge(e.U, e.V)
			}
		}
		truth, _ := bz.Decompose(mirror)
		for i, eng := range engines {
			if insert {
				eng.ApplyInsert(batch)
			} else {
				eng.ApplyRemove(batch)
			}
			got := eng.Cores()
			for v := range truth {
				if got[v] != truth[v] {
					t.Fatalf("round %d: %v core[%d] = %d, want %d", round, algs[i], v, got[v], truth[v])
				}
			}
		}
	}
	for i, eng := range engines {
		if err := eng.Check(); err != nil {
			t.Fatalf("%v: %v", algs[i], err)
		}
	}
}
