package kcore

import (
	"sync"
	"testing"

	"repro/gen"
	"repro/graph"
)

// allAlgorithms is the registration table's contents; every cross-engine
// test ranges over it so a newly registered engine is covered for free.
// The scripted per-engine agree-with-Decompose assertions that used to
// live here are subsumed by TestEngineConformance.
var allAlgorithms = Algorithms()

func TestSingleEdgeHelpers(t *testing.T) {
	m := New(graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}))
	res := m.InsertEdge(0, 2)
	if !(res.Applied == 1 && m.CoreOf(0) == 2) {
		t.Fatalf("InsertEdge: %+v core=%d", res, m.CoreOf(0))
	}
	res = m.RemoveEdge(0, 2)
	if !(res.Applied == 1 && m.CoreOf(0) == 1) {
		t.Fatalf("RemoveEdge: %+v core=%d", res, m.CoreOf(0))
	}
	if m.InsertEdge(1, 1).Applied != 0 {
		t.Fatal("self-loop applied")
	}
	if m.RemoveEdge(0, 2).Applied != 0 {
		t.Fatal("absent removal applied")
	}
}

func TestHistogramAndMaxCore(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	m := New(g)
	if m.MaxCore() != 2 {
		t.Fatalf("MaxCore = %d", m.MaxCore())
	}
	h := m.CoreHistogram()
	if h[2] != 3 || h[0] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestVPlusSizesReported(t *testing.T) {
	base := gen.ErdosRenyi(100, 300, 7)
	ins := gen.SampleNonEdges(base, 50, 8)
	for _, alg := range []Algorithm{ParallelOrder, SequentialOrder} {
		m := New(base.Clone(), WithAlgorithm(alg), WithWorkers(2))
		res := m.InsertEdges(ins)
		if len(res.VPlusSizes) != res.Applied {
			t.Fatalf("%v: %d sizes for %d applied", alg, len(res.VPlusSizes), res.Applied)
		}
	}
	m := New(base.Clone(), WithAlgorithm(Traversal))
	if res := m.InsertEdges(ins); res.VPlusSizes != nil {
		t.Fatal("Traversal must not report V+ sizes")
	}
}

func TestOptionsDefaults(t *testing.T) {
	m := New(graph.New(3))
	if m.Algorithm() != ParallelOrder || m.Workers() != 1 {
		t.Fatalf("defaults: %v %d", m.Algorithm(), m.Workers())
	}
	m = New(graph.New(3), WithWorkers(-5))
	if m.Workers() != 1 {
		t.Fatalf("negative workers must clamp to 1, got %d", m.Workers())
	}
	if got := ParallelOrder.String(); got != "ParallelOrder" {
		t.Fatalf("String: %q", got)
	}
	if got := Algorithm(42).String(); got != "Algorithm(42)" {
		t.Fatalf("String: %q", got)
	}
}

// Concurrent callers: batches must serialize, final state must be coherent.
func TestConcurrentBatchesSerialize(t *testing.T) {
	base := gen.ErdosRenyi(150, 450, 9)
	m := New(base.Clone(), WithWorkers(4))
	ins := gen.SampleNonEdges(base, 120, 10)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.InsertEdges(ins[i*30 : (i+1)*30])
		}(i)
	}
	wg.Wait()
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeStandalone(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}})
	cores := Decompose(g)
	want := []int32{2, 2, 2, 1}
	for v := range want {
		if cores[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d", v, cores[v], want[v])
		}
	}
}
