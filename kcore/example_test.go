package kcore_test

import (
	"fmt"

	"repro/graph"
	"repro/kcore"
)

// Building a maintainer and applying single-edge updates.
func ExampleNew() {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	m := kcore.New(g)
	fmt.Println(m.CoreNumbers())
	m.InsertEdge(0, 2) // close the triangle
	fmt.Println(m.CoreNumbers())
	// Output:
	// [1 1 1]
	// [2 2 2]
}

// Batches are the unit of parallelism: with WithWorkers(n), n goroutines
// process the batch concurrently under the Parallel-Order protocol.
func ExampleMaintainer_InsertEdges() {
	m := kcore.New(graph.New(4), kcore.WithWorkers(2))
	res := m.InsertEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 1, V: 3}, {U: 2, V: 3}, // K4
	})
	fmt.Println(res.Applied, m.MaxCore())
	// Output: 6 3
}

// Extracting the densest region after maintenance.
func ExampleMaintainer_KCoreSubgraph() {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
		{U: 3, V: 0}, {U: 4, V: 3}, // tail
	})
	m := kcore.New(g)
	sub, members := m.KCoreSubgraph(2)
	fmt.Println(sub.N(), sub.M(), members)
	// Output: 3 3 [0 1 2]
}

// Removing a vertex is a batch removal of its incident edges (§3.2).
func ExampleMaintainer_RemoveVertex() {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 0},
	})
	m := kcore.New(g)
	res := m.RemoveVertex(0)
	fmt.Println(res.Applied, m.CoreNumbers())
	// Output: 3 [0 1 1 0]
}

// Choosing a different maintenance engine.
func ExampleWithAlgorithm() {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
	m := kcore.New(g, kcore.WithAlgorithm(kcore.Traversal))
	fmt.Println(m.Algorithm(), m.MaxCore())
	// Output: Traversal 2
}
