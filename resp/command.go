package resp

// Command is the reusable decoded form of one client command — the
// caller-owned scratch that Reader.ReadCommand and Parser.Parse fill
// instead of allocating per frame. A connection keeps one Command for its
// whole lifetime; after warm-up the steady-state read path performs zero
// allocations per command.
//
// # Aliasing contract
//
// Args and every slice in it are views into storage recycled by the next
// ReadCommand/Parse call on the same Command (the internal arena for the
// streaming Reader, the caller's query buffer for Parser). They are valid
// only until that next call: a caller that needs an argument beyond
// dispatch must copy it out. TestCommandScratchReuse pins this contract.
type Command struct {
	// Args holds the command's arguments, name first. Valid until the
	// next ReadCommand/Parse call that fills this Command.
	Args [][]byte

	// arena is the flat byte store for the streaming Reader: every
	// argument's bytes are appended here back to back, so one command
	// costs at most one (amortized, usually zero) allocation however many
	// arguments it carries.
	arena []byte
	// ends[i] is the exclusive end offset of argument i in arena
	// (argument i starts at ends[i-1]). Kept separate from Args because
	// the arena may be reallocated mid-parse by a growing command;
	// offsets survive that, slice headers would not.
	ends []int
}

// arenaShrinkCap bounds how much arena capacity one oversized command
// (up to MaxBulkLen per argument) leaves pinned on an idle connection:
// above it, the next read restarts from a fresh small arena.
const arenaShrinkCap = 64 << 10

// reset prepares the Command for a fresh frame, recycling its storage.
func (c *Command) reset() {
	if cap(c.arena) > arenaShrinkCap {
		c.arena = nil
	}
	c.arena = c.arena[:0]
	c.ends = c.ends[:0]
	c.Args = c.Args[:0]
}

// grow ensures the arena has room for n more bytes and returns the
// (possibly reallocated) writable tail of length n.
func (c *Command) grow(n int) []byte {
	need := len(c.arena) + n
	if need > cap(c.arena) {
		newCap := 2 * cap(c.arena)
		if newCap < need {
			newCap = need
		}
		if newCap < 256 {
			newCap = 256
		}
		na := make([]byte, len(c.arena), newCap)
		copy(na, c.arena)
		c.arena = na
	}
	c.arena = c.arena[:need]
	return c.arena[need-n : need]
}

// appendArg copies b into the arena and records it as the next argument.
func (c *Command) appendArg(b []byte) {
	copy(c.grow(len(b)), b)
	c.ends = append(c.ends, len(c.arena))
}

// materialize rebuilds Args from the (now final) arena and offsets.
func (c *Command) materialize() {
	if cap(c.Args) < len(c.ends) {
		c.Args = make([][]byte, len(c.ends))
	}
	c.Args = c.Args[:len(c.ends)]
	start := 0
	for i, end := range c.ends {
		c.Args[i] = c.arena[start:end:end]
		start = end
	}
}
