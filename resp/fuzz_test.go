package resp

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"strings"
	"testing"
)

// FuzzRESP feeds arbitrary bytes to both halves of the codec. Properties:
//
//   - No input may panic or allocate unboundedly (the engine's OOM-kill
//     is the oracle for the latter): malformed frames must surface as
//     *ProtocolError or a truncation error, mirroring how
//     graph.MaxVertexID bounds data-driven graph construction.
//   - Whatever the Reader accepts must round-trip: re-encoding the parsed
//     commands/values and re-reading them yields the same result. This
//     pins reader and writer to the same dialect, so the server and the
//     Go client can never drift apart.
//
// The seed corpus covers the interesting failure shapes: truncated
// frames, huge declared lengths, negative counts, nesting bombs, and
// valid pipelined traffic.
func FuzzRESP(f *testing.F) {
	// Valid traffic, pipelined.
	f.Add([]byte("*1\r\n$4\r\nPING\r\n*3\r\n$8\r\nCORE.GET\r\n$2\r\n42\r\n$1\r\n7\r\n"))
	f.Add([]byte("PING\r\nCORE.MGET 1 2 3\r\n"))
	// Replies, including nested arrays and nulls.
	f.Add([]byte("+OK\r\n-ERR boom\r\n:-42\r\n$5\r\nhello\r\n$-1\r\n*-1\r\n"))
	f.Add([]byte("*3\r\n:1\r\n*1\r\n$1\r\nx\r\n$0\r\n\r\n"))
	// Truncated frames.
	f.Add([]byte("*2\r\n$4\r\nPING\r\n"))
	f.Add([]byte("$100\r\nshort"))
	f.Add([]byte("*1\r\n$4\r\nPI"))
	// Huge declared lengths (within and beyond the limits).
	f.Add([]byte("*10000000\r\n"))
	f.Add([]byte("$999999999999\r\n"))
	f.Add([]byte("*99999999999999999999\r\n"))
	// Negative counts and malformed integers.
	f.Add([]byte("*-2\r\n"))
	f.Add([]byte("$-7\r\nx\r\n"))
	f.Add([]byte(":12x\r\n"))
	f.Add([]byte("*+3\r\n"))
	// Nesting bomb.
	f.Add([]byte(strings.Repeat("*1\r\n", 40) + ":1\r\n"))
	// Missing terminators and stray bytes.
	f.Add([]byte("*1\r\n$2\r\nabX\r\n"))
	f.Add([]byte{0, '*', 0xff, '\r', '\n'})
	// Inline commands: whitespace runs, tabs, bare-LF termination, blank
	// lines between frames, and an over-limit unterminated line.
	f.Add([]byte("  CORE.GET \t 7 \r\n\r\nQUIT\n"))
	f.Add([]byte("PING" + strings.Repeat(" x", 300) + "\r\n"))
	f.Add([]byte(strings.Repeat("z", MaxInlineLen+3)))
	// Scratch-boundary cases for the arena path: an arg exactly at the
	// arena's initial growth size (256), one straddling it, and a frame at
	// the argument-count limit shape (many tiny args in one command).
	f.Add([]byte("*2\r\n$4\r\nECHO\r\n$256\r\n" + strings.Repeat("a", 256) + "\r\n"))
	f.Add([]byte("*2\r\n$255\r\n" + strings.Repeat("b", 255) + "\r\n$2\r\ncd\r\n"))
	f.Add([]byte(argsBomb(64)))
	f.Add([]byte("*1048577\r\n$1\r\nx\r\n")) // MaxCommandArgs+1 declared

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCommands(t, data)
		fuzzValues(t, data)
		diffParserReader(t, data)
	})
}

// argsBomb builds one command of n one-byte args — the many-args shape
// that stresses the ends/Args bookkeeping rather than the arena.
func argsBomb(n int) string {
	var sb strings.Builder
	sb.WriteString("*")
	sb.WriteString(strconv.Itoa(n))
	sb.WriteString("\r\n")
	for i := 0; i < n; i++ {
		sb.WriteString("$1\r\nq\r\n")
	}
	return sb.String()
}

// fuzzCommands drives the server-side half: parse a pipelined run of
// commands, re-encode, re-parse, compare.
func fuzzCommands(t *testing.T, data []byte) {
	r := NewReader(bytes.NewReader(data))
	var cmd Command
	var parsed [][][]byte
	for len(parsed) < 128 {
		err := r.ReadCommand(&cmd)
		if err != nil {
			checkReadErr(t, err)
			break
		}
		if len(cmd.Args) == 0 {
			t.Fatalf("ReadCommand returned no args without error")
		}
		parsed = append(parsed, copyArgs(&cmd))
	}
	if len(parsed) == 0 {
		return
	}
	var wire bytes.Buffer
	w := NewWriter(&wire)
	for _, args := range parsed {
		if err := w.WriteCommand(string(args[0]), args[1:]...); err != nil {
			t.Fatalf("WriteCommand(%q): %v", args, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r2 := NewReader(&wire)
	var cmd2 Command
	for i, want := range parsed {
		if err := r2.ReadCommand(&cmd2); err != nil {
			t.Fatalf("re-read command %d: %v", i, err)
		}
		got := cmd2.Args
		if len(got) != len(want) {
			t.Fatalf("command %d: %d args after round-trip, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("command %d arg %d: %q != %q", i, j, got[j], want[j])
			}
		}
	}
}

// fuzzValues drives the client-side half the same way.
func fuzzValues(t *testing.T, data []byte) {
	r := NewReader(bytes.NewReader(data))
	var parsed []Value
	for len(parsed) < 128 {
		v, err := r.ReadValue()
		if err != nil {
			checkReadErr(t, err)
			break
		}
		parsed = append(parsed, v)
	}
	if len(parsed) == 0 {
		return
	}
	var wire bytes.Buffer
	w := NewWriter(&wire)
	for _, v := range parsed {
		if err := w.WriteValue(v); err != nil {
			t.Fatalf("WriteValue(%v): %v", v, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r2 := NewReader(&wire)
	for i, want := range parsed {
		got, err := r2.ReadValue()
		if err != nil {
			t.Fatalf("re-read value %d: %v", i, err)
		}
		if !valueEqual(got, want) {
			t.Fatalf("value %d: %v != %v after round-trip", i, got, want)
		}
	}
}

// checkReadErr asserts a read failure is one of the contracted kinds.
func checkReadErr(t *testing.T, err error) {
	var pe *ProtocolError
	if errors.As(err, &pe) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return
	}
	t.Fatalf("unexpected error kind: %v", err)
}
