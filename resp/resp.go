// Package resp implements the RESP2 wire protocol (the Redis
// serialization protocol) with zero dependencies beyond the standard
// library: a Reader that parses commands (multibulk and inline forms) and
// replies off a bufio-buffered stream, and a Writer that encodes the five
// RESP2 reply types and client command frames.
//
// The codec is the transport substrate of the networked serving layer
// (package server and package client build on it); it knows nothing about
// k-cores. RESP was chosen because it is trivially incremental — a
// pipelined burst of commands is just frames back to back — which maps
// directly onto the serving pipeline's batch coalescing, and because its
// text framing makes the server driveable from redis-cli and netcat.
//
// # Safety
//
// The protocol carries declared lengths ("$1000000000\r\n…"), so a
// malformed or adversarial peer could ask the codec to allocate
// arbitrarily. Every declared length is bounded before any allocation
// (MaxBulkLen for bulk payloads, MaxArrayLen for array headers, and
// nested-array depth by MaxDepth), mirroring the graph.MaxVertexID
// discipline: corrupt input yields a *ProtocolError, never a panic or an
// unbounded allocation. FuzzRESP pins this down.
package resp

import "fmt"

// Wire-format limits. Out-of-bounds declared lengths fail with a
// *ProtocolError before anything is allocated.
const (
	// MaxBulkLen bounds one bulk-string payload (64 MiB, far above any
	// CORE.* frame but small enough that a corrupt length cannot wedge a
	// connection goroutine in a huge allocation).
	MaxBulkLen = 64 << 20
	// MaxArrayLen bounds one declared reply array. A CORE.MGET sweep
	// reply carries one integer per vertex, so the bound tracks the
	// vertex-universe ceiling.
	MaxArrayLen = 1 << 26
	// MaxCommandArgs bounds one inbound command's multibulk count —
	// tighter than MaxArrayLen (Redis uses the same 1M figure) because a
	// server parses commands from untrusted peers before any
	// application-level validation can run.
	MaxCommandArgs = 1 << 20
	// MaxInlineLen bounds one inline-command line.
	MaxInlineLen = 64 << 10
	// MaxDepth bounds nested reply arrays. The k-core protocol never
	// nests deeper than one level; a deeply nested frame is an attack.
	MaxDepth = 8
)

// ProtocolError reports malformed wire data. A server closes the
// connection after replying with it; a client treats the connection as
// poisoned.
type ProtocolError struct {
	msg string
}

func protoErrorf(format string, args ...any) *ProtocolError {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

func (e *ProtocolError) Error() string { return "resp: protocol error: " + e.msg }

// Kind discriminates the RESP2 reply types a Value can hold.
type Kind uint8

const (
	// SimpleString is a "+OK\r\n"-style status reply; Value.Str holds it.
	SimpleString Kind = iota
	// Error is a "-ERR …\r\n" reply; Value.Str holds the message.
	Error
	// Integer is a ":123\r\n" reply; Value.Int holds it.
	Integer
	// Bulk is a "$<len>\r\n<bytes>\r\n" reply; Value.Str holds the bytes.
	Bulk
	// Array is a "*<n>\r\n…" reply; Value.Array holds the elements.
	Array
	// Nil is the null bulk ("$-1\r\n") or null array ("*-1\r\n").
	Nil
)

func (k Kind) String() string {
	switch k {
	case SimpleString:
		return "simple-string"
	case Error:
		return "error"
	case Integer:
		return "integer"
	case Bulk:
		return "bulk"
	case Array:
		return "array"
	case Nil:
		return "nil"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is one decoded RESP reply. Which field is meaningful depends on
// Kind; the zero Value is the empty simple string.
type Value struct {
	Kind  Kind
	Str   []byte  // SimpleString, Error, Bulk
	Int   int64   // Integer
	Array []Value // Array
}

// String renders the value for diagnostics (not wire format).
func (v Value) String() string {
	switch v.Kind {
	case SimpleString:
		return string(v.Str)
	case Error:
		return "(error) " + string(v.Str)
	case Integer:
		return fmt.Sprintf("%d", v.Int)
	case Bulk:
		return string(v.Str)
	case Array:
		return fmt.Sprintf("array(%d)", len(v.Array))
	case Nil:
		return "(nil)"
	}
	return "(?)"
}
