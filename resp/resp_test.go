package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// copyArgs deep-copies cmd.Args — the scratch is recycled by the next
// ReadCommand/Parse, so tests that retain commands must copy them out.
func copyArgs(cmd *Command) [][]byte {
	out := make([][]byte, len(cmd.Args))
	for i, a := range cmd.Args {
		out[i] = append([]byte(nil), a...)
	}
	return out
}

func readAllCommands(t *testing.T, wire string) [][][]byte {
	t.Helper()
	r := NewReader(strings.NewReader(wire))
	var cmd Command
	var cmds [][][]byte
	for {
		err := r.ReadCommand(&cmd)
		if err == io.EOF {
			return cmds
		}
		if err != nil {
			t.Fatalf("ReadCommand: %v", err)
		}
		cmds = append(cmds, copyArgs(&cmd))
	}
}

func TestReadCommandMultibulk(t *testing.T) {
	cmds := readAllCommands(t, "*3\r\n$8\r\nCORE.GET\r\n$2\r\n42\r\n$0\r\n\r\n")
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	want := []string{"CORE.GET", "42", ""}
	for i, w := range want {
		if string(cmds[0][i]) != w {
			t.Fatalf("arg %d = %q, want %q", i, cmds[0][i], w)
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds := readAllCommands(t, "PING\r\n  CORE.GET   7 \r\nQUIT\n")
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
	if string(cmds[1][0]) != "CORE.GET" || string(cmds[1][1]) != "7" {
		t.Fatalf("inline args = %q", cmds[1])
	}
}

func TestEmptyFramesAreSkipped(t *testing.T) {
	cmds := readAllCommands(t, "\r\n*0\r\n\nPING\r\n*0\r\n")
	if len(cmds) != 1 || string(cmds[0][0]) != "PING" {
		t.Fatalf("got %v, want just PING", cmds)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	var wire bytes.Buffer
	w := NewWriter(&wire)
	for i := 0; i < 10; i++ {
		w.WriteCommand("PING")
	}
	w.Flush()
	cmds := readAllCommands(t, wire.String())
	if len(cmds) != 10 {
		t.Fatalf("got %d commands, want 10", len(cmds))
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"*-2\r\n",                          // negative multibulk count
		"*1\r\n$-5\r\n",                    // negative bulk length in command
		"*1\r\n:5\r\n",                     // non-bulk argument
		"*1\r\n$3\r\nab\r\n",               // payload shorter than declared
		"*1\r\n$2\r\nabcd",                 // missing CRLF after payload
		"*x\r\n",                           // non-numeric count
		"*1\r\n$999999999999999999999\r\n", // overflowing length
		"*1\r\n$70000000\r\n",              // bulk beyond MaxBulkLen
		"*99999999999\r\n",                 // count beyond MaxArrayLen
	}
	for _, wire := range cases {
		r := NewReader(strings.NewReader(wire))
		var cmd Command
		err := r.ReadCommand(&cmd)
		var pe *ProtocolError
		if !errors.As(err, &pe) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("wire %q: err = %v, want protocol error or unexpected EOF", wire, err)
		}
	}
}

func TestTruncatedCommandIsUnexpectedEOF(t *testing.T) {
	// A clean close between frames is io.EOF; a close mid-frame must be
	// distinguishable so the server can log it as a protocol failure.
	for _, wire := range []string{"*2\r\n$4\r\nPING\r\n", "*1\r\n$4\r\nPI", "*1\r\n"} {
		r := NewReader(strings.NewReader(wire))
		var cmd Command
		if err := r.ReadCommand(&cmd); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("wire %q: err = %v, want io.ErrUnexpectedEOF", wire, err)
		}
	}
}

func TestErrorReplyInjectionNeutralized(t *testing.T) {
	// Error (and status) payloads routinely echo untrusted client bytes;
	// embedded CR/LF must not be able to forge extra reply frames.
	var wire bytes.Buffer
	w := NewWriter(&wire)
	w.WriteError("ERR bad arg '1\r\n:42'")
	w.WriteSimple("sneaky\r\n+OK")
	w.Flush()
	r := NewReader(&wire)
	v, err := r.ReadValue()
	if err != nil || v.Kind != Error || string(v.Str) != "ERR bad arg '1  :42'" {
		t.Fatalf("error reply = %v, %v", v, err)
	}
	v, err = r.ReadValue()
	if err != nil || v.Kind != SimpleString || string(v.Str) != "sneaky  +OK" {
		t.Fatalf("simple reply = %v, %v", v, err)
	}
	if _, err := r.ReadValue(); err != io.EOF {
		t.Fatalf("forged frame survived: %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		{Kind: SimpleString, Str: []byte("OK")},
		{Kind: Error, Str: []byte("ERR boom")},
		{Kind: Integer, Int: -42},
		{Kind: Bulk, Str: []byte("hello\r\nworld")}, // payload may contain CRLF
		{Kind: Bulk, Str: []byte{}},
		{Kind: Nil},
		{Kind: Array, Array: []Value{
			{Kind: Integer, Int: 1},
			{Kind: Array, Array: []Value{{Kind: Bulk, Str: []byte("x")}}},
			{Kind: Nil},
		}},
		{Kind: Array, Array: []Value{}},
	}
	var wire bytes.Buffer
	w := NewWriter(&wire)
	for _, v := range vals {
		if err := w.WriteValue(v); err != nil {
			t.Fatalf("WriteValue(%v): %v", v, err)
		}
	}
	w.Flush()
	r := NewReader(&wire)
	for i, want := range vals {
		got, err := r.ReadValue()
		if err != nil {
			t.Fatalf("ReadValue %d: %v", i, err)
		}
		if !valueEqual(got, want) {
			t.Fatalf("value %d: got %v, want %v", i, got, want)
		}
	}
	if _, err := r.ReadValue(); err != io.EOF {
		t.Fatalf("trailing ReadValue err = %v, want io.EOF", err)
	}
}

func TestReadValueMalformed(t *testing.T) {
	cases := []string{
		"?\r\n",        // unknown type byte
		":12x\r\n",     // bad digit
		"$-2\r\n",      // negative non-null bulk
		"*-2\r\n",      // negative non-null array
		"*2\r\n:1\r\n", // truncated array
		strings.Repeat("*1\r\n", MaxDepth+2) + ":1\r\n", // nesting bomb
	}
	for _, wire := range cases {
		r := NewReader(strings.NewReader(wire))
		_, err := r.ReadValue()
		var pe *ProtocolError
		if !errors.As(err, &pe) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("wire %q: err = %v, want protocol error or unexpected EOF", wire, err)
		}
	}
}

func TestHugeDeclaredLengthDoesNotAllocate(t *testing.T) {
	// A declared multibulk count within the limit but with no payload must
	// fail from missing data without allocating count-many slots up front.
	r := NewReader(strings.NewReader("*1000000\r\n"))
	var cmd Command
	if err := r.ReadCommand(&cmd); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Beyond MaxCommandArgs the count itself is the protocol error.
	r = NewReader(strings.NewReader("*10000000\r\n"))
	var pe *ProtocolError
	if err := r.ReadCommand(&cmd); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want protocol error", err)
	}
}

func valueEqual(a, b Value) bool {
	if a.Kind != b.Kind || a.Int != b.Int || !bytes.Equal(a.Str, b.Str) || len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !valueEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}
