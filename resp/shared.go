package resp

import "strconv"

// Interned shared replies: the hot constants of the serving path are
// pre-encoded once so the steady state emits them with a single buffer
// copy — no formatting, no per-reply bytes. kiwi does the same in its
// shared-object table; here the table is just package-level slices.
var (
	okReply   = []byte("+OK\r\n")
	pongReply = []byte("+PONG\r\n")
	nullReply = []byte("$-1\r\n")
)

// smallIntCacheSize bounds the pre-encoded integer-reply cache. Core
// numbers are small (a vertex's coreness rarely exceeds a few hundred),
// so almost every CORE.GET/CORE.MGET element reply hits this table.
const smallIntCacheSize = 1024

// intReplies[n] is the full ":<n>\r\n" frame for 0 <= n < 1024.
var intReplies = func() [smallIntCacheSize][]byte {
	var t [smallIntCacheSize][]byte
	for i := range t {
		t[i] = []byte(":" + strconv.Itoa(i) + "\r\n")
	}
	return t
}()
