package resp

import (
	"bufio"
	"errors"
	"io"
)

// Reader decodes RESP frames from an underlying stream through an
// internal bufio.Reader. It is not safe for concurrent use; the serving
// layer gives every connection its own Reader.
type Reader struct {
	br *bufio.Reader
	// lineBuf is the slow-path line accumulator: readLine normally
	// returns a view into the bufio buffer (zero allocations), but a line
	// spanning a buffer refill is assembled here and the buffer reused.
	lineBuf []byte
}

// NewReader returns a Reader over r with a default-sized buffer.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// NewReaderSize returns a Reader whose internal buffer has at least size
// bytes.
func NewReaderSize(r io.Reader, size int) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, size)}
}

// Reset discards buffered data and state and switches the Reader to read
// from r, keeping the internal buffer (the sibling of bufio.Reader.Reset,
// for connection reuse without reallocation).
func (r *Reader) Reset(rd io.Reader) { r.br.Reset(rd) }

// Buffered reports whether undecoded bytes are already buffered — the
// pipelining probe: a server that finds the buffer empty after a command
// knows the pipelined burst is over and flushes its replies.
func (r *Reader) Buffered() bool { return r.br.Buffered() > 0 }

// ReadCommand reads one client command into cmd: either a multibulk frame
// ("*2\r\n$4\r\nPING\r\n$2\r\nhi\r\n", what every real client sends) or
// an inline command ("PING hi\r\n", for netcat-style debugging). The
// Command's scratch (argument headers and the flat byte arena) is
// recycled across calls, so the steady-state cost is zero allocations per
// command; cmd.Args is valid only until the next ReadCommand on the same
// Command (see the Command aliasing contract). io.EOF is returned
// untouched when the stream ends cleanly between commands.
func (r *Reader) ReadCommand(cmd *Command) error {
	for {
		err := r.readCommandOnce(cmd)
		// An empty multibulk ("*0\r\n") is valid no-op traffic; skip it so
		// callers never see a zero-argument command.
		if err != nil || len(cmd.Args) > 0 {
			return err
		}
	}
}

func (r *Reader) readCommandOnce(cmd *Command) error {
	cmd.reset()
	c, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	if c != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return err
		}
		return r.readInline(cmd)
	}
	n, err := r.readInt()
	if err != nil {
		return err
	}
	if n < 0 {
		return protoErrorf("negative multibulk count %d", n)
	}
	if n > MaxCommandArgs {
		return protoErrorf("multibulk count %d exceeds limit %d", n, MaxCommandArgs)
	}
	// Arguments land in the arena one at a time: a huge declared count
	// with no payload behind it must fail on read, not on allocation.
	for i := int64(0); i < n; i++ {
		if err := r.readBulkArg(cmd); err != nil {
			return err
		}
	}
	cmd.materialize()
	return nil
}

// readBulkArg reads one "$<len>\r\n<bytes>\r\n" command argument into
// cmd's arena. Null bulks are invalid inside commands.
func (r *Reader) readBulkArg(cmd *Command) error {
	c, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if c != '$' {
		return protoErrorf("expected bulk argument ('$'), got %q", c)
	}
	n, err := r.readInt()
	if err != nil {
		return err
	}
	if n < 0 {
		return protoErrorf("negative bulk length %d in command", n)
	}
	if n > MaxBulkLen {
		return protoErrorf("bulk length %d exceeds limit %d", n, MaxBulkLen)
	}
	if _, err := io.ReadFull(r.br, cmd.grow(int(n))); err != nil {
		return unexpectedEOF(err)
	}
	cmd.ends = append(cmd.ends, len(cmd.arena))
	return r.expectCRLF()
}

// readBulkBody reads n payload bytes plus the trailing CRLF into a fresh
// caller-owned slice (the reply path, where values outlive the read).
func (r *Reader) readBulkBody(n int64) ([]byte, error) {
	if n > MaxBulkLen {
		return nil, protoErrorf("bulk length %d exceeds limit %d", n, MaxBulkLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if err := r.expectCRLF(); err != nil {
		return nil, err
	}
	return buf, nil
}

// readInline parses a whitespace-separated inline command line. Tokens
// are copied into the arena exactly once, straight off the line view.
func (r *Reader) readInline(cmd *Command) error {
	line, err := r.readLine(MaxInlineLen)
	if err != nil {
		return err
	}
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if j > i {
			cmd.appendArg(line[i:j])
		}
		i = j
	}
	// A blank line is ignored (netcat users hitting enter), like the
	// empty multibulk: the ReadCommand loop reads on.
	cmd.materialize()
	return nil
}

// ReadValue reads one reply value: simple string, error, integer, bulk,
// array (recursively), or nil. It is the client half of the codec; the
// returned Value owns its memory.
func (r *Reader) ReadValue() (Value, error) {
	return r.readValue(0)
}

func (r *Reader) readValue(depth int) (Value, error) {
	if depth > MaxDepth {
		return Value{}, protoErrorf("reply nesting exceeds depth %d", MaxDepth)
	}
	c, err := r.br.ReadByte()
	if err != nil {
		if depth > 0 {
			return Value{}, unexpectedEOF(err)
		}
		return Value{}, err
	}
	switch c {
	case '+':
		line, err := r.readStatusLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: SimpleString, Str: line}, nil
	case '-':
		line, err := r.readStatusLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Error, Str: line}, nil
	case ':':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Integer, Int: n}, nil
	case '$':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 {
			return Value{}, protoErrorf("negative bulk length %d", n)
		}
		body, err := r.readBulkBody(n)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Bulk, Str: body}, nil
	case '*':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 {
			return Value{}, protoErrorf("negative array length %d", n)
		}
		if n > MaxArrayLen {
			return Value{}, protoErrorf("array length %d exceeds limit %d", n, MaxArrayLen)
		}
		elems := make([]Value, 0, min(n, 64))
		for i := int64(0); i < n; i++ {
			v, err := r.readValue(depth + 1)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, v)
		}
		return Value{Kind: Array, Array: elems}, nil
	default:
		return Value{}, protoErrorf("unexpected frame byte %q", c)
	}
}

// readStatusLine reads a simple-string or error payload into a fresh
// slice (the Value owns it). A stray CR inside the line is rejected: the
// Writer neutralizes CR/LF when encoding these (reply-injection defense),
// so no compliant peer produces one and accepting it would break the
// codec's round-trip property (FuzzRESP).
func (r *Reader) readStatusLine() ([]byte, error) {
	line, err := r.readLine(MaxInlineLen)
	if err != nil {
		return nil, err
	}
	for _, c := range line {
		if c == '\r' {
			return nil, protoErrorf("bare CR in status line")
		}
	}
	return append([]byte(nil), line...), nil
}

// readInt reads a CRLF-terminated decimal (the payload of ':', and the
// length of '$' and '*', whose type byte the caller already consumed).
func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine(maxIntLineLen)
	if err != nil {
		return 0, err
	}
	n, perr := parseIntLine(line)
	if perr != nil {
		return 0, perr
	}
	return n, nil
}

// maxIntLineLen bounds a decimal integer line — lengths and integers are
// all short; anything longer is an attack or corruption.
const maxIntLineLen = 32

// parseIntLine parses a decimal int64 from a line with the wire format's
// rules (optional sign, digits only, overflow guarded). Shared by the
// streaming Reader and the incremental Parser so the two dialects cannot
// drift.
func parseIntLine(line []byte) (int64, *ProtocolError) {
	if len(line) == 0 {
		return 0, protoErrorf("empty integer")
	}
	i, neg := 0, false
	if line[0] == '-' || line[0] == '+' {
		neg = line[0] == '-'
		i++
		if i == len(line) {
			return 0, protoErrorf("bare sign integer")
		}
	}
	var n int64
	for ; i < len(line); i++ {
		d := line[i]
		if d < '0' || d > '9' {
			return 0, protoErrorf("bad digit %q in integer", d)
		}
		if n > (1<<62)/10 {
			return 0, protoErrorf("integer overflow")
		}
		n = n*10 + int64(d-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// readLine reads up to CRLF (tolerating bare LF for inline/netcat use),
// returning the line without its terminator. Lines beyond limit bytes are
// a protocol error — lengths and statuses are all short.
//
// The returned slice is a view into the Reader's buffers, valid only
// until the next read; callers either consume it immediately (integers,
// inline tokens copied into the command arena) or copy it out (status
// lines). The common whole-line-buffered case allocates nothing.
func (r *Reader) readLine(limit int) ([]byte, error) {
	frag, err := r.br.ReadSlice('\n')
	if err == nil {
		if len(frag) > limit+2 {
			return nil, protoErrorf("line exceeds %d bytes", limit)
		}
		return trimLineEnd(frag), nil
	}
	if err != bufio.ErrBufferFull {
		// Over-limit data is a protocol error even when the terminator
		// never arrived — the eager check keeps this in lockstep with the
		// incremental Parser (differentially fuzzed against this Reader).
		if len(frag) > limit+2 {
			return nil, protoErrorf("line exceeds %d bytes", limit)
		}
		return nil, unexpectedEOF(err)
	}
	// Slow path: the line spans a buffer refill; assemble it in lineBuf.
	r.lineBuf = append(r.lineBuf[:0], frag...)
	for {
		if len(r.lineBuf) > limit+2 {
			return nil, protoErrorf("line exceeds %d bytes", limit)
		}
		frag, err = r.br.ReadSlice('\n')
		r.lineBuf = append(r.lineBuf, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			if len(r.lineBuf) > limit+2 {
				return nil, protoErrorf("line exceeds %d bytes", limit)
			}
			return nil, unexpectedEOF(err)
		}
	}
	if len(r.lineBuf) > limit+2 {
		return nil, protoErrorf("line exceeds %d bytes", limit)
	}
	return trimLineEnd(r.lineBuf), nil
}

// trimLineEnd strips the trailing LF and optional CR.
func trimLineEnd(line []byte) []byte {
	line = line[:len(line)-1] // strip LF
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// expectCRLF consumes the terminator after a bulk payload.
func (r *Reader) expectCRLF() error {
	cr, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	lf, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if cr != '\r' || lf != '\n' {
		return protoErrorf("bulk payload not CRLF-terminated")
	}
	return nil
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can tell a clean close (io.EOF between frames) from a truncated frame.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
