package resp

import (
	"bufio"
	"errors"
	"io"
)

// Reader decodes RESP frames from an underlying stream through an
// internal bufio.Reader. It is not safe for concurrent use; the serving
// layer gives every connection its own Reader.
type Reader struct {
	br *bufio.Reader
}

// NewReader returns a Reader over r with a default-sized buffer.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// NewReaderSize returns a Reader whose internal buffer has at least size
// bytes.
func NewReaderSize(r io.Reader, size int) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, size)}
}

// Buffered reports whether undecoded bytes are already buffered — the
// pipelining probe: a server that finds the buffer empty after a command
// knows the pipelined burst is over and flushes its replies.
func (r *Reader) Buffered() bool { return r.br.Buffered() > 0 }

// ReadCommand reads one client command: either a multibulk frame
// ("*2\r\n$4\r\nPING\r\n$2\r\nhi\r\n", what every real client sends) or
// an inline command ("PING hi\r\n", for netcat-style debugging). It
// returns the command's arguments; the slices are freshly allocated and
// owned by the caller. io.EOF is returned untouched when the stream ends
// cleanly between commands.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		args, err := r.readCommandOnce()
		// An empty multibulk ("*0\r\n") is valid no-op traffic; skip it so
		// callers never see a zero-argument command.
		if err != nil || len(args) > 0 {
			return args, err
		}
	}
}

func (r *Reader) readCommandOnce() ([][]byte, error) {
	c, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if c != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		return r.readInline()
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, protoErrorf("negative multibulk count %d", n)
	}
	if n > MaxCommandArgs {
		return nil, protoErrorf("multibulk count %d exceeds limit %d", n, MaxCommandArgs)
	}
	// Allocate incrementally (capped hint): a huge declared count with no
	// payload behind it must fail on read, not on make().
	args := make([][]byte, 0, min(n, 64))
	for i := int64(0); i < n; i++ {
		arg, err := r.readBulkArg()
		if err != nil {
			return nil, err
		}
		args = append(args, arg)
	}
	return args, nil
}

// readBulkArg reads one "$<len>\r\n<bytes>\r\n" command argument. Null
// bulks are invalid inside commands.
func (r *Reader) readBulkArg() ([]byte, error) {
	c, err := r.br.ReadByte()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	if c != '$' {
		return nil, protoErrorf("expected bulk argument ('$'), got %q", c)
	}
	n, err := r.readInt()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, protoErrorf("negative bulk length %d in command", n)
	}
	return r.readBulkBody(n)
}

// readBulkBody reads n payload bytes plus the trailing CRLF.
func (r *Reader) readBulkBody(n int64) ([]byte, error) {
	if n > MaxBulkLen {
		return nil, protoErrorf("bulk length %d exceeds limit %d", n, MaxBulkLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if err := r.expectCRLF(); err != nil {
		return nil, err
	}
	return buf, nil
}

// readInline parses a whitespace-separated inline command line.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(MaxInlineLen)
	if err != nil {
		return nil, err
	}
	var args [][]byte
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if j > i {
			args = append(args, append([]byte(nil), line[i:j]...))
		}
		i = j
	}
	// A blank line is ignored (netcat users hitting enter), like the
	// empty multibulk: the ReadCommand loop reads on.
	return args, nil
}

// ReadValue reads one reply value: simple string, error, integer, bulk,
// array (recursively), or nil. It is the client half of the codec.
func (r *Reader) ReadValue() (Value, error) {
	return r.readValue(0)
}

func (r *Reader) readValue(depth int) (Value, error) {
	if depth > MaxDepth {
		return Value{}, protoErrorf("reply nesting exceeds depth %d", MaxDepth)
	}
	c, err := r.br.ReadByte()
	if err != nil {
		if depth > 0 {
			return Value{}, unexpectedEOF(err)
		}
		return Value{}, err
	}
	switch c {
	case '+':
		line, err := r.readStatusLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: SimpleString, Str: line}, nil
	case '-':
		line, err := r.readStatusLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Error, Str: line}, nil
	case ':':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Integer, Int: n}, nil
	case '$':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 {
			return Value{}, protoErrorf("negative bulk length %d", n)
		}
		body, err := r.readBulkBody(n)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Bulk, Str: body}, nil
	case '*':
		n, err := r.readInt()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 {
			return Value{}, protoErrorf("negative array length %d", n)
		}
		if n > MaxArrayLen {
			return Value{}, protoErrorf("array length %d exceeds limit %d", n, MaxArrayLen)
		}
		elems := make([]Value, 0, min(n, 64))
		for i := int64(0); i < n; i++ {
			v, err := r.readValue(depth + 1)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, v)
		}
		return Value{Kind: Array, Array: elems}, nil
	default:
		return Value{}, protoErrorf("unexpected frame byte %q", c)
	}
}

// readStatusLine reads a simple-string or error payload. A stray CR
// inside the line is rejected: the Writer neutralizes CR/LF when
// encoding these (reply-injection defense), so no compliant peer
// produces one and accepting it would break the codec's round-trip
// property (FuzzRESP).
func (r *Reader) readStatusLine() ([]byte, error) {
	line, err := r.readLine(MaxInlineLen)
	if err != nil {
		return nil, err
	}
	for _, c := range line {
		if c == '\r' {
			return nil, protoErrorf("bare CR in status line")
		}
	}
	return line, nil
}

// readInt reads a CRLF-terminated decimal (the payload of ':', and the
// length of '$' and '*', whose type byte the caller already consumed).
func (r *Reader) readInt() (int64, error) {
	line, err := r.readLine(32)
	if err != nil {
		return 0, err
	}
	if len(line) == 0 {
		return 0, protoErrorf("empty integer")
	}
	i, neg := 0, false
	if line[0] == '-' || line[0] == '+' {
		neg = line[0] == '-'
		i++
		if i == len(line) {
			return 0, protoErrorf("bare sign integer")
		}
	}
	var n int64
	for ; i < len(line); i++ {
		d := line[i]
		if d < '0' || d > '9' {
			return 0, protoErrorf("bad digit %q in integer", d)
		}
		if n > (1<<62)/10 {
			return 0, protoErrorf("integer overflow")
		}
		n = n*10 + int64(d-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

// readLine reads up to CRLF (tolerating bare LF for inline/netcat use),
// returning the line without its terminator. Lines beyond limit bytes are
// a protocol error — lengths and statuses are all short.
func (r *Reader) readLine(limit int) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.br.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if err != bufio.ErrBufferFull {
			return nil, unexpectedEOF(err)
		}
		if len(line) > limit {
			return nil, protoErrorf("line exceeds %d bytes", limit)
		}
	}
	if len(line) > limit+2 {
		return nil, protoErrorf("line exceeds %d bytes", limit)
	}
	line = line[:len(line)-1] // strip LF
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// expectCRLF consumes the terminator after a bulk payload.
func (r *Reader) expectCRLF() error {
	cr, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	lf, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if cr != '\r' || lf != '\n' {
		return protoErrorf("bulk payload not CRLF-terminated")
	}
	return nil
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can tell a clean close (io.EOF between frames) from a truncated frame.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
