package resp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestCommandScratchReuse pins the Command aliasing contract: arg slices
// captured from one ReadCommand are views into scratch that the next
// ReadCommand on the same Command recycles — they are invalidated, not
// silently preserved. A caller that needs an argument beyond dispatch
// must copy it; the server's dispatch loop is written against exactly
// this contract.
func TestCommandScratchReuse(t *testing.T) {
	wire := "*2\r\n$3\r\nfoo\r\n$3\r\nbar\r\n" + "*2\r\n$3\r\nbaz\r\n$3\r\nqux\r\n"
	r := NewReader(strings.NewReader(wire))
	var cmd Command

	if err := r.ReadCommand(&cmd); err != nil {
		t.Fatalf("ReadCommand 1: %v", err)
	}
	// Capture the raw slices (the aliasing hazard) plus their contents.
	captured := append([][]byte(nil), cmd.Args...)
	if string(captured[0]) != "foo" || string(captured[1]) != "bar" {
		t.Fatalf("first command args = %q", captured)
	}

	if err := r.ReadCommand(&cmd); err != nil {
		t.Fatalf("ReadCommand 2: %v", err)
	}
	if string(cmd.Args[0]) != "baz" || string(cmd.Args[1]) != "qux" {
		t.Fatalf("second command args = %q", cmd.Args)
	}
	// The second read recycles the arena, so the captured slices now alias
	// the second command's bytes. Asserting the overwrite (rather than
	// merely not asserting preservation) keeps this test honest: if the
	// implementation ever starts allocating fresh args per command, the
	// zero-alloc design has regressed and this fails loudly.
	if string(captured[0]) != "baz" || string(captured[1]) != "qux" {
		t.Fatalf("captured args = %q, want them invalidated (overwritten by second read)", captured)
	}
}

// TestReadCommandSteadyStateZeroAlloc asserts the codec-layer half of
// the zero-alloc contract: once the Command scratch is warm, reading a
// pipelined run of commands performs no allocations at all.
func TestReadCommandSteadyStateZeroAlloc(t *testing.T) {
	frame := []byte("*3\r\n$8\r\nCORE.GET\r\n$2\r\n42\r\n$4\r\nPING\r\n")
	var burst []byte
	for i := 0; i < 64; i++ {
		burst = append(burst, frame...)
	}
	src := bytes.NewReader(burst)
	r := NewReader(src)
	var cmd Command
	// Warm up: first reads size the arena, ends, and Args headers.
	if err := r.ReadCommand(&cmd); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	avg := testing.AllocsPerRun(20, func() {
		src.Reset(burst)
		r.Reset(src)
		for i := 0; i < 64; i++ {
			if err := r.ReadCommand(&cmd); err != nil {
				t.Fatalf("ReadCommand: %v", err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state ReadCommand allocates %.2f allocs per 64-command burst, want 0", avg)
	}
}

// TestCommandArenaShrinks checks an oversized command doesn't pin its
// arena on the connection forever.
func TestCommandArenaShrinks(t *testing.T) {
	big := strings.Repeat("x", arenaShrinkCap+1)
	wire := "*2\r\n$4\r\nECHO\r\n$" + strconv.Itoa(len(big)) + "\r\n" + big + "\r\n" +
		"*1\r\n$4\r\nPING\r\n"
	r := NewReader(strings.NewReader(wire))
	var cmd Command
	if err := r.ReadCommand(&cmd); err != nil {
		t.Fatalf("big command: %v", err)
	}
	if err := r.ReadCommand(&cmd); err != nil {
		t.Fatalf("small command: %v", err)
	}
	if cap(cmd.arena) > arenaShrinkCap {
		t.Fatalf("arena cap %d still above shrink bound %d after small command", cap(cmd.arena), arenaShrinkCap)
	}
}
