package resp

import (
	"bufio"
	"bytes"
	"io"
	"strconv"
	"strings"
)

// Writer encodes RESP frames onto an underlying stream through an
// internal bufio.Writer. Nothing reaches the wire until Flush — the
// server batches a pipelined burst's replies into one syscall, the
// client batches Send-ed commands the same way. Not safe for concurrent
// use.
type Writer struct {
	bw  *bufio.Writer
	scr [32]byte // integer formatting scratch
}

// NewWriter returns a Writer over w with a default-sized buffer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// NewWriterSize returns a Writer whose internal buffer has at least size
// bytes.
func NewWriterSize(w io.Writer, size int) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, size)}
}

// Reset discards unflushed data and switches the Writer to write to wr,
// keeping the internal buffer (for connection reuse without
// reallocation).
func (w *Writer) Reset(wr io.Writer) { w.bw.Reset(wr) }

// Flush writes everything buffered to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered returns the number of bytes not yet flushed.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

// WriteSimple writes a "+<s>\r\n" status reply. CR/LF in s would let the
// payload forge extra frames (reply injection), so both are replaced
// with spaces.
func (w *Writer) WriteSimple(s string) error {
	w.bw.WriteByte('+')
	w.writeLineSafe(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteError writes a "-<msg>\r\n" error reply; by convention msg starts
// with an uppercase code ("ERR …"). Error messages routinely echo
// untrusted client bytes, so CR/LF are replaced with spaces — otherwise
// one malformed argument could smuggle a forged reply frame into the
// stream and desynchronize every later reply on the connection.
func (w *Writer) WriteError(msg string) error {
	w.bw.WriteByte('-')
	w.writeLineSafe(msg)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteErrorBytes is WriteError for a message already assembled as
// bytes (the server's per-connection error scratch), avoiding the
// string conversion. The same CR/LF neutralization applies.
func (w *Writer) WriteErrorBytes(msg []byte) error {
	w.bw.WriteByte('-')
	if bytes.IndexByte(msg, '\r') < 0 && bytes.IndexByte(msg, '\n') < 0 {
		w.bw.Write(msg)
	} else {
		for _, c := range msg {
			if c == '\r' || c == '\n' {
				c = ' '
			}
			w.bw.WriteByte(c)
		}
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// writeLineSafe writes s with frame-terminator bytes neutralized. The
// common all-clean case is one WriteString.
func (w *Writer) writeLineSafe(s string) {
	if !strings.ContainsAny(s, "\r\n") {
		w.bw.WriteString(s)
		return
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.bw.WriteByte(c)
	}
}

// WriteOK writes the interned "+OK\r\n" reply.
func (w *Writer) WriteOK() error {
	_, err := w.bw.Write(okReply)
	return err
}

// WritePong writes the interned "+PONG\r\n" reply.
func (w *Writer) WritePong() error {
	_, err := w.bw.Write(pongReply)
	return err
}

// WriteInt writes a ":<n>\r\n" integer reply. Small non-negative values
// — the overwhelming majority of coreness replies — come from the
// interned table and skip formatting entirely.
func (w *Writer) WriteInt(n int64) error {
	if 0 <= n && n < smallIntCacheSize {
		_, err := w.bw.Write(intReplies[n])
		return err
	}
	w.bw.WriteByte(':')
	return w.writeIntLine(n)
}

// WriteBulk writes a "$<len>\r\n<b>\r\n" bulk reply.
func (w *Writer) WriteBulk(b []byte) error {
	w.bw.WriteByte('$')
	w.writeIntLine(int64(len(b)))
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkString is WriteBulk for a string payload, without the []byte
// conversion allocating on the caller.
func (w *Writer) WriteBulkString(s string) error {
	w.bw.WriteByte('$')
	w.writeIntLine(int64(len(s)))
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNull writes the interned null bulk reply "$-1\r\n".
func (w *Writer) WriteNull() error {
	_, err := w.bw.Write(nullReply)
	return err
}

// WriteArrayHeader writes "*<n>\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) error {
	w.bw.WriteByte('*')
	return w.writeIntLine(int64(n))
}

// WriteCommand writes one multibulk command frame — the client-side
// encoding of name plus args, each as a bulk string.
func (w *Writer) WriteCommand(name string, args ...[]byte) error {
	w.WriteArrayHeader(1 + len(args))
	w.WriteBulkString(name)
	var err error
	for _, a := range args {
		err = w.WriteBulk(a)
	}
	return err
}

// WriteValue writes v in wire format — the inverse of Reader.ReadValue,
// used by tests and the fuzzer to round-trip replies.
func (w *Writer) WriteValue(v Value) error {
	switch v.Kind {
	case SimpleString:
		return w.WriteSimple(string(v.Str))
	case Error:
		return w.WriteError(string(v.Str))
	case Integer:
		return w.WriteInt(v.Int)
	case Bulk:
		return w.WriteBulk(v.Str)
	case Array:
		w.WriteArrayHeader(len(v.Array))
		var err error
		for _, e := range v.Array {
			err = w.WriteValue(e)
		}
		return err
	case Nil:
		return w.WriteNull()
	}
	return protoErrorf("cannot encode Kind %v", v.Kind)
}

func (w *Writer) writeIntLine(n int64) error {
	w.bw.Write(strconv.AppendInt(w.scr[:0], n, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}
