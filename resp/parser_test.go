package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// parseAll drives a Parser over data fed in chunks of chunkSize bytes,
// the way an event loop would: append a read, parse what's complete,
// compact the consumed prefix. Returns the commands parsed and the
// terminal error (nil means all data consumed cleanly at a frame
// boundary).
func parseAll(t *testing.T, data []byte, chunkSize int) ([][][]byte, error) {
	t.Helper()
	var (
		p    Parser
		cmd  Command
		buf  []byte
		cmds [][][]byte
	)
	for off := 0; ; {
		for {
			n, err := p.Parse(buf, &cmd)
			if err == ErrIncomplete {
				buf = buf[n:] // compact skipped empty frames
				break
			}
			if err != nil {
				return cmds, err
			}
			cmds = append(cmds, copyArgs(&cmd))
			buf = buf[n:]
		}
		if off >= len(data) {
			if len(buf) > 0 {
				return cmds, io.ErrUnexpectedEOF
			}
			return cmds, nil
		}
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		// Rebuild the buffer with fresh backing to shake out any hidden
		// dependence on stable capacity beyond the documented prefix rule.
		buf = append(append(make([]byte, 0, len(buf)+end-off), buf...), data[off:end]...)
		off = end
	}
}

func TestParserBasic(t *testing.T) {
	wire := []byte("*3\r\n$8\r\nCORE.GET\r\n$2\r\n42\r\n$0\r\n\r\nPING extra\r\n*0\r\n\r\n*1\r\n$4\r\nQUIT\r\n")
	want := [][]string{
		{"CORE.GET", "42", ""},
		{"PING", "extra"},
		{"QUIT"},
	}
	for _, chunk := range []int{len(wire), 7, 1} {
		cmds, err := parseAll(t, wire, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if len(cmds) != len(want) {
			t.Fatalf("chunk %d: got %d commands, want %d", chunk, len(cmds), len(want))
		}
		for i, w := range want {
			if len(cmds[i]) != len(w) {
				t.Fatalf("chunk %d command %d: args %q, want %q", chunk, i, cmds[i], w)
			}
			for j := range w {
				if string(cmds[i][j]) != w[j] {
					t.Fatalf("chunk %d command %d arg %d: %q, want %q", chunk, i, j, cmds[i][j], w[j])
				}
			}
		}
	}
}

func TestParserMalformed(t *testing.T) {
	cases := []string{
		"*-2\r\n",
		"*1\r\n$-5\r\n",
		"*1\r\n:5\r\n",
		"*1\r\n$2\r\nabcd",
		"*x\r\n",
		"*1\r\n$999999999999999999999\r\n",
		"*1\r\n$70000000\r\n",
		"*99999999999\r\n",
	}
	for _, wire := range cases {
		var p Parser
		var cmd Command
		_, err := p.Parse([]byte(wire), &cmd)
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("wire %q: err = %v, want protocol error", wire, err)
		}
	}
}

func TestParserIncompleteThenResume(t *testing.T) {
	wire := []byte("*2\r\n$4\r\nPING\r\n$5\r\nhello\r\n")
	var p Parser
	var cmd Command
	for cut := 0; cut < len(wire); cut++ {
		p = Parser{}
		n, err := p.Parse(wire[:cut], &cmd)
		if err != ErrIncomplete || n != 0 {
			t.Fatalf("cut %d: (%d, %v), want (0, ErrIncomplete)", cut, n, err)
		}
		n, err = p.Parse(wire, &cmd)
		if err != nil || n != len(wire) {
			t.Fatalf("cut %d resume: (%d, %v), want (%d, nil)", cut, n, err, len(wire))
		}
		if len(cmd.Args) != 2 || string(cmd.Args[0]) != "PING" || string(cmd.Args[1]) != "hello" {
			t.Fatalf("cut %d: args %q", cut, cmd.Args)
		}
	}
}

// TestParserTrickleIsLinear feeds a large command one byte at a time; the
// resumable scan state must keep total work linear. The guard is
// indirect — a quadratic parser would blow the test timeout — but the
// explicit assertion is that resumption never re-reports consumed bytes.
func TestParserTrickleIsLinear(t *testing.T) {
	payload := strings.Repeat("y", 1<<20)
	wire := []byte("*2\r\n$3\r\nSET\r\n$1048576\r\n" + payload + "\r\n")
	var p Parser
	var cmd Command
	for i := 1; i < len(wire); i++ {
		n, err := p.Parse(wire[:i], &cmd)
		if err != ErrIncomplete {
			t.Fatalf("at %d bytes: err = %v, want ErrIncomplete", i, err)
		}
		if n != 0 {
			t.Fatalf("at %d bytes: consumed %d mid-frame", i, n)
		}
	}
	n, err := p.Parse(wire, &cmd)
	if err != nil || n != len(wire) {
		t.Fatalf("final: (%d, %v)", n, err)
	}
	if string(cmd.Args[1]) != payload {
		t.Fatalf("payload corrupted (len %d)", len(cmd.Args[1]))
	}
}

// TestParserMatchesReader is the differential check: the incremental
// Parser and the streaming Reader must accept the same dialect and
// produce the same commands. FuzzRESP runs the same comparison over the
// fuzz corpus.
func TestParserMatchesReader(t *testing.T) {
	wires := []string{
		"*1\r\n$4\r\nPING\r\n*3\r\n$8\r\nCORE.GET\r\n$2\r\n42\r\n$1\r\n7\r\n",
		"PING\r\nCORE.MGET 1 2 3\r\n",
		"\r\n*0\r\n\nPING\r\n*0\r\n",
		"*2\r\n$4\r\nPING\r\n",
		"*1\r\n$4\r\nPI",
		"*-2\r\n",
		"*1\r\n$70000000\r\n",
		"QUIT\n",
		"  leading   spaces\r\n",
	}
	for _, wire := range wires {
		diffParserReader(t, []byte(wire))
	}
}

// diffParserReader parses data with both implementations and requires
// identical commands and compatible terminal errors. Shared with
// FuzzRESP.
func diffParserReader(t *testing.T, data []byte) {
	t.Helper()

	r := NewReader(bytes.NewReader(data))
	var rc Command
	var fromReader [][][]byte
	var readerErr error
	for len(fromReader) < 128 {
		if err := r.ReadCommand(&rc); err != nil {
			readerErr = err
			break
		}
		fromReader = append(fromReader, copyArgs(&rc))
	}

	var (
		p         Parser
		pc        Command
		fromParse [][][]byte
		parseErr  error
	)
	buf := data
	for len(fromParse) < 128 {
		n, err := p.Parse(buf, &pc)
		buf = buf[n:]
		if err != nil {
			parseErr = err
			break
		}
		fromParse = append(fromParse, copyArgs(&pc))
	}

	if len(fromReader) != len(fromParse) {
		t.Fatalf("reader parsed %d commands, parser %d (input %q)", len(fromReader), len(fromParse), clipBytes(data))
	}
	for i := range fromReader {
		a, b := fromReader[i], fromParse[i]
		if len(a) != len(b) {
			t.Fatalf("command %d: reader %q vs parser %q", i, a, b)
		}
		for j := range a {
			if !bytes.Equal(a[j], b[j]) {
				t.Fatalf("command %d arg %d: reader %q vs parser %q", i, j, a[j], b[j])
			}
		}
	}
	// Terminal-error compatibility: a protocol error in one must be a
	// protocol error in the other; stream exhaustion (clean EOF or
	// truncation) maps to the parser's ErrIncomplete.
	var pe *ProtocolError
	readerProto := errors.As(readerErr, &pe)
	parserProto := errors.As(parseErr, &pe)
	if readerProto != parserProto {
		t.Fatalf("terminal errors diverge: reader %v, parser %v (input %q)", readerErr, parseErr, clipBytes(data))
	}
	if !readerProto && readerErr != nil && !errors.Is(readerErr, io.EOF) && !errors.Is(readerErr, io.ErrUnexpectedEOF) {
		t.Fatalf("reader error kind: %v", readerErr)
	}
	if !parserProto && parseErr != nil && parseErr != ErrIncomplete {
		t.Fatalf("parser error kind: %v", parseErr)
	}
}

func clipBytes(b []byte) []byte {
	if len(b) > 64 {
		return b[:64]
	}
	return b
}
