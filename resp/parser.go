package resp

import (
	"bytes"
	"errors"
)

// ErrIncomplete reports that the buffer handed to Parser.Parse ends
// mid-frame: the caller should read more bytes from the connection and
// call Parse again with the extended buffer.
var ErrIncomplete = errors.New("resp: incomplete frame")

// Parser is the incremental, zero-copy sibling of Reader.ReadCommand for
// event-driven connection handling: instead of pulling from a stream, it
// parses commands out of a caller-owned query buffer that the event loop
// appends socket reads to. Argument slices point straight into that
// buffer — no arena copy — so a parsed Command is valid only until the
// caller reuses or compacts the buffer past the frame.
//
// The buffer passed to Parse must always begin at the start of the
// current (possibly partial) frame, and bytes already handed to a
// previous Parse call must be byte-identical on the retry — the caller
// appends, it does not rewrite. Under that contract the Parser's
// resumable state (offsets relative to the buffer start) survives the
// caller compacting consumed frames off the front, and a command
// trickled in byte by byte is parsed in O(len) total, not O(len²): line
// scanning resumes from a high-water mark and bulk payloads are skipped
// by length, never rescanned.
//
// The zero value is ready to use. A Parser is not safe for concurrent
// use; each connection owns one.
type Parser struct {
	state   int
	pos     int // offset of the structural element being parsed
	scan    int // newline-scan high-water mark within the current line
	nargs   int // declared multibulk argument count
	bulkLen int // declared length of the bulk argument being read
	spans   []int
}

const (
	psStart      = iota // at frame start, type byte not yet classified
	psArgHeader         // expecting "$<len>" for argument len(spans)/2
	psArgPayload        // expecting bulkLen payload bytes plus CRLF
)

// Parse decodes the next command from buf into cmd, returning the number
// of bytes consumed. Empty frames ("*0\r\n", blank inline lines) are
// consumed and skipped, exactly like Reader.ReadCommand. On
// ErrIncomplete the returned count covers only those skipped frames —
// the partial frame stays unconsumed and Parse resumes inside it next
// call. Any other error is a *ProtocolError and poisons the connection;
// the Parser must not be reused on that stream.
func (p *Parser) Parse(buf []byte, cmd *Command) (int, error) {
	base := 0
	for {
		n, err := p.parseOne(buf[base:], cmd)
		if err != nil {
			return base, err
		}
		base += n
		p.resetState()
		if len(cmd.Args) > 0 {
			return base, nil
		}
	}
}

func (p *Parser) resetState() {
	p.state = psStart
	p.pos, p.scan = 0, 0
	p.spans = p.spans[:0]
}

func (p *Parser) parseOne(buf []byte, cmd *Command) (int, error) {
	if p.state == psStart {
		if len(buf) == 0 {
			return 0, ErrIncomplete
		}
		if buf[0] != '*' {
			return p.parseInline(buf, cmd)
		}
		line, next, err := p.line(buf, 1, maxIntLineLen)
		if err != nil {
			return 0, err
		}
		n, perr := parseIntLine(line)
		if perr != nil {
			return 0, perr
		}
		if n < 0 {
			return 0, protoErrorf("negative multibulk count %d", n)
		}
		if n > MaxCommandArgs {
			return 0, protoErrorf("multibulk count %d exceeds limit %d", n, MaxCommandArgs)
		}
		p.nargs = int(n)
		p.pos, p.scan = next, next
		p.state = psArgHeader
	}
	for len(p.spans) < 2*p.nargs {
		switch p.state {
		case psArgHeader:
			if p.pos >= len(buf) {
				return 0, ErrIncomplete
			}
			if buf[p.pos] != '$' {
				return 0, protoErrorf("expected bulk argument ('$'), got %q", buf[p.pos])
			}
			line, next, err := p.line(buf, p.pos+1, maxIntLineLen)
			if err != nil {
				return 0, err
			}
			n, perr := parseIntLine(line)
			if perr != nil {
				return 0, perr
			}
			if n < 0 {
				return 0, protoErrorf("negative bulk length %d in command", n)
			}
			if n > MaxBulkLen {
				return 0, protoErrorf("bulk length %d exceeds limit %d", n, MaxBulkLen)
			}
			p.bulkLen = int(n)
			p.pos, p.scan = next, next
			p.state = psArgPayload
		case psArgPayload:
			end := p.pos + p.bulkLen
			if end+2 > len(buf) {
				return 0, ErrIncomplete
			}
			if buf[end] != '\r' || buf[end+1] != '\n' {
				return 0, protoErrorf("bulk payload not CRLF-terminated")
			}
			p.spans = append(p.spans, p.pos, end)
			p.pos, p.scan = end+2, end+2
			p.state = psArgHeader
		}
	}
	cmd.reset()
	for i := 0; i < len(p.spans); i += 2 {
		s, e := p.spans[i], p.spans[i+1]
		cmd.Args = append(cmd.Args, buf[s:e:e])
	}
	return p.pos, nil
}

// parseInline handles a whole inline command line; tokens are zero-copy
// views into buf, mirroring Reader.readInline's splitting rules.
func (p *Parser) parseInline(buf []byte, cmd *Command) (int, error) {
	line, next, err := p.line(buf, 0, MaxInlineLen)
	if err != nil {
		return 0, err
	}
	cmd.reset()
	for i := 0; i < len(line); {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		if j > i {
			cmd.Args = append(cmd.Args, line[i:j:j])
		}
		i = j
	}
	return next, nil
}

// line scans for the newline terminating the line that starts at start,
// resuming from the scan high-water mark. It returns the line content
// (terminator stripped, trailing CR removed — the same bare-LF tolerance
// as Reader.readLine) and the offset just past the terminator. Limit
// semantics match readLine: total length including terminator beyond
// limit+2 is a protocol error, applied eagerly to unterminated data so a
// trickling peer cannot buffer unboundedly.
func (p *Parser) line(buf []byte, start, limit int) ([]byte, int, error) {
	if p.scan < start {
		p.scan = start
	}
	idx := bytes.IndexByte(buf[p.scan:], '\n')
	if idx < 0 {
		p.scan = len(buf)
		if len(buf)-start > limit+2 {
			return nil, 0, protoErrorf("line exceeds %d bytes", limit)
		}
		return nil, 0, ErrIncomplete
	}
	nl := p.scan + idx
	if nl+1-start > limit+2 {
		return nil, 0, protoErrorf("line exceeds %d bytes", limit)
	}
	line := buf[start:nl]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nl + 1, nil
}
