package client_test

import (
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/graph"
	"repro/kcore"
	"repro/persist"
	"repro/server"
)

// startReplicated brings up a persistent leader and one follower,
// returning both addresses.
func startReplicated(t *testing.T) (leaderAddr, replicaAddr string) {
	t.Helper()
	mgr, err := persist.NewManager(t.TempDir(), persist.Options{Fsync: persist.FsyncNo})
	if err != nil {
		t.Fatal(err)
	}
	m := kcore.New(gen.ErdosRenyi(100, 300, 13), kcore.WithOpLog(mgr), kcore.WithWorkers(2))
	t.Cleanup(func() { mgr.Close(); m.Close() })
	if err := mgr.Start(m); err != nil {
		t.Fatal(err)
	}
	lsrv := server.New(m, server.WithPersistence(mgr))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go lsrv.Serve(ln)
	t.Cleanup(func() { lsrv.Close() })

	rsrv := server.New(kcore.New(graph.New(0)))
	rep := server.NewReplica(rsrv, ln.Addr().String(), server.ReplicaOptions{Workers: 2})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Maintainer().Close() })
	t.Cleanup(func() { rsrv.Close() })
	t.Cleanup(rep.Close)
	rep.Start()
	go rsrv.Serve(rln)
	return ln.Addr().String(), rln.Addr().String()
}

// TestReplicaSessionReadYourWrites: the Write→Read recipe observes its
// own writes on the follower, every round.
func TestReplicaSessionReadYourWrites(t *testing.T) {
	leaderAddr, replicaAddr := startReplicated(t)
	lc, err := client.Dial(leaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	rc, err := client.Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	s := client.NewReplicaSession(lc, rc)
	s.WaitTimeout = 15 * time.Second
	for i := 0; i < 20; i++ {
		u, v := 500+2*i, 501+2*i
		if _, err := s.Write("CORE.INSERT", u, v); err != nil {
			t.Fatalf("round %d Write: %v", i, err)
		}
		if s.Epoch() == 0 {
			t.Fatalf("round %d: session captured no epoch", i)
		}
		k, err := client.Int(s.Read("CORE.GET", u))
		if err != nil {
			t.Fatalf("round %d Read: %v", i, err)
		}
		if k < 1 {
			t.Fatalf("round %d: replica read core[%d] = %d — stale", i, u, k)
		}
		// A second read with no intervening write skips the WAIT gate and
		// still answers consistently.
		if k2, err := client.Int(s.Read("CORE.GET", v)); err != nil || k2 < 1 {
			t.Fatalf("round %d ungated Read = %d, %v", i, k2, err)
		}
	}
}
