// Package client is the Go client for the kcored RESP server: a thin,
// pipelining-first connection type in the style of redigo's Do / Send /
// Flush / Receive split, plus a fixed-size connection pool and typed
// reply helpers.
//
// Round trip per command:
//
//	c, _ := client.Dial(addr)
//	defer c.Close()
//	k, _ := client.Int(c.Do("CORE.GET", 42))
//
// Pipelined (one write, one read, N commands — the shape that lets the
// server coalesce a write burst into shared engine batches):
//
//	for _, e := range edges {
//		c.Send("CORE.INSERT", e.U, e.V)
//	}
//	c.Flush()
//	for range edges {
//		c.Receive()
//	}
package client

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"repro/resp"
)

// Conn is one client connection. It is not safe for concurrent use —
// that is the Pool's job (one goroutine per pooled Conn at a time).
type Conn struct {
	nc      net.Conn
	rd      *resp.Reader
	wr      *resp.Writer
	pending int   // commands sent, replies not yet received
	err     error // sticky transport/protocol error; the conn is poisoned
}

// DialOption configures Dial.
type DialOption func(*dialCfg)

type dialCfg struct {
	timeout time.Duration
}

// WithDialTimeout bounds the TCP connect (default: none).
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialCfg) { c.timeout = d }
}

// Dial connects to a kcored server at addr ("host:port").
func Dial(addr string, opts ...DialOption) (*Conn, error) {
	var cfg dialCfg
	for _, o := range opts {
		o(&cfg)
	}
	nc, err := net.DialTimeout("tcp", addr, cfg.timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection (the Dial of tests and custom
// transports).
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		rd: resp.NewReaderSize(nc, 16<<10),
		wr: resp.NewWriterSize(nc, 16<<10),
	}
}

// Close closes the connection.
func (c *Conn) Close() error {
	if c.err == nil {
		c.err = errors.New("client: closed")
	}
	return c.nc.Close()
}

// Err returns the sticky error that poisoned the connection, if any.
// Server error replies are not sticky; transport and protocol failures
// are.
func (c *Conn) Err() error { return c.err }

// Send buffers one command without writing to the network; Flush ships
// the buffered batch. Each Send owes one Receive.
func (c *Conn) Send(cmd string, args ...any) error {
	if c.err != nil {
		return c.err
	}
	// Validate argument types before anything reaches the buffer: a frame
	// claiming more elements than it carries would desynchronize the
	// stream. Rejection here leaves the connection healthy.
	for _, a := range args {
		switch a.(type) {
		case string, []byte, int, int32, int64, uint64:
		default:
			return fmt.Errorf("client: unsupported argument type %T", a)
		}
	}
	if err := c.writeCommand(cmd, args); err != nil {
		return c.fatal(err)
	}
	c.pending++
	return nil
}

// SendInt32s buffers one command whose arguments are all int32s (vertex
// ids, edge endpoint pairs) straight off a slice, without boxing each id
// into an interface the way Send's variadic ...any does. It is the bulk
// path for chunked CORE.MGET sweeps and multi-pair CORE.INSERT/REMOVE
// commands — the shapes the cluster router ships per shard.
func (c *Conn) SendInt32s(cmd string, ids []int32) error {
	if c.err != nil {
		return c.err
	}
	c.wr.WriteArrayHeader(1 + len(ids))
	c.wr.WriteBulkString(cmd)
	var scratch [20]byte
	for _, id := range ids {
		c.wr.WriteBulk(strconv.AppendInt(scratch[:0], int64(id), 10))
	}
	c.pending++
	return nil
}

// Flush writes every buffered command to the network.
func (c *Conn) Flush() error {
	if c.err != nil {
		return c.err
	}
	if err := c.wr.Flush(); err != nil {
		return c.fatal(err)
	}
	return nil
}

// Receive reads the next reply. A server "-ERR …" reply is returned as a
// *ServerError with a zero Value; transport or protocol failures poison
// the connection.
func (c *Conn) Receive() (resp.Value, error) {
	if c.err != nil {
		return resp.Value{}, c.err
	}
	v, err := c.rd.ReadValue()
	if err != nil {
		return resp.Value{}, c.fatal(fmt.Errorf("client: receive: %w", err))
	}
	if c.pending > 0 {
		c.pending--
	}
	if v.Kind == resp.Error {
		return resp.Value{}, &ServerError{Msg: string(v.Str)}
	}
	return v, nil
}

// Do is the round-trip path: Send(cmd, args…), Flush, then Receive every
// outstanding reply, returning the last one — cmd's own. Errors on
// earlier pipelined replies surface here too (first one wins), so a
// fire-and-forget Send cannot fail silently.
func (c *Conn) Do(cmd string, args ...any) (resp.Value, error) {
	if err := c.Send(cmd, args...); err != nil {
		return resp.Value{}, err
	}
	if err := c.Flush(); err != nil {
		return resp.Value{}, err
	}
	var (
		last     resp.Value
		firstErr error
	)
	for n := c.pending; n > 0; n-- {
		v, err := c.Receive()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if c.err != nil {
				return resp.Value{}, c.err
			}
			continue
		}
		last = v
	}
	if firstErr != nil {
		return resp.Value{}, firstErr
	}
	return last, nil
}

func (c *Conn) fatal(err error) error {
	if c.err == nil {
		c.err = err
	}
	c.nc.Close()
	return c.err
}

// writeCommand encodes cmd with Go-typed arguments — string, []byte, and
// the integer kinds vertex ids come in (Send validated the types
// already).
func (c *Conn) writeCommand(cmd string, args []any) error {
	c.wr.WriteArrayHeader(1 + len(args))
	c.wr.WriteBulkString(cmd)
	var scratch [20]byte
	for _, a := range args {
		switch v := a.(type) {
		case string:
			c.wr.WriteBulkString(v)
		case []byte:
			c.wr.WriteBulk(v)
		case int:
			c.wr.WriteBulk(strconv.AppendInt(scratch[:0], int64(v), 10))
		case int32:
			c.wr.WriteBulk(strconv.AppendInt(scratch[:0], int64(v), 10))
		case int64:
			c.wr.WriteBulk(strconv.AppendInt(scratch[:0], v, 10))
		case uint64:
			c.wr.WriteBulk(strconv.AppendUint(scratch[:0], v, 10))
		default:
			return fmt.Errorf("client: unsupported argument type %T", a)
		}
	}
	return nil
}

// ServerError is an error reply from the server ("-ERR …"). The
// connection stays healthy after one.
type ServerError struct {
	Msg string
}

func (e *ServerError) Error() string { return "server error: " + e.Msg }
