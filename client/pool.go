package client

import (
	"errors"
	"sync"
)

// Pool is a fixed-capacity pool of idle connections, in the shape of
// redigo's: Get hands out an idle connection or dials a fresh one, Put
// returns it (healthy connections only — a poisoned Conn is closed and
// dropped). The pool never bounds the number of live connections, only
// how many idle ones it retains.
type Pool struct {
	// Dial opens a new connection; required.
	Dial func() (*Conn, error)
	// MaxIdle bounds the idle list (default 8).
	MaxIdle int

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("client: pool closed")

// Get returns an idle connection, or dials a new one.
func (p *Pool) Get() (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return p.Dial()
}

// Put returns c to the pool. Poisoned connections, connections with
// unconsumed pipelined replies, and overflow beyond MaxIdle are closed
// instead — a pooled connection is always safe to hand out.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if c.Err() != nil || c.pending != 0 {
		c.Close()
		return
	}
	maxIdle := p.MaxIdle
	if maxIdle <= 0 {
		maxIdle = 8
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= maxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes every idle connection and rejects future Gets.
// Connections currently handed out are closed by their users' Put.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	return nil
}
