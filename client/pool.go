package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a fixed-capacity pool of idle connections, in the shape of
// redigo's: Get hands out an idle connection or dials a fresh one, Put
// returns it (healthy connections only — a poisoned Conn is closed and
// dropped). The pool never bounds the number of live connections, only
// how many idle ones it retains.
type Pool struct {
	// Dial opens a new connection; required.
	Dial func() (*Conn, error)
	// MaxIdle bounds the idle list (default 8).
	MaxIdle int
	// PingAfter is the test-on-borrow threshold: a connection idle
	// longer than this is PINGed before being handed out, and silently
	// replaced if the server went away meanwhile (restart, idle-timeout,
	// half-open TCP). 0 means the default (1s); negative disables the
	// check entirely.
	PingAfter time.Duration

	mu     sync.Mutex
	idle   []idleConn
	closed bool

	dials    atomic.Int64
	replaced atomic.Int64
	inUse    atomic.Int64
}

// PoolStats is a point-in-time view of a Pool's connection health, the
// client-side sibling of the server's CORE.STATS connection counters —
// loadserve and the cluster router report both side by side.
type PoolStats struct {
	Dials    int64 // connections ever dialed
	Replaced int64 // stale idle connections dropped by test-on-borrow
	InUse    int64 // connections currently borrowed (Get minus Put)
	Idle     int64 // connections currently parked in the pool
}

// Stats returns the pool's connection counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := int64(len(p.idle))
	p.mu.Unlock()
	return PoolStats{
		Dials:    p.dials.Load(),
		Replaced: p.replaced.Load(),
		InUse:    p.inUse.Load(),
		Idle:     idle,
	}
}

// idleConn stamps a pooled connection with when it went idle.
type idleConn struct {
	c     *Conn
	since time.Time
}

const defaultPingAfter = time.Second

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("client: pool closed")

// Get returns an idle connection, or dials a new one. A connection that
// sat idle past PingAfter is health-checked first, so a server restart
// does not surface as an error on the next borrowed command.
func (p *Pool) Get() (*Conn, error) {
	pingAfter := p.PingAfter
	if pingAfter == 0 {
		pingAfter = defaultPingAfter
	}
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		n := len(p.idle)
		if n == 0 {
			p.mu.Unlock()
			break
		}
		ic := p.idle[n-1]
		p.idle[n-1] = idleConn{}
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		if pingAfter >= 0 && time.Since(ic.since) > pingAfter {
			if _, err := ic.c.Do("PING"); err != nil {
				ic.c.Close()
				p.replaced.Add(1)
				continue // stale; try the next idle conn (fresher) or dial
			}
		}
		p.inUse.Add(1)
		return ic.c, nil
	}
	c, err := p.Dial()
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	// The dial ran outside the lock; Close may have won the race. Handing
	// the connection out anyway would leak it past Close's sweep.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, ErrPoolClosed
	}
	p.mu.Unlock()
	p.inUse.Add(1)
	return c, nil
}

// Put returns c to the pool. Poisoned connections, connections with
// unconsumed pipelined replies, and overflow beyond MaxIdle are closed
// instead — a pooled connection is always safe to hand out.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	p.inUse.Add(-1)
	if c.Err() != nil || c.pending != 0 {
		c.Close()
		return
	}
	maxIdle := p.MaxIdle
	if maxIdle <= 0 {
		maxIdle = 8
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= maxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, idleConn{c: c, since: time.Now()})
	p.mu.Unlock()
}

// Close closes every idle connection and rejects future Gets.
// Connections currently handed out are closed by their users' Put.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, ic := range idle {
		ic.c.Close()
	}
	return nil
}
