package client

import (
	"time"

	"repro/resp"
)

// ReplicaSession scales reads out to a follower without giving up
// read-your-writes. Writes go to the leader, pipelined with CORE.EPOCH
// in the same round trip, so the session learns the epoch that covers
// each acked write for free; reads go to the replica, gated by a
// pipelined CORE.WAIT on that epoch, so they can never observe state
// older than the session's own writes.
//
// A ReplicaSession is not safe for concurrent use (it owns its two
// connections the way a Conn owns its socket); pool sessions like
// connections.
type ReplicaSession struct {
	leader  *Conn
	replica *Conn
	// WaitTimeout bounds each read-side CORE.WAIT (0 = wait until the
	// replica catches up or disconnects).
	WaitTimeout time.Duration

	epoch  uint64 // highest leader epoch covering this session's writes
	waited uint64 // highest epoch the replica confirmed applying
}

// NewReplicaSession pairs a leader connection (writes) with a replica
// connection (reads).
func NewReplicaSession(leader, replica *Conn) *ReplicaSession {
	return &ReplicaSession{leader: leader, replica: replica}
}

// Epoch returns the highest leader epoch known to cover this session's
// writes.
func (s *ReplicaSession) Epoch() uint64 { return s.epoch }

// Write runs a write on the leader and captures the covering epoch —
// one round trip (the write and CORE.EPOCH share a pipeline).
func (s *ReplicaSession) Write(cmd string, args ...any) (resp.Value, error) {
	if err := s.leader.Send(cmd, args...); err != nil {
		return resp.Value{}, err
	}
	if err := s.leader.Send("CORE.EPOCH"); err != nil {
		return resp.Value{}, err
	}
	if err := s.leader.Flush(); err != nil {
		return resp.Value{}, err
	}
	v, werr := s.leader.Receive()
	e, eerr := Int(s.leader.Receive())
	if eerr == nil && uint64(e) > s.epoch {
		s.epoch = uint64(e)
	}
	if werr != nil {
		return resp.Value{}, werr
	}
	if eerr != nil {
		return resp.Value{}, eerr
	}
	return v, nil
}

// Read runs a read on the replica. If the session has written since the
// replica last proved it caught up, the read is preceded by CORE.WAIT
// on the write's epoch — pipelined, so the gate costs no extra round
// trip. A WAIT timeout surfaces as the error (the read's reply is
// discarded: it may be stale).
func (s *ReplicaSession) Read(cmd string, args ...any) (resp.Value, error) {
	if s.epoch <= s.waited {
		return s.replica.Do(cmd, args...)
	}
	var err error
	if s.WaitTimeout > 0 {
		ms := int64(s.WaitTimeout / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		err = s.replica.Send("CORE.WAIT", s.epoch, ms)
	} else {
		err = s.replica.Send("CORE.WAIT", s.epoch)
	}
	if err != nil {
		return resp.Value{}, err
	}
	if err := s.replica.Send(cmd, args...); err != nil {
		return resp.Value{}, err
	}
	if err := s.replica.Flush(); err != nil {
		return resp.Value{}, err
	}
	_, werr := Int(s.replica.Receive())
	v, rerr := s.replica.Receive()
	if werr != nil {
		return resp.Value{}, werr
	}
	if rerr != nil {
		return resp.Value{}, rerr
	}
	s.waited = s.epoch
	return v, nil
}
