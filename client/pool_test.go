package client_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/gen"
	"repro/kcore"
	"repro/server"
)

// startServerOn serves a fresh maintainer on ln and returns a shutdown
// func.
func startServerOn(t *testing.T, ln net.Listener) func() {
	t.Helper()
	m := kcore.New(gen.ErdosRenyi(50, 150, 17))
	srv := server.New(m)
	go srv.Serve(ln)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			srv.Close()
			m.Close()
		})
	}
	t.Cleanup(stop)
	return stop
}

// TestPoolStaleConnReplaced is the test-on-borrow regression: a pooled
// connection whose server restarted underneath it must not be handed
// out — the next Get health-checks it, discards it, and the borrowed
// command never sees the stale socket.
func TestPoolStaleConnReplaced(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := startServerOn(t, ln)

	p := &client.Pool{
		Dial:      func() (*client.Conn, error) { return client.Dial(addr) },
		PingAfter: time.Nanosecond, // every borrow health-checks
	}
	defer p.Close()

	c, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := client.Int(c.Do("CORE.GET", 1)); err != nil {
		t.Fatalf("Do: %v", err)
	}
	p.Put(c)

	// Restart the server on the same address: the pooled conn is now a
	// dead socket.
	stop()
	var ln2 net.Listener
	for i := 0; i < 200; i++ {
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	startServerOn(t, ln2)

	// Without test-on-borrow this Get hands back the stale conn and the
	// Do fails with a poisoned connection.
	c2, err := p.Get()
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	defer p.Put(c2)
	if _, err := client.Int(c2.Do("CORE.GET", 1)); err != nil {
		t.Fatalf("borrowed conn unusable after server restart: %v", err)
	}
}

// TestPoolGetCloseRace pins the Get/Close race: Get re-dials outside the
// pool lock, so Close can complete while the dial is in flight — the
// dialed connection must be closed and Get must report ErrPoolClosed,
// not leak a live socket past Close's sweep.
func TestPoolGetCloseRace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	startServerOn(t, ln)

	dialStarted := make(chan struct{})
	var dialed atomic.Pointer[client.Conn]
	p := &client.Pool{
		Dial: func() (*client.Conn, error) {
			close(dialStarted)
			c, err := client.Dial(addr)
			if err == nil {
				dialed.Store(c)
			}
			// Give Close a deterministic window to win the race.
			time.Sleep(50 * time.Millisecond)
			return c, err
		},
	}

	type res struct {
		c   *client.Conn
		err error
	}
	got := make(chan res, 1)
	go func() {
		c, err := p.Get()
		got <- res{c, err}
	}()
	<-dialStarted
	p.Close()

	r := <-got
	if !errors.Is(r.err, client.ErrPoolClosed) {
		t.Fatalf("Get racing Close = (%v, %v), want ErrPoolClosed", r.c, r.err)
	}
	if c := dialed.Load(); c != nil && c.Err() == nil {
		t.Fatal("connection dialed during Close leaked open")
	}
}

// TestPoolConcurrent hammers Get/Do/Put from many goroutines with a
// mid-flight Close, for the race detector.
func TestPoolConcurrent(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	startServerOn(t, ln)

	p := &client.Pool{
		Dial:    func() (*client.Conn, error) { return client.Dial(addr) },
		MaxIdle: 4,
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get()
				if err != nil {
					if errors.Is(err, client.ErrPoolClosed) {
						return
					}
					t.Errorf("worker %d Get: %v", w, err)
					return
				}
				if _, err := client.Int(c.Do("CORE.GET", i)); err != nil {
					c.Close()
				}
				p.Put(c)
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	p.Close()
	wg.Wait()
	if _, err := p.Get(); !errors.Is(err, client.ErrPoolClosed) {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
}

// TestPoolStats pins the connection-health counters: dials count fresh
// connections, test-on-borrow replacements count stale drops, and
// in-use/idle track the borrow/return cycle.
func TestPoolStats(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := startServerOn(t, ln)

	p := &client.Pool{
		Dial:      func() (*client.Conn, error) { return client.Dial(addr) },
		PingAfter: time.Nanosecond, // every borrow health-checks
	}
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Dials != 2 || st.InUse != 2 || st.Idle != 0 || st.Replaced != 0 {
		t.Fatalf("after two Gets: %+v", st)
	}
	p.Put(c1)
	p.Put(c2)
	if st := p.Stats(); st.InUse != 0 || st.Idle != 2 {
		t.Fatalf("after two Puts: %+v", st)
	}

	// Kill the server: the next borrow must replace both stale idle
	// connections and dial a third.
	stop()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	startServerOn(t, ln2)
	c3, err := p.Get()
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	defer p.Put(c3)
	st := p.Stats()
	if st.Replaced != 2 || st.Dials != 3 || st.InUse != 1 {
		t.Fatalf("after restart borrow: %+v", st)
	}
}
