package client_test

import (
	"errors"
	"net"
	"testing"

	"repro/client"
	"repro/gen"
	"repro/kcore"
	"repro/server"
)

func startServer(t *testing.T) string {
	t.Helper()
	m := kcore.New(gen.ErdosRenyi(200, 800, 11))
	srv := server.New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return ln.Addr().String()
}

func TestDoSendFlushReceive(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if s, err := client.String(c.Do("PING")); err != nil || s != "PONG" {
		t.Fatalf("PING = %q, %v", s, err)
	}

	// Send/Flush/Receive accounting: three sends owe three receives.
	for i := 0; i < 3; i++ {
		if err := c.Send("CORE.GET", i); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Int(c.Receive()); err != nil {
			t.Fatalf("Receive %d: %v", i, err)
		}
	}

	// Do after unreceived Sends settles the backlog and returns its own
	// reply.
	c.Send("CORE.GET", 1)
	c.Send("CORE.GET", 2)
	if s, err := client.String(c.Do("PING", "tail")); err != nil || s != "tail" {
		t.Fatalf("Do after Sends = %q, %v", s, err)
	}

	// An unsupported argument type is rejected client-side without
	// poisoning the connection.
	if err := c.Send("CORE.GET", 3.14); err == nil {
		t.Fatalf("Send(float) did not error")
	}
	if c.Err() != nil {
		t.Fatalf("type error poisoned the connection: %v", c.Err())
	}
	if _, err := client.Int(c.Do("CORE.GET", 0)); err != nil {
		t.Fatalf("conn unusable after arg-type error: %v", err)
	}
}

func TestReplyHelpers(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := client.Ints(c.Do("CORE.MGET", 0, 1, 2)); err != nil {
		t.Fatalf("Ints(MGET): %v", err)
	}
	stats, err := client.StringMap(c.Do("CORE.STATS"))
	if err != nil || stats["n"] != "200" {
		t.Fatalf("StringMap(STATS): %v, n=%q", err, stats["n"])
	}
	// Kind mismatches are errors, not zero values.
	if _, err := client.Int(c.Do("PING")); err == nil {
		t.Fatalf("Int(simple-string) did not error")
	}
	if _, err := client.Ints(c.Do("CORE.GET", 0)); err == nil {
		t.Fatalf("Ints(integer) did not error")
	}
}

func TestPool(t *testing.T) {
	addr := startServer(t)
	p := &client.Pool{
		Dial:    func() (*client.Conn, error) { return client.Dial(addr) },
		MaxIdle: 2,
	}
	defer p.Close()

	c1, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, err := client.Int(c1.Do("CORE.GET", 1)); err != nil {
		t.Fatalf("Do on pooled conn: %v", err)
	}
	p.Put(c1)

	// The healthy connection is reused.
	c2, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if c2 != c1 {
		t.Fatalf("pool did not reuse the idle connection")
	}

	// A connection with unconsumed pipelined replies is not pooled.
	c2.Send("CORE.GET", 1)
	c2.Flush()
	p.Put(c2)
	c3, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if c3 == c2 {
		t.Fatalf("pool handed out a connection with pending replies")
	}

	// A poisoned connection is not pooled either.
	c3.Close()
	p.Put(c3)
	c4, err := p.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if c4 == c3 {
		t.Fatalf("pool handed out a poisoned connection")
	}
	p.Put(c4)

	p.Close()
	if _, err := p.Get(); !errors.Is(err, client.ErrPoolClosed) {
		t.Fatalf("Get after Close = %v, want ErrPoolClosed", err)
	}
}

// TestSendInt32s pins the bulk pipelining path: a chunk of ids shipped
// without per-argument boxing behaves exactly like the equivalent Send —
// one owed reply per command, same server-side semantics.
func TestSendInt32s(t *testing.T) {
	addr := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	ids := []int32{0, 1, 2, 3, 199}
	if err := c.SendInt32s("CORE.MGET", ids); err != nil {
		t.Fatal(err)
	}
	if err := c.SendInt32s("CORE.INSERT", []int32{300, 301, 301, 302}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := client.Ints(c.Receive())
	if err != nil {
		t.Fatalf("MGET reply: %v", err)
	}
	if len(got) != len(ids) {
		t.Fatalf("MGET returned %d values, want %d", len(got), len(ids))
	}
	want, err := client.Ints(c.Do("CORE.MGET", 0, 1, 2, 3, 199))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MGET[%d] = %d via SendInt32s, %d via Send", i, got[i], want[i])
		}
	}
	if k, err := client.Int(c.Do("CORE.GET", 301)); err != nil || k != 1 {
		t.Fatalf("inserted chain: CORE.GET 301 = %d, %v (want 1)", k, err)
	}
}
