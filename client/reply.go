package client

import (
	"fmt"

	"repro/resp"
)

// The reply helpers convert a (Value, error) pair — the shape Do and
// Receive return — into Go types, passing errors through, in the idiom
// of redigo's redis.Int(conn.Do(…)).

// Int converts an integer reply.
func Int(v resp.Value, err error) (int64, error) {
	if err != nil {
		return 0, err
	}
	switch v.Kind {
	case resp.Integer:
		return v.Int, nil
	default:
		return 0, fmt.Errorf("client: expected integer reply, got %v", v.Kind)
	}
}

// Ints converts an array-of-integers reply (CORE.MGET, CORE.HIST).
func Ints(v resp.Value, err error) ([]int64, error) {
	if err != nil {
		return nil, err
	}
	if v.Kind != resp.Array {
		return nil, fmt.Errorf("client: expected array reply, got %v", v.Kind)
	}
	out := make([]int64, len(v.Array))
	for i, e := range v.Array {
		if e.Kind != resp.Integer {
			return nil, fmt.Errorf("client: array element %d: expected integer, got %v", i, e.Kind)
		}
		out[i] = e.Int
	}
	return out, nil
}

// String converts a simple-string or bulk reply.
func String(v resp.Value, err error) (string, error) {
	if err != nil {
		return "", err
	}
	switch v.Kind {
	case resp.SimpleString, resp.Bulk:
		return string(v.Str), nil
	default:
		return "", fmt.Errorf("client: expected string reply, got %v", v.Kind)
	}
}

// StringMap converts a flat key/value array reply (CORE.STATS) into a
// map.
func StringMap(v resp.Value, err error) (map[string]string, error) {
	if err != nil {
		return nil, err
	}
	if v.Kind != resp.Array {
		return nil, fmt.Errorf("client: expected array reply, got %v", v.Kind)
	}
	if len(v.Array)%2 != 0 {
		return nil, fmt.Errorf("client: key/value array has odd length %d", len(v.Array))
	}
	out := make(map[string]string, len(v.Array)/2)
	for i := 0; i < len(v.Array); i += 2 {
		k, err := String(v.Array[i], nil)
		if err != nil {
			return nil, err
		}
		val, err := String(v.Array[i+1], nil)
		if err != nil {
			return nil, err
		}
		out[k] = val
	}
	return out, nil
}
