// Command graphgen emits synthetic graphs as whitespace edge lists:
//
//	graphgen -model er   -n 100000 -m 800000 > er.txt
//	graphgen -model ba   -n 100000 -k 4      > ba.txt
//	graphgen -model rmat -scale 17 -m 800000 > rmat.txt
//	graphgen -model plc  -n 100000 -avg 14 -exp 2.4 > social.txt
//	graphgen -suite ci                        # the Table 2 stand-in suite
//
// With -suite, every graph of the experiment suite is written to
// <name>.txt in the current directory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/gen"
	"repro/graph"
	"repro/internal/expr"
)

func main() {
	model := flag.String("model", "", "er|ba|rmat|ws|plc")
	n := flag.Int("n", 100000, "vertices (er, ba, ws, plc)")
	m := flag.Int64("m", 800000, "edges (er, rmat)")
	k := flag.Int("k", 4, "attachment/lattice degree (ba, ws)")
	scale := flag.Int("scale", 17, "log2 vertices (rmat)")
	avg := flag.Float64("avg", 8, "average degree (plc)")
	exp := flag.Float64("exp", 2.5, "power-law exponent (plc)")
	p := flag.Float64("p", 0.1, "rewire probability (ws)")
	seed := flag.Int64("seed", 1, "random seed")
	suite := flag.String("suite", "", "write the Table 2 suite at this scale (ci|medium|full)")
	flag.Parse()

	if *suite != "" {
		for _, sg := range expr.Suite(expr.Scale(*suite), *seed) {
			name := sg.Name + ".txt"
			if err := writeGraph(name, sg.Build()); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", name)
		}
		return
	}

	var g *graph.Graph
	switch *model {
	case "er":
		g = gen.ErdosRenyi(*n, *m, *seed)
	case "ba":
		g = gen.BarabasiAlbert(*n, *k, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *m, *seed)
	case "ws":
		g = gen.WattsStrogatz(*n, *k, *p, *seed)
	case "plc":
		g = gen.PowerLawCluster(*n, *avg, *exp, *seed)
	default:
		fmt.Fprintln(os.Stderr, "graphgen: -model er|ba|rmat|ws|plc or -suite required")
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := g.WriteEdgeList(w); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.WriteEdgeList(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
