// Command experiments regenerates every table and figure of the paper's
// evaluation section over the synthetic stand-in suite:
//
//	experiments -exp all                      # everything, CI scale
//	experiments -exp fig4 -scale medium       # one experiment, bigger graphs
//	experiments -exp table3 -workers 1,2,4,8,16 -repeats 5
//
// Experiments: table2, fig1, fig4, table3, fig5, fig6, contention, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/expr"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2|fig1|fig4|table3|fig5|fig6|contention|all")
	scale := flag.String("scale", "ci", "scale: ci|medium|full")
	workers := flag.String("workers", "1,2,4,8,16", "comma-separated worker counts")
	repeats := flag.Int("repeats", 3, "repetitions per measurement")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	cfg := expr.DefaultConfig(os.Stdout)
	cfg.Scale = expr.Scale(*scale)
	cfg.Repeats = *repeats
	cfg.Seed = *seed
	cfg.Workers = nil
	for _, part := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "experiments: bad worker count %q\n", part)
			os.Exit(2)
		}
		cfg.Workers = append(cfg.Workers, w)
	}

	switch *exp {
	case "table2":
		expr.RunTable2(cfg)
	case "fig1":
		expr.RunFig1(cfg)
	case "fig4":
		expr.RunFig4(cfg)
	case "table3":
		expr.RunTable3(cfg, nil)
	case "fig5":
		expr.RunFig5(cfg)
	case "fig6":
		expr.RunFig6(cfg)
	case "contention":
		expr.RunContention(cfg)
	case "all":
		expr.RunAll(cfg)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
