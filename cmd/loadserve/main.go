// Command loadserve is a closed-loop load generator for the serving layer:
// R reader goroutines issue point queries (CoreOf, with periodic MaxCore /
// histogram scans) against the latest snapshot while W writer goroutines
// push insert/remove batches through the coalescing update pipeline. With
// -churn, one extra writer streams vertex arrivals — batches naming fresh
// vertex ids that auto-grow the universe — and removes a fraction of the
// arrival edges again, so the run exercises mixed insert/remove/grow
// traffic. At the end it prints throughput and latency percentiles for
// both sides plus the pipeline's instrumentation counters.
//
// With -net addr the same experiment drives a live kcored server over
// TCP through the pipelined RESP client instead of an in-process
// maintainer (see net.go), reporting the server-side ServeStats next to
// the publication counters; -check then runs CORE.CHECK on the server.
//
// Examples:
//
//	go run ./cmd/loadserve -n 50000 -m 200000 -readers 8 -writers 2 \
//	    -batch 64 -alg parallel -workers 4 -d 5s -churn
//	go run ./cmd/loadserve -net :6380 -readers 8 -writers 2 -d 5s -check
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/cluster"
	"repro/gen"
	"repro/graph"
	"repro/internal/stats"
	"repro/kcore"
)

func main() {
	var (
		n        = flag.Int("n", 50_000, "vertices in the base graph")
		m        = flag.Int64("m", 200_000, "edges in the base graph")
		readers  = flag.Int("readers", 8, "concurrent query goroutines")
		writers  = flag.Int("writers", 2, "concurrent update goroutines")
		batch    = flag.Int("batch", 64, "edges per writer batch (1 = single-edge ops)")
		algName  = flag.String("alg", "parallel", "engine: parallel|seq|traversal|jes")
		workers  = flag.Int("workers", 4, "engine worker goroutines")
		duration = flag.Duration("d", 5*time.Second, "run duration")
		seed     = flag.Int64("seed", 1, "random seed")
		check    = flag.Bool("check", false, "verify invariants after the run")
		churn    = flag.Bool("churn", false, "add a vertex-churn writer: arrival batches on fresh ids (auto-grow) + partial removal")
		netAddr  = flag.String("net", "", "drive live kcored server(s) over TCP instead of an in-process maintainer: \"leader[,replica,...]\" for one shard, or \"leader[,replica...];leader...\" for an id-range sharded cluster routed through the cluster client (-n is then the cluster id capacity; -m/-alg/-workers/-churn are the servers' business)")
		pipeline = flag.Int("pipeline", 16, "pipeline depth per network reader (-net mode)")
		cross    = flag.Float64("cross", 0.2, "cross-shard edge fraction for multi-shard write traffic (-net cluster mode, -cluster-check)")
		recCheck = flag.Bool("recover-check", false, "crash-recovery drill: spawn a private kcored (-kcored), drive an acked burst, kill -9 mid-burst, restart, verify served cores against a single-node oracle")
		repCheck = flag.Bool("replica-check", false, "replication drill: spawn a durable leader + follower (-kcored), kill -9 the leader mid-run, restart it, verify the follower re-syncs to the acked-mirror oracle")
		cluCheck = flag.Bool("cluster-check", false, "sharded-cluster drill: spawn -shards kcoreds (-kcored), churn mixed cross-shard traffic through the router, verify every routed read against the cluster oracle")
		shards   = flag.Int("shards", 2, "shard count for -cluster-check")
		kcored   = flag.String("kcored", "", "path to the kcored binary (-recover-check / -replica-check / -cluster-check / -metrics-check modes)")
		scrape   = flag.String("scrape", "", "kcored /metrics URL to scrape before and after a -net run; prints the series deltas")
		metAddr  = flag.String("metrics-addr", "", "serve the router's own Prometheus metrics on this address (-net cluster mode)")
		metCheck = flag.Bool("metrics-check", false, "observability drill: spawn a kcored with -metrics-addr (-kcored), churn, scrape /metrics, assert the metric families parse and move, exercise CORE.SLOWLOG")
	)
	flag.Parse()

	if *metCheck {
		metricsCheckRun(metricsCheckConfig{
			kcored:   *kcored,
			duration: *duration,
			batch:    *batch,
			seed:     *seed,
		})
		return
	}

	if *recCheck {
		recoverCheckRun(recoverCheckConfig{
			kcored:   *kcored,
			duration: *duration,
			batch:    *batch,
			seed:     *seed,
		})
		return
	}

	if *repCheck {
		replicaCheckRun(replicaCheckConfig{
			kcored:   *kcored,
			duration: *duration,
			batch:    *batch,
			seed:     *seed,
		})
		return
	}

	if *cluCheck {
		clusterCheckRun(clusterCheckConfig{
			kcored:   *kcored,
			shards:   *shards,
			alg:      *algName,
			cross:    *cross,
			duration: *duration,
			batch:    *batch,
			seed:     *seed,
		})
		return
	}

	if *netAddr != "" {
		// One grammar for every topology: "leader[,replica...]" drives a
		// single shard (writes to the leader, reads over the replicas);
		// ';'-separated groups drive an id-range sharded cluster through
		// the routing client.
		topo, err := cluster.ParseTopology(*netAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadserve: -net: %v\n", err)
			os.Exit(2)
		}
		if len(topo) > 1 {
			clusterNetRun(clusterNetConfig{
				topology: topo,
				capacity: int32(*n),
				readers:  *readers,
				writers:  *writers,
				batch:    *batch,
				pipeline: *pipeline,
				cross:    *cross,
				duration: *duration,
				seed:     *seed,
				check:    *check,
				metrics:  *metAddr,
			})
			return
		}
		netRun(netConfig{
			leader:   topo[0][0],
			replicas: topo[0][1:],
			readers:  *readers,
			writers:  *writers,
			batch:    *batch,
			pipeline: *pipeline,
			duration: *duration,
			seed:     *seed,
			check:    *check,
			scrape:   *scrape,
		})
		return
	}

	var alg kcore.Algorithm
	switch *algName {
	case "parallel":
		alg = kcore.ParallelOrder
	case "seq":
		alg = kcore.SequentialOrder
	case "traversal":
		alg = kcore.Traversal
	case "jes":
		alg = kcore.JoinEdgeSet
	default:
		fmt.Fprintf(os.Stderr, "unknown -alg %q\n", *algName)
		os.Exit(2)
	}

	fmt.Printf("building G(n=%d, m=%d), engine %v, workers=%d ...\n", *n, *m, alg, *workers)
	base := gen.ErdosRenyi(*n, *m, *seed)
	// Disjoint per-writer edge pools: each writer cycles insert/remove over
	// its own slice, so the graph stays bounded while every batch does
	// real maintenance work.
	pool := gen.SampleNonEdges(base, *writers**batch*8, *seed+1)
	maint := kcore.New(base, kcore.WithAlgorithm(alg), kcore.WithWorkers(*workers))
	defer maint.Close()

	var (
		stop      atomic.Bool
		readOps   atomic.Int64
		writeOps  atomic.Int64 // caller ops (batches issued)
		writeEdge atomic.Int64 // edges covered by those ops
		readLat   = stats.NewLatencyRecorder(1 << 16)
		wg        sync.WaitGroup
	)

	for r := 0; r < *readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 100 + int64(r)))
			nv := int32(*n)
			for i := 0; !stop.Load(); i++ {
				start := time.Now()
				switch {
				case i%4096 == 4095:
					maint.CoreHistogram()
				case i%1024 == 1023:
					maint.MaxCore()
				default:
					maint.CoreOf(rng.Int31n(nv))
				}
				if i%16 == 0 {
					readLat.Record(time.Since(start))
				}
				readOps.Add(1)
			}
		}(r)
	}

	perWriter := len(pool) / max(*writers, 1)
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := pool[w*perWriter : (w+1)*perWriter]
			for off := 0; !stop.Load(); off += *batch {
				if off+*batch > len(mine) {
					off = 0
				}
				chunk := mine[off : off+*batch]
				maint.InsertEdges(chunk)
				writeOps.Add(1)
				writeEdge.Add(int64(len(chunk)))
				if stop.Load() {
					return
				}
				maint.RemoveEdges(chunk)
				writeOps.Add(1)
				writeEdge.Add(int64(len(chunk)))
			}
		}(w)
	}

	if *churn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 999))
			const attach = 4
			next := int32(*n) // first unseen vertex id
			for !stop.Load() {
				// One arrival batch: a handful of fresh vertices, each
				// wired to random vertices of the universe seen so far.
				arrivals := max(*batch/attach, 1)
				edges := make([]graph.Edge, 0, arrivals*attach)
				for a := 0; a < arrivals; a++ {
					v := next
					next++
					for j := 0; j < attach; j++ {
						edges = append(edges, graph.Edge{U: v, V: rng.Int31n(v)})
					}
				}
				maint.InsertEdges(edges)
				writeOps.Add(1)
				writeEdge.Add(int64(len(edges)))
				if stop.Load() {
					return
				}
				// Partial departure: drop half of the arrival edges again
				// (the universe itself only grows), so churn mixes
				// removals into the growth traffic.
				maint.RemoveEdges(edges[:len(edges)/2])
				writeOps.Add(1)
				writeEdge.Add(int64(len(edges) / 2))
			}
		}()
	}

	start := time.Now()
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	epoch := maint.Flush()

	st := maint.ServingStats()
	secs := elapsed.Seconds()
	fmt.Printf("\nran %.2fs: readers=%d writers=%d batch=%d\n", secs, *readers, *writers, *batch)
	fmt.Printf("reads : %10d ops  %12.0f ops/s  latency(ms) %s\n",
		readOps.Load(), float64(readOps.Load())/secs, readLat.Percentiles())
	fmt.Printf("writes: %10d ops  %12.0f ops/s  (%d edges)  latency(ms) %s\n",
		writeOps.Load(), float64(writeOps.Load())/secs, writeEdge.Load(), st.UpdateLatency)
	opsPerBatch := 0.0
	if st.Batches > 0 {
		opsPerBatch = float64(st.BatchedOps) / float64(st.Batches)
	}
	fmt.Printf("pipeline: batches=%d ops/batch=%.2f canceled=%d flushes=%d queue=%d epoch=%d\n",
		st.Batches, opsPerBatch, st.CanceledOps, st.Flushes, st.QueueDepth, epoch)
	pagesPerDelta := 0.0
	if st.DeltaPublishes > 0 {
		pagesPerDelta = float64(st.DirtyPages) / float64(st.DeltaPublishes)
	}
	fmt.Printf("publish: full=%d delta=%d unchanged=%d grow=%d dirty-pages=%d (%.2f pages/delta)\n",
		st.FullPublishes, st.DeltaPublishes, st.UnchangedPublishes, st.GrowPublishes, st.DirtyPages, pagesPerDelta)
	if *churn {
		fmt.Printf("churn: universe grew %d -> %d vertices\n", *n, maint.N())
	}

	if *check {
		if err := maint.Check(); err != nil {
			log.Fatalf("invariant check failed: %v", err)
		}
		fmt.Println("invariants: ok")
	}
}
