package main

// The -cluster-check mode: an end-to-end sharded-cluster drill runnable
// from the command line (part of `make cluster-check`). loadserve
// spawns -shards private kcoreds running the chosen engine, splits an
// id space evenly across them, and churns randomized mixed traffic —
// multi-pair inserts with a -cross fraction of cross-shard boundary
// edges, removals of live and never-inserted edges, explicit growth —
// through the routing client while mirroring every acked op into the
// cluster Oracle. It then verifies every routed read against the
// Oracle: the full CORE.MGET sweep, point gets, and each scatter-gather
// aggregate, finishing with CORE.CHECK on every shard.

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"time"

	"repro/client"
	"repro/cluster"
	"repro/gen"
	"repro/graph"
)

type clusterCheckConfig struct {
	kcored   string
	shards   int
	alg      string
	cross    float64
	duration time.Duration
	batch    int
	seed     int64
}

func clusterCheckRun(cfg clusterCheckConfig) {
	if cfg.kcored == "" {
		log.Fatalf("loadserve: -cluster-check needs -kcored <path-to-binary> (build with: go build -o kcored ./cmd/kcored)")
	}
	if cfg.shards < 2 {
		log.Fatalf("loadserve: -cluster-check needs -shards >= 2, got %d", cfg.shards)
	}
	const capacity = 4096

	addrs := make([][]string, cfg.shards)
	procs := make([]*exec.Cmd, cfg.shards)
	defer func() {
		for i := range procs {
			killProc(&procs[i])
		}
	}()
	for i := range addrs {
		addr := fmt.Sprintf("127.0.0.1:%d", mustFreePort())
		procs[i] = spawnKcoredShard(cfg.kcored, addr, cfg.alg)
		addrs[i] = []string{addr}
	}

	m, err := cluster.EqualRanges(capacity, addrs)
	if err != nil {
		log.Fatalf("loadserve: %v", err)
	}
	c := cluster.Connect(m)
	defer c.Close()
	o := cluster.NewOracle(m)
	fmt.Printf("cluster-check: %d shards (alg=%s), capacity %d, cross=%.2f\n",
		cfg.shards, cfg.alg, capacity, cfg.cross)

	// Acked churn through the router, mirrored into the Oracle. Every
	// call returns only after all touched shards acked, so router and
	// Oracle stay in lockstep.
	rng := rand.New(rand.NewSource(cfg.seed))
	pool := gen.CrossRangeEdges(capacity, cfg.shards, 20_000, cfg.cross, cfg.seed+1)
	batch := max(cfg.batch, 8)
	var inserted []graph.Edge
	bursts := 0
	deadline := time.Now().Add(cfg.duration)
	for off := 0; time.Now().Before(deadline); off += batch {
		if off+batch > len(pool) {
			off = 0
		}
		chunk := pool[off : off+batch]
		if err := c.InsertEdges(chunk, nil); err != nil {
			log.Fatalf("loadserve: routed insert: %v", err)
		}
		for _, e := range chunk {
			o.ApplyInsert(e.U, e.V)
		}
		inserted = append(inserted, chunk...)
		bursts++
		switch rng.Intn(4) {
		case 0: // remove a random sample of what exists
			rm := make([]graph.Edge, 0, batch/4)
			for range cap(rm) {
				rm = append(rm, inserted[rng.Intn(len(inserted))])
			}
			if err := c.RemoveEdges(rm, nil); err != nil {
				log.Fatalf("loadserve: routed remove: %v", err)
			}
			for _, e := range rm {
				o.ApplyRemove(e.U, e.V)
			}
		case 1: // explicit growth
			n := int32(rng.Intn(capacity)) + 1
			if _, err := c.Grow(n); err != nil {
				log.Fatalf("loadserve: routed grow: %v", err)
			}
			o.Grow(n)
		}
	}
	if _, err := c.Flush(); err != nil {
		log.Fatalf("loadserve: cluster flush: %v", err)
	}
	fmt.Printf("churned %d bursts (oracle: n=%d m=%d)\n", bursts, o.N(), o.M())

	// Full routed sweep against the Oracle.
	want := o.Cores()
	ids := make([]int32, o.N())
	for i := range ids {
		ids[i] = int32(i)
	}
	got, err := c.MGet(ids)
	if err != nil {
		log.Fatalf("loadserve: routed sweep: %v", err)
	}
	for g := range ids {
		if got[g] != want[g] {
			log.Fatalf("loadserve: routed core(%d) = %d, oracle %d", g, got[g], want[g])
		}
	}
	fmt.Printf("sweep: all %d routed core numbers match the cluster oracle\n", len(ids))

	// Every scatter-gather aggregate.
	if c.N() != o.N() {
		log.Fatalf("loadserve: cluster N = %d, oracle %d", c.N(), o.N())
	}
	hist, err := c.Hist()
	if err != nil {
		log.Fatalf("loadserve: routed hist: %v", err)
	}
	wantHist := o.Hist()
	if len(hist) != len(wantHist) {
		log.Fatalf("loadserve: hist has %d bins, oracle %d", len(hist), len(wantHist))
	}
	for k := range hist {
		if hist[k] != wantHist[k] {
			log.Fatalf("loadserve: hist[%d] = %d, oracle %d", k, hist[k], wantHist[k])
		}
	}
	mx, err := c.MaxCore()
	if err != nil || mx != o.MaxCore() {
		log.Fatalf("loadserve: maxcore = %d, %v; oracle %d", mx, err, o.MaxCore())
	}
	for _, k := range []int32{0, 1, mx, mx + 1} {
		n, err := c.KVert(k)
		if err != nil || n != o.KVert(k) {
			log.Fatalf("loadserve: kvert(%d) = %d, %v; oracle %d", k, n, err, o.KVert(k))
		}
	}
	if err := c.Check(); err != nil {
		log.Fatalf("loadserve: %v", err)
	}
	sts, err := c.Stats()
	if err != nil {
		log.Fatalf("loadserve: cluster stats: %v", err)
	}
	for _, st := range sts {
		fmt.Printf("shard %d (%s): n=%s cmds=%s | pool dials=%d replaced=%d idle=%d\n",
			st.Shard, st.Addr, st.Server["n"], st.Server["commands"],
			st.Pool.Dials, st.Pool.Replaced, st.Pool.Idle)
	}
	fmt.Printf("aggregates: hist/maxcore/degeneracy/kvert/n all match; CORE.CHECK ok on %d shards\n", cfg.shards)
	fmt.Println("cluster-check: PASS")
}

// spawnKcoredShard boots one ephemeral shard server (no durability —
// the drill's truth lives in the Oracle) and waits for it to serve.
func spawnKcoredShard(bin, addr, alg string) *exec.Cmd {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-alg", alg,
		"-quiet",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("loadserve: start shard %s: %v", bin, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err == nil {
			_, perr := c.Do("PING")
			c.Close()
			if perr == nil {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			log.Fatalf("loadserve: shard kcored on %s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
