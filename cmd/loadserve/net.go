package main

// The -net mode: the same closed-loop reader/writer experiment, but
// driven over TCP against a live kcored server through the pipelined
// RESP client — measuring the full network stack instead of in-process
// calls. The server owns the graph; writers therefore churn edges inside
// private fresh-id ranges above the server's current universe (insert a
// chunk, remove it again), which exercises growth, coalescing across
// connections, and keeps the server's graph invariant-clean for -check.

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/graph"
	"repro/internal/stats"
	"repro/obs"
)

type netConfig struct {
	leader   string   // leader address (writes)
	replicas []string // optional read replicas
	readers  int
	writers  int
	batch    int // edges per pipelined write flight
	pipeline int // commands per pipelined read flight
	duration time.Duration
	seed     int64
	check    bool
	scrape   string // /metrics URL to diff across the run ("" = off)
}

func netRun(cfg netConfig) {
	// Writes always go to the leader; with replicas listed, readers
	// round-robin across the replicas — the read-scaling topology — and
	// -check adds a convergence sweep. (main parses the shared topology
	// grammar; this mode is the single-shard group.)
	leaderAddr := cfg.leader
	replicaAddrs := cfg.replicas
	newPool := func(addr string) *client.Pool {
		return &client.Pool{
			Dial:    func() (*client.Conn, error) { return client.Dial(addr, client.WithDialTimeout(5*time.Second)) },
			MaxIdle: cfg.readers + cfg.writers + 1,
		}
	}
	pool := newPool(leaderAddr)
	defer pool.Close()
	readPools := []*client.Pool{pool}
	if len(replicaAddrs) > 0 {
		readPools = readPools[:0]
		for _, a := range replicaAddrs {
			rp := newPool(a)
			defer rp.Close()
			readPools = append(readPools, rp)
		}
	}

	c, err := pool.Get()
	if err != nil {
		log.Fatalf("loadserve: connect %s: %v", leaderAddr, err)
	}
	serverN, err := client.Int(c.Do("CORE.N"))
	if err != nil {
		log.Fatalf("loadserve: CORE.N: %v", err)
	}
	startStats, err := client.StringMap(c.Do("CORE.STATS"))
	if err != nil {
		log.Fatalf("loadserve: CORE.STATS: %v", err)
	}
	pool.Put(c)
	fmt.Printf("driving kcored at %s: alg=%s n=%d epoch=%s\n",
		leaderAddr, startStats["alg"], serverN, startStats["epoch"])
	if len(replicaAddrs) > 0 {
		fmt.Printf("reads served by %d replica(s): %s\n", len(replicaAddrs), strings.Join(replicaAddrs, ", "))
	}
	if serverN == 0 {
		log.Fatalf("loadserve: server has an empty universe; start kcored with -load or -n")
	}

	var scrapeBefore map[string]float64
	if cfg.scrape != "" {
		scrapeBefore = scrapeMetrics(cfg.scrape)
	}

	var (
		stop      atomic.Bool
		readOps   atomic.Int64
		writeOps  atomic.Int64
		writeEdge atomic.Int64
		errCount  atomic.Int64
		readLat   = stats.NewLatencyRecorder(1 << 16)
		writeLat  = stats.NewLatencyRecorder(1 << 16)
		// ackLat isolates the server-side share of a write flight: the
		// wait from the flush to the last deferred reply (the pipelined
		// batch's ack), excluding the client-side send loop.
		ackLat = stats.NewLatencyRecorder(1 << 16)
		wg     sync.WaitGroup
	)

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rp := readPools[r%len(readPools)]
			cc, err := rp.Get()
			if err != nil {
				errCount.Add(1)
				log.Printf("reader %d: %v", r, err)
				return
			}
			defer rp.Put(cc)
			rng := rand.New(rand.NewSource(cfg.seed + 100 + int64(r)))
			for i := 0; !stop.Load(); i++ {
				start := time.Now()
				// One pipelined flight of point reads, with periodic
				// aggregate queries mixed in like the in-process mode.
				for p := 0; p < cfg.pipeline; p++ {
					switch {
					case i%512 == 511 && p == 0:
						err = cc.Send("CORE.HIST")
					case i%64 == 63 && p == 0:
						err = cc.Send("CORE.MAXCORE")
					default:
						err = cc.Send("CORE.GET", rng.Int31n(int32(serverN)))
					}
					if err != nil {
						errCount.Add(1)
						return
					}
				}
				if err := cc.Flush(); err != nil {
					errCount.Add(1)
					return
				}
				for p := 0; p < cfg.pipeline; p++ {
					if _, err := cc.Receive(); err != nil {
						errCount.Add(1)
						return
					}
				}
				readOps.Add(int64(cfg.pipeline))
				if i%4 == 0 {
					readLat.Record(time.Since(start))
				}
			}
		}(r)
	}

	// Writers churn private fresh-vertex ranges above the server's
	// universe: a chunk of chain edges inserted one command per edge in a
	// single pipelined flight, then removed the same way.
	const span = 1 << 13
	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc, err := pool.Get()
			if err != nil {
				errCount.Add(1)
				log.Printf("writer %d: %v", w, err)
				return
			}
			defer pool.Put(cc)
			rng := rand.New(rand.NewSource(cfg.seed + 500 + int64(w)))
			lo := int32(serverN) + int32(w)*span
			edges := make([]graph.Edge, cfg.batch)
			flight := func(cmd string) bool {
				start := time.Now()
				for _, e := range edges {
					if err := cc.Send(cmd, e.U, e.V); err != nil {
						errCount.Add(1)
						return false
					}
				}
				if err := cc.Flush(); err != nil {
					errCount.Add(1)
					return false
				}
				ackStart := time.Now()
				for range edges {
					if _, err := cc.Receive(); err != nil {
						errCount.Add(1)
						return false
					}
				}
				writeOps.Add(int64(len(edges)))
				writeEdge.Add(int64(len(edges)))
				writeLat.Record(time.Since(start))
				ackLat.Record(time.Since(ackStart))
				return true
			}
			for !stop.Load() {
				for i := range edges {
					u := lo + rng.Int31n(span)
					v := lo + rng.Int31n(span)
					if u == v {
						v = lo + (v-lo+1)%span
					}
					edges[i] = graph.Edge{U: u, V: v}
				}
				if !flight("CORE.INSERT") {
					return
				}
				if stop.Load() {
					break
				}
				if !flight("CORE.REMOVE") {
					return
				}
			}
			// Leave the server clean: remove the last chunk again in case
			// the stop flag interrupted between insert and remove.
			flight("CORE.REMOVE")
		}(w)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	cc, err := pool.Get()
	if err != nil {
		log.Fatalf("loadserve: reconnect: %v", err)
	}
	epoch, err := client.Int(cc.Do("CORE.FLUSH"))
	if err != nil {
		log.Fatalf("loadserve: CORE.FLUSH: %v", err)
	}
	st, err := client.StringMap(cc.Do("CORE.STATS"))
	if err != nil {
		log.Fatalf("loadserve: CORE.STATS: %v", err)
	}

	secs := elapsed.Seconds()
	fmt.Printf("\nran %.2fs over TCP: readers=%d writers=%d batch=%d pipeline=%d errors=%d\n",
		secs, cfg.readers, cfg.writers, cfg.batch, cfg.pipeline, errCount.Load())
	ackP := ackLat.Percentiles()
	fmt.Printf("reads : %10d ops  %12.0f ops/s  flight latency(ms) %s\n",
		readOps.Load(), float64(readOps.Load())/secs, readLat.Percentiles())
	fmt.Printf("writes: %10d ops  %12.0f ops/s  (%d edges)  flight latency(ms) %s  ack(ms) p50=%.4g p99=%.4g\n",
		writeOps.Load(), float64(writeOps.Load())/secs, writeEdge.Load(), writeLat.Percentiles(),
		ackP.P50, ackP.P99)
	fmt.Printf("server: conns=%s/%s cmds=%s (writes=%s) pipeline depth p50=%s p99=%s proto-errors=%s\n",
		st["conns_active"], st["conns_total"], st["commands"], st["write_cmds"],
		st["pipeline_p50"], st["pipeline_p99"], st["proto_errors"])
	fmt.Printf("server pipeline: batches=%s batched-ops=%s canceled=%s queue=%s update p50=%sms p99=%sms\n",
		st["batches"], st["batched_ops"], st["canceled_ops"], st["queue_depth"],
		st["update_p50_ms"], st["update_p99_ms"])
	fmt.Printf("publish: full=%s delta=%s unchanged=%s grow=%s dirty-pages=%s epoch=%d n=%s\n",
		st["full_publishes"], st["delta_publishes"], st["unchanged_publishes"],
		st["grow_publishes"], st["dirty_pages"], epoch, st["n"])
	ps := pool.Stats()
	fmt.Printf("client pool (leader): dials=%d replaced=%d in-use=%d idle=%d\n",
		ps.Dials, ps.Replaced, ps.InUse, ps.Idle)

	if cfg.scrape != "" {
		printScrapeDeltas(cfg.scrape, scrapeBefore)
	}

	if cfg.check {
		if s, err := client.String(cc.Do("CORE.CHECK")); err != nil || s != "OK" {
			log.Fatalf("loadserve: CORE.CHECK = %q, %v", s, err)
		}
		fmt.Println("invariants: ok (server-side CORE.CHECK)")
		if len(replicaAddrs) > 0 {
			leaderCores := sweepServerCores(cc, "leader")
			for _, a := range replicaAddrs {
				rc, err := client.Dial(a, client.WithDialTimeout(5*time.Second))
				if err != nil {
					log.Fatalf("loadserve: replica %s: %v", a, err)
				}
				// Read-your-writes gate: every write above was acked before
				// CORE.FLUSH returned epoch, so WAIT epoch makes the sweep
				// cover the whole run.
				if _, err := client.Int(rc.Do("CORE.WAIT", epoch, 60_000)); err != nil {
					log.Fatalf("loadserve: CORE.WAIT %d on %s: %v", epoch, a, err)
				}
				repCores := sweepServerCores(rc, a)
				if len(repCores) != len(leaderCores) {
					log.Fatalf("loadserve: replica %s has n=%d, leader n=%d", a, len(repCores), len(leaderCores))
				}
				for v := range leaderCores {
					if repCores[v] != leaderCores[v] {
						log.Fatalf("loadserve: replica %s diverged: core[%d]=%d, leader=%d",
							a, v, repCores[v], leaderCores[v])
					}
				}
				if s, err := client.String(rc.Do("CORE.CHECK")); err != nil || s != "OK" {
					log.Fatalf("loadserve: CORE.CHECK on %s = %q, %v", a, s, err)
				}
				rc.Close()
			}
			fmt.Printf("replicas: %d converged (full core sweep equal to leader)\n", len(replicaAddrs))
		}
	}
	pool.Put(cc)
}

// scrapeMetrics fetches and parses one Prometheus exposition from a
// kcored -metrics-addr endpoint.
func scrapeMetrics(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("loadserve: scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	m, err := obs.ParseText(resp.Body)
	if err != nil {
		log.Fatalf("loadserve: scrape %s: %v", url, err)
	}
	return m
}

// printScrapeDeltas scrapes again and prints every non-bucket series
// that moved over the run — the server's own account of the load it
// absorbed, next to the client-side numbers.
func printScrapeDeltas(url string, before map[string]float64) {
	after := scrapeMetrics(url)
	keys := make([]string, 0, len(after))
	for k := range after {
		if !strings.Contains(k, "_bucket{") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Printf("\nmetrics deltas over the run (%s):\n", url)
	for _, k := range keys {
		if d := after[k] - before[k]; d != 0 {
			fmt.Printf("  %-64s %+g\n", k, d)
		}
	}
}

// sweepServerCores reads every core number off a server in chunked
// CORE.MGET calls.
func sweepServerCores(c *client.Conn, who string) []int64 {
	n, err := client.Int(c.Do("CORE.N"))
	if err != nil {
		log.Fatalf("loadserve: CORE.N on %s: %v", who, err)
	}
	out := make([]int64, 0, n)
	const chunk = 1024
	for lo := int64(0); lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		args := make([]any, 0, hi-lo)
		for v := lo; v < hi; v++ {
			args = append(args, v)
		}
		ks, err := client.Ints(c.Do("CORE.MGET", args...))
		if err != nil {
			log.Fatalf("loadserve: CORE.MGET sweep on %s: %v", who, err)
		}
		out = append(out, ks...)
	}
	return out
}
