package main

// The -replica-check mode: an end-to-end replication drill runnable from
// the command line (part of `make crash`). loadserve spawns a durable
// leader kcored (-aof-fsync always) and a follower (-replica-of), drives
// acknowledged write bursts into the leader while mirroring every acked
// op into a client-side oracle graph, then kill -9s the leader BETWEEN
// bursts — no unacked tail in flight, so the op log holds exactly the
// mirror. It restarts the leader on the surviving directory (the
// promote-by-restart path), drives more acked bursts, and polls the
// follower — which must notice the dead leader, reconnect with backoff,
// and re-bootstrap from the successor's snapshot — until its full
// CORE.MGET sweep equals a fresh BZ decomposition of the mirror,
// finishing with CORE.CHECK on both nodes and a READONLY probe on the
// follower.

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/graph"
	"repro/internal/bz"
)

type replicaCheckConfig struct {
	kcored   string // path to the kcored binary
	duration time.Duration
	batch    int
	seed     int64
}

func replicaCheckRun(cfg replicaCheckConfig) {
	if cfg.kcored == "" {
		log.Fatalf("loadserve: -replica-check needs -kcored <path-to-binary> (build with: go build -o kcored ./cmd/kcored)")
	}
	tmp, err := os.MkdirTemp("", "loadserve-replica-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	leaderAddr := fmt.Sprintf("127.0.0.1:%d", mustFreePort())
	replicaAddr := fmt.Sprintf("127.0.0.1:%d", mustFreePort())

	leader := spawnKcored(cfg.kcored, tmp+"/data", leaderAddr)
	defer killProc(&leader)
	replica := spawnKcoredReplica(cfg.kcored, leaderAddr, replicaAddr)
	defer killProc(&replica)

	// Acked churn into the leader, mirrored client-side. Bursts are fully
	// awaited, so between bursts the op log holds exactly the mirror.
	const n = 3000
	rng := rand.New(rand.NewSource(cfg.seed))
	mirror := graph.New(n)
	c, err := client.Dial(leaderAddr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: connect leader: %v", err)
	}
	burstHalf := cfg.duration / 2
	b1 := ackedBursts(c, mirror, rng, max(cfg.batch, 8), burstHalf)
	c.Close()

	// kill -9 the leader between bursts: everything acked is on disk
	// (fsync=always), nothing unacked is in flight.
	if err := leader.Process.Signal(syscall.SIGKILL); err != nil {
		log.Fatalf("loadserve: kill -9 leader: %v", err)
	}
	leader.Wait()
	leader = nil
	fmt.Printf("killed leader after %d acked bursts (mirror: n=%d m=%d)\n", b1, mirror.N(), mirror.M())

	// Promote-by-restart: the successor recovers the directory on the
	// same address. The follower must re-bootstrap from it on its own.
	leader = spawnKcored(cfg.kcored, tmp+"/data", leaderAddr)
	c2, err := client.Dial(leaderAddr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: reconnect successor: %v", err)
	}
	b2 := ackedBursts(c2, mirror, rng, max(cfg.batch, 8), burstHalf)
	if _, err := client.Int(c2.Do("CORE.FLUSH")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("successor took %d more acked bursts (mirror: n=%d m=%d)\n", b2, mirror.N(), mirror.M())

	// The oracle: a fresh decomposition of the acked mirror.
	wantCore, _ := bz.Decompose(mirror.Clone())

	// The follower converges on its own schedule (reconnect backoff +
	// re-bootstrap): poll its full sweep against the oracle.
	rc, err := client.Dial(replicaAddr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: connect follower: %v", err)
	}
	defer rc.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if followerMatches(rc, wantCore) {
			break
		}
		if time.Now().After(deadline) {
			st, _ := client.StringMap(rc.Do("CORE.STATS"))
			log.Fatalf("loadserve: follower never converged on the successor's state; stats: %v", st)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("follower re-synced and converged: all %d core numbers match the acked-mirror oracle\n", len(wantCore))

	// The follower's write surface must be closed.
	if _, err := rc.Do("CORE.INSERT", 1, 2); err == nil || !strings.Contains(err.Error(), "READONLY") {
		log.Fatalf("loadserve: follower accepted a write: %v", err)
	}
	for who, cc := range map[string]*client.Conn{"leader": c2, "follower": rc} {
		if s, err := client.String(cc.Do("CORE.CHECK")); err != nil || s != "OK" {
			log.Fatalf("loadserve: CORE.CHECK on %s = %q, %v", who, s, err)
		}
	}
	c2.Close()
	fmt.Println("replica-check: PASS")
}

// ackedBursts drives pipelined insert/remove bursts for d, awaiting
// every reply before the op lands in mirror. Returns the burst count.
func ackedBursts(c *client.Conn, mirror *graph.Graph, rng *rand.Rand, batch int, d time.Duration) int {
	n := mirror.N()
	type op struct {
		e      graph.Edge
		remove bool
	}
	deadline := time.Now().Add(d)
	bursts := 0
	for time.Now().Before(deadline) {
		ops := make([]op, 0, batch)
		for i := 0; i < batch; i++ {
			if rng.Intn(8) == 0 && mirror.M() > 0 {
				for tries := 0; tries < 32; tries++ {
					u := int32(rng.Intn(n))
					if a := mirror.Adj(u); len(a) > 0 {
						ops = append(ops, op{e: graph.Edge{U: u, V: a[rng.Intn(len(a))]}.Norm(), remove: true})
						break
					}
				}
				continue
			}
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				ops = append(ops, op{e: graph.Edge{U: u, V: v}.Norm()})
			}
		}
		for _, o := range ops {
			cmd := "CORE.INSERT"
			if o.remove {
				cmd = "CORE.REMOVE"
			}
			if err := c.Send(cmd, int64(o.e.U), int64(o.e.V)); err != nil {
				log.Fatalf("loadserve: send: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			log.Fatalf("loadserve: flush: %v", err)
		}
		for _, o := range ops {
			if _, err := c.Receive(); err != nil {
				log.Fatalf("loadserve: receive: %v", err)
			}
			if o.remove {
				mirror.RemoveEdge(o.e.U, o.e.V)
			} else {
				mirror.AddEdge(o.e.U, o.e.V)
			}
		}
		bursts++
	}
	return bursts
}

// followerMatches sweeps the follower's full core array and compares it
// to want; any mismatch (including a transient one mid-sync) returns
// false.
func followerMatches(rc *client.Conn, want []int32) bool {
	servedN, err := client.Int(rc.Do("CORE.N"))
	if err != nil || int(servedN) != len(want) {
		return false
	}
	const chunk = 512
	for lo := 0; lo < len(want); lo += chunk {
		hi := min(lo+chunk, len(want))
		args := make([]any, 0, hi-lo)
		for v := lo; v < hi; v++ {
			args = append(args, int64(v))
		}
		vals, err := client.Ints(rc.Do("CORE.MGET", args...))
		if err != nil {
			return false
		}
		for i, got := range vals {
			if int32(got) != want[lo+i] {
				return false
			}
		}
	}
	return true
}

func spawnKcoredReplica(bin, leaderAddr, addr string) *exec.Cmd {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-replica-of", leaderAddr,
		"-quiet",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("loadserve: start replica %s: %v", bin, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err == nil {
			_, perr := c.Do("PING")
			c.Close()
			if perr == nil {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			log.Fatalf("loadserve: replica kcored on %s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func killProc(p **exec.Cmd) {
	if *p != nil {
		(*p).Process.Kill()
		(*p).Wait()
	}
}
