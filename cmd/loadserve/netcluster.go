package main

// The -net cluster mode: when the topology names several ';'-separated
// shard groups, the same closed-loop experiment drives the whole
// id-range sharded cluster through the routing client — writers push
// mixed intra-/cross-shard edge batches (insert a chunk, remove it
// again, so the cluster stays invariant-clean for -check), readers
// sweep random ids through the parallel MGET scatter-gather with
// periodic global aggregates mixed in. At the end it prints per-shard
// server stats next to the router's pool counters.

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/cluster"
	"repro/gen"
	"repro/internal/stats"
	"repro/obs"
)

type clusterNetConfig struct {
	topology [][]string // parsed shard groups: leader first, then replicas
	capacity int32      // cluster id capacity (ranges split evenly)
	readers  int
	writers  int
	batch    int     // edges per routed write burst
	pipeline int     // ids per routed read burst
	cross    float64 // cross-shard edge fraction in write traffic
	duration time.Duration
	seed     int64
	check    bool
	metrics  string // serve the router's Prometheus metrics here ("" = off)
}

func clusterNetRun(cfg clusterNetConfig) {
	m, err := cluster.EqualRanges(cfg.capacity, cfg.topology)
	if err != nil {
		log.Fatalf("loadserve: %v", err)
	}
	c := cluster.Connect(m)
	defer c.Close()
	if cfg.metrics != "" {
		// The router's metrics (per-shard request/error counters, fan-out
		// latency) live in this process, not in any kcored — the driver
		// serves them itself.
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		ms, err := obs.Serve(cfg.metrics, reg)
		if err != nil {
			log.Fatalf("loadserve: metrics: %v", err)
		}
		defer ms.Close()
		fmt.Printf("router metrics on http://%s/metrics\n", ms.Addr())
	}
	if err := c.Recover(); err != nil {
		log.Fatalf("loadserve: cluster bootstrap: %v", err)
	}
	fmt.Printf("driving %d-shard cluster (capacity %d, recovered n=%d):\n", m.NumShards(), m.Cap(), c.N())
	for i := range m.NumShards() {
		s := m.Shard(i)
		fmt.Printf("  shard %d: [%d, %d) leader %s", i, s.Lo, s.Hi, s.Leader)
		if len(s.Replicas) > 0 {
			fmt.Printf(" replicas %v", s.Replicas)
		}
		fmt.Println()
	}

	var (
		stop     atomic.Bool
		readOps  atomic.Int64
		writeOps atomic.Int64
		errCount atomic.Int64
		readLat  = stats.NewLatencyRecorder(1 << 16)
		writeLat = stats.NewLatencyRecorder(1 << 16)
		wg       sync.WaitGroup
	)

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 100 + int64(r)))
			ids := make([]int32, cfg.pipeline)
			for i := 0; !stop.Load(); i++ {
				start := time.Now()
				var err error
				ops := int64(1)
				switch {
				case i%512 == 511:
					_, err = c.Hist()
				case i%64 == 63:
					_, err = c.MaxCore()
				default:
					for p := range ids {
						ids[p] = rng.Int31n(cfg.capacity)
					}
					_, err = c.MGet(ids)
					ops = int64(len(ids))
				}
				if err != nil {
					errCount.Add(1)
					log.Printf("reader %d: %v", r, err)
					return
				}
				readOps.Add(ops)
				if i%4 == 0 {
					readLat.Record(time.Since(start))
				}
			}
		}(r)
	}

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer cycles insert/remove over its own cross-range
			// edge pool: every burst does real multi-shard maintenance work
			// while the cluster's graph stays bounded. (Pools may overlap
			// across writers; duplicate inserts and double removes are
			// dropped by the engines, which keeps every shard consistent.)
			pool := gen.CrossRangeEdges(cfg.capacity, m.NumShards(), cfg.batch*64, cfg.cross,
				cfg.seed+500+int64(w))
			flight := func(insert bool, off int) bool {
				chunk := pool[off : off+cfg.batch]
				start := time.Now()
				var err error
				if insert {
					err = c.InsertEdges(chunk, nil)
				} else {
					err = c.RemoveEdges(chunk, nil)
				}
				if err != nil {
					errCount.Add(1)
					log.Printf("writer %d: %v", w, err)
					return false
				}
				writeOps.Add(int64(len(chunk)))
				writeLat.Record(time.Since(start))
				return true
			}
			for off := 0; !stop.Load(); off += cfg.batch {
				if off+cfg.batch > len(pool) {
					off = 0
				}
				if !flight(true, off) {
					return
				}
				if !flight(false, off) {
					return
				}
				if stop.Load() {
					return
				}
			}
		}(w)
	}

	start := time.Now()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	if _, err := c.Flush(); err != nil {
		log.Fatalf("loadserve: cluster flush: %v", err)
	}
	secs := elapsed.Seconds()
	fmt.Printf("\nran %.2fs over %d shards: readers=%d writers=%d batch=%d pipeline=%d cross=%.2f errors=%d\n",
		secs, m.NumShards(), cfg.readers, cfg.writers, cfg.batch, cfg.pipeline, cfg.cross, errCount.Load())
	fmt.Printf("reads : %10d ops  %12.0f ops/s  burst latency(ms) %s\n",
		readOps.Load(), float64(readOps.Load())/secs, readLat.Percentiles())
	fmt.Printf("writes: %10d edge-cmds  %12.0f ops/s  burst latency(ms) %s\n",
		writeOps.Load(), float64(writeOps.Load())/secs, writeLat.Percentiles())
	sts, err := c.Stats()
	if err != nil {
		log.Fatalf("loadserve: cluster stats: %v", err)
	}
	for _, st := range sts {
		fmt.Printf("shard %d (%s): n=%s cmds=%s (writes=%s) batches=%s pipeline p50=%s | pool dials=%d replaced=%d in-use=%d idle=%d\n",
			st.Shard, st.Addr, st.Server["n"], st.Server["commands"], st.Server["write_cmds"],
			st.Server["batches"], st.Server["pipeline_p50"],
			st.Pool.Dials, st.Pool.Replaced, st.Pool.InUse, st.Pool.Idle)
	}

	if cfg.check {
		if err := c.Check(); err != nil {
			log.Fatalf("loadserve: cluster check failed: %v", err)
		}
		fmt.Printf("invariants: ok (CORE.CHECK on all %d shards)\n", m.NumShards())
	}
}
