package main

// The -recover-check mode: an end-to-end crash-recovery drill runnable
// from the command line (the CLI twin of cmd/kcored's crash test, and
// the `make crash` target). loadserve spawns its own kcored (-kcored
// names the binary) on a private durability directory with
// -aof-fsync always, drives acknowledged write bursts over TCP while
// mirroring every acked op into a client-side oracle graph, then
// kill -9s the server mid-burst — a flushed, never-awaited command tail
// in flight. It recovers the directory offline (persist.Recover),
// checks the edge-set sandwich acked ⊆ recovered ⊆ sent, restarts
// kcored on the same directory, and sweeps the full core array over
// CORE.MGET against a fresh single-node BZ decomposition of the
// recovered edge set, finishing with CORE.CHECK.

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/client"
	"repro/graph"
	"repro/internal/bz"
	"repro/persist"
)

type recoverCheckConfig struct {
	kcored   string // path to the kcored binary
	duration time.Duration
	batch    int
	seed     int64
}

func recoverCheckRun(cfg recoverCheckConfig) {
	if cfg.kcored == "" {
		log.Fatalf("loadserve: -recover-check needs -kcored <path-to-binary> (build with: go build -o kcored ./cmd/kcored)")
	}
	tmp, err := os.MkdirTemp("", "loadserve-recover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	dir := filepath.Join(tmp, "data")
	port := mustFreePort()
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	proc := spawnKcored(cfg.kcored, dir, addr)
	defer func() {
		if proc != nil {
			proc.Process.Kill()
			proc.Wait()
		}
	}()

	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: connect: %v", err)
	}

	// Acked phase: pipelined bursts of inserts with occasional removes,
	// every reply awaited before the op lands in the oracle mirror.
	const n = 4000
	rng := rand.New(rand.NewSource(cfg.seed))
	mirror := graph.New(n)
	batch := max(cfg.batch, 8)
	type op struct {
		e      graph.Edge
		remove bool
	}
	deadline := time.Now().Add(cfg.duration)
	bursts, ackedOps := 0, 0
	for time.Now().Before(deadline) {
		ops := make([]op, 0, batch)
		for i := 0; i < batch; i++ {
			if rng.Intn(8) == 0 && mirror.M() > 0 {
				// Remove a random existing mirror edge.
				for tries := 0; tries < 32; tries++ {
					u := int32(rng.Intn(n))
					if a := mirror.Adj(u); len(a) > 0 {
						ops = append(ops, op{e: graph.Edge{U: u, V: a[rng.Intn(len(a))]}.Norm(), remove: true})
						break
					}
				}
				continue
			}
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				ops = append(ops, op{e: graph.Edge{U: u, V: v}.Norm()})
			}
		}
		for _, o := range ops {
			cmd := "CORE.INSERT"
			if o.remove {
				cmd = "CORE.REMOVE"
			}
			if err := c.Send(cmd, int64(o.e.U), int64(o.e.V)); err != nil {
				log.Fatalf("loadserve: send: %v", err)
			}
		}
		if err := c.Flush(); err != nil {
			log.Fatalf("loadserve: flush: %v", err)
		}
		for _, o := range ops {
			if _, err := c.Receive(); err != nil {
				log.Fatalf("loadserve: receive: %v", err)
			}
			if o.remove {
				mirror.RemoveEdge(o.e.U, o.e.V)
			} else {
				mirror.AddEdge(o.e.U, o.e.V)
			}
			ackedOps++
		}
		bursts++
	}

	// The doomed burst: flushed to the socket, never awaited. None of
	// these are in the mirror; any subset may have landed.
	doomed := make(map[graph.Edge]bool)
	for i := 0; i < 4*batch; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Norm()
		doomed[e] = true
		if err := c.Send("CORE.INSERT", int64(e.U), int64(e.V)); err != nil {
			log.Fatalf("loadserve: send doomed: %v", err)
		}
	}
	c.Flush()
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		log.Fatalf("loadserve: kill -9: %v", err)
	}
	proc.Wait()
	proc = nil
	c.Close()
	fmt.Printf("killed kcored mid-burst after %d bursts (%d acked ops, %d doomed in flight)\n",
		bursts, ackedOps, len(doomed))

	// Offline recovery + edge-set sandwich.
	res, err := persist.Recover(dir)
	if err != nil {
		log.Fatalf("loadserve: recover after kill -9: %v", err)
	}
	if res.Graph == nil {
		log.Fatalf("loadserve: no recoverable state in %s", dir)
	}
	fmt.Printf("recovered gen=%d: n=%d m=%d, %d log records replayed (%d segments, %d torn bytes)\n",
		res.Gen, res.Graph.N(), res.Graph.M(), res.TailRecords, res.Segments, res.TornBytes)
	for v := int32(0); int(v) < mirror.N(); v++ {
		for _, w := range mirror.Adj(v) {
			if v < w && !res.Graph.HasEdge(v, w) {
				log.Fatalf("loadserve: acked edge (%d,%d) lost by the crash", v, w)
			}
		}
	}
	// Everything recovered beyond the acked state must come from the
	// doomed in-flight tail: the single connection orders the op stream,
	// and fsync=always logs every acked op before its reply, so the log
	// is exactly "all acked ops, then a prefix of the doomed burst".
	for _, e := range res.Graph.Edges() {
		ne := e.Norm()
		if !mirror.HasEdge(ne.U, ne.V) && !doomed[ne] {
			log.Fatalf("loadserve: recovered edge (%d,%d) matches no sent op", ne.U, ne.V)
		}
	}
	wantCore, _ := bz.Decompose(res.Graph)

	// Restart on the surviving directory and sweep the served cores.
	proc = spawnKcored(cfg.kcored, dir, addr)
	c2, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: reconnect after restart: %v", err)
	}
	defer c2.Close()
	servedN, err := client.Int(c2.Do("CORE.N"))
	if err != nil {
		log.Fatal(err)
	}
	if int(servedN) != res.Graph.N() {
		log.Fatalf("loadserve: restarted N=%d, recovered N=%d", servedN, res.Graph.N())
	}
	const chunk = 512
	checked := 0
	for lo := 0; lo < int(servedN); lo += chunk {
		hi := min(lo+chunk, int(servedN))
		args := make([]any, 0, hi-lo)
		for v := lo; v < hi; v++ {
			args = append(args, int64(v))
		}
		vals, err := client.Ints(c2.Do("CORE.MGET", args...))
		if err != nil {
			log.Fatal(err)
		}
		for i, got := range vals {
			if int32(got) != wantCore[lo+i] {
				log.Fatalf("loadserve: served core[%d]=%d, oracle says %d", lo+i, got, wantCore[lo+i])
			}
			checked++
		}
	}
	if s, err := client.String(c2.Do("CORE.CHECK")); err != nil || s != "OK" {
		log.Fatalf("loadserve: CORE.CHECK after recovery = %q, %v", s, err)
	}
	fmt.Printf("restart: all %d served core numbers match the single-node oracle; CORE.CHECK ok\n", checked)
	fmt.Println("recover-check: PASS")
}

func spawnKcored(bin, dir, addr string, extra ...string) *exec.Cmd {
	args := append([]string{
		"-addr", addr,
		"-dir", dir,
		"-aof-fsync", "always",
		"-checkpoint-ops", "500",
		"-quiet",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("loadserve: start %s: %v", bin, err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err == nil {
			_, perr := c.Do("PING")
			c.Close()
			if perr == nil {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			log.Fatalf("loadserve: kcored on %s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustFreePort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}
