package main

// The -metrics-check mode: an end-to-end observability drill (the
// `make metrics-check` target, and CI's integration step for the obs
// stack). loadserve spawns its own durable kcored with -metrics-addr
// and -slowlog-ms 0, drives a short burst of mixed traffic — pipelined
// reads, coalesced writes, aggregates, CORE.STATS — then scrapes
// /metrics twice, asserts the exposition parses (obs.ParseText), that
// every expected metric family is present, that the traffic moved the
// command counters, and that each latency histogram's +Inf bucket
// equals its _count. It finishes by exercising CORE.SLOWLOG
// GET/LEN/RESET (threshold 0 records every timed command) and probing
// the pprof index.

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/client"
)

type metricsCheckConfig struct {
	kcored   string
	duration time.Duration
	batch    int
	seed     int64
}

func metricsCheckRun(cfg metricsCheckConfig) {
	if cfg.kcored == "" {
		log.Fatalf("loadserve: -metrics-check needs -kcored <path-to-binary> (build with: go build -o kcored ./cmd/kcored)")
	}
	tmp, err := os.MkdirTemp("", "loadserve-metrics-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	addr := fmt.Sprintf("127.0.0.1:%d", mustFreePort())
	maddr := fmt.Sprintf("127.0.0.1:%d", mustFreePort())
	url := "http://" + maddr + "/metrics"
	proc := spawnKcored(cfg.kcored, filepath.Join(tmp, "data"), addr,
		"-metrics-addr", maddr, "-slowlog-ms", "0")
	defer func() {
		proc.Process.Kill()
		proc.Wait()
	}()

	before := scrapeMetrics(url)

	// Mixed churn: pipelined writes (insert then remove, so the graph
	// stays bounded), point reads, aggregates, and admin traffic.
	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatalf("loadserve: connect: %v", err)
	}
	defer c.Close()
	const n = 2000
	rng := rand.New(rand.NewSource(cfg.seed))
	batch := max(cfg.batch, 16)
	deadline := time.Now().Add(cfg.duration)
	bursts := 0
	for time.Now().Before(deadline) || bursts < 8 {
		for _, cmd := range []string{"CORE.INSERT", "CORE.REMOVE"} {
			rng2 := rand.New(rand.NewSource(cfg.seed + int64(bursts)))
			for i := 0; i < batch; i++ {
				u, v := rng2.Int31n(n), rng2.Int31n(n)
				if u == v {
					v = (v + 1) % n
				}
				if err := c.Send(cmd, u, v); err != nil {
					log.Fatalf("loadserve: send: %v", err)
				}
			}
			for i := 0; i < batch; i++ {
				if err := c.Send("CORE.GET", rng.Int31n(n)); err != nil {
					log.Fatalf("loadserve: send: %v", err)
				}
			}
			if err := c.Flush(); err != nil {
				log.Fatalf("loadserve: flush: %v", err)
			}
			for i := 0; i < 2*batch; i++ {
				if _, err := c.Receive(); err != nil {
					log.Fatalf("loadserve: receive: %v", err)
				}
			}
		}
		if _, err := c.Do("CORE.HIST"); err != nil {
			log.Fatalf("loadserve: CORE.HIST: %v", err)
		}
		if _, err := c.Do("CORE.STATS"); err != nil {
			log.Fatalf("loadserve: CORE.STATS: %v", err)
		}
		bursts++
	}
	fmt.Printf("churned %d bursts (batch=%d) against %s\n", bursts, batch, addr)

	after := scrapeMetrics(url)
	fmt.Printf("scraped %s: %d series parsed\n", url, len(after))

	// Family presence: at least one series of each expected family.
	families := []string{
		"kcored_commands_total",
		"kcored_command_latency_seconds_bucket",
		"kcored_command_latency_seconds_count",
		"kcored_connections_total",
		"kcored_errors_total",
		"kcored_inflight_writes",
		"kcored_uptime_seconds",
		"kcored_info",
		"kcored_epoch",
		"kcored_vertices",
		"kcored_queue_depth",
		"kcored_pipeline_ops_total",
		"kcored_batches_total",
		"kcored_publishes_total",
		"kcore_pipeline_stage_seconds_bucket",
		"kcored_aof_fsync_seconds_count",
		"kcored_aof_records_total",
		"kcored_checkpoints_total",
		"kcored_persist_err",
		"kcored_slow_commands_total",
		"kcored_slowlog_entries",
	}
	for _, fam := range families {
		found := false
		for k := range after {
			if k == fam || strings.HasPrefix(k, fam+"{") {
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("loadserve: metric family %q missing from %s", fam, url)
		}
	}
	fmt.Printf("all %d expected metric families present\n", len(families))

	// The churn must have moved the command counters and histograms.
	for _, series := range []string{
		`kcored_commands_total{family="read"}`,
		`kcored_commands_total{family="write"}`,
		`kcored_commands_total{family="aggregate"}`,
		`kcored_commands_total{family="admin"}`,
		`kcored_command_latency_seconds_count{family="read"}`,
		`kcored_command_latency_seconds_count{family="write"}`,
		`kcored_aof_records_total`,
	} {
		if after[series] <= before[series] {
			log.Fatalf("loadserve: %s did not advance over the run (%g -> %g)",
				series, before[series], after[series])
		}
	}

	// Histogram self-consistency: each family's +Inf bucket == _count.
	hists := 0
	for k, v := range after {
		if i := strings.Index(k, `le="+Inf"`); i >= 0 {
			count := strings.Replace(strings.Replace(k, "_bucket{", "_count{", 1), `le="+Inf"`, "", 1)
			count = strings.Replace(count, `,}`, `}`, 1)
			count = strings.Replace(count, `{}`, ``, 1)
			cv, ok := after[count]
			if !ok {
				log.Fatalf("loadserve: %s has no matching _count series (looked for %s)", k, count)
			}
			if v != cv {
				log.Fatalf("loadserve: %s = %g but %s = %g", k, v, count, cv)
			}
			hists++
		}
	}
	fmt.Printf("%d histogram series: +Inf bucket == _count\n", hists)

	// Slowlog: threshold 0 records every timed command and write drain.
	slen, err := client.Int(c.Do("CORE.SLOWLOG", "LEN"))
	if err != nil {
		log.Fatalf("loadserve: CORE.SLOWLOG LEN: %v", err)
	}
	if slen == 0 {
		log.Fatalf("loadserve: slowlog empty after churn at threshold 0")
	}
	got, err := c.Do("CORE.SLOWLOG", "GET", 5)
	if err != nil {
		log.Fatalf("loadserve: CORE.SLOWLOG GET: %v", err)
	}
	if len(got.Array) == 0 {
		log.Fatalf("loadserve: CORE.SLOWLOG GET returned no entries (LEN=%d)", slen)
	}
	if e := got.Array[0]; len(e.Array) != 5 {
		log.Fatalf("loadserve: slowlog entry has %d fields, want 5 (id, unix, duration_us, cmd, detail)", len(e.Array))
	}
	if s, err := client.String(c.Do("CORE.SLOWLOG", "RESET")); err != nil || s != "OK" {
		log.Fatalf("loadserve: CORE.SLOWLOG RESET = %q, %v", s, err)
	}
	if slen, err = client.Int(c.Do("CORE.SLOWLOG", "LEN")); err != nil || slen != 0 {
		log.Fatalf("loadserve: CORE.SLOWLOG LEN after RESET = %d, %v", slen, err)
	}
	fmt.Printf("slowlog: recorded, listed, reset ok\n")

	// The pprof mux rides on the same endpoint.
	resp, err := http.Get("http://" + maddr + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("loadserve: pprof index: status=%v err=%v", respStatus(resp), err)
	}
	resp.Body.Close()
	fmt.Println("metrics-check: PASS")
}

func respStatus(r *http.Response) string {
	if r == nil {
		return "<nil>"
	}
	return r.Status
}
