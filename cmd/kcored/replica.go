package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/obs"
	"repro/server"
)

// serveMetrics builds a registry over the server's full metric surface
// and serves it (plus pprof) on addr; shared by leader and replica
// modes. Call only after the server's role is final (NewReplica done).
func serveMetrics(srv *server.Server, addr string) (*obs.Server, error) {
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	return obs.Serve(addr, reg)
}

// runReplica is the -replica-of mode: serve reads from a follower that
// streams the leader's op log, rejecting writes (READONLY) and exposing
// CORE.WAIT on the applied-epoch watermark for read-your-writes.
func runReplica(leaderAddr, addr, algName string, workers, maxVertices, connShards int,
	metricsAddr string, slowlogMs int, quiet bool) {
	alg, err := parseAlg(algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// The placeholder maintainer serves until the first leader snapshot
	// lands; the replica swaps the real one in atomically.
	m := kcore.New(graph.New(0),
		kcore.WithAlgorithm(alg),
		kcore.WithWorkers(workers),
		kcore.WithMaxVertices(maxVertices))
	srv := server.New(m,
		server.WithConnShards(connShards),
		server.WithSlowlog(time.Duration(slowlogMs)*time.Millisecond, 0))
	var logger *log.Logger
	if !quiet {
		logger = log.Default()
	}
	rep := server.NewReplica(srv, leaderAddr, server.ReplicaOptions{
		Workers:     workers,
		Alg:         alg,
		MaxVertices: maxVertices,
		Logger:      logger,
	})
	if metricsAddr != "" {
		ms, err := serveMetrics(srv, metricsAddr)
		if err != nil {
			log.Fatalf("kcored: metrics: %v", err)
		}
		defer ms.Close()
		if !quiet {
			log.Printf("kcored: metrics on http://%s/metrics (pprof at /debug/pprof/)", ms.Addr())
		}
	}
	rep.Start()

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		if !quiet {
			log.Printf("kcored: replica shutting down")
		}
		rep.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	if !quiet {
		log.Printf("kcored: replica of %s, listening on %s", leaderAddr, addr)
	}
	if err := srv.ListenAndServe(addr); err != server.ErrServerClosed {
		log.Fatalf("kcored: %v", err)
	}
	<-shutdownDone
	srv.Maintainer().Close()
	if !quiet {
		st := srv.Stats()
		log.Printf("kcored: replica served %d commands over %d connections, applied epoch %d",
			st.Commands, st.ConnsTotal, rep.Watermark().Epoch())
	}
}
