// Command kcored serves a maintained k-core decomposition over TCP,
// speaking the RESP2 wire protocol — the networked face of the serving
// layer. Point any RESP client (redis-cli included) at it:
//
//	kcored -addr :6380 -alg parallel -workers 4 -load er.txt
//	redis-cli -p 6380 core.get 42
//
// With -load, the initial graph is read from a whitespace edge list
// (cmd/graphgen emits them); without it the server starts on an empty
// universe of -n vertices (default 0) and grows on demand as CORE.INSERT
// traffic names fresh vertex ids. SIGINT/SIGTERM shut down gracefully:
// in-flight write futures drain and buffered replies flush before the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":6380", "listen address (host:port)")
		algName     = flag.String("alg", "parallel", "engine: parallel|seq|traversal|jes")
		workers     = flag.Int("workers", 4, "engine worker goroutines")
		maxVertices = flag.Int("maxvertices", kcore.DefaultMaxVertices, "vertex-universe growth ceiling")
		n           = flag.Int("n", 0, "initial (empty) vertex universe when -load is absent")
		load        = flag.String("load", "", "preload graph from a whitespace edge-list file")
		connShards  = flag.Int("conn-shards", -1, "event-loop connection shards (Linux; -1 = GOMAXPROCS, 0 = goroutine per conn)")
		quiet       = flag.Bool("quiet", false, "suppress the startup banner")
	)
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	g, err := buildGraph(*load, *n)
	if err != nil {
		log.Fatalf("kcored: %v", err)
	}

	start := time.Now()
	m := kcore.New(g,
		kcore.WithAlgorithm(alg),
		kcore.WithWorkers(*workers),
		kcore.WithMaxVertices(*maxVertices),
	)
	defer m.Close()
	if !*quiet {
		log.Printf("kcored: engine %v (workers=%d), n=%d m=%d, initial decomposition in %v",
			alg, *workers, g.N(), g.M(), time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(m, server.WithConnShards(*connShards))
	// Closing the listener makes ListenAndServe return immediately, but
	// the graceful drain (in-flight write futures, buffered replies) is
	// still running inside Shutdown — main must wait for it before
	// exiting, or the process would cut connections mid-drain.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		if !*quiet {
			log.Printf("kcored: shutting down")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	if !*quiet {
		log.Printf("kcored: listening on %s", *addr)
	}
	err = srv.ListenAndServe(*addr)
	if err != server.ErrServerClosed {
		log.Fatalf("kcored: %v", err)
	}
	<-shutdownDone
	if !*quiet {
		st := srv.Stats()
		log.Printf("kcored: served %d commands over %d connections, epoch %d",
			st.Commands, st.ConnsTotal, m.Epoch())
	}
}

func parseAlg(name string) (kcore.Algorithm, error) {
	switch name {
	case "parallel":
		return kcore.ParallelOrder, nil
	case "seq":
		return kcore.SequentialOrder, nil
	case "traversal":
		return kcore.Traversal, nil
	case "jes":
		return kcore.JoinEdgeSet, nil
	}
	return 0, fmt.Errorf("unknown -alg %q (want parallel|seq|traversal|jes)", name)
}

func buildGraph(load string, n int) (*graph.Graph, error) {
	if load == "" {
		return graph.New(n), nil
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", load, err)
	}
	return g, nil
}
