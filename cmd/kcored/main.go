// Command kcored serves a maintained k-core decomposition over TCP,
// speaking the RESP2 wire protocol — the networked face of the serving
// layer. Point any RESP client (redis-cli included) at it:
//
//	kcored -addr :6380 -alg parallel -workers 4 -load er.txt
//	redis-cli -p 6380 core.get 42
//
// With -load, the initial graph is read from a whitespace edge list
// (cmd/graphgen emits them); without it the server starts on an empty
// universe of -n vertices (default 0) and grows on demand as CORE.INSERT
// traffic names fresh vertex ids.
//
// With -dir, the server is durable: every applied write is appended to
// an op log in that directory (sync policy per -aof-fsync) and
// checkpointed periodically (-checkpoint-ops / -checkpoint-bytes, or
// CORE.BGSAVE on demand). On startup, existing state in -dir wins over
// -load: the server recovers from the latest checkpoint plus the log
// tail and logs a note that -load was ignored. On a fresh -dir with
// -load, the edge list is imported and immediately checkpointed, so the
// text parse is paid once, ever. SIGINT/SIGTERM shut down gracefully:
// in-flight write futures drain, buffered replies flush, and (with
// -dir) a final checkpoint lands before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/graph"
	"repro/kcore"
	"repro/persist"
	"repro/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":6380", "listen address (host:port)")
		algName     = flag.String("alg", "parallel", "engine: parallel|seq|traversal|jes")
		workers     = flag.Int("workers", 4, "engine worker goroutines")
		maxVertices = flag.Int("maxvertices", kcore.DefaultMaxVertices, "vertex-universe growth ceiling")
		n           = flag.Int("n", 0, "initial (empty) vertex universe when -load is absent")
		load        = flag.String("load", "", "preload graph from a whitespace edge-list file")
		connShards  = flag.Int("conn-shards", -1, "event-loop connection shards (Linux; -1 = GOMAXPROCS, 0 = goroutine per conn)")
		dir         = flag.String("dir", "", "durability directory (AOF + checkpoints); empty = no persistence")
		fsyncName   = flag.String("aof-fsync", "everysec", "AOF sync policy: always|everysec|no")
		ckptOps     = flag.Int64("checkpoint-ops", 0, "checkpoint after this many logged ops (0 = default, <0 = never)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 0, "checkpoint after this many logged bytes (0 = default, <0 = never)")
		replicaOf   = flag.String("replica-of", "", "run as a read-only follower of the leader kcored at host:port")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and net/http/pprof on this address (empty = disabled)")
		slowlogMs   = flag.Int("slowlog-ms", 10, "slowlog threshold in milliseconds (0 records every command, negative disables)")
		quiet       = flag.Bool("quiet", false, "suppress the startup banner")
	)
	flag.Parse()

	if *replicaOf != "" {
		// A follower's only durable truth is the leader's stream: it
		// bootstraps from a leader snapshot on every (re)connect, so local
		// persistence or preloads would only be discarded state.
		if *dir != "" || *load != "" {
			fmt.Fprintln(os.Stderr, "kcored: -replica-of is mutually exclusive with -dir and -load")
			os.Exit(2)
		}
		runReplica(*replicaOf, *addr, *algName, *workers, *maxVertices, *connShards,
			*metricsAddr, *slowlogMs, *quiet)
		return
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fsync, err := persist.ParseFsync(*fsyncName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Recover-or-import precedence: durable state in -dir is
	// authoritative; -load only seeds a directory that has none.
	var (
		g   *graph.Graph
		mgr *persist.Manager
	)
	if *dir != "" {
		start := time.Now()
		res, err := persist.Recover(*dir)
		if err != nil {
			log.Fatalf("kcored: recover %s: %v", *dir, err)
		}
		if res.Graph != nil {
			g = res.Graph
			if !*quiet {
				log.Printf("kcored: recovered gen %d from %s: n=%d m=%d, %d log records (%d edge ops) replayed across %d segment(s), %d torn bytes dropped, in %v",
					res.Gen, *dir, g.N(), g.M(), res.TailRecords, res.TailEdges,
					res.Segments, res.TornBytes, time.Since(start).Round(time.Millisecond))
			}
			if res.Truncated {
				log.Printf("kcored: WARNING: %s has mid-log corruption; recovered the longest valid prefix", *dir)
			}
			if *load != "" {
				log.Printf("kcored: -load %s ignored: %s already holds durable state (remove the directory to re-import)", *load, *dir)
			}
		}
		mgr, err = persist.NewManager(*dir, persist.Options{
			Fsync:           fsync,
			CheckpointOps:   *ckptOps,
			CheckpointBytes: *ckptBytes,
		})
		if err != nil {
			log.Fatalf("kcored: %v", err)
		}
	}
	if g == nil {
		g, err = buildGraph(*load, *n)
		if err != nil {
			log.Fatalf("kcored: %v", err)
		}
	}

	start := time.Now()
	opts := []kcore.Option{
		kcore.WithAlgorithm(alg),
		kcore.WithWorkers(*workers),
		kcore.WithMaxVertices(*maxVertices),
	}
	if mgr != nil {
		opts = append(opts, kcore.WithOpLog(mgr))
	}
	m := kcore.New(g, opts...)
	defer m.Close()
	if mgr != nil {
		// Start's synchronous checkpoint captures the just-built state —
		// a -load import is durable (and its text parse paid for good)
		// before the listener opens.
		if err := mgr.Start(m); err != nil {
			log.Fatalf("kcored: persistence: %v", err)
		}
		defer mgr.Close()
	}
	if !*quiet {
		log.Printf("kcored: engine %v (workers=%d), n=%d m=%d, initial decomposition in %v",
			alg, *workers, g.N(), g.M(), time.Since(start).Round(time.Millisecond))
	}

	srvOpts := []server.Option{
		server.WithConnShards(*connShards),
		server.WithSlowlog(time.Duration(*slowlogMs)*time.Millisecond, 0),
	}
	if mgr != nil {
		srvOpts = append(srvOpts, server.WithPersistence(mgr))
	}
	srv := server.New(m, srvOpts...)
	if *metricsAddr != "" {
		ms, err := serveMetrics(srv, *metricsAddr)
		if err != nil {
			log.Fatalf("kcored: metrics: %v", err)
		}
		defer ms.Close()
		if !*quiet {
			log.Printf("kcored: metrics on http://%s/metrics (pprof at /debug/pprof/)", ms.Addr())
		}
	}
	// Closing the listener makes ListenAndServe return immediately, but
	// the graceful drain (in-flight write futures, buffered replies) is
	// still running inside Shutdown — main must wait for it before
	// exiting, or the process would cut connections mid-drain.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		if !*quiet {
			log.Printf("kcored: shutting down")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if mgr != nil {
			// Every drained write is in the (synced-on-Close) log; the
			// final checkpoint just makes the next recovery's replay
			// empty.
			if err := mgr.CheckpointNow(); err != nil {
				log.Printf("kcored: final checkpoint: %v", err)
			}
		}
	}()

	if !*quiet {
		log.Printf("kcored: listening on %s", *addr)
	}
	err = srv.ListenAndServe(*addr)
	if err != server.ErrServerClosed {
		log.Fatalf("kcored: %v", err)
	}
	<-shutdownDone
	if !*quiet {
		st := srv.Stats()
		log.Printf("kcored: served %d commands over %d connections, epoch %d",
			st.Commands, st.ConnsTotal, m.Epoch())
	}
}

func parseAlg(name string) (kcore.Algorithm, error) {
	switch name {
	case "parallel":
		return kcore.ParallelOrder, nil
	case "seq":
		return kcore.SequentialOrder, nil
	case "traversal":
		return kcore.Traversal, nil
	case "jes":
		return kcore.JoinEdgeSet, nil
	}
	return 0, fmt.Errorf("unknown -alg %q (want parallel|seq|traversal|jes)", name)
}

func buildGraph(load string, n int) (*graph.Graph, error) {
	if load == "" {
		return graph.New(n), nil
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", load, err)
	}
	return g, nil
}
