package main

// Crash-recovery harness: build the real kcored binary, run it with a
// durability directory and -aof-fsync always, drive acked write bursts
// over the wire, kill -9 mid-burst, and verify two things:
//
//  1. Recovery honesty — persist.Recover over the surviving directory
//     yields a graph whose BZ decomposition is byte-equal to a fresh
//     bz.Decompose of exactly the edges that were acknowledged (the
//     in-flight tail may or may not have landed; acked writes MUST
//     have).
//  2. Serving honesty — a restarted kcored on the same directory
//     serves that same decomposition over CORE.MGET and passes
//     CORE.CHECK.
//
// The checkpoint-ops threshold is set low so the burst crosses at least
// one log rotation before the kill: the crash lands on a directory with
// real generational history, not a single pristine segment.

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/graph"
	"repro/internal/bz"
	"repro/persist"
)

// buildKcored compiles the kcored binary into a temp dir once per test.
func buildKcored(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kcored")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build kcored: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// startKcored launches the binary and waits until it answers PING.
func startKcored(t *testing.T, bin, dir string, port int, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-dir", dir,
		"-aof-fsync", "always",
		"-checkpoint-ops", "400",
		"-quiet",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start kcored: %v", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	deadline := time.Now().Add(20 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithDialTimeout(time.Second))
		if err == nil {
			if _, perr := c.Do("PING"); perr == nil {
				c.Close()
				return cmd
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("kcored on %s never came up: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func decomposeEdges(n int, edges map[graph.Edge]bool) []int32 {
	g := graph.New(n)
	for e := range edges {
		g.AddEdge(e.U, e.V)
	}
	core, _ := bz.Decompose(g)
	return core
}

// TestCrashRecoveryKillMidBurst is the headline durability test. Skipped
// under -short (the -race CI job runs -short; process spawning plus
// kill -9 timing is covered by the dedicated non-race crash job).
func TestCrashRecoveryKillMidBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness spawns real processes; run without -short")
	}
	bin := buildKcored(t)
	dir := filepath.Join(t.TempDir(), "data")
	port := freePort(t)
	proc := startKcored(t, bin, dir, port)
	killed := false
	defer func() {
		if !killed {
			proc.Process.Kill()
			proc.Wait()
		}
	}()
	addr := fmt.Sprintf("127.0.0.1:%d", port)

	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Single-writer acked bursts: every edge whose CORE.INSERT reply
	// arrived is recorded in acked — with -aof-fsync always these are
	// synced to the log BEFORE the ack, so all of them must survive the
	// kill. sent additionally holds the in-flight tail, which may or may
	// not have landed.
	const n = 2000
	rng := rand.New(rand.NewSource(99))
	acked := make(map[graph.Edge]bool)
	sent := make(map[graph.Edge]bool)
	randomEdge := func() graph.Edge {
		for {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				return graph.Edge{U: u, V: v}.Norm()
			}
		}
	}
	// Acked warm-up bursts — enough ops to cross the checkpoint-ops=400
	// threshold and force at least one mid-run log rotation.
	for burst := 0; burst < 30; burst++ {
		var batch []graph.Edge
		for i := 0; i < 40; i++ {
			e := randomEdge()
			batch = append(batch, e)
			sent[e] = true
			if err := c.Send("CORE.INSERT", int64(e.U), int64(e.V)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, e := range batch {
			if _, err := c.Receive(); err != nil {
				t.Fatalf("burst %d: %v", burst, err)
			}
			acked[e] = true
		}
	}
	// The doomed burst: flushed to the socket, never awaited — the kill
	// races the server mid-application.
	for i := 0; i < 200; i++ {
		e := randomEdge()
		sent[e] = true
		if err := c.Send("CORE.INSERT", int64(e.U), int64(e.V)); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	proc.Wait()
	killed = true

	// Phase 1: offline recovery over the surviving directory.
	res, err := persist.Recover(dir)
	if err != nil {
		t.Fatalf("Recover after kill -9: %v", err)
	}
	if res.Graph == nil {
		t.Fatal("no recoverable state after kill -9")
	}
	t.Logf("recovered gen=%d n=%d m=%d tail=%d records (%d edges) torn=%d segments=%d",
		res.Gen, res.Graph.N(), res.Graph.M(), res.TailRecords, res.TailEdges, res.TornBytes, res.Segments)
	if res.Gen < 2 {
		t.Errorf("gen = %d: the burst never crossed a log rotation; raise the op count", res.Gen)
	}
	for e := range acked {
		if !res.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("acked edge (%d,%d) lost by the crash", e.U, e.V)
		}
	}
	recovered := make(map[graph.Edge]bool)
	for _, e := range res.Graph.Edges() {
		ne := e.Norm()
		if !sent[ne] {
			t.Fatalf("recovered edge (%d,%d) was never sent", e.U, e.V)
		}
		recovered[ne] = true
	}

	// The recovered graph's cores must be byte-equal to a fresh
	// decomposition of the surviving edge set.
	wantCore := decomposeEdges(res.Graph.N(), recovered)
	gotCore, _ := bz.Decompose(res.Graph)
	for v := range wantCore {
		if gotCore[v] != wantCore[v] {
			t.Fatalf("recovered core[%d] = %d, fresh decomposition says %d", v, gotCore[v], wantCore[v])
		}
	}

	// Phase 2: restart on the same directory and sweep the full core
	// array over the wire.
	proc2 := startKcored(t, bin, dir, port)
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	c2, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Do("CORE.CHECK"); err != nil {
		t.Fatalf("CORE.CHECK after recovery: %v", err)
	}
	served := int(0)
	if v, err := client.Int(c2.Do("CORE.N")); err != nil {
		t.Fatal(err)
	} else {
		served = int(v)
	}
	if served != res.Graph.N() {
		t.Fatalf("restarted N = %d, recovered N = %d", served, res.Graph.N())
	}
	const chunk = 512
	for lo := 0; lo < served; lo += chunk {
		hi := min(lo+chunk, served)
		args := make([]any, 0, hi-lo)
		for v := lo; v < hi; v++ {
			args = append(args, int64(v))
		}
		vals, err := client.Ints(c2.Do("CORE.MGET", args...))
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range vals {
			if int32(got) != wantCore[lo+i] {
				t.Fatalf("served core[%d] = %d, want %d", lo+i, got, wantCore[lo+i])
			}
		}
	}
}

// TestGracefulRestartNoTail: SIGTERM takes a final checkpoint, so the
// next recovery replays nothing.
func TestGracefulRestartNoTail(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; run without -short")
	}
	bin := buildKcored(t)
	dir := filepath.Join(t.TempDir(), "data")
	port := freePort(t)
	proc := startKcored(t, bin, dir, port)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := client.Int(c.Do("CORE.INSERT", int64(i), int64(i+100))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("kcored exit after SIGTERM: %v", err)
	}
	res, err := persist.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.M() != 50 {
		t.Fatalf("graceful shutdown lost state: %+v", res)
	}
	if res.TailRecords != 0 || res.TornBytes != 0 {
		t.Fatalf("graceful shutdown left a log tail: %+v", res)
	}
}

// TestLoadImportCheckpointsImmediately: -load with a fresh -dir imports
// the edge list and checkpoints before serving; a second start with a
// (bogus) -load must prefer the durable state.
func TestLoadImportCheckpointsImmediately(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes; run without -short")
	}
	bin := buildKcored(t)
	dir := filepath.Join(t.TempDir(), "data")
	edgefile := filepath.Join(t.TempDir(), "edges.txt")
	content := ""
	for i := 0; i < 40; i++ {
		content += fmt.Sprintf("%d %d\n", i, i+40)
	}
	if err := os.WriteFile(edgefile, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	port := freePort(t)
	proc := startKcored(t, bin, dir, port, "-load", edgefile)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	c, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The import must already be durable — even a kill -9 right now
	// keeps it.
	proc.Process.Signal(syscall.SIGKILL)
	proc.Wait()
	c.Close()
	res, err := persist.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil || res.Graph.M() != 40 {
		t.Fatalf("-load import not checkpointed before serving: %+v", res)
	}

	// Restart pointing -load at garbage: durable state must win.
	proc2 := startKcored(t, bin, dir, port, "-load", filepath.Join(t.TempDir(), "missing.txt"))
	defer func() {
		proc2.Process.Signal(syscall.SIGTERM)
		proc2.Wait()
	}()
	c2, err := client.Dial(addr, client.WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if m, err := client.Int(c2.Do("CORE.GET", int64(0))); err != nil || m != 1 {
		t.Fatalf("recovered state not served (core[0]=%d, %v)", m, err)
	}
}
