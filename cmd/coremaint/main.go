// Command coremaint maintains core numbers over an edge-list graph file:
//
//	coremaint -graph g.txt -insert batch.txt -workers 8
//	coremaint -graph g.txt -remove batch.txt -alg jes
//	coremaint -graph g.txt -decompose            # static BZ only
//
// The batch file uses the same "u v" edge-list format. After maintenance,
// the tool prints the applied-edge count, timing, the core histogram, and
// (with -verify) checks the result against a fresh decomposition.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/graph"
	"repro/kcore"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file of the base graph (required)")
	insertPath := flag.String("insert", "", "edge-list file to insert")
	removePath := flag.String("remove", "", "edge-list file to remove")
	algName := flag.String("alg", "parallel", "parallel|seq|traversal|jes")
	workers := flag.Int("workers", 1, "worker goroutines")
	verify := flag.Bool("verify", false, "check result against a fresh decomposition")
	decompose := flag.Bool("decompose", false, "only run the static decomposition and print the histogram")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "coremaint: -graph is required")
		os.Exit(2)
	}
	g, err := readGraph(*graphPath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: n=%d m=%d avg deg %.2f\n", g.N(), g.M(), g.AvgDegree())

	if *decompose {
		cores := kcore.Decompose(g)
		printHistogram(cores)
		return
	}

	var alg kcore.Algorithm
	switch *algName {
	case "parallel":
		alg = kcore.ParallelOrder
	case "seq":
		alg = kcore.SequentialOrder
	case "traversal":
		alg = kcore.Traversal
	case "jes":
		alg = kcore.JoinEdgeSet
	default:
		fmt.Fprintf(os.Stderr, "coremaint: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	m := kcore.New(g, kcore.WithAlgorithm(alg), kcore.WithWorkers(*workers))

	apply := func(path string, insert bool) {
		bg, err := readGraph(path)
		if err != nil {
			fail(err)
		}
		batch := bg.Edges()
		var res kcore.BatchResult
		if insert {
			res = m.InsertEdges(batch)
		} else {
			res = m.RemoveEdges(batch)
		}
		verb := "removed"
		if insert {
			verb = "inserted"
		}
		fmt.Printf("%s %d/%d edges in %v (%s, %d workers); %d core numbers changed\n",
			verb, res.Applied, len(batch), res.Duration, alg, *workers, res.ChangedVertices)
	}
	if *insertPath != "" {
		apply(*insertPath, true)
	}
	if *removePath != "" {
		apply(*removePath, false)
	}

	printHistogram(m.CoreNumbers())
	if *verify {
		if err := m.Check(); err != nil {
			fail(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Println("verification OK: cores match a fresh decomposition")
	}
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func printHistogram(cores []int32) {
	counts := map[int32]int{}
	maxK := int32(0)
	for _, c := range cores {
		counts[c]++
		if c > maxK {
			maxK = c
		}
	}
	fmt.Printf("max core: %d\n", maxK)
	fmt.Println("core histogram (k: vertices):")
	for k := int32(0); k <= maxK; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %4d: %d\n", k, counts[k])
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "coremaint:", err)
	os.Exit(1)
}
